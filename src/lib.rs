// placeholder
