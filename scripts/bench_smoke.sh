#!/usr/bin/env bash
# Smoke test for the performance benches that back the tracked snapshot
# files at the repository root:
#
#   1. run the `ac_sweep` and `evals_per_sec` benches in quick mode
#      (CRITERION_QUICK=1, ~10x shorter measurement windows) and assert
#      every expected row is present — a panic or a silently dropped
#      bench function fails the step;
#   2. check the committed BENCH_ac_sweep.json / BENCH_evals_per_sec.json
#      snapshots still carry the keys the benches emit, so a bench rename
#      cannot drift away from the recorded numbers unnoticed;
#   3. run `oa_lint --engine=ast --timings` and assert the stderr timing
#      line still parses (engine/files/fns/edges/discharged plus the
#      per-pass parse_ms/callgraph_ms/ranges_ms/effects_ms/wire_ms and
#      total elapsed_ms), and that the committed BENCH_lint.json
#      snapshot carries the same fields.
#
# This is a schema/liveness gate, not a perf gate: CI machines are too
# noisy to compare nanoseconds against the snapshots.
#
# Usage: scripts/bench_smoke.sh
set -euo pipefail

OUT="$(mktemp -d)"
trap 'rm -rf "$OUT"' EXIT

run_bench() {
    local bench="$1"
    shift
    echo "running $bench (quick mode)"
    CRITERION_QUICK=1 cargo bench -p oa-bench --bench "$bench" >"$OUT/$bench.txt" 2>&1 || {
        cat "$OUT/$bench.txt" >&2
        echo "FAIL: bench $bench did not run to completion" >&2
        exit 1
    }
    for row in "$@"; do
        if ! grep -q "^bench: $row " "$OUT/$bench.txt"; then
            cat "$OUT/$bench.txt" >&2
            echo "FAIL: bench $bench did not report row '$row'" >&2
            exit 1
        fi
    done
}

check_snapshot() {
    local file="$1"
    shift
    [ -f "$file" ] || { echo "FAIL: missing snapshot $file" >&2; exit 1; }
    for key in results_ns_per_iter "$@"; do
        if ! grep -q "\"$key\"" "$file"; then
            echo "FAIL: snapshot $file lost key '$key'" >&2
            exit 1
        fi
    done
}

run_bench ac_sweep \
    ac_sweep_naive_241pts \
    ac_sweep_prepared_241pts \
    ac_sweep_symbolic_241pts \
    ac_transfer_prepared_single_freq
run_bench evals_per_sec \
    eval_full_cached \
    eval_full_uncached

check_snapshot BENCH_ac_sweep.json \
    ac_sweep_naive_241pts \
    ac_sweep_prepared_241pts \
    ac_sweep_symbolic_241pts \
    speedup_symbolic_over_naive \
    speedup_symbolic_over_prepared
check_snapshot BENCH_evals_per_sec.json \
    eval_full_cached \
    eval_full_uncached \
    evals_per_sec

echo "running oa_lint --engine=ast --timings (timing-line schema)"
cargo run -q -p oa-analyze --bin oa_lint -- --engine=ast --timings \
    >"$OUT/lint.out" 2>"$OUT/lint.err" || {
    cat "$OUT/lint.out" "$OUT/lint.err" >&2
    echo "FAIL: oa_lint --engine=ast reported findings or did not run" >&2
    exit 1
}
if ! grep -Eq 'engine=ast files=[0-9]+ fns=[0-9]+ edges=[0-9]+ discharged=[0-9]+ parse_ms=[0-9]+ callgraph_ms=[0-9]+ ranges_ms=[0-9]+ effects_ms=[0-9]+ wire_ms=[0-9]+ elapsed_ms=[0-9]+' "$OUT/lint.err"; then
    cat "$OUT/lint.err" >&2
    echo "FAIL: oa_lint --timings stderr line lost its schema" >&2
    exit 1
fi

[ -f BENCH_lint.json ] || { echo "FAIL: missing snapshot BENCH_lint.json" >&2; exit 1; }
for key in files fns edges discharged parse_ms callgraph_ms ranges_ms effects_ms wire_ms elapsed_ms timing_line; do
    if ! grep -q "\"$key\"" BENCH_lint.json; then
        echo "FAIL: snapshot BENCH_lint.json lost key '$key'" >&2
        exit 1
    fi
done

echo "OK: benches ran all rows in quick mode, the lint timing line parses, snapshots carry the expected schema"
