#!/usr/bin/env bash
# Smoke test for the serving layer, exercising the full daemon lifecycle:
#
#   1. start oa-serve on a loopback port with a fresh store;
#   2. fire 100 concurrent eval requests through oa-cli;
#   3. restart the daemon over the same store;
#   4. re-send the same 100 requests and assert the responses are
#      byte-identical AND that the second pass ran zero simulations
#      (served entirely from the persistent store);
#   5. start two oa-serve shards plus an oa-router front-end, replay the
#      golden protocol fixture through the fabric (responses must match
#      the fixture byte for byte, micros canonicalized), then re-send
#      the same 100 requests and assert byte-identity with pass 1.
#
# Usage: scripts/serve_smoke.sh [path-to-target-dir]
# Binaries are expected at $TARGET/release/{oa-serve,oa-cli,oa-router}
# (built by `cargo build --release`).
set -euo pipefail

TARGET="${1:-target}"
SERVE="$TARGET/release/oa-serve"
CLI="$TARGET/release/oa-cli"
ROUTER="$TARGET/release/oa-router"
GOLDEN="crates/serve/tests/golden/protocol.txt"
WORK="$(mktemp -d)"
SERVER_PID=""
SHARD_PIDS=""
ROUTER_PID=""

cleanup() {
    [ -n "$SERVER_PID" ] && kill "$SERVER_PID" 2>/dev/null || true
    [ -n "$ROUTER_PID" ] && kill "$ROUTER_PID" 2>/dev/null || true
    for pid in $SHARD_PIDS; do kill "$pid" 2>/dev/null || true; done
    rm -rf "$WORK"
}
trap cleanup EXIT

start_daemon() {
    "$SERVE" --addr 127.0.0.1:0 --store "$WORK/results.log" >"$WORK/daemon.log" &
    SERVER_PID=$!
    # The first stdout line prints the resolved address.
    for _ in $(seq 100); do
        ADDR="$(sed -n 's/^oa-serve listening on //p' "$WORK/daemon.log")"
        [ -n "$ADDR" ] && return 0
        kill -0 "$SERVER_PID" 2>/dev/null || { cat "$WORK/daemon.log" >&2; exit 1; }
        sleep 0.1
    done
    echo "daemon never reported its address" >&2
    exit 1
}

stop_daemon() {
    kill "$SERVER_PID"
    wait "$SERVER_PID" 2>/dev/null || true
    SERVER_PID=""
}

# 100 eval requests over distinct topologies (4-dim mid-range sizing;
# error responses are fine — they must be deterministic too).
for i in $(seq 0 99); do
    printf '{"id":%d,"op":"eval","spec":"S-1","topology":%d,"x":[0.4,0.5,0.5,0.6]}\n' \
        "$i" "$((i * 97))"
done >"$WORK/requests.jsonl"

start_daemon
echo "pass 1 against $ADDR (cold store)"
"$CLI" --addr "$ADDR" batch --raw "$WORK/requests.jsonl" >"$WORK/pass1.txt"
stop_daemon

start_daemon
echo "pass 2 against $ADDR (restarted daemon, warm store)"
"$CLI" --addr "$ADDR" batch --raw "$WORK/requests.jsonl" >"$WORK/pass2.txt"
STATS="$("$CLI" --addr "$ADDR" stats)"
stop_daemon

if ! cmp -s "$WORK/pass1.txt" "$WORK/pass2.txt"; then
    echo "FAIL: responses differ across restart" >&2
    diff "$WORK/pass1.txt" "$WORK/pass2.txt" >&2 || true
    exit 1
fi

case "$STATS" in
    *'"sims":0'*) ;;
    *)
        echo "FAIL: second pass was not served entirely from the store: $STATS" >&2
        exit 1
        ;;
esac

echo "OK: 100 responses byte-identical across restart, 0 re-simulations"

# --- Sharded fabric: two shards behind an oa-router front-end. -------------

# scrape_addr LOGFILE PREFIX — waits for a daemon banner line.
scrape_addr() {
    local log="$1" prefix="$2" addr=""
    for _ in $(seq 100); do
        addr="$(sed -n "s/^$prefix//p" "$log")"
        if [ -n "$addr" ]; then printf '%s' "$addr"; return 0; fi
        sleep 0.1
    done
    echo "daemon never reported its address ($log)" >&2
    cat "$log" >&2
    exit 1
}

# --session-limit 3 matches the golden fixture's harness
# (GOLDEN_SESSION_LIMIT), so the scripted session_limit overflow
# reproduces on the shards.
"$SERVE" --addr 127.0.0.1:0 --store "$WORK/shard0/results.log" --shard 0/2 \
    --session-limit 3 >"$WORK/shard0.log" &
SHARD_PIDS="$!"
"$SERVE" --addr 127.0.0.1:0 --store "$WORK/shard1/results.log" --shard 1/2 \
    --session-limit 3 >"$WORK/shard1.log" &
SHARD_PIDS="$SHARD_PIDS $!"
S0="$(scrape_addr "$WORK/shard0.log" 'oa-serve listening on ')"
S1="$(scrape_addr "$WORK/shard1.log" 'oa-serve listening on ')"

"$ROUTER" --addr 127.0.0.1:0 --shards "$S0,$S1" >"$WORK/router.log" &
ROUTER_PID=$!
RADDR="$(scrape_addr "$WORK/router.log" 'oa-router listening on ')"
echo "fabric: router $RADDR over shards $S0, $S1"

# Golden fixture through the fabric: serial replay (deterministic
# per-shard counters), micros canonicalized, order-insensitive compare
# (oa-cli sorts responses by id; the fixture is in request order).
sed -n 's/^> //p' "$GOLDEN" >"$WORK/golden_requests.jsonl"
sed -n 's/^< //p' "$GOLDEN" | sort >"$WORK/golden_expected.txt"
"$CLI" --addr "$RADDR" batch --raw --serial "$WORK/golden_requests.jsonl" \
    | sed -E 's/"micros":[0-9]+/"micros":0/g' | sort >"$WORK/golden_actual.txt"
if ! cmp -s "$WORK/golden_expected.txt" "$WORK/golden_actual.txt"; then
    echo "FAIL: golden fixture diverged through the 2-shard fabric" >&2
    diff "$WORK/golden_expected.txt" "$WORK/golden_actual.txt" >&2 || true
    exit 1
fi

# The same 100-request storm through the router must reproduce pass 1
# byte for byte — routing must never change response bytes.
"$CLI" --addr "$RADDR" batch --raw "$WORK/requests.jsonl" >"$WORK/pass3.txt"
if ! cmp -s "$WORK/pass1.txt" "$WORK/pass3.txt"; then
    echo "FAIL: routed responses differ from direct oa-serve" >&2
    diff "$WORK/pass1.txt" "$WORK/pass3.txt" >&2 || true
    exit 1
fi

echo "OK: golden fixture and 100-request storm byte-identical through the fabric"
