#!/usr/bin/env bash
# Smoke test for the serving layer, exercising the full daemon lifecycle:
#
#   1. start oa-serve on a loopback port with a fresh store;
#   2. fire 100 concurrent eval requests through oa-cli;
#   3. restart the daemon over the same store;
#   4. re-send the same 100 requests and assert the responses are
#      byte-identical AND that the second pass ran zero simulations
#      (served entirely from the persistent store).
#
# Usage: scripts/serve_smoke.sh [path-to-target-dir]
# Binaries are expected at $TARGET/release/{oa-serve,oa-cli} (built by
# `cargo build --release`).
set -euo pipefail

TARGET="${1:-target}"
SERVE="$TARGET/release/oa-serve"
CLI="$TARGET/release/oa-cli"
WORK="$(mktemp -d)"
SERVER_PID=""

cleanup() {
    [ -n "$SERVER_PID" ] && kill "$SERVER_PID" 2>/dev/null || true
    rm -rf "$WORK"
}
trap cleanup EXIT

start_daemon() {
    "$SERVE" --addr 127.0.0.1:0 --store "$WORK/results.log" >"$WORK/daemon.log" &
    SERVER_PID=$!
    # The first stdout line prints the resolved address.
    for _ in $(seq 100); do
        ADDR="$(sed -n 's/^oa-serve listening on //p' "$WORK/daemon.log")"
        [ -n "$ADDR" ] && return 0
        kill -0 "$SERVER_PID" 2>/dev/null || { cat "$WORK/daemon.log" >&2; exit 1; }
        sleep 0.1
    done
    echo "daemon never reported its address" >&2
    exit 1
}

stop_daemon() {
    kill "$SERVER_PID"
    wait "$SERVER_PID" 2>/dev/null || true
    SERVER_PID=""
}

# 100 eval requests over distinct topologies (4-dim mid-range sizing;
# error responses are fine — they must be deterministic too).
for i in $(seq 0 99); do
    printf '{"id":%d,"op":"eval","spec":"S-1","topology":%d,"x":[0.4,0.5,0.5,0.6]}\n' \
        "$i" "$((i * 97))"
done >"$WORK/requests.jsonl"

start_daemon
echo "pass 1 against $ADDR (cold store)"
"$CLI" --addr "$ADDR" batch --raw "$WORK/requests.jsonl" >"$WORK/pass1.txt"
stop_daemon

start_daemon
echo "pass 2 against $ADDR (restarted daemon, warm store)"
"$CLI" --addr "$ADDR" batch --raw "$WORK/requests.jsonl" >"$WORK/pass2.txt"
STATS="$("$CLI" --addr "$ADDR" stats)"
stop_daemon

if ! cmp -s "$WORK/pass1.txt" "$WORK/pass2.txt"; then
    echo "FAIL: responses differ across restart" >&2
    diff "$WORK/pass1.txt" "$WORK/pass2.txt" >&2 || true
    exit 1
fi

case "$STATS" in
    *'"sims":0'*) ;;
    *)
        echo "FAIL: second pass was not served entirely from the store: $STATS" >&2
        exit 1
        ;;
esac

echo "OK: 100 responses byte-identical across restart, 0 re-simulations"
