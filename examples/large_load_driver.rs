//! Driving a large capacitive load (the S-5 scenario, C_L = 10 nF) and
//! comparing INTO-OA head-to-head with the FE-GA baseline at an identical
//! simulation budget — a miniature of the paper's Table II experiment,
//! finishing with a transistor-level sanity check of the winner.
//!
//! Run with:
//!
//! ```sh
//! cargo run --release --example large_load_driver
//! ```

use into_oa::{optimize, Evaluator, IntoOaConfig, Spec};
use oa_baselines::{fe_ga, FeGaConfig};
use oa_bo::{BoConfig, TopoBoConfig, TopoObservation};
use oa_circuit::Topology;
use oa_sim::AcOptions;
use oa_xtor::{transistor_performance, XtorOptions};

fn main() {
    let spec = Spec::s5();
    println!("large-load scenario: {spec}\n");

    let sizing = BoConfig {
        n_init: 6,
        n_iter: 10,
        n_candidates: 50,
        seed: 9,
    };

    // --- INTO-OA ---
    let run = optimize(
        &spec,
        &IntoOaConfig {
            topo: TopoBoConfig {
                n_init: 6,
                n_iter: 14,
                pool_size: 60,
                seed: 9,
                ..TopoBoConfig::default()
            },
            sizing,
            ..IntoOaConfig::default()
        },
    );
    let into_oa_best = run.best_design().cloned();
    println!(
        "INTO-OA:  {} sims, best feasible FoM = {}",
        run.total_sims,
        into_oa_best
            .as_ref()
            .filter(|d| d.feasible)
            .map(|d| format!("{:.0}", d.fom))
            .unwrap_or_else(|| "-".to_owned())
    );

    // --- FE-GA at the same budget ---
    let evaluator = Evaluator::new(spec);
    let mut ga_best: Option<into_oa::SizedDesign> = None;
    let mut ga_sims = 0usize;
    let ga = fe_ga(
        &FeGaConfig {
            population: 6,
            n_iter: 14,
            seed: 9,
            ..FeGaConfig::default()
        },
        |t: &Topology| {
            let (design, sims) = evaluator.size(t, &sizing);
            ga_sims += sims;
            let design = design?;
            let obs = TopoObservation {
                objective: design.fom.max(1.0).log10(),
                constraints: spec.constraints(&design.performance),
                metrics: vec![],
            };
            let better = match &ga_best {
                None => true,
                Some(b) => match (design.feasible, b.feasible) {
                    (true, false) => true,
                    (false, true) => false,
                    _ => design.fom > b.fom,
                },
            };
            if better {
                ga_best = Some(design);
            }
            Some(obs)
        },
    );
    println!(
        "FE-GA:    {} sims, best feasible FoM = {}",
        ga_sims,
        ga_best
            .as_ref()
            .filter(|d| d.feasible)
            .map(|d| format!("{:.0}", d.fom))
            .unwrap_or_else(|| "-".to_owned())
    );
    drop(ga);

    // --- Transistor-level check of the INTO-OA winner ---
    let Some(best) = into_oa_best else {
        println!("\nno INTO-OA design to map");
        return;
    };
    println!("\nINTO-OA winner: {}", best.topology);
    match transistor_performance(
        &best.topology,
        &best.values,
        &XtorOptions::default(),
        spec.cl_farads,
        &AcOptions::default(),
    ) {
        Ok((perf, mapping)) => {
            println!("transistor-level ({} devices):", mapping.devices.len());
            for d in &mapping.devices {
                println!(
                    "  {:<34} gm {:>8.1} uS, Id {:>7.2} uA, W/L {:>7.1}",
                    d.name,
                    d.gm_s / 1e-6,
                    d.id_a / 1e-6,
                    d.w_over_l
                );
            }
            println!(
                "  gain {:.1} dB | GBW {:.3} MHz | PM {:.1} deg | power {:.1} uW | FoM {:.0} (behavioral {:.0})",
                perf.gain_db,
                perf.gbw_hz / 1e6,
                perf.pm_deg,
                perf.power_w / 1e-6,
                perf.fom(spec.cl_farads),
                best.fom
            );
        }
        Err(e) => println!("transistor mapping failed: {e}"),
    }
}
