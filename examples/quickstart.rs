//! Quickstart: synthesize a three-stage op-amp topology for the baseline
//! spec S-1 with INTO-OA and inspect the winner.
//!
//! Run with:
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use into_oa::{optimize, IntoOaConfig, Spec};
use oa_circuit::{elaborate, Process};
use oa_sim::{step_response, TranOptions};

fn main() {
    let spec = Spec::s1();
    println!("optimizing a three-stage op-amp for {spec}");

    // A reduced budget so the example finishes in seconds; the paper's
    // setup is 10 initial topologies + 50 BO iterations with a
    // 40-simulation sizing per topology.
    let config = IntoOaConfig::quick(42);
    let run = optimize(&spec, &config);

    println!(
        "evaluated {} topologies with {} total simulations",
        run.records.len(),
        run.total_sims
    );

    match run.best_design() {
        Some(best) => {
            println!("\nbest topology: {}", best.topology);
            println!("  open-loop gain : {:>8.2} dB", best.performance.gain_db);
            println!(
                "  GBW            : {:>8.3} MHz",
                best.performance.gbw_hz / 1e6
            );
            println!("  phase margin   : {:>8.2} deg", best.performance.pm_deg);
            println!(
                "  power          : {:>8.2} uW",
                best.performance.power_w / 1e-6
            );
            println!("  FoM (Eq. 6)    : {:>8.2}", best.fom);
            println!(
                "  meets spec     : {}",
                if best.feasible { "yes" } else { "no" }
            );

            println!("\noptimization curve (cumulative sims → best feasible FoM):");
            for (sims, fom) in run.curve().iter().step_by(2) {
                match fom {
                    Some(f) => println!("  {sims:>5} → {f:.2}"),
                    None => println!("  {sims:>5} → (no feasible design yet)"),
                }
            }

            // Time-domain sanity check of the winner: open-loop small-step
            // response (a .TRAN run in SPICE terms).
            if let Ok(netlist) = elaborate(
                &best.topology,
                &best.values,
                &Process::default(),
                spec.cl_farads,
            ) {
                let opts = TranOptions::for_bandwidth(best.performance.gbw_hz.max(1e3), 8.0, 1e-6);
                if let Ok(resp) = step_response(&netlist, &opts) {
                    println!(
                        "\nopen-loop 1 µV step response: final {:.3} mV, overshoot {:.1}%, settles (2%) at {}",
                        resp.final_value() * 1e3,
                        resp.overshoot() * 100.0,
                        resp.settling_time(0.02)
                            .map(|t| format!("{:.2} µs", t * 1e6))
                            .unwrap_or_else(|| "(not in window)".to_owned())
                    );
                }
            }
        }
        None => println!("no design could be evaluated — try a larger budget"),
    }
}
