//! Spin up the evaluation service in-process, evaluate a few sized
//! topologies over TCP, and show the store serving repeats for free.
//!
//! Run with: `cargo run --release --example eval_service`

use oa_circuit::{ParamSpace, Topology};
use oa_serve::{request, serve, Client, ServerConfig};

/// Mid-range sizing vector of the right dimension for a topology.
fn mid_sizing(index: usize) -> Vec<f64> {
    let t = Topology::from_index(index).expect("in range");
    vec![0.5; ParamSpace::for_topology(&t).dim()]
}

fn main() -> std::io::Result<()> {
    // An ephemeral store so the example is self-contained; a real
    // deployment points this at a persistent directory (OA_STORE_DIR).
    let dir = std::env::temp_dir().join(format!("oa_example_store_{}", std::process::id()));
    let mut config = ServerConfig::loopback();
    config.store_path = dir.join("results.log");

    let server = serve(config)?;
    println!("serving on {}", server.addr());

    let mut client = Client::connect(server.addr())?;

    // Pipeline a handful of evaluations; responses arrive as workers
    // finish and are matched by id.
    let lines: Vec<String> = (0..5u64)
        .map(|i| {
            let index = (i as usize) * 1000;
            request::eval(i, "S-1", index, &mid_sizing(index))
        })
        .collect();
    for response in client.pipeline(&lines)? {
        println!("{response}");
    }

    // The same request again is a store hit: byte-identical, no
    // simulation.
    let repeat = client.request(&request::eval(0, "S-1", 0, &mid_sizing(0)))?;
    println!("repeat (served from store): {repeat}");
    println!("stats: {}", client.request(&request::stats(99))?);

    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
    Ok(())
}
