//! Low-power design scenario: the S-4 specification caps the power budget
//! at 150 µW, forcing the optimizer toward efficient compensation schemes.
//! This example runs INTO-OA on S-4 and then *explains* the winner with
//! the WL-GP gradient analysis — which structures carry the bandwidth,
//! which guard the phase margin, and what each costs in power.
//!
//! Run with:
//!
//! ```sh
//! cargo run --release --example low_power_design
//! ```

use into_oa::{optimize, IntoOaConfig, MetricModels, Spec};
use oa_bo::{BoConfig, TopoBoConfig};

fn main() {
    let spec = Spec::s4();
    println!("low-power scenario: {spec}");

    let config = IntoOaConfig {
        topo: TopoBoConfig {
            n_init: 6,
            n_iter: 14,
            pool_size: 60,
            seed: 7,
            ..TopoBoConfig::default()
        },
        sizing: BoConfig {
            n_init: 6,
            n_iter: 10,
            n_candidates: 50,
            seed: 7,
        },
        ..IntoOaConfig::default()
    };
    let run = optimize(&spec, &config);

    let Some(best) = run.best_design() else {
        println!("no design found — increase the budget");
        return;
    };
    println!("\nbest low-power topology: {}", best.topology);
    println!(
        "  gain {:.1} dB | GBW {:.3} MHz | PM {:.1} deg | power {:.1} uW | FoM {:.1} | feasible: {}",
        best.performance.gain_db,
        best.performance.gbw_hz / 1e6,
        best.performance.pm_deg,
        best.performance.power_w / 1e-6,
        best.fom,
        best.feasible,
    );

    // Interpretability: which structures matter for which metric?
    let models = match MetricModels::fit(&run, 4) {
        Ok(m) => m,
        Err(e) => {
            println!("could not train metric models: {e}");
            return;
        }
    };
    println!("\nstructure impact (WL-GP gradient, Eq. 5):");
    for impact in models.structure_report(&best.topology) {
        println!("  {} [{}]:", impact.edge, impact.ty);
        for (metric, gradient) in &impact.gradients {
            let direction = if *gradient > 0.0 { "helps" } else { "hurts" };
            println!("    {metric:<12} {gradient:>+9.4}  ({direction})");
        }
    }

    println!("\npower accounting of the winner:");
    let total_gm: f64 = best.values.all_gms().iter().sum();
    for (i, gm) in best.values.stage_gm.iter().enumerate() {
        println!(
            "  stage {} gm = {:>8.2} uS ({:>4.1}% of total transconductance)",
            i + 1,
            gm / 1e-6,
            gm / total_gm * 100.0
        );
    }
}
