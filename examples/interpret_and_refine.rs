//! Interpretable refinement of a trusted design (Sections III-C and IV-C).
//!
//! A designer has a feedforward-compensated three-stage op-amp (the C1
//! topology of Thandri & Silva-Martínez, JSSC 2003) that narrowly misses
//! the phase-margin requirement when driving a 10 nF load. Instead of
//! synthesizing a new amplifier from scratch, INTO-OA:
//!
//! 1. trains WL-GP surrogates on an S-5 optimization history,
//! 2. uses their analytic gradients to find the subcircuit most
//!    responsible for the shortfall,
//! 3. replaces it with the most promising alternative and re-sizes only
//!    the modified part.
//!
//! Run with:
//!
//! ```sh
//! cargo run --release --example interpret_and_refine
//! ```

use into_oa::{
    literature, optimize, refine, removal_sensitivity, Evaluator, IntoOaConfig, MetricModels,
    RefineConfig, Spec,
};
use oa_bo::BoConfig;
use oa_circuit::VariableEdge;

fn main() {
    let spec = Spec::s5();
    let evaluator = Evaluator::new(spec);
    let trusted = literature::c1();
    println!("trusted design (C1, feedforward-compensated OTA): {trusted}");
    println!("target spec: {spec}\n");

    // Size the trusted design as its original authors would have, with the
    // phase-margin requirement of a less demanding application.
    let design_spec = Spec {
        min_pm_deg: 47.0,
        ..spec
    };
    // Scan a few sizing seeds for a trusted design that *narrowly* misses
    // S-5 — the realistic starting point for refinement (a hopeless design
    // would need a redesign, not a touch-up).
    let mut trusted_design = None;
    for seed in 71..79 {
        let sizing = BoConfig {
            n_init: 8,
            n_iter: 16,
            n_candidates: 60,
            seed,
        };
        let (candidate, _) = Evaluator::new(design_spec).size(&trusted, &sizing);
        let Some(candidate) = candidate else { continue };
        let Ok(perf) = evaluator.simulate(&trusted, &candidate.values) else {
            continue;
        };
        let violation: f64 = spec.constraints(&perf).iter().map(|c| c.max(0.0)).sum();
        if violation > 0.0 && violation < 0.35 {
            trusted_design = Some(candidate);
            break;
        }
        if trusted_design.is_none() {
            trusted_design = Some(candidate);
        }
    }
    let Some(trusted_design) = trusted_design else {
        println!("trusted sizing failed");
        return;
    };
    let perf = match evaluator.simulate(&trusted, &trusted_design.values) {
        Ok(p) => p,
        Err(e) => {
            println!("simulation failed: {e}");
            return;
        }
    };
    println!(
        "as shipped: gain {:.1} dB, GBW {:.3} MHz, PM {:.1} deg, power {:.1} uW → {}",
        perf.gain_db,
        perf.gbw_hz / 1e6,
        perf.pm_deg,
        perf.power_w / 1e-6,
        if spec.is_met_by(&perf) {
            "meets S-5"
        } else {
            "violates S-5"
        }
    );

    // Surrogates trained "during optimization".
    println!("\ntraining WL-GP metric models on an S-5 optimization run…");
    let run = optimize(&spec, &IntoOaConfig::quick(55));
    let models = match MetricModels::fit(&run, 4) {
        Ok(m) => m,
        Err(e) => {
            println!("training failed: {e}");
            return;
        }
    };

    // What does the surrogate say about the trusted design's structures?
    println!("\ngradient report for the trusted topology:");
    for impact in models.structure_report(&trusted) {
        let pm = impact
            .gradients
            .iter()
            .find(|(m, _)| m == "pm_deg")
            .map(|(_, g)| *g)
            .unwrap_or(0.0);
        println!(
            "  {} [{}]: d(PM)/d(count) = {:+.3}",
            impact.edge, impact.ty, pm
        );
    }

    // Cross-check one structure with brute-force sensitivity analysis.
    if let Ok(sens) = removal_sensitivity(
        &evaluator,
        &trusted,
        &trusted_design.values,
        VariableEdge::V1Vout,
    ) {
        println!(
            "\nremoving the v1-vout subcircuit would change GBW by {:+.3} MHz and PM by {:+.1} deg",
            sens.delta_gbw_hz() / 1e6,
            sens.delta_pm_deg()
        );
    }

    // The refinement itself.
    println!("\nrefining…");
    let refine_cfg = RefineConfig {
        max_attempts: 8,
        resize: BoConfig {
            n_init: 8,
            n_iter: 16,
            n_candidates: 80,
            seed: 5,
        },
    };
    match refine(
        &evaluator,
        &trusted,
        &trusted_design.values,
        &models,
        &refine_cfg,
    ) {
        Ok(outcome) => {
            println!(
                "replaced {} on {} ({} simulations)",
                outcome.old_ty, outcome.edge, outcome.total_sims
            );
            match outcome.refined {
                Some(d) => {
                    println!(
                    "refined: {} → gain {:.1} dB, GBW {:.3} MHz, PM {:.1} deg, power {:.1} uW → {}",
                    d.topology,
                    d.performance.gain_db,
                    d.performance.gbw_hz / 1e6,
                    d.performance.pm_deg,
                    d.performance.power_w / 1e-6,
                    if d.feasible { "meets S-5" } else { "violates S-5" }
                )
                }
                None => println!("no attempt met the spec — rerun with a larger budget"),
            }
        }
        Err(e) => println!("refinement failed: {e}"),
    }
}
