//! End-to-end acceptance tests for the serving layer, pinning the three
//! ISSUE-level guarantees:
//!
//! 1. server responses are **byte-identical** to direct in-process
//!    [`Evaluator`] calls;
//! 2. a kill-9-style truncation of the store log loses at most the torn
//!    record;
//! 3. a repeated `eval_batch` over 200 topologies is served entirely
//!    from the store — zero new simulations, asserted via `stats`.

use std::fs::OpenOptions;
use std::path::PathBuf;

use into_oa::{Evaluator, Spec};
use oa_circuit::{ParamSpace, Topology};
use oa_graph::WlFeaturizer;
use oa_serve::{eval_result_json, request, serve, wl_fingerprint, Client, Json, ServerConfig};
use oa_store::Store;

fn temp_store(tag: &str) -> (ServerConfig, PathBuf) {
    let dir = std::env::temp_dir().join(format!("oa_serve_it_{}_{tag}", std::process::id()));
    let mut config = ServerConfig::loopback();
    config.store_path = dir.join("results.log");
    (config, dir)
}

/// `n` (topology, x) items spread across the 30 625-point space — each
/// with a mid-range sizing vector of the right dimension, and each
/// pre-checked to simulate successfully under `spec` (error responses
/// are deliberately not persisted, so the store-hit assertions below
/// need all-success batches).
fn spread_items(spec: Spec, n: usize) -> Vec<(usize, Vec<f64>)> {
    let evaluator = Evaluator::new(spec);
    let mut items = Vec::with_capacity(n);
    let mut index = 0usize;
    while items.len() < n {
        let t = Topology::from_index(index).expect("in range");
        let dim = ParamSpace::for_topology(&t).dim();
        let x: Vec<f64> = (0..dim)
            .map(|j| 0.3 + 0.4 * (j as f64) / dim as f64)
            .collect();
        if evaluator.simulate_sized(&t, &x).is_ok() {
            items.push((index, x));
        }
        index = (index + 97) % oa_circuit::DESIGN_SPACE_SIZE;
    }
    items
}

#[test]
fn server_responses_match_direct_evaluator_byte_for_byte() {
    let (config, dir) = temp_store("direct");
    let server = serve(config).unwrap();
    let mut client = Client::connect(server.addr()).unwrap();

    let evaluator = Evaluator::new(Spec::s1());
    let mut wl = WlFeaturizer::new();
    for (id, (index, x)) in spread_items(Spec::s1(), 8).into_iter().enumerate() {
        let response = client
            .request(&request::eval(id as u64, "S-1", index, &x))
            .unwrap();
        let topology = Topology::from_index(index).unwrap();
        let design = evaluator.simulate_sized(&topology, &x).unwrap();
        let expected_result = eval_result_json(&design, wl_fingerprint(&mut wl, &topology));
        let expected = format!("{{\"id\":{id},\"ok\":true,\"result\":{expected_result}}}");
        assert_eq!(response, expected, "topology {index}");
    }

    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn truncated_store_loses_at_most_the_torn_record() {
    let (config, dir) = temp_store("truncate");
    let store_path = config.store_path.clone();
    let items = spread_items(Spec::s1(), 6);

    // First daemon lifetime: populate the store.
    let first: Vec<String> = {
        let server = serve(config.clone()).unwrap();
        let mut client = Client::connect(server.addr()).unwrap();
        let lines: Vec<String> = items
            .iter()
            .enumerate()
            .map(|(id, (t, x))| request::eval(id as u64, "S-1", *t, x))
            .collect();
        let mut responses = client.pipeline(&lines).unwrap();
        responses.sort();
        server.shutdown();
        responses
    };

    // Kill-9 simulation: chop bytes off the final record mid-frame.
    let full_len = std::fs::metadata(&store_path).unwrap().len();
    let f = OpenOptions::new().write(true).open(&store_path).unwrap();
    f.set_len(full_len - 7).unwrap();
    drop(f);

    // The log must reopen cleanly with at most one record missing.
    let survivors = Store::open(&store_path).unwrap();
    assert!(
        survivors.len() >= items.len() - 1,
        "lost more than the torn record"
    );
    assert!(
        survivors.len() < items.len(),
        "truncation must tear exactly one"
    );
    drop(survivors);

    // Second daemon lifetime over the truncated log: every response is
    // byte-identical to the first pass (the torn record just re-simulates).
    let server = serve(config).unwrap();
    let mut client = Client::connect(server.addr()).unwrap();
    let lines: Vec<String> = items
        .iter()
        .enumerate()
        .map(|(id, (t, x))| request::eval(id as u64, "S-1", *t, x))
        .collect();
    let mut second = client.pipeline(&lines).unwrap();
    second.sort();
    assert_eq!(first, second);
    assert_eq!(
        server.service().sims(),
        1,
        "only the torn record re-simulates"
    );
    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn repeated_batch_of_200_topologies_is_served_from_store() {
    let (config, dir) = temp_store("batch200");
    let server = serve(config).unwrap();
    let mut client = Client::connect(server.addr()).unwrap();
    let items = spread_items(Spec::s2(), 200);

    let first = client
        .request(&request::eval_batch(1, "S-2", &items))
        .unwrap();
    let sims_after_first = server.service().sims();
    assert!(sims_after_first > 0);

    let second = client
        .request(&request::eval_batch(1, "S-2", &items))
        .unwrap();
    assert_eq!(first, second, "second pass must be byte-identical");
    assert_eq!(
        server.service().sims(),
        sims_after_first,
        "second pass must run zero new simulations"
    );

    // The stats endpoint independently witnesses the hit/miss split.
    let stats = client.request(&request::stats(2)).unwrap();
    let parsed = Json::parse(&stats).unwrap();
    let store = parsed.get("result").unwrap().get("store").unwrap();
    assert_eq!(store.get("hits").unwrap().as_u64(), Some(200));
    assert_eq!(
        parsed.get("result").unwrap().get("sims").unwrap().as_u64(),
        Some(sims_after_first)
    );

    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}
