//! End-to-end integration tests: the full INTO-OA pipeline from design
//! space through simulator, surrogates, optimizer, interpretability and
//! refinement, at reduced budgets.

use into_oa::{
    literature, optimize, refine, removal_sensitivity, Evaluator, IntoOaConfig, MetricModels,
    RefineConfig, Spec,
};
use oa_bo::BoConfig;
use oa_circuit::{ParamSpace, PassiveKind, SubcircuitType, Topology, VariableEdge};

#[test]
fn optimization_finds_feasible_s1_design() {
    // S-1 is the easiest spec; a modest budget should find a feasible
    // design on at least one of two seeds.
    let found = (0..2).any(|seed| {
        let run = optimize(&Spec::s1(), &IntoOaConfig::quick(seed));
        run.succeeded()
    });
    assert!(found, "no quick run found a feasible S-1 design");
}

#[test]
fn optimizer_records_are_internally_consistent() {
    let run = optimize(&Spec::s1(), &IntoOaConfig::quick(3));
    let mut prev = 0;
    for r in &run.records {
        assert!(r.cum_sims > prev);
        assert!(r.sims_used > 0);
        prev = r.cum_sims;
        // The recorded FoM matches the spec's formula on the recorded
        // performance.
        assert!((r.design.fom - run.spec.fom(&r.design.performance)).abs() < 1e-9);
        assert_eq!(r.design.feasible, run.spec.is_met_by(&r.design.performance));
    }
    assert_eq!(run.total_sims, run.records.last().unwrap().cum_sims);
}

#[test]
fn metric_models_fit_and_expose_gradients_for_every_structure() {
    let run = optimize(&Spec::s1(), &IntoOaConfig::quick(5));
    let models = MetricModels::fit(&run, 3).expect("models fit");
    for r in &run.records {
        let report = models.structure_report(&r.design.topology);
        assert_eq!(report.len(), r.design.topology.connected_count());
        for impact in report {
            assert_eq!(impact.gradients.len(), 4);
            assert!(impact.gradients.iter().all(|(_, g)| g.is_finite()));
        }
    }
}

#[test]
fn sensitivity_analysis_agrees_with_compensation_theory() {
    // For a Miller-compensated amplifier the compensation capacitor
    // trades bandwidth for phase margin; removing it must move both in the
    // opposite directions.
    let evaluator = Evaluator::new(Spec::s1());
    let t = Topology::bare_cascade()
        .with_type(
            VariableEdge::V1Vout,
            SubcircuitType::Passive(PassiveKind::C),
        )
        .unwrap();
    let space = ParamSpace::for_topology(&t);
    let values = space.decode(&[0.5, 0.5, 0.5, 0.85]).unwrap();
    let s = removal_sensitivity(&evaluator, &t, &values, VariableEdge::V1Vout).unwrap();
    assert!(s.delta_gbw_hz() > 0.0);
    assert!(s.delta_pm_deg() < 0.0);
}

#[test]
fn refinement_of_literature_topology_changes_at_most_one_edge() {
    let spec = Spec::s5();
    let evaluator = Evaluator::new(spec);
    let trusted = literature::c2();

    // Size under a PM-relaxed spec so the design narrowly misses S-5.
    let relaxed = Spec {
        min_pm_deg: 40.0,
        ..spec
    };
    let sizing = BoConfig {
        n_init: 5,
        n_iter: 8,
        n_candidates: 40,
        seed: 2,
    };
    let (design, _) = Evaluator::new(relaxed).size(&trusted, &sizing);
    let Some(design) = design else {
        panic!("trusted sizing failed outright");
    };

    let run = optimize(&spec, &IntoOaConfig::quick(11));
    let models = MetricModels::fit(&run, 3).expect("models fit");
    let outcome = refine(
        &evaluator,
        &trusted,
        &design.values,
        &models,
        &RefineConfig::default(),
    )
    .expect("refinement runs");
    // Whatever happened, every attempted design is a single-edge change of
    // the trusted topology with everything else untouched.
    for attempt in &outcome.attempts {
        if let Some(d) = &attempt.design {
            assert_eq!(d.topology.distance(&trusted), 1);
            for i in 0..3 {
                assert!(
                    (d.values.stage_gm[i] - design.values.stage_gm[i]).abs()
                        / design.values.stage_gm[i]
                        < 1e-9
                );
            }
        }
    }
    if let Some(d) = &outcome.refined {
        assert!(d.feasible);
    }
}

#[test]
fn literature_topologies_simulate_under_all_specs() {
    for t in [
        literature::c1(),
        literature::r1(),
        literature::c2(),
        literature::r2(),
    ] {
        let space = ParamSpace::for_topology(&t);
        for spec in Spec::all() {
            let evaluator = Evaluator::new(spec);
            let perf = evaluator
                .simulate(&t, &space.nominal())
                .expect("literature topology simulates");
            assert!(perf.gain_db.is_finite());
            assert!(perf.power_w > 0.0);
        }
    }
}
