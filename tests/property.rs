//! Cross-crate property-based tests on the core invariants of the
//! reproduction: encodings round-trip, the design-space rules hold, the WL
//! kernel produces positive-semidefinite Gram matrices, and the simulator
//! returns finite measurements for every legal sized topology.

use oa_baselines::{decode_nearest, embed};
use oa_circuit::{elaborate, ParamSpace, Process, Topology, VariableEdge, DESIGN_SPACE_SIZE};
use oa_graph::{CircuitGraph, WlFeaturizer};
use oa_linalg::{Cholesky, Matrix};
use oa_sim::{evaluate_opamp, AcOptions};
use proptest::prelude::*;

fn arb_topology() -> impl Strategy<Value = Topology> {
    (0..DESIGN_SPACE_SIZE).prop_map(|i| Topology::from_index(i).expect("in range"))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn topology_index_roundtrips(t in arb_topology()) {
        prop_assert_eq!(Topology::from_index(t.index()).unwrap(), t);
    }

    #[test]
    fn topologies_always_satisfy_rules(t in arb_topology()) {
        for edge in VariableEdge::ALL {
            prop_assert!(edge.allows(t.type_on(edge)));
        }
    }

    #[test]
    fn one_hot_embedding_roundtrips(t in arb_topology()) {
        prop_assert_eq!(decode_nearest(&embed(&t)), t);
    }

    #[test]
    fn param_space_decode_encode_roundtrips(
        t in arb_topology(),
        xs in proptest::collection::vec(0.001f64..0.999, 13),
    ) {
        let space = ParamSpace::for_topology(&t);
        let x = &xs[..space.dim()];
        let values = space.decode(x).unwrap();
        let x2 = space.encode(&values);
        for (a, b) in x.iter().zip(&x2) {
            prop_assert!((a - b).abs() < 1e-9, "{} vs {}", a, b);
        }
    }

    #[test]
    fn mutation_is_legal_and_nontrivial(t in arb_topology(), seed in 0u64..1000) {
        use rand::SeedableRng;
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
        let m = t.mutate(&mut rng);
        prop_assert_ne!(m, t);
        for edge in VariableEdge::ALL {
            prop_assert!(edge.allows(m.type_on(edge)));
        }
    }

    #[test]
    fn circuit_graph_respects_paper_bounds(t in arb_topology()) {
        let g = CircuitGraph::from_topology(&t);
        prop_assert!(g.node_count() <= 13);
        prop_assert!(g.edge_count() <= 16);
        prop_assert_eq!(g.node_count(), 8 + t.connected_count());
        prop_assert_eq!(g.edge_count(), 6 + 2 * t.connected_count());
    }

    #[test]
    fn wl_gram_matrix_is_positive_semidefinite(
        indices in proptest::collection::hash_set(0..DESIGN_SPACE_SIZE, 3..8),
    ) {
        let mut wl = WlFeaturizer::new();
        let feats: Vec<_> = indices
            .iter()
            .map(|&i| {
                let t = Topology::from_index(i).unwrap();
                wl.featurize(&CircuitGraph::from_topology(&t), 3)
            })
            .collect();
        let n = feats.len();
        let mut gram = Matrix::from_fn(n, n, |i, j| feats[i].kernel(&feats[j], 3));
        // PSD up to numerical jitter: the jittered Cholesky must succeed
        // with a tiny diagonal boost.
        gram.add_diag(1e-9 * gram.max_abs().max(1.0));
        prop_assert!(Cholesky::new(&gram).is_ok());
    }

    #[test]
    fn simulator_returns_finite_measurements(
        t in arb_topology(),
        xs in proptest::collection::vec(0.05f64..0.95, 13),
    ) {
        let space = ParamSpace::for_topology(&t);
        let values = space.decode(&xs[..space.dim()]).unwrap();
        let perf = evaluate_opamp(
            &t,
            &values,
            &Process::default(),
            10e-12,
            &AcOptions::default(),
        ).expect("legal sized topology simulates");
        prop_assert!(perf.gain_db.is_finite());
        prop_assert!(perf.gbw_hz.is_finite() && perf.gbw_hz >= 0.0);
        prop_assert!(perf.pm_deg.is_finite());
        prop_assert!(perf.power_w > 0.0);
    }

    #[test]
    fn elaboration_is_deterministic(t in arb_topology()) {
        let space = ParamSpace::for_topology(&t);
        let values = space.nominal();
        let a = elaborate(&t, &values, &Process::default(), 10e-12).unwrap();
        let b = elaborate(&t, &values, &Process::default(), 10e-12).unwrap();
        prop_assert_eq!(a, b);
    }
}
