//! Integration tests pitting all methods against the real circuit
//! evaluation oracle at matched (small) budgets: the miniature of the
//! paper's comparison protocol.

use into_oa::{Evaluator, Spec};
use oa_baselines::{fe_ga, vgae_bo, FeGaConfig, VgaeBoConfig};
use oa_bo::{topology_bo, BoConfig, TopoBoConfig, TopoObservation};
use oa_circuit::Topology;

fn circuit_oracle(
    spec: Spec,
    sizing: BoConfig,
) -> (
    impl FnMut(&Topology) -> Option<TopoObservation>,
    std::rc::Rc<std::cell::Cell<usize>>,
) {
    let evaluator = Evaluator::new(spec);
    let counter = std::rc::Rc::new(std::cell::Cell::new(0usize));
    let c2 = counter.clone();
    let oracle = move |t: &Topology| -> Option<TopoObservation> {
        let (design, sims) = evaluator.size(t, &sizing);
        c2.set(c2.get() + sims);
        let design = design?;
        Some(TopoObservation {
            objective: design.fom.max(1e-3).log10(),
            constraints: spec.constraints(&design.performance),
            metrics: vec![design.fom],
        })
    };
    (oracle, counter)
}

fn tiny_sizing() -> BoConfig {
    BoConfig {
        n_init: 4,
        n_iter: 4,
        n_candidates: 20,
        seed: 1,
    }
}

#[test]
fn all_three_methods_consume_matched_simulation_budgets() {
    let spec = Spec::s1();

    let (oracle, sims) = circuit_oracle(spec, tiny_sizing());
    let into = topology_bo(
        &TopoBoConfig {
            n_init: 4,
            n_iter: 4,
            pool_size: 20,
            seed: 0,
            ..TopoBoConfig::default()
        },
        oracle,
    );
    let into_sims = sims.get();

    let (oracle, sims) = circuit_oracle(spec, tiny_sizing());
    let ga = fe_ga(
        &FeGaConfig {
            population: 4,
            n_iter: 4,
            seed: 0,
            ..FeGaConfig::default()
        },
        oracle,
    );
    let ga_sims = sims.get();

    let (oracle, sims) = circuit_oracle(spec, tiny_sizing());
    let vgae = vgae_bo(
        &VgaeBoConfig {
            n_init: 4,
            n_iter: 4,
            train_samples: 200,
            acq_candidates: 20,
            seed: 0,
            ..VgaeBoConfig::default()
        },
        oracle,
    );
    let vgae_sims = sims.get();

    // 8 topologies × 8 sims each for every method.
    assert_eq!(into.history.len(), 8);
    assert_eq!(ga.history.len(), 8);
    assert_eq!(vgae.history.len(), 8);
    assert_eq!(into_sims, 64);
    assert_eq!(ga_sims, 64);
    assert_eq!(vgae_sims, 64);
}

#[test]
fn every_method_tracks_its_best_record() {
    let spec = Spec::s1();
    let (oracle, _) = circuit_oracle(spec, tiny_sizing());
    let run = fe_ga(
        &FeGaConfig {
            population: 4,
            n_iter: 6,
            seed: 3,
            ..FeGaConfig::default()
        },
        oracle,
    );
    let best = run.best_record().expect("non-empty history");
    // The best record is at least as good as every feasible record.
    for r in &run.history {
        if r.observation.is_feasible() {
            assert!(
                best.observation.is_feasible()
                    && best.observation.objective >= r.observation.objective
            );
        }
    }
}
