//! The Weisfeiler–Lehman subtree kernel of Section III-B.
//!
//! Feature extraction follows Fig. 4 of the paper: at `h = 0` every node is
//! labelled by its type and label frequencies form the initial feature
//! vector; each further iteration aggregates every node's label with the
//! sorted multiset of its neighbors' labels, compresses the aggregate into a
//! fresh symbol, and appends the new symbol counts to the feature vector.
//! The kernel between two graphs is the inner product of their feature
//! vectors (Eq. 2).
//!
//! Compressed symbols are interned in a [`WlFeaturizer`] shared by all
//! graphs of an optimization run, so feature ids are comparable across
//! graphs and can be traced back to concrete subcircuit structures — the
//! basis of the paper's interpretability story.

use crate::circuit_graph::CircuitGraph;
use crate::sparse::SparseVec;
use oa_circuit::Topology;
use std::collections::HashMap;

/// Hit/miss counters of the per-topology feature cache.
///
/// Exposed so benchmarks and long optimization runs can report how much
/// featurization work the cache is absorbing.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WlCacheStats {
    /// Featurizations served from the cache.
    pub hits: u64,
    /// Featurizations computed from scratch (and then cached).
    pub misses: u64,
}

impl WlCacheStats {
    /// Fraction of lookups served from the cache (0 when none were made).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// Shared label dictionary and feature extractor.
///
/// # Examples
///
/// ```
/// use oa_circuit::Topology;
/// use oa_graph::{CircuitGraph, WlFeaturizer};
///
/// let mut wl = WlFeaturizer::new();
/// let g = CircuitGraph::from_topology(&Topology::bare_cascade());
/// let f = wl.featurize(&g, 2);
/// assert_eq!(f.max_h(), 2);
/// // Self-similarity is positive.
/// assert!(f.kernel(&f, 1) > 0.0);
/// ```
#[derive(Debug, Clone, Default)]
pub struct WlFeaturizer {
    labels: Vec<String>,
    map: HashMap<String, u32>,
    /// Memoized features per `(topology index, h_max)`.
    ///
    /// Valid because featurization is a pure function of the topology,
    /// the level count, and the dictionary — and re-featurizing a graph
    /// whose labels are already interned never mutates the dictionary, so
    /// serving a hit is observationally identical to recomputing.
    cache: HashMap<(usize, usize), WlFeatures>,
    hits: u64,
    misses: u64,
}

impl WlFeaturizer {
    /// Creates an empty dictionary.
    pub fn new() -> Self {
        WlFeaturizer::default()
    }

    /// Number of distinct labels interned so far.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// Returns `true` if no label has been interned yet.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    fn intern(&mut self, s: String) -> u32 {
        if let Some(&id) = self.map.get(&s) {
            return id;
        }
        let id = self.labels.len() as u32;
        self.labels.push(s.clone());
        self.map.insert(s, id);
        id
    }

    /// The id of the `h = 0` feature corresponding to a raw node label
    /// (e.g. a subcircuit mnemonic), if it has been seen.
    pub fn initial_label_id(&self, label: &str) -> Option<u32> {
        self.map.get(&format!("0:{label}")).copied()
    }

    /// The raw interned string behind a feature id.
    pub fn raw_label(&self, id: u32) -> Option<&str> {
        self.labels.get(id as usize).map(String::as_str)
    }

    /// The WL iteration (`h` level) a feature id belongs to.
    pub fn level_of(&self, id: u32) -> Option<usize> {
        self.raw_label(id)
            .and_then(|s| s.split(':').next())
            .and_then(|p| p.parse().ok())
    }

    /// Expands a compressed feature id into a human-readable structure
    /// description, e.g. `(RCs | v1, vout)` for the `h = 1` neighborhood of
    /// a series-RC compensation subcircuit.
    pub fn describe(&self, id: u32) -> String {
        match self.raw_label(id) {
            None => format!("?{id}"),
            Some(raw) => {
                let Some((level, rest)) = raw.split_once(':') else {
                    return raw.to_owned();
                };
                if level == "0" {
                    return rest.to_owned();
                }
                // Format "h:parent|n1,n2,..." with ids referencing level h-1.
                let Some((parent, neigh)) = rest.split_once('|') else {
                    return raw.to_owned();
                };
                let parent_desc = parent
                    .parse::<u32>()
                    .map(|p| self.describe(p))
                    .unwrap_or_else(|_| parent.to_owned());
                let neigh_desc: Vec<String> = neigh
                    .split(',')
                    .filter(|s| !s.is_empty())
                    .map(|s| {
                        s.parse::<u32>()
                            .map(|p| self.describe(p))
                            .unwrap_or_else(|_| s.to_owned())
                    })
                    .collect();
                format!("({} | {})", parent_desc, neigh_desc.join(", "))
            }
        }
    }

    /// Extracts WL features of `graph` for all levels `0..=h_max`.
    pub fn featurize(&mut self, graph: &CircuitGraph, h_max: usize) -> WlFeatures {
        let n = graph.node_count();
        let mut levels = Vec::with_capacity(h_max + 1);
        let mut node_labels: Vec<Vec<u32>> = Vec::with_capacity(h_max + 1);

        // h = 0: raw type labels.
        let mut current: Vec<u32> = (0..n)
            .map(|i| self.intern(format!("0:{}", graph.label(i))))
            .collect();
        levels.push(SparseVec::from_pairs(current.iter().map(|&id| (id, 1.0))));
        node_labels.push(current.clone());

        // h ≥ 1: neighborhood aggregation + compression.
        for h in 1..=h_max {
            let mut next = Vec::with_capacity(n);
            for i in 0..n {
                // lint: allow(panic, adjacency indices are below node_count by CircuitGraph construction, and current has node_count entries)
                let mut neigh: Vec<u32> = graph.neighbors(i).iter().map(|&j| current[j]).collect();
                neigh.sort_unstable();
                let agg = format!(
                    "{h}:{}|{}",
                    // lint: allow(panic, i < n = node_count and current has n entries)
                    current[i],
                    neigh
                        .iter()
                        .map(u32::to_string)
                        .collect::<Vec<_>>()
                        .join(",")
                );
                next.push(self.intern(agg));
            }
            levels.push(SparseVec::from_pairs(next.iter().map(|&id| (id, 1.0))));
            node_labels.push(next.clone());
            current = next;
        }
        WlFeatures {
            levels,
            node_labels,
        }
    }

    /// Memoized featurization of a [`Topology`].
    ///
    /// The first request for a `(topology, h_max)` pair builds the circuit
    /// graph and runs the full WL extraction; repeats — across BO
    /// iterations, candidate pools, and the interpretability pass — are
    /// served from the cache. Use [`WlFeaturizer::featurize`] directly for
    /// graphs that do not come from an indexed topology.
    pub fn featurize_topology(&mut self, topology: &Topology, h_max: usize) -> WlFeatures {
        let key = (topology.index(), h_max);
        if let Some(cached) = self.cache.get(&key) {
            self.hits += 1;
            return cached.clone();
        }
        self.misses += 1;
        let features = self.featurize(&CircuitGraph::from_topology(topology), h_max);
        self.cache.insert(key, features.clone());
        features
    }

    /// Hit/miss counters of the topology feature cache.
    pub fn cache_stats(&self) -> WlCacheStats {
        WlCacheStats {
            hits: self.hits,
            misses: self.misses,
        }
    }
}

/// Per-graph WL features: one label-count vector per iteration level, plus
/// the per-node label ids (used to map subcircuit nodes back to features).
#[derive(Debug, Clone, PartialEq)]
pub struct WlFeatures {
    levels: Vec<SparseVec>,
    node_labels: Vec<Vec<u32>>,
}

impl WlFeatures {
    /// Highest extracted level.
    pub fn max_h(&self) -> usize {
        self.levels.len() - 1
    }

    /// The count vector of a single level.
    ///
    /// # Panics
    ///
    /// Panics if `h > self.max_h()`.
    pub fn level(&self, h: usize) -> &SparseVec {
        &self.levels[h]
    }

    /// The label id of node `i` at level `h`.
    ///
    /// # Panics
    ///
    /// Panics if `h` or `i` is out of range.
    pub fn node_label(&self, h: usize, i: usize) -> u32 {
        self.node_labels[h][i]
    }

    /// The full feature vector `φ(h)(G)`: all level counts from 0 to `h`
    /// merged (feature ids never collide across levels).
    ///
    /// # Panics
    ///
    /// Panics if `h > self.max_h()`.
    pub fn vector(&self, h: usize) -> SparseVec {
        assert!(h <= self.max_h(), "level {h} not extracted");
        let mut out = SparseVec::new();
        for lvl in &self.levels[..=h] {
            out = out.merge(lvl);
        }
        out
    }

    /// The WL kernel of Eq. 2: `k(G, G') = ⟨φ(h)(G), φ(h)(G')⟩`, computed
    /// level-by-level.
    ///
    /// # Panics
    ///
    /// Panics if either feature set was extracted with fewer than `h`
    /// levels.
    pub fn kernel(&self, other: &WlFeatures, h: usize) -> f64 {
        // lint: allow(panic, documented contract; WlGp::fit caps h at the minimum extracted max_h and WlFeatures::kernel callers honor it)
        assert!(
            h <= self.max_h() && h <= other.max_h(),
            "kernel level {h} exceeds extracted levels"
        );
        // lint: allow(panic, l <= h <= max_h and levels holds max_h + 1 histograms)
        (0..=h).map(|l| self.levels[l].dot(&other.levels[l])).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oa_circuit::{PassiveKind, SubcircuitType, Topology, VariableEdge};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn graph_of(t: &Topology) -> CircuitGraph {
        CircuitGraph::from_topology(t)
    }

    #[test]
    fn level0_counts_node_labels() {
        let mut wl = WlFeaturizer::new();
        let g = graph_of(&Topology::bare_cascade());
        let f = wl.featurize(&g, 0);
        // Three stages share the "gm" label.
        let gm_id = wl.initial_label_id("gm").unwrap();
        assert_eq!(f.level(0).get(gm_id), 3.0);
        // Circuit nodes are singletons.
        let vin_id = wl.initial_label_id("vin").unwrap();
        assert_eq!(f.level(0).get(vin_id), 1.0);
    }

    #[test]
    fn self_kernel_equals_squared_norm() {
        let mut wl = WlFeaturizer::new();
        let g = graph_of(&Topology::bare_cascade());
        let f = wl.featurize(&g, 3);
        let v = f.vector(3);
        assert!((f.kernel(&f, 3) - v.dot(&v)).abs() < 1e-12);
    }

    #[test]
    fn kernel_is_symmetric_and_positive_on_diagonal() {
        let mut wl = WlFeaturizer::new();
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let graphs: Vec<_> = (0..10)
            .map(|_| graph_of(&Topology::random(&mut rng)))
            .collect();
        let feats: Vec<_> = graphs.iter().map(|g| wl.featurize(g, 2)).collect();
        for a in &feats {
            assert!(a.kernel(a, 2) > 0.0);
            for b in &feats {
                assert_eq!(a.kernel(b, 2), b.kernel(a, 2));
            }
        }
    }

    #[test]
    fn identical_topologies_have_identical_features() {
        let mut wl = WlFeaturizer::new();
        let t = Topology::from_index(123).unwrap();
        let f1 = wl.featurize(&graph_of(&t), 4);
        let f2 = wl.featurize(&graph_of(&t), 4);
        assert_eq!(f1, f2);
    }

    #[test]
    fn different_compensation_is_distinguished_at_h0() {
        let mut wl = WlFeaturizer::new();
        let a = Topology::bare_cascade()
            .with_type(
                VariableEdge::V1Vout,
                SubcircuitType::Passive(PassiveKind::C),
            )
            .unwrap();
        let b = Topology::bare_cascade()
            .with_type(
                VariableEdge::V1Vout,
                SubcircuitType::Passive(PassiveKind::SeriesRc),
            )
            .unwrap();
        let fa = wl.featurize(&graph_of(&a), 0);
        let fb = wl.featurize(&graph_of(&b), 0);
        assert_ne!(fa.level(0), fb.level(0));
    }

    #[test]
    fn same_type_on_different_edges_is_distinguished_at_h1_not_h0() {
        let mut wl = WlFeaturizer::new();
        let a = Topology::bare_cascade()
            .with_type(VariableEdge::V1Gnd, SubcircuitType::Passive(PassiveKind::C))
            .unwrap();
        let b = Topology::bare_cascade()
            .with_type(VariableEdge::V2Gnd, SubcircuitType::Passive(PassiveKind::C))
            .unwrap();
        let fa = wl.featurize(&graph_of(&a), 1);
        let fb = wl.featurize(&graph_of(&b), 1);
        // Same multiset of node types → identical h = 0 counts…
        assert_eq!(fa.level(0), fb.level(0));
        // …but the neighborhood aggregation tells v1 from v2.
        assert_ne!(fa.level(1), fb.level(1));
    }

    #[test]
    fn deeper_levels_only_add_similarity_mass() {
        let mut wl = WlFeaturizer::new();
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        let a = wl.featurize(&graph_of(&Topology::random(&mut rng)), 4);
        let b = wl.featurize(&graph_of(&Topology::random(&mut rng)), 4);
        let mut prev = 0.0;
        for h in 0..=4 {
            let k = a.kernel(&b, h);
            assert!(k >= prev, "kernel not monotone in h");
            prev = k;
        }
    }

    #[test]
    fn describe_expands_compressed_labels() {
        let mut wl = WlFeaturizer::new();
        let t = Topology::bare_cascade()
            .with_type(
                VariableEdge::V1Vout,
                SubcircuitType::Passive(PassiveKind::SeriesRc),
            )
            .unwrap();
        let g = graph_of(&t);
        let f = wl.featurize(&g, 1);
        let sub = g.variable_node(VariableEdge::V1Vout).unwrap();
        let id1 = f.node_label(1, sub);
        let desc = wl.describe(id1);
        assert!(desc.contains("RCs"), "desc = {desc}");
        assert!(
            desc.contains("v1") && desc.contains("vout"),
            "desc = {desc}"
        );
    }

    #[test]
    fn featurizer_is_shared_across_graphs() {
        let mut wl = WlFeaturizer::new();
        let g1 = graph_of(&Topology::bare_cascade());
        let f1 = wl.featurize(&g1, 1);
        let before = wl.len();
        // Featurizing the same graph again must not grow the dictionary.
        let f2 = wl.featurize(&g1, 1);
        assert_eq!(wl.len(), before);
        assert_eq!(f1, f2);
    }

    #[test]
    fn topology_cache_returns_identical_features() {
        let mut cached = WlFeaturizer::new();
        let mut fresh = WlFeaturizer::new();
        let t = Topology::from_index(123).unwrap();
        let via_cache_miss = cached.featurize_topology(&t, 3);
        let via_cache_hit = cached.featurize_topology(&t, 3);
        let uncached = fresh.featurize(&graph_of(&t), 3);
        assert_eq!(via_cache_miss, via_cache_hit);
        assert_eq!(via_cache_miss, uncached);
        assert_eq!(cached.cache_stats(), WlCacheStats { hits: 1, misses: 1 });
    }

    #[test]
    fn topology_cache_distinguishes_levels() {
        let mut wl = WlFeaturizer::new();
        let t = Topology::from_index(7).unwrap();
        let shallow = wl.featurize_topology(&t, 1);
        let deep = wl.featurize_topology(&t, 3);
        assert_eq!(shallow.max_h(), 1);
        assert_eq!(deep.max_h(), 3);
        assert_eq!(wl.cache_stats().misses, 2);
        // Deep features agree with shallow ones on the shared levels.
        assert_eq!(shallow.level(1), deep.level(1));
    }

    #[test]
    fn topology_cache_survives_clone() {
        let mut wl = WlFeaturizer::new();
        let t = Topology::from_index(42).unwrap();
        let f = wl.featurize_topology(&t, 2);
        let mut copy = wl.clone();
        assert_eq!(copy.featurize_topology(&t, 2), f);
        assert_eq!(copy.cache_stats().hits, 1);
    }

    #[test]
    fn cache_hit_rate_is_well_defined() {
        assert_eq!(WlCacheStats::default().hit_rate(), 0.0);
        let stats = WlCacheStats { hits: 3, misses: 1 };
        assert!((stats.hit_rate() - 0.75).abs() < 1e-15);
    }

    #[test]
    #[should_panic(expected = "exceeds extracted levels")]
    fn kernel_panics_beyond_extracted_levels() {
        let mut wl = WlFeaturizer::new();
        let g = graph_of(&Topology::bare_cascade());
        let f = wl.featurize(&g, 1);
        let _ = f.kernel(&f, 3);
    }
}
