//! Sparse feature vectors for WL label counts.

use std::collections::BTreeMap;

/// A sparse vector of `(feature id, count)` pairs, sorted by id.
///
/// WL feature maps count label occurrences; with ≤ 13 graph nodes the
/// vectors are tiny, so a sorted pair list beats any hash structure.
///
/// # Examples
///
/// ```
/// use oa_graph::SparseVec;
///
/// let a = SparseVec::from_pairs(vec![(1, 2.0), (5, 1.0)]);
/// let b = SparseVec::from_pairs(vec![(1, 3.0), (4, 7.0)]);
/// assert_eq!(a.dot(&b), 6.0);
/// assert_eq!(a.get(5), 1.0);
/// assert_eq!(a.get(4), 0.0);
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SparseVec {
    entries: Vec<(u32, f64)>,
}

impl SparseVec {
    /// Creates an empty vector.
    pub fn new() -> Self {
        SparseVec::default()
    }

    /// Builds from arbitrary pairs; duplicate ids are summed and the result
    /// is sorted. Zero-valued entries are dropped.
    pub fn from_pairs<I: IntoIterator<Item = (u32, f64)>>(pairs: I) -> Self {
        let mut map: BTreeMap<u32, f64> = BTreeMap::new();
        for (id, v) in pairs {
            *map.entry(id).or_insert(0.0) += v;
        }
        SparseVec {
            entries: map.into_iter().filter(|&(_, v)| v != 0.0).collect(),
        }
    }

    /// Number of non-zero entries.
    pub fn nnz(&self) -> usize {
        self.entries.len()
    }

    /// Value at feature `id` (0 if absent).
    pub fn get(&self, id: u32) -> f64 {
        match self.entries.binary_search_by_key(&id, |e| e.0) {
            Ok(i) => self.entries[i].1,
            Err(_) => 0.0,
        }
    }

    /// Iterates over `(id, value)` pairs in id order.
    pub fn iter(&self) -> impl Iterator<Item = (u32, f64)> + '_ {
        self.entries.iter().copied()
    }

    /// Inner product with another sparse vector.
    pub fn dot(&self, other: &SparseVec) -> f64 {
        let (mut i, mut j) = (0usize, 0usize);
        let mut acc = 0.0;
        while i < self.entries.len() && j < other.entries.len() {
            let (ia, va) = self.entries[i];
            let (ib, vb) = other.entries[j];
            match ia.cmp(&ib) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    acc += va * vb;
                    i += 1;
                    j += 1;
                }
            }
        }
        acc
    }

    /// Merges another vector into this one (entry-wise sum).
    pub fn merge(&self, other: &SparseVec) -> SparseVec {
        SparseVec::from_pairs(self.iter().chain(other.iter()))
    }

    /// Euclidean norm.
    pub fn norm(&self) -> f64 {
        self.dot(self).sqrt()
    }
}

impl FromIterator<(u32, f64)> for SparseVec {
    fn from_iter<I: IntoIterator<Item = (u32, f64)>>(iter: I) -> Self {
        SparseVec::from_pairs(iter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn duplicates_are_summed() {
        let v = SparseVec::from_pairs(vec![(3, 1.0), (3, 2.0), (1, 1.0)]);
        assert_eq!(v.get(3), 3.0);
        assert_eq!(v.nnz(), 2);
    }

    #[test]
    fn zero_entries_are_dropped() {
        let v = SparseVec::from_pairs(vec![(3, 1.0), (3, -1.0), (1, 2.0)]);
        assert_eq!(v.nnz(), 1);
    }

    #[test]
    fn dot_is_symmetric() {
        let a = SparseVec::from_pairs(vec![(0, 1.0), (2, 4.0), (9, -1.0)]);
        let b = SparseVec::from_pairs(vec![(2, 0.5), (9, 3.0)]);
        assert_eq!(a.dot(&b), b.dot(&a));
        assert_eq!(a.dot(&b), 2.0 - 3.0);
    }

    #[test]
    fn merge_sums_entrywise() {
        let a = SparseVec::from_pairs(vec![(1, 1.0)]);
        let b = SparseVec::from_pairs(vec![(1, 2.0), (2, 5.0)]);
        let m = a.merge(&b);
        assert_eq!(m.get(1), 3.0);
        assert_eq!(m.get(2), 5.0);
    }

    #[test]
    fn norm_of_unit_vector() {
        let v = SparseVec::from_pairs(vec![(7, 1.0)]);
        assert_eq!(v.norm(), 1.0);
    }

    #[test]
    fn empty_dot_is_zero() {
        assert_eq!(SparseVec::new().dot(&SparseVec::new()), 0.0);
    }
}
