//! The circuit-graph representation of Section III-A.
//!
//! Both circuit nodes and subcircuits become graph nodes; connections become
//! undirected edges. Key representation choices from the paper:
//!
//! * the graph is **undirected** and may contain loops (feedforward and
//!   feedback modules close cycles);
//! * **subcircuits are nodes**, not edge labels, so the WL kernel can
//!   extract interpretable subcircuit-centred structures;
//! * "no connection" subcircuits are **elided** rather than given a type,
//!   keeping the graph aligned with the actual circuit.
//!
//! With five circuit nodes, three fixed stages and at most five variable
//! subcircuits, every graph has `n ≤ 13` nodes and `m ≤ 16` edges, exactly
//! the bounds the paper quotes for the WL kernel cost analysis.

use oa_circuit::{CircuitNode, Topology, VariableEdge};
use std::fmt;

/// Where a graph node comes from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NodeOrigin {
    /// One of the five circuit nodes.
    Circuit(CircuitNode),
    /// Fixed main amplifier stage `0..3`.
    FixedStage(usize),
    /// The variable subcircuit sitting on an edge.
    Variable(VariableEdge),
}

/// An undirected, node-labelled circuit graph.
///
/// # Examples
///
/// ```
/// use oa_circuit::Topology;
/// use oa_graph::CircuitGraph;
///
/// let g = CircuitGraph::from_topology(&Topology::bare_cascade());
/// assert_eq!(g.node_count(), 8);  // 5 circuit nodes + 3 stages
/// assert_eq!(g.edge_count(), 6);  // each stage touches two circuit nodes
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct CircuitGraph {
    labels: Vec<String>,
    origins: Vec<NodeOrigin>,
    adj: Vec<Vec<usize>>,
    edge_count: usize,
}

impl CircuitGraph {
    /// Builds the circuit graph of a behavior-level topology.
    pub fn from_topology(topology: &Topology) -> Self {
        let mut labels = Vec::new();
        let mut origins = Vec::new();

        // The five circuit nodes, labelled by name.
        let mut circuit_idx = [0usize; 5];
        for (i, cn) in CircuitNode::ALL.iter().enumerate() {
            // lint: allow(panic, i enumerates CircuitNode::ALL, whose length is the array length 5)
            circuit_idx[i] = labels.len();
            labels.push(cn.name().to_owned());
            origins.push(NodeOrigin::Circuit(*cn));
        }
        let idx_of = |cn: CircuitNode| -> usize {
            // lint: allow(panic, position over CircuitNode::ALL yields an index below 5)
            circuit_idx[CircuitNode::ALL
                .iter()
                .position(|&c| c == cn)
                // lint: allow(panic, every CircuitNode value is in CircuitNode::ALL)
                .expect("known node")]
        };

        let mut adj: Vec<Vec<usize>> = vec![Vec::new(); labels.len()];
        let mut edge_count = 0usize;
        let connect = |adj: &mut Vec<Vec<usize>>, a: usize, b: usize, count: &mut usize| {
            // lint: allow(panic, a and b are indices of labels pushed above; adj was sized to labels.len())
            adj[a].push(b);
            // lint: allow(panic, a and b are indices of labels pushed above; adj was sized to labels.len())
            adj[b].push(a);
            *count += 1;
        };

        // Fixed main stages: all share the behavioral label "gm"; their
        // position in the cascade is recovered by the WL neighborhood
        // aggregation, not by the initial label.
        let stage_endpoints = [
            (CircuitNode::Vin, CircuitNode::V1),
            (CircuitNode::V1, CircuitNode::V2),
            (CircuitNode::V2, CircuitNode::Vout),
        ];
        for (i, (a, b)) in stage_endpoints.iter().enumerate() {
            let n = labels.len();
            labels.push("gm".to_owned());
            origins.push(NodeOrigin::FixedStage(i));
            adj.push(Vec::new());
            connect(&mut adj, n, idx_of(*a), &mut edge_count);
            connect(&mut adj, n, idx_of(*b), &mut edge_count);
        }

        // Variable subcircuits, eliding NoConn.
        for edge in VariableEdge::ALL {
            let ty = topology.type_on(edge);
            if ty.is_no_conn() {
                continue;
            }
            let (a, b) = edge.endpoints();
            let n = labels.len();
            labels.push(ty.mnemonic());
            origins.push(NodeOrigin::Variable(edge));
            adj.push(Vec::new());
            connect(&mut adj, n, idx_of(a), &mut edge_count);
            connect(&mut adj, n, idx_of(b), &mut edge_count);
        }

        for neighbors in &mut adj {
            neighbors.sort_unstable();
        }
        CircuitGraph {
            labels,
            origins,
            adj,
            edge_count,
        }
    }

    /// Number of graph nodes.
    pub fn node_count(&self) -> usize {
        self.labels.len()
    }

    /// Number of undirected edges.
    pub fn edge_count(&self) -> usize {
        self.edge_count
    }

    /// Label of node `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn label(&self, i: usize) -> &str {
        // lint: allow(panic, documented contract; the WL loop passes i < node_count)
        &self.labels[i]
    }

    /// Origin (provenance) of node `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn origin(&self, i: usize) -> NodeOrigin {
        self.origins[i]
    }

    /// Sorted neighbor list of node `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn neighbors(&self, i: usize) -> &[usize] {
        // lint: allow(panic, documented contract; the WL loop passes i < node_count)
        &self.adj[i]
    }

    /// Index of the graph node representing the variable subcircuit on
    /// `edge`, if that edge is connected.
    pub fn variable_node(&self, edge: VariableEdge) -> Option<usize> {
        self.origins
            .iter()
            .position(|&o| o == NodeOrigin::Variable(edge))
    }

    /// The same graph with node `i` renumbered to `perm[i]` — a pure
    /// relabelling of node indices. Labels, origins and adjacency move
    /// with their node, so the result is isomorphic to `self`, and any
    /// node-order-invariant quantity (WL features, kernels) must agree.
    ///
    /// # Panics
    ///
    /// Panics if `perm` is not a permutation of `0..node_count()`.
    pub fn permuted(&self, perm: &[usize]) -> CircuitGraph {
        let n = self.node_count();
        assert_eq!(perm.len(), n, "permutation length must match node count");
        let mut seen = vec![false; n];
        for &p in perm {
            assert!(p < n, "permutation entry {p} out of range");
            assert!(!seen[p], "permutation repeats entry {p}");
            seen[p] = true;
        }

        let mut labels = vec![String::new(); n];
        let mut origins = self.origins.clone();
        let mut adj = vec![Vec::new(); n];
        for (i, &p) in perm.iter().enumerate() {
            labels[p] = self.labels[i].clone();
            origins[p] = self.origins[i];
            let mut neighbors: Vec<usize> = self.adj[i].iter().map(|&j| perm[j]).collect();
            neighbors.sort_unstable();
            adj[p] = neighbors;
        }
        CircuitGraph {
            labels,
            origins,
            adj,
            edge_count: self.edge_count,
        }
    }
}

impl fmt::Display for CircuitGraph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "graph: {} nodes, {} edges",
            self.node_count(),
            self.edge_count()
        )?;
        for i in 0..self.node_count() {
            write!(f, "  [{}] {} ->", i, self.labels[i])?;
            for &j in &self.adj[i] {
                write!(f, " {}", self.labels[j])?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oa_circuit::{GmComposite, GmDirection, GmPolarity, PassiveKind, SubcircuitType};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn bare_cascade_graph_shape() {
        let g = CircuitGraph::from_topology(&Topology::bare_cascade());
        assert_eq!(g.node_count(), 8);
        assert_eq!(g.edge_count(), 6);
        // gnd is present but isolated in the bare cascade.
        let gnd = (0..g.node_count())
            .find(|&i| g.label(i) == "gnd")
            .expect("gnd node exists");
        assert!(g.neighbors(gnd).is_empty());
    }

    #[test]
    fn paper_bounds_hold_over_random_topologies() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        for _ in 0..500 {
            let t = Topology::random(&mut rng);
            let g = CircuitGraph::from_topology(&t);
            assert!(g.node_count() <= 13, "n = {}", g.node_count());
            assert!(g.edge_count() <= 16, "m = {}", g.edge_count());
        }
    }

    #[test]
    fn fully_connected_topology_reaches_bounds() {
        let t = Topology::bare_cascade()
            .with_type(
                VariableEdge::VinV2,
                SubcircuitType::Gm {
                    polarity: GmPolarity::Plus,
                    direction: GmDirection::Forward,
                    composite: GmComposite::Bare,
                },
            )
            .unwrap()
            .with_type(
                VariableEdge::VinVout,
                SubcircuitType::Gm {
                    polarity: GmPolarity::Minus,
                    direction: GmDirection::Forward,
                    composite: GmComposite::Bare,
                },
            )
            .unwrap()
            .with_type(
                VariableEdge::V1Vout,
                SubcircuitType::Passive(PassiveKind::SeriesRc),
            )
            .unwrap()
            .with_type(VariableEdge::V1Gnd, SubcircuitType::Passive(PassiveKind::R))
            .unwrap()
            .with_type(VariableEdge::V2Gnd, SubcircuitType::Passive(PassiveKind::C))
            .unwrap();
        let g = CircuitGraph::from_topology(&t);
        assert_eq!(g.node_count(), 13);
        assert_eq!(g.edge_count(), 16);
    }

    #[test]
    fn no_conn_subcircuits_are_elided() {
        let t = Topology::bare_cascade()
            .with_type(VariableEdge::V1Gnd, SubcircuitType::Passive(PassiveKind::C))
            .unwrap();
        let g = CircuitGraph::from_topology(&t);
        assert_eq!(g.node_count(), 9);
        assert!(g.variable_node(VariableEdge::V1Gnd).is_some());
        assert!(g.variable_node(VariableEdge::V2Gnd).is_none());
    }

    #[test]
    fn variable_node_label_is_type_mnemonic() {
        let ty = SubcircuitType::Passive(PassiveKind::SeriesRc);
        let t = Topology::bare_cascade()
            .with_type(VariableEdge::V1Vout, ty)
            .unwrap();
        let g = CircuitGraph::from_topology(&t);
        let n = g.variable_node(VariableEdge::V1Vout).unwrap();
        assert_eq!(g.label(n), "RCs");
        // Its neighbors are v1 and vout.
        let names: Vec<&str> = g.neighbors(n).iter().map(|&j| g.label(j)).collect();
        assert_eq!(names, vec!["v1", "vout"]);
    }

    #[test]
    fn feedback_gm_closes_a_cycle() {
        // v1 -> gm2 -> v2 -> gm3 -> vout -> fb -> v1 is a loop; undirected
        // representation keeps it (unlike a DAG embedding).
        let t = Topology::bare_cascade()
            .with_type(
                VariableEdge::V1Vout,
                SubcircuitType::Gm {
                    polarity: GmPolarity::Minus,
                    direction: GmDirection::Reverse,
                    composite: GmComposite::Bare,
                },
            )
            .unwrap();
        let g = CircuitGraph::from_topology(&t);
        // A connected component containing a cycle has edges >= nodes.
        // Restrict to nodes reachable from v1.
        let start = (0..g.node_count()).find(|&i| g.label(i) == "v1").unwrap();
        let mut seen = vec![false; g.node_count()];
        let mut stack = vec![start];
        let mut nodes = 0;
        let mut half_edges = 0;
        while let Some(i) = stack.pop() {
            if seen[i] {
                continue;
            }
            seen[i] = true;
            nodes += 1;
            half_edges += g.neighbors(i).len();
            stack.extend(g.neighbors(i).iter().copied());
        }
        assert!(half_edges / 2 >= nodes, "component is a tree, loop lost");
    }

    #[test]
    fn display_lists_all_nodes() {
        let g = CircuitGraph::from_topology(&Topology::bare_cascade());
        let text = g.to_string();
        assert_eq!(text.lines().count(), 1 + g.node_count());
    }
}
