//! Circuit-graph representation and Weisfeiler–Lehman graph kernel
//! (Sections III-A and III-B of the INTO-OA paper).
//!
//! * [`CircuitGraph`] — undirected, node-labelled graphs in which both
//!   circuit nodes and subcircuits are graph nodes; "no connection"
//!   subcircuits are elided.
//! * [`WlFeaturizer`] / [`WlFeatures`] — iterative WL feature extraction
//!   with a shared label dictionary, the kernel of Eq. 2, and
//!   human-readable expansion of compressed labels for interpretability.
//! * [`SparseVec`] — the sparse count vectors the features live in.
//!
//! # Examples
//!
//! Measure the structural similarity of two topologies:
//!
//! ```
//! use oa_circuit::Topology;
//! use oa_graph::{CircuitGraph, WlFeaturizer};
//!
//! # fn main() -> Result<(), oa_circuit::CircuitError> {
//! let mut wl = WlFeaturizer::new();
//! let a = wl.featurize(&CircuitGraph::from_topology(&Topology::from_index(0)?), 2);
//! let b = wl.featurize(&CircuitGraph::from_topology(&Topology::from_index(1)?), 2);
//! let k = a.kernel(&b, 2);
//! assert!(k > 0.0); // shared three-stage backbone
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod circuit_graph;
mod sparse;
mod wl;

pub use circuit_graph::{CircuitGraph, NodeOrigin};
pub use sparse::SparseVec;
pub use wl::{WlCacheStats, WlFeatures, WlFeaturizer};
