//! Property tests for the WL featurizer, pinned to the three invariants
//! a graph kernel must satisfy to be usable inside a GP surrogate:
//!
//! 1. **Permutation invariance** — renumbering graph nodes changes
//!    nothing observable: per-level count vectors, kernel values, and
//!    (pointwise, through the permutation) the node label sequences.
//! 2. **Memoized = naive** — `featurize_topology` (the per-topology
//!    cache used on the optimizer hot path) agrees exactly with a fresh
//!    `featurize` of the elaborated graph, on both miss and hit.
//! 3. **PSD-ness** — the Gram matrix over a random topology batch is
//!    symmetric positive-semidefinite (Cholesky with tiny jitter
//!    succeeds, and random quadratic forms are non-negative).

use oa_circuit::{Topology, DESIGN_SPACE_SIZE};
use oa_graph::{CircuitGraph, WlFeaturizer};
use oa_linalg::{Cholesky, Matrix};
use proptest::prelude::*;

fn arb_topology() -> impl Strategy<Value = Topology> {
    (0..DESIGN_SPACE_SIZE).prop_map(|i| Topology::from_index(i).expect("in range"))
}

/// Deterministic permutation of `0..n` from a seed (xorshift64* driven
/// Fisher-Yates), so failures replay from the proptest seed alone.
fn permutation(n: usize, seed: u64) -> Vec<usize> {
    let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
    let mut draw = || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state.wrapping_mul(0x2545_F491_4F6C_DD1D)
    };
    let mut perm: Vec<usize> = (0..n).collect();
    for i in (1..n).rev() {
        let j = (draw() % (i as u64 + 1)) as usize;
        perm.swap(i, j);
    }
    perm
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn permuted_graph_is_the_same_graph(t in arb_topology(), seed in 0u64..u64::MAX) {
        let g = CircuitGraph::from_topology(&t);
        let perm = permutation(g.node_count(), seed);
        let p = g.permuted(&perm);

        prop_assert_eq!(p.node_count(), g.node_count());
        prop_assert_eq!(p.edge_count(), g.edge_count());
        for i in 0..g.node_count() {
            prop_assert_eq!(p.label(perm[i]), g.label(i));
            prop_assert_eq!(p.origin(perm[i]), g.origin(i));
            let mut mapped: Vec<usize> = g.neighbors(i).iter().map(|&j| perm[j]).collect();
            mapped.sort_unstable();
            prop_assert_eq!(p.neighbors(perm[i]), &mapped[..]);
        }
    }

    #[test]
    fn wl_features_are_permutation_invariant(
        t in arb_topology(),
        seed in 0u64..u64::MAX,
        h in 0usize..4,
    ) {
        let g = CircuitGraph::from_topology(&t);
        let perm = permutation(g.node_count(), seed);
        let p = g.permuted(&perm);

        let mut wl = WlFeaturizer::new();
        let fg = wl.featurize(&g, h);
        let fp = wl.featurize(&p, h);

        // Count vectors are order-free, so they must match level by level.
        for level in 0..=h {
            prop_assert!(
                fg.level(level) == fp.level(level),
                "level {} count vectors diverge under a node permutation",
                level
            );
        }
        // Per-node labels follow their node through the permutation.
        for level in 0..=h {
            for (i, &pi) in perm.iter().enumerate() {
                prop_assert_eq!(fg.node_label(level, i), fp.node_label(level, pi));
            }
        }
        // And so does every kernel value that involves the graph.
        let self_k = fg.kernel(&fg, h);
        prop_assert!(
            fg.kernel(&fp, h) == self_k && fp.kernel(&fp, h) == self_k,
            "kernel values diverge under a node permutation"
        );
    }

    #[test]
    fn memoized_features_equal_naive_features(t in arb_topology(), h in 0usize..4) {
        let mut wl = WlFeaturizer::new();
        let miss = wl.featurize_topology(&t, h);
        let hit = wl.featurize_topology(&t, h);
        let naive = wl.featurize(&CircuitGraph::from_topology(&t), h);
        prop_assert!(miss == naive, "cache miss diverged from a direct featurize");
        prop_assert!(hit == naive, "cache hit diverged from a direct featurize");
    }

    #[test]
    fn kernel_gram_matrices_are_psd(
        indices in proptest::collection::vec(0..DESIGN_SPACE_SIZE, 3..10),
        seed in 0u64..u64::MAX,
    ) {
        let mut wl = WlFeaturizer::new();
        let feats: Vec<_> = indices
            .iter()
            .map(|&i| wl.featurize_topology(&Topology::from_index(i).expect("in range"), 2))
            .collect();
        let n = feats.len();
        let k = Matrix::from_fn(n, n, |i, j| feats[i].kernel(&feats[j], 2));

        let scale = (0..n).map(|i| k[(i, i)]).fold(1.0f64, f64::max);
        for i in 0..n {
            for j in 0..n {
                prop_assert!(
                    (k[(i, j)] - k[(j, i)]).abs() <= 1e-12 * scale,
                    "Gram matrix is not symmetric at ({}, {})", i, j
                );
            }
        }

        // PSD up to numerical noise: a hair of jitter must make the
        // factorization go through (duplicate topologies make the exact
        // matrix singular, which is still PSD).
        prop_assert!(
            Cholesky::new_with_jitter(&k, 1e-9 * scale, 8).is_ok(),
            "Gram matrix is not positive-semidefinite"
        );

        // Independent check: random quadratic forms stay non-negative.
        let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
        for _ in 0..8 {
            let z: Vec<f64> = (0..n)
                .map(|_| {
                    state ^= state << 13;
                    state ^= state >> 7;
                    state ^= state << 17;
                    (state.wrapping_mul(0x2545_F491_4F6C_DD1D) >> 11) as f64
                        / (1u64 << 53) as f64
                        - 0.5
                })
                .collect();
            let kz = k.mat_vec(&z);
            let quad: f64 = z.iter().zip(&kz).map(|(a, b)| a * b).sum();
            prop_assert!(quad >= -1e-9 * scale, "quadratic form went negative: {}", quad);
        }
    }
}
