//! Interpretability (Section III-C / IV-B): per-metric WL-GP surrogates,
//! structure-impact gradients, and remove-and-resimulate sensitivity
//! analysis.

use oa_circuit::{SubcircuitType, Topology, VariableEdge};
use oa_gp::WlGp;
use oa_graph::{CircuitGraph, WlFeaturizer};
use oa_sim::OpAmpPerformance;

use crate::error::IntoOaError;
use crate::evaluator::Evaluator;
use crate::optimizer::OptimizationRun;

/// The performance metrics modelled for interpretability. GBW and power
/// are modelled in log10 (they span decades); the reported gradients are in
/// the modelled units.
pub const MODELLED_METRICS: [&str; 4] = ["gain_db", "log10_gbw", "pm_deg", "log10_power"];

/// Per-metric WL-GP models trained on an optimization run's history —
/// "the WL-GP models … trained during optimization" that Section IV-B
/// analyzes.
#[derive(Debug)]
pub struct MetricModels {
    featurizer: WlFeaturizer,
    models: Vec<(String, WlGp)>,
    wl_levels: usize,
}

/// The gradient-based impact report for one variable subcircuit.
#[derive(Debug, Clone, PartialEq)]
pub struct StructureImpact {
    /// The edge the subcircuit occupies.
    pub edge: VariableEdge,
    /// The subcircuit type.
    pub ty: SubcircuitType,
    /// `(metric name, ∂metric/∂count)` for every modelled metric, using the
    /// position-aware `h = 1` feature when the model's selected `h ≥ 1`,
    /// otherwise the type-level `h = 0` feature.
    pub gradients: Vec<(String, f64)>,
}

impl MetricModels {
    /// Trains one WL-GP per metric from the run history.
    ///
    /// # Errors
    ///
    /// Returns [`IntoOaError::Gp`] if a surrogate cannot be trained (e.g.
    /// fewer than one record).
    pub fn fit(run: &OptimizationRun, wl_levels: usize) -> Result<Self, IntoOaError> {
        let mut featurizer = run.featurizer.clone();
        let feats: Vec<_> = run
            .records
            .iter()
            .map(|r| featurizer.featurize_topology(&r.design.topology, wl_levels))
            .collect();

        let metric_values = |name: &str| -> Vec<f64> {
            run.records
                .iter()
                .map(|r| {
                    let p = &r.design.performance;
                    match name {
                        "gain_db" => p.gain_db,
                        "log10_gbw" => p.gbw_hz.max(1.0).log10(),
                        "pm_deg" => p.pm_deg,
                        "log10_power" => p.power_w.max(1e-12).log10(),
                        _ => unreachable!("metric names are fixed"),
                    }
                })
                .collect()
        };

        // All four metric GPs share one reference-counted copy of the
        // training features.
        let feats = std::sync::Arc::new(feats);
        let mut models = Vec::new();
        for name in MODELLED_METRICS {
            let gp = WlGp::fit_shared(feats.clone(), metric_values(name))?;
            models.push((name.to_owned(), gp));
        }
        Ok(MetricModels {
            featurizer,
            models,
            wl_levels,
        })
    }

    /// The modelled metric names.
    pub fn metric_names(&self) -> Vec<&str> {
        self.models.iter().map(|(n, _)| n.as_str()).collect()
    }

    /// The WL-GP for one metric.
    ///
    /// # Errors
    ///
    /// Returns [`IntoOaError::UnknownMetric`] for a name not in
    /// [`MODELLED_METRICS`].
    pub fn model(&self, metric: &str) -> Result<&WlGp, IntoOaError> {
        self.models
            .iter()
            .find(|(n, _)| n == metric)
            .map(|(_, m)| m)
            .ok_or_else(|| IntoOaError::UnknownMetric {
                name: metric.to_owned(),
            })
    }

    /// Posterior prediction `(mean, variance)` of a modelled metric for a
    /// topology (Eq. 3–4 applied to the metric's WL-GP).
    ///
    /// # Errors
    ///
    /// Returns [`IntoOaError::UnknownMetric`] for an unknown metric name and
    /// propagates surrogate errors.
    pub fn predict_metric(
        &self,
        metric: &str,
        topology: &Topology,
    ) -> Result<(f64, f64), IntoOaError> {
        let model = self.model(metric)?;
        let mut featurizer = self.featurizer.clone();
        let feats = featurizer.featurize_topology(topology, self.wl_levels);
        Ok(model.predict(&feats)?)
    }

    /// The gradient of a metric with respect to the *type-level* (`h = 0`)
    /// WL feature of a subcircuit type (Eq. 5). Returns 0 for structures
    /// never seen in training.
    ///
    /// # Errors
    ///
    /// Returns [`IntoOaError::UnknownMetric`] for an unknown metric name.
    pub fn type_gradient(&self, metric: &str, ty: SubcircuitType) -> Result<f64, IntoOaError> {
        let model = self.model(metric)?;
        Ok(self
            .featurizer
            .initial_label_id(&ty.mnemonic())
            .map_or(0.0, |id| model.feature_gradient(id)))
    }

    /// Gradient-based impact report for every connected variable subcircuit
    /// of `topology` — the analysis behind Fig. 6's discussion.
    pub fn structure_report(&self, topology: &Topology) -> Vec<StructureImpact> {
        let graph = CircuitGraph::from_topology(topology);
        let mut featurizer = self.featurizer.clone();
        let feats = featurizer.featurize(&graph, self.wl_levels);

        let mut out = Vec::new();
        for edge in VariableEdge::ALL {
            let ty = topology.type_on(edge);
            if ty.is_no_conn() {
                continue;
            }
            let node = graph
                .variable_node(edge)
                .expect("connected edge has a graph node");
            let mut gradients = Vec::new();
            for (name, model) in &self.models {
                let level = usize::min(1, model.hyperparams().h);
                let id = feats.node_label(level, node);
                gradients.push((name.clone(), model.feature_gradient(id)));
            }
            out.push(StructureImpact {
                edge,
                ty,
                gradients,
            });
        }
        out
    }

    /// Human-readable description of the `h = 1` structure of a subcircuit
    /// node (e.g. `(RCs | v1, vout)`).
    pub fn describe_structure(&self, topology: &Topology, edge: VariableEdge) -> Option<String> {
        let graph = CircuitGraph::from_topology(topology);
        let node = graph.variable_node(edge)?;
        let mut featurizer = self.featurizer.clone();
        let feats = featurizer.featurize(&graph, self.wl_levels.max(1));
        Some(featurizer.describe(feats.node_label(1, node)))
    }
}

/// Result of a remove-and-resimulate sensitivity experiment for one
/// subcircuit (the validation used in Section IV-B).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RemovalSensitivity {
    /// The removed subcircuit's edge.
    pub edge: VariableEdge,
    /// Performance with the subcircuit in place.
    pub with: OpAmpPerformance,
    /// Performance with the subcircuit removed (edge set to no-connection).
    pub without: OpAmpPerformance,
}

impl RemovalSensitivity {
    /// Change in GBW caused by *removing* the structure (Hz).
    pub fn delta_gbw_hz(&self) -> f64 {
        self.without.gbw_hz - self.with.gbw_hz
    }

    /// Change in phase margin caused by removing the structure (degrees).
    pub fn delta_pm_deg(&self) -> f64 {
        self.without.pm_deg - self.with.pm_deg
    }
}

/// Removes the variable subcircuit on `edge` and re-simulates, holding all
/// other device values fixed.
///
/// # Errors
///
/// Propagates simulation and design-space errors.
pub fn removal_sensitivity(
    evaluator: &Evaluator,
    topology: &Topology,
    values: &oa_circuit::DeviceValues,
    edge: VariableEdge,
) -> Result<RemovalSensitivity, IntoOaError> {
    let with = evaluator.simulate(topology, values)?;
    let without_topology = topology.with_type(edge, SubcircuitType::NoConn)?;
    let without = evaluator.simulate(&without_topology, values)?;
    Ok(RemovalSensitivity {
        edge,
        with,
        without,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::optimizer::{optimize, IntoOaConfig};
    use crate::spec::Spec;
    use oa_circuit::{ParamSpace, PassiveKind};

    fn quick_run() -> OptimizationRun {
        optimize(&Spec::s1(), &IntoOaConfig::quick(17))
    }

    #[test]
    fn models_train_on_run_history() {
        let run = quick_run();
        let models = MetricModels::fit(&run, 3).unwrap();
        assert_eq!(models.metric_names().len(), 4);
        assert!(models.model("pm_deg").is_ok());
        assert!(matches!(
            models.model("nonsense"),
            Err(IntoOaError::UnknownMetric { .. })
        ));
    }

    #[test]
    fn structure_report_covers_connected_edges() {
        let run = quick_run();
        let models = MetricModels::fit(&run, 3).unwrap();
        let best = run.best_design().expect("run evaluated something");
        let report = models.structure_report(&best.topology);
        assert_eq!(report.len(), best.topology.connected_count());
        for impact in &report {
            assert_eq!(impact.gradients.len(), 4);
            for (_, g) in &impact.gradients {
                assert!(g.is_finite());
            }
        }
    }

    #[test]
    fn removing_miller_cap_degrades_pm_and_boosts_gbw() {
        // The textbook sanity check the paper performs in IV-B: removing
        // the compensation capacitor raises GBW and collapses PM.
        let evaluator = Evaluator::new(Spec::s1());
        let t = Topology::bare_cascade()
            .with_type(
                VariableEdge::V1Vout,
                SubcircuitType::Passive(PassiveKind::C),
            )
            .unwrap();
        let space = ParamSpace::for_topology(&t);
        let values = space.decode(&[0.5, 0.5, 0.5, 0.8]).unwrap();
        let sens = removal_sensitivity(&evaluator, &t, &values, VariableEdge::V1Vout).unwrap();
        assert!(sens.delta_gbw_hz() > 0.0, "GBW should rise on removal");
        assert!(sens.delta_pm_deg() < 0.0, "PM should fall on removal");
    }

    #[test]
    fn describe_structure_names_the_endpoints() {
        let run = quick_run();
        let models = MetricModels::fit(&run, 3).unwrap();
        let t = Topology::bare_cascade()
            .with_type(
                VariableEdge::V1Vout,
                SubcircuitType::Passive(PassiveKind::SeriesRc),
            )
            .unwrap();
        let desc = models
            .describe_structure(&t, VariableEdge::V1Vout)
            .expect("edge connected");
        assert!(desc.contains("RCs") && desc.contains("v1") && desc.contains("vout"));
    }

    #[test]
    fn type_gradient_is_zero_for_unseen_structures() {
        let run = quick_run();
        let models = MetricModels::fit(&run, 3).unwrap();
        // Find a type that never appeared in this tiny run's history.
        let seen: std::collections::HashSet<String> = run
            .records
            .iter()
            .flat_map(|r| {
                VariableEdge::ALL
                    .iter()
                    .map(|&e| r.design.topology.type_on(e).mnemonic())
                    .collect::<Vec<_>>()
            })
            .collect();
        let unseen = SubcircuitType::catalog()
            .into_iter()
            .find(|ty| !seen.contains(&ty.mnemonic()));
        if let Some(ty) = unseen {
            let g = models.type_gradient("gain_db", ty).unwrap();
            assert_eq!(g, 0.0);
        }
    }
}
