//! Design specifications (Table I) and the figure of merit (Eq. 6).

use oa_sim::OpAmpPerformance;
use std::fmt;

/// One design-specification set: the constraints a feasible op-amp must
/// meet and the load it must drive.
///
/// # Examples
///
/// ```
/// use into_oa::Spec;
///
/// let s1 = Spec::s1();
/// assert_eq!(s1.min_gain_db, 85.0);
/// assert_eq!(s1.cl_farads, 10e-12);
/// assert_eq!(Spec::all().len(), 5);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Spec {
    /// Short name, e.g. `"S-1"`.
    pub name: &'static str,
    /// Minimum open-loop gain in dB.
    pub min_gain_db: f64,
    /// Minimum gain–bandwidth product in Hz.
    pub min_gbw_hz: f64,
    /// Minimum phase margin in degrees.
    pub min_pm_deg: f64,
    /// Maximum static power in watts.
    pub max_power_w: f64,
    /// Load capacitance in farads.
    pub cl_farads: f64,
}

impl Spec {
    /// S-1: the baseline specification.
    pub const fn s1() -> Spec {
        Spec {
            name: "S-1",
            min_gain_db: 85.0,
            min_gbw_hz: 0.5e6,
            min_pm_deg: 55.0,
            max_power_w: 750e-6,
            cl_farads: 10e-12,
        }
    }

    /// S-2: high gain (> 110 dB).
    pub const fn s2() -> Spec {
        Spec {
            name: "S-2",
            min_gain_db: 110.0,
            ..Spec::s1()
        }
    }

    /// S-3: high bandwidth (> 5 MHz).
    pub const fn s3() -> Spec {
        Spec {
            name: "S-3",
            min_gbw_hz: 5e6,
            ..Spec::s1()
        }
    }

    /// S-4: low power (< 150 µW).
    pub const fn s4() -> Spec {
        Spec {
            name: "S-4",
            max_power_w: 150e-6,
            ..Spec::s1()
        }
    }

    /// S-5: large capacitive load (10 nF).
    pub const fn s5() -> Spec {
        Spec {
            name: "S-5",
            cl_farads: 10_000e-12,
            ..Spec::s1()
        }
    }

    /// All five specification sets of Table I.
    pub fn all() -> [Spec; 5] {
        [Spec::s1(), Spec::s2(), Spec::s3(), Spec::s4(), Spec::s5()]
    }

    /// Normalized constraint values for a measured performance; feasible
    /// when every entry ≤ 0. The four entries correspond to gain, GBW,
    /// phase margin and power, each scaled to order one so the GP
    /// constraint surrogates are well conditioned.
    pub fn constraints(&self, perf: &OpAmpPerformance) -> Vec<f64> {
        let c_gain = (self.min_gain_db - perf.gain_db) / 10.0;
        let gbw_floor = self.min_gbw_hz * 1e-6;
        let c_gbw = (self.min_gbw_hz / perf.gbw_hz.max(gbw_floor)).log10();
        let c_pm = (self.min_pm_deg - perf.pm_deg) / 30.0;
        let c_power = (perf.power_w / self.max_power_w).log10();
        vec![c_gain, c_gbw, c_pm, c_power]
    }

    /// Returns `true` if the performance meets every constraint.
    pub fn is_met_by(&self, perf: &OpAmpPerformance) -> bool {
        perf.gain_db >= self.min_gain_db
            && perf.gbw_hz >= self.min_gbw_hz
            && perf.pm_deg >= self.min_pm_deg
            && perf.power_w <= self.max_power_w
    }

    /// The figure of merit (Eq. 6) of a performance under this spec's load.
    pub fn fom(&self, perf: &OpAmpPerformance) -> f64 {
        perf.fom(self.cl_farads)
    }

    /// Names of the four constrained metrics, aligned with
    /// [`Spec::constraints`].
    pub const METRIC_NAMES: [&'static str; 4] = ["gain", "gbw", "pm", "power"];
}

impl fmt::Display for Spec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: gain>{}dB gbw>{}MHz pm>{}° power<{}µW CL={}pF",
            self.name,
            self.min_gain_db,
            self.min_gbw_hz / 1e6,
            self.min_pm_deg,
            self.max_power_w / 1e-6,
            self.cl_farads / 1e-12
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn good_perf() -> OpAmpPerformance {
        OpAmpPerformance {
            gain_db: 95.0,
            gbw_hz: 2e6,
            pm_deg: 65.0,
            power_w: 100e-6,
        }
    }

    #[test]
    fn table1_values_match_paper() {
        let specs = Spec::all();
        assert_eq!(specs[1].min_gain_db, 110.0);
        assert_eq!(specs[2].min_gbw_hz, 5e6);
        assert_eq!(specs[3].max_power_w, 150e-6);
        assert_eq!(specs[4].cl_farads, 10_000e-12);
        // All share the baseline elsewhere.
        for s in &specs {
            assert_eq!(s.min_pm_deg, 55.0);
        }
    }

    #[test]
    fn constraints_match_is_met_by() {
        let perf = good_perf();
        for s in Spec::all() {
            let cons = s.constraints(&perf);
            assert_eq!(cons.len(), 4);
            let all_neg = cons.iter().all(|&c| c <= 0.0);
            assert_eq!(all_neg, s.is_met_by(&perf), "{s}");
        }
    }

    #[test]
    fn zero_gbw_is_heavily_violating() {
        let mut perf = good_perf();
        perf.gbw_hz = 0.0;
        let cons = Spec::s1().constraints(&perf);
        assert!(cons[1] >= 5.0, "gbw violation too soft: {}", cons[1]);
    }

    #[test]
    fn s1_feasible_example() {
        assert!(Spec::s1().is_met_by(&good_perf()));
        assert!(!Spec::s2().is_met_by(&good_perf())); // needs 110 dB
        assert!(!Spec::s3().is_met_by(&good_perf())); // needs 5 MHz
    }

    #[test]
    fn fom_uses_spec_load() {
        let perf = good_perf();
        // 2 MHz · 10 pF / 0.1 mW = 200 for S-1; ×1000 for S-5's load.
        assert!((Spec::s1().fom(&perf) - 200.0).abs() < 1e-9);
        assert!((Spec::s5().fom(&perf) - 200_000.0).abs() < 1e-6);
    }

    #[test]
    fn display_mentions_name() {
        assert!(Spec::s4().to_string().contains("S-4"));
    }
}
