//! Error type for the INTO-OA framework crate.

use oa_circuit::CircuitError;
use oa_gp::GpError;
use oa_sim::SimError;
use std::error::Error;
use std::fmt;

/// Errors surfaced by the INTO-OA optimizer, interpretability and
/// refinement APIs.
#[derive(Debug, Clone, PartialEq)]
pub enum IntoOaError {
    /// A design-space operation failed.
    Circuit(CircuitError),
    /// A circuit simulation failed.
    Sim(SimError),
    /// A surrogate model could not be trained or queried.
    Gp(GpError),
    /// An optimization run produced no usable design.
    NoDesignFound,
    /// The requested metric is not modelled.
    UnknownMetric {
        /// The requested metric name.
        name: String,
    },
}

impl fmt::Display for IntoOaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IntoOaError::Circuit(e) => write!(f, "circuit error: {e}"),
            IntoOaError::Sim(e) => write!(f, "simulation error: {e}"),
            IntoOaError::Gp(e) => write!(f, "surrogate error: {e}"),
            IntoOaError::NoDesignFound => write!(f, "no usable design found"),
            IntoOaError::UnknownMetric { name } => write!(f, "unknown metric {name}"),
        }
    }
}

impl Error for IntoOaError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            IntoOaError::Circuit(e) => Some(e),
            IntoOaError::Sim(e) => Some(e),
            IntoOaError::Gp(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CircuitError> for IntoOaError {
    fn from(e: CircuitError) -> Self {
        IntoOaError::Circuit(e)
    }
}

impl From<SimError> for IntoOaError {
    fn from(e: SimError) -> Self {
        IntoOaError::Sim(e)
    }
}

impl From<GpError> for IntoOaError {
    fn from(e: GpError) -> Self {
        IntoOaError::Gp(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wrapping_preserves_source() {
        let e = IntoOaError::from(SimError::BadFrequencyGrid);
        assert!(Error::source(&e).is_some());
        assert!(e.to_string().contains("simulation"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<IntoOaError>();
    }
}
