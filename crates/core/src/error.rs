//! Error type for the INTO-OA framework crate.

use oa_circuit::CircuitError;
use oa_gp::GpError;
use oa_sim::SimError;
use std::error::Error;
use std::fmt;

/// Errors surfaced by the INTO-OA optimizer, interpretability and
/// refinement APIs.
#[derive(Debug, Clone, PartialEq)]
pub enum IntoOaError {
    /// A design-space operation failed.
    Circuit(CircuitError),
    /// A circuit simulation failed.
    Sim(SimError),
    /// A surrogate model could not be trained or queried.
    Gp(GpError),
    /// An optimization run produced no usable design.
    NoDesignFound,
    /// The requested metric is not modelled.
    UnknownMetric {
        /// The requested metric name.
        name: String,
    },
}

impl fmt::Display for IntoOaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IntoOaError::Circuit(e) => write!(f, "circuit error: {e}"),
            IntoOaError::Sim(e) => write!(f, "simulation error: {e}"),
            IntoOaError::Gp(e) => write!(f, "surrogate error: {e}"),
            IntoOaError::NoDesignFound => write!(f, "no usable design found"),
            IntoOaError::UnknownMetric { name } => write!(f, "unknown metric {name}"),
        }
    }
}

impl Error for IntoOaError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            IntoOaError::Circuit(e) => Some(e),
            IntoOaError::Sim(e) => Some(e),
            IntoOaError::Gp(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CircuitError> for IntoOaError {
    fn from(e: CircuitError) -> Self {
        IntoOaError::Circuit(e)
    }
}

impl From<SimError> for IntoOaError {
    fn from(e: SimError) -> Self {
        IntoOaError::Sim(e)
    }
}

impl From<GpError> for IntoOaError {
    fn from(e: GpError) -> Self {
        IntoOaError::Gp(e)
    }
}

/// Machine-readable class of a per-item evaluation failure.
///
/// Batch endpoints (`eval_batch` in `oa-serve`) evaluate items
/// independently and degrade gracefully: a failed item carries an
/// [`EvalError`] while its siblings still return results. The kind is
/// the stable wire contract — clients branch on [`EvalErrorKind::code`],
/// never on the human-readable detail text.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EvalErrorKind {
    /// The item itself is malformed: unknown topology code, sizing
    /// vector of the wrong dimension, unknown metric, out-of-range
    /// parameter.
    BadRequest,
    /// The circuit elaborated but simulation failed (singular MNA
    /// system, bad frequency grid, non-finite result).
    Sim,
    /// A deterministic fault-injection plan failed this item on
    /// purpose. Only ever produced under a chaos harness; retrying the
    /// item without the plan succeeds.
    Injected,
    /// An unexpected server-side failure (surrogate error, lost worker,
    /// store corruption). Safe to retry.
    Internal,
}

impl EvalErrorKind {
    /// The stable wire code for this kind.
    pub fn code(self) -> &'static str {
        match self {
            EvalErrorKind::BadRequest => "bad_request",
            EvalErrorKind::Sim => "sim",
            EvalErrorKind::Injected => "injected",
            EvalErrorKind::Internal => "internal",
        }
    }

    /// Parses a wire code back into a kind.
    pub fn from_code(code: &str) -> Option<EvalErrorKind> {
        match code {
            "bad_request" => Some(EvalErrorKind::BadRequest),
            "sim" => Some(EvalErrorKind::Sim),
            "injected" => Some(EvalErrorKind::Injected),
            "internal" => Some(EvalErrorKind::Internal),
            _ => None,
        }
    }
}

impl fmt::Display for EvalErrorKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.code())
    }
}

/// A typed per-item evaluation error: a stable [`EvalErrorKind`] plus a
/// human-readable detail string.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EvalError {
    /// Stable machine-readable class.
    pub kind: EvalErrorKind,
    /// Human-readable context; not part of the wire contract.
    pub detail: String,
}

impl EvalError {
    /// A [`EvalErrorKind::BadRequest`] error.
    pub fn bad_request(detail: impl Into<String>) -> EvalError {
        EvalError {
            kind: EvalErrorKind::BadRequest,
            detail: detail.into(),
        }
    }

    /// A [`EvalErrorKind::Sim`] error.
    pub fn sim(detail: impl Into<String>) -> EvalError {
        EvalError {
            kind: EvalErrorKind::Sim,
            detail: detail.into(),
        }
    }

    /// An [`EvalErrorKind::Injected`] error.
    pub fn injected(detail: impl Into<String>) -> EvalError {
        EvalError {
            kind: EvalErrorKind::Injected,
            detail: detail.into(),
        }
    }

    /// An [`EvalErrorKind::Internal`] error.
    pub fn internal(detail: impl Into<String>) -> EvalError {
        EvalError {
            kind: EvalErrorKind::Internal,
            detail: detail.into(),
        }
    }
}

impl fmt::Display for EvalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.kind, self.detail)
    }
}

impl Error for EvalError {}

impl From<IntoOaError> for EvalError {
    fn from(e: IntoOaError) -> Self {
        let kind = match &e {
            // Malformed inputs: the caller sent something undecodable.
            IntoOaError::Circuit(_) | IntoOaError::UnknownMetric { .. } => {
                EvalErrorKind::BadRequest
            }
            IntoOaError::Sim(_) => EvalErrorKind::Sim,
            IntoOaError::Gp(_) | IntoOaError::NoDesignFound => EvalErrorKind::Internal,
        };
        EvalError {
            kind,
            detail: e.to_string(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wrapping_preserves_source() {
        let e = IntoOaError::from(SimError::BadFrequencyGrid);
        assert!(Error::source(&e).is_some());
        assert!(e.to_string().contains("simulation"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<IntoOaError>();
        assert_send_sync::<EvalError>();
    }

    #[test]
    fn eval_error_kinds_round_trip_their_codes() {
        for kind in [
            EvalErrorKind::BadRequest,
            EvalErrorKind::Sim,
            EvalErrorKind::Injected,
            EvalErrorKind::Internal,
        ] {
            assert_eq!(EvalErrorKind::from_code(kind.code()), Some(kind));
        }
        assert_eq!(EvalErrorKind::from_code("nonsense"), None);
    }

    #[test]
    fn into_oa_error_maps_to_stable_kinds() {
        let sim = EvalError::from(IntoOaError::from(SimError::BadFrequencyGrid));
        assert_eq!(sim.kind, EvalErrorKind::Sim);
        let bad = EvalError::from(IntoOaError::UnknownMetric {
            name: "qfactor".into(),
        });
        assert_eq!(bad.kind, EvalErrorKind::BadRequest);
        assert!(bad.to_string().starts_with("bad_request: "));
        let internal = EvalError::from(IntoOaError::NoDesignFound);
        assert_eq!(internal.kind, EvalErrorKind::Internal);
    }
}
