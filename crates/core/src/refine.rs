//! Gradient-guided topology refinement (Section III-C / IV-C).
//!
//! Starting from a trusted design that misses one or more specs, the
//! refinement loop:
//!
//! 1. identifies the most critical (most violated) performance metric,
//! 2. uses the WL-GP gradients to find the connected variable subcircuit
//!    that contributes most adversely to that metric,
//! 3. replaces it with the most promising alternative type (ranked by the
//!    type-level gradient),
//! 4. re-sizes **only the modified subcircuit**, leaving the rest of the
//!    trusted design untouched, and simulates;
//! 5. on failure, falls through to the next-ranked alternative.
//!
//! Because only one subcircuit changes and only its devices are re-sized,
//! the refined design stays inside the designer's "interpretable zone" and
//! the cost is a few tens of simulations instead of a full synthesis run.

use oa_bo::BoConfig;
use oa_circuit::{DeviceValues, SubcircuitType, Topology, VariableEdge};
use oa_sim::OpAmpPerformance;

use crate::error::IntoOaError;
use crate::evaluator::{Evaluator, SizedDesign};
use crate::interpret::MetricModels;
use crate::spec::Spec;

/// Configuration of the refinement loop.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RefineConfig {
    /// How many replacement candidates to try before giving up.
    pub max_attempts: usize,
    /// Sizing budget for the modified subcircuit per attempt (the paper's
    /// refinements succeed within 40 simulations total).
    pub resize: BoConfig,
}

impl RefineConfig {
    /// Replacement candidates tried per modification site before falling
    /// through to the next site. Capped at two so the budget spreads across
    /// sites rather than exhausting the ranked alternatives of a single
    /// (possibly misidentified) edge.
    pub fn attempts_per_edge(&self) -> usize {
        self.max_attempts.div_ceil(5).clamp(1, 3)
    }
}

impl Default for RefineConfig {
    fn default() -> Self {
        RefineConfig {
            max_attempts: 4,
            resize: BoConfig {
                n_init: 6,
                n_iter: 14,
                n_candidates: 60,
                seed: 0,
            },
        }
    }
}

/// One attempted replacement during refinement.
#[derive(Debug, Clone, PartialEq)]
pub struct RefineAttempt {
    /// The edge whose subcircuit was replaced in this attempt.
    pub edge: VariableEdge,
    /// The replacement type tried.
    pub ty: SubcircuitType,
    /// The best design found after resizing the modified part.
    pub design: Option<SizedDesign>,
    /// Simulations spent on this attempt.
    pub sims: usize,
}

/// The outcome of a refinement.
#[derive(Debug, Clone, PartialEq)]
pub struct RefineOutcome {
    /// Performance of the original trusted design under the target spec.
    pub original: OpAmpPerformance,
    /// The edge whose subcircuit was replaced.
    pub edge: VariableEdge,
    /// The original subcircuit type on that edge.
    pub old_ty: SubcircuitType,
    /// The successful refined design, if any attempt met the spec.
    pub refined: Option<SizedDesign>,
    /// Every attempt in the order tried.
    pub attempts: Vec<RefineAttempt>,
    /// Total simulations spent (including the initial evaluation).
    pub total_sims: usize,
}

impl RefineOutcome {
    /// Returns `true` if refinement produced a spec-meeting design.
    pub fn succeeded(&self) -> bool {
        self.refined.as_ref().is_some_and(|d| d.feasible)
    }
}

/// Maps each constraint slot of [`Spec::constraints`] to the metric model
/// name and its improvement direction (+1 = higher is better).
const CONSTRAINT_METRICS: [(&str, f64); 4] = [
    ("gain_db", 1.0),
    ("log10_gbw", 1.0),
    ("pm_deg", 1.0),
    ("log10_power", -1.0),
];

/// Refines a trusted design toward `evaluator`'s spec, guided by the WL-GP
/// gradients in `models`.
///
/// # Errors
///
/// Returns [`IntoOaError::NoDesignFound`] when the trusted design has no
/// connected variable subcircuit to replace, and propagates simulation or
/// surrogate errors.
pub fn refine(
    evaluator: &Evaluator,
    topology: &Topology,
    values: &DeviceValues,
    models: &MetricModels,
    config: &RefineConfig,
) -> Result<RefineOutcome, IntoOaError> {
    let original = evaluator.simulate(topology, values)?;
    let mut total_sims = 1usize;
    let spec = evaluator.spec();

    // Already feasible: nothing to do; report the original as "refined".
    if spec.is_met_by(&original) {
        let design = evaluator.design_from(*topology, *values, original);
        let edge = first_connected_edge(topology).ok_or(IntoOaError::NoDesignFound)?;
        return Ok(RefineOutcome {
            original,
            edge,
            old_ty: topology.type_on(edge),
            refined: Some(design),
            attempts: Vec::new(),
            total_sims,
        });
    }

    // 1. Most critical metric = most violated constraint.
    let cons = spec.constraints(&original);
    let critical = cons
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite constraints"))
        .map(|(i, _)| i)
        .expect("spec has four constraints");
    let (metric, direction) = CONSTRAINT_METRICS[critical];

    // 2. Rank the modification sites. Connected subcircuits come first,
    //    ordered by the most adverse (most harmful) gradient for the
    //    critical metric — the paper replaces the worst one first. As in
    //    manual refinement, when every alternative on a site fails we fall
    //    through: next-worst subcircuit, then the unconnected edges (an
    //    "add one part" touch-up, e.g. a damping resistor on a ground
    //    edge, is the cheapest possible modification — nothing else even
    //    needs re-sizing).
    let mut report = models.structure_report(topology);
    if report.is_empty() {
        return Err(IntoOaError::NoDesignFound);
    }
    report.sort_by(|a, b| {
        adverse(b, metric, direction)
            .partial_cmp(&adverse(a, metric, direction))
            .expect("finite gradients")
    });
    let primary_edge = report[0].edge;
    let primary_old_ty = report[0].ty;
    let sites: Vec<(VariableEdge, SubcircuitType)> = report
        .iter()
        .map(|i| (i.edge, i.ty))
        .chain(
            VariableEdge::ALL
                .into_iter()
                .filter(|&e| topology.type_on(e).is_no_conn())
                .map(|e| (e, SubcircuitType::NoConn)),
        )
        .collect();

    // 3–5. Per edge, rank replacement candidates by the type-level
    //    gradient (most promising first) and try them, resizing only the
    //    modified part; stop at the first spec-meeting design or when the
    //    attempt budget is exhausted.
    let mut attempts: Vec<RefineAttempt> = Vec::new();
    let mut refined = None;
    'outer: for &(edge, old_ty) in &sites {
        // Rank alternatives by the WL-GP's posterior prediction of the
        // critical metric for the *modified topology* — the surrogate's
        // full answer to "which alternative is most promising", of which
        // the type-level gradient is the linearization.
        let mut candidates: Vec<(f64, SubcircuitType)> = edge
            .allowed_types()
            .into_iter()
            .filter(|&t| t != old_ty)
            .filter_map(|t| {
                let modified = topology.with_type(edge, t).ok()?;
                let score = match models.predict_metric(metric, &modified) {
                    Ok((mean, _)) => direction * mean,
                    Err(_) => direction * models.type_gradient(metric, t).unwrap_or(0.0),
                };
                Some((score, t))
            })
            .collect();
        candidates.sort_by(|a, b| b.0.partial_cmp(&a.0).expect("finite gradients"));

        for (_, ty) in candidates.iter().take(config.attempts_per_edge()) {
            if attempts.len() >= config.max_attempts {
                break 'outer;
            }
            let new_topology = topology.with_type(edge, *ty)?;
            let resize = BoConfig {
                seed: config.resize.seed.wrapping_add(attempts.len() as u64),
                ..config.resize
            };
            let (design, sims) = evaluator.size_edge_only(&new_topology, values, edge, &resize);
            total_sims += sims;
            let success = design.as_ref().is_some_and(|d| d.feasible);
            attempts.push(RefineAttempt {
                edge,
                ty: *ty,
                design: design.clone(),
                sims,
            });
            if success {
                refined = design;
                break 'outer;
            }
        }
    }

    let (edge, old_ty) = match attempts.last().filter(|_| refined.is_some()) {
        Some(a) => (a.edge, topology.type_on(a.edge)),
        None => (primary_edge, primary_old_ty),
    };
    Ok(RefineOutcome {
        original,
        edge,
        old_ty,
        refined,
        attempts,
        total_sims,
    })
}

fn adverse(impact: &crate::interpret::StructureImpact, metric: &str, direction: f64) -> f64 {
    impact
        .gradients
        .iter()
        .find(|(n, _)| n == metric)
        .map(|(_, g)| -direction * g)
        .unwrap_or(f64::NEG_INFINITY)
}

fn first_connected_edge(topology: &Topology) -> Option<VariableEdge> {
    VariableEdge::ALL
        .into_iter()
        .find(|&e| !topology.type_on(e).is_no_conn())
}

/// Convenience: spec used in Table IV (refinement targets S-5).
pub fn refinement_spec() -> Spec {
    Spec::s5()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::optimizer::{optimize, IntoOaConfig};
    use oa_circuit::{ParamSpace, PassiveKind};

    fn miller(cap_coord: f64) -> (Topology, DeviceValues) {
        let t = Topology::bare_cascade()
            .with_type(
                VariableEdge::V1Vout,
                SubcircuitType::Passive(PassiveKind::C),
            )
            .unwrap();
        let space = ParamSpace::for_topology(&t);
        let v = space.decode(&[0.55, 0.55, 0.6, cap_coord]).unwrap();
        (t, v)
    }

    fn models_for(spec: &Spec, seed: u64) -> MetricModels {
        let run = optimize(spec, &IntoOaConfig::quick(seed));
        MetricModels::fit(&run, 3).unwrap()
    }

    #[test]
    fn refine_reports_feasible_originals_unchanged() {
        let spec = Spec::s1();
        let evaluator = Evaluator::new(spec);
        // Size a Miller design properly so it meets S-1.
        let (t, _) = miller(0.8);
        let (design, _) = evaluator.size(
            &t,
            &BoConfig {
                n_init: 10,
                n_iter: 20,
                n_candidates: 50,
                seed: 5,
            },
        );
        let d = design.unwrap();
        if !d.feasible {
            // Sizing failed to find feasibility on this seed; skip silently
            // rather than asserting on optimizer luck.
            return;
        }
        let models = models_for(&spec, 31);
        let out = refine(
            &evaluator,
            &d.topology,
            &d.values,
            &models,
            &RefineConfig::default(),
        )
        .unwrap();
        assert!(out.succeeded());
        assert!(out.attempts.is_empty(), "no replacement should be tried");
        assert_eq!(out.total_sims, 1);
    }

    #[test]
    fn refine_attempts_are_bounded_and_minimal() {
        // A deliberately bad trusted design under S-5 (tiny Miller cap for
        // a 10 nF load).
        let spec = Spec::s5();
        let evaluator = Evaluator::new(spec);
        let (t, v) = miller(0.1);
        let models = models_for(&spec, 41);
        let cfg = RefineConfig::default();
        let out = refine(&evaluator, &t, &v, &models, &cfg).unwrap();
        assert!(out.attempts.len() <= cfg.max_attempts);
        // Only the modified edge was resized in any attempt.
        for a in &out.attempts {
            if let Some(d) = &a.design {
                for i in 0..3 {
                    assert!(
                        (d.values.stage_gm[i] - v.stage_gm[i]).abs() / v.stage_gm[i] < 1e-9,
                        "stage gm changed during refinement"
                    );
                }
                assert_eq!(d.topology.distance(&t), 1, "more than one edge changed");
            }
        }
        // Simulation budget stays in the tens, as in the paper.
        assert!(out.total_sims <= 1 + cfg.max_attempts * (cfg.resize.n_init + cfg.resize.n_iter));
    }

    #[test]
    fn refine_reports_a_consistent_modification_site() {
        let spec = Spec::s5();
        let evaluator = Evaluator::new(spec);
        let (t, v) = miller(0.1);
        let models = models_for(&spec, 43);
        let out = refine(&evaluator, &t, &v, &models, &RefineConfig::default()).unwrap();
        // The reported site's original type matches the trusted topology
        // (connected sites are preferred, but an "add one part" touch-up on
        // an unconnected edge is also legal).
        assert_eq!(out.old_ty, t.type_on(out.edge));
        // Every attempt modified exactly one edge of the trusted design.
        for a in &out.attempts {
            if let Some(d) = &a.design {
                assert_eq!(d.topology.distance(&t), 1);
            }
        }
    }
}
