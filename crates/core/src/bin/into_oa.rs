//! `into-oa` — command-line front end for the INTO-OA library.
//!
//! ```text
//! into-oa synth   --spec S-1 [--seed 0] [--topologies 20] [--strategy mixed|random|mutation]
//! into-oa eval    --spec S-1 --topology "NC/+gm>/C/NC/NC" [--seed 0]
//! into-oa explain --spec S-4 [--seed 0]
//! into-oa spice   --topology "NC/+gm>/C/NC/NC" [--spec S-1]
//! into-oa specs
//! ```

use std::process::ExitCode;

use into_oa::{optimize, Evaluator, IntoOaConfig, MetricModels, SizedDesign, Spec};
use oa_bo::{BoConfig, TopoBoConfig};
use oa_circuit::{elaborate, ParamSpace, Process, Topology};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = args.first() else {
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    };
    let result = match command.as_str() {
        "synth" => cmd_synth(&args[1..]),
        "eval" => cmd_eval(&args[1..]),
        "explain" => cmd_explain(&args[1..]),
        "spice" => cmd_spice(&args[1..]),
        "specs" => cmd_specs(),
        "help" | "--help" | "-h" => {
            println!("{USAGE}");
            Ok(())
        }
        other => Err(format!("unknown command {other:?}\n{USAGE}")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "\
into-oa — interpretable op-amp topology optimization

commands:
  synth   --spec S-1 [--seed N] [--topologies N] [--strategy mixed|random|mutation]
          synthesize a topology for a spec and print the winner
  eval    --spec S-1 --topology \"NC/+gm>/C/NC/NC\" [--seed N]
          size and measure one topology under a spec
  explain --spec S-4 [--seed N]
          synthesize, then print the WL-GP gradient report of the winner
  spice   --topology \"NC/+gm>/C/NC/NC\" [--spec S-1]
          print a SPICE .AC deck of the nominally-sized topology
  specs   print the Table I specification sets";

fn flag(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn parse_spec(args: &[String]) -> Result<Spec, String> {
    let name = flag(args, "--spec").unwrap_or_else(|| "S-1".to_owned());
    Spec::all()
        .into_iter()
        .find(|s| s.name.eq_ignore_ascii_case(&name))
        .ok_or_else(|| format!("unknown spec {name:?} (use S-1..S-5)"))
}

fn parse_seed(args: &[String]) -> Result<u64, String> {
    match flag(args, "--seed") {
        None => Ok(0),
        Some(s) => s.parse().map_err(|_| format!("bad seed {s:?}")),
    }
}

fn parse_topology(args: &[String]) -> Result<Topology, String> {
    let s = flag(args, "--topology").ok_or("missing --topology")?;
    // Accept either a compact string or a design-space index.
    if let Ok(index) = s.parse::<usize>() {
        return Topology::from_index(index).map_err(|e| e.to_string());
    }
    s.parse().map_err(|e| format!("{e}"))
}

fn print_design(d: &SizedDesign, spec: &Spec) {
    println!("topology   : {}", d.topology.to_compact_string());
    println!("  (index {}: {})", d.topology.index(), d.topology);
    println!("gain       : {:>9.2} dB", d.performance.gain_db);
    println!("GBW        : {:>9.3} MHz", d.performance.gbw_hz / 1e6);
    println!("PM         : {:>9.2} deg", d.performance.pm_deg);
    println!("power      : {:>9.2} uW", d.performance.power_w / 1e-6);
    println!("FoM        : {:>9.2}", d.fom);
    println!(
        "spec {}    : {}",
        spec.name,
        if d.feasible { "met" } else { "violated" }
    );
}

fn run_config(args: &[String], seed: u64) -> Result<IntoOaConfig, String> {
    let topologies: usize = match flag(args, "--topologies") {
        None => 20,
        Some(s) => s.parse().map_err(|_| format!("bad --topologies {s:?}"))?,
    };
    let strategy = match flag(args, "--strategy").as_deref() {
        None | Some("mixed") => into_oa::CandidateStrategy::Mixed,
        Some("random") => into_oa::CandidateStrategy::RandomOnly,
        Some("mutation") => into_oa::CandidateStrategy::MutationOnly,
        Some(other) => return Err(format!("unknown strategy {other:?}")),
    };
    Ok(IntoOaConfig {
        topo: TopoBoConfig {
            n_init: (topologies / 4).max(2),
            n_iter: topologies - (topologies / 4).max(2),
            pool_size: 100,
            seed,
            ..TopoBoConfig::default()
        },
        sizing: BoConfig {
            n_init: 10,
            n_iter: 30,
            n_candidates: 100,
            seed,
        },
        strategy,
        ..IntoOaConfig::default()
    })
}

fn cmd_synth(args: &[String]) -> Result<(), String> {
    let spec = parse_spec(args)?;
    let seed = parse_seed(args)?;
    let config = run_config(args, seed)?;
    eprintln!("synthesizing for {spec} …");
    let run = optimize(&spec, &config);
    eprintln!(
        "evaluated {} topologies / {} simulations",
        run.records.len(),
        run.total_sims
    );
    match run.best_design() {
        Some(d) => {
            print_design(d, &spec);
            Ok(())
        }
        None => Err("no design found".to_owned()),
    }
}

fn cmd_eval(args: &[String]) -> Result<(), String> {
    let spec = parse_spec(args)?;
    let seed = parse_seed(args)?;
    let topology = parse_topology(args)?;
    let evaluator = Evaluator::new(spec);
    let (design, sims) = evaluator.size(
        &topology,
        &BoConfig {
            n_init: 10,
            n_iter: 30,
            n_candidates: 100,
            seed,
        },
    );
    eprintln!("sized with {sims} simulations");
    match design {
        Some(d) => {
            print_design(&d, &spec);
            Ok(())
        }
        None => Err("every sizing simulation failed".to_owned()),
    }
}

fn cmd_explain(args: &[String]) -> Result<(), String> {
    let spec = parse_spec(args)?;
    let seed = parse_seed(args)?;
    let config = run_config(args, seed)?;
    eprintln!("synthesizing for {spec} …");
    let run = optimize(&spec, &config);
    let best = run.best_design().cloned().ok_or("no design found")?;
    print_design(&best, &spec);
    let models = MetricModels::fit(&run, 4).map_err(|e| e.to_string())?;
    println!("\nstructure impact (WL-GP gradient, Eq. 5):");
    for impact in models.structure_report(&best.topology) {
        println!("  {} [{}]:", impact.edge, impact.ty);
        for (metric, g) in &impact.gradients {
            println!("    {metric:<12} {g:>+9.4}");
        }
    }
    Ok(())
}

fn cmd_spice(args: &[String]) -> Result<(), String> {
    let spec = parse_spec(args)?;
    let topology = parse_topology(args)?;
    let space = ParamSpace::for_topology(&topology);
    let netlist = elaborate(
        &topology,
        &space.nominal(),
        &Process::default(),
        spec.cl_farads,
    )
    .map_err(|e| e.to_string())?;
    print!(
        "{}",
        netlist.to_spice(&format!(
            "into-oa export: {} under {}",
            topology.to_compact_string(),
            spec.name
        ))
    );
    Ok(())
}

fn cmd_specs() -> Result<(), String> {
    for s in Spec::all() {
        println!("{s}");
    }
    Ok(())
}
