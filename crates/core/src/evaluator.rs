//! The evaluation oracle: sizing BO against the AC simulator under a spec.
//!
//! Every topology the outer loop proposes is evaluated by the automated
//! sizing of Section II-A: a constrained BO over the topology's continuous
//! parameter space `S_G`, maximizing the FoM subject to the spec's
//! constraints (10 initial points + 30 iterations in the paper's setup).

use std::sync::Arc;

use oa_bo::{maximize_constrained_anchored, BoConfig, Observation};
use oa_circuit::{DeviceValues, ParamSpace, Process, Topology, VariableEdge};
use oa_sim::{evaluate_opamp_cached, AcOptions, OpAmpPerformance, PlanCache, PlanCacheStats};

use crate::error::IntoOaError;
use crate::spec::Spec;

/// FoM floor used when taking logs of the sizing objective (a design that
/// never crosses unity gain has FoM 0). Kept at 1.0 so catastrophic designs
/// read as log-FoM 0 instead of becoming extreme outliers that dominate the
/// surrogate's target normalization.
const FOM_FLOOR: f64 = 1.0;

/// A fully sized design with its measured performance.
#[derive(Debug, Clone, PartialEq)]
pub struct SizedDesign {
    /// The topology.
    pub topology: Topology,
    /// The device values found by the sizing optimizer.
    pub values: DeviceValues,
    /// Measured performance at those values.
    pub performance: OpAmpPerformance,
    /// Figure of merit under the spec's load.
    pub fom: f64,
    /// Whether the design meets every constraint of the spec.
    pub feasible: bool,
}

/// Evaluates topologies under one spec: elaboration, AC simulation and the
/// sizing inner loop.
///
/// # Examples
///
/// ```
/// use into_oa::{Evaluator, Spec};
/// use oa_bo::BoConfig;
/// use oa_circuit::Topology;
///
/// let eval = Evaluator::new(Spec::s1());
/// let cfg = BoConfig { n_init: 4, n_iter: 4, ..BoConfig::default() };
/// let (design, sims) = eval.size(&Topology::bare_cascade(), &cfg);
/// assert_eq!(sims, 8);
/// assert!(design.is_some());
/// ```
#[derive(Debug, Clone)]
pub struct Evaluator {
    spec: Spec,
    process: Process,
    ac: AcOptions,
    /// Symbolic-factorization plan cache shared by every simulation this
    /// evaluator (and its clones / [`EvalHandle`]s) runs: one analyzed
    /// elimination plan per reduced MNA sparsity pattern, amortized
    /// across all sizing points and frequencies. Purely a performance
    /// artifact — results are bit-identical with a cold cache.
    plans: Arc<PlanCache>,
}

impl Evaluator {
    /// Creates an evaluator with the default process and AC options.
    pub fn new(spec: Spec) -> Self {
        Evaluator {
            spec,
            process: Process::default(),
            ac: AcOptions::default(),
            plans: Arc::new(PlanCache::new()),
        }
    }

    /// Creates an evaluator with explicit process/AC settings.
    pub fn with_options(spec: Spec, process: Process, ac: AcOptions) -> Self {
        Evaluator {
            spec,
            process,
            ac,
            plans: Arc::new(PlanCache::new()),
        }
    }

    /// Hit/miss counters of the shared symbolic-plan cache.
    pub fn plan_cache_stats(&self) -> PlanCacheStats {
        self.plans.stats()
    }

    /// The spec this evaluator enforces.
    pub fn spec(&self) -> &Spec {
        &self.spec
    }

    /// The process constants in use.
    pub fn process(&self) -> &Process {
        &self.process
    }

    /// Wraps this evaluator in a shareable [`EvalHandle`] for concurrent
    /// serving.
    pub fn into_handle(self) -> EvalHandle {
        EvalHandle {
            inner: Arc::new(self),
        }
    }

    /// Simulates a topology at a *normalized* sizing vector `x` (unit
    /// hypercube, one coordinate per parameter of the topology's
    /// [`ParamSpace`]) and wraps the measurement in a [`SizedDesign`].
    ///
    /// This is the serving layer's `eval` primitive: fully deterministic
    /// — no RNG is involved anywhere on this path — so equal `(topology,
    /// x, spec, process)` always measure equal.
    ///
    /// # Errors
    ///
    /// Decode errors (wrong dimension, non-finite coordinates) and
    /// simulator errors.
    pub fn simulate_sized(
        &self,
        topology: &Topology,
        x: &[f64],
    ) -> Result<SizedDesign, IntoOaError> {
        let space = ParamSpace::for_topology(topology);
        let values = space.decode(x)?;
        let perf = self.simulate(topology, &values)?;
        Ok(self.design_from(*topology, values, perf))
    }

    /// Simulates one sized topology (a single "Hspice run").
    ///
    /// # Errors
    ///
    /// Propagates simulator errors.
    pub fn simulate(
        &self,
        topology: &Topology,
        values: &DeviceValues,
    ) -> Result<OpAmpPerformance, IntoOaError> {
        Ok(evaluate_opamp_cached(
            topology,
            values,
            &self.process,
            self.spec.cl_farads,
            &self.ac,
            Some(&self.plans),
        )?)
    }

    /// Wraps a measured performance into a [`SizedDesign`].
    pub fn design_from(
        &self,
        topology: Topology,
        values: DeviceValues,
        performance: OpAmpPerformance,
    ) -> SizedDesign {
        SizedDesign {
            topology,
            values,
            performance,
            fom: self.spec.fom(&performance),
            feasible: self.spec.is_met_by(&performance),
        }
    }

    /// Runs the full sizing BO for a topology. Returns the best design
    /// found (feasible-first ranking) and the number of simulations spent.
    ///
    /// The sizing seed is decorrelated per topology so repeated topologies
    /// in different runs do not share noise.
    pub fn size(&self, topology: &Topology, config: &BoConfig) -> (Option<SizedDesign>, usize) {
        let space = ParamSpace::for_topology(topology);
        let seeded = BoConfig {
            seed: config.seed ^ (topology.index() as u64).wrapping_mul(0x9e37_79b9),
            ..*config
        };
        self.size_in_space(topology, &space, &seeded, None)
    }

    /// Refinement-style partial sizing: only the parameters of
    /// `free_edge`'s subcircuit are optimized; every other parameter is
    /// frozen at `base` (the trusted design's values).
    pub fn size_edge_only(
        &self,
        topology: &Topology,
        base: &DeviceValues,
        free_edge: VariableEdge,
        config: &BoConfig,
    ) -> (Option<SizedDesign>, usize) {
        let space = ParamSpace::for_topology(topology);
        let frozen = space.encode(base);
        let free: Vec<usize> = space.indices_for_edge(free_edge);
        self.size_in_space(topology, &space, config, Some((frozen, free)))
    }

    fn size_in_space(
        &self,
        topology: &Topology,
        space: &ParamSpace,
        config: &BoConfig,
        partial: Option<(Vec<f64>, Vec<usize>)>,
    ) -> (Option<SizedDesign>, usize) {
        let dim = match &partial {
            Some((_, free)) => free.len(),
            None => space.dim(),
        };
        if dim == 0 {
            // Nothing to size (e.g. refining an edge with no parameters):
            // evaluate the frozen design once.
            let x_full = partial.map(|(f, _)| f).unwrap_or_default();
            let result = space
                .decode(&x_full)
                .ok()
                .and_then(|v| self.simulate(topology, &v).ok().map(|p| (v, p)));
            return match result {
                Some((v, p)) => (Some(self.design_from(*topology, v, p)), 1),
                None => (None, 1),
            };
        }

        // Deterministic, physics-informed initial anchors shared by every
        // sizing run: mid-range devices, compensation-heavy, low-power and
        // bandwidth-heavy corners. They remove most of the initialization
        // luck from a topology's evaluated value, which would otherwise
        // dominate the outer surrogate's training signal.
        let anchor = |gm: f64, r: f64, c: f64| -> Vec<f64> {
            space
                .params()
                .iter()
                .map(|p| match p.kind {
                    oa_circuit::ParamKind::StageGm | oa_circuit::ParamKind::Gm => gm,
                    oa_circuit::ParamKind::Res => r,
                    oa_circuit::ParamKind::Cap => c,
                })
                .collect()
        };
        let full_anchors = [
            anchor(0.5, 0.5, 0.5),
            anchor(0.5, 0.5, 0.85),
            anchor(0.25, 0.6, 0.7),
            anchor(0.75, 0.4, 0.6),
        ];
        let anchors: Vec<Vec<f64>> = match &partial {
            None => full_anchors.to_vec(),
            Some((_, free)) => full_anchors
                .iter()
                .map(|a| free.iter().map(|&i| a[i]).collect())
                .collect(),
        };

        let mut sims = 0usize;
        let mut best_design: Option<SizedDesign> = None;
        {
            let eval = |x: &[f64]| -> Option<Observation> {
                sims += 1;
                let x_full: Vec<f64> = match &partial {
                    Some((frozen, free)) => {
                        let mut full = frozen.clone();
                        for (slot, &xi) in free.iter().zip(x) {
                            full[*slot] = xi;
                        }
                        full
                    }
                    None => x.to_vec(),
                };
                let values = space.decode(&x_full).ok()?;
                let perf = self.simulate(topology, &values).ok()?;
                let design = self.design_from(*topology, values, perf);
                let obs = Observation {
                    objective: design.fom.max(FOM_FLOOR).log10(),
                    constraints: self.spec.constraints(&perf),
                };
                // Track the best design alongside the BO history so we never
                // re-simulate the winner.
                let replace = match &best_design {
                    None => true,
                    Some(cur) => match (design.feasible, cur.feasible) {
                        (true, false) => true,
                        (false, true) => false,
                        (true, true) => design.fom > cur.fom,
                        (false, false) => {
                            obs.violation()
                                < self
                                    .spec
                                    .constraints(&cur.performance)
                                    .iter()
                                    .map(|c| c.max(0.0))
                                    .sum()
                        }
                    },
                };
                if replace {
                    best_design = Some(design);
                }
                Some(obs)
            };
            let _ = maximize_constrained_anchored(dim, &anchors, config, eval);
        }
        (best_design, sims)
    }
}

/// A cheaply cloneable, `Send + Sync` handle onto an [`Evaluator`] for
/// concurrent services.
///
/// The handle carries **no mutable state and no RNG**: the spec, process
/// and AC options are frozen at construction, and all randomness enters
/// through an explicit per-request `seed` argument. That is the serving
/// determinism contract (DESIGN.md §7): *same request + same seed →
/// identical result*, regardless of which thread serves it, in what
/// order, or how many requests ran in between.
///
/// # Examples
///
/// ```
/// use into_oa::{Evaluator, Spec};
/// use oa_circuit::{ParamSpace, Topology};
///
/// let handle = Evaluator::new(Spec::s1()).into_handle();
/// let t = Topology::bare_cascade();
/// let x = vec![0.5; ParamSpace::for_topology(&t).dim()];
/// let a = handle.eval(&t, &x).unwrap();
/// let b = handle.eval(&t, &x).unwrap();
/// assert_eq!(a, b); // deterministic
/// ```
#[derive(Debug, Clone)]
pub struct EvalHandle {
    inner: Arc<Evaluator>,
}

// The handle must stay shareable across service worker threads; breaking
// this is a compile error here rather than in downstream crates.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<EvalHandle>();
};

impl EvalHandle {
    /// The underlying evaluator.
    pub fn evaluator(&self) -> &Evaluator {
        &self.inner
    }

    /// The spec this handle evaluates under.
    pub fn spec(&self) -> &Spec {
        self.inner.spec()
    }

    /// Hit/miss counters of the evaluator's shared symbolic-plan cache.
    pub fn plan_cache_stats(&self) -> PlanCacheStats {
        self.inner.plan_cache_stats()
    }

    /// Deterministic single evaluation: simulate `topology` at the
    /// normalized sizing vector `x`. Seed-free by construction.
    ///
    /// # Errors
    ///
    /// See [`Evaluator::simulate_sized`].
    pub fn eval(&self, topology: &Topology, x: &[f64]) -> Result<SizedDesign, IntoOaError> {
        self.inner.simulate_sized(topology, x)
    }

    /// Runs the sizing BO for `topology` under this handle's spec with
    /// an explicit per-request seed and budget. Returns the best design
    /// (feasible-first) and the number of simulations spent.
    ///
    /// The seed is the *request's*: two calls with equal `(topology,
    /// seed, n_init, n_iter)` return identical designs. Internally the
    /// seed is still decorrelated per topology (see [`Evaluator::size`]),
    /// so a client sweeping seed 0 over many topologies does not share
    /// initialization noise between them.
    pub fn size_opt(
        &self,
        topology: &Topology,
        seed: u64,
        n_init: usize,
        n_iter: usize,
    ) -> (Option<SizedDesign>, usize) {
        let config = BoConfig {
            n_init,
            n_iter,
            n_candidates: 100,
            seed,
        };
        self.inner.size(topology, &config)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oa_circuit::{PassiveKind, SubcircuitType};

    fn miller_topology() -> Topology {
        Topology::bare_cascade()
            .with_type(
                VariableEdge::V1Vout,
                SubcircuitType::Passive(PassiveKind::C),
            )
            .unwrap()
    }

    #[test]
    fn sizing_counts_every_simulation() {
        let eval = Evaluator::new(Spec::s1());
        let cfg = BoConfig {
            n_init: 5,
            n_iter: 7,
            n_candidates: 20,
            seed: 1,
        };
        let (_, sims) = eval.size(&miller_topology(), &cfg);
        assert_eq!(sims, 12);
    }

    #[test]
    fn sizing_miller_topology_meets_s1() {
        let eval = Evaluator::new(Spec::s1());
        let cfg = BoConfig {
            n_init: 10,
            n_iter: 25,
            n_candidates: 60,
            seed: 7,
        };
        let (design, _) = eval.size(&miller_topology(), &cfg);
        let d = design.expect("sizing found something");
        assert!(
            d.feasible,
            "Miller-compensated 3-stage should meet S-1; got {:?}",
            d.performance
        );
        assert!(d.fom > 0.0);
    }

    #[test]
    fn best_design_is_consistent_with_spec() {
        let eval = Evaluator::new(Spec::s1());
        let cfg = BoConfig {
            n_init: 6,
            n_iter: 6,
            n_candidates: 20,
            seed: 3,
        };
        let (design, _) = eval.size(&miller_topology(), &cfg);
        let d = design.unwrap();
        assert_eq!(d.feasible, eval.spec().is_met_by(&d.performance));
        assert!((d.fom - eval.spec().fom(&d.performance)).abs() < 1e-12);
    }

    #[test]
    fn edge_only_sizing_freezes_other_parameters() {
        let eval = Evaluator::new(Spec::s1());
        let t = miller_topology();
        let space = ParamSpace::for_topology(&t);
        let base = space.decode(&vec![0.5; space.dim()]).unwrap();
        let cfg = BoConfig {
            n_init: 4,
            n_iter: 4,
            n_candidates: 10,
            seed: 2,
        };
        let (design, sims) = eval.size_edge_only(&t, &base, VariableEdge::V1Vout, &cfg);
        assert_eq!(sims, 8);
        let d = design.unwrap();
        // Stage transconductances were frozen at the base values.
        for i in 0..3 {
            assert!((d.values.stage_gm[i] - base.stage_gm[i]).abs() / base.stage_gm[i] < 1e-9);
        }
    }

    #[test]
    fn handle_matches_direct_evaluator_calls() {
        let eval = Evaluator::new(Spec::s1());
        let handle = eval.clone().into_handle();
        let t = miller_topology();
        let space = ParamSpace::for_topology(&t);
        let x = vec![0.5; space.dim()];

        let direct = eval.simulate_sized(&t, &x).unwrap();
        let served = handle.eval(&t, &x).unwrap();
        assert_eq!(direct, served);

        // Explicit-seed sizing equals the same budget through Evaluator::size.
        let cfg = BoConfig {
            n_init: 4,
            n_iter: 4,
            n_candidates: 100,
            seed: 9,
        };
        let (a, sa) = eval.size(&t, &cfg);
        let (b, sb) = handle.size_opt(&t, 9, 4, 4);
        assert_eq!((a, sa), (b, sb));
    }

    #[test]
    fn simulate_sized_rejects_wrong_dimension() {
        let eval = Evaluator::new(Spec::s1());
        let t = miller_topology();
        assert!(eval.simulate_sized(&t, &[0.5]).is_err());
    }

    #[test]
    fn repeated_simulations_share_one_symbolic_plan() {
        let eval = Evaluator::new(Spec::s1());
        let t = miller_topology();
        let space = ParamSpace::for_topology(&t);
        assert_eq!(eval.plan_cache_stats(), PlanCacheStats::default());

        // Different sizings of one topology reduce to one sparsity
        // pattern: the first analysis is the only miss.
        eval.simulate_sized(&t, &vec![0.4; space.dim()]).unwrap();
        eval.simulate_sized(&t, &vec![0.6; space.dim()]).unwrap();
        let stats = eval.plan_cache_stats();
        assert_eq!(stats.misses, 1, "one analysis per pattern: {stats:?}");
        assert!(stats.hits >= 1, "second sizing must reuse it: {stats:?}");

        // Handles share the evaluator, hence the cache.
        let before = stats.hits;
        let handle = eval.clone().into_handle();
        handle.eval(&t, &vec![0.5; space.dim()]).unwrap();
        let after = handle.plan_cache_stats();
        assert_eq!(after.misses, 1);
        assert!(after.hits > before);
    }

    #[test]
    fn deterministic_per_topology_seed() {
        let eval = Evaluator::new(Spec::s1());
        let cfg = BoConfig {
            n_init: 5,
            n_iter: 3,
            n_candidates: 10,
            seed: 11,
        };
        let (a, _) = eval.size(&miller_topology(), &cfg);
        let (b, _) = eval.size(&miller_topology(), &cfg);
        assert_eq!(a, b);
    }
}
