//! The INTO-OA topology optimizer: Algorithm 1 wired to the sizing oracle
//! and the AC simulator, with full run-history recording for the
//! experiment harness.

use oa_bo::{topology_bo, BoConfig, TopoBoConfig, TopoObservation};
use oa_circuit::{Process, Topology};
use oa_graph::WlFeaturizer;
use oa_sim::AcOptions;

use crate::evaluator::{Evaluator, SizedDesign};
use crate::spec::Spec;

/// Candidate-generation strategy (Section IV-A naming).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CandidateStrategy {
    /// INTO-OA: half mutation, half random sampling.
    Mixed,
    /// INTO-OA-r: all candidates from random sampling.
    RandomOnly,
    /// INTO-OA-m: all candidates from mutation.
    MutationOnly,
}

impl CandidateStrategy {
    /// The mutation fraction of the candidate pool.
    pub fn mutation_fraction(self) -> f64 {
        match self {
            CandidateStrategy::Mixed => 0.5,
            CandidateStrategy::RandomOnly => 0.0,
            CandidateStrategy::MutationOnly => 1.0,
        }
    }

    /// Display name used in the experiment tables.
    pub fn label(self) -> &'static str {
        match self {
            CandidateStrategy::Mixed => "INTO-OA",
            CandidateStrategy::RandomOnly => "INTO-OA-r",
            CandidateStrategy::MutationOnly => "INTO-OA-m",
        }
    }
}

/// Full configuration of one INTO-OA run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IntoOaConfig {
    /// Outer-loop (Algorithm 1) settings; `mutation_fraction` is overridden
    /// by `strategy`.
    pub topo: TopoBoConfig,
    /// Inner sizing-BO settings (paper: 10 init + 30 iterations).
    pub sizing: BoConfig,
    /// Candidate-generation strategy.
    pub strategy: CandidateStrategy,
    /// Technology constants.
    pub process: Process,
    /// AC analysis options.
    pub ac: AcOptions,
}

impl Default for IntoOaConfig {
    fn default() -> Self {
        IntoOaConfig {
            topo: TopoBoConfig::default(),
            sizing: BoConfig::default(),
            strategy: CandidateStrategy::Mixed,
            process: Process::default(),
            ac: AcOptions::default(),
        }
    }
}

impl IntoOaConfig {
    /// A reduced-budget configuration for tests and smoke runs.
    pub fn quick(seed: u64) -> Self {
        IntoOaConfig {
            topo: TopoBoConfig {
                n_init: 4,
                n_iter: 6,
                pool_size: 30,
                seed,
                ..TopoBoConfig::default()
            },
            sizing: BoConfig {
                n_init: 5,
                n_iter: 5,
                n_candidates: 30,
                seed,
            },
            ..IntoOaConfig::default()
        }
    }
}

/// One evaluated topology with its sized design and simulation accounting.
#[derive(Debug, Clone, PartialEq)]
pub struct EvaluatedTopology {
    /// The sized design (best sizing found for this topology).
    pub design: SizedDesign,
    /// Simulations spent sizing this topology.
    pub sims_used: usize,
    /// Cumulative simulations spent in the run up to and including this
    /// topology.
    pub cum_sims: usize,
}

/// The record of one full optimization run.
#[derive(Debug)]
pub struct OptimizationRun {
    /// The spec optimized for.
    pub spec: Spec,
    /// Which strategy produced the run.
    pub strategy: CandidateStrategy,
    /// Evaluated topologies in evaluation order.
    pub records: Vec<EvaluatedTopology>,
    /// Index of the best record (feasible-first), if any.
    pub best: Option<usize>,
    /// The WL label dictionary of the run (for interpretability).
    pub featurizer: WlFeaturizer,
    /// Total simulations spent, including failed sizing attempts.
    pub total_sims: usize,
}

impl OptimizationRun {
    /// The best sized design of the run.
    pub fn best_design(&self) -> Option<&SizedDesign> {
        self.best.map(|i| &self.records[i].design)
    }

    /// Returns `true` if any evaluated design met the spec.
    pub fn succeeded(&self) -> bool {
        self.records.iter().any(|r| r.design.feasible)
    }

    /// Optimization curve: `(cumulative simulations, best feasible FoM so
    /// far)` after each evaluated topology — the series plotted in Fig. 5.
    pub fn curve(&self) -> Vec<(usize, Option<f64>)> {
        let mut best: Option<f64> = None;
        self.records
            .iter()
            .map(|r| {
                if r.design.feasible {
                    best = Some(best.map_or(r.design.fom, |b| b.max(r.design.fom)));
                }
                (r.cum_sims, best)
            })
            .collect()
    }

    /// Number of simulations needed to first reach a feasible design with
    /// FoM ≥ `target` (the "# Sim." column of Table II), or `None` if the
    /// run never reached it.
    pub fn sims_to_reach(&self, target: f64) -> Option<usize> {
        self.records
            .iter()
            .find(|r| r.design.feasible && r.design.fom >= target)
            .map(|r| r.cum_sims)
    }
}

/// Runs INTO-OA (or one of its ablations) for a spec.
///
/// # Examples
///
/// ```no_run
/// use into_oa::{optimize, IntoOaConfig, Spec};
///
/// let run = optimize(&Spec::s1(), &IntoOaConfig::quick(0));
/// if let Some(best) = run.best_design() {
///     println!("best FoM = {:.1} (feasible: {})", best.fom, best.feasible);
/// }
/// ```
pub fn optimize(spec: &Spec, config: &IntoOaConfig) -> OptimizationRun {
    let evaluator = Evaluator::with_options(*spec, config.process, config.ac);
    let topo_cfg = TopoBoConfig {
        mutation_fraction: config.strategy.mutation_fraction(),
        ..config.topo
    };

    let mut records: Vec<EvaluatedTopology> = Vec::new();
    let mut cum_sims = 0usize;
    let result = topology_bo(&topo_cfg, |t: &Topology| {
        let (design, sims) = evaluator.size(t, &config.sizing);
        cum_sims += sims;
        let design = design?;
        let obs = TopoObservation {
            objective: design.fom.max(1.0).log10(),
            constraints: spec.constraints(&design.performance),
            metrics: vec![
                design.performance.gain_db,
                design.performance.gbw_hz,
                design.performance.pm_deg,
                design.performance.power_w,
                design.fom,
            ],
        };
        records.push(EvaluatedTopology {
            design,
            sims_used: sims,
            cum_sims,
        });
        Some(obs)
    });

    OptimizationRun {
        spec: *spec,
        strategy: config.strategy,
        records,
        best: result.best,
        featurizer: result.featurizer,
        total_sims: cum_sims,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_finds_a_feasible_s1_design() {
        let cfg = IntoOaConfig::quick(5);
        let run = optimize(&Spec::s1(), &cfg);
        assert!(!run.records.is_empty());
        assert_eq!(
            run.records.len(),
            run.curve().len(),
            "curve aligns with records"
        );
        // With 10 topologies × 10 sims each, S-1 is usually met; assert the
        // accounting rather than success to keep the test robust.
        assert_eq!(
            run.total_sims,
            run.records.last().map(|r| r.cum_sims).unwrap_or(0)
        );
    }

    #[test]
    fn curve_is_monotone_in_sims_and_fom() {
        let run = optimize(&Spec::s1(), &IntoOaConfig::quick(8));
        let curve = run.curve();
        for w in curve.windows(2) {
            assert!(w[1].0 >= w[0].0);
            if let (Some(a), Some(b)) = (w[0].1, w[1].1) {
                assert!(b >= a);
            }
        }
    }

    #[test]
    fn sims_to_reach_matches_curve() {
        let run = optimize(&Spec::s1(), &IntoOaConfig::quick(9));
        if let Some(best) = run.best_design() {
            if best.feasible {
                let sims = run.sims_to_reach(best.fom).expect("reached its own best");
                assert!(sims <= run.total_sims);
                assert!(run.sims_to_reach(best.fom * 10.0 + 1e9).is_none());
            }
        }
    }

    #[test]
    fn strategies_set_mutation_fraction() {
        assert_eq!(CandidateStrategy::Mixed.mutation_fraction(), 0.5);
        assert_eq!(CandidateStrategy::RandomOnly.mutation_fraction(), 0.0);
        assert_eq!(CandidateStrategy::MutationOnly.mutation_fraction(), 1.0);
        assert_eq!(CandidateStrategy::Mixed.label(), "INTO-OA");
    }

    #[test]
    fn runs_are_deterministic() {
        let a = optimize(&Spec::s1(), &IntoOaConfig::quick(3));
        let b = optimize(&Spec::s1(), &IntoOaConfig::quick(3));
        assert_eq!(a.records.len(), b.records.len());
        for (ra, rb) in a.records.iter().zip(&b.records) {
            assert_eq!(ra.design.topology, rb.design.topology);
            assert_eq!(ra.cum_sims, rb.cum_sims);
        }
    }
}
