//! **INTO-OA**: Interpretable Topology Optimization for Operational
//! Amplifiers — a from-scratch Rust reproduction of the DATE 2025 paper.
//!
//! This crate assembles the paper's method from the workspace substrates:
//!
//! * [`Spec`] — the design-specification sets of Table I and the FoM of
//!   Eq. 6.
//! * [`Evaluator`] — the evaluation oracle: automated sizing (constrained
//!   BO, \[1\]) against the complex-MNA AC simulator in `oa-sim`.
//! * [`optimize`] — the full INTO-OA optimizer: Algorithm 1 (WL kernel
//!   GP-BO with the mutation + random candidate generator) over the
//!   30 625-topology behavior-level design space, with the `-r`/`-m`
//!   ablations as [`CandidateStrategy`] variants.
//! * [`MetricModels`] / [`removal_sensitivity`] — interpretability: the
//!   gradient of the WL-GP posterior mean with respect to structural
//!   features (Eq. 5) identifies performance-critical subcircuits, and
//!   remove-and-resimulate sensitivity validates it (Section IV-B).
//! * [`refine`] — gradient-guided refinement of trusted designs with
//!   minimal modification (Section III-C / IV-C), plus the two literature
//!   topologies C1/C2 in [`literature`].
//!
//! # Examples
//!
//! Run a reduced-budget optimization and inspect the winner:
//!
//! ```no_run
//! use into_oa::{optimize, IntoOaConfig, Spec};
//!
//! let run = optimize(&Spec::s1(), &IntoOaConfig::quick(0));
//! if let Some(best) = run.best_design() {
//!     println!(
//!         "{} → FoM {:.1}, gain {:.1} dB, GBW {:.2} MHz",
//!         best.topology, best.fom, best.performance.gain_db,
//!         best.performance.gbw_hz / 1e6,
//!     );
//! }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
mod evaluator;
mod interpret;
pub mod literature;
mod optimizer;
mod refine;
mod spec;

pub use error::{EvalError, EvalErrorKind, IntoOaError};
pub use evaluator::{EvalHandle, Evaluator, SizedDesign};
pub use interpret::{
    removal_sensitivity, MetricModels, RemovalSensitivity, StructureImpact, MODELLED_METRICS,
};
pub use oa_sim::PlanCacheStats;
pub use optimizer::{
    optimize, CandidateStrategy, EvaluatedTopology, IntoOaConfig, OptimizationRun,
};
pub use refine::{refine, refinement_spec, RefineAttempt, RefineConfig, RefineOutcome};
pub use spec::Spec;
