//! Behavior-level models of the two literature op-amps refined in
//! Section IV-C.
//!
//! * **C1** — the feedforward-compensated three-stage OTA of Thandri &
//!   Silva-Martínez (JSSC 2003, \[19\]): no Miller capacitors; a feedforward
//!   transconductor from the input to the output plus a feedforward stage
//!   from `v1` to `vout` with a parallel capacitor. The paper's Fig. 7(a)
//!   highlights the parallel-connected `−gm` and `C` between `v1` and
//!   `vout` as the subcircuit its refinement replaces with a bare `−gm`.
//! * **C2** — the impedance-adapting compensated amplifier of Peng &
//!   Sansen (JSSC 2011, \[20\]): series-RC Miller compensation between `v1`
//!   and `vout` plus an impedance-adapting series RC at the second-stage
//!   output. Fig. 7(b) highlights the `−gm` between `vin` and `v2`, which
//!   the refinement replaces by a series-connected `+gm` and `C`.

use oa_circuit::{
    GmComposite, GmDirection, GmPolarity, PassiveKind, SubcircuitType, Topology, VariableEdge,
};

/// The behavior-level topology of C1 (\[19\]): feedforward compensation, no
/// Miller capacitors.
///
/// # Examples
///
/// ```
/// use into_oa::literature;
/// use oa_circuit::VariableEdge;
///
/// let c1 = literature::c1();
/// assert!(c1.type_on(VariableEdge::VinVout).has_gm());
/// ```
pub fn c1() -> Topology {
    Topology::bare_cascade()
        .with_type(
            VariableEdge::VinVout,
            SubcircuitType::Gm {
                polarity: GmPolarity::Plus,
                direction: GmDirection::Forward,
                composite: GmComposite::Bare,
            },
        )
        .expect("legal feedforward type")
        .with_type(
            VariableEdge::V1Vout,
            SubcircuitType::Gm {
                polarity: GmPolarity::Minus,
                direction: GmDirection::Forward,
                composite: GmComposite::ParallelC,
            },
        )
        .expect("legal v1-vout type")
}

/// The refined topology R1: the parallel `−gm ∥ C` on `v1–vout` becomes a
/// bare `−gm` (the modification Fig. 7(a) reports).
pub fn r1() -> Topology {
    c1().with_type(
        VariableEdge::V1Vout,
        SubcircuitType::Gm {
            polarity: GmPolarity::Minus,
            direction: GmDirection::Forward,
            composite: GmComposite::Bare,
        },
    )
    .expect("legal replacement")
}

/// The behavior-level topology of C2 (\[20\]): series-RC Miller compensation
/// with impedance adapting, plus a feedforward `−gm` into `v2`.
pub fn c2() -> Topology {
    Topology::bare_cascade()
        .with_type(
            VariableEdge::VinV2,
            SubcircuitType::Gm {
                polarity: GmPolarity::Minus,
                direction: GmDirection::Forward,
                composite: GmComposite::Bare,
            },
        )
        .expect("legal feedforward type")
        .with_type(
            VariableEdge::V1Vout,
            SubcircuitType::Passive(PassiveKind::SeriesRc),
        )
        .expect("legal compensation type")
        .with_type(
            VariableEdge::V2Gnd,
            SubcircuitType::Passive(PassiveKind::SeriesRc),
        )
        .expect("legal impedance-adapting type")
}

/// The refined topology R2: the `−gm` on `vin–v2` becomes a
/// series-connected `+gm` and `C` (the modification Fig. 7(b) reports).
pub fn r2() -> Topology {
    c2().with_type(
        VariableEdge::VinV2,
        SubcircuitType::Gm {
            polarity: GmPolarity::Plus,
            direction: GmDirection::Forward,
            composite: GmComposite::SeriesC,
        },
    )
    .expect("legal replacement")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn c1_matches_fig7a_description() {
        let t = c1();
        assert_eq!(
            t.type_on(VariableEdge::V1Vout).mnemonic(),
            "-gmCp>",
            "parallel -gm and C between v1 and vout"
        );
        assert!(t.type_on(VariableEdge::VinV2).is_no_conn());
        assert_eq!(t.connected_count(), 2);
    }

    #[test]
    fn c2_matches_fig7b_description() {
        let t = c2();
        assert_eq!(t.type_on(VariableEdge::VinV2).mnemonic(), "-gm>");
        assert_eq!(
            t.type_on(VariableEdge::V1Vout),
            SubcircuitType::Passive(PassiveKind::SeriesRc)
        );
        assert_eq!(t.connected_count(), 3);
    }

    #[test]
    fn refinements_change_exactly_one_edge() {
        assert_eq!(c1().distance(&r1()), 1);
        assert_eq!(c2().distance(&r2()), 1);
        assert_eq!(r2().type_on(VariableEdge::VinV2).mnemonic(), "+gmCs>");
    }

    #[test]
    fn all_four_topologies_are_legal() {
        for t in [c1(), r1(), c2(), r2()] {
            assert!(Topology::new(*t.types()).is_ok());
        }
    }
}
