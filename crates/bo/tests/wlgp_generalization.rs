use oa_circuit::{GmComposite, GmDirection, PassiveKind, SubcircuitType, Topology, VariableEdge};

fn edge_bonus(edge: VariableEdge, ty: SubcircuitType) -> f64 {
    use PassiveKind as P;
    use SubcircuitType as S;
    use VariableEdge as E;
    match edge {
        E::V1Vout => match ty {
            S::Passive(P::C) => 4.0,
            S::Passive(P::SeriesRc) => 5.0,
            S::Passive(P::ParallelRc) => 3.0,
            S::Passive(P::R) => -1.0,
            S::Gm {
                direction: GmDirection::Reverse,
                ..
            } => 2.0,
            S::Gm { .. } => 0.5,
            S::NoConn => 0.0,
        },
        E::VinV2 => match ty {
            S::Gm {
                composite: GmComposite::SeriesC,
                ..
            } => 2.0,
            S::Gm { .. } => 1.0,
            _ => 0.0,
        },
        E::VinVout => {
            if ty.has_gm() {
                1.0
            } else {
                0.0
            }
        }
        E::V1Gnd | E::V2Gnd => match ty {
            S::Passive(P::C) => 1.0,
            S::Passive(P::R) | S::Passive(P::ParallelRc) => -2.0,
            S::Passive(P::SeriesRc) => 0.5,
            _ => 0.0,
        },
    }
}

fn score(t: &Topology) -> f64 {
    1.0 + VariableEdge::ALL
        .iter()
        .map(|&e| edge_bonus(e, t.type_on(e)))
        .sum::<f64>()
}

#[test]
fn wlgp_generalizes_on_additive_landscape() {
    use oa_gp::WlGp;
    use oa_graph::{CircuitGraph, WlFeaturizer};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    let mut rng = ChaCha8Rng::seed_from_u64(1);
    let mut wl = WlFeaturizer::new();
    let train: Vec<Topology> = (0..20).map(|_| Topology::random(&mut rng)).collect();
    let feats: Vec<_> = train
        .iter()
        .map(|t| wl.featurize(&CircuitGraph::from_topology(t), 4))
        .collect();
    let y: Vec<f64> = train.iter().map(score).collect();
    let gp = WlGp::fit(feats, y.clone()).unwrap();
    let mut pairs: Vec<(f64, f64)> = Vec::new();
    for _ in 0..300 {
        let t = Topology::random(&mut rng);
        let f = wl.featurize(&CircuitGraph::from_topology(&t), 4);
        let (m, _v) = gp.predict(&f).unwrap();
        pairs.push((m, score(&t)));
    }
    let n = pairs.len() as f64;
    let mx = pairs.iter().map(|p| p.0).sum::<f64>() / n;
    let my = pairs.iter().map(|p| p.1).sum::<f64>() / n;
    let cov = pairs.iter().map(|p| (p.0 - mx) * (p.1 - my)).sum::<f64>() / n;
    let sx = (pairs.iter().map(|p| (p.0 - mx).powi(2)).sum::<f64>() / n).sqrt();
    let sy = (pairs.iter().map(|p| (p.1 - my).powi(2)).sum::<f64>() / n).sqrt();
    let corr = cov / (sx * sy);
    assert!(
        corr > 0.4,
        "WL-GP generalization correlation too low: {corr}"
    );
}
