//! Resumable topology-BO sessions: Algorithm 1 decomposed into explicit
//! `propose` / `observe` half-steps.
//!
//! [`crate::topology_bo_filtered`] runs the whole optimization in one
//! call; a *session* exposes the same state machine one iterate at a
//! time, so a serving layer can interleave many concurrent
//! optimizations, evaluate proposals on its own worker pool, and replay
//! a session deterministically from `(config, seed, observations)`.
//!
//! ## Determinism contract
//!
//! A session is a pure function of its construction config (which
//! includes the RNG seed), the warm-start observations seeded before
//! the first proposal, and the observation fed back for each proposal.
//! Two sessions driven with identical inputs produce identical proposal
//! sequences — the batch driver [`crate::topology_bo_filtered`] is
//! itself implemented as a session loop, so the equivalence is pinned
//! by the whole existing `topology_bo` test suite.
//!
//! ## Warm starts
//!
//! [`BoSession::seed_observation`] injects observations measured under
//! *related* specs (the function-family transfer of the warm-start
//! literature): they join the GP training set and the elite pool, but
//! are never counted in [`BoSession::history`] and never marked
//! visited — the session may legitimately re-evaluate the same
//! topology under its own spec. All seeded observations must carry the
//! same number of constraints as the session's own observations.

use std::collections::HashSet;

use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use oa_circuit::Topology;
use oa_gp::WlGp;
use oa_graph::{WlFeatures, WlFeaturizer};

use crate::topology::{
    generate_candidates, rank_better, select_candidate, TopoBoConfig, TopoBoResult,
    TopoObservation, TopoRecord,
};

/// One in-flight topology optimization, stepped explicitly.
///
/// # Examples
///
/// ```
/// use oa_bo::{BoSession, TopoBoConfig, TopoObservation};
///
/// let cfg = TopoBoConfig { n_init: 3, n_iter: 4, pool_size: 20, ..TopoBoConfig::default() };
/// let mut session = BoSession::new(cfg);
/// for _ in 0..5 {
///     let Some(t) = session.propose_default() else { continue };
///     session.observe(t, Some(TopoObservation {
///         objective: t.connected_count() as f64,
///         constraints: vec![],
///         metrics: vec![],
///     }));
/// }
/// assert_eq!(session.history().len(), 5);
/// assert!(session.best().is_some());
/// ```
#[derive(Debug)]
pub struct BoSession {
    config: TopoBoConfig,
    rng: ChaCha8Rng,
    featurizer: WlFeaturizer,
    visited: HashSet<Topology>,
    history: Vec<TopoRecord>,
    feats: Vec<WlFeatures>,
    warm: Vec<TopoRecord>,
    warm_feats: Vec<WlFeatures>,
    rejected: usize,
    init_attempts: usize,
}

impl BoSession {
    /// Opens a session. The RNG is seeded from `config.seed`; nothing is
    /// drawn until the first proposal.
    pub fn new(config: TopoBoConfig) -> BoSession {
        BoSession {
            config,
            rng: ChaCha8Rng::seed_from_u64(config.seed),
            featurizer: WlFeaturizer::new(),
            visited: HashSet::new(),
            history: Vec::new(),
            feats: Vec::new(),
            warm: Vec::new(),
            warm_feats: Vec::new(),
            rejected: 0,
            init_attempts: 0,
        }
    }

    /// The session's configuration.
    pub fn config(&self) -> &TopoBoConfig {
        &self.config
    }

    /// Seeds one warm-start observation (see the module docs). Must be
    /// called before the first [`BoSession::propose`] for the replay
    /// contract to hold.
    pub fn seed_observation(&mut self, topology: Topology, observation: TopoObservation) {
        self.warm_feats.push(
            self.featurizer
                .featurize_topology(&topology, self.config.wl_levels),
        );
        self.warm.push(TopoRecord {
            topology,
            observation,
        });
    }

    /// `true` while the session is still drawing its random initial
    /// dataset (line 1 of Algorithm 1) — i.e. fewer than `n_init`
    /// successful observations and the draw budget is not exhausted.
    pub fn in_init_phase(&self) -> bool {
        self.history.len() < self.config.n_init && self.init_attempts < self.config.n_init * 50
    }

    /// Proposes the next topology to evaluate, or `None` when the
    /// current phase has nothing to offer (initial-draw budget exhausted,
    /// or an empty candidate pool). The proposal is marked visited
    /// immediately; every proposal must be answered by exactly one
    /// [`BoSession::observe`] before the next `propose`.
    pub fn propose<V>(&mut self, is_valid: &mut V) -> Option<Topology>
    where
        V: FnMut(&Topology) -> bool,
    {
        if self.in_init_phase() {
            return self.propose_init(is_valid);
        }
        self.propose_bo(is_valid)
    }

    /// [`BoSession::propose`] with the default structural-validity
    /// filter ([`oa_analyze::is_structurally_valid`]).
    pub fn propose_default(&mut self) -> Option<Topology> {
        let mut is_valid = oa_analyze::is_structurally_valid;
        self.propose(&mut is_valid)
    }

    fn propose_init<V>(&mut self, is_valid: &mut V) -> Option<Topology>
    where
        V: FnMut(&Topology) -> bool,
    {
        while self.history.len() < self.config.n_init
            && self.init_attempts < self.config.n_init * 50
        {
            self.init_attempts += 1;
            let t = Topology::random(&mut self.rng);
            if self.visited.contains(&t) {
                continue;
            }
            if !is_valid(&t) {
                self.visited.insert(t);
                self.rejected += 1;
                continue;
            }
            self.visited.insert(t);
            return Some(t);
        }
        None
    }

    fn propose_bo<V>(&mut self, is_valid: &mut V) -> Option<Topology>
    where
        V: FnMut(&Topology) -> bool,
    {
        // The GP trains on warm-start records first, then the session's
        // own history, in seeding order — with no warm records this is
        // exactly the batch optimizer's training set.
        let (records_buf, feats_buf);
        let (records, feats): (&[TopoRecord], &[WlFeatures]) = if self.warm.is_empty() {
            (&self.history, &self.feats)
        } else {
            records_buf = self
                .warm
                .iter()
                .chain(&self.history)
                .cloned()
                .collect::<Vec<_>>();
            feats_buf = self
                .warm_feats
                .iter()
                .chain(&self.feats)
                .cloned()
                .collect::<Vec<_>>();
            (&records_buf, &feats_buf)
        };
        let pool = generate_candidates(
            &self.config,
            records,
            &mut self.visited,
            &mut self.rng,
            is_valid,
            &mut self.rejected,
        );
        if pool.is_empty() {
            return None;
        }
        let chosen = select_candidate(&self.config, records, feats, &pool, &mut self.featurizer)
            // lint: allow(panic, pool is non-empty by the early return above and gen_range yields an index below pool.len())
            .unwrap_or_else(|| pool[self.rng.gen_range(0..pool.len())]);
        self.visited.insert(chosen);
        Some(chosen)
    }

    /// Records the outcome of evaluating a proposal. `None` means the
    /// evaluation failed (no sized design found); the topology stays
    /// visited and the history does not grow — exactly the batch
    /// optimizer's treatment of a failed oracle call.
    pub fn observe(&mut self, topology: Topology, observation: Option<TopoObservation>) {
        if let Some(obs) = observation {
            self.feats.push(
                self.featurizer
                    .featurize_topology(&topology, self.config.wl_levels),
            );
            self.history.push(TopoRecord {
                topology,
                observation: obs,
            });
        }
    }

    /// Successfully evaluated records, in evaluation order (warm-start
    /// records excluded).
    pub fn history(&self) -> &[TopoRecord] {
        &self.history
    }

    /// Warm-start records seeded at open time.
    pub fn warm(&self) -> &[TopoRecord] {
        &self.warm
    }

    /// Structurally degenerate candidates burned by the validity filter.
    pub fn rejected(&self) -> usize {
        self.rejected
    }

    /// Index into [`BoSession::history`] of the incumbent under
    /// feasible-first ranking, or `None` for an empty history. Warm-start
    /// records never become the incumbent: the incumbent is a result
    /// *under this session's spec*.
    pub fn best(&self) -> Option<usize> {
        (0..self.history.len()).reduce(|a, b| {
            // lint: allow(panic, a and b both come from 0..history.len())
            if rank_better(&self.history[b].observation, &self.history[a].observation) {
                b
            } else {
                a
            }
        })
    }

    /// The WL label dictionary accumulated so far.
    pub fn featurizer(&self) -> &WlFeaturizer {
        &self.featurizer
    }

    /// Posterior mean and variance of the *objective* GP at each probe
    /// topology, trained exactly as the next [`BoSession::propose`]
    /// would train it (warm records first, then history). Probes are
    /// featurized through a clone of the session featurizer, so calling
    /// this never perturbs the session's label dictionary or its replay.
    /// Returns `None` when the GP cannot be fitted (e.g. no
    /// observations). Pins the warm-start seeding path against a
    /// reference [`WlGp::fit`] in the differential tests.
    pub fn objective_posterior(&self, probes: &[Topology]) -> Option<Vec<(f64, f64)>> {
        let feats: Vec<WlFeatures> = self.warm_feats.iter().chain(&self.feats).cloned().collect();
        let y: Vec<f64> = self
            .warm
            .iter()
            .chain(&self.history)
            .map(|r| r.observation.objective)
            .collect();
        let gp = WlGp::fit(feats, y).ok()?;
        let mut featurizer = self.featurizer.clone();
        probes
            .iter()
            .map(|t| {
                gp.predict(&featurizer.featurize_topology(t, self.config.wl_levels))
                    .ok()
            })
            .collect()
    }

    /// Consumes the session into the batch-result shape.
    pub fn into_result(self) -> TopoBoResult {
        let best = self.best();
        TopoBoResult {
            history: self.history,
            best,
            featurizer: self.featurizer,
            rejected: self.rejected,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy_oracle(t: &Topology) -> Option<TopoObservation> {
        Some(TopoObservation {
            objective: t.connected_count() as f64,
            constraints: vec![-1.0],
            metrics: vec![],
        })
    }

    fn cfg(seed: u64) -> TopoBoConfig {
        TopoBoConfig {
            n_init: 4,
            n_iter: 6,
            pool_size: 24,
            seed,
            ..TopoBoConfig::default()
        }
    }

    #[test]
    fn session_loop_matches_batch_optimizer_exactly() {
        let config = cfg(11);
        let batch = crate::topology_bo(&config, toy_oracle);
        let mut session = BoSession::new(config);
        let mut is_valid = oa_analyze::is_structurally_valid;
        while session.in_init_phase() {
            let Some(t) = session.propose(&mut is_valid) else {
                break;
            };
            session.observe(t, toy_oracle(&t));
        }
        for _ in 0..config.n_iter {
            let Some(t) = session.propose(&mut is_valid) else {
                continue;
            };
            session.observe(t, toy_oracle(&t));
        }
        let stepped = session.into_result();
        let a: Vec<_> = batch.history.iter().map(|r| r.topology).collect();
        let b: Vec<_> = stepped.history.iter().map(|r| r.topology).collect();
        assert_eq!(a, b, "stepped session must replay the batch run");
        assert_eq!(batch.best, stepped.best);
        assert_eq!(batch.rejected, stepped.rejected);
    }

    #[test]
    fn warm_records_train_the_gp_but_stay_out_of_history() {
        let config = cfg(3);
        let mut session = BoSession::new(config);
        let t = Topology::bare_cascade();
        session.seed_observation(
            t,
            TopoObservation {
                objective: 2.5,
                constraints: vec![-1.0],
                metrics: vec![],
            },
        );
        assert_eq!(session.warm().len(), 1);
        assert!(session.history().is_empty());
        assert!(session.best().is_none(), "warm records are not incumbents");
        let posterior = session
            .objective_posterior(&[t])
            .expect("one warm record fits a GP");
        assert_eq!(posterior.len(), 1);
        // A seeded topology may still be proposed by this session.
        let mut proposed = Vec::new();
        for _ in 0..config.n_init {
            if let Some(p) = session.propose_default() {
                proposed.push(p);
                session.observe(p, toy_oracle(&p));
            }
        }
        assert_eq!(session.history().len(), proposed.len());
    }

    #[test]
    fn posterior_probe_does_not_perturb_the_replay() {
        let config = cfg(5);
        let drive = |probe: bool| {
            let mut session = BoSession::new(config);
            let mut out = Vec::new();
            for _ in 0..(config.n_init + config.n_iter) {
                if probe {
                    let _ = session.objective_posterior(&[Topology::bare_cascade()]);
                }
                let Some(t) = session.propose_default() else {
                    continue;
                };
                session.observe(t, toy_oracle(&t));
                out.push(t);
            }
            out
        };
        assert_eq!(drive(false), drive(true));
    }
}
