//! Constrained Bayesian optimization on the unit cube — the automated
//! sizing inner loop of Section II-A (method of \[1\]).

use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use oa_gp::GpRegressor;

use crate::acquisition::weighted_ei;

/// One observed point of a constrained black box.
#[derive(Debug, Clone, PartialEq)]
pub struct Observation {
    /// Objective value (maximized).
    pub objective: f64,
    /// Constraint values; feasible when every entry ≤ 0.
    pub constraints: Vec<f64>,
}

impl Observation {
    /// Returns `true` when every constraint is satisfied.
    pub fn is_feasible(&self) -> bool {
        self.constraints.iter().all(|&c| c <= 0.0)
    }

    /// Total positive constraint violation (0 when feasible).
    pub fn violation(&self) -> f64 {
        self.constraints.iter().map(|&c| c.max(0.0)).sum()
    }
}

/// Configuration of the sizing BO loop.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BoConfig {
    /// Number of random initial points (paper: 10).
    pub n_init: usize,
    /// Number of BO iterations after initialization (paper: 30).
    pub n_iter: usize,
    /// Acquisition candidates per iteration.
    pub n_candidates: usize,
    /// RNG seed; every run with the same seed and black box is identical.
    pub seed: u64,
}

impl Default for BoConfig {
    fn default() -> Self {
        BoConfig {
            n_init: 10,
            n_iter: 30,
            n_candidates: 100,
            seed: 0,
        }
    }
}

/// Result of a constrained-BO run.
#[derive(Debug, Clone, PartialEq)]
pub struct BoResult {
    /// Best point: the feasible observation with the highest objective, or
    /// — when nothing is feasible — the observation with the smallest total
    /// violation.
    pub best: Option<(Vec<f64>, Observation)>,
    /// Every evaluated `(x, observation)` in evaluation order.
    pub history: Vec<(Vec<f64>, Observation)>,
}

impl BoResult {
    /// The best *feasible* observation, if any run point was feasible.
    pub fn best_feasible(&self) -> Option<&(Vec<f64>, Observation)> {
        self.best.as_ref().filter(|(_, obs)| obs.is_feasible())
    }
}

fn better(a: &Observation, b: &Observation) -> bool {
    // Feasible beats infeasible; among feasible, higher objective; among
    // infeasible, lower violation.
    match (a.is_feasible(), b.is_feasible()) {
        (true, false) => true,
        (false, true) => false,
        (true, true) => a.objective > b.objective,
        (false, false) => a.violation() < b.violation(),
    }
}

/// Maximizes a constrained black box on `[0,1]^dim` with GP surrogates and
/// the wEI acquisition.
///
/// The black box returns `None` on evaluation failure (e.g. a singular
/// simulation); failed points are discarded and do not enter the surrogate.
///
/// # Examples
///
/// ```
/// use oa_bo::{maximize_constrained, BoConfig, Observation};
///
/// // Maximize -(x-0.7)² subject to x ≥ 0.5  (c = 0.5 - x ≤ 0).
/// let result = maximize_constrained(1, &BoConfig::default(), |x| {
///     Some(Observation {
///         objective: -(x[0] - 0.7) * (x[0] - 0.7),
///         constraints: vec![0.5 - x[0]],
///     })
/// });
/// let (x, obs) = result.best.expect("found something");
/// assert!(obs.is_feasible());
/// assert!((x[0] - 0.7).abs() < 0.1);
/// ```
pub fn maximize_constrained<F>(dim: usize, config: &BoConfig, black_box: F) -> BoResult
where
    F: FnMut(&[f64]) -> Option<Observation>,
{
    maximize_constrained_anchored(dim, &[], config, black_box)
}

/// Like [`maximize_constrained`], but the first initial points are the
/// caller-provided deterministic `anchors` (clamped to the cube and
/// truncated/padded to `dim`). Domain-informed anchors — e.g. "mid-range
/// devices" or "heavy compensation" for op-amp sizing — make the
/// evaluation of a topology far less dependent on initialization luck,
/// which matters when the optimizer's result is itself the training signal
/// of an outer surrogate.
pub fn maximize_constrained_anchored<F>(
    dim: usize,
    anchors: &[Vec<f64>],
    config: &BoConfig,
    mut black_box: F,
) -> BoResult
where
    F: FnMut(&[f64]) -> Option<Observation>,
{
    let mut rng = ChaCha8Rng::seed_from_u64(config.seed);
    let mut history: Vec<(Vec<f64>, Observation)> = Vec::new();

    let evaluate = |x: Vec<f64>, history: &mut Vec<(Vec<f64>, Observation)>, bb: &mut F| {
        if let Some(obs) = bb(&x) {
            history.push((x, obs));
        }
    };

    // Latin-hypercube initialization: one stratum per point per dimension,
    // permuted independently — far better coverage than iid sampling in
    // the 3–13-dimensional sizing cubes.
    let n_init = config.n_init.max(1);
    let n_anchors = anchors.len().min(n_init);
    for a in anchors.iter().take(n_anchors) {
        let x: Vec<f64> = (0..dim)
            .map(|d| a.get(d).copied().unwrap_or(0.5).clamp(0.0, 1.0))
            .collect();
        evaluate(x, &mut history, &mut black_box);
    }
    let n_init = n_init - n_anchors;
    let strata: Vec<Vec<usize>> = (0..dim)
        .map(|_| {
            let mut idx: Vec<usize> = (0..n_init).collect();
            for i in (1..idx.len()).rev() {
                idx.swap(i, rng.gen_range(0..=i));
            }
            idx
        })
        .collect();
    #[allow(clippy::needless_range_loop)] // k indexes every dimension's permutation
    for k in 0..n_init {
        let x: Vec<f64> = (0..dim)
            // lint: allow(panic, strata holds dim permutations of length n_init; d < dim and k < n_init by the loop bounds)
            .map(|d| (strata[d][k] as f64 + rng.gen::<f64>()) / n_init.max(1) as f64)
            .collect();
        evaluate(x, &mut history, &mut black_box);
    }
    drop(strata);

    for _ in 0..config.n_iter {
        let x_next = propose(dim, &history, config, &mut rng);
        evaluate(x_next, &mut history, &mut black_box);
    }

    let best = history
        .iter()
        .cloned()
        .reduce(|acc, cur| if better(&cur.1, &acc.1) { cur } else { acc });
    BoResult { best, history }
}

/// Chooses the next point: wEI over a candidate pool of uniform samples and
/// Gaussian perturbations of the incumbent; falls back to uniform random
/// when the surrogates cannot be fitted.
fn propose(
    dim: usize,
    history: &[(Vec<f64>, Observation)],
    config: &BoConfig,
    rng: &mut ChaCha8Rng,
) -> Vec<f64> {
    let random_point =
        |rng: &mut ChaCha8Rng| (0..dim).map(|_| rng.gen::<f64>()).collect::<Vec<f64>>();
    if history.len() < 2 {
        return random_point(rng);
    }

    // One shared design matrix for the objective GP and every constraint
    // GP: built once, reference-counted into each model.
    let xs: std::sync::Arc<Vec<Vec<f64>>> =
        std::sync::Arc::new(history.iter().map(|(x, _)| x.clone()).collect());
    // lint: allow(panic, history.len() >= 2 by the early return above)
    let n_cons = history[0].1.constraints.len();

    let obj_gp = GpRegressor::fit_shared(
        xs.clone(),
        history.iter().map(|(_, o)| o.objective).collect(),
    );
    let con_gps: Vec<_> = (0..n_cons)
        .map(|i| {
            GpRegressor::fit_shared(
                xs.clone(),
                // lint: allow(panic, i < n_cons and every observation carries n_cons constraints by construction)
                history.iter().map(|(_, o)| o.constraints[i]).collect(),
            )
        })
        .collect();
    let Ok(obj_gp) = obj_gp else {
        return random_point(rng);
    };
    if con_gps.iter().any(Result::is_err) {
        return random_point(rng);
    }
    // lint: allow(panic, the is_err scan on the line above returned early, so every element is Ok)
    let con_gps: Vec<GpRegressor> = con_gps.into_iter().map(|g| g.expect("checked")).collect();

    let best_feasible = history
        .iter()
        .filter(|(_, o)| o.is_feasible())
        .map(|(_, o)| o.objective)
        .fold(None, |acc: Option<f64>, v| {
            Some(acc.map_or(v, |a| a.max(v)))
        });

    let incumbent = history
        .iter()
        .cloned()
        .reduce(|acc, cur| if better(&cur.1, &acc.1) { cur } else { acc })
        .map(|(x, _)| x)
        .unwrap_or_else(|| random_point(rng));

    let mut best_x = None;
    let mut best_acq = f64::NEG_INFINITY;
    for k in 0..config.n_candidates.max(1) {
        // A third uniform exploration, the rest local perturbations of the
        // incumbent at two scales (σ = 0.05 fine / 0.2 coarse, clamped).
        let cand: Vec<f64> = if k % 3 == 0 {
            random_point(rng)
        } else {
            let sigma = if k % 3 == 1 { 0.05 } else { 0.2 };
            incumbent
                .iter()
                .map(|&v| {
                    let u1: f64 = rng.gen::<f64>().max(1e-12);
                    let u2: f64 = rng.gen();
                    let normal = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
                    (v + sigma * normal).clamp(0.0, 1.0)
                })
                .collect()
        };
        let Ok(obj) = obj_gp.predict(&cand) else {
            continue;
        };
        let mut cons = Vec::with_capacity(con_gps.len());
        let mut ok = true;
        for g in &con_gps {
            match g.predict(&cand) {
                Ok(p) => cons.push(p),
                Err(_) => {
                    ok = false;
                    break;
                }
            }
        }
        if !ok {
            continue;
        }
        let acq = weighted_ei(obj, &cons, best_feasible);
        if acq > best_acq {
            best_acq = acq;
            best_x = Some(cand);
        }
    }
    best_x.unwrap_or_else(|| random_point(rng))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sphere_with_constraint(x: &[f64]) -> Option<Observation> {
        let d2: f64 = x.iter().map(|v| (v - 0.6) * (v - 0.6)).sum();
        Some(Observation {
            objective: -d2,
            constraints: vec![x[0] - 0.9], // x0 ≤ 0.9
        })
    }

    #[test]
    fn finds_near_optimum_of_smooth_function() {
        let cfg = BoConfig {
            n_init: 8,
            n_iter: 25,
            n_candidates: 60,
            seed: 3,
        };
        let res = maximize_constrained(2, &cfg, sphere_with_constraint);
        let (x, obs) = res.best.unwrap();
        assert!(obs.is_feasible());
        assert!(x.iter().all(|v| (v - 0.6).abs() < 0.25), "best x = {x:?}");
    }

    #[test]
    fn beats_pure_random_search_on_average() {
        let mut bo_scores = Vec::new();
        let mut rand_scores = Vec::new();
        for seed in 0..5u64 {
            let cfg = BoConfig {
                n_init: 10,
                n_iter: 20,
                n_candidates: 60,
                seed,
            };
            let res = maximize_constrained(3, &cfg, |x| {
                Some(Observation {
                    objective: -x.iter().map(|v| (v - 0.42) * (v - 0.42)).sum::<f64>(),
                    constraints: vec![],
                })
            });
            bo_scores.push(res.best.unwrap().1.objective);

            // Random search with the same budget.
            let mut rng = ChaCha8Rng::seed_from_u64(1000 + seed);
            let best_rand = (0..30)
                .map(|_| {
                    let x: Vec<f64> = (0..3).map(|_| rng.gen::<f64>()).collect();
                    -x.iter().map(|v| (v - 0.42) * (v - 0.42)).sum::<f64>()
                })
                .fold(f64::NEG_INFINITY, f64::max);
            rand_scores.push(best_rand);
        }
        let bo_mean: f64 = bo_scores.iter().sum::<f64>() / bo_scores.len() as f64;
        let rand_mean: f64 = rand_scores.iter().sum::<f64>() / rand_scores.len() as f64;
        assert!(bo_mean > rand_mean, "bo {bo_mean} vs random {rand_mean}");
    }

    #[test]
    fn infeasible_problems_return_least_violating_point() {
        let cfg = BoConfig {
            n_init: 5,
            n_iter: 10,
            n_candidates: 30,
            seed: 1,
        };
        let res = maximize_constrained(1, &cfg, |x| {
            Some(Observation {
                objective: x[0],
                constraints: vec![x[0] + 1.0], // always > 0 → infeasible
            })
        });
        assert!(res.best_feasible().is_none());
        let (_, obs) = res.best.clone().unwrap();
        assert!(!obs.is_feasible());
        // Least violation = smallest x.
        assert!(obs.constraints[0] < 1.6);
    }

    #[test]
    fn failed_evaluations_are_skipped() {
        let cfg = BoConfig {
            n_init: 6,
            n_iter: 6,
            n_candidates: 20,
            seed: 9,
        };
        let mut calls = 0;
        let res = maximize_constrained(1, &cfg, |x| {
            calls += 1;
            if x[0] < 0.5 {
                None
            } else {
                Some(Observation {
                    objective: x[0],
                    constraints: vec![],
                })
            }
        });
        assert_eq!(calls, 12);
        assert!(res.history.len() <= 12);
        assert!(res.history.iter().all(|(x, _)| x[0] >= 0.5));
    }

    #[test]
    fn same_seed_reproduces_run() {
        let cfg = BoConfig::default();
        let a = maximize_constrained(2, &cfg, sphere_with_constraint);
        let b = maximize_constrained(2, &cfg, sphere_with_constraint);
        assert_eq!(a.history, b.history);
    }

    #[test]
    fn feasible_always_preferred_over_infeasible() {
        let feasible = Observation {
            objective: -100.0,
            constraints: vec![-1.0],
        };
        let infeasible = Observation {
            objective: 100.0,
            constraints: vec![1.0],
        };
        assert!(better(&feasible, &infeasible));
        assert!(!better(&infeasible, &feasible));
    }
}
