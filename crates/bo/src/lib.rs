//! Bayesian-optimization substrate of the INTO-OA reproduction.
//!
//! Three layers:
//!
//! * [`expected_improvement`] / [`probability_feasible`] / [`weighted_ei`] —
//!   the acquisition functions (\[1\]'s wEI handles the performance
//!   constraints).
//! * [`maximize_constrained`] — constrained GP-BO on the unit cube: the
//!   automated **sizing** inner loop every evaluated topology goes through
//!   (10 init + 30 iterations in the paper's setup).
//! * [`topology_bo`] — **Algorithm 1**: WL kernel-based BO over the
//!   discrete topology space with the mutation + random-sampling candidate
//!   generator and visited-set deduplication.
//!
//! Both optimizers are generic over their evaluation oracle, so the
//! algorithms are unit-testable on synthetic landscapes; the `into-oa`
//! crate wires them to the circuit simulator.
//!
//! # Examples
//!
//! ```
//! use oa_bo::{maximize_constrained, BoConfig, Observation};
//!
//! let result = maximize_constrained(1, &BoConfig::default(), |x| {
//!     Some(Observation { objective: -(x[0] - 0.3) * (x[0] - 0.3), constraints: vec![] })
//! });
//! assert!(result.best.is_some());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod acquisition;
mod continuous;
mod session;
mod topology;

pub use acquisition::{
    expected_improvement, normal_cdf, normal_pdf, probability_feasible, weighted_ei,
};
pub use continuous::{
    maximize_constrained, maximize_constrained_anchored, BoConfig, BoResult, Observation,
};
pub use session::BoSession;
pub use topology::{topology_bo, TopoBoConfig, TopoBoResult, TopoObservation, TopoRecord};
