//! Acquisition functions: Expected Improvement and the weighted EI (wEI)
//! of \[1\] used for constrained optimization.

/// Standard normal probability density.
pub fn normal_pdf(z: f64) -> f64 {
    (-0.5 * z * z).exp() / (2.0 * std::f64::consts::PI).sqrt()
}

/// Standard normal cumulative distribution, via the Abramowitz–Stegun
/// 7.1.26 rational approximation of `erf` (absolute error < 1.5e-7).
pub fn normal_cdf(z: f64) -> f64 {
    0.5 * (1.0 + erf(z / std::f64::consts::SQRT_2))
}

fn erf(x: f64) -> f64 {
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    let t = 1.0 / (1.0 + 0.327_591_1 * x);
    let poly = t
        * (0.254_829_592
            + t * (-0.284_496_736
                + t * (1.421_413_741 + t * (-1.453_152_027 + t * 1.061_405_429))));
    sign * (1.0 - poly * (-x * x).exp())
}

/// Expected Improvement for **maximization**: `E[max(0, f − f_best)]` under
/// a Gaussian posterior `N(mean, var)`.
///
/// Returns 0 for a degenerate (zero-variance) posterior that does not beat
/// the incumbent.
///
/// # Examples
///
/// ```
/// use oa_bo::expected_improvement;
///
/// // A posterior well above the incumbent has EI ≈ mean − best.
/// let ei = expected_improvement(10.0, 1e-12, 0.0);
/// assert!((ei - 10.0).abs() < 1e-6);
/// // A posterior far below the incumbent has negligible EI.
/// assert!(expected_improvement(-10.0, 0.01, 0.0) < 1e-12);
/// ```
pub fn expected_improvement(mean: f64, var: f64, best: f64) -> f64 {
    let sigma = var.max(0.0).sqrt();
    if sigma < 1e-12 {
        return (mean - best).max(0.0);
    }
    let z = (mean - best) / sigma;
    (mean - best) * normal_cdf(z) + sigma * normal_pdf(z)
}

/// Probability that a constraint value with posterior `N(mean, var)` is
/// feasible, i.e. `P(c ≤ 0)`.
pub fn probability_feasible(mean: f64, var: f64) -> f64 {
    let sigma = var.max(0.0).sqrt();
    if sigma < 1e-12 {
        return if mean <= 0.0 { 1.0 } else { 0.0 };
    }
    normal_cdf(-mean / sigma)
}

/// The weighted EI acquisition of \[1\]: `EI(x) · Π_i P(c_i(x) ≤ 0)`.
///
/// `objective` is the `(mean, var)` posterior of the objective (to be
/// maximized), `constraints` the posteriors of each constraint value
/// (feasible when ≤ 0), and `best_feasible` the incumbent feasible
/// objective, if any. Before any feasible point is known the acquisition
/// reduces to the feasibility probability alone, the standard fallback.
pub fn weighted_ei(
    objective: (f64, f64),
    constraints: &[(f64, f64)],
    best_feasible: Option<f64>,
) -> f64 {
    let pf: f64 = constraints
        .iter()
        .map(|&(m, v)| probability_feasible(m, v))
        .product();
    match best_feasible {
        Some(best) => expected_improvement(objective.0, objective.1, best) * pf,
        None => pf,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cdf_matches_known_values() {
        assert!((normal_cdf(0.0) - 0.5).abs() < 1e-7);
        assert!((normal_cdf(1.0) - 0.841_344_7).abs() < 1e-6);
        assert!((normal_cdf(-1.96) - 0.024_997_9).abs() < 1e-5);
        assert!(normal_cdf(8.0) > 0.999_999);
    }

    #[test]
    fn pdf_is_symmetric_and_normal_at_zero() {
        assert!((normal_pdf(0.0) - 0.398_942_28).abs() < 1e-7);
        assert_eq!(normal_pdf(1.3), normal_pdf(-1.3));
    }

    #[test]
    fn ei_increases_with_mean_and_variance() {
        let base = expected_improvement(0.0, 1.0, 0.0);
        assert!(expected_improvement(1.0, 1.0, 0.0) > base);
        assert!(expected_improvement(0.0, 4.0, 0.0) > base);
    }

    #[test]
    fn ei_is_nonnegative() {
        for mean in [-5.0, 0.0, 5.0] {
            for var in [0.0, 0.5, 10.0] {
                assert!(expected_improvement(mean, var, 1.0) >= 0.0);
            }
        }
    }

    #[test]
    fn feasibility_probability_limits() {
        assert!((probability_feasible(-10.0, 1.0) - 1.0).abs() < 1e-7);
        assert!(probability_feasible(10.0, 1.0) < 1e-7);
        assert_eq!(probability_feasible(-0.1, 0.0), 1.0);
        assert_eq!(probability_feasible(0.1, 0.0), 0.0);
    }

    #[test]
    fn wei_without_incumbent_is_pure_feasibility() {
        let a = weighted_ei((100.0, 1.0), &[(-1.0, 1.0)], None);
        let b = weighted_ei((-100.0, 1.0), &[(-1.0, 1.0)], None);
        assert_eq!(a, b); // objective ignored until something is feasible
    }

    #[test]
    fn wei_penalizes_likely_infeasible_points() {
        let good = weighted_ei((1.0, 0.5), &[(-2.0, 0.1)], Some(0.0));
        let bad = weighted_ei((1.0, 0.5), &[(2.0, 0.1)], Some(0.0));
        assert!(good > bad * 100.0);
    }

    #[test]
    fn wei_multiplies_constraint_probabilities() {
        let one = weighted_ei((1.0, 1.0), &[(0.0, 1.0)], Some(0.0));
        let two = weighted_ei((1.0, 1.0), &[(0.0, 1.0), (0.0, 1.0)], Some(0.0));
        // Tolerance bounded by the erf approximation error (~1.5e-7).
        assert!((two - one * 0.5).abs() < 1e-6);
    }
}
