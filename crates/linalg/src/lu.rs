//! Complex LU factorization with partial pivoting.
//!
//! The MNA system assembled by the AC simulator is a small (n ≤ ~16), dense,
//! generally non-symmetric complex matrix. LU with partial pivoting is the
//! textbook-correct direct solver for it.

use crate::complex::Complex;
use crate::error::LinalgError;
use crate::matrix::CMatrix;

/// An LU factorization `P·A = L·U` of a square complex matrix.
///
/// # Examples
///
/// ```
/// use oa_linalg::{CMatrix, Complex, CluFactor};
///
/// # fn main() -> Result<(), oa_linalg::LinalgError> {
/// let mut a = CMatrix::zeros(2, 2);
/// a[(0, 0)] = Complex::new(2.0, 0.0);
/// a[(1, 1)] = Complex::new(0.0, 4.0);
/// let lu = CluFactor::new(&a)?;
/// let x = lu.solve(&[Complex::new(2.0, 0.0), Complex::new(0.0, 4.0)])?;
/// assert!((x[0] - Complex::ONE).abs() < 1e-12);
/// assert!((x[1] - Complex::ONE).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct CluFactor {
    /// Packed L (unit lower, below diagonal) and U (upper incl. diagonal).
    lu: CMatrix,
    /// Row permutation: `perm[i]` is the original row now in position `i`.
    perm: Vec<usize>,
}

impl CluFactor {
    /// Factorizes `a` with partial pivoting.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::NotSquare`] if `a` is not square, and
    /// [`LinalgError::Singular`] if a pivot underflows to (numerical) zero,
    /// which for MNA systems indicates a floating circuit node.
    // NaN-aware negated comparison: a NaN pivot must be rejected.
    #[allow(clippy::neg_cmp_op_on_partial_ord)]
    pub fn new(a: &CMatrix) -> Result<Self, LinalgError> {
        if a.rows() != a.cols() {
            return Err(LinalgError::NotSquare {
                rows: a.rows(),
                cols: a.cols(),
            });
        }
        let n = a.rows();
        let mut lu = a.clone();
        let mut perm: Vec<usize> = (0..n).collect();

        for k in 0..n {
            // Pivot: largest magnitude in column k at or below the diagonal.
            let mut p = k;
            let mut best = lu[(k, k)].abs();
            for i in (k + 1)..n {
                let v = lu[(i, k)].abs();
                if v > best {
                    best = v;
                    p = i;
                }
            }
            if !(best > 0.0) || !best.is_finite() {
                return Err(LinalgError::Singular { pivot: k });
            }
            if p != k {
                for j in 0..n {
                    let tmp = lu[(k, j)];
                    lu[(k, j)] = lu[(p, j)];
                    lu[(p, j)] = tmp;
                }
                perm.swap(k, p);
            }
            let pivot = lu[(k, k)];
            for i in (k + 1)..n {
                let factor = lu[(i, k)] / pivot;
                lu[(i, k)] = factor;
                for j in (k + 1)..n {
                    let delta = factor * lu[(k, j)];
                    lu[(i, j)] -= delta;
                }
            }
        }
        Ok(CluFactor { lu, perm })
    }

    /// Dimension of the factorized system.
    pub fn dim(&self) -> usize {
        self.lu.rows()
    }

    /// Solves `A·x = b` using the stored factorization.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] if `b.len() != self.dim()`.
    #[allow(clippy::needless_range_loop)] // dual-indexed triangular loops
    pub fn solve(&self, b: &[Complex]) -> Result<Vec<Complex>, LinalgError> {
        let n = self.dim();
        if b.len() != n {
            return Err(LinalgError::DimensionMismatch {
                expected: n,
                found: b.len(),
            });
        }
        // Forward substitution with permuted rhs: L·y = P·b.
        let mut y = vec![Complex::ZERO; n];
        for i in 0..n {
            let mut acc = b[self.perm[i]];
            for j in 0..i {
                acc -= self.lu[(i, j)] * y[j];
            }
            y[i] = acc;
        }
        // Back substitution: U·x = y.
        let mut x = vec![Complex::ZERO; n];
        for i in (0..n).rev() {
            let mut acc = y[i];
            for j in (i + 1)..n {
                acc -= self.lu[(i, j)] * x[j];
            }
            x[i] = acc / self.lu[(i, i)];
        }
        Ok(x)
    }
}

/// Convenience wrapper: factorize and solve `A·x = b` in one call.
///
/// # Errors
///
/// Propagates the errors of [`CluFactor::new`] and [`CluFactor::solve`].
///
/// # Examples
///
/// ```
/// use oa_linalg::{solve_complex, CMatrix, Complex};
///
/// # fn main() -> Result<(), oa_linalg::LinalgError> {
/// let mut a = CMatrix::zeros(1, 1);
/// a[(0, 0)] = Complex::new(4.0, 0.0);
/// let x = solve_complex(&a, &[Complex::new(8.0, 0.0)])?;
/// assert!((x[0].re - 2.0).abs() < 1e-14);
/// # Ok(())
/// # }
/// ```
pub fn solve_complex(a: &CMatrix, b: &[Complex]) -> Result<Vec<Complex>, LinalgError> {
    CluFactor::new(a)?.solve(b)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c(re: f64, im: f64) -> Complex {
        Complex::new(re, im)
    }

    fn residual(a: &CMatrix, x: &[Complex], b: &[Complex]) -> f64 {
        a.mat_vec(x)
            .iter()
            .zip(b)
            .map(|(ax, bi)| (*ax - *bi).abs())
            .fold(0.0, f64::max)
    }

    #[test]
    fn solves_dense_complex_system() {
        let mut a = CMatrix::zeros(3, 3);
        a[(0, 0)] = c(2.0, 1.0);
        a[(0, 1)] = c(-1.0, 0.0);
        a[(0, 2)] = c(0.5, -0.5);
        a[(1, 0)] = c(0.0, 3.0);
        a[(1, 1)] = c(1.0, 1.0);
        a[(1, 2)] = c(-2.0, 0.0);
        a[(2, 0)] = c(1.0, 0.0);
        a[(2, 1)] = c(0.0, -1.0);
        a[(2, 2)] = c(4.0, 2.0);
        let b = vec![c(1.0, 0.0), c(0.0, 1.0), c(-1.0, 2.0)];
        let x = solve_complex(&a, &b).unwrap();
        assert!(residual(&a, &x, &b) < 1e-12);
    }

    #[test]
    fn pivoting_handles_zero_leading_entry() {
        let mut a = CMatrix::zeros(2, 2);
        a[(0, 1)] = c(1.0, 0.0);
        a[(1, 0)] = c(1.0, 0.0);
        let b = vec![c(3.0, 0.0), c(5.0, 0.0)];
        let x = solve_complex(&a, &b).unwrap();
        assert!((x[0] - c(5.0, 0.0)).abs() < 1e-14);
        assert!((x[1] - c(3.0, 0.0)).abs() < 1e-14);
    }

    #[test]
    fn singular_matrix_is_reported() {
        let mut a = CMatrix::zeros(2, 2);
        a[(0, 0)] = c(1.0, 0.0);
        a[(0, 1)] = c(2.0, 0.0);
        a[(1, 0)] = c(2.0, 0.0);
        a[(1, 1)] = c(4.0, 0.0);
        let err = CluFactor::new(&a).unwrap_err();
        assert!(matches!(err, LinalgError::Singular { .. }));
    }

    #[test]
    fn rejects_rectangular_input() {
        let a = CMatrix::zeros(2, 3);
        assert!(matches!(
            CluFactor::new(&a),
            Err(LinalgError::NotSquare { .. })
        ));
    }

    #[test]
    fn rejects_wrong_rhs_length() {
        let mut a = CMatrix::zeros(2, 2);
        a[(0, 0)] = c(1.0, 0.0);
        a[(1, 1)] = c(1.0, 0.0);
        let lu = CluFactor::new(&a).unwrap();
        assert!(matches!(
            lu.solve(&[Complex::ONE]),
            Err(LinalgError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn factorization_is_reusable_for_many_rhs() {
        let mut a = CMatrix::zeros(2, 2);
        a[(0, 0)] = c(3.0, 0.0);
        a[(0, 1)] = c(1.0, 1.0);
        a[(1, 0)] = c(-1.0, 2.0);
        a[(1, 1)] = c(2.0, -1.0);
        let lu = CluFactor::new(&a).unwrap();
        for k in 0..5 {
            let b = vec![c(k as f64, 1.0), c(-1.0, k as f64)];
            let x = lu.solve(&b).unwrap();
            assert!(residual(&a, &x, &b) < 1e-12);
        }
    }
}
