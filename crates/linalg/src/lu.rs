//! Complex LU factorization with partial pivoting.
//!
//! The MNA system assembled by the AC simulator is a small (n ≤ ~16), dense,
//! generally non-symmetric complex matrix. LU with partial pivoting is the
//! textbook-correct direct solver for it.

use crate::complex::Complex;
use crate::error::LinalgError;
use crate::matrix::CMatrix;

/// An LU factorization `P·A = L·U` of a square complex matrix.
///
/// # Examples
///
/// ```
/// use oa_linalg::{CMatrix, Complex, CluFactor};
///
/// # fn main() -> Result<(), oa_linalg::LinalgError> {
/// let mut a = CMatrix::zeros(2, 2);
/// a[(0, 0)] = Complex::new(2.0, 0.0);
/// a[(1, 1)] = Complex::new(0.0, 4.0);
/// let lu = CluFactor::new(&a)?;
/// let x = lu.solve(&[Complex::new(2.0, 0.0), Complex::new(0.0, 4.0)])?;
/// assert!((x[0] - Complex::ONE).abs() < 1e-12);
/// assert!((x[1] - Complex::ONE).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct CluFactor {
    /// Packed L (unit lower, below diagonal) and U (upper incl. diagonal).
    lu: CMatrix,
    /// Row permutation: `perm[i]` is the original row now in position `i`.
    perm: Vec<usize>,
}

/// Factorizes `a` in place (`P·A = L·U` packed into `a`), recording the
/// row permutation in `perm`.
///
/// This is the allocation-free core of [`CluFactor::new`], exposed so
/// sweep-style callers (one factorization per frequency point over the
/// same-size system) can reuse the matrix and permutation buffers.
///
/// # Errors
///
/// Returns [`LinalgError::NotSquare`] if `a` is not square,
/// [`LinalgError::DimensionMismatch`] if `perm.len() != a.rows()`, and
/// [`LinalgError::Singular`] if a pivot underflows to (numerical) zero,
/// which for MNA systems indicates a floating circuit node. On error the
/// contents of `a` and `perm` are unspecified but safe to reuse.
// NaN-aware negated comparison: a NaN pivot must be rejected.
#[allow(clippy::neg_cmp_op_on_partial_ord)]
pub fn factorize_in_place(a: &mut CMatrix, perm: &mut [usize]) -> Result<(), LinalgError> {
    if a.rows() != a.cols() {
        return Err(LinalgError::NotSquare {
            rows: a.rows(),
            cols: a.cols(),
        });
    }
    let n = a.rows();
    if perm.len() != n {
        return Err(LinalgError::DimensionMismatch {
            expected: n,
            found: perm.len(),
        });
    }
    for (i, p) in perm.iter_mut().enumerate() {
        *p = i;
    }

    let data = a.as_mut_slice();
    for k in 0..n {
        // Pivot: largest magnitude in column k at or below the diagonal.
        // Squared magnitudes order identically to magnitudes (and reject
        // NaN the same way: `NaN > best` is false, and an all-NaN/zero
        // column leaves `best == 0`), while avoiding a `hypot` per
        // candidate — this search is the hottest scalar loop of a sweep.
        let mut p = k;
        let mut best = 0.0_f64;
        for (i, row) in data.chunks_exact(n).enumerate().skip(k) {
            // Exact structural zeros (common in MNA columns) can never
            // win the pivot race: skip them before the two multiplies.
            let z = row[k];
            if z.re == 0.0 && z.im == 0.0 {
                continue;
            }
            let v = z.norm_sqr();
            if v > best {
                best = v;
                p = i;
            }
        }
        if !(best > 0.0) || !best.is_finite() {
            return Err(LinalgError::Singular { pivot: k });
        }
        if p != k {
            for j in 0..n {
                data.swap(k * n + j, p * n + j);
            }
            perm.swap(k, p);
        }
        // Split at the end of row k so the pivot row can be read while the
        // rows below are updated; the zipped tails compile without bounds
        // checks.
        let (head, tail) = data.split_at_mut(n * (k + 1));
        let row_k = &head[n * k + k..];
        // One reciprocal per pivot instead of one full complex division
        // per subdiagonal entry: f64 division is the slowest scalar op in
        // this loop and the pivot is reused by every row below.
        let pivot_recip = row_k[0].recip();
        for row_i in tail.chunks_exact_mut(n) {
            let row_i = &mut row_i[k..];
            let factor = row_i[0] * pivot_recip;
            row_i[0] = factor;
            for (aij, akj) in row_i[1..].iter_mut().zip(&row_k[1..]) {
                *aij -= factor * *akj;
            }
        }
    }
    Ok(())
}

/// Solves `A·x = b` from a packed factorization produced by
/// [`factorize_in_place`], writing into caller-owned buffers.
///
/// `y` is forward-substitution scratch; `x` receives the solution. Both
/// must have length `lu.rows()`. No allocation is performed.
///
/// # Errors
///
/// Returns [`LinalgError::DimensionMismatch`] if any buffer length
/// disagrees with the system dimension.
pub fn solve_in_place(
    lu: &CMatrix,
    perm: &[usize],
    b: &[Complex],
    y: &mut [Complex],
    x: &mut [Complex],
) -> Result<(), LinalgError> {
    let n = lu.rows();
    for len in [perm.len(), b.len(), y.len(), x.len()] {
        if len != n {
            return Err(LinalgError::DimensionMismatch {
                expected: n,
                found: len,
            });
        }
    }
    let data = lu.as_slice();
    // Forward substitution with permuted rhs: L·y = P·b. Rows before the
    // first nonzero of P·b contribute exactly zero, so they are skipped —
    // MNA right-hand sides are a single unit entry at the source branch
    // (the last row), which makes this pass almost free in a sweep.
    let mut first = n;
    for (i, row) in data.chunks_exact(n).enumerate() {
        let mut acc = b[perm[i]];
        if first < i {
            for (l, yj) in row[first..i].iter().zip(&y[first..i]) {
                acc -= *l * *yj;
            }
        }
        if first == n && (acc.re != 0.0 || acc.im != 0.0) {
            first = i;
        }
        y[i] = acc;
    }
    // Back substitution: U·x = y. The diagonal reciprocal turns the three
    // divisions of a robust complex division into one per row.
    for i in (0..n).rev() {
        let row = &data[n * i..n * (i + 1)];
        let mut acc = y[i];
        for (u, xj) in row[i + 1..].iter().zip(&x[i + 1..]) {
            acc -= *u * *xj;
        }
        x[i] = acc * row[i].recip();
    }
    Ok(())
}

impl CluFactor {
    /// Factorizes `a` with partial pivoting.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::NotSquare`] if `a` is not square, and
    /// [`LinalgError::Singular`] if a pivot underflows to (numerical) zero,
    /// which for MNA systems indicates a floating circuit node.
    pub fn new(a: &CMatrix) -> Result<Self, LinalgError> {
        let mut lu = a.clone();
        let mut perm = vec![0usize; a.rows()];
        factorize_in_place(&mut lu, &mut perm)?;
        Ok(CluFactor { lu, perm })
    }

    /// Dimension of the factorized system.
    pub fn dim(&self) -> usize {
        self.lu.rows()
    }

    /// Solves `A·x = b` using the stored factorization.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] if `b.len() != self.dim()`.
    pub fn solve(&self, b: &[Complex]) -> Result<Vec<Complex>, LinalgError> {
        let n = self.dim();
        let mut y = vec![Complex::ZERO; n];
        let mut x = vec![Complex::ZERO; n];
        solve_in_place(&self.lu, &self.perm, b, &mut y, &mut x)?;
        Ok(x)
    }
}

/// Convenience wrapper: factorize and solve `A·x = b` in one call.
///
/// # Errors
///
/// Propagates the errors of [`CluFactor::new`] and [`CluFactor::solve`].
///
/// # Examples
///
/// ```
/// use oa_linalg::{solve_complex, CMatrix, Complex};
///
/// # fn main() -> Result<(), oa_linalg::LinalgError> {
/// let mut a = CMatrix::zeros(1, 1);
/// a[(0, 0)] = Complex::new(4.0, 0.0);
/// let x = solve_complex(&a, &[Complex::new(8.0, 0.0)])?;
/// assert!((x[0].re - 2.0).abs() < 1e-14);
/// # Ok(())
/// # }
/// ```
pub fn solve_complex(a: &CMatrix, b: &[Complex]) -> Result<Vec<Complex>, LinalgError> {
    CluFactor::new(a)?.solve(b)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c(re: f64, im: f64) -> Complex {
        Complex::new(re, im)
    }

    fn residual(a: &CMatrix, x: &[Complex], b: &[Complex]) -> f64 {
        a.mat_vec(x)
            .iter()
            .zip(b)
            .map(|(ax, bi)| (*ax - *bi).abs())
            .fold(0.0, f64::max)
    }

    #[test]
    fn solves_dense_complex_system() {
        let mut a = CMatrix::zeros(3, 3);
        a[(0, 0)] = c(2.0, 1.0);
        a[(0, 1)] = c(-1.0, 0.0);
        a[(0, 2)] = c(0.5, -0.5);
        a[(1, 0)] = c(0.0, 3.0);
        a[(1, 1)] = c(1.0, 1.0);
        a[(1, 2)] = c(-2.0, 0.0);
        a[(2, 0)] = c(1.0, 0.0);
        a[(2, 1)] = c(0.0, -1.0);
        a[(2, 2)] = c(4.0, 2.0);
        let b = vec![c(1.0, 0.0), c(0.0, 1.0), c(-1.0, 2.0)];
        let x = solve_complex(&a, &b).unwrap();
        assert!(residual(&a, &x, &b) < 1e-12);
    }

    #[test]
    fn pivoting_handles_zero_leading_entry() {
        let mut a = CMatrix::zeros(2, 2);
        a[(0, 1)] = c(1.0, 0.0);
        a[(1, 0)] = c(1.0, 0.0);
        let b = vec![c(3.0, 0.0), c(5.0, 0.0)];
        let x = solve_complex(&a, &b).unwrap();
        assert!((x[0] - c(5.0, 0.0)).abs() < 1e-14);
        assert!((x[1] - c(3.0, 0.0)).abs() < 1e-14);
    }

    #[test]
    fn singular_matrix_is_reported() {
        let mut a = CMatrix::zeros(2, 2);
        a[(0, 0)] = c(1.0, 0.0);
        a[(0, 1)] = c(2.0, 0.0);
        a[(1, 0)] = c(2.0, 0.0);
        a[(1, 1)] = c(4.0, 0.0);
        let err = CluFactor::new(&a).unwrap_err();
        assert!(matches!(err, LinalgError::Singular { .. }));
    }

    #[test]
    fn rejects_rectangular_input() {
        let a = CMatrix::zeros(2, 3);
        assert!(matches!(
            CluFactor::new(&a),
            Err(LinalgError::NotSquare { .. })
        ));
    }

    #[test]
    fn rejects_wrong_rhs_length() {
        let mut a = CMatrix::zeros(2, 2);
        a[(0, 0)] = c(1.0, 0.0);
        a[(1, 1)] = c(1.0, 0.0);
        let lu = CluFactor::new(&a).unwrap();
        assert!(matches!(
            lu.solve(&[Complex::ONE]),
            Err(LinalgError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn in_place_api_matches_allocating_api() {
        let mut a = CMatrix::zeros(3, 3);
        a[(0, 0)] = c(2.0, 1.0);
        a[(0, 1)] = c(-1.0, 0.0);
        a[(0, 2)] = c(0.5, -0.5);
        a[(1, 0)] = c(0.0, 3.0);
        a[(1, 1)] = c(1.0, 1.0);
        a[(1, 2)] = c(-2.0, 0.0);
        a[(2, 0)] = c(1.0, 0.0);
        a[(2, 1)] = c(0.0, -1.0);
        a[(2, 2)] = c(4.0, 2.0);
        let b = vec![c(1.0, 0.0), c(0.0, 1.0), c(-1.0, 2.0)];
        let expected = solve_complex(&a, &b).unwrap();

        let mut lu = a.clone();
        let mut perm = vec![0usize; 3];
        let mut y = vec![Complex::ZERO; 3];
        let mut x = vec![Complex::ZERO; 3];
        factorize_in_place(&mut lu, &mut perm).unwrap();
        solve_in_place(&lu, &perm, &b, &mut y, &mut x).unwrap();
        for (got, want) in x.iter().zip(&expected) {
            assert!((*got - *want).abs() < 1e-14);
        }
    }

    #[test]
    fn in_place_buffers_are_reusable_across_factorizations() {
        // Same buffers, two different matrices: the second solve must not
        // see any state from the first.
        let mut lu = CMatrix::zeros(2, 2);
        let mut perm = vec![0usize; 2];
        let mut y = vec![Complex::ZERO; 2];
        let mut x = vec![Complex::ZERO; 2];
        for scale in [1.0, 7.0] {
            lu[(0, 0)] = c(0.0, 0.0);
            lu[(0, 1)] = c(scale, 0.0);
            lu[(1, 0)] = c(scale, 0.0);
            lu[(1, 1)] = c(0.0, 0.0);
            factorize_in_place(&mut lu, &mut perm).unwrap();
            let b = [c(scale * 3.0, 0.0), c(scale * 5.0, 0.0)];
            solve_in_place(&lu, &perm, &b, &mut y, &mut x).unwrap();
            assert!((x[0] - c(5.0, 0.0)).abs() < 1e-14, "scale {scale}");
            assert!((x[1] - c(3.0, 0.0)).abs() < 1e-14, "scale {scale}");
        }
    }

    #[test]
    fn in_place_rejects_bad_buffer_lengths() {
        let mut lu = CMatrix::zeros(2, 2);
        lu[(0, 0)] = c(1.0, 0.0);
        lu[(1, 1)] = c(1.0, 0.0);
        let mut short_perm = vec![0usize; 1];
        assert!(matches!(
            factorize_in_place(&mut lu.clone(), &mut short_perm),
            Err(LinalgError::DimensionMismatch { .. })
        ));
        let mut perm = vec![0usize; 2];
        factorize_in_place(&mut lu, &mut perm).unwrap();
        let b = [Complex::ONE, Complex::ONE];
        let mut y = vec![Complex::ZERO; 2];
        let mut short_x = vec![Complex::ZERO; 1];
        assert!(matches!(
            solve_in_place(&lu, &perm, &b, &mut y, &mut short_x),
            Err(LinalgError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn factorization_is_reusable_for_many_rhs() {
        let mut a = CMatrix::zeros(2, 2);
        a[(0, 0)] = c(3.0, 0.0);
        a[(0, 1)] = c(1.0, 1.0);
        a[(1, 0)] = c(-1.0, 2.0);
        a[(1, 1)] = c(2.0, -1.0);
        let lu = CluFactor::new(&a).unwrap();
        for k in 0..5 {
            let b = vec![c(k as f64, 1.0), c(-1.0, k as f64)];
            let x = lu.solve(&b).unwrap();
            assert!(residual(&a, &x, &b) < 1e-12);
        }
    }
}
