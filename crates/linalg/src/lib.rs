//! Dense linear-algebra substrate for the INTO-OA reproduction.
//!
//! This crate provides exactly the numerical kernels the rest of the
//! workspace needs, implemented from scratch:
//!
//! * [`Complex`] — a double-precision complex scalar (AC analysis).
//! * [`Matrix`] / [`CMatrix`] — dense row-major real/complex matrices.
//! * [`CluFactor`] — complex LU with partial pivoting, the direct solver
//!   behind the MNA-based circuit simulator in `oa-sim`.
//! * [`Cholesky`] — real SPD Cholesky with jitter escalation and
//!   log-determinant, the factorization behind Gaussian-process training in
//!   `oa-gp`.
//!
//! # Examples
//!
//! Solving a small complex system, as the AC simulator does at every
//! frequency point:
//!
//! ```
//! use oa_linalg::{solve_complex, CMatrix, Complex};
//!
//! # fn main() -> Result<(), oa_linalg::LinalgError> {
//! let mut a = CMatrix::zeros(2, 2);
//! a[(0, 0)] = Complex::new(1e-3, 0.0);   // conductance
//! a[(0, 1)] = Complex::new(0.0, -1e-6);  // -jωC coupling
//! a[(1, 0)] = Complex::new(0.0, -1e-6);
//! a[(1, 1)] = Complex::new(2e-3, 1e-6);
//! let x = solve_complex(&a, &[Complex::ONE, Complex::ZERO])?;
//! assert!(x[0].is_finite());
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cholesky;
mod complex;
mod eigen;
mod error;
mod lu;
mod matrix;
mod sparse;

pub use cholesky::Cholesky;
pub use complex::Complex;
pub use eigen::{symmetric_top_eigenpairs, EigenPair};
pub use error::LinalgError;
pub use lu::{factorize_in_place, solve_complex, solve_in_place, CluFactor};
pub use matrix::{CMatrix, Matrix};
pub use sparse::{BatchBuffers, SparsityPattern, SymbolicPlan, LANES, REFINE_GATE};

/// Dot product of two equal-length real vectors.
///
/// # Panics
///
/// Panics if the slices have different lengths.
///
/// # Examples
///
/// ```
/// assert_eq!(oa_linalg::dot(&[1.0, 2.0], &[3.0, 4.0]), 11.0);
/// ```
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "dot product length mismatch");
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

#[cfg(test)]
mod tests {
    #[test]
    fn dot_of_orthogonal_vectors_is_zero() {
        assert_eq!(super::dot(&[1.0, 0.0], &[0.0, 5.0]), 0.0);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn dot_panics_on_length_mismatch() {
        let _ = super::dot(&[1.0], &[1.0, 2.0]);
    }
}
