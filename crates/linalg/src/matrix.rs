//! Dense row-major matrices over `f64` and [`Complex`].

use crate::complex::Complex;
use std::fmt;
use std::ops::{Index, IndexMut};

/// A dense, row-major matrix of `f64` values.
///
/// This is the workhorse container for the Gaussian-process code: covariance
/// (Gram) matrices, feature matrices, and the Cholesky factors live in
/// `Matrix`.
///
/// # Examples
///
/// ```
/// use oa_linalg::Matrix;
///
/// let mut m = Matrix::zeros(2, 2);
/// m[(0, 0)] = 1.0;
/// m[(1, 1)] = 2.0;
/// assert_eq!(m.diag(), vec![1.0, 2.0]);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a `rows × cols` matrix filled with zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates the `n × n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Creates a matrix from a row-major data vector.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_rows(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "matrix data length {} does not match {}x{}",
            data.len(),
            rows,
            cols
        );
        Matrix { rows, cols, data }
    }

    /// Builds a matrix by evaluating `f(i, j)` at every position.
    ///
    /// # Examples
    ///
    /// ```
    /// use oa_linalg::Matrix;
    /// let m = Matrix::from_fn(2, 2, |i, j| (i + j) as f64);
    /// assert_eq!(m[(1, 1)], 2.0);
    /// ```
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for i in 0..rows {
            for j in 0..cols {
                data.push(f(i, j));
            }
        }
        Matrix { rows, cols, data }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Returns `true` if the matrix is square.
    #[inline]
    pub fn is_square(&self) -> bool {
        self.rows == self.cols
    }

    /// Borrows the underlying row-major storage.
    #[inline]
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Returns a borrowed view of row `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.rows()`.
    #[inline]
    pub fn row(&self, i: usize) -> &[f64] {
        assert!(i < self.rows, "row index {i} out of bounds ({})", self.rows);
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Copies column `j` into a new vector.
    ///
    /// # Panics
    ///
    /// Panics if `j >= self.cols()`.
    pub fn col(&self, j: usize) -> Vec<f64> {
        assert!(j < self.cols, "col index {j} out of bounds ({})", self.cols);
        (0..self.rows).map(|i| self[(i, j)]).collect()
    }

    /// The main diagonal as a vector.
    pub fn diag(&self) -> Vec<f64> {
        (0..self.rows.min(self.cols))
            .map(|i| self[(i, i)])
            .collect()
    }

    /// Matrix transpose.
    pub fn transpose(&self) -> Matrix {
        Matrix::from_fn(self.cols, self.rows, |i, j| self[(j, i)])
    }

    /// Matrix–vector product `A·x`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.cols()`.
    #[allow(clippy::needless_range_loop)] // dual-indexed row loop
    pub fn mat_vec(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.cols, "dimension mismatch in mat_vec");
        let mut y = vec![0.0; self.rows];
        for i in 0..self.rows {
            let row = self.row(i);
            let mut acc = 0.0;
            for (a, b) in row.iter().zip(x) {
                acc += a * b;
            }
            y[i] = acc;
        }
        y
    }

    /// Matrix–matrix product `A·B`.
    ///
    /// # Panics
    ///
    /// Panics if `self.cols() != rhs.rows()`.
    pub fn mat_mul(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.cols, rhs.rows, "dimension mismatch in mat_mul");
        let mut out = Matrix::zeros(self.rows, rhs.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self[(i, k)];
                if a == 0.0 {
                    continue;
                }
                for j in 0..rhs.cols {
                    out[(i, j)] += a * rhs[(k, j)];
                }
            }
        }
        out
    }

    /// Adds `value` to every diagonal entry in place (covariance jitter).
    pub fn add_diag(&mut self, value: f64) {
        let n = self.rows.min(self.cols);
        for i in 0..n {
            self[(i, i)] += value;
        }
    }

    /// Maximum absolute entry, or 0 for an empty matrix.
    pub fn max_abs(&self) -> f64 {
        self.data.iter().fold(0.0_f64, |m, &v| m.max(v.abs()))
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f64;
    #[inline]
    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        debug_assert!(i < self.rows && j < self.cols);
        &self.data[i * self.cols + j]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    #[inline]
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        debug_assert!(i < self.rows && j < self.cols);
        &mut self.data[i * self.cols + j]
    }
}

impl fmt::Display for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for i in 0..self.rows {
            for j in 0..self.cols {
                if j > 0 {
                    write!(f, " ")?;
                }
                write!(f, "{:>12.5e}", self[(i, j)])?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

/// A dense, row-major matrix of [`Complex`] values.
///
/// Used by the AC simulator as the MNA system matrix.
///
/// # Examples
///
/// ```
/// use oa_linalg::{CMatrix, Complex};
///
/// let mut a = CMatrix::zeros(2, 2);
/// a[(0, 0)] = Complex::ONE;
/// a[(1, 1)] = Complex::I;
/// assert_eq!(a[(1, 1)].im, 1.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct CMatrix {
    rows: usize,
    cols: usize,
    data: Vec<Complex>,
}

impl CMatrix {
    /// Creates a `rows × cols` matrix filled with complex zero.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        CMatrix {
            rows,
            cols,
            data: vec![Complex::ZERO; rows * cols],
        }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Borrows the underlying row-major storage.
    #[inline]
    pub fn as_slice(&self) -> &[Complex] {
        &self.data
    }

    /// Mutably borrows the underlying row-major storage.
    ///
    /// This is the hot-path entry point for sweep-style workloads that
    /// refill the same matrix once per frequency point without
    /// reallocating.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [Complex] {
        &mut self.data
    }

    /// Matrix–vector product `A·x`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.cols()`.
    pub fn mat_vec(&self, x: &[Complex]) -> Vec<Complex> {
        assert_eq!(x.len(), self.cols, "dimension mismatch in mat_vec");
        let mut y = vec![Complex::ZERO; self.rows];
        for i in 0..self.rows {
            let mut acc = Complex::ZERO;
            for j in 0..self.cols {
                acc += self[(i, j)] * x[j];
            }
            y[i] = acc;
        }
        y
    }
}

impl Index<(usize, usize)> for CMatrix {
    type Output = Complex;
    #[inline]
    fn index(&self, (i, j): (usize, usize)) -> &Complex {
        debug_assert!(i < self.rows && j < self.cols);
        &self.data[i * self.cols + j]
    }
}

impl IndexMut<(usize, usize)> for CMatrix {
    #[inline]
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut Complex {
        debug_assert!(i < self.rows && j < self.cols);
        &mut self.data[i * self.cols + j]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_mat_vec_is_noop() {
        let id = Matrix::identity(3);
        let x = vec![1.0, -2.0, 3.5];
        assert_eq!(id.mat_vec(&x), x);
    }

    #[test]
    fn transpose_involution() {
        let m = Matrix::from_fn(2, 3, |i, j| (3 * i + j) as f64);
        assert_eq!(m.transpose().transpose(), m);
    }

    #[test]
    fn mat_mul_matches_hand_computation() {
        let a = Matrix::from_rows(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        let b = Matrix::from_rows(2, 2, vec![5.0, 6.0, 7.0, 8.0]);
        let c = a.mat_mul(&b);
        assert_eq!(c.as_slice(), &[19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn add_diag_only_touches_diagonal() {
        let mut m = Matrix::zeros(2, 2);
        m.add_diag(0.5);
        assert_eq!(m[(0, 0)], 0.5);
        assert_eq!(m[(0, 1)], 0.0);
    }

    #[test]
    fn row_and_col_agree_with_indexing() {
        let m = Matrix::from_fn(3, 2, |i, j| (i * 10 + j) as f64);
        assert_eq!(m.row(1), &[10.0, 11.0]);
        assert_eq!(m.col(1), vec![1.0, 11.0, 21.0]);
    }

    #[test]
    fn complex_mat_vec() {
        let mut a = CMatrix::zeros(2, 2);
        a[(0, 0)] = Complex::ONE;
        a[(0, 1)] = Complex::I;
        a[(1, 1)] = Complex::new(2.0, 0.0);
        let y = a.mat_vec(&[Complex::ONE, Complex::ONE]);
        assert_eq!(y[0], Complex::new(1.0, 1.0));
        assert_eq!(y[1], Complex::new(2.0, 0.0));
    }

    #[test]
    #[should_panic(expected = "does not match")]
    fn from_rows_validates_length() {
        let _ = Matrix::from_rows(2, 2, vec![1.0, 2.0, 3.0]);
    }
}
