//! Leading eigenpairs of symmetric PSD matrices via power iteration with
//! deflation.
//!
//! The VGAE-BO baseline trains a linear graph autoencoder, which reduces to
//! a truncated eigendecomposition of the feature covariance matrix. The
//! matrices involved are small (≤ 49×49), so simple power iteration with
//! Hotelling deflation is fast and dependable.

use crate::matrix::Matrix;

/// One eigenpair of a symmetric matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct EigenPair {
    /// Eigenvalue (non-negative for PSD input).
    pub value: f64,
    /// Unit-norm eigenvector.
    pub vector: Vec<f64>,
}

/// Computes the `k` largest eigenpairs of a symmetric PSD matrix by power
/// iteration with deflation.
///
/// Eigenvalues are returned in non-increasing order. If the matrix has
/// rank `< k`, trailing pairs have eigenvalue ≈ 0 and an arbitrary
/// orthogonal vector.
///
/// # Panics
///
/// Panics if `a` is not square or `k > a.rows()`.
///
/// # Examples
///
/// ```
/// use oa_linalg::{symmetric_top_eigenpairs, Matrix};
///
/// let a = Matrix::from_rows(2, 2, vec![2.0, 0.0, 0.0, 0.5]);
/// let pairs = symmetric_top_eigenpairs(&a, 2, 200);
/// assert!((pairs[0].value - 2.0).abs() < 1e-9);
/// assert!((pairs[1].value - 0.5).abs() < 1e-9);
/// ```
pub fn symmetric_top_eigenpairs(a: &Matrix, k: usize, iters: usize) -> Vec<EigenPair> {
    assert!(a.is_square(), "eigendecomposition needs a square matrix");
    let n = a.rows();
    assert!(
        k <= n,
        "cannot extract {k} eigenpairs from a {n}x{n} matrix"
    );

    let mut deflated = a.clone();
    let mut pairs = Vec::with_capacity(k);
    for j in 0..k {
        // Deterministic, non-degenerate start vector.
        let mut v: Vec<f64> = (0..n)
            .map(|i| 1.0 + ((i * 7 + j * 13) % 11) as f64 / 11.0)
            .collect();
        normalize(&mut v);
        let mut value = 0.0;
        for _ in 0..iters.max(1) {
            let mut w = deflated.mat_vec(&v);
            let norm = w.iter().map(|x| x * x).sum::<f64>().sqrt();
            if norm < 1e-14 {
                // Deflated matrix is (numerically) zero: rank exhausted.
                value = 0.0;
                break;
            }
            for x in &mut w {
                *x /= norm;
            }
            value = norm;
            v = w;
        }
        // Rayleigh quotient for a clean eigenvalue estimate.
        let av = deflated.mat_vec(&v);
        value = v
            .iter()
            .zip(&av)
            .map(|(x, y)| x * y)
            .sum::<f64>()
            .max(0.0)
            .max(value.min(0.0));
        pairs.push(EigenPair {
            value,
            vector: v.clone(),
        });
        // Hotelling deflation: A ← A − λ·v·vᵀ.
        for r in 0..n {
            for c in 0..n {
                deflated[(r, c)] -= value * v[r] * v[c];
            }
        }
    }
    pairs
}

fn normalize(v: &mut [f64]) {
    let norm = v.iter().map(|x| x * x).sum::<f64>().sqrt();
    if norm > 0.0 {
        for x in v.iter_mut() {
            *x /= norm;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spd(n: usize) -> Matrix {
        // B·Bᵀ + small diagonal: symmetric PSD with distinct spectrum.
        let b = Matrix::from_fn(n, n, |i, j| {
            ((i * 3 + j * 5) % 7) as f64 / 7.0 + if i == j { 1.0 } else { 0.0 }
        });
        let mut a = b.mat_mul(&b.transpose());
        a.add_diag(0.1);
        a
    }

    #[test]
    fn eigenpairs_satisfy_definition() {
        let a = spd(6);
        let pairs = symmetric_top_eigenpairs(&a, 3, 500);
        for p in &pairs {
            let av = a.mat_vec(&p.vector);
            for (avi, vi) in av.iter().zip(&p.vector) {
                assert!((avi - p.value * vi).abs() < 1e-6, "Av != λv");
            }
        }
    }

    #[test]
    fn eigenvalues_are_sorted_descending() {
        let a = spd(8);
        let pairs = symmetric_top_eigenpairs(&a, 5, 500);
        for w in pairs.windows(2) {
            assert!(w[0].value >= w[1].value - 1e-9);
        }
    }

    #[test]
    fn eigenvectors_are_orthonormal() {
        let a = spd(5);
        let pairs = symmetric_top_eigenpairs(&a, 3, 500);
        for i in 0..pairs.len() {
            for j in 0..pairs.len() {
                let dot: f64 = pairs[i]
                    .vector
                    .iter()
                    .zip(&pairs[j].vector)
                    .map(|(x, y)| x * y)
                    .sum();
                let expected = if i == j { 1.0 } else { 0.0 };
                assert!((dot - expected).abs() < 1e-6, "({i},{j}) dot {dot}");
            }
        }
    }

    #[test]
    fn rank_deficient_matrix_yields_zero_tail() {
        // Rank-1 matrix v·vᵀ.
        let v = [1.0, 2.0, 2.0];
        let a = Matrix::from_fn(3, 3, |i, j| v[i] * v[j]);
        let pairs = symmetric_top_eigenpairs(&a, 3, 300);
        assert!((pairs[0].value - 9.0).abs() < 1e-8); // |v|² = 9
        assert!(pairs[1].value.abs() < 1e-8);
        assert!(pairs[2].value.abs() < 1e-8);
    }

    #[test]
    #[should_panic(expected = "square")]
    fn rejects_rectangular() {
        let a = Matrix::zeros(2, 3);
        let _ = symmetric_top_eigenpairs(&a, 1, 10);
    }
}
