//! Symbolic sparse LU factorization with SoA-batched numeric refactoring.
//!
//! The MNA systems the AC simulator solves are small but *structurally
//! fixed*: across a frequency sweep — and across every sizing of the same
//! topology — only the stamp values change, never the sparsity pattern.
//! Dense LU with partial pivoting re-discovers that structure at every
//! frequency point. This module splits the work the way production SPICE
//! engines do:
//!
//! 1. **Symbolic analysis** ([`SymbolicPlan::analyze`]) runs once per
//!    [`SparsityPattern`]: a Markowitz-style fill-reducing diagonal pivot
//!    order, the fill pattern of `L + U`, and a flat *elimination
//!    program* (slot-indexed multiply–subtract ops) are computed and
//!    frozen. Plans are immutable and shareable (`Arc`) across threads,
//!    sweeps, and sizing evaluations.
//! 2. **Numeric refactoring** ([`SymbolicPlan::factor`]) replays the
//!    program over preallocated slot storage — no pivot search, no
//!    index arithmetic beyond the precomputed slot ids, no allocation.
//! 3. **Batching**: values live in a structure-of-arrays complex layout
//!    (separate `re`/`im` slabs, one contiguous lane per frequency
//!    point), so every kernel is a fixed-stride loop over the batch that
//!    the compiler can autovectorize. Factoring 32 frequency points is a
//!    handful of tight loops, not 32 independent factorizations.
//!
//! The pivot order is chosen symbolically, so there is no numerical
//! pivoting. Robustness comes from an *accuracy gate* instead
//! ([`SymbolicPlan::solve_gated`]): each solve runs iterative refinement
//! against the original matrix values and accepts a lane only when the
//! correction has contracted below [`REFINE_GATE`] relative to the
//! solution. Lanes that fail the gate — numerically zero pivots, extreme
//! element growth — are flagged in [`BatchBuffers::bad`] so the caller
//! can fall back to dense partial-pivoted LU for exactly those points.

use crate::complex::Complex;
use crate::error::LinalgError;

/// Relative ∞-norm contraction threshold of the iterative-refinement
/// accuracy gate: a batch lane is accepted once the latest correction
/// `δ` satisfies `‖δ‖∞ ≤ REFINE_GATE · ‖x‖∞`. A well-conditioned system
/// passes after one sweep (`‖δ‖ ≈ ε·κ·‖x‖`); a growth-dominated one
/// needs a second; lanes still above the gate after `REFINE_STEPS`
/// sweeps are flagged for dense fallback. The threshold sits an order of
/// magnitude inside the simulator's 1e-12 differential budget.
pub const REFINE_GATE: f64 = 1e-13;

/// Maximum iterative-refinement sweeps before a lane is declared bad.
const REFINE_STEPS: usize = 3;

/// Componentwise backward-error fast-accept threshold (Oettli–Prager):
/// a lane whose initial solve already satisfies
/// `max_i |r_i| / ((|A'|·|x| + |b'|)_i) ≤ BACKWARD_GATE` is backward
/// stable to a few ulps — the same guarantee fixed-precision iterative
/// refinement converges to — so the correction solve is skipped
/// entirely. Set at ~22·ε: a clean static-pivot factorization of a
/// diagonally-dominant MNA system lands near ε, anything structurally
/// marginal falls through to the refinement loop (and, failing that, the
/// dense fallback).
const BACKWARD_GATE: f64 = 5e-15;

/// Preferred batch width for the SoA kernels. [`SymbolicPlan::factor`]
/// and [`SymbolicPlan::solve_gated`] dispatch to a constant-trip-count
/// specialization when `nf == LANES`, so callers sweeping many points
/// should chunk by exactly this many lanes and let only the final
/// remainder chunk take the variable-width path.
pub const LANES: usize = 64;

/// The set of structurally-nonzero positions of a square matrix.
///
/// Positions are deduplicated and kept sorted row-major, so two patterns
/// compare equal exactly when they describe the same structure — the
/// property plan caches key on. The diagonal is *not* implicitly added
/// here; [`SymbolicPlan::analyze`] pads missing diagonal entries itself
/// (a structurally-zero pivot slot simply fails the accuracy gate at
/// numeric time).
///
/// # Examples
///
/// ```
/// use oa_linalg::SparsityPattern;
///
/// let p = SparsityPattern::new(3, vec![(0, 0), (1, 1), (0, 1), (2, 2), (1, 1)]).unwrap();
/// assert_eq!(p.n(), 3);
/// assert_eq!(p.nnz(), 4); // duplicate (1,1) collapsed
/// ```
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct SparsityPattern {
    n: usize,
    entries: Vec<(u32, u32)>,
}

impl SparsityPattern {
    /// Builds a pattern from arbitrary (row, col) positions, sorting and
    /// deduplicating them.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] when a position lies
    /// outside the `n × n` matrix.
    pub fn new(n: usize, positions: Vec<(usize, usize)>) -> Result<Self, LinalgError> {
        let mut entries = Vec::with_capacity(positions.len());
        for (r, c) in positions {
            if r >= n || c >= n {
                return Err(LinalgError::DimensionMismatch {
                    expected: n,
                    found: r.max(c),
                });
            }
            entries.push((r as u32, c as u32));
        }
        entries.sort_unstable();
        entries.dedup();
        Ok(SparsityPattern { n, entries })
    }

    /// Matrix dimension.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of structurally-nonzero positions.
    pub fn nnz(&self) -> usize {
        self.entries.len()
    }

    /// The sorted, deduplicated positions.
    pub fn entries(&self) -> &[(u32, u32)] {
        &self.entries
    }
}

/// One multiply–subtract of the elimination program:
/// `slot[dst] -= lscratch[l] · uscratch[u]`, where the scratch indices
/// address the pivot column / pivot row snapshots of the current step.
#[derive(Debug, Clone, Copy)]
struct UpdateOp {
    dst: u32,
    l: u32,
    u: u32,
}

/// Per-elimination-step slice boundaries into the plan's flat arrays.
#[derive(Debug, Clone, Copy)]
struct Step {
    /// Slot of the pivot `(k, k)` in permuted coordinates.
    pivot: u32,
    /// Range into `lcol_slots`: subdiagonal slots of pivot column `k`.
    lcol: (u32, u32),
    /// Range into `urow`: strictly-superdiagonal slots of pivot row `k`.
    urow_r: (u32, u32),
    /// Range into `ops`: the update program of this step.
    ops: (u32, u32),
    /// Range into `lrow`: slots of row `k` left of the diagonal (solve).
    lrow_r: (u32, u32),
}

/// A frozen symbolic factorization: fill-reducing pivot order, `L + U`
/// fill pattern, elimination program, and solve program for one
/// [`SparsityPattern`]. Immutable after [`SymbolicPlan::analyze`]; all
/// numeric state lives in caller-owned [`BatchBuffers`].
///
/// # Examples
///
/// ```
/// use oa_linalg::{Complex, SparsityPattern, SymbolicPlan};
///
/// // [ 2   0   1 ]       pattern analyzed once,
/// // [ 0   3   0 ]  ...  values refactored per "frequency".
/// // [ 1   0   4 ]
/// let pattern = SparsityPattern::new(
///     3,
///     vec![(0, 0), (0, 2), (1, 1), (2, 0), (2, 2)],
/// ).unwrap();
/// let plan = SymbolicPlan::analyze(&pattern).unwrap();
/// let mut buf = plan.buffers();
/// plan.ensure_batch(&mut buf, 1);
/// for (i, v) in [2.0, 1.0, 3.0, 1.0, 4.0].into_iter().enumerate() {
///     buf.a_re[i] = v; // pattern order: (0,0),(0,2),(1,1),(2,0),(2,2)
/// }
/// plan.factor(&mut buf, 1);
/// buf.rhs_re[0] = 3.0; // b = [3, 3, 5]
/// buf.rhs_re[1] = 3.0;
/// buf.rhs_re[2] = 5.0;
/// plan.solve_gated(&mut buf, 1);
/// assert!(!buf.bad[0]);
/// let x0 = plan.solution(&buf, 1, 0, 0);
/// assert!((x0 - Complex::ONE).abs() < 1e-12); // x = [1, 1, 1]
/// ```
#[derive(Debug, Clone)]
pub struct SymbolicPlan {
    n: usize,
    nnz: usize,
    nslots: usize,
    /// `perm[k]` = original index eliminated at step `k`.
    perm: Vec<u32>,
    /// `pos[i]` = elimination step of original index `i` (inverse perm).
    pos: Vec<u32>,
    steps: Vec<Step>,
    lcol_slots: Vec<u32>,
    /// Flattened `(slot, permuted column)` pairs of each `U` row.
    urow: Vec<(u32, u32)>,
    /// Flattened `(slot, permuted column)` pairs of each `L` row.
    lrow: Vec<(u32, u32)>,
    ops: Vec<UpdateOp>,
    /// For each pattern entry (in [`SparsityPattern::entries`] order):
    /// `(permuted row, slot)` — the scatter and residual map.
    a_map: Vec<(u32, u32)>,
    /// Permuted column of each pattern entry (residual matvec).
    a_cols: Vec<u32>,
    /// Slots the entry scatter does not write (fill and padded
    /// diagonals) — the only ones `factor` must zero per batch.
    zero_slots: Vec<u32>,
    /// Widest pivot column (scratch sizing).
    max_lcol: usize,
    /// Widest pivot row (scratch sizing).
    max_urow: usize,
}

impl SymbolicPlan {
    /// Runs the symbolic analysis: Markowitz fill-reducing diagonal
    /// pivot order (deterministic lowest-index tie-break), fill
    /// computation, slot assignment, and program generation.
    ///
    /// Cost is `O(n³)` on a dense bit matrix — microseconds at MNA sizes
    /// and paid once per pattern, amortized by plan caches across every
    /// sweep of every sizing of a topology.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] for an empty pattern
    /// (`n == 0`), which has no pivot to choose.
    pub fn analyze(pattern: &SparsityPattern) -> Result<SymbolicPlan, LinalgError> {
        let n = pattern.n;
        if n == 0 {
            return Err(LinalgError::DimensionMismatch {
                expected: 1,
                found: 0,
            });
        }
        // Dense bit matrix of the working pattern; diagonal padded so a
        // pivot slot always exists (numerically zero pads fail the gate).
        let mut present = vec![false; n * n];
        for &(r, c) in &pattern.entries {
            present[r as usize * n + c as usize] = true;
        }
        for d in 0..n {
            present[d * n + d] = true;
        }

        // Markowitz ordering with on-the-fly fill: at each step pick the
        // remaining diagonal minimizing (row degree − 1)·(col degree − 1).
        let mut remaining = vec![true; n];
        let mut perm = Vec::with_capacity(n);
        for _ in 0..n {
            let mut best = usize::MAX;
            let mut best_cost = usize::MAX;
            for p in (0..n).filter(|&p| remaining[p]) {
                let row_deg = (0..n)
                    .filter(|&j| remaining[j] && j != p && present[p * n + j])
                    .count();
                let col_deg = (0..n)
                    .filter(|&i| remaining[i] && i != p && present[i * n + p])
                    .count();
                let cost = row_deg * col_deg;
                if cost < best_cost {
                    best_cost = cost;
                    best = p;
                }
            }
            let p = best;
            remaining[p] = false;
            perm.push(p as u32);
            // Fill: eliminating p connects every remaining in-neighbor to
            // every remaining out-neighbor.
            let outs: Vec<usize> = (0..n)
                .filter(|&j| remaining[j] && present[p * n + j])
                .collect();
            let ins: Vec<usize> = (0..n)
                .filter(|&i| remaining[i] && present[i * n + p])
                .collect();
            for i in ins {
                for &j in &outs {
                    present[i * n + j] = true;
                }
            }
        }
        let mut pos = vec![0u32; n];
        for (k, &p) in perm.iter().enumerate() {
            pos[p as usize] = k as u32;
        }

        // Slot assignment over the filled pattern, row-major in permuted
        // coordinates. `slot_of[ki * n + kj]` is dense scratch, u32::MAX
        // meaning structurally zero.
        let at = |ki: usize, kj: usize| perm[ki] as usize * n + perm[kj] as usize;
        let mut slot_of = vec![u32::MAX; n * n];
        let mut nslots = 0usize;
        for ki in 0..n {
            for kj in 0..n {
                if present[at(ki, kj)] {
                    slot_of[ki * n + kj] = nslots as u32;
                    nslots += 1;
                }
            }
        }

        // Program generation.
        let mut steps = Vec::with_capacity(n);
        let mut lcol_slots = Vec::new();
        let mut urow = Vec::new();
        let mut lrow = Vec::new();
        let mut ops = Vec::new();
        let mut max_lcol = 0usize;
        let mut max_urow = 0usize;
        for k in 0..n {
            let pivot = slot_of[k * n + k];
            let lcol_start = lcol_slots.len() as u32;
            let lcol: Vec<usize> = (k + 1..n).filter(|&i| present[at(i, k)]).collect();
            lcol_slots.extend(lcol.iter().map(|&i| slot_of[i * n + k]));
            let urow_start = urow.len() as u32;
            let urow_k: Vec<usize> = (k + 1..n).filter(|&j| present[at(k, j)]).collect();
            urow.extend(urow_k.iter().map(|&j| (slot_of[k * n + j], j as u32)));
            let ops_start = ops.len() as u32;
            for (li, &i) in lcol.iter().enumerate() {
                for (uj, &j) in urow_k.iter().enumerate() {
                    ops.push(UpdateOp {
                        dst: slot_of[i * n + j],
                        l: li as u32,
                        u: uj as u32,
                    });
                }
            }
            let lrow_start = lrow.len() as u32;
            for j in (0..k).filter(|&j| present[at(k, j)]) {
                lrow.push((slot_of[k * n + j], j as u32));
            }
            max_lcol = max_lcol.max(lcol.len());
            max_urow = max_urow.max(urow_k.len());
            steps.push(Step {
                pivot,
                lcol: (lcol_start, lcol_slots.len() as u32),
                urow_r: (urow_start, urow.len() as u32),
                ops: (ops_start, ops.len() as u32),
                lrow_r: (lrow_start, lrow.len() as u32),
            });
        }

        let mut a_map = Vec::with_capacity(pattern.entries.len());
        let mut a_cols = Vec::with_capacity(pattern.entries.len());
        for &(r, c) in &pattern.entries {
            let ki = pos[r as usize] as usize;
            let kj = pos[c as usize] as usize;
            a_map.push((ki as u32, slot_of[ki * n + kj]));
            a_cols.push(kj as u32);
        }
        let mut covered = vec![false; nslots];
        for &(_, slot) in &a_map {
            covered[slot as usize] = true;
        }
        let zero_slots: Vec<u32> = (0..nslots as u32)
            .filter(|&s| !covered[s as usize])
            .collect();

        Ok(SymbolicPlan {
            n,
            nnz: pattern.entries.len(),
            nslots,
            perm,
            pos,
            steps,
            lcol_slots,
            urow,
            lrow,
            ops,
            a_map,
            a_cols,
            zero_slots,
            max_lcol,
            max_urow,
        })
    }

    /// Matrix dimension.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Structural nonzeros of the input pattern.
    pub fn nnz(&self) -> usize {
        self.nnz
    }

    /// Stored nonzeros of `L + U` including fill.
    pub fn nslots(&self) -> usize {
        self.nslots
    }

    /// Fill-in introduced by the chosen elimination order.
    pub fn fill(&self) -> usize {
        self.nslots - self.nnz
    }

    /// Fresh, empty numeric buffers for this plan. Grow them to a batch
    /// width with [`SymbolicPlan::ensure_batch`]; reuse across sweeps.
    pub fn buffers(&self) -> BatchBuffers {
        BatchBuffers::default()
    }

    /// Resizes `buf` for a batch of `nf` frequency lanes. Idempotent and
    /// monotonic: buffers only ever grow, so a sweep chunked into blocks
    /// allocates exactly once.
    pub fn ensure_batch(&self, buf: &mut BatchBuffers, nf: usize) {
        if buf.nf_cap >= nf {
            return;
        }
        let grow = |v: &mut Vec<f64>, len: usize| v.resize(len, 0.0);
        for v in [&mut buf.a_re, &mut buf.a_im] {
            grow(v, self.nnz * nf);
        }
        for v in [&mut buf.lu_re, &mut buf.lu_im] {
            grow(v, self.nslots * nf);
        }
        for v in [
            &mut buf.recip_re,
            &mut buf.recip_im,
            &mut buf.rhs_re,
            &mut buf.rhs_im,
            &mut buf.b_re,
            &mut buf.b_im,
            &mut buf.x_re,
            &mut buf.x_im,
            &mut buf.d_re,
            &mut buf.d_im,
        ] {
            grow(v, self.n * nf);
        }
        for v in [&mut buf.lscr_re, &mut buf.lscr_im] {
            grow(v, self.max_lcol * nf);
        }
        for v in [&mut buf.uscr_re, &mut buf.uscr_im] {
            grow(v, self.max_urow * nf);
        }
        for v in [&mut buf.xnorm, &mut buf.dnorm] {
            grow(v, nf);
        }
        buf.bad.resize(nf, false);
        buf.nf_cap = nf;
    }

    /// Numerically refactors a batch of `nf` matrices sharing this
    /// plan's pattern.
    ///
    /// Input: `buf.a_re`/`buf.a_im` hold the matrix values in
    /// structure-of-arrays layout — entry `e` of
    /// [`SparsityPattern::entries`] occupies the lane block
    /// `[e·nf, (e+1)·nf)`, frequency index contiguous. The `a` slabs are
    /// left untouched (the accuracy gate's residuals need them).
    ///
    /// There is no error path: numerically-zero pivots produce
    /// non-finite lanes that [`SymbolicPlan::solve_gated`] flags in
    /// [`BatchBuffers::bad`] rather than aborting the whole batch.
    ///
    /// # Panics
    ///
    /// Panics if `buf` was sized by a different plan or `nf` exceeds its
    /// batch capacity (programming error, not data-dependent).
    pub fn factor(&self, buf: &mut BatchBuffers, nf: usize) {
        assert!(nf >= 1 && nf <= buf.nf_cap, "batch not sized for nf={nf}");
        // Full batches go through a call site with a literal lane count:
        // after `factor_impl` inlines, LLVM sees constant trip counts and
        // fully unrolls the lane loops.
        if nf == LANES {
            self.factor_impl(buf, LANES);
        } else {
            self.factor_impl(buf, nf);
        }
    }

    #[inline(always)]
    fn factor_impl(&self, buf: &mut BatchBuffers, nf: usize) {
        // Expand A into the LU slots: zero only the slots the scatter
        // below does not overwrite (fill and padded diagonals), then
        // copy the pattern entries through the scatter map.
        for &slot in &self.zero_slots {
            let s = slot as usize * nf;
            buf.lu_re[s..s + nf].fill(0.0);
            buf.lu_im[s..s + nf].fill(0.0);
        }
        for (e, &(_, slot)) in self.a_map.iter().enumerate() {
            let s = slot as usize * nf;
            buf.lu_re[s..s + nf].copy_from_slice(&buf.a_re[e * nf..(e + 1) * nf]);
            buf.lu_im[s..s + nf].copy_from_slice(&buf.a_im[e * nf..(e + 1) * nf]);
        }

        // Inner loops take per-block subslices before iterating lanes so
        // the bounds checks hoist out and the f64 lane arithmetic
        // autovectorizes (the slabs are disjoint struct fields, so the
        // simultaneous borrows are fine). Complex multiply–accumulates
        // are written with `f64::mul_add`: exactly-fused on every target
        // (hardware FMA where available, correctly-rounded software
        // fallback otherwise), so results are deterministic across
        // builds while the hot path halves its add/mul chain.
        for (k, step) in self.steps.iter().enumerate() {
            // Pivot reciprocal, one lane at a time: recip = conj(p)/|p|².
            let p = step.pivot as usize * nf;
            let rk = k * nf;
            {
                let pr = &buf.lu_re[p..p + nf];
                let pi = &buf.lu_im[p..p + nf];
                let rr = &mut buf.recip_re[rk..rk + nf];
                let ri = &mut buf.recip_im[rk..rk + nf];
                for f in 0..nf {
                    let inv = 1.0 / pr[f].mul_add(pr[f], pi[f] * pi[f]);
                    rr[f] = pr[f] * inv;
                    ri[f] = -pi[f] * inv;
                }
            }
            // Divide the pivot column by the pivot, snapshotting the
            // multipliers into scratch (resolves dst/l/u slot aliasing
            // for the update loop below).
            let lcol = &self.lcol_slots[step.lcol.0 as usize..step.lcol.1 as usize];
            for (li, &slot) in lcol.iter().enumerate() {
                let s = slot as usize * nf;
                let t = li * nf;
                let cr = &buf.recip_re[rk..rk + nf];
                let ci = &buf.recip_im[rk..rk + nf];
                let are = &mut buf.lu_re[s..s + nf];
                let aim = &mut buf.lu_im[s..s + nf];
                let sre = &mut buf.lscr_re[t..t + nf];
                let sim = &mut buf.lscr_im[t..t + nf];
                for f in 0..nf {
                    let (ar, ai) = (are[f], aim[f]);
                    let lr = ar.mul_add(cr[f], -(ai * ci[f]));
                    let lim = ar.mul_add(ci[f], ai * cr[f]);
                    are[f] = lr;
                    aim[f] = lim;
                    sre[f] = lr;
                    sim[f] = lim;
                }
            }
            // Snapshot the pivot row.
            let urow = &self.urow[step.urow_r.0 as usize..step.urow_r.1 as usize];
            for (uj, &(slot, _)) in urow.iter().enumerate() {
                let s = slot as usize * nf;
                let t = uj * nf;
                buf.uscr_re[t..t + nf].copy_from_slice(&buf.lu_re[s..s + nf]);
                buf.uscr_im[t..t + nf].copy_from_slice(&buf.lu_im[s..s + nf]);
            }
            // Rank-1 update program: dst -= l · u, lanes contiguous.
            for op in &self.ops[step.ops.0 as usize..step.ops.1 as usize] {
                let d = op.dst as usize * nf;
                let l = op.l as usize * nf;
                let u = op.u as usize * nf;
                let lre = &buf.lscr_re[l..l + nf];
                let lim = &buf.lscr_im[l..l + nf];
                let ure = &buf.uscr_re[u..u + nf];
                let uim = &buf.uscr_im[u..u + nf];
                let dre = &mut buf.lu_re[d..d + nf];
                let dim = &mut buf.lu_im[d..d + nf];
                for f in 0..nf {
                    dre[f] = lre[f].mul_add(-ure[f], lim[f].mul_add(uim[f], dre[f]));
                    dim[f] = lre[f].mul_add(-uim[f], lim[f].mul_add(-ure[f], dim[f]));
                }
            }
        }
    }

    /// Forward/back substitution in permuted coordinates, in place on
    /// the `x` slab: on entry `x` holds the permuted input (rhs or
    /// residual), on return it holds the solution — no `y` scratch, no
    /// block copies.
    #[inline(always)]
    fn substitute(&self, buf: &mut BatchBuffers, nf: usize) {
        // Forward: L·y = b' (unit diagonal), overwriting x with y.
        // Subslice every lane block before the inner loop so the
        // arithmetic autovectorizes.
        for (k, step) in self.steps.iter().enumerate() {
            let (done_re, rest_re) = buf.x_re.split_at_mut(k * nf);
            let (done_im, rest_im) = buf.x_im.split_at_mut(k * nf);
            let yk_re = &mut rest_re[..nf];
            let yk_im = &mut rest_im[..nf];
            for &(slot, j) in &self.lrow[step.lrow_r.0 as usize..step.lrow_r.1 as usize] {
                let s = slot as usize * nf;
                let yj = j as usize * nf;
                let lre = &buf.lu_re[s..s + nf];
                let lim = &buf.lu_im[s..s + nf];
                let yjr = &done_re[yj..yj + nf];
                let yji = &done_im[yj..yj + nf];
                for f in 0..nf {
                    yk_re[f] = lre[f].mul_add(-yjr[f], lim[f].mul_add(yji[f], yk_re[f]));
                    yk_im[f] = lre[f].mul_add(-yji[f], lim[f].mul_add(-yjr[f], yk_im[f]));
                }
            }
        }
        // Back: U·x = y, in place, diagonal via the cached reciprocals.
        for (k, step) in self.steps.iter().enumerate().rev() {
            let (head_re, tail_re) = buf.x_re.split_at_mut((k + 1) * nf);
            let (head_im, tail_im) = buf.x_im.split_at_mut((k + 1) * nf);
            let xk_re = &mut head_re[k * nf..];
            let xk_im = &mut head_im[k * nf..];
            for &(slot, j) in &self.urow[step.urow_r.0 as usize..step.urow_r.1 as usize] {
                let s = slot as usize * nf;
                let xj = (j as usize - (k + 1)) * nf;
                let ure = &buf.lu_re[s..s + nf];
                let uim = &buf.lu_im[s..s + nf];
                let xjr = &tail_re[xj..xj + nf];
                let xji = &tail_im[xj..xj + nf];
                for f in 0..nf {
                    xk_re[f] = ure[f].mul_add(-xjr[f], uim[f].mul_add(xji[f], xk_re[f]));
                    xk_im[f] = ure[f].mul_add(-xji[f], uim[f].mul_add(-xjr[f], xk_im[f]));
                }
            }
            let rk = k * nf;
            let cr = &buf.recip_re[rk..rk + nf];
            let ci = &buf.recip_im[rk..rk + nf];
            for f in 0..nf {
                let (xr, xi) = (xk_re[f], xk_im[f]);
                xk_re[f] = xr.mul_add(cr[f], -(xi * ci[f]));
                xk_im[f] = xr.mul_add(ci[f], xi * cr[f]);
            }
        }
    }

    /// Residual update `b' ← b' − A'·x` over the pattern entries
    /// (permuted coordinates), reading the untouched `a` slabs.
    #[inline(always)]
    fn residual_in_place(&self, buf: &mut BatchBuffers, nf: usize) {
        for (e, &(krow, _)) in self.a_map.iter().enumerate() {
            let kcol = self.a_cols[e] as usize * nf;
            let r = krow as usize * nf;
            let a = e * nf;
            let are = &buf.a_re[a..a + nf];
            let aim = &buf.a_im[a..a + nf];
            let xre = &buf.x_re[kcol..kcol + nf];
            let xim = &buf.x_im[kcol..kcol + nf];
            let bre = &mut buf.b_re[r..r + nf];
            let bim = &mut buf.b_im[r..r + nf];
            for f in 0..nf {
                bre[f] = are[f].mul_add(-xre[f], aim[f].mul_add(xim[f], bre[f]));
                bim[f] = are[f].mul_add(-xim[f], aim[f].mul_add(-xre[f], bim[f]));
            }
        }
    }

    /// Solves the factored batch for the right-hand sides in
    /// `buf.rhs_re`/`buf.rhs_im` (*original* row order, lane blocks of
    /// `nf`), with the iterative-refinement accuracy gate.
    ///
    /// On return, `buf.bad[f]` is `true` for lanes whose refinement did
    /// not contract below [`REFINE_GATE`] — numerically singular or
    /// growth-dominated systems the caller should re-solve densely. Good
    /// lanes carry a solution whose refinement correction was below
    /// `REFINE_GATE · ‖x‖∞`, i.e. comfortably inside the simulator's
    /// 1e-12 differential budget. Read components out with
    /// [`SymbolicPlan::solution`].
    ///
    /// # Panics
    ///
    /// Panics if `buf` was not sized for `nf` (programming error).
    pub fn solve_gated(&self, buf: &mut BatchBuffers, nf: usize) {
        assert!(nf >= 1 && nf <= buf.nf_cap, "batch not sized for nf={nf}");
        // Same constant-trip-count dispatch as [`SymbolicPlan::factor`].
        if nf == LANES {
            self.solve_gated_impl(buf, LANES);
        } else {
            self.solve_gated_impl(buf, nf);
        }
    }

    #[inline(always)]
    fn solve_gated_impl(&self, buf: &mut BatchBuffers, nf: usize) {
        // Gather the rhs into x in permuted order (xₖ = rhs[perm[k]])
        // and solve in place.
        for (k, &p) in self.perm.iter().enumerate() {
            let src = p as usize * nf;
            let dst = k * nf;
            buf.x_re[dst..dst + nf].copy_from_slice(&buf.rhs_re[src..src + nf]);
            buf.x_im[dst..dst + nf].copy_from_slice(&buf.rhs_im[src..src + nf]);
        }
        self.substitute(buf, nf);

        // Fast accept: componentwise backward error of the initial
        // solve, measured in one residual pass. The common case — every
        // lane of the batch already backward stable to a few ulps —
        // skips the correction solve entirely.
        // One fused pass re-gathers the permuted rhs into b' and seeds
        // d_re with the scale |b'|₁; the residual pass then folds
        // |A'|·|x| on top while b turns into r = b' − A'·x.
        for (k, &p) in self.perm.iter().enumerate() {
            let src = p as usize * nf;
            let dst = k * nf;
            let rre = &buf.rhs_re[src..src + nf];
            let rim = &buf.rhs_im[src..src + nf];
            let bre = &mut buf.b_re[dst..dst + nf];
            let bim = &mut buf.b_im[dst..dst + nf];
            let sc = &mut buf.d_re[dst..dst + nf];
            for f in 0..nf {
                let (br, bi) = (rre[f], rim[f]);
                bre[f] = br;
                bim[f] = bi;
                sc[f] = br.abs() + bi.abs();
            }
        }
        for (e, &(krow, _)) in self.a_map.iter().enumerate() {
            let kcol = self.a_cols[e] as usize * nf;
            let r = krow as usize * nf;
            let a = e * nf;
            let are = &buf.a_re[a..a + nf];
            let aim = &buf.a_im[a..a + nf];
            let xre = &buf.x_re[kcol..kcol + nf];
            let xim = &buf.x_im[kcol..kcol + nf];
            let bre = &mut buf.b_re[r..r + nf];
            let bim = &mut buf.b_im[r..r + nf];
            let sc = &mut buf.d_re[r..r + nf];
            for f in 0..nf {
                let (ar, ai) = (are[f], aim[f]);
                let (xr, xi) = (xre[f], xim[f]);
                bre[f] = ar.mul_add(-xr, ai.mul_add(xi, bre[f]));
                bim[f] = ar.mul_add(-xi, ai.mul_add(-xr, bim[f]));
                sc[f] = (ar.abs() + ai.abs()).mul_add(xr.abs() + xi.abs(), sc[f]);
            }
        }
        // Gate per lane: every row must satisfy |r_i|₁ ≤ gate · scale_i,
        // written division-free as a worst-violation accumulation
        // (`v = |r|₁ − gate·scale ≤ 0`). Exact zeros pass (0 ≤ 0); a NaN
        // residual or scale is clamped to +∞ before the `max` so
        // `f64::max`'s NaN-dropping cannot let a poisoned lane pass.
        buf.dnorm[..nf].fill(f64::NEG_INFINITY);
        for k in 0..self.n {
            let o = k * nf;
            let rre = &buf.b_re[o..o + nf];
            let rim = &buf.b_im[o..o + nf];
            let sc = &buf.d_re[o..o + nf];
            let viol = &mut buf.dnorm[..nf];
            for f in 0..nf {
                let r1 = rre[f].abs() + rim[f].abs();
                let v = sc[f].mul_add(-BACKWARD_GATE, r1);
                let v = if v.is_finite() { v } else { f64::INFINITY };
                viol[f] = viol[f].max(v);
            }
        }
        let mut all_stable = true;
        for f in 0..nf {
            let ok = buf.dnorm[f] <= 0.0;
            buf.bad[f] = !ok;
            all_stable &= ok;
        }
        if all_stable {
            return;
        }

        for _ in 0..REFINE_STEPS {
            // r = b' − A'·x with the *combined* iterate x, then solve for
            // the correction δ and gate on its relative size.
            self.permute_rhs(buf, nf);
            self.residual_in_place(buf, nf);
            // Stash the iterate, move the residual into x, and solve the
            // correction in place.
            buf.d_re[..self.n * nf].copy_from_slice(&buf.x_re[..self.n * nf]);
            buf.d_im[..self.n * nf].copy_from_slice(&buf.x_im[..self.n * nf]);
            buf.x_re[..self.n * nf].copy_from_slice(&buf.b_re[..self.n * nf]);
            buf.x_im[..self.n * nf].copy_from_slice(&buf.b_im[..self.n * nf]);
            self.substitute(buf, nf);
            // x holds δ, d the previous iterate; fold x ← d + δ while
            // accumulating ‖δ‖∞ and ‖x_new‖∞ per lane.
            buf.xnorm[..nf].fill(0.0);
            buf.dnorm[..nf].fill(0.0);
            for k in 0..self.n {
                let o = k * nf;
                let xre = &mut buf.x_re[o..o + nf];
                let xim = &mut buf.x_im[o..o + nf];
                let dre = &buf.d_re[o..o + nf];
                let dim = &buf.d_im[o..o + nf];
                let dn = &mut buf.dnorm[..nf];
                let xn = &mut buf.xnorm[..nf];
                for f in 0..nf {
                    let delta = xre[f].abs() + xim[f].abs();
                    let new_re = dre[f] + xre[f];
                    let new_im = dim[f] + xim[f];
                    xre[f] = new_re;
                    xim[f] = new_im;
                    let mag = new_re.abs() + new_im.abs();
                    // `f64::max` silently drops NaN operands, which would
                    // let a zero-pivot lane pass the gate — clamp
                    // non-finite magnitudes to +∞ so they always fail.
                    let delta = if delta.is_finite() {
                        delta
                    } else {
                        f64::INFINITY
                    };
                    let mag = if mag.is_finite() { mag } else { f64::INFINITY };
                    dn[f] = dn[f].max(delta);
                    xn[f] = xn[f].max(mag);
                }
            }
            let mut all_ok = true;
            for f in 0..nf {
                // An ∞ `dnorm` (non-finite lane) never satisfies `<=`.
                let ok = buf.dnorm[f] <= REFINE_GATE * buf.xnorm[f] && buf.xnorm[f].is_finite();
                buf.bad[f] = !ok;
                all_ok &= ok;
            }
            if all_ok {
                return;
            }
        }
    }

    /// Copies the rhs blocks into `b` in permuted row order.
    #[inline(always)]
    fn permute_rhs(&self, buf: &mut BatchBuffers, nf: usize) {
        for (k, &p) in self.perm.iter().enumerate() {
            let src = p as usize * nf;
            let dst = k * nf;
            buf.b_re[dst..dst + nf].copy_from_slice(&buf.rhs_re[src..src + nf]);
            buf.b_im[dst..dst + nf].copy_from_slice(&buf.rhs_im[src..src + nf]);
        }
    }

    /// The solution component of original row `orig` at lane `f`, after
    /// [`SymbolicPlan::solve_gated`]. Meaningless for lanes flagged bad.
    pub fn solution(&self, buf: &BatchBuffers, nf: usize, orig: usize, f: usize) -> Complex {
        let k = self.pos[orig] as usize * nf + f;
        Complex::new(buf.x_re[k], buf.x_im[k])
    }
}

/// Caller-owned numeric state for one plan: the SoA value slabs, LU slot
/// storage, substitution scratch, and the per-lane bad flags. Create via
/// [`SymbolicPlan::buffers`]; size with [`SymbolicPlan::ensure_batch`].
#[derive(Debug, Clone, Default)]
pub struct BatchBuffers {
    nf_cap: usize,
    /// Matrix values, pattern-entry-major, `nf` lanes contiguous (re).
    pub a_re: Vec<f64>,
    /// Matrix values, imaginary lanes.
    pub a_im: Vec<f64>,
    /// Right-hand sides, original row order, `nf` lanes contiguous (re).
    pub rhs_re: Vec<f64>,
    /// Right-hand sides, imaginary lanes.
    pub rhs_im: Vec<f64>,
    /// Per-lane accuracy-gate verdicts after
    /// [`SymbolicPlan::solve_gated`]: `true` means fall back to dense.
    pub bad: Vec<bool>,
    lu_re: Vec<f64>,
    lu_im: Vec<f64>,
    recip_re: Vec<f64>,
    recip_im: Vec<f64>,
    b_re: Vec<f64>,
    b_im: Vec<f64>,
    x_re: Vec<f64>,
    x_im: Vec<f64>,
    d_re: Vec<f64>,
    d_im: Vec<f64>,
    lscr_re: Vec<f64>,
    lscr_im: Vec<f64>,
    uscr_re: Vec<f64>,
    uscr_im: Vec<f64>,
    xnorm: Vec<f64>,
    dnorm: Vec<f64>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lu::solve_complex;
    use crate::matrix::CMatrix;

    /// xorshift64* — deterministic values in (-1, 1).
    struct Rng(u64);

    impl Rng {
        fn next_f64(&mut self) -> f64 {
            self.0 ^= self.0 << 13;
            self.0 ^= self.0 >> 7;
            self.0 ^= self.0 << 17;
            let bits = self.0.wrapping_mul(0x2545_F491_4F6C_DD1D);
            (bits >> 11) as f64 / (1u64 << 53) as f64 * 2.0 - 1.0
        }
    }

    fn dense_from(n: usize, pattern: &SparsityPattern, re: &[f64], im: &[f64]) -> CMatrix {
        let mut a = CMatrix::zeros(n, n);
        for (e, &(r, c)) in pattern.entries().iter().enumerate() {
            a[(r as usize, c as usize)] = Complex::new(re[e], im[e]);
        }
        a
    }

    #[test]
    fn pattern_sorts_dedups_and_validates() {
        let p = SparsityPattern::new(2, vec![(1, 1), (0, 0), (1, 1)]).unwrap();
        assert_eq!(p.entries(), &[(0, 0), (1, 1)]);
        assert!(SparsityPattern::new(2, vec![(2, 0)]).is_err());
    }

    #[test]
    fn analyze_rejects_empty_pattern() {
        let p = SparsityPattern::new(0, vec![]).unwrap();
        assert!(SymbolicPlan::analyze(&p).is_err());
    }

    #[test]
    fn tridiagonal_pattern_has_zero_fill() {
        let n = 6;
        let mut pos = Vec::new();
        for i in 0..n {
            pos.push((i, i));
            if i + 1 < n {
                pos.push((i, i + 1));
                pos.push((i + 1, i));
            }
        }
        let plan = SymbolicPlan::analyze(&SparsityPattern::new(n, pos).unwrap()).unwrap();
        assert_eq!(plan.fill(), 0, "tridiagonal elimination fills nothing");
    }

    #[test]
    fn markowitz_avoids_arrow_matrix_fill() {
        // Dense first row and column ("arrow"): natural order fills the
        // whole trailing block, leaf-first order fills nothing.
        let n = 6;
        let mut pos = vec![(0usize, 0usize)];
        for i in 1..n {
            pos.push((0, i));
            pos.push((i, 0));
            pos.push((i, i));
        }
        let plan = SymbolicPlan::analyze(&SparsityPattern::new(n, pos).unwrap()).unwrap();
        assert_eq!(plan.fill(), 0, "leaf-first elimination fills nothing");
        assert_ne!(plan.perm[0], 0, "hub must not be eliminated first");
    }

    #[test]
    fn batch_matches_dense_reference() {
        let n = 5;
        let nf = 7;
        let mut rng = Rng(0x5EED_CAFE_F00D_0001);
        // ~60% off-diagonal density plus the full diagonal.
        let mut pos: Vec<(usize, usize)> = (0..n).map(|d| (d, d)).collect();
        for r in 0..n {
            for c in 0..n {
                if r != c && rng.next_f64() > -0.2 {
                    pos.push((r, c));
                }
            }
        }
        let pattern = SparsityPattern::new(n, pos).unwrap();
        let plan = SymbolicPlan::analyze(&pattern).unwrap();
        let mut buf = plan.buffers();
        plan.ensure_batch(&mut buf, nf);

        // Per-lane values: mildly diagonally boosted so static pivoting is
        // representative of MNA systems (gate correctness for hard cases
        // is exercised separately below).
        let mut lane_re = vec![vec![0.0; pattern.nnz()]; nf];
        let mut lane_im = vec![vec![0.0; pattern.nnz()]; nf];
        for f in 0..nf {
            for (e, &(r, c)) in pattern.entries().iter().enumerate() {
                let boost = if r == c { 2.5 } else { 0.0 };
                lane_re[f][e] = rng.next_f64() + boost;
                lane_im[f][e] = rng.next_f64();
                buf.a_re[e * nf + f] = lane_re[f][e];
                buf.a_im[e * nf + f] = lane_im[f][e];
            }
        }
        let mut lane_b = vec![vec![Complex::ZERO; n]; nf];
        for (f, lane) in lane_b.iter_mut().enumerate() {
            for (r, b) in lane.iter_mut().enumerate() {
                *b = Complex::new(rng.next_f64(), rng.next_f64());
                buf.rhs_re[r * nf + f] = b.re;
                buf.rhs_im[r * nf + f] = b.im;
            }
        }

        plan.factor(&mut buf, nf);
        plan.solve_gated(&mut buf, nf);
        for f in 0..nf {
            assert!(!buf.bad[f], "lane {f} failed the gate");
            let a = dense_from(n, &pattern, &lane_re[f], &lane_im[f]);
            let want = solve_complex(&a, &lane_b[f]).unwrap();
            for (r, &w) in want.iter().enumerate() {
                let got = plan.solution(&buf, nf, r, f);
                let scale = w.abs().max(1.0);
                assert!(
                    (got - w).abs() / scale < 1e-12,
                    "lane {f} row {r}: got {got} want {w}"
                );
            }
        }
    }

    #[test]
    fn buffers_grow_monotonically_and_rechunk() {
        // One allocation at the widest batch; narrower batches reuse it
        // and produce identical answers.
        let pattern = SparsityPattern::new(2, vec![(0, 0), (0, 1), (1, 0), (1, 1)]).unwrap();
        let plan = SymbolicPlan::analyze(&pattern).unwrap();
        let mut buf = plan.buffers();
        plan.ensure_batch(&mut buf, 4);
        let cap = buf.a_re.capacity();
        plan.ensure_batch(&mut buf, 2);
        assert_eq!(buf.a_re.capacity(), cap);

        for (e, v) in [3.0, 1.0, 1.0, 2.0].into_iter().enumerate() {
            buf.a_re[e * 4] = v;
        }
        buf.rhs_re[0] = 4.0; // b = [4, 3] → x = [1, 1]
        buf.rhs_re[4] = 3.0;
        plan.factor(&mut buf, 4);
        plan.solve_gated(&mut buf, 4);
        assert!(!buf.bad[0]);
        assert!((plan.solution(&buf, 4, 0, 0) - Complex::ONE).abs() < 1e-12);
        assert!((plan.solution(&buf, 4, 1, 0) - Complex::ONE).abs() < 1e-12);
    }

    #[test]
    fn numerically_zero_pivot_is_flagged_not_panicked() {
        // Structurally full diagonal, numerically zero entry: the static
        // order hits a zero pivot, lanes go non-finite, the gate flags
        // them — and healthy lanes in the same batch stay good.
        let pattern = SparsityPattern::new(2, vec![(0, 0), (1, 1)]).unwrap();
        let plan = SymbolicPlan::analyze(&pattern).unwrap();
        let nf = 2;
        let mut buf = plan.buffers();
        plan.ensure_batch(&mut buf, nf);
        buf.a_re[0] = 0.0; // lane 0: singular
        buf.a_re[1] = 2.0; // lane 1: fine
        buf.a_re[nf] = 1.0;
        buf.a_re[nf + 1] = 1.0;
        buf.rhs_re[0] = 1.0;
        buf.rhs_re[1] = 4.0;
        buf.rhs_re[nf] = 1.0;
        buf.rhs_re[nf + 1] = 3.0;
        plan.factor(&mut buf, nf);
        plan.solve_gated(&mut buf, nf);
        assert!(buf.bad[0], "zero pivot must fail the gate");
        assert!(!buf.bad[1], "healthy lane must survive");
        assert!((plan.solution(&buf, nf, 0, 1) - Complex::new(2.0, 0.0)).abs() < 1e-12);
        assert!((plan.solution(&buf, nf, 1, 1) - Complex::new(3.0, 0.0)).abs() < 1e-12);
    }

    #[test]
    fn rank_deficient_system_is_flagged() {
        let pattern = SparsityPattern::new(2, vec![(0, 0), (0, 1), (1, 0), (1, 1)]).unwrap();
        let plan = SymbolicPlan::analyze(&pattern).unwrap();
        let mut buf = plan.buffers();
        plan.ensure_batch(&mut buf, 1);
        // [[1, 2], [2, 4]] — rank one.
        for (e, v) in [1.0, 2.0, 2.0, 4.0].into_iter().enumerate() {
            buf.a_re[e] = v;
        }
        buf.rhs_re[0] = 1.0;
        buf.rhs_re[1] = 1.0;
        plan.factor(&mut buf, 1);
        plan.solve_gated(&mut buf, 1);
        assert!(buf.bad[0]);
    }

    #[test]
    fn zero_rhs_yields_zero_solution_and_passes_gate() {
        let pattern = SparsityPattern::new(2, vec![(0, 0), (1, 1)]).unwrap();
        let plan = SymbolicPlan::analyze(&pattern).unwrap();
        let mut buf = plan.buffers();
        plan.ensure_batch(&mut buf, 1);
        buf.a_re[0] = 3.0;
        buf.a_re[1] = 5.0;
        plan.factor(&mut buf, 1);
        plan.solve_gated(&mut buf, 1);
        assert!(!buf.bad[0]);
        assert_eq!(plan.solution(&buf, 1, 0, 0), Complex::ZERO);
        assert_eq!(plan.solution(&buf, 1, 1, 0), Complex::ZERO);
    }

    #[test]
    fn plan_is_reusable_across_value_sets() {
        // The same plan refactored with different values must not leak
        // state between factorizations.
        let pattern = SparsityPattern::new(2, vec![(0, 0), (0, 1), (1, 0), (1, 1)]).unwrap();
        let plan = SymbolicPlan::analyze(&pattern).unwrap();
        let mut buf = plan.buffers();
        plan.ensure_batch(&mut buf, 1);
        for scale in [1.0, 7.0] {
            for (e, v) in [3.0, 1.0, 1.0, 2.0].into_iter().enumerate() {
                buf.a_re[e] = scale * v;
                buf.a_im[e] = 0.0;
            }
            buf.rhs_re[0] = scale * 4.0;
            buf.rhs_re[1] = scale * 3.0;
            plan.factor(&mut buf, 1);
            plan.solve_gated(&mut buf, 1);
            assert!(!buf.bad[0], "scale {scale}");
            assert!(
                (plan.solution(&buf, 1, 0, 0) - Complex::ONE).abs() < 1e-12,
                "scale {scale}"
            );
        }
    }
}
