//! A minimal double-precision complex number type.
//!
//! The AC small-signal analysis in [`oa-sim`] requires complex arithmetic for
//! the admittance matrix (conductances are real, susceptances `jωC`
//! imaginary). The workspace deliberately avoids external numeric crates, so
//! this module provides the small slice of complex arithmetic the simulator
//! and solver need.
//!
//! [`oa-sim`]: https://example.invalid/into-oa

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};

/// A complex number with `f64` real and imaginary parts.
///
/// # Examples
///
/// ```
/// use oa_linalg::Complex;
///
/// let z = Complex::new(3.0, 4.0);
/// assert_eq!(z.abs(), 5.0);
/// assert_eq!((z * z.conj()).re, 25.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Complex {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Complex {
    /// The additive identity `0 + 0i`.
    pub const ZERO: Complex = Complex { re: 0.0, im: 0.0 };
    /// The multiplicative identity `1 + 0i`.
    pub const ONE: Complex = Complex { re: 1.0, im: 0.0 };
    /// The imaginary unit `0 + 1i`.
    pub const I: Complex = Complex { re: 0.0, im: 1.0 };

    /// Creates a complex number from real and imaginary parts.
    #[inline]
    pub const fn new(re: f64, im: f64) -> Self {
        Complex { re, im }
    }

    /// Creates a purely real complex number.
    ///
    /// # Examples
    ///
    /// ```
    /// use oa_linalg::Complex;
    /// assert_eq!(Complex::from_re(2.0), Complex::new(2.0, 0.0));
    /// ```
    #[inline]
    pub const fn from_re(re: f64) -> Self {
        Complex { re, im: 0.0 }
    }

    /// Complex conjugate.
    #[inline]
    pub fn conj(self) -> Self {
        Complex::new(self.re, -self.im)
    }

    /// Magnitude (absolute value), computed with [`f64::hypot`] to avoid
    /// overflow for large components.
    #[inline]
    pub fn abs(self) -> f64 {
        self.re.hypot(self.im)
    }

    /// Squared magnitude `re² + im²`.
    #[inline(always)]
    pub fn norm_sqr(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Principal argument in radians, in `(-π, π]`.
    #[inline]
    pub fn arg(self) -> f64 {
        self.im.atan2(self.re)
    }

    /// Multiplicative inverse `1/z`.
    ///
    /// Returns non-finite components when `self` is zero, mirroring `1.0/0.0`
    /// semantics for `f64`.
    #[inline(always)]
    pub fn recip(self) -> Self {
        let d = self.norm_sqr();
        Complex::new(self.re / d, -self.im / d)
    }

    /// Returns `true` if both components are finite.
    #[inline]
    pub fn is_finite(self) -> bool {
        self.re.is_finite() && self.im.is_finite()
    }

    /// Scales by a real factor.
    #[inline]
    pub fn scale(self, k: f64) -> Self {
        Complex::new(self.re * k, self.im * k)
    }
}

impl From<f64> for Complex {
    fn from(re: f64) -> Self {
        Complex::from_re(re)
    }
}

impl fmt::Display for Complex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.im >= 0.0 {
            write!(f, "{}+{}i", self.re, self.im)
        } else {
            write!(f, "{}{}i", self.re, self.im)
        }
    }
}

impl Add for Complex {
    type Output = Complex;
    #[inline(always)]
    fn add(self, rhs: Complex) -> Complex {
        Complex::new(self.re + rhs.re, self.im + rhs.im)
    }
}

impl Sub for Complex {
    type Output = Complex;
    #[inline(always)]
    fn sub(self, rhs: Complex) -> Complex {
        Complex::new(self.re - rhs.re, self.im - rhs.im)
    }
}

impl Mul for Complex {
    type Output = Complex;
    #[inline(always)]
    fn mul(self, rhs: Complex) -> Complex {
        Complex::new(
            self.re * rhs.re - self.im * rhs.im,
            self.re * rhs.im + self.im * rhs.re,
        )
    }
}

impl Div for Complex {
    type Output = Complex;
    #[inline]
    fn div(self, rhs: Complex) -> Complex {
        // Smith's algorithm for numerically robust complex division.
        if rhs.re.abs() >= rhs.im.abs() {
            let r = rhs.im / rhs.re;
            let d = rhs.re + rhs.im * r;
            Complex::new((self.re + self.im * r) / d, (self.im - self.re * r) / d)
        } else {
            let r = rhs.re / rhs.im;
            let d = rhs.re * r + rhs.im;
            Complex::new((self.re * r + self.im) / d, (self.im * r - self.re) / d)
        }
    }
}

impl Neg for Complex {
    type Output = Complex;
    #[inline]
    fn neg(self) -> Complex {
        Complex::new(-self.re, -self.im)
    }
}

impl AddAssign for Complex {
    #[inline(always)]
    fn add_assign(&mut self, rhs: Complex) {
        *self = *self + rhs;
    }
}

impl SubAssign for Complex {
    #[inline(always)]
    fn sub_assign(&mut self, rhs: Complex) {
        *self = *self - rhs;
    }
}

impl MulAssign for Complex {
    #[inline]
    fn mul_assign(&mut self, rhs: Complex) {
        *self = *self * rhs;
    }
}

impl DivAssign for Complex {
    #[inline]
    fn div_assign(&mut self, rhs: Complex) {
        *self = *self / rhs;
    }
}

impl Mul<f64> for Complex {
    type Output = Complex;
    #[inline]
    fn mul(self, rhs: f64) -> Complex {
        self.scale(rhs)
    }
}

impl Mul<Complex> for f64 {
    type Output = Complex;
    #[inline]
    fn mul(self, rhs: Complex) -> Complex {
        rhs.scale(self)
    }
}

impl Sum for Complex {
    fn sum<I: Iterator<Item = Complex>>(iter: I) -> Complex {
        iter.fold(Complex::ZERO, |a, b| a + b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: Complex, b: Complex) -> bool {
        (a - b).abs() < 1e-12
    }

    #[test]
    fn arithmetic_identities() {
        let z = Complex::new(2.0, -3.0);
        assert!(close(z + Complex::ZERO, z));
        assert!(close(z * Complex::ONE, z));
        assert!(close(z - z, Complex::ZERO));
        assert!(close(z * z.recip(), Complex::ONE));
    }

    #[test]
    fn i_squared_is_minus_one() {
        assert!(close(Complex::I * Complex::I, Complex::new(-1.0, 0.0)));
    }

    #[test]
    fn division_matches_multiplication_by_reciprocal() {
        let a = Complex::new(1.5, -2.5);
        let b = Complex::new(-0.25, 4.0);
        assert!(close(a / b, a * b.recip()));
    }

    #[test]
    fn division_is_robust_to_scale() {
        // Components near overflow should not produce infinities with Smith's
        // algorithm.
        let a = Complex::new(1e300, 1e300);
        let b = Complex::new(2e300, 1e300);
        let q = a / b;
        assert!(q.is_finite());
        assert!((q.re - 0.6).abs() < 1e-12);
        assert!((q.im - 0.2).abs() < 1e-12);
    }

    #[test]
    fn polar_quantities() {
        let z = Complex::new(0.0, 2.0);
        assert!((z.arg() - std::f64::consts::FRAC_PI_2).abs() < 1e-15);
        assert_eq!(z.abs(), 2.0);
        assert_eq!(z.norm_sqr(), 4.0);
    }

    #[test]
    fn conjugate_flips_imaginary_sign() {
        let z = Complex::new(1.0, 7.0);
        assert_eq!(z.conj(), Complex::new(1.0, -7.0));
        assert!(close(z * z.conj(), Complex::from_re(z.norm_sqr())));
    }

    #[test]
    fn display_formats_sign() {
        assert_eq!(Complex::new(1.0, 2.0).to_string(), "1+2i");
        assert_eq!(Complex::new(1.0, -2.0).to_string(), "1-2i");
    }

    #[test]
    fn sum_of_iterator() {
        let s: Complex = (1..=3).map(|k| Complex::new(k as f64, -(k as f64))).sum();
        assert!(close(s, Complex::new(6.0, -6.0)));
    }
}
