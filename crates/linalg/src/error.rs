//! Error type for the linear-algebra substrate.

use std::error::Error;
use std::fmt;

/// Errors produced by factorizations and solvers in this crate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LinalgError {
    /// The operation requires a square matrix.
    NotSquare {
        /// Row count of the offending matrix.
        rows: usize,
        /// Column count of the offending matrix.
        cols: usize,
    },
    /// A pivot vanished during LU elimination; the matrix is singular to
    /// working precision.
    Singular {
        /// Elimination step at which the zero pivot appeared.
        pivot: usize,
    },
    /// A Cholesky pivot was not strictly positive; the matrix is not
    /// positive definite.
    NotPositiveDefinite {
        /// Elimination step at which the non-positive pivot appeared.
        pivot: usize,
    },
    /// A vector length does not match the matrix dimension.
    DimensionMismatch {
        /// Expected length.
        expected: usize,
        /// Provided length.
        found: usize,
    },
}

impl fmt::Display for LinalgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LinalgError::NotSquare { rows, cols } => {
                write!(f, "matrix is not square ({rows}x{cols})")
            }
            LinalgError::Singular { pivot } => {
                write!(f, "matrix is singular at elimination step {pivot}")
            }
            LinalgError::NotPositiveDefinite { pivot } => {
                write!(f, "matrix is not positive definite at pivot {pivot}")
            }
            LinalgError::DimensionMismatch { expected, found } => {
                write!(f, "dimension mismatch: expected {expected}, found {found}")
            }
        }
    }
}

impl Error for LinalgError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_informative() {
        let msgs = [
            LinalgError::NotSquare { rows: 2, cols: 3 }.to_string(),
            LinalgError::Singular { pivot: 1 }.to_string(),
            LinalgError::NotPositiveDefinite { pivot: 0 }.to_string(),
            LinalgError::DimensionMismatch {
                expected: 4,
                found: 2,
            }
            .to_string(),
        ];
        for m in msgs {
            assert!(!m.is_empty());
            assert!(m.chars().next().unwrap().is_lowercase());
            assert!(!m.ends_with('.'));
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<LinalgError>();
    }
}
