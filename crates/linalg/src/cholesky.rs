//! Cholesky factorization of real symmetric positive-definite matrices.
//!
//! Gaussian-process training reduces to factorizing the (jittered) kernel
//! Gram matrix `K + σ²I`. Cholesky gives the solve, the log-determinant for
//! the marginal likelihood, and a cheap positive-definiteness check.

use crate::error::LinalgError;
use crate::matrix::Matrix;

/// A lower-triangular Cholesky factor `L` with `A = L·Lᵀ`.
///
/// # Examples
///
/// ```
/// use oa_linalg::{Cholesky, Matrix};
///
/// # fn main() -> Result<(), oa_linalg::LinalgError> {
/// let a = Matrix::from_rows(2, 2, vec![4.0, 2.0, 2.0, 3.0]);
/// let ch = Cholesky::new(&a)?;
/// let x = ch.solve(&[8.0, 7.0])?;
/// assert!((x[0] - 1.25).abs() < 1e-12);
/// assert!((x[1] - 1.5).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Cholesky {
    l: Matrix,
}

impl Cholesky {
    /// Factorizes the symmetric positive-definite matrix `a`.
    ///
    /// Only the lower triangle of `a` is read, so callers may pass a matrix
    /// whose upper triangle is stale.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::NotSquare`] for rectangular input and
    /// [`LinalgError::NotPositiveDefinite`] when a diagonal pivot is not
    /// strictly positive (the caller should add jitter and retry).
    // The negated comparison is NaN-aware on purpose: a NaN pivot must be
    // treated as "not positive definite", which `pivot <= 0.0` would miss.
    #[allow(clippy::neg_cmp_op_on_partial_ord)]
    pub fn new(a: &Matrix) -> Result<Self, LinalgError> {
        if !a.is_square() {
            return Err(LinalgError::NotSquare {
                rows: a.rows(),
                cols: a.cols(),
            });
        }
        let n = a.rows();
        let mut l = Matrix::zeros(n, n);
        for i in 0..n {
            for j in 0..=i {
                let mut sum = a[(i, j)];
                for k in 0..j {
                    sum -= l[(i, k)] * l[(j, k)];
                }
                if i == j {
                    if !(sum > 0.0) || !sum.is_finite() {
                        return Err(LinalgError::NotPositiveDefinite { pivot: i });
                    }
                    l[(i, j)] = sum.sqrt();
                } else {
                    l[(i, j)] = sum / l[(j, j)];
                }
            }
        }
        Ok(Cholesky { l })
    }

    /// Factorizes `a + jitter·I`, escalating the jitter by ×10 until the
    /// factorization succeeds or `max_tries` is exhausted.
    ///
    /// This is the standard robustification for near-singular GP Gram
    /// matrices (e.g. duplicate training inputs).
    ///
    /// # Errors
    ///
    /// Returns the final [`LinalgError`] if every jitter level fails.
    pub fn new_with_jitter(
        a: &Matrix,
        initial_jitter: f64,
        max_tries: usize,
    ) -> Result<(Self, f64), LinalgError> {
        let mut jitter = initial_jitter;
        let mut last_err = LinalgError::NotPositiveDefinite { pivot: 0 };
        for _ in 0..max_tries.max(1) {
            let mut m = a.clone();
            if jitter > 0.0 {
                m.add_diag(jitter);
            }
            match Cholesky::new(&m) {
                Ok(ch) => return Ok((ch, jitter)),
                Err(e) => {
                    last_err = e;
                    jitter = if jitter == 0.0 { 1e-12 } else { jitter * 10.0 };
                }
            }
        }
        Err(last_err)
    }

    /// Dimension of the factorized system.
    pub fn dim(&self) -> usize {
        self.l.rows()
    }

    /// Borrows the lower-triangular factor `L`.
    pub fn factor(&self) -> &Matrix {
        &self.l
    }

    /// Solves `A·x = b` via `L·y = b`, `Lᵀ·x = y`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] if `b.len() != self.dim()`.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>, LinalgError> {
        let y = self.solve_lower(b)?;
        Ok(self.solve_upper(&y))
    }

    /// Forward substitution `L·y = b`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] if `b.len() != self.dim()`.
    #[allow(clippy::needless_range_loop)] // dual-indexed triangular loops
    pub fn solve_lower(&self, b: &[f64]) -> Result<Vec<f64>, LinalgError> {
        let n = self.dim();
        if b.len() != n {
            return Err(LinalgError::DimensionMismatch {
                expected: n,
                found: b.len(),
            });
        }
        let mut y = vec![0.0; n];
        for i in 0..n {
            let mut acc = b[i];
            for j in 0..i {
                acc -= self.l[(i, j)] * y[j];
            }
            y[i] = acc / self.l[(i, i)];
        }
        Ok(y)
    }

    /// Back substitution `Lᵀ·x = y` (input is consumed by value semantics of
    /// a borrowed slice; result is freshly allocated).
    #[allow(clippy::needless_range_loop)] // dual-indexed triangular loops
    fn solve_upper(&self, y: &[f64]) -> Vec<f64> {
        let n = self.dim();
        let mut x = vec![0.0; n];
        for i in (0..n).rev() {
            let mut acc = y[i];
            for j in (i + 1)..n {
                acc -= self.l[(j, i)] * x[j];
            }
            x[i] = acc / self.l[(i, i)];
        }
        x
    }

    /// `log |A| = 2·Σ log L_ii`, used in the GP marginal likelihood.
    pub fn log_det(&self) -> f64 {
        (0..self.dim()).map(|i| self.l[(i, i)].ln()).sum::<f64>() * 2.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spd3() -> Matrix {
        // A = Bᵀ·B + I for a fixed B is SPD.
        let b = Matrix::from_rows(3, 3, vec![1.0, 2.0, 0.5, -1.0, 0.3, 2.0, 0.7, -0.2, 1.1]);
        let mut a = b.transpose().mat_mul(&b);
        a.add_diag(1.0);
        a
    }

    #[test]
    fn reconstructs_input() {
        let a = spd3();
        let ch = Cholesky::new(&a).unwrap();
        let l = ch.factor();
        let rec = l.mat_mul(&l.transpose());
        for i in 0..3 {
            for j in 0..3 {
                assert!((rec[(i, j)] - a[(i, j)]).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn solve_gives_exact_residual() {
        let a = spd3();
        let ch = Cholesky::new(&a).unwrap();
        let b = vec![1.0, -2.0, 0.5];
        let x = ch.solve(&b).unwrap();
        let r = a.mat_vec(&x);
        for (ri, bi) in r.iter().zip(&b) {
            assert!((ri - bi).abs() < 1e-10);
        }
    }

    #[test]
    fn log_det_matches_known_value() {
        // diag(4, 9) has det 36.
        let a = Matrix::from_rows(2, 2, vec![4.0, 0.0, 0.0, 9.0]);
        let ch = Cholesky::new(&a).unwrap();
        assert!((ch.log_det() - 36.0_f64.ln()).abs() < 1e-12);
    }

    #[test]
    fn rejects_indefinite_matrix() {
        let a = Matrix::from_rows(2, 2, vec![1.0, 2.0, 2.0, 1.0]);
        assert!(matches!(
            Cholesky::new(&a),
            Err(LinalgError::NotPositiveDefinite { .. })
        ));
    }

    #[test]
    fn jitter_rescues_rank_deficient_matrix() {
        // Rank-1 Gram matrix (duplicate GP inputs).
        let a = Matrix::from_rows(2, 2, vec![1.0, 1.0, 1.0, 1.0]);
        let (ch, jitter) = Cholesky::new_with_jitter(&a, 1e-10, 12).unwrap();
        assert!(jitter > 0.0);
        assert_eq!(ch.dim(), 2);
    }

    #[test]
    fn rejects_rectangular() {
        let a = Matrix::zeros(2, 3);
        assert!(matches!(
            Cholesky::new(&a),
            Err(LinalgError::NotSquare { .. })
        ));
    }
}
