//! Behavior-level process constants.
//!
//! The paper sizes behavioral elements (`gm`, `R`, `C`) directly; parasitic
//! output resistance `Ro` and capacitance `Co` of each transconductor, the
//! supply voltage, and the current efficiency are fixed by the technology.
//! These constants stand in for the authors' 180 nm-class process (see
//! DESIGN.md §2): they are synthetic but physically shaped, which preserves
//! every qualitative trade-off the optimizer exploits (gain vs. power,
//! bandwidth vs. stability, parasitic pole positions).

/// Technology constants used when elaborating behavioral netlists.
///
/// # Examples
///
/// ```
/// use oa_circuit::Process;
///
/// let p = Process::default();
/// assert_eq!(p.vdd, 1.8); // the paper's supply voltage
/// let gm = 100e-6;
/// assert!(p.output_resistance(gm) > 0.0);
/// assert!(p.output_capacitance(gm) > 0.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Process {
    /// Supply voltage in volts (paper: 1.8 V).
    pub vdd: f64,
    /// Transconductance efficiency `gm/Id` in 1/V; sets the bias current a
    /// transconductor of a given `gm` costs.
    pub gm_over_id: f64,
    /// Intrinsic voltage gain `gm·Ro` of a single behavioral stage;
    /// `Ro = intrinsic_gain / gm`.
    pub intrinsic_gain: f64,
    /// Parasitic output capacitance slope: `Co = co_floor + gm·parasitic_tau`
    /// (bigger devices ⇒ bigger parasitics).
    pub parasitic_tau: f64,
    /// Fixed part of the parasitic output capacitance in farads (wiring).
    pub co_floor: f64,
    /// Bandwidth of every behavioral transconductor cell in hertz: the
    /// effective transconductance rolls off as `gm/(1 + j·f/f_t)`. Ideal
    /// VCCS cells (infinite bandwidth) let the optimizer exploit
    /// arbitrarily fast internal paths that no real circuit provides.
    pub gm_ft_hz: f64,
    /// Leak conductance from every node to ground in siemens, the standard
    /// SPICE `GMIN` that keeps the MNA matrix non-singular.
    pub gmin: f64,
}

impl Process {
    /// The default synthetic 180 nm-class process used throughout the
    /// reproduction.
    pub const fn default_180nm() -> Self {
        Process {
            vdd: 1.8,
            gm_over_id: 15.0,
            intrinsic_gain: 80.0,
            parasitic_tau: 100e-12,
            co_floor: 150e-15,
            gm_ft_hz: 20e6,
            gmin: 1e-12,
        }
    }

    /// Parasitic output resistance of a transconductor, `Ro = A0/gm`.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `gm` is not strictly positive.
    pub fn output_resistance(&self, gm: f64) -> f64 {
        debug_assert!(gm > 0.0, "gm must be positive");
        self.intrinsic_gain / gm
    }

    /// Parasitic output capacitance of a transconductor,
    /// `Co = co_floor + gm·τ`.
    pub fn output_capacitance(&self, gm: f64) -> f64 {
        self.co_floor + gm * self.parasitic_tau
    }

    /// Bias current a transconductor of value `gm` costs, `I = gm/(gm/Id)`.
    pub fn bias_current(&self, gm: f64) -> f64 {
        gm / self.gm_over_id
    }

    /// Static power of a set of transconductors, `P = Vdd·ΣI`.
    ///
    /// # Examples
    ///
    /// ```
    /// use oa_circuit::Process;
    /// let p = Process::default();
    /// // One 150 µS transconductor at gm/Id = 15 costs 10 µA → 18 µW.
    /// let w = p.static_power([150e-6]);
    /// assert!((w - 18e-6).abs() < 1e-12);
    /// ```
    pub fn static_power<I: IntoIterator<Item = f64>>(&self, gms: I) -> f64 {
        self.vdd * gms.into_iter().map(|gm| self.bias_current(gm)).sum::<f64>()
    }
}

impl Default for Process {
    fn default() -> Self {
        Process::default_180nm()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parasitic_pole_is_gm_independent_to_first_order() {
        let p = Process::default();
        // 1/(Ro·Co) ≈ 1/(A0·τ) once gm·τ dominates the floor.
        for gm in [2e-3, 5e-3] {
            let pole = 1.0 / (p.output_resistance(gm) * p.output_capacitance(gm));
            let ideal = 1.0 / (p.intrinsic_gain * p.parasitic_tau);
            assert!(pole < ideal);
            assert!(pole > ideal * 0.4, "pole {pole} vs ideal {ideal}");
        }
    }

    #[test]
    fn power_scales_linearly_with_gm() {
        let p = Process::default();
        let w1 = p.static_power([1e-4]);
        let w2 = p.static_power([2e-4]);
        assert!((w2 - 2.0 * w1).abs() < 1e-15);
    }

    #[test]
    fn default_matches_named_constructor() {
        assert_eq!(Process::default(), Process::default_180nm());
    }
}
