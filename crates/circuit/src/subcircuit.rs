//! The 25 variable-subcircuit types of the behavior-level design space.
//!
//! Section II-C of the paper: between a pair of circuit nodes, a *variable
//! subcircuit* can take at most 25 types —
//!
//! * a single `R` or `C` (2 types),
//! * `R` and `C` connected in parallel or in series (2 types),
//! * a transconductor `gm` with two polarities and two directions (4 types),
//! * a `gm` combined with an `R` or a `C`, in parallel or in series
//!   (4 × 4 = 16 types),
//! * no connection (1 type).

use std::fmt;

/// A purely passive subcircuit shape.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum PassiveKind {
    /// A single resistor.
    R,
    /// A single capacitor.
    C,
    /// Resistor and capacitor in parallel.
    ParallelRc,
    /// Resistor and capacitor in series (the paper's `RCs`).
    SeriesRc,
}

impl PassiveKind {
    /// All passive shapes in canonical order.
    pub const ALL: [PassiveKind; 4] = [
        PassiveKind::R,
        PassiveKind::C,
        PassiveKind::ParallelRc,
        PassiveKind::SeriesRc,
    ];

    /// Short mnemonic matching the paper's notation (`RCs` = series RC).
    pub fn mnemonic(self) -> &'static str {
        match self {
            PassiveKind::R => "R",
            PassiveKind::C => "C",
            PassiveKind::ParallelRc => "RCp",
            PassiveKind::SeriesRc => "RCs",
        }
    }

    /// Number of tunable device parameters of this shape.
    pub fn param_count(self) -> usize {
        match self {
            PassiveKind::R | PassiveKind::C => 1,
            PassiveKind::ParallelRc | PassiveKind::SeriesRc => 2,
        }
    }
}

/// Transconductor polarity: the sign of the controlled current.
///
/// A `Minus` transconductor realizes an inverting behavioral stage
/// (`i_out = -gm·v_ctrl`), a `Plus` one a non-inverting stage.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum GmPolarity {
    /// Non-inverting: `i_out = +gm·v_ctrl`.
    Plus,
    /// Inverting: `i_out = -gm·v_ctrl`.
    Minus,
}

impl GmPolarity {
    /// Both polarities in canonical order.
    pub const ALL: [GmPolarity; 2] = [GmPolarity::Plus, GmPolarity::Minus];

    /// Signed multiplier (+1.0 or -1.0) for netlist stamping.
    pub fn sign(self) -> f64 {
        match self {
            GmPolarity::Plus => 1.0,
            GmPolarity::Minus => -1.0,
        }
    }

    /// `"+"` or `"-"`, matching the paper's `±gm` notation.
    pub fn symbol(self) -> &'static str {
        match self {
            GmPolarity::Plus => "+",
            GmPolarity::Minus => "-",
        }
    }
}

/// Transconductor direction across the (ordered) pair of edge endpoints.
///
/// Every [`crate::VariableEdge`] has a canonical `(first, second)` endpoint
/// order; `Forward` senses the voltage at `first` and drives current into
/// `second`, `Reverse` the opposite. Feedforward paths are `Forward`,
/// feedback paths `Reverse`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum GmDirection {
    /// Control at the first endpoint, output at the second.
    Forward,
    /// Control at the second endpoint, output at the first.
    Reverse,
}

impl GmDirection {
    /// Both directions in canonical order.
    pub const ALL: [GmDirection; 2] = [GmDirection::Forward, GmDirection::Reverse];
}

/// How a passive element is combined with a transconductor.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum GmComposite {
    /// Just the transconductor.
    Bare,
    /// Resistor in parallel with the transconductor.
    ParallelR,
    /// Resistor in series with the transconductor output (the paper's
    /// `gmRs`).
    SeriesR,
    /// Capacitor in parallel with the transconductor.
    ParallelC,
    /// Capacitor in series with the transconductor output.
    SeriesC,
}

impl GmComposite {
    /// All composite shapes in canonical order.
    pub const ALL: [GmComposite; 5] = [
        GmComposite::Bare,
        GmComposite::ParallelR,
        GmComposite::SeriesR,
        GmComposite::ParallelC,
        GmComposite::SeriesC,
    ];

    /// Suffix used in the mnemonic (`""`, `"Rp"`, `"Rs"`, `"Cp"`, `"Cs"`).
    pub fn suffix(self) -> &'static str {
        match self {
            GmComposite::Bare => "",
            GmComposite::ParallelR => "Rp",
            GmComposite::SeriesR => "Rs",
            GmComposite::ParallelC => "Cp",
            GmComposite::SeriesC => "Cs",
        }
    }

    /// Number of tunable parameters contributed by the passive companion.
    pub fn extra_param_count(self) -> usize {
        match self {
            GmComposite::Bare => 0,
            _ => 1,
        }
    }
}

/// One of the 25 variable-subcircuit types.
///
/// # Examples
///
/// ```
/// use oa_circuit::SubcircuitType;
///
/// assert_eq!(SubcircuitType::catalog().len(), 25);
/// let nc = SubcircuitType::NoConn;
/// assert!(nc.is_no_conn());
/// assert_eq!(nc.param_count(), 0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum SubcircuitType {
    /// No connection between the node pair.
    NoConn,
    /// A purely passive subcircuit.
    Passive(PassiveKind),
    /// A transconductor, optionally combined with a passive element.
    Gm {
        /// Sign of the controlled current.
        polarity: GmPolarity,
        /// Which endpoint is sensed and which is driven.
        direction: GmDirection,
        /// Companion passive element, if any.
        composite: GmComposite,
    },
}

impl SubcircuitType {
    /// The full catalog of 25 types in canonical order (`NoConn` first,
    /// then passives, then transconductor composites).
    pub fn catalog() -> Vec<SubcircuitType> {
        let mut v = Vec::with_capacity(25);
        v.push(SubcircuitType::NoConn);
        for p in PassiveKind::ALL {
            v.push(SubcircuitType::Passive(p));
        }
        for polarity in GmPolarity::ALL {
            for direction in GmDirection::ALL {
                for composite in GmComposite::ALL {
                    v.push(SubcircuitType::Gm {
                        polarity,
                        direction,
                        composite,
                    });
                }
            }
        }
        v
    }

    /// Returns `true` for the "no connection" type.
    pub fn is_no_conn(self) -> bool {
        matches!(self, SubcircuitType::NoConn)
    }

    /// Returns `true` if the subcircuit contains a transconductor.
    pub fn has_gm(self) -> bool {
        matches!(self, SubcircuitType::Gm { .. })
    }

    /// Number of tunable device parameters (resistances, capacitances,
    /// transconductances) of this type.
    pub fn param_count(self) -> usize {
        match self {
            SubcircuitType::NoConn => 0,
            SubcircuitType::Passive(p) => p.param_count(),
            SubcircuitType::Gm { composite, .. } => 1 + composite.extra_param_count(),
        }
    }

    /// A compact, stable mnemonic. This string doubles as the graph-node
    /// label in `oa-graph`, so it must be unique per type.
    ///
    /// Examples: `"NC"`, `"RCs"`, `"-gmRs>"` (forward inverting gm with
    /// series R), `"+gm<"` (reverse non-inverting gm).
    pub fn mnemonic(self) -> String {
        match self {
            SubcircuitType::NoConn => "NC".to_owned(),
            SubcircuitType::Passive(p) => p.mnemonic().to_owned(),
            SubcircuitType::Gm {
                polarity,
                direction,
                composite,
            } => {
                let arrow = match direction {
                    GmDirection::Forward => ">",
                    GmDirection::Reverse => "<",
                };
                format!("{}gm{}{}", polarity.symbol(), composite.suffix(), arrow)
            }
        }
    }
}

impl fmt::Display for SubcircuitType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.mnemonic())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn catalog_has_25_unique_types() {
        let cat = SubcircuitType::catalog();
        assert_eq!(cat.len(), 25);
        let set: HashSet<_> = cat.iter().copied().collect();
        assert_eq!(set.len(), 25);
    }

    #[test]
    fn mnemonics_are_unique() {
        let cat = SubcircuitType::catalog();
        let set: HashSet<_> = cat.iter().map(|t| t.mnemonic()).collect();
        assert_eq!(set.len(), 25);
    }

    #[test]
    fn catalog_type_breakdown_matches_paper() {
        let cat = SubcircuitType::catalog();
        let no_conn = cat.iter().filter(|t| t.is_no_conn()).count();
        let passive = cat
            .iter()
            .filter(|t| matches!(t, SubcircuitType::Passive(_)))
            .count();
        let bare_gm = cat
            .iter()
            .filter(|t| {
                matches!(
                    t,
                    SubcircuitType::Gm {
                        composite: GmComposite::Bare,
                        ..
                    }
                )
            })
            .count();
        let gm_with_passive = cat
            .iter()
            .filter(|t| t.has_gm() && t.param_count() == 2)
            .count();
        assert_eq!(no_conn, 1);
        assert_eq!(passive, 4);
        assert_eq!(bare_gm, 4);
        assert_eq!(gm_with_passive, 16);
    }

    #[test]
    fn param_counts() {
        assert_eq!(SubcircuitType::NoConn.param_count(), 0);
        assert_eq!(SubcircuitType::Passive(PassiveKind::R).param_count(), 1);
        assert_eq!(
            SubcircuitType::Passive(PassiveKind::SeriesRc).param_count(),
            2
        );
        assert_eq!(
            SubcircuitType::Gm {
                polarity: GmPolarity::Minus,
                direction: GmDirection::Forward,
                composite: GmComposite::SeriesR,
            }
            .param_count(),
            2
        );
    }

    #[test]
    fn mnemonic_examples_match_paper_notation() {
        let neg_gm_rs = SubcircuitType::Gm {
            polarity: GmPolarity::Minus,
            direction: GmDirection::Forward,
            composite: GmComposite::SeriesR,
        };
        assert_eq!(neg_gm_rs.mnemonic(), "-gmRs>");
        assert_eq!(
            SubcircuitType::Passive(PassiveKind::SeriesRc).mnemonic(),
            "RCs"
        );
    }
}
