//! SPICE-deck export for netlists.
//!
//! The reproduction's own simulator (`oa-sim`) consumes [`Netlist`]
//! directly, but a downstream user will want to re-verify designs in a
//! production SPICE engine. [`Netlist::to_spice`] emits a standard `.AC`
//! deck: `R`/`C`/`G` cards over named nodes, the unit AC source on the
//! input, and a band-limited transconductor macro (a `G` element driving an
//! internal RC pole) for cells with finite `f_t`.

use crate::netlist::{Element, Netlist};
use std::fmt::Write as _;

impl Netlist {
    /// Renders the netlist as a SPICE `.AC` deck.
    ///
    /// Band-limited VCCS elements are expanded into the standard two-stage
    /// macro (unit-gain pole stage feeding an ideal VCCS) so the deck works
    /// in any SPICE dialect without behavioral sources.
    ///
    /// # Examples
    ///
    /// ```
    /// use oa_circuit::{NetlistBuilder, NodeId};
    ///
    /// let mut b = NetlistBuilder::new();
    /// let inp = b.add_node("in");
    /// let out = b.add_node("out");
    /// b.resistor(inp, out, 1e3);
    /// b.capacitor(out, NodeId::GROUND, 1e-9);
    /// let deck = b.build(inp, out).to_spice("rc lowpass");
    /// assert!(deck.contains(".ac dec"));
    /// assert!(deck.contains("vin in 0 dc 0 ac 1"));
    /// ```
    pub fn to_spice(&self, title: &str) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "* {title}");
        let _ = writeln!(
            out,
            "* exported by into-oa; {} nodes, {} elements, static power {:.3e} W",
            self.node_count(),
            self.elements().len(),
            self.static_power()
        );
        let node = |id| {
            let name = self.node_name(id);
            if name == "gnd" {
                "0".to_owned()
            } else {
                name.replace(' ', "_")
            }
        };

        let mut r_idx = 0usize;
        let mut c_idx = 0usize;
        let mut g_idx = 0usize;
        for e in self.elements() {
            match *e {
                Element::Resistor { a, b, ohms } => {
                    r_idx += 1;
                    let _ = writeln!(out, "r{} {} {} {:.6e}", r_idx, node(a), node(b), ohms);
                }
                Element::Capacitor { a, b, farads } => {
                    c_idx += 1;
                    let _ = writeln!(out, "c{} {} {} {:.6e}", c_idx, node(a), node(b), farads);
                }
                Element::Vccs {
                    ctrl_p,
                    ctrl_n,
                    out_p,
                    out_n,
                    gm,
                    ft_hz,
                } => {
                    g_idx += 1;
                    match ft_hz {
                        None => {
                            let _ = writeln!(
                                out,
                                "g{} {} {} {} {} {:.6e}",
                                g_idx,
                                node(out_p),
                                node(out_n),
                                node(ctrl_p),
                                node(ctrl_n),
                                gm
                            );
                        }
                        Some(ft) => {
                            // Pole macro: unit-gm stage into 1Ω ∥ C with
                            // RC = 1/(2π·f_t), then the ideal output VCCS
                            // sensing the internal node.
                            let cpole = 1.0 / (2.0 * std::f64::consts::PI * ft);
                            let _ = writeln!(
                                out,
                                "gp{g_idx} xg{g_idx} 0 {} {} -1.0",
                                node(ctrl_p),
                                node(ctrl_n)
                            );
                            let _ = writeln!(out, "rp{g_idx} xg{g_idx} 0 1.0");
                            let _ = writeln!(out, "cp{g_idx} xg{g_idx} 0 {cpole:.6e}");
                            let _ = writeln!(
                                out,
                                "g{} {} {} xg{} 0 {:.6e}",
                                g_idx,
                                node(out_p),
                                node(out_n),
                                g_idx,
                                gm
                            );
                        }
                    }
                }
            }
        }
        let _ = writeln!(out, "vin {} 0 dc 0 ac 1", node(self.input()));
        let _ = writeln!(out, ".ac dec 20 1e-2 1e10");
        let _ = writeln!(out, ".print ac v({})", node(self.output()));
        let _ = writeln!(out, ".end");
        out
    }
}

#[cfg(test)]
mod tests {
    use crate::{elaborate, NetlistBuilder, NodeId, ParamSpace, Process, Topology};

    #[test]
    fn deck_contains_all_elements_and_directives() {
        let t = Topology::bare_cascade();
        let space = ParamSpace::for_topology(&t);
        let n = elaborate(&t, &space.nominal(), &Process::default(), 10e-12).unwrap();
        let deck = n.to_spice("bare cascade");
        // 3 band-limited stages → 3 pole macros with 4 cards each.
        assert_eq!(deck.matches("\ngp").count(), 3);
        assert_eq!(deck.matches("\nrp").count(), 3);
        assert!(deck.contains(".ac dec"));
        assert!(deck.contains(".end"));
        assert!(deck.contains("v(vout)"));
        // Ground is node 0, never named "gnd".
        assert!(!deck.contains(" gnd "));
    }

    #[test]
    fn ideal_vccs_exports_single_g_card() {
        let mut b = NetlistBuilder::new();
        let inp = b.add_node("in");
        let out = b.add_node("out");
        b.inject_gm(inp, out, -2e-3);
        b.resistor(out, NodeId::GROUND, 1e4);
        let deck = b.build(inp, out).to_spice("one stage");
        assert!(
            deck.contains("g1 0 out in 0 -2.000000e-3")
                || deck.contains("g1 0 out in 0 -2e-3")
                || deck.contains("g1 0 out in 0 -2.000000e-3".replace("e-3", "e-03").as_str()),
            "deck was:\n{deck}"
        );
        assert!(!deck.contains("gp1"));
    }

    #[test]
    fn pole_macro_time_constant_matches_ft() {
        let mut b = NetlistBuilder::new();
        let inp = b.add_node("in");
        let out = b.add_node("out");
        b.inject_gm_banded(inp, out, 1e-3, 1e6);
        let deck = b.build(inp, out).to_spice("banded");
        // RC = 1/(2π·1e6) ≈ 1.59e-7 with R = 1.
        assert!(
            deck.contains("1.591549e-7") || deck.contains("1.591549e-07"),
            "{deck}"
        );
    }
}
