//! Error type for the design-space crate.

use crate::edge::VariableEdge;
use crate::subcircuit::SubcircuitType;
use std::error::Error;
use std::fmt;

/// Errors produced when constructing or elaborating topologies.
#[derive(Debug, Clone, PartialEq)]
pub enum CircuitError {
    /// A subcircuit type violates the design-space rules for its edge.
    IllegalType {
        /// The edge on which the type was placed.
        edge: VariableEdge,
        /// The offending type.
        ty: SubcircuitType,
    },
    /// A topology index outside `0..DESIGN_SPACE_SIZE`.
    IndexOutOfRange {
        /// The offending index.
        index: usize,
    },
    /// A sizing vector with the wrong number of entries for its topology.
    SizingLengthMismatch {
        /// Number of parameters the topology requires.
        expected: usize,
        /// Number of entries provided.
        found: usize,
    },
    /// A device value outside its physical range (non-positive, NaN, …).
    InvalidDeviceValue {
        /// Human-readable parameter name.
        name: String,
        /// The offending value.
        value: f64,
    },
}

impl fmt::Display for CircuitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CircuitError::IllegalType { edge, ty } => {
                write!(f, "subcircuit type {ty} is not allowed on edge {edge}")
            }
            CircuitError::IndexOutOfRange { index } => {
                write!(f, "topology index {index} is outside the design space")
            }
            CircuitError::SizingLengthMismatch { expected, found } => {
                write!(
                    f,
                    "sizing vector has {found} entries but the topology requires {expected}"
                )
            }
            CircuitError::InvalidDeviceValue { name, value } => {
                write!(f, "device parameter {name} has invalid value {value}")
            }
        }
    }
}

impl Error for CircuitError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_are_informative() {
        let e = CircuitError::IndexOutOfRange { index: 99_999 };
        assert!(e.to_string().contains("99999"));
        let e = CircuitError::SizingLengthMismatch {
            expected: 7,
            found: 3,
        };
        assert!(e.to_string().contains('7') && e.to_string().contains('3'));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<CircuitError>();
    }
}
