//! Tunable device parameters and the per-topology sizing space `S_G`.
//!
//! Each topology `G` induces a continuous parameter space: one `gm` per
//! amplifier stage (always three) plus the device values of every connected
//! variable subcircuit. The sizing optimizer works on the normalized unit
//! cube `[0,1]^d`; [`ParamSpace::decode`] maps it log-uniformly onto the
//! physical ranges.

use crate::edge::VariableEdge;
use crate::error::CircuitError;
use crate::subcircuit::{GmComposite, SubcircuitType};
use crate::topology::Topology;
use std::fmt;

/// The physical kind of one tunable parameter.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ParamKind {
    /// The transconductance of a fixed main amplifier stage. The paper
    /// fixes the three main stages structurally; only their bias may move
    /// inside a narrow design window, so gain, bandwidth and power are
    /// dominated by the topology rather than by sizing freedom.
    StageGm,
    /// The transconductance of a variable subcircuit in siemens.
    Gm,
    /// A resistance in ohms.
    Res,
    /// A capacitance in farads.
    Cap,
}

impl ParamKind {
    /// Physical sizing range `(lo, hi)`; values are drawn log-uniformly.
    pub fn range(self) -> (f64, f64) {
        match self {
            ParamKind::StageGm => (5e-5, 5e-4),
            ParamKind::Gm => (1e-6, 2e-3),
            ParamKind::Res => (1e3, 1e7),
            ParamKind::Cap => (1e-13, 1e-10),
        }
    }

    /// Maps a normalized coordinate in `[0,1]` log-uniformly onto the range.
    /// Inputs outside `[0,1]` are clamped.
    pub fn from_unit(self, x: f64) -> f64 {
        let (lo, hi) = self.range();
        let x = x.clamp(0.0, 1.0);
        (lo.ln() + x * (hi.ln() - lo.ln())).exp()
    }

    /// Inverse of [`ParamKind::from_unit`]; values outside the range clamp
    /// to the cube boundary.
    pub fn to_unit(self, value: f64) -> f64 {
        let (lo, hi) = self.range();
        ((value.ln() - lo.ln()) / (hi.ln() - lo.ln())).clamp(0.0, 1.0)
    }
}

/// What a parameter controls.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ParamTarget {
    /// The transconductance of main stage `0..3`.
    StageGm(usize),
    /// The transconductance of the variable subcircuit on an edge.
    EdgeGm(VariableEdge),
    /// The resistance of the variable subcircuit on an edge.
    EdgeR(VariableEdge),
    /// The capacitance of the variable subcircuit on an edge.
    EdgeC(VariableEdge),
}

/// Description of one tunable parameter.
#[derive(Debug, Clone, PartialEq)]
pub struct ParamDesc {
    /// Human-readable name, e.g. `"gm2"` or `"R(v1-vout)"`.
    pub name: String,
    /// Physical kind (sets the sizing range).
    pub kind: ParamKind,
    /// What the parameter controls.
    pub target: ParamTarget,
}

/// Device values of one variable subcircuit. Which fields are `Some` is
/// dictated by the subcircuit type.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct EdgeValues {
    /// Transconductance in siemens, when the type contains a `gm`.
    pub gm: Option<f64>,
    /// Resistance in ohms, when the type contains an `R`.
    pub r: Option<f64>,
    /// Capacitance in farads, when the type contains a `C`.
    pub c: Option<f64>,
}

/// A complete sizing of one topology: three stage transconductances plus the
/// variable-subcircuit device values.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DeviceValues {
    /// Main-stage transconductances `gm1..gm3` in siemens.
    pub stage_gm: [f64; 3],
    /// Per-edge device values, in [`VariableEdge::ALL`] order.
    pub edges: [EdgeValues; 5],
}

impl DeviceValues {
    /// All transconductances in the design (stages plus variable `gm`s),
    /// used by the power model.
    pub fn all_gms(&self) -> Vec<f64> {
        let mut v: Vec<f64> = self.stage_gm.to_vec();
        v.extend(self.edges.iter().filter_map(|e| e.gm));
        v
    }
}

/// The continuous sizing space induced by a topology.
///
/// # Examples
///
/// ```
/// use oa_circuit::{ParamSpace, Topology};
///
/// # fn main() -> Result<(), oa_circuit::CircuitError> {
/// let t = Topology::bare_cascade();
/// let space = ParamSpace::for_topology(&t);
/// assert_eq!(space.dim(), 3); // just gm1..gm3
/// let v = space.decode(&[0.5, 0.5, 0.5])?;
/// assert!(v.stage_gm.iter().all(|&g| g > 0.0));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ParamSpace {
    topology: Topology,
    params: Vec<ParamDesc>,
}

impl ParamSpace {
    /// Builds the sizing space for `topology`.
    pub fn for_topology(topology: &Topology) -> Self {
        let mut params = Vec::new();
        for i in 0..3 {
            params.push(ParamDesc {
                name: format!("gm{}", i + 1),
                kind: ParamKind::StageGm,
                target: ParamTarget::StageGm(i),
            });
        }
        for edge in VariableEdge::ALL {
            let ty = topology.type_on(edge);
            match ty {
                SubcircuitType::NoConn => {}
                SubcircuitType::Passive(p) => {
                    use crate::subcircuit::PassiveKind as P;
                    if matches!(p, P::R | P::ParallelRc | P::SeriesRc) {
                        params.push(ParamDesc {
                            name: format!("R({edge})"),
                            kind: ParamKind::Res,
                            target: ParamTarget::EdgeR(edge),
                        });
                    }
                    if matches!(p, P::C | P::ParallelRc | P::SeriesRc) {
                        params.push(ParamDesc {
                            name: format!("C({edge})"),
                            kind: ParamKind::Cap,
                            target: ParamTarget::EdgeC(edge),
                        });
                    }
                }
                SubcircuitType::Gm { composite, .. } => {
                    params.push(ParamDesc {
                        name: format!("gm({edge})"),
                        kind: ParamKind::Gm,
                        target: ParamTarget::EdgeGm(edge),
                    });
                    match composite {
                        GmComposite::Bare => {}
                        GmComposite::ParallelR | GmComposite::SeriesR => {
                            params.push(ParamDesc {
                                name: format!("R({edge})"),
                                kind: ParamKind::Res,
                                target: ParamTarget::EdgeR(edge),
                            });
                        }
                        GmComposite::ParallelC | GmComposite::SeriesC => {
                            params.push(ParamDesc {
                                name: format!("C({edge})"),
                                kind: ParamKind::Cap,
                                target: ParamTarget::EdgeC(edge),
                            });
                        }
                    }
                }
            }
        }
        ParamSpace {
            topology: *topology,
            params,
        }
    }

    /// The topology this space belongs to.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// Dimensionality of the sizing cube.
    pub fn dim(&self) -> usize {
        self.params.len()
    }

    /// Descriptions of all parameters, in decode order.
    pub fn params(&self) -> &[ParamDesc] {
        &self.params
    }

    /// Indices (into the sizing vector) of the parameters belonging to the
    /// variable subcircuit on `edge`. Used by topology refinement to resize
    /// only the modified circuit part.
    pub fn indices_for_edge(&self, edge: VariableEdge) -> Vec<usize> {
        self.params
            .iter()
            .enumerate()
            .filter(|(_, p)| {
                matches!(
                    p.target,
                    ParamTarget::EdgeGm(e) | ParamTarget::EdgeR(e) | ParamTarget::EdgeC(e)
                    if e == edge
                )
            })
            .map(|(i, _)| i)
            .collect()
    }

    /// Decodes a normalized sizing vector into physical device values.
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::SizingLengthMismatch`] if `x.len() != dim()`
    /// and [`CircuitError::InvalidDeviceValue`] if any entry is non-finite.
    pub fn decode(&self, x: &[f64]) -> Result<DeviceValues, CircuitError> {
        if x.len() != self.dim() {
            return Err(CircuitError::SizingLengthMismatch {
                expected: self.dim(),
                found: x.len(),
            });
        }
        let mut values = DeviceValues {
            stage_gm: [0.0; 3],
            edges: [EdgeValues::default(); 5],
        };
        for (desc, &xi) in self.params.iter().zip(x) {
            if !xi.is_finite() {
                return Err(CircuitError::InvalidDeviceValue {
                    name: desc.name.clone(),
                    value: xi,
                });
            }
            let value = desc.kind.from_unit(xi);
            match desc.target {
                ParamTarget::StageGm(i) => values.stage_gm[i] = value,
                ParamTarget::EdgeGm(e) => values.edges[e.index()].gm = Some(value),
                ParamTarget::EdgeR(e) => values.edges[e.index()].r = Some(value),
                ParamTarget::EdgeC(e) => values.edges[e.index()].c = Some(value),
            }
        }
        Ok(values)
    }

    /// Encodes physical device values back into the normalized cube
    /// (inverse of [`ParamSpace::decode`]; out-of-range values clamp).
    pub fn encode(&self, values: &DeviceValues) -> Vec<f64> {
        self.params
            .iter()
            .map(|desc| {
                let v = match desc.target {
                    ParamTarget::StageGm(i) => values.stage_gm[i],
                    ParamTarget::EdgeGm(e) => values.edges[e.index()].gm.unwrap_or(1e-6),
                    ParamTarget::EdgeR(e) => values.edges[e.index()].r.unwrap_or(1e3),
                    ParamTarget::EdgeC(e) => values.edges[e.index()].c.unwrap_or(1e-14),
                };
                desc.kind.to_unit(v)
            })
            .collect()
    }

    /// The midpoint sizing (all coordinates 0.5), a sane simulation default.
    pub fn nominal(&self) -> DeviceValues {
        self.decode(&vec![0.5; self.dim()])
            .expect("midpoint vector always has the right length")
    }
}

impl fmt::Display for ParamSpace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ParamSpace(dim={}: ", self.dim())?;
        for (i, p) in self.params.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            f.write_str(&p.name)?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::subcircuit::{GmDirection, GmPolarity, PassiveKind};

    fn rich_topology() -> Topology {
        Topology::bare_cascade()
            .with_type(
                VariableEdge::VinV2,
                SubcircuitType::Gm {
                    polarity: GmPolarity::Minus,
                    direction: GmDirection::Forward,
                    composite: GmComposite::SeriesR,
                },
            )
            .unwrap()
            .with_type(
                VariableEdge::V1Vout,
                SubcircuitType::Passive(PassiveKind::SeriesRc),
            )
            .unwrap()
            .with_type(VariableEdge::V2Gnd, SubcircuitType::Passive(PassiveKind::C))
            .unwrap()
    }

    #[test]
    fn dimension_counts_parameters_per_type() {
        let space = ParamSpace::for_topology(&rich_topology());
        // 3 stage gms + (gm+R) + (R+C) + C = 3 + 2 + 2 + 1 = 8.
        assert_eq!(space.dim(), 8);
    }

    #[test]
    fn decode_encode_roundtrip() {
        let space = ParamSpace::for_topology(&rich_topology());
        let x: Vec<f64> = (0..space.dim()).map(|i| (i as f64 + 1.0) / 10.0).collect();
        let v = space.decode(&x).unwrap();
        let x2 = space.encode(&v);
        for (a, b) in x.iter().zip(&x2) {
            assert!((a - b).abs() < 1e-12, "{a} vs {b}");
        }
    }

    #[test]
    fn decode_rejects_wrong_length() {
        let space = ParamSpace::for_topology(&Topology::bare_cascade());
        assert!(matches!(
            space.decode(&[0.5]),
            Err(CircuitError::SizingLengthMismatch { .. })
        ));
    }

    #[test]
    fn decode_rejects_nan() {
        let space = ParamSpace::for_topology(&Topology::bare_cascade());
        assert!(matches!(
            space.decode(&[0.5, f64::NAN, 0.5]),
            Err(CircuitError::InvalidDeviceValue { .. })
        ));
    }

    #[test]
    fn unit_mapping_hits_range_endpoints() {
        for kind in [
            ParamKind::StageGm,
            ParamKind::Gm,
            ParamKind::Res,
            ParamKind::Cap,
        ] {
            let (lo, hi) = kind.range();
            assert!((kind.from_unit(0.0) - lo).abs() / lo < 1e-12);
            assert!((kind.from_unit(1.0) - hi).abs() / hi < 1e-12);
            assert!((kind.to_unit(lo) - 0.0).abs() < 1e-12);
            assert!((kind.to_unit(hi) - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn out_of_cube_inputs_clamp() {
        assert_eq!(ParamKind::Gm.from_unit(-1.0), ParamKind::Gm.from_unit(0.0));
        assert_eq!(ParamKind::Gm.from_unit(2.0), ParamKind::Gm.from_unit(1.0));
    }

    #[test]
    fn indices_for_edge_select_only_that_edge() {
        let space = ParamSpace::for_topology(&rich_topology());
        let idx = space.indices_for_edge(VariableEdge::V1Vout);
        assert_eq!(idx.len(), 2);
        for i in idx {
            assert!(space.params()[i].name.contains("v1-vout"));
        }
        assert!(space.indices_for_edge(VariableEdge::V1Gnd).is_empty());
    }

    #[test]
    fn all_gms_includes_edge_transconductors() {
        let space = ParamSpace::for_topology(&rich_topology());
        let v = space.nominal();
        assert_eq!(v.all_gms().len(), 4); // 3 stages + 1 feedforward
    }
}
