//! The five variable edges and the design-space rules `R`.
//!
//! Section II-C: the types each variable subcircuit may take are constrained
//! by a rule set so that every topology in the space is a functional op-amp:
//!
//! * `vin–v2` and `vin–vout` admit **7** types (no connection, or a forward
//!   feedforward transconductor of either polarity, bare or with a series
//!   R/C). Passive elements and reverse transconductors would load or feed
//!   back into the input, so they are excluded.
//! * `v1–vout` admits all **25** types (this is where classical Miller /
//!   series-RC compensation and feedback transconductors live).
//! * `v1–gnd` and `v2–gnd` admit **5** types (no connection or one of the
//!   four passive shapes; a transconductor to ground senses a constant node).
//!
//! The product `7 · 7 · 25 · 5 · 5 = 30 625` matches the paper's design-space
//! size.

use crate::nodes::CircuitNode;
use crate::subcircuit::{GmComposite, GmDirection, GmPolarity, PassiveKind, SubcircuitType};
use std::fmt;

/// One of the five variable-subcircuit slots of the three-stage template.
///
/// # Examples
///
/// ```
/// use oa_circuit::VariableEdge;
///
/// let sizes: Vec<usize> = VariableEdge::ALL
///     .iter()
///     .map(|e| e.allowed_types().len())
///     .collect();
/// assert_eq!(sizes, vec![7, 7, 25, 5, 5]);
/// assert_eq!(sizes.iter().product::<usize>(), 30_625);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum VariableEdge {
    /// Feedforward slot from the input to the second-stage output.
    VinV2,
    /// Feedforward slot from the input to the op-amp output.
    VinVout,
    /// Compensation/feedback slot between the first-stage output and the
    /// op-amp output.
    V1Vout,
    /// Shunt slot from the first-stage output to ground.
    V1Gnd,
    /// Shunt slot from the second-stage output to ground.
    V2Gnd,
}

impl VariableEdge {
    /// All five edges in canonical (encoding) order.
    pub const ALL: [VariableEdge; 5] = [
        VariableEdge::VinV2,
        VariableEdge::VinVout,
        VariableEdge::V1Vout,
        VariableEdge::V1Gnd,
        VariableEdge::V2Gnd,
    ];

    /// Canonical `(first, second)` endpoints. [`GmDirection::Forward`] senses
    /// `first` and drives `second`.
    pub fn endpoints(self) -> (CircuitNode, CircuitNode) {
        match self {
            VariableEdge::VinV2 => (CircuitNode::Vin, CircuitNode::V2),
            VariableEdge::VinVout => (CircuitNode::Vin, CircuitNode::Vout),
            VariableEdge::V1Vout => (CircuitNode::V1, CircuitNode::Vout),
            VariableEdge::V1Gnd => (CircuitNode::V1, CircuitNode::Gnd),
            VariableEdge::V2Gnd => (CircuitNode::V2, CircuitNode::Gnd),
        }
    }

    /// Position of this edge in [`VariableEdge::ALL`].
    pub fn index(self) -> usize {
        match self {
            VariableEdge::VinV2 => 0,
            VariableEdge::VinVout => 1,
            VariableEdge::V1Vout => 2,
            VariableEdge::V1Gnd => 3,
            VariableEdge::V2Gnd => 4,
        }
    }

    /// The rule set `R`: legal subcircuit types for this edge, in a stable
    /// order used by the topology integer encoding.
    pub fn allowed_types(self) -> Vec<SubcircuitType> {
        match self {
            VariableEdge::VinV2 | VariableEdge::VinVout => {
                let mut v = vec![SubcircuitType::NoConn];
                for polarity in GmPolarity::ALL {
                    for composite in [
                        GmComposite::Bare,
                        GmComposite::SeriesR,
                        GmComposite::SeriesC,
                    ] {
                        v.push(SubcircuitType::Gm {
                            polarity,
                            direction: GmDirection::Forward,
                            composite,
                        });
                    }
                }
                v
            }
            VariableEdge::V1Vout => SubcircuitType::catalog(),
            VariableEdge::V1Gnd | VariableEdge::V2Gnd => {
                let mut v = vec![SubcircuitType::NoConn];
                for p in PassiveKind::ALL {
                    v.push(SubcircuitType::Passive(p));
                }
                v
            }
        }
    }

    /// Returns `true` if `ty` is legal on this edge under the rules `R`.
    pub fn allows(self, ty: SubcircuitType) -> bool {
        self.allowed_types().contains(&ty)
    }

    /// Short display name, e.g. `"vin-v2"`.
    pub fn name(self) -> &'static str {
        match self {
            VariableEdge::VinV2 => "vin-v2",
            VariableEdge::VinVout => "vin-vout",
            VariableEdge::V1Vout => "v1-vout",
            VariableEdge::V1Gnd => "v1-gnd",
            VariableEdge::V2Gnd => "v2-gnd",
        }
    }
}

impl fmt::Display for VariableEdge {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn design_space_size_is_30625() {
        let product: usize = VariableEdge::ALL
            .iter()
            .map(|e| e.allowed_types().len())
            .product();
        assert_eq!(product, 30_625);
    }

    #[test]
    fn feedforward_edges_forbid_passives_and_reverse_gm() {
        for e in [VariableEdge::VinV2, VariableEdge::VinVout] {
            for ty in e.allowed_types() {
                match ty {
                    SubcircuitType::NoConn => {}
                    SubcircuitType::Gm { direction, .. } => {
                        assert_eq!(direction, GmDirection::Forward);
                    }
                    SubcircuitType::Passive(_) => {
                        panic!("passive type allowed on feedforward edge {e}")
                    }
                }
            }
        }
    }

    #[test]
    fn ground_edges_are_passive_only() {
        for e in [VariableEdge::V1Gnd, VariableEdge::V2Gnd] {
            for ty in e.allowed_types() {
                assert!(!ty.has_gm(), "gm allowed on ground edge {e}");
            }
        }
    }

    #[test]
    fn v1_vout_allows_everything() {
        let allowed = VariableEdge::V1Vout.allowed_types();
        assert_eq!(allowed.len(), 25);
        let set: HashSet<_> = allowed.into_iter().collect();
        for ty in SubcircuitType::catalog() {
            assert!(set.contains(&ty));
        }
    }

    #[test]
    fn allowed_types_contain_no_duplicates() {
        for e in VariableEdge::ALL {
            let allowed = e.allowed_types();
            let set: HashSet<_> = allowed.iter().copied().collect();
            assert_eq!(set.len(), allowed.len(), "duplicates on edge {e}");
        }
    }

    #[test]
    fn allows_is_consistent_with_allowed_types() {
        for e in VariableEdge::ALL {
            let allowed: HashSet<_> = e.allowed_types().into_iter().collect();
            for ty in SubcircuitType::catalog() {
                assert_eq!(e.allows(ty), allowed.contains(&ty));
            }
        }
    }

    #[test]
    fn endpoints_never_touch_both_rails() {
        for e in VariableEdge::ALL {
            let (a, b) = e.endpoints();
            assert_ne!(a, b);
        }
    }

    #[test]
    fn index_roundtrips() {
        for (i, e) in VariableEdge::ALL.iter().enumerate() {
            assert_eq!(e.index(), i);
        }
    }
}
