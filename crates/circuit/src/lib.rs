//! Behavior-level op-amp topology design space (INTO-OA reproduction).
//!
//! This crate implements Section II-C of the paper: the behavior-level
//! topology design space for three-stage operational amplifiers.
//!
//! * [`CircuitNode`] — the five circuit nodes (`vin, v1, v2, gnd, vout`).
//! * [`SubcircuitType`] — the 25 variable-subcircuit types.
//! * [`VariableEdge`] — the five variable slots and the rule set `R`
//!   (7·7·25·5·5 = 30 625 legal topologies).
//! * [`Topology`] — a point in the design space, with integer
//!   encoding/decoding, enumeration, uniform sampling and mutation.
//! * [`ParamSpace`] / [`DeviceValues`] — the per-topology continuous sizing
//!   space `S_G`.
//! * [`Netlist`] / [`elaborate`] — lowering to a primitive small-signal
//!   netlist (resistors, capacitors, VCCS) for the AC simulator in `oa-sim`.
//! * [`Process`] — synthetic technology constants (supply, `gm/Id`,
//!   parasitics).
//!
//! # Examples
//!
//! Sample a random topology, size it nominally, and elaborate it:
//!
//! ```
//! use oa_circuit::{elaborate, ParamSpace, Process, Topology};
//! use rand::SeedableRng;
//!
//! # fn main() -> Result<(), oa_circuit::CircuitError> {
//! let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(42);
//! let topology = Topology::random(&mut rng);
//! let space = ParamSpace::for_topology(&topology);
//! let netlist = elaborate(&topology, &space.nominal(), &Process::default(), 10e-12)?;
//! assert!(netlist.node_count() >= 5);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod compact;
mod edge;
mod error;
mod netlist;
mod nodes;
mod params;
mod process;
mod spice;
mod subcircuit;
mod topology;

pub use compact::ParseTopologyError;
pub use edge::VariableEdge;
pub use error::CircuitError;
pub use netlist::{elaborate, Element, Netlist, NetlistBuilder, NodeId, STAGE_SIGNS};
pub use nodes::CircuitNode;
pub use params::{DeviceValues, EdgeValues, ParamDesc, ParamKind, ParamSpace, ParamTarget};
pub use process::Process;
pub use subcircuit::{GmComposite, GmDirection, GmPolarity, PassiveKind, SubcircuitType};
pub use topology::{Topology, DESIGN_SPACE_SIZE};
