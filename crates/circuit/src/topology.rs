//! Behavior-level op-amp topologies: the point type of the design space.

use crate::edge::VariableEdge;
use crate::error::CircuitError;
use crate::subcircuit::SubcircuitType;
use rand::seq::SliceRandom;
use rand::Rng;
use std::fmt;

/// Total number of distinct three-stage behavior-level topologies
/// (`7 · 7 · 25 · 5 · 5`).
pub const DESIGN_SPACE_SIZE: usize = 30_625;

/// A behavior-level op-amp topology: one subcircuit-type choice per
/// [`VariableEdge`], with the three main amplifier stages implied.
///
/// Topologies are cheap to copy and hashable, so optimizers can keep visited
/// sets. The integer encoding ([`Topology::index`] /
/// [`Topology::from_index`]) is a mixed-radix code over the per-edge rule
/// sets and enumerates exactly the 30 625 legal designs.
///
/// # Examples
///
/// ```
/// use oa_circuit::{Topology, DESIGN_SPACE_SIZE};
///
/// # fn main() -> Result<(), oa_circuit::CircuitError> {
/// let t = Topology::from_index(12_345)?;
/// assert_eq!(t.index(), 12_345);
/// assert!(Topology::from_index(DESIGN_SPACE_SIZE).is_err());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Topology {
    types: [SubcircuitType; 5],
}

impl Topology {
    /// Builds a topology from one type per edge (in [`VariableEdge::ALL`]
    /// order), validating each against the rule set.
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::IllegalType`] if any type violates the rules
    /// for its edge.
    pub fn new(types: [SubcircuitType; 5]) -> Result<Self, CircuitError> {
        for (edge, &ty) in VariableEdge::ALL.iter().zip(&types) {
            if !edge.allows(ty) {
                return Err(CircuitError::IllegalType { edge: *edge, ty });
            }
        }
        Ok(Topology { types })
    }

    /// The topology in which every variable edge is unconnected: a plain
    /// uncompensated three-stage cascade.
    pub fn bare_cascade() -> Self {
        Topology {
            types: [SubcircuitType::NoConn; 5],
        }
    }

    /// The subcircuit type on `edge`.
    pub fn type_on(&self, edge: VariableEdge) -> SubcircuitType {
        self.types[edge.index()]
    }

    /// All five types, in [`VariableEdge::ALL`] order.
    pub fn types(&self) -> &[SubcircuitType; 5] {
        &self.types
    }

    /// Returns a copy with `edge` replaced by `ty`.
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::IllegalType`] if `ty` is not allowed on
    /// `edge`.
    pub fn with_type(&self, edge: VariableEdge, ty: SubcircuitType) -> Result<Self, CircuitError> {
        if !edge.allows(ty) {
            return Err(CircuitError::IllegalType { edge, ty });
        }
        let mut types = self.types;
        types[edge.index()] = ty;
        Ok(Topology { types })
    }

    /// Mixed-radix integer encoding in `0..DESIGN_SPACE_SIZE`.
    pub fn index(&self) -> usize {
        let mut idx = 0usize;
        for (edge, &ty) in VariableEdge::ALL.iter().zip(&self.types) {
            let allowed = edge.allowed_types();
            let pos = allowed
                .iter()
                .position(|&t| t == ty)
                .expect("validated type must be in the allowed set");
            idx = idx * allowed.len() + pos;
        }
        idx
    }

    /// Decodes a mixed-radix index produced by [`Topology::index`].
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::IndexOutOfRange`] if
    /// `index >= DESIGN_SPACE_SIZE`.
    pub fn from_index(index: usize) -> Result<Self, CircuitError> {
        if index >= DESIGN_SPACE_SIZE {
            return Err(CircuitError::IndexOutOfRange { index });
        }
        let mut rem = index;
        let mut types = [SubcircuitType::NoConn; 5];
        for edge in VariableEdge::ALL.iter().rev() {
            let allowed = edge.allowed_types();
            let pos = rem % allowed.len();
            rem /= allowed.len();
            types[edge.index()] = allowed[pos];
        }
        Ok(Topology { types })
    }

    /// Iterates over the full design space in index order.
    ///
    /// # Examples
    ///
    /// ```
    /// use oa_circuit::Topology;
    /// assert_eq!(Topology::enumerate().count(), 30_625);
    /// ```
    pub fn enumerate() -> impl Iterator<Item = Topology> {
        (0..DESIGN_SPACE_SIZE).map(|i| Topology::from_index(i).expect("index in range"))
    }

    /// Draws a topology uniformly at random from the design space.
    pub fn random<R: Rng + ?Sized>(rng: &mut R) -> Self {
        let mut types = [SubcircuitType::NoConn; 5];
        for edge in VariableEdge::ALL {
            let allowed = edge.allowed_types();
            types[edge.index()] = *allowed.choose(rng).expect("rule sets are non-empty");
        }
        Topology { types }
    }

    /// Mutates the topology as in Section III-D: every variable edge is
    /// re-drawn (to a *different* legal type) independently with probability
    /// `1/5`, so the expected number of mutated subcircuits is one. If no
    /// edge fired, one edge chosen uniformly is forced to mutate, so the
    /// result always differs from `self`.
    pub fn mutate<R: Rng + ?Sized>(&self, rng: &mut R) -> Self {
        let mut out = *self;
        let mut changed = false;
        for edge in VariableEdge::ALL {
            if rng.gen::<f64>() < 1.0 / 5.0 {
                out = out.mutate_edge(edge, rng);
                changed = true;
            }
        }
        if !changed {
            let edge = VariableEdge::ALL[rng.gen_range(0..VariableEdge::ALL.len())];
            out = out.mutate_edge(edge, rng);
        }
        out
    }

    /// Replaces the type on `edge` with a different legal type chosen
    /// uniformly.
    pub fn mutate_edge<R: Rng + ?Sized>(&self, edge: VariableEdge, rng: &mut R) -> Self {
        let current = self.type_on(edge);
        let alternatives: Vec<SubcircuitType> = edge
            .allowed_types()
            .into_iter()
            .filter(|&t| t != current)
            .collect();
        let ty = *alternatives
            .choose(rng)
            .expect("every edge has at least two legal types");
        self.with_type(edge, ty)
            .expect("alternative drawn from the allowed set")
    }

    /// All topologies at Hamming distance one (single-edge changes).
    pub fn neighbors(&self) -> Vec<Topology> {
        let mut out = Vec::new();
        for edge in VariableEdge::ALL {
            let current = self.type_on(edge);
            for ty in edge.allowed_types() {
                if ty != current {
                    out.push(
                        self.with_type(edge, ty)
                            .expect("type drawn from allowed set"),
                    );
                }
            }
        }
        out
    }

    /// Hamming distance: number of edges whose types differ.
    pub fn distance(&self, other: &Topology) -> usize {
        self.types
            .iter()
            .zip(&other.types)
            .filter(|(a, b)| a != b)
            .count()
    }

    /// Number of connected (non-`NoConn`) variable subcircuits.
    pub fn connected_count(&self) -> usize {
        self.types.iter().filter(|t| !t.is_no_conn()).count()
    }
}

impl Default for Topology {
    fn default() -> Self {
        Topology::bare_cascade()
    }
}

impl fmt::Display for Topology {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{} {{", self.index())?;
        let mut first = true;
        for edge in VariableEdge::ALL {
            let ty = self.type_on(edge);
            if ty.is_no_conn() {
                continue;
            }
            if !first {
                write!(f, ", ")?;
            }
            write!(f, "{}: {}", edge, ty)?;
            first = false;
        }
        if first {
            write!(f, "bare cascade")?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::subcircuit::{GmComposite, GmDirection, GmPolarity, PassiveKind};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;
    use std::collections::HashSet;

    #[test]
    fn index_roundtrip_over_entire_space() {
        for i in (0..DESIGN_SPACE_SIZE).step_by(97) {
            let t = Topology::from_index(i).unwrap();
            assert_eq!(t.index(), i);
        }
    }

    #[test]
    fn enumerate_yields_unique_topologies() {
        let set: HashSet<Topology> = Topology::enumerate().collect();
        assert_eq!(set.len(), DESIGN_SPACE_SIZE);
    }

    #[test]
    fn new_rejects_rule_violations() {
        // A passive R on the feedforward vin-v2 edge is illegal.
        let mut types = [SubcircuitType::NoConn; 5];
        types[VariableEdge::VinV2.index()] = SubcircuitType::Passive(PassiveKind::R);
        assert!(matches!(
            Topology::new(types),
            Err(CircuitError::IllegalType { .. })
        ));
    }

    #[test]
    fn with_type_preserves_other_edges() {
        let base = Topology::bare_cascade();
        let t = base
            .with_type(
                VariableEdge::V1Vout,
                SubcircuitType::Passive(PassiveKind::SeriesRc),
            )
            .unwrap();
        assert_eq!(
            t.type_on(VariableEdge::V1Vout),
            SubcircuitType::Passive(PassiveKind::SeriesRc)
        );
        for edge in [
            VariableEdge::VinV2,
            VariableEdge::VinVout,
            VariableEdge::V1Gnd,
        ] {
            assert_eq!(t.type_on(edge), SubcircuitType::NoConn);
        }
        assert_eq!(t.distance(&base), 1);
    }

    #[test]
    fn random_topologies_are_legal_and_diverse() {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let mut seen = HashSet::new();
        for _ in 0..200 {
            let t = Topology::random(&mut rng);
            // Validation: re-constructing through `new` must succeed.
            assert!(Topology::new(*t.types()).is_ok());
            seen.insert(t);
        }
        assert!(seen.len() > 150, "random sampling looks degenerate");
    }

    #[test]
    fn mutation_always_changes_the_topology() {
        let mut rng = ChaCha8Rng::seed_from_u64(11);
        let base = Topology::random(&mut rng);
        for _ in 0..100 {
            let m = base.mutate(&mut rng);
            assert_ne!(m, base);
            assert!(Topology::new(*m.types()).is_ok());
        }
    }

    #[test]
    fn mutation_changes_one_edge_in_expectation() {
        let mut rng = ChaCha8Rng::seed_from_u64(13);
        let base = Topology::bare_cascade();
        let total: usize = (0..2000)
            .map(|_| base.mutate(&mut rng).distance(&base))
            .sum();
        let mean = total as f64 / 2000.0;
        // Expected ≈ 1.0 + correction for the forced mutation; allow slack.
        assert!((0.8..=1.5).contains(&mean), "mean mutated edges = {mean}");
    }

    #[test]
    fn neighbors_count_matches_rule_sizes() {
        let t = Topology::bare_cascade();
        // Σ (|allowed(e)| - 1) = 6+6+24+4+4 = 44.
        assert_eq!(t.neighbors().len(), 44);
        for n in t.neighbors() {
            assert_eq!(n.distance(&t), 1);
        }
    }

    #[test]
    fn display_mentions_connected_subcircuits() {
        let t = Topology::bare_cascade()
            .with_type(
                VariableEdge::V1Vout,
                SubcircuitType::Gm {
                    polarity: GmPolarity::Minus,
                    direction: GmDirection::Reverse,
                    composite: GmComposite::Bare,
                },
            )
            .unwrap();
        let s = t.to_string();
        assert!(s.contains("v1-vout"), "display was {s}");
        assert!(Topology::bare_cascade()
            .to_string()
            .contains("bare cascade"));
    }

    #[test]
    fn connected_count_tracks_non_nc_edges() {
        assert_eq!(Topology::bare_cascade().connected_count(), 0);
        let t = Topology::bare_cascade()
            .with_type(VariableEdge::V1Gnd, SubcircuitType::Passive(PassiveKind::C))
            .unwrap();
        assert_eq!(t.connected_count(), 1);
    }
}
