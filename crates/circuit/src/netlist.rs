//! Primitive small-signal netlists and behavioral elaboration.
//!
//! A [`Netlist`] is the hand-off format between the design space and the AC
//! simulator in `oa-sim`: a flat list of linear primitives (resistors,
//! capacitors, voltage-controlled current sources) over integer node ids,
//! with node 0 fixed as ground. [`elaborate`] lowers a sized behavior-level
//! [`Topology`] into such a netlist:
//!
//! * each main amplifier stage becomes a VCCS plus its parasitic `Ro`/`Co`,
//!   with stage signs `(-,+,-)` so that classical Miller compensation on the
//!   `v1–vout` edge encloses an inverting path;
//! * each connected variable subcircuit becomes one to three primitives,
//!   series combinations introducing an internal node;
//! * the load capacitor `C_L` hangs on `vout`.

use crate::error::CircuitError;
use crate::nodes::CircuitNode;
use crate::params::DeviceValues;
use crate::process::Process;
use crate::subcircuit::{GmComposite, GmDirection, PassiveKind, SubcircuitType};
use crate::topology::Topology;
use crate::VariableEdge;
use std::fmt;

/// Sign of each fixed main amplifier stage (`vin→v1`, `v1→v2`, `v2→vout`).
///
/// The pattern `(-,+,-)` makes the `v1→vout` and `v2→vout` paths inverting,
/// so capacitive feedback on the `v1–vout` edge is *negative* feedback
/// (pole-splitting Miller compensation), while the overall DC gain from
/// `vin` to `vout` is positive.
pub const STAGE_SIGNS: [f64; 3] = [-1.0, 1.0, -1.0];

/// Index of a netlist node; `NodeId(0)` is ground.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub usize);

impl NodeId {
    /// The ground / reference node.
    pub const GROUND: NodeId = NodeId(0);

    /// Returns `true` for the ground node.
    pub fn is_ground(self) -> bool {
        self.0 == 0
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// A linear small-signal primitive.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Element {
    /// Resistor of `ohms` between `a` and `b`.
    Resistor {
        /// First terminal.
        a: NodeId,
        /// Second terminal.
        b: NodeId,
        /// Resistance in ohms.
        ohms: f64,
    },
    /// Capacitor of `farads` between `a` and `b`.
    Capacitor {
        /// First terminal.
        a: NodeId,
        /// Second terminal.
        b: NodeId,
        /// Capacitance in farads.
        farads: f64,
    },
    /// Voltage-controlled current source: a current
    /// `gm·(v(ctrl_p) − v(ctrl_n))` flows through the element from `out_p`
    /// to `out_n` (leaving `out_p`, entering `out_n`). `gm` may be negative.
    ///
    /// Real transconductor cells are band-limited; when `ft_hz` is set the
    /// effective transconductance rolls off as a single pole,
    /// `gm(f) = gm / (1 + j·f/f_t)`.
    Vccs {
        /// Positive control terminal.
        ctrl_p: NodeId,
        /// Negative control terminal.
        ctrl_n: NodeId,
        /// Terminal the controlled current leaves.
        out_p: NodeId,
        /// Terminal the controlled current enters.
        out_n: NodeId,
        /// Transconductance in siemens (signed).
        gm: f64,
        /// Transconductor bandwidth in hertz (`None` = ideal wideband).
        ft_hz: Option<f64>,
    },
}

/// A flat primitive netlist with one designated input and output node.
///
/// # Examples
///
/// ```
/// use oa_circuit::{NetlistBuilder, NodeId};
///
/// let mut b = NetlistBuilder::new();
/// let inp = b.add_node("in");
/// let out = b.add_node("out");
/// b.inject_gm(inp, out, -1e-3); // inverting transconductor
/// b.resistor(out, NodeId::GROUND, 100e3);
/// let netlist = b.build(inp, out);
/// assert_eq!(netlist.node_count(), 3); // gnd + in + out
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Netlist {
    names: Vec<String>,
    elements: Vec<Element>,
    input: NodeId,
    output: NodeId,
    static_power: f64,
}

impl Netlist {
    /// Number of nodes, including ground.
    pub fn node_count(&self) -> usize {
        self.names.len()
    }

    /// Name of node `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn node_name(&self, id: NodeId) -> &str {
        &self.names[id.0]
    }

    /// The node driven by the AC test source.
    pub fn input(&self) -> NodeId {
        self.input
    }

    /// The node whose transfer function is measured.
    pub fn output(&self) -> NodeId {
        self.output
    }

    /// The primitive elements.
    pub fn elements(&self) -> &[Element] {
        &self.elements
    }

    /// Static (bias) power in watts attached by [`elaborate`]; zero for
    /// hand-built netlists unless set through the builder.
    pub fn static_power(&self) -> f64 {
        self.static_power
    }

    /// Returns an equivalent netlist containing only *ideal* elements:
    /// every band-limited VCCS is expanded into the standard pole macro (a
    /// unit-gain stage driving an internal 1 Ω ∥ C node with
    /// `RC = 1/(2π·f_t)`, sensed by an ideal output VCCS).
    ///
    /// Time-domain engines that do not model frequency-dependent
    /// transconductance directly (e.g. the transient analysis in `oa-sim`)
    /// run on the expanded form; its AC behavior is identical by
    /// construction.
    pub fn expand_banded(&self) -> Netlist {
        let mut b = NetlistBuilder::new();
        // Recreate the non-ground nodes with their original names.
        let mut map = vec![NodeId::GROUND; self.node_count()];
        for (slot, name) in map.iter_mut().zip(&self.names).skip(1) {
            *slot = b.add_node(name.clone());
        }
        let m = |n: NodeId| map[n.0];
        let mut pole_idx = 0usize;
        for e in &self.elements {
            match *e {
                Element::Resistor { a, b: nb, ohms } => b.resistor(m(a), m(nb), ohms),
                Element::Capacitor { a, b: nb, farads } => b.capacitor(m(a), m(nb), farads),
                Element::Vccs {
                    ctrl_p,
                    ctrl_n,
                    out_p,
                    out_n,
                    gm,
                    ft_hz: None,
                } => b.vccs(m(ctrl_p), m(ctrl_n), m(out_p), m(out_n), gm),
                Element::Vccs {
                    ctrl_p,
                    ctrl_n,
                    out_p,
                    out_n,
                    gm,
                    ft_hz: Some(ft),
                } => {
                    pole_idx += 1;
                    let x = b.add_node(format!("xg{pole_idx}"));
                    // A current −1·v_ctrl leaving x (= +v_ctrl entering x)
                    // gives v_x = +v_ctrl at DC across the 1 Ω load; C sets
                    // the pole.
                    b.vccs(m(ctrl_p), m(ctrl_n), x, NodeId::GROUND, -1.0);
                    b.resistor(x, NodeId::GROUND, 1.0);
                    b.capacitor(x, NodeId::GROUND, 1.0 / (2.0 * std::f64::consts::PI * ft));
                    b.vccs(x, NodeId::GROUND, m(out_p), m(out_n), gm);
                }
            }
        }
        b.add_static_power(self.static_power);
        b.build(m(self.input), m(self.output))
    }
}

impl fmt::Display for Netlist {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "* netlist: {} nodes, {} elements, in={} out={}",
            self.node_count(),
            self.elements.len(),
            self.node_name(self.input),
            self.node_name(self.output)
        )?;
        for e in &self.elements {
            match e {
                Element::Resistor { a, b, ohms } => writeln!(
                    f,
                    "R {} {} {:.4e}",
                    self.node_name(*a),
                    self.node_name(*b),
                    ohms
                )?,
                Element::Capacitor { a, b, farads } => writeln!(
                    f,
                    "C {} {} {:.4e}",
                    self.node_name(*a),
                    self.node_name(*b),
                    farads
                )?,
                Element::Vccs {
                    ctrl_p,
                    ctrl_n,
                    out_p,
                    out_n,
                    gm,
                    ft_hz,
                } => {
                    write!(
                        f,
                        "G {} {} {} {} {:.4e}",
                        self.node_name(*out_p),
                        self.node_name(*out_n),
                        self.node_name(*ctrl_p),
                        self.node_name(*ctrl_n),
                        gm
                    )?;
                    match ft_hz {
                        Some(ft) => writeln!(f, " ft={ft:.3e}")?,
                        None => writeln!(f)?,
                    }
                }
            }
        }
        Ok(())
    }
}

/// Incremental builder for [`Netlist`].
#[derive(Debug, Clone)]
pub struct NetlistBuilder {
    names: Vec<String>,
    elements: Vec<Element>,
    static_power: f64,
}

impl NetlistBuilder {
    /// Creates a builder containing only the ground node.
    pub fn new() -> Self {
        NetlistBuilder {
            names: vec!["gnd".to_owned()],
            elements: Vec::new(),
            static_power: 0.0,
        }
    }

    /// Adds a named node and returns its id.
    pub fn add_node(&mut self, name: impl Into<String>) -> NodeId {
        let id = NodeId(self.names.len());
        self.names.push(name.into());
        id
    }

    /// Adds a resistor.
    pub fn resistor(&mut self, a: NodeId, b: NodeId, ohms: f64) {
        self.elements.push(Element::Resistor { a, b, ohms });
    }

    /// Adds a capacitor.
    pub fn capacitor(&mut self, a: NodeId, b: NodeId, farads: f64) {
        self.elements.push(Element::Capacitor { a, b, farads });
    }

    /// Adds a four-terminal ideal (wideband) VCCS (see [`Element::Vccs`]
    /// for sign semantics).
    pub fn vccs(&mut self, ctrl_p: NodeId, ctrl_n: NodeId, out_p: NodeId, out_n: NodeId, gm: f64) {
        self.elements.push(Element::Vccs {
            ctrl_p,
            ctrl_n,
            out_p,
            out_n,
            gm,
            ft_hz: None,
        });
    }

    /// Adds a band-limited four-terminal VCCS whose transconductance rolls
    /// off as `gm/(1 + j·f/ft_hz)`.
    pub fn vccs_banded(
        &mut self,
        ctrl_p: NodeId,
        ctrl_n: NodeId,
        out_p: NodeId,
        out_n: NodeId,
        gm: f64,
        ft_hz: f64,
    ) {
        self.elements.push(Element::Vccs {
            ctrl_p,
            ctrl_n,
            out_p,
            out_n,
            gm,
            ft_hz: Some(ft_hz),
        });
    }

    /// Convenience stage: injects a current `signed_gm·v(ctrl)` *into*
    /// `out` (drawn from ground).
    pub fn inject_gm(&mut self, ctrl: NodeId, out: NodeId, signed_gm: f64) {
        self.vccs(ctrl, NodeId::GROUND, NodeId::GROUND, out, signed_gm);
    }

    /// Band-limited variant of [`NetlistBuilder::inject_gm`].
    pub fn inject_gm_banded(&mut self, ctrl: NodeId, out: NodeId, signed_gm: f64, ft_hz: f64) {
        self.vccs_banded(ctrl, NodeId::GROUND, NodeId::GROUND, out, signed_gm, ft_hz);
    }

    /// Accumulates static power metadata (watts).
    pub fn add_static_power(&mut self, watts: f64) {
        self.static_power += watts;
    }

    /// Finalizes the netlist.
    pub fn build(self, input: NodeId, output: NodeId) -> Netlist {
        Netlist {
            names: self.names,
            elements: self.elements,
            input,
            output,
            static_power: self.static_power,
        }
    }
}

impl Default for NetlistBuilder {
    fn default() -> Self {
        NetlistBuilder::new()
    }
}

fn require(name: &str, v: Option<f64>) -> Result<f64, CircuitError> {
    match v {
        Some(x) if x.is_finite() && x > 0.0 => Ok(x),
        Some(x) => Err(CircuitError::InvalidDeviceValue {
            name: name.to_owned(),
            value: x,
        }),
        None => Err(CircuitError::InvalidDeviceValue {
            name: name.to_owned(),
            value: f64::NAN,
        }),
    }
}

/// Lowers a sized behavior-level topology into a primitive netlist.
///
/// `cl_farads` is the load capacitance the spec set prescribes. The returned
/// netlist carries the static power of all transconductors (main stages and
/// variable subcircuits) as metadata.
///
/// # Errors
///
/// Returns [`CircuitError::InvalidDeviceValue`] if `values` is missing a
/// device the topology requires or contains a non-positive value.
///
/// # Examples
///
/// ```
/// use oa_circuit::{elaborate, ParamSpace, Process, Topology};
///
/// # fn main() -> Result<(), oa_circuit::CircuitError> {
/// let t = Topology::bare_cascade();
/// let space = ParamSpace::for_topology(&t);
/// let netlist = elaborate(&t, &space.nominal(), &Process::default(), 10e-12)?;
/// assert!(netlist.static_power() > 0.0);
/// # Ok(())
/// # }
/// ```
pub fn elaborate(
    topology: &Topology,
    values: &DeviceValues,
    process: &Process,
    cl_farads: f64,
) -> Result<Netlist, CircuitError> {
    let mut b = NetlistBuilder::new();
    let vin = b.add_node(CircuitNode::Vin.name());
    let v1 = b.add_node(CircuitNode::V1.name());
    let v2 = b.add_node(CircuitNode::V2.name());
    let vout = b.add_node(CircuitNode::Vout.name());
    let node_of = |n: CircuitNode| match n {
        CircuitNode::Vin => vin,
        CircuitNode::V1 => v1,
        CircuitNode::V2 => v2,
        CircuitNode::Gnd => NodeId::GROUND,
        CircuitNode::Vout => vout,
    };

    // Fixed main stages with output parasitics.
    let stage_io = [(vin, v1), (v1, v2), (v2, vout)];
    for (i, ((ctrl, out), sign)) in stage_io.iter().zip(STAGE_SIGNS).enumerate() {
        let gm = require(&format!("gm{}", i + 1), Some(values.stage_gm[i]))?;
        b.inject_gm_banded(*ctrl, *out, sign * gm, process.gm_ft_hz);
        b.resistor(*out, NodeId::GROUND, process.output_resistance(gm));
        b.capacitor(*out, NodeId::GROUND, process.output_capacitance(gm));
    }

    // Variable subcircuits.
    for edge in VariableEdge::ALL {
        let ty = topology.type_on(edge);
        let ev = values.edges[edge.index()];
        let (first, second) = edge.endpoints();
        let (na, nb) = (node_of(first), node_of(second));
        match ty {
            SubcircuitType::NoConn => {}
            SubcircuitType::Passive(p) => match p {
                PassiveKind::R => {
                    b.resistor(na, nb, require(&format!("R({edge})"), ev.r)?);
                }
                PassiveKind::C => {
                    b.capacitor(na, nb, require(&format!("C({edge})"), ev.c)?);
                }
                PassiveKind::ParallelRc => {
                    b.resistor(na, nb, require(&format!("R({edge})"), ev.r)?);
                    b.capacitor(na, nb, require(&format!("C({edge})"), ev.c)?);
                }
                PassiveKind::SeriesRc => {
                    let mid = b.add_node(format!("m_{edge}"));
                    b.resistor(na, mid, require(&format!("R({edge})"), ev.r)?);
                    b.capacitor(mid, nb, require(&format!("C({edge})"), ev.c)?);
                }
            },
            SubcircuitType::Gm {
                polarity,
                direction,
                composite,
            } => {
                let gm = require(&format!("gm({edge})"), ev.gm)?;
                let signed = polarity.sign() * gm;
                let (ctrl, out) = match direction {
                    GmDirection::Forward => (na, nb),
                    GmDirection::Reverse => (nb, na),
                };
                // The transconductor's own parasitics load its output node
                // (the internal node for series composites).
                match composite {
                    GmComposite::Bare | GmComposite::ParallelR | GmComposite::ParallelC => {
                        b.inject_gm_banded(ctrl, out, signed, process.gm_ft_hz);
                        b.resistor(out, NodeId::GROUND, process.output_resistance(gm));
                        b.capacitor(out, NodeId::GROUND, process.output_capacitance(gm));
                        if composite == GmComposite::ParallelR {
                            b.resistor(na, nb, require(&format!("R({edge})"), ev.r)?);
                        } else if composite == GmComposite::ParallelC {
                            b.capacitor(na, nb, require(&format!("C({edge})"), ev.c)?);
                        }
                    }
                    GmComposite::SeriesR | GmComposite::SeriesC => {
                        let mid = b.add_node(format!("m_{edge}"));
                        b.inject_gm_banded(ctrl, mid, signed, process.gm_ft_hz);
                        b.resistor(mid, NodeId::GROUND, process.output_resistance(gm));
                        b.capacitor(mid, NodeId::GROUND, process.output_capacitance(gm));
                        if composite == GmComposite::SeriesR {
                            b.resistor(mid, out, require(&format!("R({edge})"), ev.r)?);
                        } else {
                            b.capacitor(mid, out, require(&format!("C({edge})"), ev.c)?);
                        }
                    }
                }
            }
        }
    }

    // Load capacitor.
    b.capacitor(vout, NodeId::GROUND, cl_farads);
    b.add_static_power(process.static_power(values.all_gms()));
    Ok(b.build(vin, vout))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::ParamSpace;
    use crate::subcircuit::GmPolarity;

    fn nominal_netlist(t: &Topology) -> Netlist {
        let space = ParamSpace::for_topology(t);
        elaborate(t, &space.nominal(), &Process::default(), 10e-12).unwrap()
    }

    #[test]
    fn bare_cascade_has_three_stages_and_load() {
        let n = nominal_netlist(&Topology::bare_cascade());
        let vccs = n
            .elements()
            .iter()
            .filter(|e| matches!(e, Element::Vccs { .. }))
            .count();
        let caps = n
            .elements()
            .iter()
            .filter(|e| matches!(e, Element::Capacitor { .. }))
            .count();
        assert_eq!(vccs, 3);
        assert_eq!(caps, 4); // 3 parasitic + CL
        assert_eq!(n.node_count(), 5); // gnd + vin,v1,v2,vout
    }

    #[test]
    #[allow(clippy::assertions_on_constants)] // documents the invariant
    fn stage_signs_make_v1_to_vout_inverting() {
        // The product of stage-2 and stage-3 signs must be negative so a
        // Miller capacitor on v1–vout sees an inverting path.
        assert!(STAGE_SIGNS[1] * STAGE_SIGNS[2] < 0.0);
        // And the overall cascade is non-inverting.
        assert!(STAGE_SIGNS.iter().product::<f64>() > 0.0);
    }

    #[test]
    fn series_rc_introduces_internal_node() {
        let t = Topology::bare_cascade()
            .with_type(
                VariableEdge::V1Vout,
                SubcircuitType::Passive(PassiveKind::SeriesRc),
            )
            .unwrap();
        let n = nominal_netlist(&t);
        assert_eq!(n.node_count(), 6);
    }

    #[test]
    fn series_gm_gets_parasitics_on_internal_node() {
        let t = Topology::bare_cascade()
            .with_type(
                VariableEdge::VinV2,
                SubcircuitType::Gm {
                    polarity: GmPolarity::Minus,
                    direction: GmDirection::Forward,
                    composite: GmComposite::SeriesR,
                },
            )
            .unwrap();
        let n = nominal_netlist(&t);
        assert_eq!(n.node_count(), 6);
        // 4 VCCS total, 4 parasitic R + 1 series R = 5 resistors.
        let res = n
            .elements()
            .iter()
            .filter(|e| matches!(e, Element::Resistor { .. }))
            .count();
        assert_eq!(res, 5);
    }

    #[test]
    fn reverse_gm_swaps_control_and_output() {
        let t = Topology::bare_cascade()
            .with_type(
                VariableEdge::V1Vout,
                SubcircuitType::Gm {
                    polarity: GmPolarity::Plus,
                    direction: GmDirection::Reverse,
                    composite: GmComposite::Bare,
                },
            )
            .unwrap();
        let n = nominal_netlist(&t);
        // Find the variable VCCS (the one not matching a main stage pattern):
        // its control must be vout (name "vout") and inject into v1.
        let found = n.elements().iter().any(|e| {
            matches!(e, Element::Vccs { ctrl_p, out_n, .. }
                if n.node_name(*ctrl_p) == "vout" && n.node_name(*out_n) == "v1")
        });
        assert!(found, "reverse gm not stamped as vout→v1\n{n}");
    }

    #[test]
    fn power_counts_all_transconductors() {
        let t = Topology::bare_cascade()
            .with_type(
                VariableEdge::VinVout,
                SubcircuitType::Gm {
                    polarity: GmPolarity::Plus,
                    direction: GmDirection::Forward,
                    composite: GmComposite::Bare,
                },
            )
            .unwrap();
        let space = ParamSpace::for_topology(&t);
        let values = space.nominal();
        let process = Process::default();
        let n = elaborate(&t, &values, &process, 10e-12).unwrap();
        let expected = process.static_power(values.all_gms());
        assert!((n.static_power() - expected).abs() < 1e-18);
        assert_eq!(values.all_gms().len(), 4);
    }

    #[test]
    fn elaborate_rejects_missing_values() {
        let t = Topology::bare_cascade()
            .with_type(VariableEdge::V1Gnd, SubcircuitType::Passive(PassiveKind::R))
            .unwrap();
        // Nominal values for the *bare* topology lack the resistor value.
        let bare_space = ParamSpace::for_topology(&Topology::bare_cascade());
        let err = elaborate(&t, &bare_space.nominal(), &Process::default(), 10e-12).unwrap_err();
        assert!(matches!(err, CircuitError::InvalidDeviceValue { .. }));
    }

    #[test]
    fn expand_banded_preserves_ideal_elements_and_io() {
        let t = Topology::bare_cascade();
        let space = ParamSpace::for_topology(&t);
        let n = elaborate(&t, &space.nominal(), &Process::default(), 10e-12).unwrap();
        let x = n.expand_banded();
        // 3 banded stages → 3 internal nodes, 2 VCCS each.
        assert_eq!(x.node_count(), n.node_count() + 3);
        let vccs = x
            .elements()
            .iter()
            .filter(|e| matches!(e, Element::Vccs { .. }))
            .count();
        assert_eq!(vccs, 6);
        assert!(x
            .elements()
            .iter()
            .all(|e| !matches!(e, Element::Vccs { ft_hz: Some(_), .. })));
        assert_eq!(x.node_name(x.input()), "vin");
        assert_eq!(x.node_name(x.output()), "vout");
        assert!((x.static_power() - n.static_power()).abs() < 1e-18);
    }

    #[test]
    fn display_lists_every_element() {
        let n = nominal_netlist(&Topology::bare_cascade());
        let text = n.to_string();
        assert_eq!(
            text.lines().count(),
            1 + n.elements().len(),
            "one header plus one line per element"
        );
    }
}
