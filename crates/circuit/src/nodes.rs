//! The five circuit nodes of the behavior-level three-stage op-amp.

use std::fmt;

/// A named circuit node of the behavior-level op-amp template (Fig. 1 of the
/// paper).
///
/// A three-stage op-amp has exactly five circuit nodes: the input, the two
/// inter-stage nodes, ground, and the output.
///
/// # Examples
///
/// ```
/// use oa_circuit::CircuitNode;
///
/// assert_eq!(CircuitNode::ALL.len(), 5);
/// assert_eq!(CircuitNode::Vin.to_string(), "vin");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum CircuitNode {
    /// Op-amp input.
    Vin,
    /// Output of the first amplifier stage.
    V1,
    /// Output of the second amplifier stage.
    V2,
    /// Ground / small-signal reference.
    Gnd,
    /// Op-amp output.
    Vout,
}

impl CircuitNode {
    /// All five circuit nodes in canonical order.
    pub const ALL: [CircuitNode; 5] = [
        CircuitNode::Vin,
        CircuitNode::V1,
        CircuitNode::V2,
        CircuitNode::Gnd,
        CircuitNode::Vout,
    ];

    /// A stable short name (also used as the graph-node label).
    pub fn name(self) -> &'static str {
        match self {
            CircuitNode::Vin => "vin",
            CircuitNode::V1 => "v1",
            CircuitNode::V2 => "v2",
            CircuitNode::Gnd => "gnd",
            CircuitNode::Vout => "vout",
        }
    }
}

impl fmt::Display for CircuitNode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_are_unique() {
        let mut names: Vec<_> = CircuitNode::ALL.iter().map(|n| n.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 5);
    }

    #[test]
    fn display_matches_name() {
        for n in CircuitNode::ALL {
            assert_eq!(n.to_string(), n.name());
        }
    }
}
