//! Compact, human-readable topology serialization.
//!
//! A topology round-trips through a string of the form
//! `"NC/+gm>/RCs/NC/C"` — one subcircuit mnemonic per variable edge in
//! [`VariableEdge::ALL`] order. This is the format used in logs, the
//! command-line tools, and anywhere a design needs to be pasted between
//! sessions.

use crate::edge::VariableEdge;
use crate::error::CircuitError;
use crate::subcircuit::SubcircuitType;
use crate::topology::Topology;
use std::str::FromStr;

impl Topology {
    /// Renders the topology as five `/`-separated type mnemonics.
    ///
    /// # Examples
    ///
    /// ```
    /// use oa_circuit::Topology;
    ///
    /// let t = Topology::bare_cascade();
    /// assert_eq!(t.to_compact_string(), "NC/NC/NC/NC/NC");
    /// let back: Topology = t.to_compact_string().parse()?;
    /// assert_eq!(back, t);
    /// # Ok::<(), oa_circuit::ParseTopologyError>(())
    /// ```
    pub fn to_compact_string(&self) -> String {
        VariableEdge::ALL
            .iter()
            .map(|&e| self.type_on(e).mnemonic())
            .collect::<Vec<_>>()
            .join("/")
    }
}

/// Error parsing a compact topology string.
#[derive(Debug, Clone, PartialEq)]
pub enum ParseTopologyError {
    /// The string does not have exactly five `/`-separated fields.
    WrongFieldCount {
        /// Number of fields found.
        found: usize,
    },
    /// A field is not a known subcircuit mnemonic.
    UnknownMnemonic {
        /// The offending field.
        field: String,
    },
    /// A legal mnemonic sits on an edge whose rules forbid it.
    IllegalPlacement {
        /// The underlying design-space error.
        source: CircuitError,
    },
}

impl std::fmt::Display for ParseTopologyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParseTopologyError::WrongFieldCount { found } => {
                write!(f, "expected 5 '/'-separated fields, found {found}")
            }
            ParseTopologyError::UnknownMnemonic { field } => {
                write!(f, "unknown subcircuit mnemonic {field:?}")
            }
            ParseTopologyError::IllegalPlacement { source } => {
                write!(f, "illegal placement: {source}")
            }
        }
    }
}

impl std::error::Error for ParseTopologyError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ParseTopologyError::IllegalPlacement { source } => Some(source),
            _ => None,
        }
    }
}

impl FromStr for Topology {
    type Err = ParseTopologyError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let fields: Vec<&str> = s.split('/').collect();
        if fields.len() != 5 {
            return Err(ParseTopologyError::WrongFieldCount {
                found: fields.len(),
            });
        }
        let catalog = SubcircuitType::catalog();
        let mut types = [SubcircuitType::NoConn; 5];
        for (edge, field) in VariableEdge::ALL.iter().zip(&fields) {
            let field = field.trim();
            let ty = catalog
                .iter()
                .copied()
                .find(|t| t.mnemonic() == field)
                .ok_or_else(|| ParseTopologyError::UnknownMnemonic {
                    field: field.to_owned(),
                })?;
            types[edge.index()] = ty;
        }
        Topology::new(types).map_err(|source| ParseTopologyError::IllegalPlacement { source })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn roundtrips_random_topologies() {
        let mut rng = ChaCha8Rng::seed_from_u64(6);
        for _ in 0..300 {
            let t = Topology::random(&mut rng);
            let s = t.to_compact_string();
            let back: Topology = s.parse().unwrap();
            assert_eq!(back, t, "string was {s}");
        }
    }

    #[test]
    fn tolerates_whitespace() {
        let t: Topology = "NC / +gm> / RCs / NC / C".parse().unwrap();
        assert_eq!(t.connected_count(), 3);
    }

    #[test]
    fn rejects_wrong_field_count() {
        assert!(matches!(
            "NC/NC/NC".parse::<Topology>(),
            Err(ParseTopologyError::WrongFieldCount { found: 3 })
        ));
    }

    #[test]
    fn rejects_unknown_mnemonic() {
        assert!(matches!(
            "NC/NC/XYZ/NC/NC".parse::<Topology>(),
            Err(ParseTopologyError::UnknownMnemonic { .. })
        ));
    }

    #[test]
    fn rejects_illegal_placement() {
        // A plain resistor is not allowed on the vin-v2 feedforward edge.
        assert!(matches!(
            "R/NC/NC/NC/NC".parse::<Topology>(),
            Err(ParseTopologyError::IllegalPlacement { .. })
        ));
    }
}
