//! Pre-numeric structural verification of elaborated netlists.
//!
//! A topology that elaborates into a structurally singular MNA system or
//! a floating internal node cannot produce a meaningful AC response, yet
//! the numeric pipeline would only discover that deep inside an LU
//! factorization — after buffers were allocated, stamps assembled, and
//! an evaluation slot spent. Everything this module checks is decidable
//! from the netlist *structure* alone (which matrix entries exist, not
//! what they are), so degenerate candidates can be rejected before any
//! numeric work:
//!
//! * **Ground reachability** — every node must reach `gnd` through the
//!   conducting-element graph (resistors, capacitors, VCCS output
//!   branches, and the AC test source). An island of elements with no
//!   path to the reference has no defined potential.
//! * **Floating nodes** — a node whose KCL row or voltage column is
//!   structurally empty (nothing conducts current at it, or nothing
//!   senses its voltage) makes the MNA matrix singular for *every*
//!   element value.
//! * **Structural full rank** — the sparsity pattern of the full MNA
//!   matrix (node rows plus the test-source branch row, `GMIN`
//!   excluded) must admit a perfect matching between rows and columns.
//!   By the Hall/König theorem a perfect matching exists iff no set of
//!   `k` rows confines its support to fewer than `k` columns, which is
//!   exactly "the determinant is not identically zero as a polynomial
//!   in the element values". This subsumes the two checks above but
//!   reports less specifically, so it runs last.
//! * **Stamp sanity** — a VCCS whose output terminals coincide injects
//!   no net current, and one whose control terminals coincide senses
//!   nothing; both are dead weight the design space should never emit.
//!   Value-level sanity (R/C positivity, finite `gm`, positive `f_t`)
//!   is checked separately so structure-only callers (the simulator's
//!   `prepare()`) keep their existing value diagnostics.
//!
//! The check treats resistive and capacitive stamps alike — the pattern
//! is evaluated "at a generic frequency" `ω > 0` where both contribute.
//! DC-only singularities (a capacitor-only path at `ω = 0`) are a
//! numeric property of one frequency point and remain `GMIN`'s job.

use crate::error::StructuralError;
use oa_circuit::{
    elaborate, CircuitError, Element, Netlist, NodeId, ParamSpace, Process, Topology,
    DESIGN_SPACE_SIZE,
};

/// Load capacitance used when elaborating topologies for verification.
///
/// The netlist *structure* does not depend on the load value; any
/// positive capacitance yields the same sparsity pattern.
pub const VERIFY_CL_FARADS: f64 = 10e-12;

/// Checks VCCS port distinctness for every element.
///
/// # Errors
///
/// Returns [`StructuralError::DegenerateVccs`] for the first VCCS whose
/// output pair or control pair coincides.
pub fn verify_ports(netlist: &Netlist) -> Result<(), StructuralError> {
    for (index, e) in netlist.elements().iter().enumerate() {
        if let Element::Vccs {
            ctrl_p,
            ctrl_n,
            out_p,
            out_n,
            ..
        } = *e
        {
            if out_p == out_n {
                return Err(StructuralError::DegenerateVccs {
                    index,
                    detail: format!(
                        "output terminals coincide ({} == {}): the element injects no net current",
                        netlist.node_name(out_p),
                        netlist.node_name(out_n)
                    ),
                });
            }
            if ctrl_p == ctrl_n {
                return Err(StructuralError::DegenerateVccs {
                    index,
                    detail: format!(
                        "control terminals coincide ({} == {}): the element senses nothing",
                        netlist.node_name(ctrl_p),
                        netlist.node_name(ctrl_n)
                    ),
                });
            }
        }
    }
    Ok(())
}

/// Checks element values: resistors finite and positive, capacitors
/// finite and non-negative, transconductances finite and non-zero,
/// bandwidths finite and positive.
///
/// # Errors
///
/// Returns [`StructuralError::BadValue`] describing the first offender.
pub fn verify_values(netlist: &Netlist) -> Result<(), StructuralError> {
    for (index, e) in netlist.elements().iter().enumerate() {
        match *e {
            Element::Resistor { ohms, .. } => {
                if !(ohms.is_finite() && ohms > 0.0) {
                    return Err(StructuralError::BadValue {
                        detail: format!("element {index}: resistor with {ohms} ohms"),
                    });
                }
            }
            Element::Capacitor { farads, .. } => {
                if !(farads.is_finite() && farads >= 0.0) {
                    return Err(StructuralError::BadValue {
                        detail: format!("element {index}: capacitor with {farads} farads"),
                    });
                }
            }
            Element::Vccs { gm, ft_hz, .. } => {
                if !(gm.is_finite() && gm != 0.0) {
                    return Err(StructuralError::BadValue {
                        detail: format!("element {index}: vccs with gm {gm}"),
                    });
                }
                if let Some(ft) = ft_hz {
                    if !(ft.is_finite() && ft > 0.0) {
                        return Err(StructuralError::BadValue {
                            detail: format!("element {index}: vccs with bandwidth {ft} Hz"),
                        });
                    }
                }
            }
        }
    }
    Ok(())
}

/// Verifies the netlist's structure: ground reachability, no floating
/// nodes, structural full rank of the MNA sparsity pattern, and VCCS
/// port distinctness. Element *values* are not inspected (see
/// [`verify_values`]).
///
/// # Errors
///
/// Returns the most specific applicable [`StructuralError`]: degenerate
/// VCCS ports first, then empty rows/columns and ground reachability as
/// [`StructuralError::FloatingNode`], then the matching-based
/// [`StructuralError::StructurallySingular`] for rank deficits no single
/// node explains.
pub fn verify_structure(netlist: &Netlist) -> Result<(), StructuralError> {
    verify_ports(netlist)?;

    let nodes = netlist.node_count();
    // Full MNA dimensions, mirroring `oa_sim::MnaSystem`: one KCL row per
    // non-ground node followed by the test-source branch row.
    let dim = nodes - 1 + 1;
    let branch = dim - 1;
    let var = |n: NodeId| -> Option<usize> {
        if n.is_ground() {
            None
        } else {
            Some(n.0 - 1)
        }
    };

    // Conducting-element graph for ground reachability. Control terminals
    // sense voltage but carry no current, so they are not edges; the VCCS
    // output branch and the ideal test source are.
    let mut adjacency: Vec<Vec<usize>> = vec![Vec::new(); nodes];
    let mut connect = |a: NodeId, b: NodeId| {
        if a != b {
            adjacency[a.0].push(b.0);
            adjacency[b.0].push(a.0);
        }
    };
    for e in netlist.elements() {
        match *e {
            Element::Resistor { a, b, .. } | Element::Capacitor { a, b, .. } => connect(a, b),
            Element::Vccs { out_p, out_n, .. } => connect(out_p, out_n),
        }
    }
    connect(netlist.input(), NodeId::GROUND);

    // Sparsity pattern of the full MNA matrix, `GMIN` excluded: rows[i]
    // holds the columns with a structural nonzero in row i.
    let mut rows: Vec<Vec<usize>> = vec![Vec::new(); dim];
    let add = |r: usize, c: usize, rows: &mut Vec<Vec<usize>>| {
        if !rows[r].contains(&c) {
            rows[r].push(c);
        }
    };
    for e in netlist.elements() {
        match *e {
            Element::Resistor { a, b, .. } | Element::Capacitor { a, b, .. } => {
                let (p, q) = (var(a), var(b));
                if let Some(i) = p {
                    add(i, i, &mut rows);
                }
                if let Some(j) = q {
                    add(j, j, &mut rows);
                }
                if let (Some(i), Some(j)) = (p, q) {
                    add(i, j, &mut rows);
                    add(j, i, &mut rows);
                }
            }
            Element::Vccs {
                ctrl_p,
                ctrl_n,
                out_p,
                out_n,
                ..
            } => {
                for out in [out_p, out_n] {
                    if let Some(row) = var(out) {
                        for ctrl in [ctrl_p, ctrl_n] {
                            if let Some(col) = var(ctrl) {
                                add(row, col, &mut rows);
                            }
                        }
                    }
                }
            }
        }
    }
    let inp = var(netlist.input()).ok_or_else(|| StructuralError::BadValue {
        detail: "input node is ground".to_owned(),
    })?;
    add(inp, branch, &mut rows);
    add(branch, inp, &mut rows);

    // Empty row: no current balance constrains the node. Empty column:
    // the node's voltage enters no equation. Either makes the matrix
    // singular for every element value.
    let mut col_occupied = vec![false; dim];
    for cols in &rows {
        for &c in cols {
            col_occupied[c] = true;
        }
    }
    for n in 1..nodes {
        let v = n - 1;
        if rows[v].is_empty() {
            return Err(StructuralError::FloatingNode {
                node: netlist.node_name(NodeId(n)).to_owned(),
                detail: "structurally empty KCL row: no element conducts current at this node"
                    .to_owned(),
            });
        }
        if !col_occupied[v] {
            return Err(StructuralError::FloatingNode {
                node: netlist.node_name(NodeId(n)).to_owned(),
                detail: "structurally empty column: no equation involves this node's voltage"
                    .to_owned(),
            });
        }
    }

    // Ground reachability over the conducting graph (BFS from node 0).
    let mut reached = vec![false; nodes];
    let mut queue = vec![0usize];
    reached[0] = true;
    while let Some(n) = queue.pop() {
        for &m in &adjacency[n] {
            if !reached[m] {
                reached[m] = true;
                queue.push(m);
            }
        }
    }
    for (n, ok) in reached.iter().enumerate().skip(1) {
        if !ok {
            return Err(StructuralError::FloatingNode {
                node: netlist.node_name(NodeId(n)).to_owned(),
                detail: "no conducting path to gnd: the node's potential is undefined".to_owned(),
            });
        }
    }

    // Hall condition via maximum bipartite matching on the pattern.
    let rank = structural_rank(&rows, dim);
    if rank < dim {
        return Err(StructuralError::StructurallySingular {
            dim,
            structural_rank: rank,
        });
    }
    Ok(())
}

/// Full structural + value verification of a netlist.
///
/// # Errors
///
/// Returns the first failure from [`verify_structure`] or
/// [`verify_values`].
pub fn verify_netlist(netlist: &Netlist) -> Result<(), StructuralError> {
    verify_structure(netlist)?;
    verify_values(netlist)
}

/// Maximum bipartite matching (Kuhn's augmenting paths) between rows and
/// columns of a sparsity pattern; the result is the structural rank.
///
/// The systems here are tiny (a dozen unknowns), so the O(V·E) algorithm
/// is both simplest and fastest in practice.
pub fn structural_rank(rows: &[Vec<usize>], ncols: usize) -> usize {
    fn augment(
        r: usize,
        rows: &[Vec<usize>],
        col_row: &mut [Option<usize>],
        visited: &mut [bool],
    ) -> bool {
        for &c in &rows[r] {
            if visited[c] {
                continue;
            }
            visited[c] = true;
            let free = match col_row[c] {
                None => true,
                Some(other) => augment(other, rows, col_row, visited),
            };
            if free {
                col_row[c] = Some(r);
                return true;
            }
        }
        false
    }

    let mut col_row: Vec<Option<usize>> = vec![None; ncols];
    let mut rank = 0;
    for r in 0..rows.len() {
        let mut visited = vec![false; ncols];
        if augment(r, rows, &mut col_row, &mut visited) {
            rank += 1;
        }
    }
    rank
}

/// Verifies one topology across its parameter space: the netlist is
/// elaborated at the space's nominal point and at both unit-cube
/// corners (every device at its lower bound, every device at its upper
/// bound), and each elaboration must pass [`verify_netlist`]. Device
/// ranges are monotone in the unit coordinate, so positivity at both
/// corners covers the whole box.
///
/// # Errors
///
/// Returns the first [`StructuralError`] from any elaboration.
pub fn verify_topology(topology: &Topology) -> Result<(), StructuralError> {
    let space = ParamSpace::for_topology(topology);
    let process = Process::default();
    let corner = |x: f64| -> Result<(), StructuralError> {
        let values = space.decode(&vec![x; space.dim()]).map_err(from_circuit)?;
        let netlist =
            elaborate(topology, &values, &process, VERIFY_CL_FARADS).map_err(from_circuit)?;
        verify_netlist(&netlist)
    };
    let netlist =
        elaborate(topology, &space.nominal(), &process, VERIFY_CL_FARADS).map_err(from_circuit)?;
    verify_netlist(&netlist)?;
    corner(0.0)?;
    corner(1.0)
}

/// `true` when [`verify_topology`] accepts the topology. This is the
/// predicate the BO candidate generators use to reject degenerate
/// candidates before an evaluation slot is spent.
pub fn is_structurally_valid(topology: &Topology) -> bool {
    verify_topology(topology).is_ok()
}

fn from_circuit(e: CircuitError) -> StructuralError {
    StructuralError::BadValue {
        detail: e.to_string(),
    }
}

/// Outcome of sweeping the whole design space through the verifier.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SweepReport {
    /// Number of topologies checked (the full space:
    /// [`DESIGN_SPACE_SIZE`]).
    pub checked: usize,
    /// Topologies that failed, as `(index, error)` pairs in index order.
    pub failures: Vec<(usize, StructuralError)>,
}

impl SweepReport {
    /// `true` when every topology passed.
    pub fn all_passed(&self) -> bool {
        self.failures.is_empty()
    }
}

/// Runs [`verify_topology`] over all [`DESIGN_SPACE_SIZE`] enumerated
/// topologies and collects the failures — the exhaustive design-space
/// certification the CI `analysis` job enforces.
pub fn sweep_design_space() -> SweepReport {
    let mut failures = Vec::new();
    for (index, topology) in Topology::enumerate().enumerate() {
        if let Err(e) = verify_topology(&topology) {
            failures.push((index, e));
        }
    }
    SweepReport {
        checked: DESIGN_SPACE_SIZE,
        failures,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oa_circuit::NetlistBuilder;

    fn rc_lowpass() -> Netlist {
        let mut b = NetlistBuilder::new();
        let inp = b.add_node("in");
        let out = b.add_node("out");
        b.resistor(inp, out, 1e3);
        b.capacitor(out, NodeId::GROUND, 1e-9);
        b.build(inp, out)
    }

    #[test]
    fn healthy_netlist_passes_all_checks() {
        let n = rc_lowpass();
        assert_eq!(verify_netlist(&n), Ok(()));
    }

    #[test]
    fn control_only_node_has_empty_row() {
        // `in` drives a VCCS control and nothing else, but the test
        // source covers it; a *second* control-only node has a truly
        // empty KCL row.
        let mut b = NetlistBuilder::new();
        let inp = b.add_node("in");
        let ghost = b.add_node("ghost");
        let out = b.add_node("out");
        b.resistor(inp, out, 1e3);
        b.inject_gm(ghost, out, 1e-3);
        b.resistor(out, NodeId::GROUND, 1e3);
        let n = b.build(inp, out);
        match verify_structure(&n) {
            Err(StructuralError::FloatingNode { node, detail }) => {
                assert_eq!(node, "ghost");
                assert!(detail.contains("KCL row"), "{detail}");
            }
            other => panic!("expected FloatingNode, got {other:?}"),
        }
    }

    #[test]
    fn unsensed_driven_node_has_empty_column() {
        // A VCCS injects into `sink` (through a resistor to ground so
        // its row is non-empty), but nothing ever reads v(sink).
        let mut b = NetlistBuilder::new();
        let inp = b.add_node("in");
        let out = b.add_node("out");
        let sink = b.add_node("sink");
        b.resistor(inp, out, 1e3);
        b.resistor(out, NodeId::GROUND, 1e3);
        b.vccs(inp, NodeId::GROUND, NodeId::GROUND, sink, 1e-3);
        let n = b.build(inp, out);
        // `sink`'s row contains the control column, its own column is
        // empty (no R/C diag, no control use).
        match verify_structure(&n) {
            Err(StructuralError::FloatingNode { node, detail }) => {
                assert_eq!(node, "sink");
                assert!(detail.contains("column"), "{detail}");
            }
            other => panic!("expected FloatingNode, got {other:?}"),
        }
    }

    #[test]
    fn island_is_disconnected_from_ground() {
        let mut b = NetlistBuilder::new();
        let inp = b.add_node("in");
        let out = b.add_node("out");
        let a = b.add_node("isl_a");
        let c = b.add_node("isl_b");
        b.resistor(inp, out, 1e3);
        b.resistor(out, NodeId::GROUND, 1e3);
        // Island: R + C loop between two nodes, no path to gnd. Rows and
        // columns are non-empty (diagonals), reachability catches it.
        b.resistor(a, c, 1e3);
        b.capacitor(a, c, 1e-12);
        let n = b.build(inp, out);
        match verify_structure(&n) {
            Err(StructuralError::FloatingNode { node, detail }) => {
                assert_eq!(node, "isl_a");
                assert!(detail.contains("gnd"), "{detail}");
            }
            other => panic!("expected FloatingNode, got {other:?}"),
        }
    }

    #[test]
    fn gm_ring_without_return_path_is_structurally_singular() {
        // a --R-- gnd; VCCS chain a→x, x→y, y→a, each injecting from
        // gnd. Every row and column is structurally occupied and every
        // node reaches gnd through a VCCS output branch, but rows
        // {x, branch} confine their support to column {a}: Hall's
        // condition fails and the matrix is singular for all values.
        let mut b = NetlistBuilder::new();
        let a = b.add_node("a");
        let x = b.add_node("x");
        let y = b.add_node("y");
        b.resistor(a, NodeId::GROUND, 1e3);
        b.inject_gm(a, x, 1e-3);
        b.inject_gm(x, y, 1e-3);
        b.inject_gm(y, a, 1e-3);
        let n = b.build(a, y);
        match verify_structure(&n) {
            Err(StructuralError::StructurallySingular {
                dim,
                structural_rank,
            }) => {
                assert_eq!(dim, 4);
                assert_eq!(structural_rank, 3);
            }
            other => panic!("expected StructurallySingular, got {other:?}"),
        }
    }

    #[test]
    fn duplicate_output_port_vccs_is_degenerate() {
        let mut b = NetlistBuilder::new();
        let inp = b.add_node("in");
        let out = b.add_node("out");
        b.resistor(inp, out, 1e3);
        b.resistor(out, NodeId::GROUND, 1e3);
        b.vccs(inp, NodeId::GROUND, out, out, 1e-3);
        let n = b.build(inp, out);
        assert!(matches!(
            verify_structure(&n),
            Err(StructuralError::DegenerateVccs { index: 2, .. })
        ));
    }

    #[test]
    fn duplicate_control_port_vccs_is_degenerate() {
        let mut b = NetlistBuilder::new();
        let inp = b.add_node("in");
        let out = b.add_node("out");
        b.resistor(inp, out, 1e3);
        b.resistor(out, NodeId::GROUND, 1e3);
        b.vccs(inp, inp, NodeId::GROUND, out, 1e-3);
        let n = b.build(inp, out);
        match verify_structure(&n) {
            Err(StructuralError::DegenerateVccs { detail, .. }) => {
                assert!(detail.contains("control"), "{detail}");
            }
            other => panic!("expected DegenerateVccs, got {other:?}"),
        }
    }

    #[test]
    fn bad_values_are_reported_by_value_pass_only() {
        let mut b = NetlistBuilder::new();
        let inp = b.add_node("in");
        let out = b.add_node("out");
        b.resistor(inp, out, -5.0);
        b.capacitor(out, NodeId::GROUND, 1e-9);
        let n = b.build(inp, out);
        assert_eq!(verify_structure(&n), Ok(()));
        assert!(matches!(
            verify_values(&n),
            Err(StructuralError::BadValue { .. })
        ));
    }

    #[test]
    fn structural_rank_of_diagonal_pattern_is_full() {
        let rows = vec![vec![0], vec![1], vec![2]];
        assert_eq!(structural_rank(&rows, 3), 3);
    }

    #[test]
    fn structural_rank_detects_column_sharing() {
        // Three rows, support {0}, {0}, {0,1,2}: rank 2.
        let rows = vec![vec![0], vec![0], vec![0, 1, 2]];
        assert_eq!(structural_rank(&rows, 3), 2);
    }

    #[test]
    fn structural_rank_needs_augmenting_paths() {
        // Greedy left-to-right assignment would stall: row0 takes col0,
        // row1 needs col0 only via reassigning row0 to col1.
        let rows = vec![vec![0, 1], vec![0], vec![2]];
        assert_eq!(structural_rank(&rows, 3), 3);
    }

    #[test]
    fn every_paper_topology_is_structurally_valid_sampled() {
        // The exhaustive sweep runs in release CI (`oa_sweep`); here a
        // coarse stride keeps the debug-mode test fast while still
        // crossing every edge-type combination class.
        for index in (0..DESIGN_SPACE_SIZE).step_by(61) {
            let t = Topology::from_index(index).unwrap();
            assert_eq!(verify_topology(&t), Ok(()), "topology #{index}");
        }
    }
}
