//! Lock-order deadlock detection over an interprocedural
//! lock-acquisition graph.
//!
//! A deadlock needs two threads acquiring the same locks in different
//! orders. The analysis builds a directed graph whose nodes are *lock
//! classes* and whose edge `A → B` means "somewhere, `B` is acquired
//! while `A` is held" — directly in one function, or transitively: a
//! call made while holding `A` reaches a function that may acquire
//! `B`. A cycle in that graph is a potential deadlock and is rejected.
//!
//! **Lock classes.** A lock stored in a struct field gets the
//! workspace-global class `Type.field` (`Service.store`) — the same
//! field reached through any receiver chain is one lock. A lock that
//! is only visible as a parameter or local gets a function-qualified
//! class (`worker_loop#rx`): distinct classes per function, an
//! under-approximation for locks passed across calls (DESIGN.md §10).
//!
//! **Guard scopes.** `let g = x.lock()…;` holds to the end of the
//! enclosing block or an explicit `drop(g)`; any other acquisition
//! (a temporary like `x.lock().unwrap().push(..)`, or a `match
//! x.lock()` scrutinee) holds to the end of its statement. The parser
//! marks the former via [`Stmt::guard_bind`](crate::ast::Stmt) and
//! refuses the marking when control flow intervenes, so `match`-arm
//! temporaries are never over-extended.

use crate::ast::{Block, CallTarget, Event, StmtPart};
use crate::callgraph::{CallGraph, TypeEnv};
use crate::lint::Finding;
use crate::reachability::Allowed;
use std::collections::{BTreeMap, BTreeSet};

/// Where a lock-order edge was observed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EdgeOrigin {
    /// File of the acquisition (or call) that created the edge.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// Human-readable context (`in Service::handle_line`, possibly
    /// `via call to Store::put`).
    pub via: String,
}

/// The lock-acquisition order graph.
#[derive(Debug, Default)]
pub struct LockGraph {
    /// `(held, acquired)` → first observed origin.
    pub edges: BTreeMap<(String, String), EdgeOrigin>,
}

/// One lock being held during traversal.
struct Held {
    class: String,
    guard_var: Option<String>,
    stmt_scoped: bool,
    block_level: usize,
}

/// Per-function context for the intra-procedural walk.
struct FnCtx<'g, 'w> {
    graph: &'g CallGraph<'w>,
    env: TypeEnv,
    fn_qual: String,
    file: String,
    /// fn node id → classes it may acquire (transitive).
    may_acquire: &'g [BTreeSet<String>],
    edges: &'g mut BTreeMap<(String, String), EdgeOrigin>,
}

/// Classifies a method event as a lock acquisition, returning the lock
/// class. `read`/`write` require a receiver that provably resolves to
/// `RwLock` (they are common io method names); `lock` also accepts an
/// unresolvable receiver, classed per-function (opaque). Shared with
/// the effect inference (`AcquiresLock` seeding and the
/// `lock_across_blocking` held-set walk).
pub(crate) fn acquisition_class(
    graph: &CallGraph<'_>,
    env: &TypeEnv,
    fn_qual: &str,
    name: &str,
    recv: &str,
) -> Option<String> {
    if !matches!(name, "lock" | "read" | "write") {
        return None;
    }
    match graph.resolve_chain(env, recv) {
        Some(ty) => {
            let head = crate::ast::deref_head(&ty);
            let is_lock = match name {
                "lock" => head == "Mutex",
                _ => head == "RwLock",
            };
            if !is_lock {
                return None;
            }
            if let Some((owner, field)) = graph.resolve_field_owner(env, recv) {
                Some(format!("{owner}.{field}"))
            } else {
                Some(format!("{fn_qual}#{recv}"))
            }
        }
        // `.lock()` strongly implies a mutex even when the receiver
        // type is unknown (match-bound vars, Arc locals without
        // generics evidence); `.read()`/`.write()` do not.
        None if name == "lock" => {
            let tag = if recv.is_empty() { "<expr>" } else { recv };
            Some(format!("{fn_qual}#{tag}"))
        }
        None => None,
    }
}

/// Builds the lock graph for the whole workspace.
pub fn lock_graph(graph: &CallGraph<'_>) -> LockGraph {
    // Pass 1: direct acquisitions per fn (for the may-acquire sets).
    let mut direct: Vec<BTreeSet<String>> = Vec::with_capacity(graph.nodes.len());
    for id in 0..graph.nodes.len() {
        let mut set = BTreeSet::new();
        let def = graph.def(id);
        if let Some(body) = &def.body {
            let env = graph.type_env(id);
            body.walk(&mut |_s, ev| {
                if let Event::Call(call) = ev {
                    if let CallTarget::Method { name, recv } = &call.target {
                        if let Some(class) = acquisition_class(graph, &env, &def.qual, name, recv) {
                            set.insert(class);
                        }
                    }
                }
            });
        }
        direct.push(set);
    }
    // Fixpoint: may_acquire = direct ∪ callees' may_acquire.
    let mut may = direct;
    loop {
        let mut changed = false;
        for id in 0..graph.nodes.len() {
            let mut add: Vec<String> = Vec::new();
            for e in &graph.edges[id] {
                for c in &may[e.callee] {
                    if !may[id].contains(c) {
                        add.push(c.clone());
                    }
                }
            }
            if !add.is_empty() {
                changed = true;
                may[id].extend(add);
            }
        }
        if !changed {
            break;
        }
    }
    // Pass 2: ordered walk with held-set tracking.
    let mut edges = BTreeMap::new();
    for id in 0..graph.nodes.len() {
        let def = graph.def(id);
        let Some(body) = &def.body else { continue };
        let mut ctx = FnCtx {
            graph,
            env: graph.type_env(id),
            fn_qual: def.qual.clone(),
            file: graph.file(id).path.clone(),
            may_acquire: &may,
            edges: &mut edges,
        };
        let mut held: Vec<Held> = Vec::new();
        walk_block(&mut ctx, body, &mut held, 0, id);
    }
    LockGraph { edges }
}

fn walk_block(
    ctx: &mut FnCtx<'_, '_>,
    block: &Block,
    held: &mut Vec<Held>,
    level: usize,
    fn_id: usize,
) {
    for stmt in &block.stmts {
        let mut first_acquisition = true;
        for part in &stmt.parts {
            match part {
                StmtPart::Block(b) => walk_block(ctx, b, held, level + 1, fn_id),
                StmtPart::Event(Event::DropVar { name, .. }) => {
                    held.retain(|h| h.guard_var.as_deref() != Some(name));
                }
                StmtPart::Event(Event::Index { .. } | Event::Guard { .. } | Event::Str { .. }) => {}
                StmtPart::Event(Event::Call(call)) => match &call.target {
                    CallTarget::Method { name, recv } => {
                        if let Some(class) =
                            acquisition_class(ctx.graph, &ctx.env, &ctx.fn_qual, name, recv)
                        {
                            for h in held.iter() {
                                if h.class != class {
                                    record_edge(ctx, &h.class, &class, call.line, None);
                                }
                            }
                            let is_guard = stmt.guard_bind.is_some() && first_acquisition;
                            first_acquisition = false;
                            held.push(Held {
                                class,
                                guard_var: if is_guard {
                                    stmt.guard_bind.clone()
                                } else {
                                    None
                                },
                                stmt_scoped: !is_guard,
                                block_level: level,
                            });
                        } else {
                            callee_edges(ctx, call.line, held, fn_id);
                        }
                    }
                    CallTarget::Free { .. } => {
                        callee_edges(ctx, call.line, held, fn_id);
                    }
                    CallTarget::Macro { .. } => {}
                },
            }
        }
        // Statement temporaries die here (only this level's — an outer
        // statement still in progress keeps its temporaries).
        held.retain(|h| !(h.stmt_scoped && h.block_level == level));
    }
    held.retain(|h| h.block_level != level);
}

/// Records `held → everything a callee may acquire` for every call
/// made while locks are held. Callees come from the already-resolved
/// call graph, matched by call-site line.
fn callee_edges(ctx: &mut FnCtx<'_, '_>, line: u32, held: &[Held], fn_id: usize) {
    if held.is_empty() {
        return;
    }
    let callees: Vec<usize> = ctx.graph.edges[fn_id]
        .iter()
        .filter(|e| e.line == line)
        .map(|e| e.callee)
        .collect();
    for callee in callees {
        let acquired: Vec<String> = ctx.may_acquire[callee].iter().cloned().collect();
        let callee_qual = ctx.graph.def(callee).qual.clone();
        for h in held {
            for class in &acquired {
                if &h.class != class {
                    record_edge(ctx, &h.class, class, line, Some(&callee_qual));
                }
            }
        }
    }
}

fn record_edge(ctx: &mut FnCtx<'_, '_>, from: &str, to: &str, line: u32, via_call: Option<&str>) {
    let key = (from.to_owned(), to.to_owned());
    let via = match via_call {
        Some(callee) => format!("in {} via call to {callee}", ctx.fn_qual),
        None => format!("in {}", ctx.fn_qual),
    };
    ctx.edges.entry(key).or_insert(EdgeOrigin {
        file: ctx.file.clone(),
        line,
        via,
    });
}

impl LockGraph {
    /// All elementary cycles found by DFS, each as the ordered list of
    /// its edges, deduplicated by normalized rotation. Deterministic.
    pub fn cycles(&self) -> Vec<Vec<(String, String)>> {
        let mut adj: BTreeMap<&str, Vec<&str>> = BTreeMap::new();
        for (from, to) in self.edges.keys() {
            adj.entry(from).or_default().push(to);
        }
        let mut found: BTreeSet<Vec<(String, String)>> = BTreeSet::new();
        let nodes: Vec<&str> = adj.keys().copied().collect();
        for start in nodes {
            let mut stack: Vec<&str> = vec![start];
            let mut on_stack: BTreeSet<&str> = [start].into();
            dfs(start, &adj, &mut stack, &mut on_stack, &mut found);
        }
        found.into_iter().collect()
    }

    /// Deterministic text dump of the order graph (one edge per line).
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        for ((from, to), origin) in &self.edges {
            out.push_str(&format!(
                "{from} -> {to}\t{}:{}\t{}\n",
                origin.file, origin.line, origin.via
            ));
        }
        out
    }
}

fn dfs<'a>(
    node: &'a str,
    adj: &BTreeMap<&'a str, Vec<&'a str>>,
    stack: &mut Vec<&'a str>,
    on_stack: &mut BTreeSet<&'a str>,
    found: &mut BTreeSet<Vec<(String, String)>>,
) {
    let Some(nexts) = adj.get(node) else { return };
    for &next in nexts {
        if let Some(pos) = stack.iter().position(|&n| n == next) {
            // Cycle: stack[pos..] + back edge. Normalize rotation to
            // start at the lexicographically smallest node.
            let cyc: Vec<&str> = stack[pos..].to_vec();
            let min = cyc
                .iter()
                .enumerate()
                .min_by_key(|(_, n)| **n)
                .map_or(0, |(i, _)| i);
            let rotated: Vec<&str> = cyc[min..]
                .iter()
                .chain(cyc[..min].iter())
                .copied()
                .collect();
            let edges: Vec<(String, String)> = rotated
                .iter()
                .zip(rotated.iter().cycle().skip(1))
                .map(|(a, b)| ((*a).to_owned(), (*b).to_owned()))
                .collect();
            found.insert(edges);
        } else if !on_stack.contains(next) && stack.len() < 32 {
            stack.push(next);
            on_stack.insert(next);
            dfs(next, adj, stack, on_stack, found);
            stack.pop();
            on_stack.remove(next);
        }
    }
}

/// Runs the analysis: builds the lock graph, reports each cycle not
/// waived by a `lock_order` annotation on one of its edges.
pub fn check(graph: &CallGraph<'_>, allowed: &Allowed) -> Vec<Finding> {
    let lg = lock_graph(graph);
    let mut findings = Vec::new();
    for cycle in lg.cycles() {
        let origins: Vec<&EdgeOrigin> = cycle.iter().filter_map(|key| lg.edges.get(key)).collect();
        let waived = origins.iter().any(|o| {
            allowed
                .get(&o.file)
                .and_then(|rules| rules.get("lock_order"))
                .is_some_and(|lines| lines.contains(&o.line))
        });
        if waived {
            continue;
        }
        let mut desc = String::from("lock-order cycle: ");
        for (i, ((from, to), origin)) in cycle.iter().zip(&origins).enumerate() {
            if i > 0 {
                desc.push_str("; ");
            }
            let base = origin.file.rsplit('/').next().unwrap_or("");
            desc.push_str(&format!(
                "{from} -> {to} (at {base}:{} {})",
                origin.line, origin.via
            ));
        }
        let first = origins.first();
        findings.push(Finding {
            path: first.map_or_else(String::new, |o| o.file.clone()),
            line: first.map_or(0, |o| o.line),
            rule: "lock_order",
            message: desc,
        });
    }
    findings.sort_by(|a, b| (&a.path, a.line, &a.message).cmp(&(&b.path, b.line, &b.message)));
    findings
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::callgraph::Workspace;

    fn run(files: &[(&str, &str)]) -> (Vec<Finding>, LockGraph) {
        let inputs: Vec<(String, String)> = files
            .iter()
            .map(|(p, s)| ((*p).to_owned(), (*s).to_owned()))
            .collect();
        let ws = Workspace::parse(&inputs);
        let graph = CallGraph::build(&ws);
        let mut allowed = Allowed::new();
        for (path, src) in &inputs {
            let (rules, _) = crate::lint::annotations_of(path, src);
            allowed.insert(path.clone(), rules);
        }
        let f = check(&graph, &allowed);
        let ws2 = Workspace::parse(&inputs);
        let graph2 = CallGraph::build(&ws2);
        (f, lock_graph(&graph2))
    }

    const PAIR: &str = "pub struct Pair { a: Mutex<u32>, b: Mutex<u32> }\n";

    #[test]
    fn ab_ba_cycle_is_detected_with_both_sites() {
        let src = format!(
            "{PAIR}
            impl Pair {{
                fn ab(&self) {{
                    let ga = self.a.lock().unwrap_or_else(|p| p.into_inner());
                    let gb = self.b.lock().unwrap_or_else(|p| p.into_inner());
                }}
                fn ba(&self) {{
                    let gb = self.b.lock().unwrap_or_else(|p| p.into_inner());
                    let ga = self.a.lock().unwrap_or_else(|p| p.into_inner());
                }}
            }}"
        );
        let (f, lg) = run(&[("crates/serve/src/a.rs", &src)]);
        assert!(lg.edges.contains_key(&("Pair.a".into(), "Pair.b".into())));
        assert!(lg.edges.contains_key(&("Pair.b".into(), "Pair.a".into())));
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(
            f[0].message.contains("Pair.a -> Pair.b"),
            "{}",
            f[0].message
        );
        assert!(
            f[0].message.contains("Pair.b -> Pair.a"),
            "{}",
            f[0].message
        );
    }

    #[test]
    fn consistent_order_is_silent() {
        let src = format!(
            "{PAIR}
            impl Pair {{
                fn ab(&self) {{
                    let ga = self.a.lock().unwrap_or_else(|p| p.into_inner());
                    let gb = self.b.lock().unwrap_or_else(|p| p.into_inner());
                }}
                fn ab_again(&self) {{
                    let ga = self.a.lock().unwrap_or_else(|p| p.into_inner());
                    let gb = self.b.lock().unwrap_or_else(|p| p.into_inner());
                }}
            }}"
        );
        let (f, lg) = run(&[("crates/serve/src/a.rs", &src)]);
        assert!(f.is_empty(), "{f:?}");
        assert!(!lg.edges.contains_key(&("Pair.b".into(), "Pair.a".into())));
    }

    #[test]
    fn interprocedural_cycle_through_a_call_is_detected() {
        let src = format!(
            "{PAIR}
            impl Pair {{
                fn ab(&self) {{
                    let ga = self.a.lock().unwrap_or_else(|p| p.into_inner());
                    self.take_b();
                }}
                fn take_b(&self) {{
                    let gb = self.b.lock().unwrap_or_else(|p| p.into_inner());
                }}
                fn ba(&self) {{
                    let gb = self.b.lock().unwrap_or_else(|p| p.into_inner());
                    self.take_a();
                }}
                fn take_a(&self) {{
                    let ga = self.a.lock().unwrap_or_else(|p| p.into_inner());
                }}
            }}"
        );
        let (f, _) = run(&[("crates/serve/src/a.rs", &src)]);
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("via call to"), "{}", f[0].message);
    }

    #[test]
    fn inner_block_scope_releases_the_guard() {
        let src = format!(
            "{PAIR}
            impl Pair {{
                fn scoped(&self) {{
                    {{
                        let ga = self.a.lock().unwrap_or_else(|p| p.into_inner());
                    }}
                    let gb = self.b.lock().unwrap_or_else(|p| p.into_inner());
                }}
                fn ba(&self) {{
                    let gb = self.b.lock().unwrap_or_else(|p| p.into_inner());
                    let ga = self.a.lock().unwrap_or_else(|p| p.into_inner());
                }}
            }}"
        );
        let (f, lg) = run(&[("crates/serve/src/a.rs", &src)]);
        assert!(
            !lg.edges.contains_key(&("Pair.a".into(), "Pair.b".into())),
            "guard released at block end: {lg:?}"
        );
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn explicit_drop_releases_the_guard() {
        let src = format!(
            "{PAIR}
            impl Pair {{
                fn sequential(&self) {{
                    let ga = self.a.lock().unwrap_or_else(|p| p.into_inner());
                    drop(ga);
                    let gb = self.b.lock().unwrap_or_else(|p| p.into_inner());
                }}
                fn ba(&self) {{
                    let gb = self.b.lock().unwrap_or_else(|p| p.into_inner());
                    let ga = self.a.lock().unwrap_or_else(|p| p.into_inner());
                }}
            }}"
        );
        let (f, _) = run(&[("crates/serve/src/a.rs", &src)]);
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn match_scrutinee_lock_is_statement_scoped() {
        let src = "
            pub struct Q { q: Mutex<Vec<u32>> }
            impl Q {
                fn dequeue(&self) -> Option<u32> {
                    let item = match self.q.lock() { Ok(mut g) => g.pop(), Err(p) => None };
                    self.other(item)
                }
                fn other(&self, x: Option<u32>) -> Option<u32> { x }
            }";
        let (_, lg) = run(&[("crates/serve/src/a.rs", src)]);
        // The scrutinee guard must not be held across `self.other(..)`
        // on the following statement.
        assert!(
            lg.edges.is_empty(),
            "statement-scoped scrutinee leaked: {lg:?}"
        );
    }

    #[test]
    fn annotation_on_a_cycle_edge_waives_it() {
        let src = format!(
            "{PAIR}
            impl Pair {{
                fn ab(&self) {{
                    let ga = self.a.lock().unwrap_or_else(|p| p.into_inner());
                    let gb = self.b.lock().unwrap_or_else(|p| p.into_inner());
                }}
                fn ba(&self) {{
                    let gb = self.b.lock().unwrap_or_else(|p| p.into_inner());
                    // lint: allow(lock_order, ba only runs single-threaded at startup)
                    let ga = self.a.lock().unwrap_or_else(|p| p.into_inner());
                }}
            }}"
        );
        let (f, _) = run(&[("crates/serve/src/a.rs", &src)]);
        assert!(f.is_empty(), "{f:?}");
    }
}
