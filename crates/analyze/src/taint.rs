//! Determinism taint: dataflow from unordered-collection iteration to
//! serialization sinks.
//!
//! The token-level rule banned `HashMap`/`HashSet` *mentions* in
//! serialization-adjacent crates wholesale. This analysis tracks the
//! actual hazard: a value derived from `HashMap`/`HashSet` *iteration
//! order* reaching bytes a client can observe. Sources are iteration
//! methods (`iter`, `keys`, `values`, `drain`, …) on receivers whose
//! type resolves to an unordered collection, and `for`-loops over
//! them; sinks are formatting macros (`format!`, `write!`, …) and
//! string/stream-building methods (`push_str`, `write_all`, …);
//! sorting a tainted value (or collecting it into a `BTreeMap`/
//! `BTreeSet`-typed binding) sanitizes it.
//!
//! Propagation is statement-granular: any tainted identifier read by a
//! statement taints the statement's bindings. Interprocedural flows go
//! through per-function summaries (does it *introduce* taint to its
//! return value, *pass* input taint to its return value, or *sink* its
//! inputs?) computed to fixpoint, so a helper that formats a map leaks
//! through two call layers. Each finding prints the source → sink flow
//! chain. A `determinism` annotation on the source or sink line waives
//! that flow.

use crate::ast::{is_unordered_collection, type_head, Block, CallTarget, Event, StmtPart};
use crate::callgraph::{CallGraph, TypeEnv};
use crate::lint::Finding;
use crate::reachability::Allowed;
use std::collections::{BTreeMap, BTreeSet};

/// Iteration methods whose order is the hazard.
const SOURCE_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "into_iter",
    "keys",
    "into_keys",
    "values",
    "values_mut",
    "into_values",
    "drain",
];

/// Formatting/serialization macro sinks.
const SINK_MACROS: &[&str] = &[
    "format", "write", "writeln", "print", "println", "eprint", "eprintln",
];

/// Byte/string-building method sinks.
const SINK_METHODS: &[&str] = &["push_str", "write_all", "write_fmt", "extend_from_slice"];

/// Where taint came from.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Origin {
    /// Iteration of an unordered collection at a concrete site.
    Internal { file: String, line: u32 },
    /// A caller's argument (used while computing summaries).
    Param,
}

/// A tainted value: its origin plus the statement lines it flowed
/// through (capped, for readable diagnostics).
#[derive(Debug, Clone, PartialEq, Eq)]
struct Taint {
    origin: Origin,
    hops: Vec<u32>,
}

impl Taint {
    fn hop(&self, line: u32) -> Taint {
        let mut t = self.clone();
        if t.hops.len() < 8 && t.hops.last() != Some(&line) {
            t.hops.push(line);
        }
        t
    }
}

/// What a function does with taint, as seen from call sites.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
struct Summary {
    /// Returns a value tainted by its own internal source.
    introduces: Option<(String, u32)>,
    /// Passes tainted inputs through to its return value.
    taints_return: bool,
    /// Feeds tainted inputs into a sink at `(file, line)`.
    sinks_inputs: Option<(String, u32)>,
}

/// Runs the analysis over the whole workspace.
pub fn check(graph: &CallGraph<'_>, allowed: &Allowed) -> Vec<Finding> {
    let mut summaries: Vec<Summary> = vec![Summary::default(); graph.nodes.len()];
    // Monotone fixpoint (flags only flip false→true; sites only fill).
    for _round in 0..8 {
        let mut changed = false;
        for id in 0..graph.nodes.len() {
            let (summary, _) = analyze_fn(graph, id, &summaries);
            if summary != summaries[id] {
                summaries[id] = summary;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    // Final pass: collect findings.
    let mut findings = Vec::new();
    let mut seen = BTreeSet::new();
    for id in 0..graph.nodes.len() {
        let (_, flows) = analyze_fn(graph, id, &summaries);
        for flow in flows {
            let src_allowed = allowed
                .get(&flow.src_file)
                .and_then(|r| r.get("determinism"))
                .is_some_and(|l| l.contains(&flow.src_line));
            let sink_allowed = allowed
                .get(&flow.sink_file)
                .and_then(|r| r.get("determinism"))
                .is_some_and(|l| l.contains(&flow.sink_line));
            if src_allowed || sink_allowed {
                continue;
            }
            if !seen.insert((flow.sink_file.clone(), flow.sink_line, flow.src_line)) {
                continue;
            }
            let src_base = flow.src_file.rsplit('/').next().unwrap_or("").to_owned();
            let mut chain = format!("{src_base}:{}", flow.src_line);
            for hop in &flow.hops {
                chain.push_str(&format!(" -> :{hop}"));
            }
            findings.push(Finding {
                path: flow.sink_file.clone(),
                line: flow.sink_line,
                rule: "determinism",
                message: format!(
                    "HashMap/HashSet iteration order flows to a serialization sink \
                     ({} -> sink at {}:{})",
                    chain,
                    flow.sink_file.rsplit('/').next().unwrap_or(""),
                    flow.sink_line
                ),
            });
        }
    }
    findings.sort_by(|a, b| (&a.path, a.line, &a.message).cmp(&(&b.path, b.line, &b.message)));
    findings
}

/// One concrete source→sink flow.
struct Flow {
    src_file: String,
    src_line: u32,
    hops: Vec<u32>,
    sink_file: String,
    sink_line: u32,
}

struct FnScan<'g, 'w> {
    graph: &'g CallGraph<'w>,
    env: TypeEnv,
    file: String,
    fn_id: usize,
    summaries: &'g [Summary],
    tainted: BTreeMap<String, Taint>,
    flows: Vec<Flow>,
    summary: Summary,
}

fn analyze_fn(graph: &CallGraph<'_>, id: usize, summaries: &[Summary]) -> (Summary, Vec<Flow>) {
    let def = graph.def(id);
    let Some(body) = &def.body else {
        return (Summary::default(), Vec::new());
    };
    let mut scan = FnScan {
        graph,
        env: graph.type_env(id),
        file: graph.file(id).path.clone(),
        fn_id: id,
        summaries,
        tainted: BTreeMap::new(),
        flows: Vec::new(),
        summary: Summary::default(),
    };
    for p in &def.params {
        scan.tainted.insert(
            p.name.clone(),
            Taint {
                origin: Origin::Param,
                hops: Vec::new(),
            },
        );
    }
    scan_block(&mut scan, body);
    (scan.summary, scan.flows)
}

fn scan_block(scan: &mut FnScan<'_, '_>, block: &Block) {
    for stmt in &block.stmts {
        // Incoming taint: tainted identifiers this statement reads.
        let incoming: Vec<Taint> = stmt
            .reads
            .iter()
            .filter_map(|r| scan.tainted.get(r))
            .cloned()
            .collect();
        let mut effective: Vec<Taint> = incoming;
        let mut sinks: Vec<u32> = Vec::new();
        let mut sanitize: Vec<String> = Vec::new();
        // Nested blocks are scanned *after* bind propagation so a loop
        // body sees its header's tainted bindings (`for k in &map`).
        let mut nested: Vec<&Block> = Vec::new();
        for part in &stmt.parts {
            match part {
                StmtPart::Block(b) => nested.push(b),
                StmtPart::Event(Event::Call(call)) => match &call.target {
                    CallTarget::Method { name, recv } => {
                        if SOURCE_METHODS.contains(&name.as_str()) {
                            if let Some(ty) = scan.graph.resolve_chain(&scan.env, recv) {
                                if is_unordered_collection(&ty) {
                                    effective.push(Taint {
                                        origin: Origin::Internal {
                                            file: scan.file.clone(),
                                            line: call.line,
                                        },
                                        hops: Vec::new(),
                                    });
                                }
                            }
                        } else if name.starts_with("sort") {
                            if let Some(root) = recv.split('.').next() {
                                sanitize.push(root.to_owned());
                            }
                        } else if SINK_METHODS.contains(&name.as_str()) {
                            sinks.push(call.line);
                        } else {
                            call_effects(scan, call.line, &mut effective, &mut sinks);
                        }
                    }
                    CallTarget::Free { .. } => {
                        call_effects(scan, call.line, &mut effective, &mut sinks);
                    }
                    CallTarget::Macro { name } => {
                        if SINK_MACROS.contains(&name.as_str()) {
                            sinks.push(call.line);
                        }
                    }
                },
                StmtPart::Event(_) => {}
            }
        }
        // Sinks fire on everything tainted in the statement (sources
        // and calls included, regardless of token order inside it).
        for sink_line in &sinks {
            for t in &effective {
                emit_flow(scan, t, &scan.file.clone(), *sink_line);
            }
        }
        // Propagate into this statement's bindings; a binding declared
        // as an ordered collection is a sanitizer (sorted collect).
        if !effective.is_empty() {
            // One taint per binding; a concrete internal source wins
            // over ambient parameter taint — it is the kind that turns
            // into a finding rather than a summary bit.
            let rep = effective
                .iter()
                .find(|t| matches!(t.origin, Origin::Internal { .. }))
                .unwrap_or(&effective[0])
                .hop(stmt.line);
            for bind in &stmt.binds {
                let ordered = scan
                    .env
                    .vars
                    .get(bind)
                    .is_some_and(|ty| matches!(type_head(ty), "BTreeMap" | "BTreeSet"));
                if !ordered {
                    scan.tainted.insert(bind.clone(), rep.clone());
                }
            }
            if stmt.is_return {
                for t in &effective {
                    match &t.origin {
                        Origin::Param => scan.summary.taints_return = true,
                        Origin::Internal { file, line } => {
                            if scan.summary.introduces.is_none() {
                                scan.summary.introduces = Some((file.clone(), *line));
                            }
                        }
                    }
                }
            }
        }
        for b in nested {
            scan_block(scan, b);
        }
        for var in sanitize {
            scan.tainted.remove(&var);
        }
    }
}

/// Applies callee summaries at a call site: callees that introduce
/// taint add it; callees that sink their inputs fire flows when the
/// statement carries taint; callees that pass taint keep it flowing.
fn call_effects(
    scan: &mut FnScan<'_, '_>,
    line: u32,
    effective: &mut Vec<Taint>,
    _sinks: &mut Vec<u32>,
) {
    let callees: Vec<usize> = scan.graph.edges[scan.fn_id]
        .iter()
        .filter(|e| e.line == line)
        .map(|e| e.callee)
        .collect();
    for callee in callees {
        let summary = scan.summaries[callee].clone();
        if let Some((file, src_line)) = &summary.introduces {
            effective.push(Taint {
                origin: Origin::Internal {
                    file: file.clone(),
                    line: *src_line,
                },
                hops: vec![line],
            });
        }
        if let Some((sink_file, sink_line)) = &summary.sinks_inputs {
            let inputs: Vec<Taint> = effective
                .iter()
                .filter(|t| t.hops.last() != Some(&line) || t.origin == Origin::Param)
                .cloned()
                .collect();
            for t in &inputs {
                let hopped = t.hop(line);
                emit_flow_at(scan, &hopped, sink_file.clone(), *sink_line);
            }
        }
        // taints_return: the statement-level propagation below already
        // keeps `effective` flowing into the binds, which is exactly
        // the pass-through behavior — nothing extra to do.
    }
}

fn emit_flow(scan: &mut FnScan<'_, '_>, taint: &Taint, sink_file: &str, sink_line: u32) {
    emit_flow_at(scan, taint, sink_file.to_owned(), sink_line);
}

fn emit_flow_at(scan: &mut FnScan<'_, '_>, taint: &Taint, sink_file: String, sink_line: u32) {
    match &taint.origin {
        Origin::Internal { file, line } => scan.flows.push(Flow {
            src_file: file.clone(),
            src_line: *line,
            hops: taint.hops.clone(),
            sink_file,
            sink_line,
        }),
        Origin::Param => {
            if scan.summary.sinks_inputs.is_none() {
                scan.summary.sinks_inputs = Some((sink_file, sink_line));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::callgraph::Workspace;

    fn run(files: &[(&str, &str)]) -> Vec<Finding> {
        let inputs: Vec<(String, String)> = files
            .iter()
            .map(|(p, s)| ((*p).to_owned(), (*s).to_owned()))
            .collect();
        let ws = Workspace::parse(&inputs);
        let graph = CallGraph::build(&ws);
        let mut allowed = Allowed::new();
        for (path, src) in &inputs {
            let (rules, _) = crate::lint::annotations_of(path, src);
            allowed.insert(path.clone(), rules);
        }
        check(&graph, &allowed)
    }

    #[test]
    fn map_keys_into_format_is_a_flow() {
        let f = run(&[(
            "crates/serve/src/a.rs",
            r#"
            fn render(m: &HashMap<String, u32>) -> String {
                let names: Vec<&String> = m.keys().collect();
                format!("{names:?}")
            }
            "#,
        )]);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, "determinism");
        assert!(f[0].message.contains("a.rs:3"), "{}", f[0].message);
    }

    #[test]
    fn sorted_keys_are_clean() {
        let f = run(&[(
            "crates/serve/src/a.rs",
            r#"
            fn render(m: &HashMap<String, u32>) -> String {
                let mut names: Vec<&String> = m.keys().collect();
                names.sort();
                format!("{names:?}")
            }
            "#,
        )]);
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn btree_collect_is_clean() {
        let f = run(&[(
            "crates/serve/src/a.rs",
            r#"
            fn render(m: &HashMap<String, u32>) -> String {
                let sorted: BTreeMap<&String, &u32> = m.iter().collect();
                format!("{sorted:?}")
            }
            "#,
        )]);
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn for_loop_over_map_taints_the_bindings() {
        let f = run(&[(
            "crates/serve/src/a.rs",
            r#"
            fn render(m: &HashMap<String, u32>, out: &mut String) {
                for k in &m {
                    out.push_str(k);
                }
            }
            "#,
        )]);
        assert_eq!(f.len(), 1, "{f:?}");
    }

    #[test]
    fn interprocedural_flow_through_a_helper_is_found() {
        let f = run(&[(
            "crates/serve/src/a.rs",
            r#"
            fn keys_of(m: &HashMap<String, u32>) -> Vec<&String> {
                m.keys().collect()
            }
            fn render(m: &HashMap<String, u32>) -> String {
                let ks = keys_of(m);
                format!("{ks:?}")
            }
            "#,
        )]);
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(
            f[0].message.contains("a.rs:3"),
            "source site: {}",
            f[0].message
        );
    }

    #[test]
    fn sink_inside_a_helper_is_found_from_the_caller() {
        let f = run(&[(
            "crates/serve/src/a.rs",
            r#"
            fn emit(vals: &[u32], out: &mut String) {
                out.push_str(&format!("{vals:?}"));
            }
            fn render(m: &HashMap<String, u32>, out: &mut String) {
                let vals: Vec<u32> = m.values().copied().collect();
                emit(&vals, out);
            }
            "#,
        )]);
        assert!(!f.is_empty(), "{f:?}");
    }

    #[test]
    fn btreemap_iteration_is_clean() {
        let f = run(&[(
            "crates/serve/src/a.rs",
            r#"
            fn render(m: &BTreeMap<String, u32>) -> String {
                let names: Vec<&String> = m.keys().collect();
                format!("{names:?}")
            }
            "#,
        )]);
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn annotation_at_the_sink_waives_the_flow() {
        let f = run(&[(
            "crates/serve/src/a.rs",
            r#"
            fn render(m: &HashMap<String, u32>) -> String {
                let names: Vec<&String> = m.keys().collect();
                // lint: allow(determinism, debug log only, never served)
                format!("{names:?}")
            }
            "#,
        )]);
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn lookup_only_maps_are_clean() {
        let f = run(&[(
            "crates/serve/src/a.rs",
            r#"
            fn get(m: &HashMap<String, u32>, k: &str) -> String {
                let v = m.get(k).copied().unwrap_or(0);
                format!("{v}")
            }
            "#,
        )]);
        assert!(f.is_empty(), "{f:?}");
    }
}
