//! Wire-schema extraction: what the workspace *actually* puts on the
//! wire, recovered from the AST, checked against the declaration.
//!
//! The pass walks the parsed workspace ([`Workspace`]) and recovers
//! every NDJSON frame fact from its anchor sites:
//!
//! * **`const`** — the canonical kind table (`oa_serve::wire_kinds`
//!   string constants). Identifier reads everywhere else resolve
//!   through this table, so renaming a constant moves every dependent
//!   row with it.
//! * **`op-emit`** — the ops `Service::handle_line` dispatches on:
//!   inside the match over `request.get("op")`, every arm with a
//!   `Some(…)` pattern contributes its string literal.
//! * **`op-request`** — the ops the client builders issue: a string
//!   literal `"op"` immediately followed by another wire-shaped
//!   literal in the same statement of `serve/src/client.rs`.
//! * **`op-route`** — the router's `route_of` table: each arm's
//!   literals paired with the `Route::…` variant it maps to.
//! * **`kind-emit` / `kind-match` / `kind-ref`** — every read of a
//!   kind constant, sectioned by the file's role (producers:
//!   service/session/router/core error codes; consumers: client and
//!   the chaos harnesses; everything else is a neutral reference).
//!   `EvalErrorKind::code` contributes its literal arms as emissions.
//! * **`fields`** — response-field literals inside the `*_json`
//!   renderers and `shard_map_response`.
//! * **`frame`** — `format!` skeletons containing `"name":` patterns
//!   (the envelope and typed-error frames built by string formatting).
//!
//! [`check`] compares the extraction against
//! [`crate::protocol::ProtocolSpec`] both ways and
//! reports five rules: `wire_undeclared` (the code ships a frame the
//! spec does not declare), `wire_dead` (the spec declares a frame no
//! code produces), `wire_client_match` (the client issues an op but
//! never matches a retryable kind that op may answer with),
//! `wire_router_coverage` (an op is missing from `route_of` or routed
//! under the wrong class — session ops *must* route as `session` or
//! sticky shard pinning is silently lost), and `wire_spec` (the spec
//! file itself is missing or malformed). The soundness envelope —
//! which emission shapes the anchors can and cannot see — is
//! documented in DESIGN.md §14.

use crate::ast::{Block, CallTarget, Event, SourceFile, Stmt, StmtPart};
use crate::callgraph::Workspace;
use crate::lint::Finding;
use crate::protocol::ProtocolSpec;
use std::collections::{BTreeMap, BTreeSet};

/// One extracted wire fact.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct WireSite {
    /// Catalogue section (`const`, `op-emit`, `op-route`, …).
    pub section: &'static str,
    /// The wire string (op name, kind string, field name, or a
    /// comma-joined frame field list).
    pub name: String,
    /// Context: the defining constant, the enclosing function, or the
    /// routing class.
    pub detail: String,
    /// Workspace-relative file path.
    pub path: String,
    /// 1-based source line.
    pub line: u32,
}

/// Whether a decoded literal looks like a wire identifier: a short
/// `snake_case` word (op names, kind strings, field names). Filters
/// out human-readable messages, which contain spaces or punctuation.
pub fn is_wire_token(s: &str) -> bool {
    !s.is_empty()
        && s.len() <= 24
        && s.as_bytes()[0].is_ascii_lowercase()
        && s.bytes()
            .all(|b| b.is_ascii_lowercase() || b == b'_' || b.is_ascii_digit())
}

/// Visits `stmt` and every statement nested in its blocks.
fn each_stmt<'a>(block: &'a Block, f: &mut impl FnMut(&'a Stmt)) {
    for stmt in &block.stmts {
        f(stmt);
        for part in &stmt.parts {
            if let StmtPart::Block(b) = part {
                each_stmt(b, f);
            }
        }
    }
}

/// The statement's own string-literal events, in source order (not
/// recursing into nested blocks — a match arm's literals stay with
/// the arm).
fn direct_strs(stmt: &Stmt) -> Vec<(u32, &str)> {
    stmt.parts
        .iter()
        .filter_map(|p| match p {
            StmtPart::Event(Event::Str { line, text }) => Some((*line, text.as_str())),
            _ => None,
        })
        .collect()
}

/// Whether the statement directly calls a free/path function whose
/// last segment is `name` (`Some(…)` patterns parse as such a call).
fn has_free_call(stmt: &Stmt, name: &str) -> bool {
    stmt.parts.iter().any(|p| match p {
        StmtPart::Event(Event::Call(cs)) => match &cs.target {
            CallTarget::Free { path } => path.last().is_some_and(|s| s == name),
            _ => false,
        },
        _ => false,
    })
}

/// The role a file plays for kind constants: producer, consumer, or
/// neutral reference.
fn kind_section(path: &str) -> &'static str {
    if path.ends_with("serve/src/client.rs")
        || path.ends_with("serve/src/chaos.rs")
        || path.ends_with("router/src/chaos.rs")
        || path.contains("crates/fault/")
    {
        "kind-match"
    } else if path.ends_with("serve/src/service.rs")
        || path.ends_with("serve/src/session.rs")
        || path.ends_with("router/src/router.rs")
        || path.ends_with("core/src/error.rs")
    {
        "kind-emit"
    } else {
        "kind-ref"
    }
}

/// `"name":` field patterns inside a `format!` skeleton.
fn frame_fields(s: &str) -> Vec<String> {
    let b = s.as_bytes();
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < b.len() {
        if b[i] == b'"' {
            if let Some(rel) = s[i + 1..].find('"') {
                let j = i + 1 + rel;
                let name = &s[i + 1..j];
                if b.get(j + 1) == Some(&b':') && is_wire_token(name) {
                    out.push(name.to_owned());
                }
                i = j + 1;
                continue;
            }
        }
        i += 1;
    }
    out
}

/// Whether the path belongs to a crate that talks on the wire (frame
/// and field rows are restricted to these so e.g. the SARIF renderer's
/// JSON skeletons do not pollute the catalogue).
fn wire_crate(path: &str) -> bool {
    path.contains("crates/serve/")
        || path.contains("crates/router/")
        || path.contains("crates/core/")
}

/// Extracts the full wire catalogue from a parsed workspace. Rows are
/// sorted and deduplicated, so equal workspaces give byte-equal
/// catalogues.
pub fn extract(ws: &Workspace) -> Vec<WireSite> {
    let mut sites = Vec::new();

    // The canonical kind table, and the name→value map identifier
    // reads resolve through.
    let mut const_map: BTreeMap<&str, &str> = BTreeMap::new();
    for file in &ws.files {
        if !file.path.ends_with("serve/src/wire_kinds.rs") {
            continue;
        }
        for cs in &file.const_strs {
            const_map.insert(&cs.name, &cs.value);
            sites.push(WireSite {
                section: "const",
                name: cs.value.clone(),
                detail: cs.name.clone(),
                path: file.path.clone(),
                line: cs.line,
            });
        }
    }

    for file in &ws.files {
        for def in &file.fns {
            if def.is_test {
                continue;
            }
            let Some(body) = &def.body else { continue };

            // op-emit: the serve dispatch match.
            if def.qual == "Service::handle_line" && file.path.ends_with("serve/src/service.rs") {
                for stmt in &body.stmts {
                    let is_dispatch = direct_strs(stmt).iter().any(|(_, s)| *s == "op")
                        && stmt.parts.iter().any(|p| matches!(p, StmtPart::Block(_)));
                    if !is_dispatch {
                        continue;
                    }
                    for part in &stmt.parts {
                        let StmtPart::Block(b) = part else { continue };
                        each_stmt(b, &mut |arm| {
                            if !has_free_call(arm, "Some") {
                                return;
                            }
                            for (line, s) in direct_strs(arm) {
                                if is_wire_token(s) {
                                    push(&mut sites, "op-emit", s, &def.qual, file, line);
                                }
                            }
                        });
                    }
                }
            }

            // op-request: client builders pair "op" with the op name.
            if file.path.ends_with("serve/src/client.rs") {
                each_stmt(body, &mut |stmt| {
                    let strs = direct_strs(stmt);
                    for w in strs.windows(2) {
                        if w[0].1 == "op" && is_wire_token(w[1].1) {
                            push(&mut sites, "op-request", w[1].1, &def.qual, file, w[0].0);
                        }
                    }
                });
            }

            // op-route: the router's routing table.
            if def.qual == "route_of" && file.path.ends_with("router/src/router.rs") {
                each_stmt(body, &mut |stmt| {
                    let class = stmt
                        .reads
                        .iter()
                        .position(|r| r == "Route")
                        .and_then(|i| stmt.reads.get(i + 1));
                    let Some(class) = class else { return };
                    for (line, s) in direct_strs(stmt) {
                        if is_wire_token(s) {
                            push(&mut sites, "op-route", s, &class.to_lowercase(), file, line);
                        }
                    }
                });
            }

            // kind reads, resolved through the constant table.
            let section = kind_section(&file.path);
            each_stmt(body, &mut |stmt| {
                for r in &stmt.reads {
                    if let Some(value) = const_map.get(r.as_str()) {
                        push(&mut sites, section, value, &def.qual, file, stmt.line);
                    }
                }
            });

            // EvalErrorKind::code — the batch-item kinds are emitted as
            // bare literals, not constant reads.
            if def.qual == "EvalErrorKind::code" && file.path.ends_with("core/src/error.rs") {
                each_stmt(body, &mut |stmt| {
                    for (line, s) in direct_strs(stmt) {
                        if is_wire_token(s) {
                            push(&mut sites, "kind-emit", s, &def.qual, file, line);
                        }
                    }
                });
            }

            // fields: the response renderers.
            if wire_crate(&file.path)
                && (def.name.ends_with("_json") || def.name == "shard_map_response")
            {
                each_stmt(body, &mut |stmt| {
                    for (line, s) in direct_strs(stmt) {
                        if is_wire_token(s) {
                            push(&mut sites, "fields", s, &def.qual, file, line);
                        }
                    }
                });
            }

            // frame: format! skeletons with `"name":` patterns.
            if wire_crate(&file.path) {
                each_stmt(body, &mut |stmt| {
                    for (line, s) in direct_strs(stmt) {
                        let fields = frame_fields(s);
                        if !fields.is_empty() {
                            push(
                                &mut sites,
                                "frame",
                                &fields.join(","),
                                &def.qual,
                                file,
                                line,
                            );
                        }
                    }
                });
            }
        }
    }

    sites.sort();
    sites.dedup();
    sites
}

fn push(
    sites: &mut Vec<WireSite>,
    section: &'static str,
    name: &str,
    detail: &str,
    file: &SourceFile,
    line: u32,
) {
    sites.push(WireSite {
        section,
        name: name.to_owned(),
        detail: detail.to_owned(),
        path: file.path.clone(),
        line,
    });
}

/// Renders the catalogue as a TSV document — the snapshot format
/// committed under `crates/analyze/tests/snapshots/wire.tsv`.
pub fn render_tsv(sites: &[WireSite]) -> String {
    let mut out = String::from("# section\tname\tdetail\tsite\n");
    for s in sites {
        out.push_str(&format!(
            "{}\t{}\t{}\t{}:{}\n",
            s.section, s.name, s.detail, s.path, s.line
        ));
    }
    out
}

/// The finding `oa_lint` reports when the spec file itself is missing
/// or fails to parse (rule `wire_spec`).
pub fn spec_finding(spec_path: &str, detail: &str) -> Finding {
    Finding {
        path: spec_path.to_owned(),
        line: 1,
        rule: "wire_spec",
        message: format!("protocol spec unusable: {detail}"),
    }
}

/// Checks the extraction against the declared protocol, both ways.
pub fn check(ws: &Workspace, spec: &ProtocolSpec, spec_path: &str) -> Vec<Finding> {
    let sites = extract(ws);
    check_sites(&sites, spec, spec_path)
}

/// [`check`] over an already-extracted catalogue.
pub fn check_sites(sites: &[WireSite], spec: &ProtocolSpec, spec_path: &str) -> Vec<Finding> {
    let mut findings = Vec::new();

    let names = |section: &str| -> BTreeSet<&str> {
        sites
            .iter()
            .filter(|s| s.section == section)
            .map(|s| s.name.as_str())
            .collect()
    };
    let emitted = names("op-emit");
    let requested = names("op-request");
    let matched = names("kind-match");
    let kind_emitted = names("kind-emit");
    let routed: BTreeMap<&str, &str> = sites
        .iter()
        .filter(|s| s.section == "op-route")
        .map(|s| (s.name.as_str(), s.detail.as_str()))
        .collect();

    // wire_undeclared: the code ships something the spec does not know.
    for site in sites {
        let (what, declared) = match site.section {
            "op-emit" => (
                "emitted by the serve dispatch",
                spec.op(&site.name).is_some(),
            ),
            "op-request" => ("issued by the client", spec.op(&site.name).is_some()),
            "op-route" => ("routed by the router", spec.op(&site.name).is_some()),
            "const" => ("defined in the kind table", spec.kind(&site.name).is_some()),
            "kind-emit" | "kind-match" | "kind-ref" => {
                ("used as an error kind", spec.kind(&site.name).is_some())
            }
            _ => continue,
        };
        if !declared {
            findings.push(Finding {
                path: site.path.clone(),
                line: site.line,
                rule: "wire_undeclared",
                message: format!("'{}' is {what} but not declared in {spec_path}", site.name),
            });
        }
    }

    // wire_dead: the spec declares something no code produces.
    for op in &spec.ops {
        if !emitted.contains(op.name.as_str()) && !routed.contains_key(op.name.as_str()) {
            findings.push(Finding {
                path: spec_path.to_owned(),
                line: op.line,
                rule: "wire_dead",
                message: format!(
                    "declared op '{}' is neither dispatched by serve nor routed by the router",
                    op.name
                ),
            });
        }
    }
    for kind in &spec.kinds {
        if !kind_emitted.contains(kind.name.as_str()) {
            findings.push(Finding {
                path: spec_path.to_owned(),
                line: kind.line,
                rule: "wire_dead",
                message: format!("declared error kind '{}' is never emitted", kind.name),
            });
        }
    }

    // wire_client_match: ops the client issues must have their
    // retryable kinds matched somewhere on the consumer side, or the
    // retry loop silently treats them as terminal.
    for op in &spec.ops {
        if !requested.contains(op.name.as_str()) {
            continue;
        }
        for k in &op.errors {
            let Some(kd) = spec.kind(k) else { continue };
            if kd.retry && !kd.router_origin && !matched.contains(k.as_str()) {
                findings.push(Finding {
                    path: spec_path.to_owned(),
                    line: op.line,
                    rule: "wire_client_match",
                    message: format!(
                        "client issues '{}' but never matches its retryable error kind '{k}'",
                        op.name
                    ),
                });
            }
        }
    }

    // wire_router_coverage: every declared op must have a routing arm
    // of the declared class. Session ops pinned to the wrong class
    // lose sticky shard pinning — the exact bug class this rule exists
    // to catch.
    for op in &spec.ops {
        match routed.get(op.name.as_str()) {
            None => findings.push(Finding {
                path: spec_path.to_owned(),
                line: op.line,
                rule: "wire_router_coverage",
                message: format!("declared op '{}' has no routing arm in route_of", op.name),
            }),
            Some(class) if *class != op.route => findings.push(Finding {
                path: spec_path.to_owned(),
                line: op.line,
                rule: "wire_router_coverage",
                message: format!(
                    "op '{}' routes as '{class}' but is declared route={}",
                    op.name, op.route
                ),
            }),
            Some(_) => {}
        }
    }

    findings.sort_by(|a, b| (&a.path, a.line, &a.message).cmp(&(&b.path, b.line, &b.message)));
    findings.dedup();
    findings
}

#[cfg(test)]
mod tests {
    use super::*;

    const SPEC: &str = "\
kind injected class=retry
kind overloaded class=retry origin=router
op eval route=key request=spec response=fom errors=injected
op open_session route=session request=session response=session errors=injected
lifecycle open_session from=any to=open counter=reset
";

    const KINDS_RS: &str = "\
pub const INJECTED: &str = \"injected\";
pub const OVERLOADED: &str = \"overloaded\";
";

    const SERVICE_RS: &str = "\
pub struct Service;
impl Service {
    pub fn handle_line(&self, request: &Json) -> String {
        let outcome = match request.get(\"op\").and_then(Json::as_str) {
            Some(\"eval\") => self.op_eval(request),
            Some(\"open_session\") => self.op_open(request),
            Some(\"teleport\") => self.op_teleport(request),
            _ => err(),
        };
        outcome
    }
    fn fail(&self) -> String {
        typed(INJECTED)
    }
}
";

    const CLIENT_RS: &str = "\
pub fn eval(id: u64) -> String {
    Json::Obj(vec![
        (\"id\".into(), Json::num(id as f64)),
        (\"op\".into(), Json::str(\"eval\")),
        (\"spec\".into(), Json::str(\"s\")),
    ]).encode()
}
pub fn is_retry(kind: &str) -> bool {
    matches!(kind, INJECTED)
}
";

    const ROUTER_RS: &str = "\
fn route_of(op: &str) -> Route {
    match op {
        \"eval\" => Route::Key,
        _ => Route::Unknown,
    }
}
fn shed() -> String {
    typed_failure(OVERLOADED)
}
";

    fn workspace() -> Workspace {
        Workspace::parse(&[
            (
                "crates/serve/src/wire_kinds.rs".to_owned(),
                KINDS_RS.to_owned(),
            ),
            (
                "crates/serve/src/service.rs".to_owned(),
                SERVICE_RS.to_owned(),
            ),
            (
                "crates/serve/src/client.rs".to_owned(),
                CLIENT_RS.to_owned(),
            ),
            (
                "crates/router/src/router.rs".to_owned(),
                ROUTER_RS.to_owned(),
            ),
        ])
    }

    fn rows(sites: &[WireSite], section: &str) -> Vec<(String, String)> {
        sites
            .iter()
            .filter(|s| s.section == section)
            .map(|s| (s.name.clone(), s.detail.clone()))
            .collect()
    }

    #[test]
    fn extraction_recovers_every_anchor() {
        let sites = extract(&workspace());
        assert_eq!(
            rows(&sites, "op-emit")
                .iter()
                .map(|(n, _)| n.as_str())
                .collect::<Vec<_>>(),
            ["eval", "open_session", "teleport"]
        );
        assert_eq!(
            rows(&sites, "op-request"),
            [("eval".to_owned(), "eval".to_owned())]
        );
        assert_eq!(
            rows(&sites, "op-route"),
            [("eval".to_owned(), "key".to_owned())]
        );
        assert_eq!(
            rows(&sites, "const"),
            [
                ("injected".to_owned(), "INJECTED".to_owned()),
                ("overloaded".to_owned(), "OVERLOADED".to_owned()),
            ]
        );
        // service.rs is a producer, client.rs a consumer.
        assert_eq!(
            rows(&sites, "kind-emit"),
            [
                ("injected".to_owned(), "Service::fail".to_owned()),
                ("overloaded".to_owned(), "shed".to_owned()),
            ]
        );
        assert_eq!(
            rows(&sites, "kind-match"),
            [("injected".to_owned(), "is_retry".to_owned())]
        );
    }

    #[test]
    fn undeclared_and_unrouted_ops_are_caught() {
        let spec = ProtocolSpec::parse(SPEC).unwrap();
        let findings = check(&workspace(), &spec, "protocol.spec");
        assert!(
            findings.iter().any(|f| f.rule == "wire_undeclared"
                && f.message.contains("'teleport'")
                && f.path.ends_with("service.rs")),
            "{findings:?}"
        );
        assert!(
            findings.iter().any(|f| f.rule == "wire_router_coverage"
                && f.message.contains("'open_session'")
                && f.path == "protocol.spec"),
            "{findings:?}"
        );
        // Everything declared is alive and the client matches the
        // retryable kind, so neither other rule fires.
        assert!(
            !findings.iter().any(|f| f.rule == "wire_dead"),
            "{findings:?}"
        );
        assert!(
            !findings.iter().any(|f| f.rule == "wire_client_match"),
            "{findings:?}"
        );
    }

    #[test]
    fn dead_declarations_and_unmatched_retry_kinds_are_caught() {
        // A spec with an op nothing emits and a retryable kind the
        // client never matches.
        let spec = ProtocolSpec::parse(
            "kind injected class=retry\n\
             kind overloaded class=retry origin=router\n\
             kind slow class=retry\n\
             op eval route=key request=spec response=fom errors=slow\n\
             op open_session route=session request=session response=session errors=\n\
             op ghost route=key request= response= errors=\n\
             lifecycle open_session from=any to=open counter=reset\n",
        )
        .unwrap();
        let findings = check(&workspace(), &spec, "protocol.spec");
        assert!(
            findings.iter().any(|f| f.rule == "wire_dead"
                && f.message.contains("declared op 'ghost'")
                && f.line == 6),
            "{findings:?}"
        );
        assert!(
            findings
                .iter()
                .any(|f| f.rule == "wire_dead" && f.message.contains("kind 'slow'")),
            "{findings:?}"
        );
        assert!(
            findings.iter().any(|f| f.rule == "wire_client_match"
                && f.message.contains("retryable error kind 'slow'")),
            "{findings:?}"
        );
    }

    #[test]
    fn tsv_is_deterministic_and_sorted() {
        let ws = workspace();
        let a = render_tsv(&extract(&ws));
        let b = render_tsv(&extract(&ws));
        assert_eq!(a, b);
        assert!(a.starts_with("# section\tname\tdetail\tsite\n"));
        let body: Vec<&str> = a.lines().skip(1).collect();
        let mut sorted = body.clone();
        sorted.sort_unstable();
        assert_eq!(body, sorted, "rows must be sorted");
    }

    #[test]
    fn wire_tokens_filter_prose() {
        assert!(is_wire_token("eval_batch"));
        assert!(is_wire_token("x"));
        assert!(is_wire_token("gbw_hz"));
        assert!(!is_wire_token("finite request"));
        assert!(!is_wire_token("BAD"));
        assert!(!is_wire_token(""));
        assert!(!is_wire_token("a-b"));
    }
}
