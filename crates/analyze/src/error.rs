//! Typed outcomes of the structural verifier.

use std::error::Error;
use std::fmt;

/// A structural defect that makes a netlist unsolvable (or meaningless)
/// for *every* assignment of element values — detectable without any
/// numeric work.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StructuralError {
    /// A node is floating: its KCL row or voltage column is structurally
    /// empty, or it has no conducting path to ground.
    FloatingNode {
        /// Name of the offending node.
        node: String,
        /// Which of the three floating conditions fired.
        detail: String,
    },
    /// The MNA sparsity pattern admits no perfect row–column matching
    /// (Hall's condition fails): the determinant is identically zero as
    /// a polynomial in the element values.
    StructurallySingular {
        /// Full MNA dimension (node rows + source branch).
        dim: usize,
        /// Maximum bipartite matching size of the pattern.
        structural_rank: usize,
    },
    /// A VCCS whose output or control terminal pair coincides: it
    /// injects no net current or senses nothing.
    DegenerateVccs {
        /// Element index in the netlist.
        index: usize,
        /// Which pair coincides.
        detail: String,
    },
    /// An element value violates its sign/finiteness contract, or the
    /// topology could not be elaborated at a checked parameter point.
    BadValue {
        /// Description of the offender.
        detail: String,
    },
}

impl fmt::Display for StructuralError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StructuralError::FloatingNode { node, detail } => {
                write!(f, "floating node '{node}': {detail}")
            }
            StructuralError::StructurallySingular {
                dim,
                structural_rank,
            } => write!(
                f,
                "structurally singular MNA system: structural rank {structural_rank} < dimension {dim}"
            ),
            StructuralError::DegenerateVccs { index, detail } => {
                write!(f, "degenerate vccs (element {index}): {detail}")
            }
            StructuralError::BadValue { detail } => write!(f, "bad value: {detail}"),
        }
    }
}

impl Error for StructuralError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = StructuralError::StructurallySingular {
            dim: 5,
            structural_rank: 4,
        };
        assert!(e.to_string().contains("rank 4"));
        let e = StructuralError::FloatingNode {
            node: "v1".into(),
            detail: "no conducting path to gnd".into(),
        };
        assert!(e.to_string().contains("'v1'"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<StructuralError>();
    }
}
