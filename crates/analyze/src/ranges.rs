//! Value-range analysis: intraprocedural guard propagation that
//! *discharges* indexing-panic sites instead of flagging them.
//!
//! The panic-reachability analysis treats every `xs[i]` as a potential
//! panic. Most real sites are dominated by a bounds guard; this pass
//! recognizes the common forms and proves them in-bounds with printed
//! evidence, so they need neither a finding nor a `// lint: allow`
//! annotation:
//!
//! * `if i < xs.len() { … xs[i] … }` (also `while`, and the
//!   conjunction `a && i < xs.len()`);
//! * `if i >= xs.len() { return/break/continue; } … xs[i]`
//!   (early-exit inversion);
//! * `if !xs.is_empty() { … xs[0] … }` and the `is_empty` early-exit;
//! * `for i in a..xs.len() { … xs[i] … }` (exclusive ranges only);
//! * `let k = xs.len() / 2; … xs[..k]` (`k ≤ len` upper-bound facts,
//!   division by a nonzero literal);
//! * `xs[..]` (full-range slices are always in bounds).
//!
//! Facts die on rebinding or reassignment of the index variable or
//! base, on a recognized mutating call (`push`, `pop`, `clear`,
//! `truncate`, `drain`, …) whose receiver overlaps the base, and at
//! the end of their guard's scope. A line is discharged only when
//! *every* index event on it is proven — the reachability analysis
//! skips whole lines. What the pass cannot see (mutation through
//! `&mut` parameters, aliasing, closure captures rebinding a name) is
//! catalogued in DESIGN.md §12's soundness envelope.

use crate::ast::{Block, CallTarget, Event, GuardCond, LenFact, StmtPart};
use crate::callgraph::CallGraph;
use std::collections::BTreeMap;

/// One indexing site proven in-bounds, with printable evidence.
#[derive(Debug, Clone)]
pub struct Discharge {
    /// Workspace-relative file path.
    pub path: String,
    /// 1-based line of the index expression.
    pub line: u32,
    /// Qualified name of the containing function.
    pub fn_qual: String,
    /// Human-readable proof sketch.
    pub evidence: String,
}

/// Methods that may change a collection's length.
const MUTATORS: &[&str] = &[
    "push",
    "push_str",
    "push_back",
    "push_front",
    "pop",
    "pop_back",
    "pop_front",
    "insert",
    "remove",
    "swap_remove",
    "clear",
    "truncate",
    "resize",
    "extend",
    "extend_from_slice",
    "append",
    "drain",
    "retain",
    "split_off",
    "take",
    "dedup",
];

/// One live bounds fact.
#[derive(Debug, Clone)]
struct Fact {
    kind: FactKind,
    /// Block depth the fact is scoped to (dies when that block ends).
    scope: usize,
    /// Evidence text: where and how the bound was established.
    src: String,
}

#[derive(Debug, Clone, PartialEq)]
enum FactKind {
    /// `var < base.len()`.
    IdxLt { var: String, base: String },
    /// `var <= base.len()`.
    IdxLe { var: String, base: String },
    /// `base.len() > 0`.
    NonEmpty { base: String },
}

/// Runs the analysis over every function, returning the proven sites.
pub fn discharges(graph: &CallGraph<'_>) -> Vec<Discharge> {
    let mut out = Vec::new();
    for id in 0..graph.nodes.len() {
        let def = graph.def(id);
        let Some(body) = &def.body else { continue };
        let file = graph.file(id);
        // line → (total index events, proven index events, evidence).
        let mut lines: BTreeMap<u32, (usize, usize, String)> = BTreeMap::new();
        let mut facts: Vec<Fact> = Vec::new();
        walk(body, 0, &mut facts, &mut lines);
        for (line, (total, proven, evidence)) in lines {
            if total == proven {
                out.push(Discharge {
                    path: file.path.clone(),
                    line,
                    fn_qual: def.qual.clone(),
                    evidence,
                });
            }
        }
    }
    out.sort_by(|a, b| (&a.path, a.line).cmp(&(&b.path, b.line)));
    out
}

/// Two chains overlap when either is a prefix path of the other
/// (`self.rbuf` vs `self` — a mutation through the shorter chain may
/// reach the longer one).
fn chains_overlap(a: &str, b: &str) -> bool {
    a == b
        || (a.len() > b.len() && a.starts_with(b) && a.as_bytes()[b.len()] == b'.')
        || (b.len() > a.len() && b.starts_with(a) && b.as_bytes()[a.len()] == b'.')
}

fn kills_name(kind: &FactKind, name: &str) -> bool {
    match kind {
        FactKind::IdxLt { var, base } | FactKind::IdxLe { var, base } => {
            chains_overlap(var, name) || chains_overlap(base, name)
        }
        FactKind::NonEmpty { base } => chains_overlap(base, name),
    }
}

fn kills_mutation(kind: &FactKind, recv: &str) -> bool {
    match kind {
        FactKind::IdxLt { base, .. }
        | FactKind::IdxLe { base, .. }
        | FactKind::NonEmpty { base } => chains_overlap(base, recv),
    }
}

/// Does executing this block always leave the enclosing block early
/// (return, break, continue, or an unconditional panic)?
fn block_exits(block: &Block) -> bool {
    block.stmts.iter().any(|s| {
        s.is_return
            || s.is_exit
            || s.parts.iter().any(|p| {
                matches!(
                    p,
                    StmtPart::Event(Event::Call(c))
                        if matches!(&c.target, CallTarget::Macro { name }
                            if matches!(name.as_str(), "panic" | "unreachable" | "todo" | "unimplemented"))
                )
            })
    })
}

fn walk(
    block: &Block,
    depth: usize,
    facts: &mut Vec<Fact>,
    lines: &mut BTreeMap<u32, (usize, usize, String)>,
) {
    for stmt in &block.stmts {
        // Rebindings, reassignments, and mutating calls kill facts
        // before anything in the statement is judged (within-statement
        // order is not tracked; killing first is the sound direction).
        for name in stmt.binds.iter().chain(stmt.assigns.iter()) {
            facts.retain(|f| !kills_name(&f.kind, name));
        }
        for part in &stmt.parts {
            if let StmtPart::Event(Event::Call(c)) = part {
                if let CallTarget::Method { name, recv } = &c.target {
                    if MUTATORS.contains(&name.as_str()) && !recv.is_empty() {
                        facts.retain(|f| !kills_mutation(&f.kind, recv));
                    }
                }
            }
        }
        // `let k = xs.len() / 2` introduces `k <= xs.len()`.
        if let (Some(LenFact::AtMostLen { base }), Some(var)) = (&stmt.len_fact, stmt.binds.first())
        {
            facts.push(Fact {
                kind: FactKind::IdxLe {
                    var: var.clone(),
                    base: base.clone(),
                },
                scope: depth,
                src: format!(
                    "`let {var} = {base}.len() …` upper bound at line {}",
                    stmt.line
                ),
            });
        }
        let mut pending: Vec<(u32, GuardCond)> = Vec::new();
        for part in &stmt.parts {
            match part {
                StmtPart::Event(Event::Guard { line, cond }) => {
                    pending.push((*line, cond.clone()));
                }
                StmtPart::Event(Event::Index { line, base, index }) => {
                    judge_index(*line, base, index, facts, lines);
                }
                StmtPart::Event(_) => {}
                StmtPart::Block(b) => {
                    let taken: Vec<(u32, GuardCond)> = std::mem::take(&mut pending);
                    let before = facts.len();
                    for (gline, cond) in &taken {
                        if let Some(fact) = positive_fact(cond, *gline, depth + 1) {
                            facts.push(fact);
                        }
                    }
                    walk(b, depth + 1, facts, lines);
                    let _ = before;
                    facts.retain(|f| f.scope <= depth);
                    if block_exits(b) {
                        for (gline, cond) in &taken {
                            if let Some(fact) = inverted_fact(cond, *gline, depth) {
                                facts.push(fact);
                            }
                        }
                    }
                }
            }
        }
    }
    facts.retain(|f| f.scope < depth || depth == 0);
}

/// The fact a guard establishes *inside* its block.
fn positive_fact(cond: &GuardCond, line: u32, scope: usize) -> Option<Fact> {
    match cond {
        GuardCond::LtLen { var, base } => Some(Fact {
            kind: FactKind::IdxLt {
                var: var.clone(),
                base: base.clone(),
            },
            scope,
            src: format!("`{var} < {base}.len()` guard at line {line}"),
        }),
        GuardCond::NotEmpty { base } => Some(Fact {
            kind: FactKind::NonEmpty { base: base.clone() },
            scope,
            src: format!("`!{base}.is_empty()` guard at line {line}"),
        }),
        GuardCond::GeLen { .. } | GuardCond::Empty { .. } => None,
    }
}

/// The fact a *negative* guard establishes after its block, when the
/// block always exits early.
fn inverted_fact(cond: &GuardCond, line: u32, scope: usize) -> Option<Fact> {
    match cond {
        GuardCond::GeLen { var, base } => Some(Fact {
            kind: FactKind::IdxLt {
                var: var.clone(),
                base: base.clone(),
            },
            scope,
            src: format!("`{var} >= {base}.len()` early-exit guard at line {line}"),
        }),
        GuardCond::Empty { base } => Some(Fact {
            kind: FactKind::NonEmpty { base: base.clone() },
            scope,
            src: format!("`{base}.is_empty()` early-exit guard at line {line}"),
        }),
        GuardCond::LtLen { .. } | GuardCond::NotEmpty { .. } => None,
    }
}

/// Records one index event at `line`, marking it proven when a live
/// fact covers it.
fn judge_index(
    line: u32,
    base: &str,
    index: &str,
    facts: &[Fact],
    lines: &mut BTreeMap<u32, (usize, usize, String)>,
) {
    let entry = lines.entry(line).or_default();
    entry.0 += 1;
    let Some(evidence) = prove(base, index, facts) else {
        return;
    };
    entry.1 += 1;
    if entry.2.is_empty() {
        entry.2 = evidence;
    }
}

/// The proof for `base[index]` under `facts`, or `None`.
fn prove(base: &str, index: &str, facts: &[Fact]) -> Option<String> {
    if base.is_empty() || index.is_empty() {
        return None;
    }
    if index == ".." {
        return Some(format!("{base}[..] full-range slice is always in bounds"));
    }
    if let Some((lhs, rhs)) = index.split_once("..") {
        // `base[a..b]`: the end bound must be ≤ len (strict or not);
        // a nonempty start bound additionally needs start ≤ end, which
        // only the plain-variable end forms guarantee via `a ≤ b`…
        // so only empty-start (`..k`) and empty-end (`k..`) forms are
        // provable here.
        if !lhs.is_empty() && !rhs.is_empty() {
            return None;
        }
        let var = if rhs.is_empty() { lhs } else { rhs };
        return facts.iter().find_map(|f| match &f.kind {
            FactKind::IdxLt { var: v, base: b } | FactKind::IdxLe { var: v, base: b }
                if v == var && b == base =>
            {
                Some(format!("{base}[{index}] in bounds: {}", f.src))
            }
            _ => None,
        });
    }
    if index == "0" {
        return facts.iter().find_map(|f| match &f.kind {
            FactKind::NonEmpty { base: b } if b == base => {
                Some(format!("{base}[0] in bounds: {}", f.src))
            }
            _ => None,
        });
    }
    facts.iter().find_map(|f| match &f.kind {
        FactKind::IdxLt { var: v, base: b } if v == index && b == base => {
            Some(format!("{base}[{index}] in bounds: {}", f.src))
        }
        _ => None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::callgraph::Workspace;

    fn run(src: &str) -> Vec<Discharge> {
        let inputs = vec![("crates/serve/src/service.rs".to_owned(), src.to_owned())];
        let ws = Workspace::parse(&inputs);
        let graph = CallGraph::build(&ws);
        discharges(&graph)
    }

    #[test]
    fn lt_len_guard_discharges_the_index() {
        let d = run("fn f(xs: &[u8], i: usize) -> u8 { if i < xs.len() { xs[i] } else { 0 } }");
        assert_eq!(d.len(), 1, "{d:?}");
        assert!(d[0].evidence.contains("`i < xs.len()` guard"), "{d:?}");
    }

    #[test]
    fn unguarded_index_is_not_discharged() {
        let d = run("fn f(xs: &[u8], i: usize) -> u8 { xs[i] }");
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn early_exit_inversion_discharges_later_statements() {
        let d = run(
            "fn f(xs: &[u8], i: usize) -> u8 { if i >= xs.len() { return 0; } let v = xs[i]; v }",
        );
        assert_eq!(d.len(), 1, "{d:?}");
        assert!(d[0].evidence.contains("early-exit guard"), "{d:?}");
    }

    #[test]
    fn for_range_over_len_discharges_the_body_index() {
        let d = run("fn f(xs: &[u8]) { for i in 0..xs.len() { use_it(xs[i]); } }");
        assert_eq!(d.len(), 1, "{d:?}");
    }

    #[test]
    fn mutation_between_guard_and_index_kills_the_fact() {
        let d = run("fn f(xs: &mut Vec<u8>, i: usize) { if i < xs.len() { xs.push(0); xs[i]; } }");
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn reassignment_of_the_index_var_kills_the_fact() {
        let d = run("fn f(xs: &[u8], mut i: usize) { if i < xs.len() { i += 1; xs[i]; } }");
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn len_division_fact_discharges_prefix_slice() {
        let d = run("fn f(xs: &[u8]) { let half = xs.len() / 2; use_it(&xs[..half]); }");
        assert_eq!(d.len(), 1, "{d:?}");
        assert!(d[0].evidence.contains("upper bound"), "{d:?}");
    }

    #[test]
    fn not_empty_guard_discharges_index_zero() {
        let d = run("fn f(xs: &[u8]) -> u8 { if !xs.is_empty() { xs[0] } else { 0 } }");
        assert_eq!(d.len(), 1, "{d:?}");
    }

    #[test]
    fn guard_does_not_leak_into_the_else_branch() {
        let d = run("fn f(xs: &[u8], i: usize) -> u8 { if i < xs.len() { 0 } else { xs[i] } }");
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn disjunction_is_never_a_guard() {
        let d = run("fn f(xs: &[u8], i: usize, b: bool) { if i < xs.len() || b { xs[i]; } }");
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn partially_proven_lines_are_not_discharged() {
        let d = run(
            "fn f(xs: &[u8], ys: &[u8], i: usize) { if i < xs.len() { let v = xs[i] + ys[i]; } }",
        );
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn as_bytes_preserves_the_base_length() {
        let d = run("fn f(s: &str) { let half = s.len() / 2; use_it(&s.as_bytes()[..half]); }");
        assert_eq!(d.len(), 1, "{d:?}");
    }
}
