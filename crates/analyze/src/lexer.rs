//! A std-only, token-level Rust lexer for the workspace lint.
//!
//! The lint rules need exactly enough lexical structure to be sound:
//! identifiers must be whole words (`unwrap_or_else` must not match
//! `unwrap`), string literals and comments must be recognized so their
//! *contents* never produce code findings (and so annotations can live
//! in comments and format strings can be inspected), and `#[cfg(test)]`
//! items must be skippable by brace tracking. Full parsing is
//! deliberately out of scope — every rule is expressible over the token
//! stream.
//!
//! The lexer never fails: malformed input (an unterminated string at
//! end of file) lexes to a final literal token reaching EOF. That
//! matters for a lint driver — it must report on any file the compiler
//! would reject, not crash before rustc gets a chance to complain.

/// What a token is, at the granularity the lint rules need.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (including raw `r#ident`).
    Ident,
    /// Lifetime (`'a`) — distinguished from char literals.
    Lifetime,
    /// Numeric literal.
    Number,
    /// String-like literal: `"…"`, `r"…"`, `r#"…"#`, `b"…"`, `br#"…"#`.
    Str,
    /// Char or byte literal: `'x'`, `b'\n'`.
    Char,
    /// `// …` comment (annotations live here; `///` doc comments share
    /// the kind — they cannot carry annotations because the grammar
    /// requires the comment to start with exactly `//`).
    LineComment,
    /// `/* … */` comment (nesting handled).
    BlockComment,
    /// A single punctuation character.
    Punct,
}

/// One token: kind, the exact source slice, and its 1-based start line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Token<'a> {
    /// Token class.
    pub kind: TokenKind,
    /// Exact source text of the token.
    pub text: &'a str,
    /// 1-based line of the token's first character.
    pub line: u32,
}

impl Token<'_> {
    /// `true` for comments of either kind.
    pub fn is_comment(&self) -> bool {
        matches!(self.kind, TokenKind::LineComment | TokenKind::BlockComment)
    }

    /// `true` for a punctuation token of exactly `c`.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokenKind::Punct && self.text.starts_with(c)
    }

    /// `true` for an identifier token equal to `name`.
    pub fn is_ident(&self, name: &str) -> bool {
        self.kind == TokenKind::Ident && self.text == name
    }
}

/// Lexes `src` into tokens. Infallible; see the module docs.
pub fn lex(src: &str) -> Vec<Token<'_>> {
    Lexer {
        src,
        bytes: src.as_bytes(),
        pos: 0,
        line: 1,
    }
    .run()
}

struct Lexer<'a> {
    src: &'a str,
    bytes: &'a [u8],
    pos: usize,
    line: u32,
}

impl<'a> Lexer<'a> {
    fn run(mut self) -> Vec<Token<'a>> {
        let mut out = Vec::new();
        while let Some(&b) = self.bytes.get(self.pos) {
            let start = self.pos;
            let line = self.line;
            let kind = match b {
                b' ' | b'\t' | b'\r' => {
                    self.pos += 1;
                    continue;
                }
                b'\n' => {
                    self.pos += 1;
                    self.line += 1;
                    continue;
                }
                b'/' if self.peek(1) == Some(b'/') => {
                    self.take_while(|c| c != b'\n');
                    TokenKind::LineComment
                }
                b'/' if self.peek(1) == Some(b'*') => {
                    self.block_comment();
                    TokenKind::BlockComment
                }
                b'r' | b'b' => {
                    if let Some(kind) = self.maybe_raw_or_byte_literal() {
                        kind
                    } else {
                        self.ident();
                        TokenKind::Ident
                    }
                }
                b'"' => {
                    self.pos += 1;
                    self.quoted(b'"');
                    TokenKind::Str
                }
                b'\'' => self.lifetime_or_char(),
                b'0'..=b'9' => {
                    self.number();
                    TokenKind::Number
                }
                b'_' | b'a'..=b'z' | b'A'..=b'Z' => {
                    self.ident();
                    TokenKind::Ident
                }
                _ => {
                    // Multi-byte UTF-8 (only possible in the rare
                    // non-ASCII identifier or stray char) advances by
                    // the full scalar so slices stay char-aligned.
                    let ch_len = self.src[self.pos..]
                        .chars()
                        .next()
                        .map_or(1, char::len_utf8);
                    self.pos += ch_len;
                    TokenKind::Punct
                }
            };
            out.push(Token {
                kind,
                text: &self.src[start..self.pos],
                line,
            });
        }
        out
    }

    fn peek(&self, ahead: usize) -> Option<u8> {
        self.bytes.get(self.pos + ahead).copied()
    }

    fn take_while(&mut self, f: impl Fn(u8) -> bool) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if !f(b) {
                break;
            }
            if b == b'\n' {
                self.line += 1;
            }
            self.pos += 1;
        }
    }

    fn block_comment(&mut self) {
        self.pos += 2;
        let mut depth = 1usize;
        while depth > 0 {
            match (self.peek(0), self.peek(1)) {
                (Some(b'/'), Some(b'*')) => {
                    depth += 1;
                    self.pos += 2;
                }
                (Some(b'*'), Some(b'/')) => {
                    depth -= 1;
                    self.pos += 2;
                }
                (Some(b'\n'), _) => {
                    self.line += 1;
                    self.pos += 1;
                }
                (Some(_), _) => self.pos += 1,
                (None, _) => break,
            }
        }
    }

    /// Handles `r"…"`, `r#"…"#`, `b"…"`, `b'…'`, `br#"…"#`, `rb` does
    /// not exist. Returns `None` when the `r`/`b` starts a plain
    /// identifier (including raw identifiers `r#ident`).
    fn maybe_raw_or_byte_literal(&mut self) -> Option<TokenKind> {
        let first = self.bytes[self.pos];
        let mut look = self.pos + 1;
        if first == b'b' {
            match self.bytes.get(look) {
                Some(b'\'') => {
                    // Byte literal b'…'.
                    self.pos = look + 1;
                    self.quoted(b'\'');
                    return Some(TokenKind::Char);
                }
                Some(b'"') => {
                    self.pos = look + 1;
                    self.quoted(b'"');
                    return Some(TokenKind::Str);
                }
                Some(b'r') => look += 1,
                _ => return None,
            }
        }
        // Here a raw string `r…` (possibly after `b`): count hashes.
        let mut hashes = 0usize;
        while self.bytes.get(look + hashes) == Some(&b'#') {
            hashes += 1;
        }
        if self.bytes.get(look + hashes) != Some(&b'"') {
            // `r#ident` raw identifier or a plain ident starting with r/b.
            return None;
        }
        self.pos = look + hashes + 1;
        // Consume until `"` followed by `hashes` hashes.
        loop {
            match self.bytes.get(self.pos) {
                None => break,
                Some(b'\n') => {
                    self.line += 1;
                    self.pos += 1;
                }
                Some(b'"') => {
                    let mut k = 0usize;
                    while k < hashes && self.bytes.get(self.pos + 1 + k) == Some(&b'#') {
                        k += 1;
                    }
                    self.pos += 1 + k;
                    if k == hashes {
                        break;
                    }
                }
                Some(_) => self.pos += 1,
            }
        }
        Some(TokenKind::Str)
    }

    /// Consumes a (non-raw) quoted literal body up to the closing
    /// `quote`, honoring backslash escapes. The opening quote is
    /// already consumed.
    fn quoted(&mut self, quote: u8) {
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'\\' => {
                    if self.peek(1) == Some(b'\n') {
                        self.line += 1; // string line-continuation
                    }
                    self.pos += 2.min(self.bytes.len() - self.pos);
                }
                b'\n' => {
                    self.line += 1;
                    self.pos += 1;
                }
                _ => {
                    self.pos += 1;
                    if b == quote {
                        break;
                    }
                }
            }
        }
    }

    /// Disambiguates `'a` (lifetime) from `'x'` / `'\n'` (char
    /// literal): after the quote, an escape or a "short" body closed by
    /// another quote is a char; an identifier not followed by `'` is a
    /// lifetime.
    fn lifetime_or_char(&mut self) -> TokenKind {
        self.pos += 1;
        match self.peek(0) {
            Some(b'\\') => {
                self.quoted(b'\''); // escape then closing quote
                TokenKind::Char
            }
            Some(b) if b == b'_' || b.is_ascii_alphabetic() => {
                // `'a'` is a char, `'abc` (no closing quote after the
                // ident) is a lifetime.
                let mut look = self.pos;
                while self
                    .bytes
                    .get(look)
                    .is_some_and(|c| c.is_ascii_alphanumeric() || *c == b'_')
                {
                    look += 1;
                }
                if self.bytes.get(look) == Some(&b'\'') {
                    self.pos = look + 1;
                    TokenKind::Char
                } else {
                    self.pos = look;
                    TokenKind::Lifetime
                }
            }
            Some(b'\'') => {
                // Empty char literal `''` — malformed; consume both.
                self.pos += 1;
                TokenKind::Char
            }
            _ => {
                self.quoted(b'\'');
                TokenKind::Char
            }
        }
    }

    fn number(&mut self) {
        // Digits, underscores, radix prefixes and type suffixes; a `.`
        // continues the number only when followed by a digit, so range
        // expressions (`0..n`) lex as Number, Punct, Punct.
        self.take_while(|b| b.is_ascii_alphanumeric() || b == b'_');
        if self.peek(0) == Some(b'.') && self.peek(1).is_some_and(|b| b.is_ascii_digit()) {
            self.pos += 1;
            self.take_while(|b| b.is_ascii_alphanumeric() || b == b'_');
        }
        // Exponent sign: `1e-9` — the `e` was consumed above, a sign
        // followed by digits continues the literal.
        if matches!(self.peek(0), Some(b'+') | Some(b'-'))
            && matches!(
                self.bytes.get(self.pos.wrapping_sub(1)),
                Some(b'e') | Some(b'E')
            )
            && self.peek(1).is_some_and(|b| b.is_ascii_digit())
        {
            self.pos += 1;
            self.take_while(|b| b.is_ascii_alphanumeric() || b == b'_');
        }
    }

    fn ident(&mut self) {
        // Raw identifier prefix `r#` is glued to the word.
        if self.peek(0) == Some(b'r') && self.peek(1) == Some(b'#') {
            self.pos += 2;
        }
        self.take_while(|b| b.is_ascii_alphanumeric() || b == b'_');
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokenKind, &str)> {
        lex(src).into_iter().map(|t| (t.kind, t.text)).collect()
    }

    #[test]
    fn idents_and_punct() {
        assert_eq!(
            kinds("foo.bar()"),
            vec![
                (TokenKind::Ident, "foo"),
                (TokenKind::Punct, "."),
                (TokenKind::Ident, "bar"),
                (TokenKind::Punct, "("),
                (TokenKind::Punct, ")"),
            ]
        );
    }

    #[test]
    fn unwrap_or_else_is_one_ident() {
        let toks = lex("x.unwrap_or_else(|| 0)");
        assert!(toks.iter().any(|t| t.is_ident("unwrap_or_else")));
        assert!(!toks.iter().any(|t| t.is_ident("unwrap")));
    }

    #[test]
    fn comments_are_tokens_with_text() {
        let toks = lex("a // lint: allow(panic, fine)\nb /* block\nspans */ c");
        assert_eq!(toks[1].kind, TokenKind::LineComment);
        assert!(toks[1].text.contains("allow(panic"));
        assert_eq!(toks[3].kind, TokenKind::BlockComment);
        let c = toks.iter().find(|t| t.is_ident("c")).unwrap();
        assert_eq!(c.line, 3, "block comment newlines advance the line");
    }

    #[test]
    fn nested_block_comments() {
        let toks = lex("/* a /* b */ c */ x");
        assert_eq!(toks.len(), 2);
        assert_eq!(toks[1].text, "x");
    }

    #[test]
    fn string_contents_do_not_leak_tokens() {
        let toks = lex(r#"let s = "Instant::now() // not code";"#);
        assert!(!toks.iter().any(|t| t.is_ident("Instant")));
        assert!(toks.iter().any(|t| t.kind == TokenKind::Str));
    }

    #[test]
    fn escaped_quotes_in_strings() {
        let toks = lex(r#""a\"b" x"#);
        assert_eq!(toks[0].kind, TokenKind::Str);
        assert_eq!(toks[0].text, r#""a\"b""#);
        assert_eq!(toks[1].text, "x");
    }

    #[test]
    fn raw_strings_with_hashes() {
        let toks = lex(r###"r#"has "quotes" inside"# y"###);
        assert_eq!(toks[0].kind, TokenKind::Str);
        assert_eq!(toks[1].text, "y");
    }

    #[test]
    fn byte_and_raw_byte_strings() {
        let toks = lex(r###"b"bytes" br#"raw"# b'x' z"###);
        assert_eq!(toks[0].kind, TokenKind::Str);
        assert_eq!(toks[1].kind, TokenKind::Str);
        assert_eq!(toks[2].kind, TokenKind::Char);
        assert_eq!(toks[3].text, "z");
    }

    #[test]
    fn lifetimes_vs_char_literals() {
        let toks = lex("fn f<'a>(x: &'a str) { let c = 'q'; let n = '\\n'; }");
        let lifetimes: Vec<_> = toks
            .iter()
            .filter(|t| t.kind == TokenKind::Lifetime)
            .collect();
        assert_eq!(lifetimes.len(), 2);
        let chars: Vec<_> = toks.iter().filter(|t| t.kind == TokenKind::Char).collect();
        assert_eq!(chars.len(), 2);
    }

    #[test]
    fn raw_identifiers_are_idents() {
        let toks = lex("r#type x");
        assert_eq!(toks[0].kind, TokenKind::Ident);
        assert_eq!(toks[0].text, "r#type");
    }

    #[test]
    fn numbers_do_not_swallow_ranges() {
        let toks = lex("for i in 0..17e2 {}");
        let nums: Vec<_> = toks
            .iter()
            .filter(|t| t.kind == TokenKind::Number)
            .map(|t| t.text)
            .collect();
        assert_eq!(nums, vec!["0", "17e2"]);
    }

    #[test]
    fn negative_exponent_floats() {
        let toks = lex("let x = 1.5e-9;");
        assert!(toks.iter().any(|t| t.text == "1.5e-9"));
    }

    #[test]
    fn line_numbers_are_accurate() {
        let toks = lex("a\nb\n\nc");
        let lines: Vec<u32> = toks.iter().map(|t| t.line).collect();
        assert_eq!(lines, vec![1, 2, 4]);
    }

    #[test]
    fn unterminated_string_reaches_eof_without_panic() {
        let toks = lex("let s = \"never closed");
        assert_eq!(toks.last().unwrap().kind, TokenKind::Str);
    }
}
