//! Exhaustive structural verification of the whole design space.
//!
//! ```text
//! cargo run --release -p oa-analyze --bin oa_sweep
//! ```
//!
//! Elaborates each of the 30,625 topologies at its nominal parameter
//! point and at both parameter-space corners, runs the full structural
//! verifier on every netlist, and prints a summary. Exits non-zero if
//! any topology fails — the CI gate proving the generator/elaborator
//! pair never emits a structurally singular candidate.

use std::process::ExitCode;

fn main() -> ExitCode {
    let report = oa_analyze::sweep_design_space();
    println!(
        "oa_sweep: checked {} topologies, {} structural failure(s)",
        report.checked,
        report.failures.len()
    );
    for (index, err) in report.failures.iter().take(20) {
        println!("  topology {index}: {err}");
    }
    if report.failures.len() > 20 {
        println!("  ... and {} more", report.failures.len() - 20);
    }
    if report.failures.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
