//! Workspace lint driver: lexes every first-party `.rs` file and
//! applies the rules in [`oa_analyze::lint`].
//!
//! Usage:
//!
//! ```text
//! cargo run -p oa-analyze --bin oa_lint [-- <workspace-root>] [--list-rules]
//! ```
//!
//! Scans `crates/*/src/**` under the workspace root (default: the
//! current directory), skipping `vendor/`, `target/`, and per-crate
//! `tests/`/`benches/`/`examples/` trees. Findings print one per line
//! in deterministic path/line order; the exit status is 1 if any rule
//! fired and 0 otherwise.

use std::path::{Path, PathBuf};
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut root = PathBuf::from(".");
    for arg in std::env::args().skip(1) {
        if arg == "--list-rules" {
            for rule in oa_analyze::lint::RULES {
                println!("{:<22} {}", rule.name, rule.description);
            }
            return ExitCode::SUCCESS;
        }
        root = PathBuf::from(arg);
    }

    let crates_dir = root.join("crates");
    if !crates_dir.is_dir() {
        eprintln!(
            "oa_lint: no crates/ directory under {}; run from the workspace root",
            root.display()
        );
        return ExitCode::FAILURE;
    }

    let mut files = Vec::new();
    for krate in sorted_dirs(&crates_dir) {
        let src = krate.join("src");
        if src.is_dir() {
            collect_rs(&src, &mut files);
        }
    }
    files.sort();

    let mut findings = Vec::new();
    let mut scanned = 0usize;
    for path in &files {
        let source = match std::fs::read_to_string(path) {
            Ok(s) => s,
            Err(err) => {
                eprintln!("oa_lint: cannot read {}: {err}", path.display());
                return ExitCode::FAILURE;
            }
        };
        let rel = relative_to(path, &root);
        findings.extend(oa_analyze::lint_source(&rel, &source));
        scanned += 1;
    }

    findings.sort_by(|a, b| (&a.path, a.line, a.rule).cmp(&(&b.path, b.line, b.rule)));
    for finding in &findings {
        println!("{finding}");
    }
    if findings.is_empty() {
        eprintln!("oa_lint: {scanned} files clean");
        ExitCode::SUCCESS
    } else {
        eprintln!(
            "oa_lint: {} finding(s) across {scanned} files",
            findings.len()
        );
        ExitCode::FAILURE
    }
}

/// Immediate subdirectories of `dir`, sorted by name for deterministic
/// output across filesystems.
fn sorted_dirs(dir: &Path) -> Vec<PathBuf> {
    let mut out = Vec::new();
    if let Ok(entries) = std::fs::read_dir(dir) {
        for entry in entries.flatten() {
            let path = entry.path();
            if path.is_dir() {
                out.push(path);
            }
        }
    }
    out.sort();
    out
}

/// Recursively collects `.rs` files under `dir` (which is always a
/// crate `src/` tree, so no skip-list is needed below it).
fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    let mut paths: Vec<PathBuf> = entries.flatten().map(|e| e.path()).collect();
    paths.sort();
    for path in paths {
        if path.is_dir() {
            collect_rs(&path, out);
        } else if path.extension().is_some_and(|ext| ext == "rs") {
            out.push(path);
        }
    }
}

/// Workspace-relative display path with forward slashes (the form
/// `lint::scope_of` keys on).
fn relative_to(path: &Path, root: &Path) -> String {
    let rel = path.strip_prefix(root).unwrap_or(path);
    rel.components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}
