//! Workspace lint driver, v4: two engines, SARIF output, diff-aware
//! baseline gating, and wire-schema conformance.
//!
//! Usage:
//!
//! ```text
//! oa_lint [--engine=ast|token] [--list-rules] [--timings]
//!         [--sarif=<path>] [--baseline=<path>] [--write-baseline=<path>]
//!         [--explain-discharges] [<workspace-root>]
//! oa_lint callgraph [--dot] [--check] [<workspace-root>]
//! oa_lint wire [--check] [<workspace-root>]
//! ```
//!
//! The default `--engine=ast` parses every first-party file, builds the
//! workspace call graph, and runs the interprocedural analyses (panic
//! reachability with value-range discharge, lock-order cycles,
//! determinism taint, the effect rules `nonblocking_event_loop` /
//! `alloc_free_kernel` / `lock_across_blocking`, and the wire-schema
//! conformance rules `wire_*` against `crates/serve/protocol.spec`)
//! alongside the token-shaped rules. `--engine=token` is the original
//! per-file scanner, kept as a fallback and for A/B comparison.
//!
//! * `--sarif=<path>` additionally writes the run as a SARIF 2.1.0 log.
//! * `--baseline=<path>` switches to diff-aware mode: only findings
//!   whose fingerprint is absent from the committed snapshot print and
//!   gate the exit code; pre-existing debt is counted but suppressed.
//! * `--write-baseline=<path>` writes the current fingerprints as the
//!   new snapshot (review the diff before committing it).
//! * `--timings` appends `engine=… files=… fns=… edges=… discharged=…
//!   parse_ms=… callgraph_ms=… ranges_ms=… effects_ms=… wire_ms=…
//!   elapsed_ms=…` to the stderr summary, for
//!   `scripts/bench_smoke.sh`.
//! * `--explain-discharges` prints each indexing site the value-range
//!   analysis proved in-bounds, with its evidence.
//!
//! `callgraph` prints the workspace call graph as TSV (or DOT with
//! `--dot`). `--check` instead diffs the TSV against the committed
//! snapshot (`crates/analyze/tests/snapshots/callgraph.tsv`) and
//! verifies the lock-acquisition graph is acyclic — the CI gate.
//!
//! `wire` prints the extracted wire-schema catalogue as TSV (every op
//! the dispatch emits, every routing arm, every kind constant and its
//! read sites, response-field and frame-skeleton rows). `--check`
//! instead diffs it against the committed snapshot
//! (`crates/analyze/tests/snapshots/wire.tsv`) — the CI gate that
//! makes any wire-surface change show up in review as a snapshot
//! diff. Regenerate with `oa_lint wire > <snapshot>`.
//!
//! Scans `crates/*/src/**` under the workspace root (default: the
//! current directory). Findings print one per line in deterministic
//! path/line order; exit status is 1 if any gating rule fired and 0
//! otherwise.

use oa_analyze::callgraph::{CallGraph, Workspace};
use oa_analyze::engine::{self, Engine, WireInput};
use oa_analyze::{locks, sarif, wire};
use std::path::{Path, PathBuf};
use std::process::ExitCode;

const SNAPSHOT: &str = "crates/analyze/tests/snapshots/callgraph.tsv";
const WIRE_SNAPSHOT: &str = "crates/analyze/tests/snapshots/wire.tsv";
const SPEC_PATH: &str = "crates/serve/protocol.spec";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut engine = Engine::Ast;
    let mut root = PathBuf::from(".");
    let mut callgraph = false;
    let mut wire_cmd = false;
    let mut dot = false;
    let mut check = false;
    let mut timings = false;
    let mut explain_discharges = false;
    let mut sarif_path: Option<PathBuf> = None;
    let mut baseline_path: Option<PathBuf> = None;
    let mut write_baseline_path: Option<PathBuf> = None;
    for arg in args.iter() {
        match arg.as_str() {
            "--list-rules" => {
                for rule in oa_analyze::lint::RULES {
                    println!("{:<22} {}", rule.name, rule.description);
                }
                return ExitCode::SUCCESS;
            }
            "callgraph" => callgraph = true,
            "wire" => wire_cmd = true,
            "--dot" => dot = true,
            "--check" => check = true,
            "--timings" => timings = true,
            "--explain-discharges" => explain_discharges = true,
            other => {
                if let Some(name) = other.strip_prefix("--engine=") {
                    match Engine::parse(name) {
                        Some(e) => engine = e,
                        None => {
                            eprintln!("oa_lint: unknown engine {name:?} (ast|token)");
                            return ExitCode::FAILURE;
                        }
                    }
                } else if let Some(path) = other.strip_prefix("--sarif=") {
                    sarif_path = Some(PathBuf::from(path));
                } else if let Some(path) = other.strip_prefix("--baseline=") {
                    baseline_path = Some(PathBuf::from(path));
                } else if let Some(path) = other.strip_prefix("--write-baseline=") {
                    write_baseline_path = Some(PathBuf::from(path));
                } else if other.starts_with("--") {
                    eprintln!("oa_lint: unknown flag {other:?}");
                    return ExitCode::FAILURE;
                } else {
                    root = PathBuf::from(other);
                }
            }
        }
    }

    let inputs = match read_workspace(&root) {
        Ok(inputs) => inputs,
        Err(msg) => {
            eprintln!("oa_lint: {msg}");
            return ExitCode::FAILURE;
        }
    };

    if callgraph {
        return run_callgraph(&root, &inputs, dot, check);
    }
    if wire_cmd {
        return run_wire(&root, &inputs, check);
    }

    // The wire pass reads the declared protocol; a missing or
    // unreadable spec is itself a finding (`wire_spec`), not an abort.
    let wire_input = WireInput {
        path: SPEC_PATH.to_owned(),
        text: std::fs::read_to_string(root.join(SPEC_PATH)).ok(),
    };

    // lint: allow(wall_clock, CLI timing line, not a response path)
    let started = std::time::Instant::now();
    let report = engine::run_with(engine, &inputs, Some(&wire_input));

    if let Some(path) = &sarif_path {
        if let Err(err) = std::fs::write(path, sarif::to_sarif(&report)) {
            eprintln!("oa_lint: cannot write {}: {err}", path.display());
            return ExitCode::FAILURE;
        }
        eprintln!("oa_lint: wrote SARIF log to {}", path.display());
    }
    if let Some(path) = &write_baseline_path {
        if let Err(err) = std::fs::write(path, sarif::write_baseline(&report.findings)) {
            eprintln!("oa_lint: cannot write {}: {err}", path.display());
            return ExitCode::FAILURE;
        }
        eprintln!(
            "oa_lint: wrote baseline ({} fingerprint(s)) to {}",
            report.findings.len(),
            path.display()
        );
    }
    if explain_discharges {
        for d in &report.discharged {
            println!(
                "{}:{}: [discharged] in {}: {}",
                d.path, d.line, d.fn_qual, d.evidence
            );
        }
    }

    // Diff-aware mode: only findings new relative to the baseline
    // print and gate; pre-existing debt is counted but suppressed.
    let gating: Vec<&oa_analyze::Finding> = match &baseline_path {
        Some(path) => match std::fs::read_to_string(path) {
            Ok(text) => sarif::diff(&report.findings, &sarif::parse_baseline(&text)),
            Err(err) => {
                eprintln!("oa_lint: cannot read baseline {}: {err}", path.display());
                return ExitCode::FAILURE;
            }
        },
        None => report.findings.iter().collect(),
    };
    for finding in &gating {
        println!("{finding}");
    }

    let label = match engine {
        Engine::Ast => "ast",
        Engine::Token => "token",
    };
    let timing = if timings {
        let t = &report.timings;
        format!(
            " (engine={label} files={} fns={} edges={} discharged={} \
             parse_ms={} callgraph_ms={} ranges_ms={} effects_ms={} wire_ms={} elapsed_ms={})",
            report.files,
            report.fns,
            report.edges,
            report.discharged.len(),
            t.parse_ms,
            t.callgraph_ms,
            t.ranges_ms,
            t.effects_ms,
            t.wire_ms,
            started.elapsed().as_millis()
        )
    } else {
        String::new()
    };
    if gating.is_empty() {
        let suppressed = report.findings.len();
        if baseline_path.is_some() && suppressed > 0 {
            eprintln!("oa_lint: clean vs baseline ({suppressed} pre-existing suppressed){timing}");
        } else {
            eprintln!("oa_lint: clean{timing}");
        }
        ExitCode::SUCCESS
    } else if baseline_path.is_some() {
        let suppressed = report.findings.len() - gating.len();
        eprintln!(
            "oa_lint: {} new finding(s) vs baseline ({suppressed} pre-existing suppressed){timing}",
            gating.len()
        );
        ExitCode::FAILURE
    } else {
        eprintln!("oa_lint: {} finding(s){timing}", gating.len());
        ExitCode::FAILURE
    }
}

/// The `wire` subcommand: dump the extracted wire-schema catalogue as
/// TSV, or `--check` it against the committed snapshot.
fn run_wire(root: &Path, inputs: &[(String, String)], check: bool) -> ExitCode {
    let ws = Workspace::parse(inputs);
    let tsv = wire::render_tsv(&wire::extract(&ws));
    if !check {
        print!("{tsv}");
        return ExitCode::SUCCESS;
    }
    let snap_path = root.join(WIRE_SNAPSHOT);
    match std::fs::read_to_string(&snap_path) {
        Ok(snap) if snap == tsv => {
            eprintln!(
                "oa_lint: wire catalogue matches snapshot ({} row(s))",
                tsv.lines().count() - 1
            );
            ExitCode::SUCCESS
        }
        Ok(snap) => {
            eprintln!(
                "oa_lint: wire catalogue drifted from snapshot ({} rows now, {} in snapshot);\n\
                 regenerate with `oa_lint wire > {WIRE_SNAPSHOT}` and review the diff",
                tsv.lines().count() - 1,
                snap.lines().count() - 1
            );
            ExitCode::FAILURE
        }
        Err(err) => {
            eprintln!("oa_lint: cannot read {}: {err}", snap_path.display());
            ExitCode::FAILURE
        }
    }
}

/// The `callgraph` subcommand: dump TSV/DOT, or `--check` against the
/// snapshot + lock-graph acyclicity.
fn run_callgraph(root: &Path, inputs: &[(String, String)], dot: bool, check: bool) -> ExitCode {
    let ws = Workspace::parse(inputs);
    let graph = CallGraph::build(&ws);
    if check {
        let tsv = graph.to_tsv();
        let snap_path = root.join(SNAPSHOT);
        let mut ok = true;
        match std::fs::read_to_string(&snap_path) {
            Ok(snap) if snap == tsv => {
                eprintln!(
                    "oa_lint: callgraph matches snapshot ({} lines)",
                    tsv.lines().count()
                );
            }
            Ok(snap) => {
                ok = false;
                eprintln!(
                    "oa_lint: callgraph drifted from snapshot ({} lines now, {} in snapshot);\n\
                     regenerate with `oa_lint callgraph > {SNAPSHOT}` and review the diff",
                    tsv.lines().count(),
                    snap.lines().count()
                );
            }
            Err(err) => {
                ok = false;
                eprintln!("oa_lint: cannot read {}: {err}", snap_path.display());
            }
        }
        let lock_graph = locks::lock_graph(&graph);
        let cycles = lock_graph.cycles();
        if cycles.is_empty() {
            eprintln!(
                "oa_lint: lock graph acyclic ({} ordered pair(s))",
                lock_graph.edges.len()
            );
        } else {
            ok = false;
            for cycle in &cycles {
                let names: Vec<&str> = cycle.iter().map(|(a, _)| a.as_str()).collect();
                eprintln!("oa_lint: lock cycle: {}", names.join(" -> "));
            }
        }
        return if ok {
            ExitCode::SUCCESS
        } else {
            ExitCode::FAILURE
        };
    }
    if dot {
        print!("{}", graph.to_dot());
    } else {
        print!("{}", graph.to_tsv());
    }
    ExitCode::SUCCESS
}

/// Reads every first-party `.rs` file under `<root>/crates/*/src/`
/// into `(workspace-relative path, source)` pairs.
fn read_workspace(root: &Path) -> Result<Vec<(String, String)>, String> {
    let crates_dir = root.join("crates");
    if !crates_dir.is_dir() {
        return Err(format!(
            "no crates/ directory under {}; run from the workspace root",
            root.display()
        ));
    }
    let mut files = Vec::new();
    for krate in sorted_dirs(&crates_dir) {
        let src = krate.join("src");
        if src.is_dir() {
            collect_rs(&src, &mut files);
        }
    }
    files.sort();
    let mut inputs = Vec::new();
    for path in &files {
        let source = std::fs::read_to_string(path)
            .map_err(|err| format!("cannot read {}: {err}", path.display()))?;
        inputs.push((relative_to(path, root), source));
    }
    Ok(inputs)
}

/// Immediate subdirectories of `dir`, sorted by name for deterministic
/// output across filesystems.
fn sorted_dirs(dir: &Path) -> Vec<PathBuf> {
    let mut out = Vec::new();
    if let Ok(entries) = std::fs::read_dir(dir) {
        for entry in entries.flatten() {
            let path = entry.path();
            if path.is_dir() {
                out.push(path);
            }
        }
    }
    out.sort();
    out
}

/// Recursively collects `.rs` files under `dir` (which is always a
/// crate `src/` tree, so no skip-list is needed below it).
fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    let mut paths: Vec<PathBuf> = entries.flatten().map(|e| e.path()).collect();
    paths.sort();
    for path in paths {
        if path.is_dir() {
            collect_rs(&path, out);
        } else if path.extension().is_some_and(|ext| ext == "rs") {
            out.push(path);
        }
    }
}

/// Workspace-relative display path with forward slashes (the form
/// `lint::scope_of` keys on).
fn relative_to(path: &Path, root: &Path) -> String {
    let rel = path.strip_prefix(root).unwrap_or(path);
    rel.components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}
