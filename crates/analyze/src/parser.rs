//! A std-only recursive-descent parser over the [`lexer`](crate::lexer)
//! token stream, producing the item-level AST in [`ast`](crate::ast).
//!
//! The parser is *syntax-driven and total*: it never fails, never
//! panics, and degrades gracefully — an unrecognized construct skips
//! one token and resynchronizes at the next item keyword. It parses
//! exactly the structure the interprocedural analyses need:
//!
//! * items — `fn` (free, impl, trait-default, and nested-in-body),
//!   `impl`/`trait` blocks (method ownership), `use` trees (call
//!   resolution), `struct` fields (lock/taint type evidence), with
//!   `#[cfg(test)]`/`#[test]` items marked so analyses skip them;
//! * bodies — a block tree (lock-guard scope) of statements, each
//!   carrying call sites, index sites, `drop` events, `let`/`for`
//!   pattern binds, read identifiers, and lock-guard bindings.
//!
//! What it deliberately does **not** build: expression trees, operator
//! precedence, or type checking. Every approximation this forces on
//! the analyses is catalogued in DESIGN.md §10 (soundness envelope).

use crate::ast::{
    Block, CallSite, CallTarget, ConstStr, Event, FnDef, GuardCond, LenFact, Param, SourceFile,
    Stmt, StmtPart, StructDef, UseImport,
};
use crate::lexer::{lex, Token, TokenKind};

/// Item-level keywords the statement scanner must not treat as
/// expression identifiers.
const STMT_KEYWORDS: &[&str] = &[
    "let", "for", "return", "match", "if", "else", "while", "loop", "in", "move", "mut", "ref",
    "as", "break", "continue", "where", "dyn", "unsafe", "async", "await", "yield", "box", "pub",
];

/// Parses one file into its [`SourceFile`] AST. Infallible: malformed
/// source produces a partial AST, never an error.
pub fn parse_file(path: &str, crate_name: &str, src: &str) -> SourceFile {
    let tokens: Vec<Token<'_>> = lex(src).into_iter().filter(|t| !t.is_comment()).collect();
    let mut file = SourceFile {
        path: path.to_owned(),
        crate_name: crate_name.to_owned(),
        ..SourceFile::default()
    };
    let mut parser = Parser {
        toks: &tokens,
        pos: 0,
    };
    parser.items(&mut file, None, false, false);
    file
}

/// Maps a workspace-relative path to the owning crate's lib name.
pub fn crate_name_of(path: &str) -> String {
    if let Some(rest) = path.strip_prefix("crates/") {
        let dir = rest.split('/').next().unwrap_or("");
        return match dir {
            "core" => "into_oa".to_owned(),
            other => format!("oa_{}", other.replace('-', "_")),
        };
    }
    if path.starts_with("src/") {
        return "into_oa_suite".to_owned();
    }
    "unknown".to_owned()
}

struct Parser<'a, 'src> {
    toks: &'a [Token<'src>],
    pos: usize,
}

impl<'src> Parser<'_, 'src> {
    fn peek(&self) -> Option<&Token<'src>> {
        self.toks.get(self.pos)
    }

    fn peek_at(&self, ahead: usize) -> Option<&Token<'src>> {
        self.toks.get(self.pos + ahead)
    }

    fn bump(&mut self) {
        self.pos += 1;
    }

    fn eat_punct(&mut self, c: char) -> bool {
        if self.peek().is_some_and(|t| t.is_punct(c)) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn ident_text(&self) -> Option<&'src str> {
        self.peek().and_then(|t| {
            (t.kind == TokenKind::Ident).then_some(t.text.strip_prefix("r#").unwrap_or(t.text))
        })
    }

    /// Skips a balanced `<…>` generics group (the opening `<` is at the
    /// cursor). `->` arrows inside (`Fn(&T) -> R` bounds) are not
    /// closers.
    fn skip_generics(&mut self) {
        let mut depth = 0i32;
        let mut prev_minus = false;
        while let Some(t) = self.peek() {
            if t.is_punct('<') {
                depth += 1;
            } else if t.is_punct('>') && !prev_minus {
                depth -= 1;
                if depth <= 0 {
                    self.bump();
                    return;
                }
            }
            prev_minus = t.is_punct('-');
            self.bump();
        }
    }

    /// Skips a balanced bracket group whose opener is at the cursor.
    fn skip_balanced(&mut self, open: char, close: char) {
        let mut depth = 0i32;
        while let Some(t) = self.peek() {
            if t.is_punct(open) {
                depth += 1;
            } else if t.is_punct(close) {
                depth -= 1;
                if depth <= 0 {
                    self.bump();
                    return;
                }
            }
            self.bump();
        }
    }

    /// Skips to the next `;` at delimiter depth zero (consuming it) —
    /// `const`/`static`/`type` items, whose initializers may contain
    /// braces and brackets.
    fn skip_to_semi(&mut self) {
        let mut depth = 0i32;
        while let Some(t) = self.peek() {
            if t.is_punct('{') || t.is_punct('(') || t.is_punct('[') {
                depth += 1;
            } else if t.is_punct('}') || t.is_punct(')') || t.is_punct(']') {
                depth -= 1;
                if depth < 0 {
                    return; // unbalanced: let the caller resynchronize
                }
            } else if t.is_punct(';') && depth == 0 {
                self.bump();
                return;
            }
            self.bump();
        }
    }

    /// Collects type text up to (not consuming) a terminator punct at
    /// delimiter depth zero. Tokens join with single spaces — the form
    /// [`crate::ast::type_head`] and friends expect.
    fn type_text(&mut self, stop: &[char]) -> String {
        let mut depth = 0i32;
        let mut prev_minus = false;
        let mut words: Vec<&str> = Vec::new();
        while let Some(t) = self.peek() {
            let c = t.text.chars().next().unwrap_or(' ');
            if depth == 0 && stop.contains(&c) && !(c == '>' && prev_minus) {
                break;
            }
            match c {
                '<' if t.is_punct('<') => depth += 1,
                '(' | '[' if t.kind == TokenKind::Punct => depth += 1,
                '>' if t.is_punct('>') && !prev_minus => depth -= 1,
                ')' | ']' if t.kind == TokenKind::Punct => depth -= 1,
                _ => {}
            }
            if depth < 0 {
                break;
            }
            prev_minus = t.is_punct('-');
            words.push(t.text);
            self.bump();
        }
        words.join(" ")
    }

    /// Parses items until EOF or — when `closing` — the matching `}`.
    fn items(
        &mut self,
        file: &mut SourceFile,
        self_ty: Option<&str>,
        in_test: bool,
        closing: bool,
    ) {
        while let Some(t) = self.peek() {
            if t.is_punct('}') {
                if closing {
                    self.bump();
                }
                return;
            }
            let item_test = in_test | self.skip_attrs();
            self.skip_modifiers();
            let Some(word) = self.ident_text() else {
                self.bump(); // recovery: unexpected punctuation
                continue;
            };
            match word {
                "use" => {
                    self.bump();
                    self.parse_use(file);
                }
                "mod" => {
                    self.bump();
                    self.bump(); // name
                    if self.eat_punct('{') {
                        self.items(file, None, item_test, true);
                    } else {
                        self.eat_punct(';');
                    }
                }
                "fn" => {
                    self.bump();
                    let fndef = self.parse_fn(file, self_ty, item_test);
                    file.fns.push(fndef);
                }
                "impl" => {
                    self.bump();
                    self.parse_impl(file, item_test);
                }
                "trait" => {
                    self.bump();
                    let name = self.ident_text().unwrap_or("").to_owned();
                    self.bump();
                    // Generics, supertrait bounds, where clause.
                    while let Some(t) = self.peek() {
                        if t.is_punct('{') {
                            break;
                        }
                        if t.is_punct('<') {
                            self.skip_generics();
                        } else {
                            self.bump();
                        }
                    }
                    if self.eat_punct('{') {
                        self.items(file, Some(name.as_str()), item_test, true);
                    }
                }
                "struct" => {
                    self.bump();
                    self.parse_struct(file);
                }
                "enum" | "union" => {
                    self.bump();
                    self.bump(); // name
                    while let Some(t) = self.peek() {
                        if t.is_punct('{') {
                            self.skip_balanced('{', '}');
                            break;
                        }
                        if t.is_punct(';') {
                            self.bump();
                            break;
                        }
                        if t.is_punct('<') {
                            self.skip_generics();
                        } else {
                            self.bump();
                        }
                    }
                }
                "const" | "static" | "type" => {
                    // `const fn` is a fn; a const item ends at `;`.
                    if self.peek_at(1).is_some_and(|t| t.is_ident("fn")) {
                        self.bump(); // `const`
                        self.bump(); // `fn`
                        let fndef = self.parse_fn(file, self_ty, item_test);
                        file.fns.push(fndef);
                    } else {
                        let is_const = word != "type";
                        self.bump();
                        let start = self.pos;
                        self.skip_to_semi();
                        if is_const && !item_test {
                            if let Some(cs) = const_str_of(&self.toks[start..self.pos]) {
                                file.const_strs.push(cs);
                            }
                        }
                    }
                }
                "macro_rules" => {
                    self.bump();
                    self.eat_punct('!');
                    self.bump(); // macro name
                    match self.peek() {
                        Some(t) if t.is_punct('{') => self.skip_balanced('{', '}'),
                        Some(t) if t.is_punct('(') => {
                            self.skip_balanced('(', ')');
                            self.eat_punct(';');
                        }
                        _ => {}
                    }
                }
                "extern" => {
                    self.bump();
                    match self.peek() {
                        Some(t) if t.is_ident("crate") => self.skip_to_semi(),
                        Some(t) if t.kind == TokenKind::Str => {
                            self.bump();
                            if self.peek().is_some_and(|t| t.is_punct('{')) {
                                self.skip_balanced('{', '}');
                            }
                        }
                        _ => {}
                    }
                }
                _ => self.bump(), // recovery: stray identifier
            }
        }
    }

    /// Skips leading attributes, returning `true` if any marks test
    /// code (`#[test]`, `#[cfg(test)]`, `#[cfg(all(test, …))]`).
    fn skip_attrs(&mut self) -> bool {
        let mut is_test = false;
        while self.peek().is_some_and(|t| t.is_punct('#')) {
            self.bump();
            self.eat_punct('!');
            if !self.peek().is_some_and(|t| t.is_punct('[')) {
                break;
            }
            let start = self.pos;
            self.skip_balanced('[', ']');
            let attr = &self.toks[start..self.pos];
            let head = attr
                .iter()
                .find(|t| t.kind == TokenKind::Ident)
                .map_or("", |t| t.text);
            if head == "test" || (head == "cfg" && attr.iter().any(|t| t.is_ident("test"))) {
                is_test = true;
            }
        }
        is_test
    }

    /// Skips visibility and `default`/`async`/`unsafe` modifiers ahead
    /// of an item keyword.
    fn skip_modifiers(&mut self) {
        loop {
            match self.ident_text() {
                Some("pub") => {
                    self.bump();
                    if self.peek().is_some_and(|t| t.is_punct('(')) {
                        self.skip_balanced('(', ')');
                    }
                }
                Some("default" | "async" | "unsafe")
                    if self
                        .peek_at(1)
                        .is_some_and(|t| matches!(t.text, "fn" | "impl" | "trait")) =>
                {
                    self.bump();
                }
                _ => return,
            }
        }
    }

    fn parse_use(&mut self, file: &mut SourceFile) {
        let line = self.peek().map_or(0, |t| t.line);
        let prefix = Vec::new();
        self.use_tree(&prefix, file, line);
        self.eat_punct(';');
    }

    fn use_tree(&mut self, prefix: &[String], file: &mut SourceFile, line: u32) {
        let mut segs: Vec<String> = prefix.to_vec();
        loop {
            match self.peek() {
                Some(t) if t.is_ident("as") => {
                    self.bump();
                    if let Some(alias) = self.ident_text() {
                        let alias = alias.to_owned();
                        self.bump();
                        file.uses.push(UseImport {
                            alias,
                            path: segs,
                            line,
                        });
                    }
                    return;
                }
                Some(t) if t.kind == TokenKind::Ident => {
                    segs.push(t.text.strip_prefix("r#").unwrap_or(t.text).to_owned());
                    self.bump();
                }
                Some(t) if t.is_punct(':') => self.bump(),
                Some(t) if t.is_punct('{') => {
                    self.bump();
                    loop {
                        match self.peek() {
                            Some(t) if t.is_punct('}') => {
                                self.bump();
                                return;
                            }
                            Some(t) if t.is_punct(',') => self.bump(),
                            Some(_) => self.use_tree(&segs, file, line),
                            None => return,
                        }
                    }
                }
                Some(t) if t.is_punct('*') => {
                    self.bump();
                    return; // glob: binds no stable alias
                }
                _ => {
                    // `,`, `;`, `}` or EOF ends this leaf.
                    if segs.len() > prefix.len() {
                        let alias = if segs.last().is_some_and(|s| s == "self") {
                            segs.pop();
                            segs.last().cloned().unwrap_or_default()
                        } else {
                            segs.last().cloned().unwrap_or_default()
                        };
                        if !alias.is_empty() {
                            file.uses.push(UseImport {
                                alias,
                                path: segs,
                                line,
                            });
                        }
                    }
                    return;
                }
            }
        }
    }

    fn parse_struct(&mut self, file: &mut SourceFile) {
        let line = self.peek().map_or(0, |t| t.line);
        let name = self.ident_text().unwrap_or("").to_owned();
        self.bump();
        // Generics / where clause.
        while let Some(t) = self.peek() {
            if t.is_punct('{') || t.is_punct('(') || t.is_punct(';') {
                break;
            }
            if t.is_punct('<') {
                self.skip_generics();
            } else {
                self.bump();
            }
        }
        let mut fields = Vec::new();
        match self.peek() {
            Some(t) if t.is_punct('(') => {
                self.skip_balanced('(', ')');
                self.eat_punct(';');
            }
            Some(t) if t.is_punct(';') => {
                self.bump();
            }
            Some(t) if t.is_punct('{') => {
                self.bump();
                loop {
                    self.skip_attrs();
                    self.skip_modifiers();
                    match self.peek() {
                        Some(t) if t.is_punct('}') => {
                            self.bump();
                            break;
                        }
                        Some(t) if t.is_punct(',') => {
                            self.bump();
                        }
                        Some(t) if t.kind == TokenKind::Ident => {
                            let fname = t.text.to_owned();
                            self.bump();
                            if self.eat_punct(':') {
                                let ty = self.type_text(&[',', '}']);
                                fields.push((fname, ty));
                            }
                        }
                        Some(_) => self.bump(),
                        None => break,
                    }
                }
            }
            _ => {}
        }
        file.structs.push(StructDef { name, fields, line });
    }

    fn parse_impl(&mut self, file: &mut SourceFile, in_test: bool) {
        if self.peek().is_some_and(|t| t.is_punct('<')) {
            self.skip_generics();
        }
        // First path: either the implemented type or, with `for`, the
        // trait. The impl target is whatever precedes the `{`.
        let first = self.type_text(&['{']);
        let target = match first.split_once(" for ") {
            Some((_, ty)) => ty.to_owned(),
            None => first,
        };
        // Strip trailing where clause and take the head type name.
        let target = target
            .split(" where ")
            .next()
            .unwrap_or("")
            .trim()
            .to_owned();
        let self_ty = crate::ast::type_head(&target).to_owned();
        if self.eat_punct('{') {
            self.items(file, Some(self_ty.as_str()), in_test, true);
        }
    }

    fn parse_fn(&mut self, file: &mut SourceFile, self_ty: Option<&str>, is_test: bool) -> FnDef {
        let line = self.peek().map_or(0, |t| t.line);
        let name = self.ident_text().unwrap_or("").to_owned();
        self.bump();
        if self.peek().is_some_and(|t| t.is_punct('<')) {
            self.skip_generics();
        }
        let mut params = Vec::new();
        if self.eat_punct('(') {
            self.parse_params(&mut params, self_ty);
        }
        // Return type and where clause: skip to the body or `;`.
        // Depth-tracked so `-> [u8; 8]` does not end at its inner `;`.
        let mut sig_depth = 0i32;
        while let Some(t) = self.peek() {
            if sig_depth == 0 && (t.is_punct('{') || t.is_punct(';')) {
                break;
            }
            if t.is_punct('<') {
                self.skip_generics();
                continue;
            }
            if t.is_punct('(') || t.is_punct('[') {
                sig_depth += 1;
            } else if t.is_punct(')') || t.is_punct(']') {
                sig_depth = (sig_depth - 1).max(0);
            }
            self.bump();
        }
        let mut locals = Vec::new();
        let body = if self.eat_punct('{') {
            let mut block = self.parse_block(file, &mut locals, is_test);
            if let Some(last) = block.stmts.last_mut() {
                last.is_return = true; // trailing expression position
            }
            Some(block)
        } else {
            self.eat_punct(';');
            None
        };
        let qual = match self_ty {
            Some(ty) => format!("{ty}::{name}"),
            None => name.clone(),
        };
        FnDef {
            name,
            qual,
            self_ty: self_ty.map(str::to_owned),
            params,
            locals,
            line,
            is_test,
            body,
        }
    }

    fn parse_params(&mut self, params: &mut Vec<Param>, self_ty: Option<&str>) {
        loop {
            self.skip_attrs();
            match self.peek() {
                None => return,
                Some(t) if t.is_punct(')') => {
                    self.bump();
                    return;
                }
                Some(t) if t.is_punct(',') => {
                    self.bump();
                }
                _ => {
                    // Pattern: idents (and `&`/`mut`/parens) up to `:`.
                    let mut names = Vec::new();
                    let mut saw_self = false;
                    while let Some(t) = self.peek() {
                        if t.is_punct(':') || t.is_punct(',') || t.is_punct(')') {
                            break;
                        }
                        if t.kind == TokenKind::Ident && t.text != "mut" && t.text != "ref" {
                            if t.text == "self" {
                                saw_self = true;
                            } else {
                                names.push(t.text.to_owned());
                            }
                        }
                        self.bump();
                    }
                    if saw_self {
                        params.push(Param {
                            name: "self".to_owned(),
                            ty: self_ty.unwrap_or("Self").to_owned(),
                        });
                    }
                    let ty = if self.eat_punct(':') {
                        self.type_text(&[',', ')'])
                    } else {
                        String::new()
                    };
                    for n in names {
                        params.push(Param {
                            name: n,
                            ty: ty.clone(),
                        });
                    }
                }
            }
        }
    }

    /// Parses one `{ … }` body block (the opening brace is consumed).
    /// Nested items (`fn` in a body) go to `file`; local type evidence
    /// accumulates in `locals`.
    fn parse_block(
        &mut self,
        file: &mut SourceFile,
        locals: &mut Vec<(String, String)>,
        is_test: bool,
    ) -> Block {
        let mut block = Block::default();
        let mut sc = StmtScan::default();
        loop {
            let Some(t) = self.peek() else {
                sc.finish(&mut block);
                return block;
            };
            let (line, text_first) = (t.line, t.text.chars().next().unwrap_or(' '));
            if sc.stmt.line == 0 && !t.is_punct('}') {
                sc.stmt.line = line;
            }
            match t.kind {
                TokenKind::Punct => match text_first {
                    '}' => {
                        self.bump();
                        sc.finish(&mut block);
                        return block;
                    }
                    '{' => {
                        self.bump();
                        let child = self.parse_block(file, locals, is_test);
                        sc.enter_block(child);
                        if sc.depth == 0 && !self.continues_statement() {
                            sc.finish(&mut block);
                        }
                    }
                    ';' | ',' if sc.depth == 0 => {
                        self.bump();
                        sc.finish(&mut block);
                    }
                    '(' => {
                        self.on_open_paren(&mut sc, line);
                        sc.depth += 1;
                        self.bump();
                    }
                    '[' => {
                        if self.prev_is_indexable() {
                            let base = self.index_base_text();
                            let index = self.index_expr_text();
                            sc.push_event(Event::Index { line, base, index });
                        }
                        sc.depth += 1;
                        self.bump();
                    }
                    ')' | ']' => {
                        sc.depth = (sc.depth - 1).max(0);
                        self.bump();
                    }
                    '=' => {
                        // `=` (not `==`, `=>`, `<=`…): leaving a let
                        // pattern. `==`/`=>` don't begin pattern exits.
                        if sc.let_mode == LetMode::Pattern
                            && t.text == "="
                            && !self.peek_at(1).is_some_and(|n| n.is_punct('='))
                            && !self.prev_is_cmp()
                        {
                            sc.let_mode = LetMode::Init;
                            self.bump();
                            self.record_init_type(&mut sc, locals);
                            self.record_len_fact(&mut sc);
                        } else {
                            self.bump();
                        }
                    }
                    ':' if sc.let_mode == LetMode::Pattern && sc.depth == 0 => {
                        // Type ascription: `let x: T = …`.
                        self.bump();
                        let ty = self.type_text(&['=', ';', ',']);
                        if let Some(first) = sc.stmt.binds.first() {
                            locals.push((first.clone(), ty));
                        }
                    }
                    _ => self.bump(),
                },
                TokenKind::Ident => self.scan_ident(file, &mut sc, is_test),
                TokenKind::Str => {
                    format_captures(t.text, &mut sc.stmt.reads);
                    if let Some(text) = decode_str_literal(t.text) {
                        sc.push_event(Event::Str { line, text });
                    }
                    self.bump();
                }
                _ => self.bump(),
            }
        }
    }

    /// After a depth-zero block: does the next token continue the same
    /// statement (`else`, method call on the block's value, `?`)?
    fn continues_statement(&self) -> bool {
        self.peek()
            .is_some_and(|t| t.is_ident("else") || t.is_punct('.') || t.is_punct('?'))
    }

    /// Previous code token makes a following `[` an index expression.
    fn prev_is_indexable(&self) -> bool {
        self.pos > 0
            && self.toks.get(self.pos - 1).is_some_and(|p| {
                (p.kind == TokenKind::Ident && !STMT_KEYWORDS.contains(&p.text))
                    || p.is_punct(')')
                    || p.is_punct(']')
            })
    }

    /// The tokens after the cursor form an assignment operator: `=`
    /// (not `==`), `+=`-style compound, or `<<=`/`>>=` shifts.
    fn next_is_assignment_op(&self) -> bool {
        let at = |k: usize| self.peek_at(k).map(|t| (t.kind, t.text));
        match at(1) {
            Some((TokenKind::Punct, "=")) => !matches!(at(2), Some((TokenKind::Punct, "="))),
            Some((TokenKind::Punct, "+" | "-" | "*" | "/" | "%" | "&" | "|" | "^")) => {
                matches!(at(2), Some((TokenKind::Punct, "=")))
            }
            Some((TokenKind::Punct, s @ ("<" | ">"))) => {
                matches!(at(2), Some((TokenKind::Punct, s2)) if s2 == s)
                    && matches!(at(3), Some((TokenKind::Punct, "=")))
            }
            _ => false,
        }
    }

    /// After an `if`/`while` keyword: looks ahead (non-consuming) to
    /// the body `{` and emits a [`Event::Guard`] for every recognized
    /// bounds comparison. Conjunctions (`&&`) match each conjunct;
    /// any `||` at depth zero abandons the whole condition (a
    /// disjunction guarantees neither side). `if let` never guards.
    fn scan_condition_guards(&mut self, sc: &mut StmtScan) {
        if self.peek().is_some_and(|t| t.is_ident("let")) {
            return;
        }
        let line = self.peek().map_or(0, |t| t.line);
        let mut end = self.pos;
        let mut depth = 0i32;
        while let Some(t) = self.toks.get(end) {
            if t.kind == TokenKind::Punct {
                match t.text.chars().next().unwrap_or(' ') {
                    '{' | ';' | '}' if depth == 0 => break,
                    '(' | '[' | '{' => depth += 1,
                    ')' | ']' | '}' => depth -= 1,
                    _ => {}
                }
                if depth < 0 {
                    break;
                }
            }
            end += 1;
            if end - self.pos > 48 {
                return; // long condition: give up, stay sound
            }
        }
        let cond = &self.toks[self.pos..end];
        // Split into `&&`-conjuncts at depth zero; bail on `||`.
        let mut conjuncts: Vec<&[Token<'src>]> = Vec::new();
        let mut depth = 0i32;
        let mut start = 0usize;
        let mut i = 0usize;
        while i < cond.len() {
            let t = &cond[i];
            if t.kind == TokenKind::Punct {
                match t.text.chars().next().unwrap_or(' ') {
                    '(' | '[' | '{' => depth += 1,
                    ')' | ']' | '}' => depth -= 1,
                    '|' if depth == 0 && cond.get(i + 1).is_some_and(|n| n.is_punct('|')) => {
                        return;
                    }
                    '&' if depth == 0 && cond.get(i + 1).is_some_and(|n| n.is_punct('&')) => {
                        conjuncts.push(&cond[start..i]);
                        i += 2;
                        start = i;
                        continue;
                    }
                    _ => {}
                }
            }
            i += 1;
        }
        conjuncts.push(&cond[start..]);
        for conj in conjuncts {
            if let Some(cond) = guard_of(conj) {
                sc.push_event(Event::Guard { line, cond });
            }
        }
    }

    /// Previous token is `<` or `>` (so a following `=` is `<=`/`>=`).
    fn prev_is_cmp(&self) -> bool {
        self.pos > 0
            && self
                .toks
                .get(self.pos - 1)
                .is_some_and(|p| p.is_punct('<') || p.is_punct('>') || p.is_punct('!'))
    }

    /// Call-site recognition at an opening paren: looks back at the
    /// consumed tokens to classify method, free, or macro call.
    fn on_open_paren(&mut self, sc: &mut StmtScan, line: u32) {
        let Some(prev) = self.pos.checked_sub(1).and_then(|i| self.toks.get(i)) else {
            return;
        };
        if prev.kind != TokenKind::Ident || STMT_KEYWORDS.contains(&prev.text) {
            return;
        }
        let name = prev.text.strip_prefix("r#").unwrap_or(prev.text).to_owned();
        let before = self.pos.checked_sub(2).and_then(|i| self.toks.get(i));
        if before.is_some_and(|t| t.is_punct('!')) {
            return; // `name!(` was emitted as a macro event at the `!`
        }
        if before.is_some_and(|t| t.is_punct('.')) {
            let recv = self.receiver_text(self.pos - 2);
            sc.push_event(Event::Call(CallSite {
                line,
                target: CallTarget::Method { name, recv },
            }));
            return;
        }
        // `drop(x)` ends a guard's life.
        if name == "drop"
            && self.peek_at(1).is_some_and(|t| t.kind == TokenKind::Ident)
            && self.peek_at(2).is_some_and(|t| t.is_punct(')'))
        {
            let victim = self.peek_at(1).map_or("", |t| t.text).to_owned();
            sc.push_event(Event::DropVar { name: victim, line });
            return;
        }
        // Free path call: walk `seg :: seg :: name` backwards.
        let mut path = vec![name];
        let mut i = self.pos - 1;
        while i >= 3
            && self.toks[i - 1].is_punct(':')
            && self.toks[i - 2].is_punct(':')
            && self.toks[i - 3].kind == TokenKind::Ident
        {
            let seg = self.toks[i - 3].text;
            path.insert(0, seg.strip_prefix("r#").unwrap_or(seg).to_owned());
            i -= 3;
        }
        // A path immediately after `.` is a method-call chain we
        // already handled; after `fn` it is a signature, not a call.
        if i >= 1 && (self.toks[i - 1].is_punct('.') || self.toks[i - 1].is_ident("fn")) {
            return;
        }
        sc.push_event(Event::Call(CallSite {
            line,
            target: CallTarget::Free { path },
        }));
    }

    /// The indexed receiver chain for an `[` at the cursor: walks back
    /// `ident(.ident)*`, first stripping one trailing length-preserving
    /// call (`.as_bytes()`, `.as_slice()`, `.as_mut_slice()`,
    /// `.as_str()` — all with no arguments). Compound bases return `""`.
    fn index_base_text(&self) -> String {
        let mut end = self.pos;
        if self
            .toks
            .get(end.wrapping_sub(1))
            .is_some_and(|t| t.is_punct(')'))
        {
            // `chain . as_bytes ( ) [` — the call's value has the same
            // length as `chain`, so the chain is the effective base.
            let preserving = end >= 5
                && self.toks[end - 2].is_punct('(')
                && matches!(
                    self.toks[end - 3].text,
                    "as_bytes" | "as_slice" | "as_mut_slice" | "as_str"
                )
                && self.toks[end - 4].is_punct('.');
            if !preserving {
                return String::new();
            }
            end -= 4;
        }
        self.receiver_text(end)
    }

    /// The bracket-group text for an `[` at the cursor (non-consuming):
    /// tokens joined with spaces, `""` when longer than eight tokens or
    /// containing a nested bracket group. `..` joins as `".."`.
    fn index_expr_text(&self) -> String {
        let mut words: Vec<&str> = Vec::new();
        let mut i = self.pos + 1;
        while let Some(t) = self.toks.get(i) {
            if t.is_punct(']') {
                break;
            }
            if t.kind == TokenKind::Punct && "([{".contains(t.text) {
                return String::new();
            }
            if words.len() >= 8 {
                return String::new();
            }
            words.push(t.text);
            i += 1;
        }
        join_expr(&words)
    }

    /// Reconstructs a simple `ident(.ident)*` receiver chain ending at
    /// the `.` token index `dot`. Compound receivers return `""`.
    fn receiver_text(&self, dot: usize) -> String {
        let mut parts: Vec<&str> = Vec::new();
        let mut i = dot;
        loop {
            if i == 0 {
                break;
            }
            let Some(t) = self.toks.get(i - 1) else { break };
            if t.kind != TokenKind::Ident {
                return String::new(); // `)`/`]`/literal receiver: give up
            }
            parts.insert(0, t.text);
            match i.checked_sub(2).and_then(|k| self.toks.get(k)) {
                Some(d) if d.is_punct('.') => i -= 2,
                _ => break,
            }
        }
        parts.join(".")
    }

    /// At the start of a `let` initializer: records `let x = Type::…` /
    /// `let x = Type { …` type evidence.
    fn record_init_type(&mut self, sc: &mut StmtScan, locals: &mut Vec<(String, String)>) {
        let Some(bind) = sc.stmt.binds.first().cloned() else {
            return;
        };
        let Some(t) = self.peek() else { return };
        if t.kind != TokenKind::Ident {
            return;
        }
        let head = t.text.strip_prefix("r#").unwrap_or(t.text);
        if !head.chars().next().is_some_and(char::is_uppercase) {
            return;
        }
        let next = self.peek_at(1);
        let is_path = next.is_some_and(|n| n.is_punct(':'))
            && self.peek_at(2).is_some_and(|n| n.is_punct(':'));
        let is_literal = next.is_some_and(|n| n.is_punct('{'));
        if is_path || is_literal {
            locals.push((bind, head.to_owned()));
        }
    }

    /// At the start of a `let` initializer: records `let n = base.len()`
    /// / `let n = base.len() / k` (nonzero literal `k`) upper-bound
    /// evidence (`n ≤ base.len()`) for the value-range analysis. The
    /// whole initializer must match — a longer expression could exceed
    /// the bound, so anything unrecognized records nothing.
    fn record_len_fact(&mut self, sc: &mut StmtScan) {
        if sc.stmt.binds.len() != 1 {
            return;
        }
        let mut end = self.pos;
        loop {
            let Some(t) = self.toks.get(end) else { return };
            if t.is_punct(';') || t.is_punct(',') || t.is_punct('}') {
                break;
            }
            if end - self.pos > 12 {
                return;
            }
            end += 1;
        }
        let init = &self.toks[self.pos..end];
        let n = init.len();
        let base = len_call_of(init).or_else(|| {
            (n >= 7
                && init[n - 1].kind == TokenKind::Number
                && init[n - 1].text != "0"
                && init[n - 2].is_punct('/'))
            .then(|| len_call_of(&init[..n - 2]))
            .flatten()
        });
        if let Some(base) = base {
            sc.stmt.len_fact = Some(LenFact::AtMostLen { base });
        }
    }

    /// Handles one identifier token inside a statement scan.
    fn scan_ident(&mut self, file: &mut SourceFile, sc: &mut StmtScan, is_test: bool) {
        let t = self.toks[self.pos];
        let line = t.line;
        let word = t.text.strip_prefix("r#").unwrap_or(t.text);
        match word {
            "let" => {
                sc.let_mode = LetMode::Pattern;
                sc.saw_control_in_init = false;
                self.bump();
            }
            "for" if !self.prev_is_impl_or_lt() => {
                self.bump();
                self.scan_for_header(sc);
            }
            "return" => {
                sc.stmt.is_return = true;
                self.bump();
            }
            "break" | "continue" => {
                sc.stmt.is_exit = true;
                self.bump();
            }
            "if" | "while" => {
                if sc.let_mode == LetMode::Init {
                    sc.saw_control_in_init = true;
                }
                self.bump();
                self.scan_condition_guards(sc);
            }
            "match" | "loop" => {
                if sc.let_mode == LetMode::Init {
                    sc.saw_control_in_init = true;
                }
                self.bump();
            }
            "fn" => {
                // Nested function item inside a body.
                self.bump();
                let nested = self.parse_fn(file, None, is_test);
                file.fns.push(nested);
            }
            _ if STMT_KEYWORDS.contains(&word) => self.bump(),
            "self" | "Self" | "crate" | "super" => self.bump(),
            _ => {
                if sc.let_mode == LetMode::Pattern {
                    sc.stmt.binds.push(word.to_owned());
                } else {
                    // `x = …` / `x += …` / `x <<= …` at statement start
                    // reassigns `x` (guard-kill evidence for ranges).
                    if sc.let_mode == LetMode::None
                        && sc.depth == 0
                        && sc.stmt.reads.is_empty()
                        && sc.stmt.binds.is_empty()
                        && sc.stmt.parts.is_empty()
                        && self.next_is_assignment_op()
                    {
                        sc.stmt.assigns.push(word.to_owned());
                    }
                    sc.stmt.reads.push(word.to_owned());
                }
                // Macro invocation: `name!` + delimiter.
                if self.peek_at(1).is_some_and(|n| n.is_punct('!'))
                    && self
                        .peek_at(2)
                        .is_some_and(|n| n.is_punct('(') || n.is_punct('[') || n.is_punct('{'))
                {
                    sc.push_event(Event::Call(CallSite {
                        line,
                        target: CallTarget::Macro {
                            name: word.to_owned(),
                        },
                    }));
                    self.bump(); // name
                    self.bump(); // `!`
                    return;
                }
                // Lock-guard binding heuristic: `let g = recv.lock()…;`
                // — a lock call at depth zero of the initializer with no
                // intervening control-flow keyword.
                self.bump();
                if sc.let_mode == LetMode::Init
                    && sc.depth == 0
                    && !sc.saw_control_in_init
                    && matches!(word, "lock" | "read" | "write")
                    && self.pos >= 2
                    && self.toks.get(self.pos - 2).is_some_and(|d| d.is_punct('.'))
                    && self.peek().is_some_and(|n| n.is_punct('('))
                    && sc.stmt.binds.len() == 1
                {
                    sc.stmt.guard_bind = sc.stmt.binds.first().cloned();
                }
            }
        }
    }

    /// `for` directly after `impl`/`<` is a trait bound (`impl Trait
    /// for`, `F: for<'a>…`), not a loop.
    fn prev_is_impl_or_lt(&self) -> bool {
        self.pos > 0
            && self
                .toks
                .get(self.pos - 1)
                .is_some_and(|p| p.is_ident("impl") || p.is_punct('<'))
    }

    /// After `for`: binds the loop pattern, then — when the iterated
    /// expression is a bare `ident(.ident)*` chain — consumes it and
    /// synthesizes an `into_iter` method event so the taint analysis
    /// sees `for x in &map` exactly like `map.iter()`. A compound
    /// expression (`map.iter()`, `0..n`) is left to the main scanner,
    /// which records its real call events.
    fn scan_for_header(&mut self, sc: &mut StmtScan) {
        let bind_start = sc.stmt.binds.len();
        // Pattern up to `in`.
        while let Some(t) = self.peek() {
            if t.is_ident("in") {
                self.bump();
                break;
            }
            if t.is_punct('{') || t.is_punct(';') {
                return; // malformed; bail
            }
            if t.kind == TokenKind::Ident && !STMT_KEYWORDS.contains(&t.text) {
                sc.stmt.binds.push(t.text.to_owned());
            }
            self.bump();
        }
        // Lookahead (non-consuming) to the body `{`.
        let mut look = self.pos;
        while let Some(t) = self.toks.get(look) {
            if t.is_punct('{') || t.is_punct(';') || t.is_punct('}') {
                break;
            }
            look += 1;
        }
        let header = &self.toks[self.pos..look];
        // `for i in a..base.len()` (exclusive range): `i < base.len()`
        // holds throughout the body — emitted before the body block so
        // the value-range analysis scopes it to the loop.
        if sc.stmt.binds.len() == bind_start + 1 {
            let mut depth = 0i32;
            for (j, t) in header.iter().enumerate() {
                if t.kind != TokenKind::Punct {
                    continue;
                }
                match t.text.chars().next().unwrap_or(' ') {
                    '(' | '[' | '{' => depth += 1,
                    ')' | ']' | '}' => depth -= 1,
                    '.' if depth == 0 && header.get(j + 1).is_some_and(|n| n.is_punct('.')) => {
                        let inclusive = header.get(j + 2).is_some_and(|n| n.is_punct('='));
                        if !inclusive {
                            if let Some(base) = len_call_of(&header[j + 2..]) {
                                let var = sc.stmt.binds.last().cloned().unwrap_or_default();
                                sc.push_event(Event::Guard {
                                    line: header.first().map_or(0, |h| h.line),
                                    cond: GuardCond::LtLen { var, base },
                                });
                            }
                        }
                        break;
                    }
                    _ => {}
                }
            }
        }
        let simple = !header.is_empty()
            && header.iter().all(|t| {
                (t.kind == TokenKind::Ident && !STMT_KEYWORDS.contains(&t.text))
                    || t.is_punct('.')
                    || t.is_punct('&')
            });
        if !simple {
            return; // main scanner records the header's real calls
        }
        let line = header.first().map_or(0, |t| t.line);
        let recv: Vec<&str> = header
            .iter()
            .filter(|t| t.kind == TokenKind::Ident)
            .map(|t| t.text)
            .collect();
        for seg in &recv {
            sc.stmt.reads.push((*seg).to_owned());
        }
        sc.push_event(Event::Call(CallSite {
            line,
            target: CallTarget::Method {
                name: "into_iter".to_owned(),
                recv: recv.join("."),
            },
        }));
        self.pos = look;
    }
}

/// An operand of a recognized guard comparison.
enum Operand {
    /// A bare `ident(.ident)*` chain.
    Var(String),
    /// `chain.len()`.
    Len(String),
    /// The integer literal `0`.
    Zero,
}

/// The chain text of a pure `ident(.ident)*` token run, or `None`.
fn chain_of(toks: &[Token<'_>]) -> Option<String> {
    if toks.is_empty() || toks.len().is_multiple_of(2) {
        return None;
    }
    let mut parts: Vec<&str> = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        if i % 2 == 0 {
            if t.kind != TokenKind::Ident || STMT_KEYWORDS.contains(&t.text) {
                return None;
            }
            parts.push(t.text.strip_prefix("r#").unwrap_or(t.text));
        } else if !t.is_punct('.') {
            return None;
        }
    }
    Some(parts.join("."))
}

/// The chain of a `chain.name()` no-argument call run, or `None`.
fn no_arg_call_of(toks: &[Token<'_>], name: &str) -> Option<String> {
    let n = toks.len();
    if n >= 5
        && toks[n - 1].is_punct(')')
        && toks[n - 2].is_punct('(')
        && toks[n - 3].is_ident(name)
        && toks[n - 4].is_punct('.')
    {
        chain_of(&toks[..n - 4])
    } else {
        None
    }
}

/// The chain of a `chain.len()` token run, or `None`.
fn len_call_of(toks: &[Token<'_>]) -> Option<String> {
    no_arg_call_of(toks, "len")
}

/// Classifies one side of a guard comparison.
fn operand_of(toks: &[Token<'_>]) -> Option<Operand> {
    if toks.len() == 1 && toks[0].kind == TokenKind::Number {
        return (toks[0].text == "0").then_some(Operand::Zero);
    }
    if let Some(base) = len_call_of(toks) {
        return Some(Operand::Len(base));
    }
    chain_of(toks).map(Operand::Var)
}

/// Matches one `&&`-conjunct against the recognized guard forms.
fn guard_of(toks: &[Token<'_>]) -> Option<GuardCond> {
    if toks.first().is_some_and(|t| t.is_punct('!')) {
        return no_arg_call_of(&toks[1..], "is_empty").map(|base| GuardCond::NotEmpty { base });
    }
    if let Some(base) = no_arg_call_of(toks, "is_empty") {
        return Some(GuardCond::Empty { base });
    }
    let mut depth = 0i32;
    for (i, t) in toks.iter().enumerate() {
        if t.kind != TokenKind::Punct {
            continue;
        }
        let c = t.text.chars().next().unwrap_or(' ');
        match c {
            '(' | '[' | '{' => depth += 1,
            ')' | ']' | '}' => depth -= 1,
            '<' | '>' | '=' | '!' if depth == 0 => {
                let eq = toks.get(i + 1).is_some_and(|n| n.is_punct('='));
                if matches!(c, '=' | '!') && !eq {
                    return None; // lone `=` / `!` mid-condition
                }
                let lhs = operand_of(&toks[..i])?;
                let rhs = operand_of(&toks[i + 1 + usize::from(eq)..])?;
                use Operand::{Len, Var, Zero};
                return Some(match (lhs, c, eq, rhs) {
                    (Var(var), '<', false, Len(base)) => GuardCond::LtLen { var, base },
                    (Len(base), '>', false, Var(var)) => GuardCond::LtLen { var, base },
                    (Var(var), '>', _, Len(base)) => GuardCond::GeLen { var, base },
                    (Len(base), '<', _, Var(var)) => GuardCond::GeLen { var, base },
                    (Len(base), '>', false, Zero) | (Zero, '<', false, Len(base)) => {
                        GuardCond::NotEmpty { base }
                    }
                    (Len(base), '!', true, Zero) | (Zero, '!', true, Len(base)) => {
                        GuardCond::NotEmpty { base }
                    }
                    (Len(base), '=', true, Zero) | (Zero, '=', true, Len(base)) => {
                        GuardCond::Empty { base }
                    }
                    _ => return None,
                });
            }
            _ => {}
        }
    }
    None
}

/// Joins expression tokens with spaces, except around `.` — so a range
/// reads `"..torn"` / `"0..4"` and a chain reads `"self.k"`.
fn join_expr(words: &[&str]) -> String {
    let mut out = String::new();
    for w in words {
        if !out.is_empty() && *w != "." && !out.ends_with('.') {
            out.push(' ');
        }
        out.push_str(w);
    }
    out
}

/// Inline format captures: `"{name}"` / `"{name:?}"` in a string
/// literal read `name` (Rust 2021 implicit captures). `{{` escapes are
/// skipped; positional and expression arguments are ignored. Strings
/// that merely *look* like format strings can add spurious reads — the
/// only consumer is taint propagation, where an extra read is a benign
/// over-approximation.
fn format_captures(text: &str, reads: &mut Vec<String>) {
    let bytes = text.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] != b'{' {
            i += 1;
            continue;
        }
        if bytes.get(i + 1) == Some(&b'{') {
            i += 2; // `{{` literal brace
            continue;
        }
        let Some(rel) = text[i + 1..].find(['}', ':']) else {
            return;
        };
        let name = &text[i + 1..i + 1 + rel];
        if !name.is_empty()
            && name
                .chars()
                .next()
                .is_some_and(|c| c.is_ascii_alphabetic() || c == '_')
            && name.chars().all(|c| c.is_ascii_alphanumeric() || c == '_')
        {
            reads.push(name.to_owned());
        }
        i += 2 + rel;
    }
}

/// Decodes a string-literal token's source text (`"…"`, `r#"…"#`,
/// `b"…"`, `br"…"`) to its runtime value. Raw strings are copied
/// verbatim; cooked strings unescape the simple escapes and `\x`/`\u`
/// codes. `None` for an unterminated literal (lexer EOF recovery) —
/// unknown escapes pass through with the backslash so the value is
/// never silently shortened.
fn decode_str_literal(text: &str) -> Option<String> {
    let rest = text.strip_prefix('b').unwrap_or(text);
    if let Some(raw) = rest.strip_prefix('r') {
        let hashes = raw.len() - raw.trim_start_matches('#').len();
        let body = raw[hashes..].strip_prefix('"')?;
        let body = body.strip_suffix(&raw[..hashes])?;
        return Some(body.strip_suffix('"')?.to_owned());
    }
    let body = rest.strip_prefix('"')?.strip_suffix('"')?;
    let mut out = String::with_capacity(body.len());
    let mut chars = body.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next() {
            Some('n') => out.push('\n'),
            Some('t') => out.push('\t'),
            Some('r') => out.push('\r'),
            Some('0') => out.push('\0'),
            Some('x') => {
                let hex: String = chars.by_ref().take(2).collect();
                match u32::from_str_radix(&hex, 16).ok().and_then(char::from_u32) {
                    Some(ch) => out.push(ch),
                    None => {
                        out.push_str("\\x");
                        out.push_str(&hex);
                    }
                }
            }
            Some('u') => {
                // `\u{HEX}` — collect through the closing brace.
                let code: String = chars.by_ref().take_while(|&ch| ch != '}').collect();
                let hex = code.strip_prefix('{').unwrap_or(&code);
                match u32::from_str_radix(hex, 16).ok().and_then(char::from_u32) {
                    Some(ch) => out.push(ch),
                    None => {
                        out.push_str("\\u");
                        out.push_str(&code);
                    }
                }
            }
            Some(other) => out.push(other), // `\"`, `\'`, `\\`, unknown
            None => out.push('\\'),
        }
    }
    Some(out)
}

/// Matches a `NAME : … str … = "literal" ;` token run — the body of a
/// `const`/`static` item (keyword already consumed) — and captures it
/// as a [`ConstStr`]. Anything else (non-string type, computed or
/// multi-literal initializer) captures nothing.
fn const_str_of(toks: &[Token<'_>]) -> Option<ConstStr> {
    let name = toks.first().filter(|t| t.kind == TokenKind::Ident)?;
    let eq = toks.iter().position(|t| t.is_punct('='))?;
    if !toks[1..eq].iter().any(|t| t.is_ident("str")) {
        return None;
    }
    let init: Vec<&Token<'_>> = toks[eq + 1..].iter().filter(|t| !t.is_punct(';')).collect();
    let [lit] = init[..] else { return None };
    if lit.kind != TokenKind::Str {
        return None;
    }
    Some(ConstStr {
        name: name.text.strip_prefix("r#").unwrap_or(name.text).to_owned(),
        value: decode_str_literal(lit.text)?,
        line: name.line,
    })
}

/// Per-statement scanning state.
#[derive(Default)]
struct StmtScan {
    stmt: Stmt,
    depth: i32,
    let_mode: LetMode,
    saw_control_in_init: bool,
}

#[derive(Default, PartialEq, Clone, Copy)]
enum LetMode {
    #[default]
    None,
    Pattern,
    Init,
}

impl StmtScan {
    fn push_event(&mut self, ev: Event) {
        self.stmt.parts.push(StmtPart::Event(ev));
    }

    fn enter_block(&mut self, child: Block) {
        self.stmt.parts.push(StmtPart::Block(child));
    }

    fn finish(&mut self, block: &mut Block) {
        let done = std::mem::take(&mut self.stmt);
        self.let_mode = LetMode::None;
        self.saw_control_in_init = false;
        self.depth = 0;
        if done.line != 0
            && (!done.parts.is_empty()
                || !done.binds.is_empty()
                || !done.reads.is_empty()
                || done.is_return)
        {
            block.stmts.push(done);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{CallTarget, Event, StmtPart};

    fn calls_of(file: &SourceFile, fn_name: &str) -> Vec<String> {
        let f = file.fns.iter().find(|f| f.name == fn_name).unwrap();
        let mut out = Vec::new();
        collect_calls(f.body.as_ref().unwrap(), &mut out);
        out
    }

    fn collect_calls(block: &Block, out: &mut Vec<String>) {
        for stmt in &block.stmts {
            for part in &stmt.parts {
                match part {
                    StmtPart::Event(Event::Call(c)) => out.push(match &c.target {
                        CallTarget::Free { path } => path.join("::"),
                        CallTarget::Method { name, recv } => format!("{recv}.{name}"),
                        CallTarget::Macro { name } => format!("{name}!"),
                    }),
                    StmtPart::Event(_) => {}
                    StmtPart::Block(b) => collect_calls(b, out),
                }
            }
        }
    }

    #[test]
    fn parses_free_method_and_macro_calls() {
        let src = r#"
            fn handler(&self, line: &str) -> String {
                let v = Json::parse(line);
                let x = self.store.get(key);
                helper(v, x);
                format!("{x}")
            }
        "#;
        let file = parse_file("f.rs", "c", src);
        assert_eq!(
            calls_of(&file, "handler"),
            vec!["Json::parse", "self.store.get", "helper", "format!"]
        );
    }

    #[test]
    fn impl_methods_get_qualified_names() {
        let src = "impl Service { fn handle(&self) {} }\nimpl Display for Finding { fn fmt(&self, f: &mut Formatter) {} }";
        let file = parse_file("f.rs", "c", src);
        let quals: Vec<&str> = file.fns.iter().map(|f| f.qual.as_str()).collect();
        assert_eq!(quals, vec!["Service::handle", "Finding::fmt"]);
        assert_eq!(file.fns[0].params[0].name, "self");
        assert_eq!(file.fns[0].params[0].ty, "Service");
    }

    #[test]
    fn use_trees_flatten_with_aliases() {
        let src =
            "use std::sync::{Arc, Mutex};\nuse crate::json::Json as J;\nuse std::io::{self, Read};";
        let file = parse_file("f.rs", "c", src);
        let mapped: Vec<(String, String)> = file
            .uses
            .iter()
            .map(|u| (u.alias.clone(), u.path.join("::")))
            .collect();
        assert!(mapped.contains(&("Arc".into(), "std::sync::Arc".into())));
        assert!(mapped.contains(&("Mutex".into(), "std::sync::Mutex".into())));
        assert!(mapped.contains(&("J".into(), "crate::json::Json".into())));
        assert!(mapped.contains(&("io".into(), "std::io".into())));
        assert!(mapped.contains(&("Read".into(), "std::io::Read".into())));
    }

    #[test]
    fn struct_fields_record_type_text() {
        let src = "pub struct Service { store: Mutex<Store>, wl: Mutex<WlFeaturizer>, n: u64 }";
        let file = parse_file("f.rs", "c", src);
        let s = &file.structs[0];
        assert_eq!(s.name, "Service");
        assert_eq!(s.fields[0], ("store".into(), "Mutex < Store >".into()));
        assert_eq!(s.fields[2], ("n".into(), "u64".into()));
    }

    #[test]
    fn guard_binding_is_detected_and_match_temporaries_are_not() {
        let src = r#"
            fn a(&self) {
                let store = self.store.lock().unwrap_or_else(|p| p.into_inner());
                store.get(k);
            }
            fn b(rx: &Mutex<Receiver<Job>>) {
                let job = match rx.lock() { Ok(g) => g.recv(), Err(p) => p.into_inner().recv() };
            }
        "#;
        let file = parse_file("f.rs", "c", src);
        let a = file.fns.iter().find(|f| f.name == "a").unwrap();
        let guard = a.body.as_ref().unwrap().stmts[0].guard_bind.clone();
        assert_eq!(guard.as_deref(), Some("store"));
        let b = file.fns.iter().find(|f| f.name == "b").unwrap();
        assert!(b
            .body
            .as_ref()
            .unwrap()
            .stmts
            .iter()
            .all(|s| s.guard_bind.is_none()));
    }

    #[test]
    fn index_sites_are_events_but_attrs_and_macros_are_not() {
        let src = r#"
            fn f(v: &[u8]) -> u8 {
                let a = vec![1, 2];
                #[allow(dead_code)]
                let b = v[0];
                items[i].run()
            }
        "#;
        let file = parse_file("f.rs", "c", src);
        let f = file.fns.iter().find(|f| f.name == "f").unwrap();
        let mut indexes = 0;
        count_indexes(f.body.as_ref().unwrap(), &mut indexes);
        assert_eq!(indexes, 2, "v[0] and items[i], not vec![ or #[");
    }

    fn count_indexes(block: &Block, n: &mut usize) {
        for stmt in &block.stmts {
            for part in &stmt.parts {
                match part {
                    StmtPart::Event(Event::Index { .. }) => *n += 1,
                    StmtPart::Block(b) => count_indexes(b, n),
                    _ => {}
                }
            }
        }
    }

    #[test]
    fn cfg_test_items_are_marked() {
        let src = "#[cfg(test)]\nmod tests { fn helper() {} #[test] fn t() {} }\nfn live() {}";
        let file = parse_file("f.rs", "c", src);
        let by_name = |n: &str| file.fns.iter().find(|f| f.name == n).unwrap();
        assert!(by_name("helper").is_test);
        assert!(by_name("t").is_test);
        assert!(!by_name("live").is_test);
    }

    #[test]
    fn for_loops_over_maps_synthesize_iteration() {
        let src = "fn f(m: &HashMap<String, u32>) { for (k, v) in &m { use_it(k, v); } }";
        let file = parse_file("f.rs", "c", src);
        let calls = calls_of(&file, "f");
        assert!(calls.contains(&"m.into_iter".to_owned()), "{calls:?}");
    }

    #[test]
    fn nested_fns_and_closures_attribute_to_parents() {
        let src = r#"
            fn outer() {
                fn inner(x: u8) -> u8 { x }
                let c = |p| p.into_inner();
                submit(move || service.handle_line(&line));
            }
        "#;
        let file = parse_file("f.rs", "c", src);
        assert!(file.fns.iter().any(|f| f.name == "inner"));
        let calls = calls_of(&file, "outer");
        assert!(calls.contains(&"p.into_inner".to_owned()));
        assert!(calls.contains(&"service.handle_line".to_owned()));
    }

    #[test]
    fn locals_record_type_evidence() {
        let src = r#"
            fn f() {
                let x: HashMap<String, u32> = HashMap::new();
                let s = Store::open(path);
                let lit = EvalKey { kind };
            }
        "#;
        let file = parse_file("f.rs", "c", src);
        let f = file.fns.iter().find(|f| f.name == "f").unwrap();
        assert!(f
            .locals
            .iter()
            .any(|(n, t)| n == "x" && t.starts_with("HashMap")));
        assert!(f.locals.iter().any(|(n, t)| n == "s" && t == "Store"));
        assert!(f.locals.iter().any(|(n, t)| n == "lit" && t == "EvalKey"));
    }

    #[test]
    fn crate_names_resolve_from_paths() {
        assert_eq!(crate_name_of("crates/serve/src/service.rs"), "oa_serve");
        assert_eq!(crate_name_of("crates/core/src/lib.rs"), "into_oa");
        assert_eq!(crate_name_of("src/lib.rs"), "into_oa_suite");
    }

    #[test]
    fn trait_default_methods_belong_to_the_trait() {
        let src = "trait Greet { fn hi(&self) { wave(); } fn bye(&self); }";
        let file = parse_file("f.rs", "c", src);
        assert_eq!(file.fns[0].qual, "Greet::hi");
        assert!(file.fns[0].body.is_some());
        assert_eq!(file.fns[1].qual, "Greet::bye");
        assert!(file.fns[1].body.is_none());
    }

    #[test]
    fn string_literals_become_decoded_events() {
        let src = r#"
            fn f(id_txt: &str) -> String {
                let marker = "\"kind\":\"injected\"";
                format!("{{\"id\":{id_txt},\"ok\":true}}")
            }
        "#;
        let file = parse_file("f.rs", "c", src);
        let f = file.fns.iter().find(|f| f.name == "f").unwrap();
        let mut strs = Vec::new();
        collect_strs(f.body.as_ref().unwrap(), &mut strs);
        assert_eq!(
            strs,
            vec![
                "\"kind\":\"injected\"".to_owned(),
                "{{\"id\":{id_txt},\"ok\":true}}".to_owned(),
            ]
        );
    }

    fn collect_strs(block: &Block, out: &mut Vec<String>) {
        for stmt in &block.stmts {
            for part in &stmt.parts {
                match part {
                    StmtPart::Event(Event::Str { text, .. }) => out.push(text.clone()),
                    StmtPart::Block(b) => collect_strs(b, out),
                    _ => {}
                }
            }
        }
    }

    #[test]
    fn raw_and_escaped_literals_decode() {
        assert_eq!(
            decode_str_literal(r###"r#"has "quotes""#"###).as_deref(),
            Some(r#"has "quotes""#)
        );
        assert_eq!(decode_str_literal(r#""a\tb\n""#).as_deref(), Some("a\tb\n"));
        assert_eq!(
            decode_str_literal(r#""\x41\u{2192}""#).as_deref(),
            Some("A→")
        );
        assert_eq!(decode_str_literal("\"never closed"), None);
    }

    #[test]
    fn string_const_items_are_captured() {
        let src = r#"
            pub const UNKNOWN_SESSION: &str = "unknown_session";
            const LIMIT: usize = 3;
            const ALL: &[&str] = &["a", "b"];
            static BANNER: &'static str = "hi";
            #[cfg(test)]
            const TEST_ONLY: &str = "nope";
        "#;
        let file = parse_file("f.rs", "c", src);
        let got: Vec<(String, String)> = file
            .const_strs
            .iter()
            .map(|c| (c.name.clone(), c.value.clone()))
            .collect();
        assert_eq!(
            got,
            vec![
                ("UNKNOWN_SESSION".into(), "unknown_session".into()),
                ("BANNER".into(), "hi".into()),
            ]
        );
    }

    #[test]
    fn parser_never_panics_on_malformed_input() {
        for src in [
            "fn broken( {",
            "impl {}{}{}",
            "use ;;; fn f() { let = ; }",
            "struct S { x: }",
            "fn f() { a[ }",
            "",
        ] {
            let _ = parse_file("f.rs", "c", src);
        }
    }
}
