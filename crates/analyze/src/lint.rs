//! Workspace-invariant lint rules over the token stream.
//!
//! These are the invariants the serving determinism and panic-freedom
//! contracts (DESIGN.md §7) rely on but `clippy` cannot express,
//! enforced mechanically instead of by code-review vigilance:
//!
//! | rule | scope | invariant |
//! |------|-------|-----------|
//! | `wall_clock` | all workspace code | no `SystemTime` / `Instant::now` — wall-clock must never reach response bytes |
//! | `unordered_collections` | `oa-serve`, `oa-store` | no `HashMap`/`HashSet` where iteration order could feed serialized output — use `BTreeMap` or sorted vectors |
//! | `float_format` | `oa-serve`, `oa-store`, `oa-bench` | exponent-format floats in caches/stores/wire encodings only via the exact `{:.17e}` round-trip form |
//! | `panic` | `oa-serve` request path, `oa-par` pool, `oa-fault` | no `unwrap`/`expect`/slice-indexing without an annotation |
//! | `forbid_unsafe` | every crate root | `#![forbid(unsafe_code)]` must be present |
//!
//! ## Annotation grammar
//!
//! A finding is waived by a line comment of the form
//!
//! ```text
//! // lint: allow(<rule>, <reason>)
//! ```
//!
//! placed on the offending line (trailing) or on the line immediately
//! above it (more precisely: it covers its own line and the next line
//! that holds a non-comment token). The reason is mandatory — an
//! annotation without one, or naming an unknown rule, is itself a
//! finding (`bad_annotation`). Test code (`#[cfg(test)]` / `#[test]`
//! items) and doc comments are exempt from all rules.

use crate::lexer::{lex, Token, TokenKind};
use std::collections::BTreeMap;
use std::fmt;

/// Identifiers of the lint rules (stable names used in annotations).
/// `lock_order` and `determinism` only fire in the ast engine; their
/// annotations are legal everywhere so both engines accept one source.
pub const RULE_NAMES: &[&str] = &[
    "wall_clock",
    "unordered_collections",
    "float_format",
    "panic",
    "forbid_unsafe",
    "lock_order",
    "determinism",
    "nonblocking_event_loop",
    "alloc_free_kernel",
    "lock_across_blocking",
    "wire_undeclared",
    "wire_dead",
    "wire_client_match",
    "wire_router_coverage",
    "wire_spec",
];

/// Catalogue entry describing one rule for `--list-rules`.
#[derive(Debug, Clone, Copy)]
pub struct RuleInfo {
    /// Stable rule name (used in `lint: allow(...)`).
    pub name: &'static str,
    /// One-line description of the enforced invariant.
    pub description: &'static str,
}

/// The rule catalogue.
pub const RULES: &[RuleInfo] = &[
    RuleInfo {
        name: "wall_clock",
        description: "no SystemTime / Instant::now outside the annotated allowlist \
                      (wall-clock must never influence response bytes)",
    },
    RuleInfo {
        name: "unordered_collections",
        description: "no HashMap/HashSet in serialization-adjacent crates (oa-serve, \
                      oa-store); iteration order must be deterministic",
    },
    RuleInfo {
        name: "float_format",
        description: "exponent-format floats in caches/stores/wire encodings must use \
                      the exact {:.17e} round-trip form",
    },
    RuleInfo {
        name: "panic",
        description: "no unwrap/expect/slice-indexing in the oa-serve request path or \
                      the oa-par pool without a justifying annotation",
    },
    RuleInfo {
        name: "forbid_unsafe",
        description: "#![forbid(unsafe_code)] must be present in every crate root",
    },
    RuleInfo {
        name: "lock_order",
        description: "the interprocedural lock-acquisition graph must be acyclic \
                      (ast engine; annotation waives one edge of a cycle)",
    },
    RuleInfo {
        name: "determinism",
        description: "no dataflow from HashMap/HashSet iteration to serialization \
                      sinks (ast engine; annotation at source or sink waives the flow)",
    },
    RuleInfo {
        name: "nonblocking_event_loop",
        description: "no Blocks-effect site reachable from the oa-router event loop \
                      (ast engine, effect inference; annotation whitelists one site)",
    },
    RuleInfo {
        name: "alloc_free_kernel",
        description: "no Allocates-effect site reachable from the oa-linalg LANES \
                      factor/solve kernels (ast engine, effect inference)",
    },
    RuleInfo {
        name: "lock_across_blocking",
        description: "no Blocks-effect call while a lock guard is live (ast engine, \
                      effect inference over the held-guard walk)",
    },
    RuleInfo {
        name: "wire_undeclared",
        description: "every op and error kind the code emits, routes or issues must \
                      be declared in crates/serve/protocol.spec (ast engine, wire pass)",
    },
    RuleInfo {
        name: "wire_dead",
        description: "every declared op must be dispatched or routed and every \
                      declared kind emitted somewhere (ast engine, wire pass)",
    },
    RuleInfo {
        name: "wire_client_match",
        description: "retryable error kinds of client-issued ops must be matched on \
                      the consumer side, or retries silently never happen (wire pass)",
    },
    RuleInfo {
        name: "wire_router_coverage",
        description: "every declared op needs a route_of arm of the declared class; \
                      session ops must route as session or shard pinning is lost",
    },
    RuleInfo {
        name: "wire_spec",
        description: "crates/serve/protocol.spec must exist and parse (wire pass)",
    },
];

/// One lint finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Workspace-relative path of the file.
    pub path: String,
    /// 1-based line.
    pub line: u32,
    /// Rule that fired (or `bad_annotation`).
    pub rule: &'static str,
    /// Human-readable description of the violation.
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.path, self.line, self.rule, self.message
        )
    }
}

/// Which rules apply to a file, derived from its workspace-relative
/// path. Pure so the scoping policy is unit-testable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Scope {
    /// `wall_clock` applies (all non-vendored workspace code).
    pub wall_clock: bool,
    /// `unordered_collections` applies.
    pub unordered_collections: bool,
    /// `float_format` applies.
    pub float_format: bool,
    /// `panic` applies.
    pub panic: bool,
    /// `forbid_unsafe` applies (crate roots only).
    pub forbid_unsafe: bool,
}

/// Derives the rule scope of a workspace-relative path (forward
/// slashes). See the module table for the policy.
pub fn scope_of(path: &str) -> Scope {
    let in_crate = |name: &str| path.starts_with(&format!("crates/{name}/src/"));
    // The router splices response bytes and renders merged stats, so it
    // sits on the same serialization bar as serve and the store.
    let serialization = in_crate("serve") || in_crate("store") || in_crate("router");
    // The request path: everything a client request flows through. The
    // CLI/daemon binaries and the test-only client are excluded — they
    // are invocation tools, not the serving hot path.
    let request_path = [
        "crates/serve/src/service.rs",
        "crates/serve/src/server.rs",
        "crates/serve/src/json.rs",
        "crates/serve/src/lib.rs",
        "crates/router/src/router.rs",
        "crates/router/src/frame.rs",
        "crates/router/src/net.rs",
        "crates/router/src/ring.rs",
        "crates/router/src/lib.rs",
    ]
    .contains(&path);
    Scope {
        wall_clock: true,
        unordered_collections: serialization,
        float_format: serialization || in_crate("bench"),
        // The fault layer sits inside both the store and the serving hot
        // path, so it inherits the same panic-freedom bar as the pool.
        // Within oa-par only pool.rs is in scope: `par_map` is offline
        // bench tooling with a deliberately panic-propagating contract,
        // so forcing annotations on its index arithmetic was noise —
        // the ast engine reaches the same conclusion via reachability.
        panic: request_path || path == "crates/par/src/pool.rs" || in_crate("fault"),
        forbid_unsafe: path.ends_with("src/lib.rs"),
    }
}

/// Lints one file's source text under the rules `scope_of(path)`
/// selects. Findings come back in line order.
pub fn lint_source(path: &str, source: &str) -> Vec<Finding> {
    lint_source_scoped(path, source, scope_of(path))
}

/// Lints one file under an explicit scope (the fixture tests use this
/// to exercise rules regardless of path).
pub fn lint_source_scoped(path: &str, source: &str, scope: Scope) -> Vec<Finding> {
    let tokens = lex(source);
    let mut findings = Vec::new();
    let (allowed, mut annotation_findings) = collect_annotations(path, &tokens);
    findings.append(&mut annotation_findings);
    let skip = test_code_mask(&tokens);

    // Code tokens with their index in the full stream, comments and
    // test code removed — the view every token rule scans.
    let code: Vec<&Token<'_>> = tokens
        .iter()
        .enumerate()
        .filter(|(i, t)| !skip[*i] && !t.is_comment())
        .map(|(_, t)| t)
        .collect();

    let mut report = |rule: &'static str, line: u32, message: String| {
        if !allowed.get(rule).is_some_and(|lines| lines.contains(&line)) {
            findings.push(Finding {
                path: path.to_owned(),
                line,
                rule,
                message,
            });
        }
    };

    if scope.wall_clock {
        for (k, t) in code.iter().enumerate() {
            if t.is_ident("SystemTime") {
                report(
                    "wall_clock",
                    t.line,
                    "SystemTime is wall-clock; it must never influence served bytes".to_owned(),
                );
            }
            if t.is_ident("Instant")
                && code.get(k + 1).is_some_and(|t| t.is_punct(':'))
                && code.get(k + 2).is_some_and(|t| t.is_punct(':'))
                && code.get(k + 3).is_some_and(|t| t.is_ident("now"))
            {
                report(
                    "wall_clock",
                    t.line,
                    "Instant::now() reads the clock; annotate if provably stats-only".to_owned(),
                );
            }
        }
    }

    if scope.unordered_collections {
        for t in &code {
            if t.is_ident("HashMap") || t.is_ident("HashSet") {
                report(
                    "unordered_collections",
                    t.line,
                    format!(
                        "{} has nondeterministic iteration order; use BTreeMap/BTreeSet \
                         or sorted vectors in serialization-adjacent code",
                        t.text
                    ),
                );
            }
        }
    }

    if scope.float_format {
        for t in &code {
            if t.kind == TokenKind::Str {
                for (line, spec) in bad_float_specs(t) {
                    report(
                        "float_format",
                        line,
                        format!(
                            "float exponent format `{{{spec}}}` is not the exact-round-trip \
                             `{{:.17e}}` form"
                        ),
                    );
                }
            }
        }
    }

    if scope.panic {
        for (k, t) in code.iter().enumerate() {
            if t.is_punct('.')
                && code
                    .get(k + 1)
                    .is_some_and(|t| t.is_ident("unwrap") || t.is_ident("expect"))
                && code.get(k + 2).is_some_and(|t| t.is_punct('('))
            {
                let callee = code[k + 1];
                report(
                    "panic",
                    callee.line,
                    format!(".{}() can panic on the request path", callee.text),
                );
            }
            // Index expressions: `[` directly after a value-producing
            // token (identifier, `)`, or `]`). Attributes (`#[...]`),
            // array literals/types and macro bangs (`vec![`) are not
            // preceded by such tokens.
            if t.is_punct('[')
                && k > 0
                && code.get(k - 1).is_some_and(|p| {
                    p.kind == TokenKind::Ident || p.is_punct(')') || p.is_punct(']')
                })
            {
                report(
                    "panic",
                    t.line,
                    "slice/array indexing can panic on the request path; use .get() or annotate"
                        .to_owned(),
                );
            }
        }
    }

    if scope.forbid_unsafe {
        let has = tokens.windows(7).any(|w| {
            w[0].is_punct('#')
                && w[1].is_punct('!')
                && w[2].is_punct('[')
                && w[3].is_ident("forbid")
                && w[4].is_punct('(')
                && w[5].is_ident("unsafe_code")
                && w[6].is_punct(')')
        });
        if !has {
            report(
                "forbid_unsafe",
                1,
                "crate root is missing #![forbid(unsafe_code)]".to_owned(),
            );
        }
    }

    findings.sort_by_key(|f| (f.line, f.rule));
    findings
}

/// Public entry for the ast engine: parses a file's `lint: allow(...)`
/// annotations. Returns rule → covered lines, plus `bad_annotation`
/// findings for malformed ones.
pub fn annotations_of(
    path: &str,
    source: &str,
) -> (BTreeMap<&'static str, Vec<u32>>, Vec<Finding>) {
    collect_annotations(path, &lex(source))
}

/// Parses `lint: allow(rule, reason)` annotations out of line comments.
/// Returns the per-rule set of covered lines plus findings for
/// malformed annotations. An annotation on line `L` covers `L` and the
/// next line holding a non-comment token.
fn collect_annotations<'a>(
    path: &str,
    tokens: &[Token<'a>],
) -> (BTreeMap<&'static str, Vec<u32>>, Vec<Finding>) {
    let mut allowed: BTreeMap<&'static str, Vec<u32>> = BTreeMap::new();
    let mut findings = Vec::new();
    for (i, t) in tokens.iter().enumerate() {
        if t.kind != TokenKind::LineComment {
            continue;
        }
        let Some(rest) = t
            .text
            .trim_start_matches('/')
            .trim_start()
            .strip_prefix("lint:")
        else {
            continue;
        };
        let rest = rest.trim_start();
        let mut bad = |message: String| {
            findings.push(Finding {
                path: path.to_owned(),
                line: t.line,
                rule: "bad_annotation",
                message,
            });
        };
        let Some(args) = rest
            .strip_prefix("allow(")
            .and_then(|s| s.rfind(')').map(|end| &s[..end]))
        else {
            bad(format!(
                "malformed lint annotation `{}`; expected `lint: allow(<rule>, <reason>)`",
                t.text.trim_start_matches('/').trim()
            ));
            continue;
        };
        let (rule_txt, reason) = match args.split_once(',') {
            Some((r, why)) => (r.trim(), why.trim()),
            None => (args.trim(), ""),
        };
        let Some(rule) = RULE_NAMES.iter().find(|n| **n == rule_txt) else {
            bad(format!(
                "unknown lint rule `{rule_txt}` in allow annotation"
            ));
            continue;
        };
        if reason.is_empty() {
            bad(format!(
                "allow({rule}) annotation is missing its mandatory reason"
            ));
            continue;
        }
        // Covered lines: the annotation's own line (trailing-comment
        // form) and the next line with a non-comment token.
        let mut lines = vec![t.line];
        if let Some(next) = tokens[i + 1..]
            .iter()
            .find(|n| !n.is_comment() && n.line > t.line)
        {
            lines.push(next.line);
        }
        allowed.entry(rule).or_default().extend(lines);
    }
    (allowed, findings)
}

/// Marks tokens belonging to `#[cfg(test)]` / `#[test]` items so rules
/// skip them. The item following the attribute is consumed up to its
/// closing `}` (brace-tracked) or a `;` at depth zero.
fn test_code_mask(tokens: &[Token<'_>]) -> Vec<bool> {
    let mut skip = vec![false; tokens.len()];
    let code_idx: Vec<usize> = tokens
        .iter()
        .enumerate()
        .filter(|(_, t)| !t.is_comment())
        .map(|(i, _)| i)
        .collect();
    let at = |k: usize| code_idx.get(k).map(|&i| &tokens[i]);
    let mut k = 0usize;
    while k < code_idx.len() {
        let is_cfg_test = at(k).is_some_and(|t| t.is_punct('#'))
            && at(k + 1).is_some_and(|t| t.is_punct('['))
            && at(k + 2).is_some_and(|t| t.is_ident("cfg"))
            && at(k + 3).is_some_and(|t| t.is_punct('('))
            && at(k + 4).is_some_and(|t| t.is_ident("test"))
            && at(k + 5).is_some_and(|t| t.is_punct(')'))
            && at(k + 6).is_some_and(|t| t.is_punct(']'));
        let is_test_attr = at(k).is_some_and(|t| t.is_punct('#'))
            && at(k + 1).is_some_and(|t| t.is_punct('['))
            && at(k + 2).is_some_and(|t| t.is_ident("test"))
            && at(k + 3).is_some_and(|t| t.is_punct(']'));
        if !(is_cfg_test || is_test_attr) {
            k += 1;
            continue;
        }
        let start = k;
        k += if is_cfg_test { 7 } else { 4 };
        // Skip any further attributes on the same item.
        while at(k).is_some_and(|t| t.is_punct('#')) && at(k + 1).is_some_and(|t| t.is_punct('[')) {
            k += 2;
            let mut depth = 1i32;
            while depth > 0 && k < code_idx.len() {
                if at(k).is_some_and(|t| t.is_punct('[')) {
                    depth += 1;
                } else if at(k).is_some_and(|t| t.is_punct(']')) {
                    depth -= 1;
                }
                k += 1;
            }
        }
        // Consume the item: until `;` at depth 0 or the matching `}` of
        // its first `{`.
        let mut depth = 0i32;
        while k < code_idx.len() {
            let t = at(k).expect("k < len");
            if t.is_punct('{') {
                depth += 1;
            } else if t.is_punct('}') {
                depth -= 1;
                if depth == 0 {
                    k += 1;
                    break;
                }
            } else if t.is_punct(';') && depth == 0 {
                k += 1;
                break;
            }
            k += 1;
        }
        for &i in &code_idx[start..k.min(code_idx.len())] {
            skip[i] = true;
        }
    }
    skip
}

/// Scans a string literal for format specs of exponent type (`…e}`)
/// that are not the exact `:.17e`. Returns `(line, spec)` pairs. Only
/// specs containing a `:` count, so prose braces never match.
fn bad_float_specs(token: &Token<'_>) -> Vec<(u32, String)> {
    let mut out = Vec::new();
    let text = token.text;
    let bytes = text.as_bytes();
    let mut i = 0usize;
    let mut line = token.line;
    while i < bytes.len() {
        match bytes[i] {
            b'\n' => {
                line += 1;
                i += 1;
            }
            b'{' if bytes.get(i + 1) == Some(&b'{') => i += 2, // escaped brace
            b'{' => {
                let Some(close) = text[i..].find('}').map(|d| i + d) else {
                    break;
                };
                let group = &text[i + 1..close];
                if let Some((_, spec)) = group.split_once(':') {
                    if spec.ends_with('e') && spec != ".17e" {
                        out.push((line, format!(":{spec}")));
                    }
                }
                i = close + 1;
            }
            _ => i += 1,
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const ALL: Scope = Scope {
        wall_clock: true,
        unordered_collections: true,
        float_format: true,
        panic: true,
        forbid_unsafe: false,
    };

    fn rules_fired(src: &str) -> Vec<&'static str> {
        lint_source_scoped("fixture.rs", src, ALL)
            .into_iter()
            .map(|f| f.rule)
            .collect()
    }

    #[test]
    fn wall_clock_fires_on_instant_now_and_system_time() {
        let src = "fn f() { let t = Instant::now(); }";
        assert_eq!(rules_fired(src), vec!["wall_clock"]);
        let src = "fn f() -> SystemTime { SystemTime::now() }";
        assert_eq!(rules_fired(src), vec!["wall_clock", "wall_clock"]);
    }

    #[test]
    fn wall_clock_ignores_bare_instant_ident() {
        assert!(rules_fired("use std::time::Instant;").is_empty());
    }

    #[test]
    fn wall_clock_respects_trailing_annotation() {
        let src = "let t = Instant::now(); // lint: allow(wall_clock, stats only)";
        assert!(rules_fired(src).is_empty());
    }

    #[test]
    fn wall_clock_respects_preceding_annotation() {
        let src = "// lint: allow(wall_clock, stats only)\nlet t = Instant::now();";
        assert!(rules_fired(src).is_empty());
    }

    #[test]
    fn annotation_does_not_cover_two_lines_down() {
        let src = "// lint: allow(wall_clock, stats only)\nlet a = 1;\nlet t = Instant::now();";
        assert_eq!(rules_fired(src), vec!["wall_clock"]);
    }

    #[test]
    fn unordered_collections_fires_on_hash_map_and_set() {
        let src = "use std::collections::HashMap; fn f(s: HashSet<u8>) {}";
        assert_eq!(
            rules_fired(src),
            vec!["unordered_collections", "unordered_collections"]
        );
    }

    #[test]
    fn float_format_fires_on_non_roundtrip_exponent() {
        let src = r#"fn f(v: f64) -> String { format!("{v:.3e}") }"#;
        let f = lint_source_scoped("fixture.rs", src, ALL);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, "float_format");
        assert!(f[0].message.contains(":.3e"), "{}", f[0].message);
    }

    #[test]
    fn float_format_accepts_the_exact_form_and_prose_braces() {
        let src = r#"fn f(v: f64) { format!("{v:.17e}"); println!("{{not a spec}} {v}"); }"#;
        assert!(rules_fired(src).is_empty());
    }

    #[test]
    fn panic_fires_on_unwrap_expect_and_indexing() {
        let src = "fn f(v: Vec<u8>) -> u8 { v.unwrap(); v.expect(\"x\"); v[0] }";
        assert_eq!(rules_fired(src), vec!["panic", "panic", "panic"]);
    }

    #[test]
    fn panic_ignores_unwrap_or_else_and_safe_brackets() {
        let src = "fn f() { x.unwrap_or_else(|| 0); let a = [0u8; 4]; let v = vec![1]; }";
        assert!(rules_fired(src).is_empty());
    }

    #[test]
    fn panic_annotation_waives_the_site() {
        let src =
            "fn f(v: &[u8]) -> u8 {\n    // lint: allow(panic, index proven in range)\n    v[0]\n}";
        assert!(rules_fired(src).is_empty());
    }

    #[test]
    fn test_code_is_exempt() {
        let src = "#[cfg(test)]\nmod tests {\n    fn f() { x.unwrap(); Instant::now(); }\n}";
        assert!(rules_fired(src).is_empty());
        let src = "#[test]\nfn t() { x.unwrap(); }";
        assert!(rules_fired(src).is_empty());
    }

    #[test]
    fn code_after_test_item_is_linted_again() {
        let src = "#[cfg(test)]\nmod tests { fn f() {} }\nfn g() { x.unwrap(); }";
        assert_eq!(rules_fired(src), vec!["panic"]);
    }

    #[test]
    fn forbid_unsafe_checks_crate_roots() {
        let scope = Scope {
            forbid_unsafe: true,
            ..ALL
        };
        let f = lint_source_scoped("crates/x/src/lib.rs", "pub fn f() {}", scope);
        assert_eq!(f[0].rule, "forbid_unsafe");
        let ok = lint_source_scoped(
            "crates/x/src/lib.rs",
            "#![forbid(unsafe_code)]\npub fn f() {}",
            scope,
        );
        assert!(ok.is_empty());
    }

    #[test]
    fn bad_annotations_are_findings() {
        let f = lint_source_scoped("f.rs", "// lint: allow(panic)\nlet x = 1;", ALL);
        assert_eq!(f[0].rule, "bad_annotation");
        let f = lint_source_scoped("f.rs", "// lint: allow(made_up_rule, why)\n", ALL);
        assert_eq!(f[0].rule, "bad_annotation");
        assert!(f[0].message.contains("made_up_rule"));
        let f = lint_source_scoped("f.rs", "// lint: allowing stuff\n", ALL);
        assert_eq!(f[0].rule, "bad_annotation");
    }

    #[test]
    fn string_and_comment_contents_never_fire_code_rules() {
        let src = r#"fn f() { let s = "Instant::now() HashMap v.unwrap()"; } // HashMap"#;
        assert!(rules_fired(src).is_empty());
    }

    #[test]
    fn scope_policy_matches_the_table() {
        let s = scope_of("crates/serve/src/service.rs");
        assert!(s.panic && s.unordered_collections && s.float_format && s.wall_clock);
        assert!(!s.forbid_unsafe);
        let s = scope_of("crates/serve/src/bin/oa_cli.rs");
        assert!(!s.panic, "CLI binaries are not the request path");
        let s = scope_of("crates/par/src/pool.rs");
        assert!(s.panic && !s.unordered_collections);
        let s = scope_of("crates/fault/src/plan.rs");
        assert!(s.panic, "the fault layer runs on the request path");
        let s = scope_of("crates/sim/src/lib.rs");
        assert!(s.forbid_unsafe && s.wall_clock && !s.panic);
        let s = scope_of("crates/bench/src/cache.rs");
        assert!(s.float_format && !s.panic);
    }

    #[test]
    fn findings_display_like_compiler_diagnostics() {
        let f = Finding {
            path: "crates/x/src/a.rs".into(),
            line: 7,
            rule: "panic",
            message: "boom".into(),
        };
        assert_eq!(f.to_string(), "crates/x/src/a.rs:7: [panic] boom");
    }
}
