//! Engine orchestration: runs a full workspace analysis under either
//! engine and merges the findings.
//!
//! The **token engine** is the original per-file scanner — every rule
//! in [`crate::lint`] applied file by file, no cross-file knowledge.
//! The **ast engine** parses every file ([`crate::parser`]), builds the
//! workspace call graph ([`crate::callgraph`]), and replaces the two
//! rules whose token forms over- or under-approximate:
//!
//! * `panic` — token form flags every site in a fixed file list; the
//!   ast form reports only sites *reachable from a serving entry
//!   point*, with the call chain ([`crate::reachability`]).
//! * `unordered_collections` — token form bans `HashMap` mentions in
//!   serialization crates; the ast form tracks iteration-order taint
//!   to actual serialization sinks ([`crate::taint`], rule
//!   `determinism`).
//!
//! All other token rules (`wall_clock`, `float_format`,
//! `forbid_unsafe`, annotation hygiene) still run under the ast
//! engine — they are token-shaped properties and the token scanner is
//! the right tool for them. The ast engine adds `lock_order`
//! ([`crate::locks`]), which has no token-level counterpart.

use crate::callgraph::{CallGraph, Workspace};
use crate::lint::{annotations_of, lint_source, lint_source_scoped, scope_of, Finding};
use crate::protocol::ProtocolSpec;
use crate::ranges::Discharge;
use crate::reachability::Allowed;
use crate::{effects, locks, ranges, reachability, taint, wire};
use std::collections::BTreeSet;

/// Which analysis engine to run. Parsed from `--engine=` by the CLI.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Engine {
    /// Syntax-driven interprocedural engine (default).
    #[default]
    Ast,
    /// Original token-level per-file scanner (fallback).
    Token,
}

impl Engine {
    /// Parses an `--engine=` value.
    pub fn parse(name: &str) -> Option<Engine> {
        match name {
            "ast" => Some(Engine::Ast),
            "token" => Some(Engine::Token),
            _ => None,
        }
    }
}

/// The declared wire protocol handed to the ast engine's wire pass:
/// the spec's display path (used in findings) and its text, `None`
/// when the file could not be read. `run_with(.., Some(..))` enables
/// the pass; the pass is skipped entirely when absent (unit tests,
/// token engine).
#[derive(Debug, Clone)]
pub struct WireInput {
    /// Display path of the spec file (workspace-relative).
    pub path: String,
    /// Spec text; `None` reports `wire_spec` (missing file).
    pub text: Option<String>,
}

/// Wall-clock milliseconds per ast-engine phase, for `--timings` and
/// `scripts/bench_smoke.sh` (all zero under the token engine).
#[derive(Debug, Default, Clone, Copy)]
pub struct PhaseTimings {
    /// Parsing plus the token-shaped rules.
    pub parse_ms: u128,
    /// Call-graph construction.
    pub callgraph_ms: u128,
    /// Value-range discharge.
    pub ranges_ms: u128,
    /// Reachability, lock order, taint, and effect inference.
    pub effects_ms: u128,
    /// Wire-schema extraction and spec conformance.
    pub wire_ms: u128,
}

/// The outcome of a workspace analysis run.
#[derive(Debug, Default)]
pub struct Report {
    /// All findings, sorted by path then line.
    pub findings: Vec<Finding>,
    /// Files analyzed.
    pub files: usize,
    /// Functions in the call graph (ast engine only; 0 under token).
    pub fns: usize,
    /// Call edges resolved (ast engine only; 0 under token).
    pub edges: usize,
    /// Indexing sites the value-range analysis proved in-bounds
    /// (ast engine only) — printed under `--explain-discharges`.
    pub discharged: Vec<Discharge>,
    /// Per-phase wall-clock timings (ast engine only).
    pub timings: PhaseTimings,
}

/// Runs the chosen engine over `(path, source)` pairs for the whole
/// workspace. Paths are workspace-relative with forward slashes.
/// Equivalent to [`run_with`] without a wire spec.
pub fn run(engine: Engine, inputs: &[(String, String)]) -> Report {
    run_with(engine, inputs, None)
}

/// [`run`], optionally with the declared wire protocol: when `wire`
/// is present the ast engine extracts the wire schema and checks it
/// against the spec (rules `wire_*`); the token engine ignores it.
pub fn run_with(engine: Engine, inputs: &[(String, String)], wire: Option<&WireInput>) -> Report {
    match engine {
        Engine::Token => run_token(inputs),
        Engine::Ast => run_ast(inputs, wire),
    }
}

fn run_token(inputs: &[(String, String)]) -> Report {
    let mut findings = Vec::new();
    for (path, source) in inputs {
        findings.extend(lint_source(path, source));
    }
    findings.sort_by(|a, b| (&a.path, a.line, &a.message).cmp(&(&b.path, b.line, &b.message)));
    Report {
        findings,
        files: inputs.len(),
        fns: 0,
        edges: 0,
        discharged: Vec::new(),
        timings: PhaseTimings::default(),
    }
}

fn run_ast(inputs: &[(String, String)], wire_input: Option<&WireInput>) -> Report {
    let mut timings = PhaseTimings::default();
    // lint: allow(wall_clock, phase timing for --timings, not a response path)
    let t = std::time::Instant::now();

    // Token rules minus the two the interprocedural analyses replace.
    // Annotation-hygiene findings (`bad_annotation`) come from this
    // pass; `annotations_of` below is used only for its line map.
    let ws = Workspace::parse(inputs);
    let mut findings = Vec::new();
    let mut allowed = Allowed::new();
    for (path, source) in inputs {
        let mut scope = scope_of(path);
        scope.panic = false;
        scope.unordered_collections = false;
        findings.extend(lint_source_scoped(path, source, scope));
        let (rules, _) = annotations_of(path, source);
        allowed.insert(path.clone(), rules);
    }
    timings.parse_ms = t.elapsed().as_millis();

    // lint: allow(wall_clock, phase timing for --timings, not a response path)
    let t = std::time::Instant::now();
    let graph = CallGraph::build(&ws);
    timings.callgraph_ms = t.elapsed().as_millis();

    // Value-range analysis first: its proven sites are subtracted from
    // the panic-reachability findings (and need no annotation).
    // lint: allow(wall_clock, phase timing for --timings, not a response path)
    let t = std::time::Instant::now();
    let discharged = ranges::discharges(&graph);
    let discharged_lines: BTreeSet<(String, u32)> = discharged
        .iter()
        .map(|d| (d.path.clone(), d.line))
        .collect();
    timings.ranges_ms = t.elapsed().as_millis();

    // lint: allow(wall_clock, phase timing for --timings, not a response path)
    let t = std::time::Instant::now();
    findings.extend(reachability::check(&graph, &allowed, &discharged_lines));
    findings.extend(locks::check(&graph, &allowed));
    findings.extend(taint::check(&graph, &allowed));
    findings.extend(effects::check(&graph, &allowed));
    timings.effects_ms = t.elapsed().as_millis();

    // Wire-schema extraction vs the declared protocol.
    // lint: allow(wall_clock, phase timing for --timings, not a response path)
    let t = std::time::Instant::now();
    if let Some(w) = wire_input {
        match &w.text {
            None => findings.push(wire::spec_finding(&w.path, "file is missing or unreadable")),
            Some(text) => match ProtocolSpec::parse(text) {
                Err(e) => findings.push(wire::spec_finding(&w.path, &e)),
                Ok(spec) => findings.extend(wire::check(&ws, &spec, &w.path)),
            },
        }
    }
    timings.wire_ms = t.elapsed().as_millis();

    findings.sort_by(|a, b| (&a.path, a.line, &a.message).cmp(&(&b.path, b.line, &b.message)));
    findings.dedup();

    let edges = graph.edges.iter().map(Vec::len).sum();
    Report {
        findings,
        files: inputs.len(),
        fns: graph.nodes.len(),
        edges,
        discharged,
        timings,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn inputs(files: &[(&str, &str)]) -> Vec<(String, String)> {
        files
            .iter()
            .map(|(p, s)| ((*p).to_owned(), (*s).to_owned()))
            .collect()
    }

    #[test]
    fn ast_engine_skips_unreachable_panic_the_token_engine_flags() {
        // An unwrap in a request-path file, but in a function no entry
        // point reaches: token engine flags it, ast engine does not.
        let files = inputs(&[(
            "crates/serve/src/service.rs",
            "fn offline_tool(v: Option<u8>) -> u8 { v.unwrap() }",
        )]);
        let token = run(Engine::Token, &files);
        assert!(
            token.findings.iter().any(|f| f.rule == "panic"),
            "{:?}",
            token.findings
        );
        let ast = run(Engine::Ast, &files);
        assert!(
            !ast.findings.iter().any(|f| f.rule == "panic"),
            "{:?}",
            ast.findings
        );
    }

    #[test]
    fn ast_engine_still_runs_the_token_shaped_rules() {
        let files = inputs(&[(
            "crates/serve/src/service.rs",
            "fn f() { let t = std::time::Instant::now(); }",
        )]);
        let ast = run(Engine::Ast, &files);
        assert!(
            ast.findings.iter().any(|f| f.rule == "wall_clock"),
            "{:?}",
            ast.findings
        );
    }

    #[test]
    fn ast_engine_finds_reachable_panics_with_chain() {
        let files = inputs(&[(
            "crates/serve/src/service.rs",
            "pub struct Service;\n\
             impl Service { pub fn handle_line(&self, v: Option<u8>) -> u8 { v.unwrap() } }",
        )]);
        let ast = run(Engine::Ast, &files);
        let panics: Vec<_> = ast.findings.iter().filter(|f| f.rule == "panic").collect();
        assert_eq!(panics.len(), 1, "{:?}", ast.findings);
        assert!(panics[0]
            .message
            .contains("reachable from Service::handle_line"));
    }

    #[test]
    fn report_counts_are_populated_under_ast() {
        let files = inputs(&[("crates/core/src/lib.rs", "pub fn a() { b(); }\nfn b() {}")]);
        let r = run(Engine::Ast, &files);
        assert_eq!(r.files, 1);
        assert_eq!(r.fns, 2);
        assert_eq!(r.edges, 1);
    }

    #[test]
    fn engine_parse_round_trips() {
        assert_eq!(Engine::parse("ast"), Some(Engine::Ast));
        assert_eq!(Engine::parse("token"), Some(Engine::Token));
        assert_eq!(Engine::parse("bogus"), None);
    }
}
