//! SARIF 2.1.0 output and baseline snapshots for diff-aware gating.
//!
//! Two tooling surfaces for the same finding list:
//!
//! * [`to_sarif`] renders a run as a SARIF 2.1.0 log (hand-rolled
//!   std-only JSON) so CI systems and editors can ingest `oa_lint`
//!   results without parsing our text format. One `run` object, the
//!   rule catalogue under `tool.driver.rules`, one `result` per
//!   finding with the full entry→site chain in `message.text`.
//! * [`write_baseline`] / [`parse_baseline`] / [`diff`] implement
//!   `--baseline`: a committed snapshot of finding *fingerprints*
//!   lets CI fail only on findings that are new relative to the
//!   snapshot, so pre-existing debt does not block unrelated PRs.
//!
//! Fingerprints are line-number-insensitive: `path|rule|message` with
//! every `:<digits>` in the message collapsed to `:_`, so pure code
//! motion (a function shifting down ten lines) does not churn the
//! baseline. The finding's own `line` field is deliberately excluded
//! for the same reason. SARIF carries the fingerprint too, under
//! `partialFingerprints`, so external viewers can do the same dedup.

use crate::engine::Report;
use crate::lint::{Finding, RULES};
use std::collections::BTreeSet;

/// Stable identity of a finding across line renumbering: the path,
/// rule, and message with `:<digits>` spans normalized to `:_`.
pub fn fingerprint(f: &Finding) -> String {
    let mut msg = String::with_capacity(f.message.len());
    let bytes = f.message.as_bytes();
    let mut i = 0usize;
    while i < bytes.len() {
        if bytes[i] == b':' && bytes.get(i + 1).is_some_and(u8::is_ascii_digit) {
            msg.push_str(":_");
            i += 1;
            while bytes.get(i).is_some_and(u8::is_ascii_digit) {
                i += 1;
            }
        } else {
            // Message text is ASCII-safe to copy bytewise only when we
            // stay on char boundaries; pushing the full char does.
            let ch = f.message[i..].chars().next().expect("in-bounds slice");
            msg.push(ch);
            i += ch.len_utf8();
        }
    }
    format!("{}|{}|{}", f.path, f.rule, msg)
}

/// Serializes the baseline: one fingerprint per line, sorted and
/// deduplicated, with a versioned header comment.
pub fn write_baseline(findings: &[Finding]) -> String {
    let set: BTreeSet<String> = findings.iter().map(fingerprint).collect();
    let mut out = String::from("# oa_lint baseline v1 — one fingerprint per line\n");
    for fp in set {
        out.push_str(&fp);
        out.push('\n');
    }
    out
}

/// Parses a baseline snapshot back into the fingerprint set. Blank
/// lines and `#` comments are ignored.
pub fn parse_baseline(text: &str) -> BTreeSet<String> {
    text.lines()
        .map(str::trim)
        .filter(|l| !l.is_empty() && !l.starts_with('#'))
        .map(str::to_owned)
        .collect()
}

/// The findings whose fingerprints are absent from `baseline` — the
/// ones a diff-aware CI gate should fail on.
pub fn diff<'a>(findings: &'a [Finding], baseline: &BTreeSet<String>) -> Vec<&'a Finding> {
    findings
        .iter()
        .filter(|f| !baseline.contains(&fingerprint(f)))
        .collect()
}

/// Renders a report as a SARIF 2.1.0 log with one run object.
pub fn to_sarif(report: &Report) -> String {
    let mut out = String::with_capacity(4096 + report.findings.len() * 256);
    out.push_str("{\n");
    out.push_str("  \"$schema\": \"https://json.schemastore.org/sarif-2.1.0.json\",\n");
    out.push_str("  \"version\": \"2.1.0\",\n");
    out.push_str("  \"runs\": [\n    {\n");
    out.push_str("      \"tool\": {\n        \"driver\": {\n");
    out.push_str("          \"name\": \"oa_lint\",\n");
    out.push_str("          \"informationUri\": \"DESIGN.md\",\n");
    out.push_str("          \"rules\": [\n");

    // Every rule that fired, in first-seen-sorted order; catalogue
    // descriptions when we have them (`bad_annotation` has none).
    let fired: BTreeSet<&str> = report.findings.iter().map(|f| f.rule).collect();
    for (k, rule) in fired.iter().enumerate() {
        let desc = RULES
            .iter()
            .find(|r| r.name == *rule)
            .map(|r| r.description)
            .unwrap_or("malformed lint annotation");
        out.push_str("            {");
        out.push_str(&format!(
            "\"id\": {}, \"shortDescription\": {{\"text\": {}}}",
            json_str(rule),
            json_str(desc)
        ));
        out.push('}');
        if k + 1 < fired.len() {
            out.push(',');
        }
        out.push('\n');
    }
    out.push_str("          ]\n        }\n      },\n");
    out.push_str("      \"results\": [\n");
    for (k, f) in report.findings.iter().enumerate() {
        out.push_str("        {\n");
        out.push_str(&format!("          \"ruleId\": {},\n", json_str(f.rule)));
        out.push_str("          \"level\": \"error\",\n");
        out.push_str(&format!(
            "          \"message\": {{\"text\": {}}},\n",
            json_str(&f.message)
        ));
        out.push_str(&format!(
            "          \"locations\": [{{\"physicalLocation\": {{\
             \"artifactLocation\": {{\"uri\": {}}}, \
             \"region\": {{\"startLine\": {}}}}}}}],\n",
            json_str(&f.path),
            f.line.max(1)
        ));
        out.push_str(&format!(
            "          \"partialFingerprints\": {{\"oaLintFingerprint/v1\": {}}}\n",
            json_str(&fingerprint(f))
        ));
        out.push_str("        }");
        if k + 1 < report.findings.len() {
            out.push(',');
        }
        out.push('\n');
    }
    out.push_str("      ]\n    }\n  ]\n}\n");
    out
}

/// JSON string literal with the mandatory escapes.
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finding(path: &str, line: u32, rule: &'static str, message: &str) -> Finding {
        Finding {
            path: path.to_owned(),
            line,
            rule,
            message: message.to_owned(),
        }
    }

    /// Minimal JSON well-formedness check: strings lex, braces and
    /// brackets balance, nothing trails the top-level value.
    fn assert_well_formed_json(text: &str) {
        let mut depth = 0i32;
        let mut in_str = false;
        let mut escape = false;
        let mut closed = false;
        for c in text.chars() {
            if in_str {
                if escape {
                    escape = false;
                } else if c == '\\' {
                    escape = true;
                } else if c == '"' {
                    in_str = false;
                }
                continue;
            }
            match c {
                '"' => in_str = true,
                '{' | '[' => {
                    assert!(!closed, "content after top-level value");
                    depth += 1;
                }
                '}' | ']' => {
                    depth -= 1;
                    assert!(depth >= 0, "unbalanced close");
                    if depth == 0 {
                        closed = true;
                    }
                }
                _ => {}
            }
        }
        assert!(!in_str, "unterminated string");
        assert_eq!(depth, 0, "unbalanced braces");
        assert!(closed, "no top-level value");
    }

    #[test]
    fn sarif_log_is_well_formed_and_versioned() {
        let report = Report {
            findings: vec![
                finding(
                    "crates/serve/src/server.rs",
                    12,
                    "panic",
                    "quote \" backslash \\ newline \n done",
                ),
                finding("crates/par/src/pool.rs", 7, "lock_across_blocking", "m"),
            ],
            files: 2,
            fns: 0,
            edges: 0,
            discharged: Vec::new(),
            timings: Default::default(),
        };
        let s = to_sarif(&report);
        assert_well_formed_json(&s);
        assert!(s.contains("\"version\": \"2.1.0\""));
        assert!(s.contains("\"runs\""));
        assert!(s.contains("\"ruleId\": \"lock_across_blocking\""));
        assert!(s.contains("oaLintFingerprint/v1"));
    }

    #[test]
    fn empty_report_still_has_one_run() {
        let s = to_sarif(&Report::default());
        assert_well_formed_json(&s);
        assert!(s.contains("\"results\": [\n      ]"));
    }

    #[test]
    fn fingerprint_is_line_number_insensitive() {
        let a = finding(
            "a.rs",
            10,
            "panic",
            "v[0]; reachable from f: f -> g (at a.rs:12)",
        );
        let b = finding(
            "a.rs",
            99,
            "panic",
            "v[0]; reachable from f: f -> g (at a.rs:57)",
        );
        assert_eq!(fingerprint(&a), fingerprint(&b));
        let c = finding(
            "b.rs",
            10,
            "panic",
            "v[0]; reachable from f: f -> g (at a.rs:12)",
        );
        assert_ne!(fingerprint(&a), fingerprint(&c));
    }

    #[test]
    fn baseline_round_trips_and_diffs() {
        let old = vec![
            finding("a.rs", 1, "panic", "site one at a.rs:3"),
            finding("b.rs", 2, "wall_clock", "site two"),
        ];
        let text = write_baseline(&old);
        let set = parse_baseline(&text);
        assert_eq!(set.len(), 2);
        // Same findings, different lines: nothing new.
        let moved = vec![finding("a.rs", 41, "panic", "site one at a.rs:88")];
        assert!(diff(&moved, &set).is_empty());
        // A genuinely new finding surfaces.
        let with_new = vec![
            finding("a.rs", 41, "panic", "site one at a.rs:88"),
            finding("c.rs", 5, "panic", "brand new"),
        ];
        let new: Vec<_> = diff(&with_new, &set);
        assert_eq!(new.len(), 1);
        assert_eq!(new[0].path, "c.rs");
    }
}
