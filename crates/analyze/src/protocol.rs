//! The declared wire protocol and its conformance automaton.
//!
//! `crates/serve/protocol.spec` declares every NDJSON frame the
//! workspace exchanges: the op table (name, routing class, required
//! request/response fields), the typed error-kind table, and the
//! session lifecycle (`open → step* → stats* → close`, idempotent
//! open). [`ProtocolSpec::parse`] reads that declaration;
//! [`Automaton`] replays a recorded request/response trace against it
//! and rejects the first non-conforming frame with a pinned
//! diagnostic. The wire-schema extraction ([`crate::wire`]) checks the
//! same declaration against what the *code* emits and matches on, so
//! the spec is pinched from both sides: traces prove the declared
//! behavior is live, extraction proves nothing undeclared ships.
//!
//! The module carries its own minimal JSON reader ([`JsonValue`]) so
//! `oa-analyze` stays dependency-free: depending on `oa-serve::json`
//! would pull the whole simulation stack into the lint binary.

use std::collections::BTreeMap;

/// A parsed JSON value, just structured enough for conformance checks.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (integer ids round-trip exactly below 2^53).
    Num(f64),
    /// A string, unescaped.
    Str(String),
    /// An array.
    Arr(Vec<JsonValue>),
    /// An object, in source order.
    Obj(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Parses one JSON document, rejecting trailing garbage.
    ///
    /// # Errors
    ///
    /// A message with the byte offset of the first syntax error.
    pub fn parse(text: &str) -> Result<JsonValue, String> {
        let mut p = JsonParser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let value = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing bytes at offset {}", p.pos));
        }
        Ok(value)
    }

    /// Object field lookup.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric value as `u64`, if this is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonValue::Num(n) if *n >= 0.0 && n.fract() == 0.0 => Some(*n as u64),
            _ => None,
        }
    }

    /// The boolean value, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JsonValue::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Arr(items) => Some(items),
            _ => None,
        }
    }
}

struct JsonParser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl JsonParser<'_> {
    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.bytes.get(self.pos) == Some(&b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at offset {}", b as char, self.pos))
        }
    }

    fn value(&mut self) -> Result<JsonValue, String> {
        match self.bytes.get(self.pos) {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => self.string().map(JsonValue::Str),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(c) if c.is_ascii_digit() || *c == b'-' => self.number(),
            _ => Err(format!("unexpected byte at offset {}", self.pos)),
        }
    }

    fn literal(&mut self, word: &str, value: JsonValue) -> Result<JsonValue, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("bad literal at offset {}", self.pos))
        }
    }

    fn number(&mut self) -> Result<JsonValue, String> {
        let start = self.pos;
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E'))
        {
            self.pos += 1;
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .map(JsonValue::Num)
            .ok_or_else(|| format!("bad number at offset {start}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bytes.get(self.pos) {
                None => return Err("unterminated string".to_owned()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.bytes.get(self.pos) {
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .and_then(char::from_u32)
                                .ok_or_else(|| format!("bad \\u escape at offset {}", self.pos))?;
                            out.push(hex);
                            self.pos += 4;
                        }
                        Some(&other) => out.push(other as char),
                        None => return Err("unterminated escape".to_owned()),
                    }
                    self.pos += 1;
                }
                Some(&b) if b < 0x80 => {
                    out.push(b as char);
                    self.pos += 1;
                }
                Some(_) => {
                    // Multi-byte UTF-8 scalar: copy it whole.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| "bad UTF-8 in string".to_owned())?;
                    let ch = rest.chars().next().ok_or("unterminated string")?;
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn object(&mut self) -> Result<JsonValue, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&b'}') {
            self.pos += 1;
            return Ok(JsonValue::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.bytes.get(self.pos) {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Obj(fields));
                }
                _ => return Err(format!("expected ',' or '}}' at offset {}", self.pos)),
            }
        }
    }

    fn array(&mut self) -> Result<JsonValue, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&b']') {
            self.pos += 1;
            return Ok(JsonValue::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.bytes.get(self.pos) {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at offset {}", self.pos)),
            }
        }
    }
}

/// A declared typed error kind.
#[derive(Debug, Clone)]
pub struct KindDecl {
    /// The wire string (`"unknown_session"`, …).
    pub name: String,
    /// `class=retry` — clients may retry the request verbatim.
    pub retry: bool,
    /// `origin=router` — the router may answer any forwarded op with
    /// this kind, so it is allowed on every op.
    pub router_origin: bool,
    /// 1-based line of the declaration in the spec file.
    pub line: u32,
}

/// One declared field of a request or response object.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Field {
    /// Field name.
    pub name: String,
    /// Marked `?` — may be absent.
    pub optional: bool,
}

/// One declared operation.
#[derive(Debug, Clone)]
pub struct OpDecl {
    /// The `op` string on the wire.
    pub name: String,
    /// Routing class: `local`, `key`, `scatter`, `broadcast`, `session`.
    pub route: String,
    /// Request fields beyond `id`/`op`.
    pub request: Vec<Field>,
    /// `result` object fields on success.
    pub response: Vec<Field>,
    /// Typed error kinds the serving node may answer with.
    pub errors: Vec<String>,
    /// 1-based line of the declaration in the spec file.
    pub line: u32,
}

/// How a lifecycle transition treats the per-session step counter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CounterRule {
    /// Reset to zero (open).
    Reset,
    /// The response's `field` must equal counter+1; the counter then
    /// advances (step).
    Increment,
    /// The response's `field` must equal the counter exactly
    /// (stats/close).
    Check,
}

/// One declared session-lifecycle transition.
#[derive(Debug, Clone)]
pub struct LifecycleDecl {
    /// The transitioning op.
    pub op: String,
    /// `from=any` — legal in every state (idempotent open); otherwise
    /// the session must be open.
    pub from_any: bool,
    /// `to=open` keeps/creates the session; `to=closed` removes it.
    pub to_open: bool,
    /// Counter obligation.
    pub counter: CounterRule,
    /// The response field the counter obligation reads.
    pub field: Option<String>,
}

/// The parsed protocol declaration.
#[derive(Debug, Clone, Default)]
pub struct ProtocolSpec {
    /// Declared typed error kinds.
    pub kinds: Vec<KindDecl>,
    /// Declared operations, in declaration order.
    pub ops: Vec<OpDecl>,
    /// Declared lifecycle transitions.
    pub lifecycle: Vec<LifecycleDecl>,
}

/// Splits `key=a,b,c` attribute words into `(key, values)`.
fn attr_of(word: &str) -> Option<(&str, &str)> {
    word.split_once('=')
}

fn parse_fields(list: &str) -> Vec<Field> {
    list.split(',')
        .filter(|f| !f.is_empty())
        .map(|f| match f.strip_suffix('?') {
            Some(name) => Field {
                name: name.to_owned(),
                optional: true,
            },
            None => Field {
                name: f.to_owned(),
                optional: false,
            },
        })
        .collect()
}

impl ProtocolSpec {
    /// Parses the line-oriented spec grammar (see the module docs of
    /// `crates/serve/protocol.spec`).
    ///
    /// # Errors
    ///
    /// A `line N: …` message for the first malformed or inconsistent
    /// declaration (unknown directive, missing attribute, `errors=`
    /// kind or lifecycle op never declared, duplicate op).
    pub fn parse(text: &str) -> Result<ProtocolSpec, String> {
        let mut spec = ProtocolSpec::default();
        for (lineno, raw) in text.lines().enumerate() {
            let n = lineno + 1;
            let line = raw.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            let mut words = line.split_whitespace();
            let directive = words.next().unwrap_or("");
            let name = words
                .next()
                .ok_or_else(|| format!("line {n}: '{directive}' needs a name"))?
                .to_owned();
            let attrs: Vec<(&str, &str)> = words
                .map(|w| attr_of(w).ok_or_else(|| format!("line {n}: bad attribute '{w}'")))
                .collect::<Result<_, _>>()?;
            let attr = |key: &str| attrs.iter().find(|(k, _)| *k == key).map(|(_, v)| *v);
            match directive {
                "kind" => {
                    let class = attr("class")
                        .ok_or_else(|| format!("line {n}: kind '{name}' needs class="))?;
                    if class != "retry" && class != "terminal" {
                        return Err(format!("line {n}: kind class must be retry|terminal"));
                    }
                    spec.kinds.push(KindDecl {
                        name,
                        retry: class == "retry",
                        router_origin: attr("origin") == Some("router"),
                        line: n as u32,
                    });
                }
                "op" => {
                    if spec.ops.iter().any(|o| o.name == name) {
                        return Err(format!("line {n}: duplicate op '{name}'"));
                    }
                    let route = attr("route")
                        .ok_or_else(|| format!("line {n}: op '{name}' needs route="))?;
                    if !matches!(route, "local" | "key" | "scatter" | "broadcast" | "session") {
                        return Err(format!("line {n}: unknown route '{route}'"));
                    }
                    spec.ops.push(OpDecl {
                        name,
                        route: route.to_owned(),
                        request: parse_fields(attr("request").unwrap_or("")),
                        response: parse_fields(attr("response").unwrap_or("")),
                        errors: attr("errors")
                            .unwrap_or("")
                            .split(',')
                            .filter(|k| !k.is_empty())
                            .map(str::to_owned)
                            .collect(),
                        line: n as u32,
                    });
                }
                "lifecycle" => {
                    let counter = match attr("counter") {
                        Some("reset") => CounterRule::Reset,
                        Some("increment") => CounterRule::Increment,
                        Some("check") => CounterRule::Check,
                        _ => return Err(format!("line {n}: lifecycle needs counter=")),
                    };
                    spec.lifecycle.push(LifecycleDecl {
                        op: name,
                        from_any: attr("from") == Some("any"),
                        to_open: attr("to") != Some("closed"),
                        counter,
                        field: attr("field").map(str::to_owned),
                    });
                }
                other => return Err(format!("line {n}: unknown directive '{other}'")),
            }
        }
        // Cross-checks: every errors= kind and lifecycle op declared.
        for op in &spec.ops {
            for kind in &op.errors {
                if !spec.kinds.iter().any(|k| &k.name == kind) {
                    return Err(format!(
                        "op '{}' lists undeclared error kind '{kind}'",
                        op.name
                    ));
                }
            }
        }
        for lc in &spec.lifecycle {
            let Some(op) = spec.ops.iter().find(|o| o.name == lc.op) else {
                return Err(format!("lifecycle names undeclared op '{}'", lc.op));
            };
            if op.route != "session" {
                return Err(format!(
                    "lifecycle op '{}' must have route=session, has '{}'",
                    lc.op, op.route
                ));
            }
        }
        Ok(spec)
    }

    /// The declared op, if any.
    pub fn op(&self, name: &str) -> Option<&OpDecl> {
        self.ops.iter().find(|o| o.name == name)
    }

    /// The declared kind, if any.
    pub fn kind(&self, name: &str) -> Option<&KindDecl> {
        self.kinds.iter().find(|k| k.name == name)
    }

    /// The lifecycle transition for an op, if any.
    pub fn lifecycle_of(&self, op: &str) -> Option<&LifecycleDecl> {
        self.lifecycle.iter().find(|l| l.op == op)
    }
}

/// The accepting automaton: feeds on `(request, response)` NDJSON line
/// pairs and rejects the first frame that violates the declaration.
/// Per-session state lives in a `BTreeMap` keyed by session id, so one
/// automaton replays an interleaved multi-session trace.
#[derive(Debug)]
pub struct Automaton<'a> {
    spec: &'a ProtocolSpec,
    /// Open sessions → completed-step counter.
    sessions: BTreeMap<u64, u64>,
    frame: usize,
}

impl<'a> Automaton<'a> {
    /// A fresh automaton with no open sessions.
    pub fn new(spec: &'a ProtocolSpec) -> Automaton<'a> {
        Automaton {
            spec,
            sessions: BTreeMap::new(),
            frame: 0,
        }
    }

    /// Step counters of the currently open sessions (test inspection).
    pub fn open_sessions(&self) -> &BTreeMap<u64, u64> {
        &self.sessions
    }

    /// Observes one request/response pair, advancing session state.
    ///
    /// # Errors
    ///
    /// A `frame N: …` diagnostic naming the first violated obligation.
    pub fn observe(&mut self, request: &str, response: &str) -> Result<(), String> {
        self.frame += 1;
        let n = self.frame;
        let fail = |msg: String| Err(format!("frame {n}: {msg}"));

        let resp = match JsonValue::parse(response) {
            Ok(v) => v,
            Err(e) => return fail(format!("response is not JSON ({e})")),
        };
        let Some(ok) = resp.get("ok").and_then(JsonValue::as_bool) else {
            return fail("response lacks boolean 'ok'".to_owned());
        };

        // Malformed request: the envelope must be a plain error with a
        // null id (the server could not echo what it could not parse).
        let Ok(req) = JsonValue::parse(request) else {
            if ok {
                return fail("unparseable request got ok:true".to_owned());
            }
            if resp.get("id") != Some(&JsonValue::Null) {
                return fail("unparseable request must echo id null".to_owned());
            }
            return Ok(());
        };

        if resp.get("id") != req.get("id").or(Some(&JsonValue::Null)) {
            return fail("response id does not echo the request id".to_owned());
        }

        let Some(op_name) = req.get("op").and_then(JsonValue::as_str) else {
            return if ok {
                fail("request without 'op' got ok:true".to_owned())
            } else {
                Ok(())
            };
        };
        let Some(op) = self.spec.op(op_name) else {
            return if ok {
                fail(format!("undeclared op '{op_name}' got ok:true"))
            } else {
                Ok(())
            };
        };
        let op = op.clone();

        if !ok {
            return self
                .check_error(&op, &resp)
                .map_err(|m| format!("frame {n}: {m}"));
        }

        // A request missing a required field must not succeed.
        for f in &op.request {
            if !f.optional && req.get(&f.name).is_none() {
                return fail(format!(
                    "'{op_name}' succeeded without required request field '{}'",
                    f.name
                ));
            }
        }

        let Some(result) = resp.get("result") else {
            return fail(format!("'{op_name}' ok:true without 'result'"));
        };
        self.check_result(&op, result)
            .map_err(|m| format!("frame {n}: {m}"))?;

        if let Some(lc) = self.spec.lifecycle_of(op_name).cloned() {
            let Some(session) = req.get("session").and_then(JsonValue::as_u64) else {
                return fail(format!("'{op_name}' succeeded without a session id"));
            };
            self.transition(&lc, session, result)
                .map_err(|m| format!("frame {n}: {m}"))?;
        }
        Ok(())
    }

    /// Checks an `ok:false` frame: plain string errors always conform;
    /// typed errors must carry a declared kind legal for this op.
    fn check_error(&self, op: &OpDecl, resp: &JsonValue) -> Result<(), String> {
        match resp.get("error") {
            Some(JsonValue::Str(_)) => Ok(()),
            Some(err @ JsonValue::Obj(_)) => {
                let Some(kind) = err.get("kind").and_then(JsonValue::as_str) else {
                    return Err(format!("typed error on '{}' lacks 'kind'", op.name));
                };
                let Some(decl) = self.spec.kind(kind) else {
                    return Err(format!("undeclared error kind '{kind}' on '{}'", op.name));
                };
                if !decl.router_origin && !op.errors.iter().any(|k| k == kind) {
                    return Err(format!(
                        "error kind '{kind}' is not declared for '{}'",
                        op.name
                    ));
                }
                Ok(())
            }
            _ => Err(format!("ok:false on '{}' without 'error'", op.name)),
        }
    }

    /// Checks an `ok:true` result object against the declared fields;
    /// `eval_batch` items are checked as `eval` results or typed
    /// item errors.
    fn check_result(&self, op: &OpDecl, result: &JsonValue) -> Result<(), String> {
        let JsonValue::Obj(fields) = result else {
            return Err(format!("'{}' result is not an object", op.name));
        };
        for f in &op.response {
            if !f.optional && result.get(&f.name).is_none() {
                return Err(format!(
                    "'{}' response missing required field '{}'",
                    op.name, f.name
                ));
            }
        }
        for (k, _) in fields {
            if !op.response.iter().any(|f| &f.name == k) {
                return Err(format!("'{}' response has undeclared field '{k}'", op.name));
            }
        }
        if op.name == "eval_batch" {
            let items = result
                .get("items")
                .and_then(JsonValue::as_arr)
                .ok_or("'eval_batch' result lacks 'items'")?;
            let eval = self
                .spec
                .op("eval")
                .ok_or("spec does not declare 'eval' for batch items")?;
            for (i, item) in items.iter().enumerate() {
                if let Some(err) = item.get("error") {
                    let kind = err
                        .get("kind")
                        .and_then(JsonValue::as_str)
                        .ok_or_else(|| format!("batch item {i} error lacks 'kind'"))?;
                    if !op.errors.iter().any(|k| k == kind) {
                        return Err(format!("batch item {i} has undeclared error kind '{kind}'"));
                    }
                } else {
                    for f in &eval.response {
                        if !f.optional && item.get(&f.name).is_none() {
                            return Err(format!("batch item {i} missing eval field '{}'", f.name));
                        }
                    }
                }
            }
        }
        Ok(())
    }

    /// Applies one successful lifecycle transition.
    fn transition(
        &mut self,
        lc: &LifecycleDecl,
        session: u64,
        result: &JsonValue,
    ) -> Result<(), String> {
        if !lc.from_any && !self.sessions.contains_key(&session) {
            return Err(format!(
                "'{}' succeeded on session {session} which is not open",
                lc.op
            ));
        }
        let counter = self.sessions.get(&session).copied().unwrap_or(0);
        let observed = lc
            .field
            .as_ref()
            .and_then(|f| result.get(f).and_then(JsonValue::as_u64).map(|v| (f, v)));
        let next = match lc.counter {
            CounterRule::Reset => 0,
            CounterRule::Increment => {
                let Some((field, v)) = observed else {
                    return Err(format!("'{}' response lacks counter field", lc.op));
                };
                if v != counter + 1 {
                    return Err(format!(
                        "'{}' session {session}: '{field}' is {v}, expected {}",
                        lc.op,
                        counter + 1
                    ));
                }
                v
            }
            CounterRule::Check => {
                let Some((field, v)) = observed else {
                    return Err(format!("'{}' response lacks counter field", lc.op));
                };
                if v != counter {
                    return Err(format!(
                        "'{}' session {session}: '{field}' is {v}, expected {counter}",
                        lc.op
                    ));
                }
                counter
            }
        };
        if lc.to_open {
            self.sessions.insert(session, next);
        } else {
            self.sessions.remove(&session);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MINI_SPEC: &str = "\
kind boom class=terminal
kind busy class=retry origin=router
op ping route=key request=payload response=echo,extra? errors=boom
op open_session route=session request=session response=session,warm errors=
op step route=session request=session response=session,step errors=
op close_session route=session request=session response=session,steps errors=
lifecycle open_session from=any to=open counter=reset
lifecycle step from=open to=open counter=increment field=step
lifecycle close_session from=open to=closed counter=check field=steps
";

    fn spec() -> ProtocolSpec {
        ProtocolSpec::parse(MINI_SPEC).unwrap()
    }

    #[test]
    fn json_round_trips_the_shapes_on_the_wire() {
        let v =
            JsonValue::parse(r#"{"id":1,"ok":true,"result":{"x":[1,-2.5e3],"s":"a\"b","n":null}}"#)
                .unwrap();
        assert_eq!(v.get("id").and_then(JsonValue::as_u64), Some(1));
        let result = v.get("result").unwrap();
        assert_eq!(result.get("s").and_then(JsonValue::as_str), Some("a\"b"));
        assert_eq!(result.get("n"), Some(&JsonValue::Null));
        assert_eq!(
            result.get("x").and_then(JsonValue::as_arr).map(<[_]>::len),
            Some(2)
        );
        assert!(JsonValue::parse("{\"a\":1} trailing").is_err());
        assert!(JsonValue::parse("{oops").is_err());
    }

    #[test]
    fn spec_parses_and_cross_checks() {
        let s = spec();
        assert_eq!(s.ops.len(), 4);
        assert_eq!(s.op("ping").unwrap().route, "key");
        assert!(s.op("ping").unwrap().response[1].optional);
        assert!(s.kind("busy").unwrap().router_origin);
        assert!(ProtocolSpec::parse("op x route=key errors=ghost").is_err());
        assert!(ProtocolSpec::parse("lifecycle ghost counter=reset").is_err());
        assert!(
            ProtocolSpec::parse("op s route=key\nlifecycle s counter=reset").is_err(),
            "lifecycle ops must route=session"
        );
    }

    #[test]
    fn conforming_trace_is_accepted() {
        let s = spec();
        let mut a = Automaton::new(&s);
        let trace = [
            (
                r#"{"id":1,"op":"ping","payload":1}"#,
                r#"{"id":1,"ok":true,"result":{"echo":1}}"#,
            ),
            (
                r#"{"id":2,"op":"open_session","session":7}"#,
                r#"{"id":2,"ok":true,"result":{"session":7,"warm":0}}"#,
            ),
            (
                r#"{"id":3,"op":"step","session":7}"#,
                r#"{"id":3,"ok":true,"result":{"session":7,"step":1}}"#,
            ),
            // Idempotent re-open resets the counter; replay follows.
            (
                r#"{"id":4,"op":"open_session","session":7}"#,
                r#"{"id":4,"ok":true,"result":{"session":7,"warm":0}}"#,
            ),
            (
                r#"{"id":5,"op":"step","session":7}"#,
                r#"{"id":5,"ok":true,"result":{"session":7,"step":1}}"#,
            ),
            (
                r#"{"id":6,"op":"close_session","session":7}"#,
                r#"{"id":6,"ok":true,"result":{"session":7,"steps":1}}"#,
            ),
            // Router-origin kinds are legal on any op.
            (
                r#"{"id":7,"op":"ping","payload":1}"#,
                r#"{"id":7,"ok":false,"error":{"kind":"busy"}}"#,
            ),
            (
                r#"{"id":8,"op":"ping","payload":1}"#,
                r#"{"id":8,"ok":false,"error":{"kind":"boom","detail":"d"}}"#,
            ),
            // Malformed and unknown requests get plain errors.
            (
                r#"{oops"#,
                r#"{"id":null,"ok":false,"error":"bad request"}"#,
            ),
            (
                r#"{"id":9,"op":"warp"}"#,
                r#"{"id":9,"ok":false,"error":"unknown op"}"#,
            ),
        ];
        for (req, resp) in trace {
            a.observe(req, resp).unwrap();
        }
        assert!(a.open_sessions().is_empty());
    }

    #[test]
    fn violations_are_rejected_with_pinned_diagnostics() {
        let s = spec();
        let cases: &[(&str, &str, &str)] = &[
            (
                r#"{"id":1,"op":"ping","payload":1}"#,
                r#"{"id":1,"ok":true,"result":{}}"#,
                "missing required field 'echo'",
            ),
            (
                r#"{"id":1,"op":"ping","payload":1}"#,
                r#"{"id":1,"ok":true,"result":{"echo":1,"ghost":2}}"#,
                "undeclared field 'ghost'",
            ),
            (
                r#"{"id":1,"op":"ping","payload":1}"#,
                r#"{"id":2,"ok":true,"result":{"echo":1}}"#,
                "does not echo",
            ),
            (
                r#"{"id":1,"op":"ping","payload":1}"#,
                r#"{"id":1,"ok":false,"error":{"kind":"ghost"}}"#,
                "undeclared error kind 'ghost'",
            ),
            (
                r#"{"id":1,"op":"step","session":7}"#,
                r#"{"id":1,"ok":true,"result":{"session":7,"step":1}}"#,
                "not open",
            ),
            (
                r#"{"id":1,"op":"ping"}"#,
                r#"{"id":1,"ok":true,"result":{"echo":1}}"#,
                "without required request field 'payload'",
            ),
        ];
        for (req, resp, needle) in cases {
            let mut a = Automaton::new(&s);
            let err = a.observe(req, resp).unwrap_err();
            assert!(err.contains(needle), "{err} should contain {needle}");
        }
    }

    #[test]
    fn step_counter_mismatches_are_rejected() {
        let s = spec();
        let mut a = Automaton::new(&s);
        a.observe(
            r#"{"id":1,"op":"open_session","session":7}"#,
            r#"{"id":1,"ok":true,"result":{"session":7,"warm":0}}"#,
        )
        .unwrap();
        let err = a
            .observe(
                r#"{"id":2,"op":"step","session":7}"#,
                r#"{"id":2,"ok":true,"result":{"session":7,"step":5}}"#,
            )
            .unwrap_err();
        assert!(err.contains("'step' is 5, expected 1"), "{err}");
    }
}
