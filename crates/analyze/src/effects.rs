//! Effect inference: a bottom-up fixpoint over the call graph.
//!
//! Every function gets an *effect set* — a small lattice of facts
//! about what running it may do:
//!
//! | effect         | seeded from                                        |
//! |----------------|----------------------------------------------------|
//! | `Blocks`       | `thread::sleep`, `connect`, channel `recv`/`send`, |
//! |                | condvar `wait*`, buffered io on sockets/unknowns   |
//! | `Allocates`    | `push`/`insert`/`collect`/`to_vec`/…, `format!`,   |
//! |                | `vec!`, `Box::new`, `with_capacity`                |
//! | `AcquiresLock` | `Mutex::lock` / `RwLock::read`/`write` (via the    |
//! |                | lock analysis' acquisition classifier)             |
//! | `PerformsIo`   | file/socket reads and writes, `accept`, `fs::*`    |
//! | `WallClock`    | `Instant::now`, `SystemTime::now`, `.elapsed()`    |
//! | `Panics`       | `unwrap`/`expect`, indexing, `panic!`-family       |
//!
//! The fixpoint unions every callee's set into its callers until
//! nothing changes, recording for each effect bit a deterministic
//! *witness* — the direct site or the call edge that introduced it —
//! so every diagnostic can print the full entry→site chain.
//!
//! `Blocks` deliberately means *may park the thread indefinitely on
//! external progress*: bounded disk io (`File` writes, `sync_data`)
//! is `PerformsIo` only, and single-shot `read`/`write`/`accept` are
//! not `Blocks` because the router's sockets are all constructed
//! nonblocking (`Conn::new` / `Acceptor::bind`). DESIGN.md §12
//! records this soundness envelope.
//!
//! Three rules consume the inference:
//!
//! * `nonblocking_event_loop` — no `Blocks` site reachable from the
//!   `oa_router` `event_loop` entry points (brief lock acquisitions
//!   are allowed; holding one across a block is rule 3's job);
//! * `alloc_free_kernel` — no `Allocates` site reachable from the
//!   `oa_linalg` LANES factor/solve kernels;
//! * `lock_across_blocking` — no `Blocks` call while a lock guard is
//!   live (extends the lock analysis' guard-scope walk).

use crate::ast::{CallTarget, Event};
use crate::callgraph::{CallGraph, TypeEnv};
use crate::lint::Finding;
use crate::locks::acquisition_class;
use crate::reachability::{chain_text, Allowed};
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// May park the thread indefinitely (socket/channel/condvar waits,
/// `thread::sleep`, `connect`).
pub const BLOCKS: u8 = 1 << 0;
/// May allocate on the heap.
pub const ALLOCATES: u8 = 1 << 1;
/// May acquire a `Mutex`/`RwLock`.
pub const ACQUIRES_LOCK: u8 = 1 << 2;
/// May perform file or socket io (bounded or not).
pub const PERFORMS_IO: u8 = 1 << 3;
/// May read the wall clock.
pub const WALL_CLOCK: u8 = 1 << 4;
/// May panic.
pub const PANICS: u8 = 1 << 5;

/// The six effect bits in display order.
const BITS: [(u8, &str); 6] = [
    (BLOCKS, "Blocks"),
    (ALLOCATES, "Allocates"),
    (ACQUIRES_LOCK, "AcquiresLock"),
    (PERFORMS_IO, "PerformsIo"),
    (WALL_CLOCK, "WallClock"),
    (PANICS, "Panics"),
];

/// Renders an effect set as `{Blocks, PerformsIo}`.
pub fn set_text(set: u8) -> String {
    let names: Vec<&str> = BITS
        .iter()
        .filter(|(bit, _)| set & bit != 0)
        .map(|(_, n)| *n)
        .collect();
    format!("{{{}}}", names.join(", "))
}

/// How a function came to carry an effect bit.
#[derive(Debug, Clone, Default)]
enum Origin {
    /// Not carried.
    #[default]
    None,
    /// A direct site in this function's body.
    Site {
        /// 1-based line.
        line: u32,
        /// Human-readable description of the seeded operation.
        what: String,
    },
    /// Inherited from a callee.
    Call {
        /// 1-based line of the call.
        line: u32,
        /// Callee node id.
        callee: usize,
    },
}

/// Per-function inferred effects with per-bit witnesses.
pub struct Effects {
    /// Effect set per call-graph node.
    pub sets: Vec<u8>,
    /// `origin[id][bit_index]` — first witness for each effect bit.
    origins: Vec<[Origin; 6]>,
    /// Direct (seeded) sites per node: `(line, bits, what)`.
    direct_sites: Vec<Vec<(u32, u8, String)>>,
}

/// Names of calls that resolved to workspace functions, keyed by call
/// line. Their std seeding is skipped — the callee's own inferred
/// effects flow through the call edge instead, so a local `connect`
/// helper is not mistaken for `TcpStream::connect`.
fn resolved_call_names(graph: &CallGraph<'_>, id: usize) -> BTreeSet<(u32, String)> {
    graph.edges[id]
        .iter()
        .map(|e| {
            let qual = graph.def(e.callee).qual.as_str();
            let name = qual.rsplit("::").next().unwrap_or(qual).to_owned();
            (e.line, name)
        })
        .collect()
}

/// Classifies one body event, returning its seeded effect bits and a
/// human-readable description of the operation. `resolved` is the
/// [`resolved_call_names`] set of the enclosing function.
fn event_effects(
    graph: &CallGraph<'_>,
    env: &TypeEnv,
    fn_qual: &str,
    resolved: &BTreeSet<(u32, String)>,
    ev: &Event,
) -> Option<(u32, u8, String)> {
    match ev {
        Event::Index { line, .. } => Some((*line, PANICS, "slice/array indexing".to_owned())),
        Event::Guard { .. } | Event::DropVar { .. } | Event::Str { .. } => None,
        Event::Call(call) => {
            let line = call.line;
            let called = match &call.target {
                CallTarget::Method { name, .. } => name.as_str(),
                CallTarget::Free { path } => path.last().map(String::as_str).unwrap_or(""),
                CallTarget::Macro { .. } => "",
            };
            if !called.is_empty() && resolved.contains(&(line, called.to_owned())) {
                return None;
            }
            match &call.target {
                CallTarget::Method { name, recv } => {
                    if let Some(class) = acquisition_class(graph, env, fn_qual, name, recv) {
                        return Some((line, ACQUIRES_LOCK, format!("acquires lock `{class}`")));
                    }
                    method_effects(graph, env, name, recv).map(|(bits, what)| (line, bits, what))
                }
                CallTarget::Free { path } => {
                    free_effects(path).map(|(bits, what)| (line, bits, what))
                }
                CallTarget::Macro { name } => {
                    macro_effects(name).map(|(bits, what)| (line, bits, what))
                }
            }
        }
    }
}

/// Methods that grow or copy into heap storage.
const ALLOC_METHODS: &[&str] = &[
    "push",
    "push_str",
    "push_back",
    "push_front",
    "insert",
    "to_owned",
    "to_vec",
    "to_string",
    "collect",
    "with_capacity",
    "reserve",
    "extend",
    "extend_from_slice",
    "resize",
    "append",
    "into_owned",
    "join",
    "concat",
    "repeat",
    "split_off",
];

/// Buffered io methods that park until the transfer completes.
const BUFFERED_IO: &[&str] = &[
    "read_exact",
    "read_to_end",
    "read_to_string",
    "read_line",
    "write_all",
    "write_fmt",
    "flush",
];

/// Receiver type heads whose buffered io is bounded by local work
/// (disk or memory), not by a remote peer. `OpenOptions` appears as a
/// chain head for locals bound via the builder (`let f = OpenOptions::
/// new()…open(p)?`), whose product is a `File`.
const BOUNDED_IO_TYPES: &[&str] = &[
    "File",
    "OpenOptions",
    "BufWriter",
    "BufReader",
    "Vec",
    "VecDeque",
    "String",
    "Cursor",
];

fn method_effects(
    graph: &CallGraph<'_>,
    env: &TypeEnv,
    name: &str,
    recv: &str,
) -> Option<(u8, String)> {
    match name {
        "recv" | "recv_timeout" | "wait" | "wait_timeout" | "wait_while" => Some((
            BLOCKS,
            format!(".{name}() parks on a channel/condvar until signaled"),
        )),
        "send" => Some((
            BLOCKS,
            ".send() parks when a bounded channel is full".to_owned(),
        )),
        _ if BUFFERED_IO.contains(&name) => {
            let head = graph
                .resolve_chain(env, recv)
                .map(|ty| crate::ast::deref_head(&ty))
                .unwrap_or_default();
            if BOUNDED_IO_TYPES.contains(&head.as_str()) {
                Some((PERFORMS_IO, format!(".{name}() on {head} (bounded io)")))
            } else {
                Some((
                    BLOCKS | PERFORMS_IO,
                    format!(".{name}() parks until the peer makes progress"),
                ))
            }
        }
        "read" | "write" | "accept" => Some((PERFORMS_IO, format!(".{name}() single-shot io"))),
        "sync_all" | "sync_data" => Some((PERFORMS_IO, format!(".{name}() flushes to disk"))),
        "elapsed" => Some((WALL_CLOCK, ".elapsed() reads the wall clock".to_owned())),
        "unwrap" | "expect" => Some((PANICS, format!(".{name}() can panic"))),
        _ if ALLOC_METHODS.contains(&name) => Some((ALLOCATES, format!(".{name}() allocates"))),
        _ => None,
    }
}

fn free_effects(path: &[String]) -> Option<(u8, String)> {
    let last = path.last().map(String::as_str).unwrap_or("");
    let prev = path
        .len()
        .checked_sub(2)
        .map(|i| path[i].as_str())
        .unwrap_or("");
    match (prev, last) {
        ("thread", "sleep") => Some((BLOCKS, "thread::sleep parks the thread".to_owned())),
        ("TcpStream" | "UnixStream", "connect" | "connect_timeout") => Some((
            BLOCKS | PERFORMS_IO,
            format!("{prev}::{last} blocks until the peer answers"),
        )),
        ("fs", _) => Some((PERFORMS_IO, format!("fs::{last} touches the filesystem"))),
        ("File" | "OpenOptions", _) => Some((
            PERFORMS_IO,
            format!("{prev}::{last} touches the filesystem"),
        )),
        ("Instant" | "SystemTime", "now") => {
            Some((WALL_CLOCK, format!("{prev}::now() reads the wall clock")))
        }
        ("Box" | "Arc" | "Rc", "new") => Some((ALLOCATES, format!("{prev}::new allocates"))),
        ("Vec" | "String", "with_capacity" | "from") => {
            Some((ALLOCATES, format!("{prev}::{last} allocates")))
        }
        _ => None,
    }
}

fn macro_effects(name: &str) -> Option<(u8, String)> {
    match name {
        "format" | "vec" => Some((ALLOCATES, format!("{name}! allocates"))),
        "println" | "eprintln" | "print" | "eprint" => {
            Some((PERFORMS_IO, format!("{name}! writes to the terminal")))
        }
        "panic" | "unreachable" | "todo" | "unimplemented" | "assert" | "assert_eq"
        | "assert_ne" => Some((PANICS, format!("{name}! panics"))),
        _ => None,
    }
}

/// Runs the inference: seeds direct effects per function, then unions
/// callee sets into callers until the fixpoint.
pub fn infer(graph: &CallGraph<'_>) -> Effects {
    let n = graph.nodes.len();
    let mut eff = Effects {
        sets: vec![0u8; n],
        origins: std::iter::repeat_with(Default::default).take(n).collect(),
        direct_sites: vec![Vec::new(); n],
    };
    for id in 0..n {
        let def = graph.def(id);
        let Some(body) = &def.body else { continue };
        let env = graph.type_env(id);
        let resolved = resolved_call_names(graph, id);
        body.walk(&mut |_s, ev| {
            if let Some((line, bits, what)) = event_effects(graph, &env, &def.qual, &resolved, ev) {
                eff.direct_sites[id].push((line, bits, what.clone()));
                eff.sets[id] |= bits;
                for (i, (bit, _)) in BITS.iter().enumerate() {
                    if bits & bit != 0 && matches!(eff.origins[id][i], Origin::None) {
                        eff.origins[id][i] = Origin::Site {
                            line,
                            what: what.clone(),
                        };
                    }
                }
            }
        });
    }
    loop {
        let mut changed = false;
        for id in 0..n {
            for e in &graph.edges[id] {
                let add = eff.sets[e.callee] & !eff.sets[id];
                if add == 0 {
                    continue;
                }
                changed = true;
                eff.sets[id] |= add;
                for (i, (bit, _)) in BITS.iter().enumerate() {
                    if add & bit != 0 {
                        eff.origins[id][i] = Origin::Call {
                            line: e.line,
                            callee: e.callee,
                        };
                    }
                }
            }
        }
        if !changed {
            break;
        }
    }
    eff
}

impl Effects {
    /// Formats the witness chain from `id` down to the seeded site for
    /// one effect bit: `-> Store::put (at log.rs:262): .write_all() …`.
    fn witness_text(&self, graph: &CallGraph<'_>, mut id: usize, bit: u8) -> String {
        let idx = BITS.iter().position(|(b, _)| *b == bit).unwrap_or(0);
        let mut text = String::new();
        for _ in 0..64 {
            match &self.origins[id][idx] {
                Origin::Site { line, what } => {
                    let base = graph.file(id).path.rsplit('/').next().unwrap_or("");
                    text.push_str(&format!(" -> {what} (at {base}:{line})"));
                    return text;
                }
                Origin::Call { line, callee } => {
                    let base = graph.file(id).path.rsplit('/').next().unwrap_or("");
                    text.push_str(&format!(
                        " -> {} (at {base}:{line})",
                        graph.def(*callee).qual
                    ));
                    id = *callee;
                }
                Origin::None => return text,
            }
        }
        text
    }
}

/// BFS with parent pointers from a set of entry node ids.
fn bfs(graph: &CallGraph<'_>, entries: &[usize]) -> (Vec<bool>, Vec<Option<(usize, u32)>>) {
    let mut reached = vec![false; graph.nodes.len()];
    let mut parent: Vec<Option<(usize, u32)>> = vec![None; graph.nodes.len()];
    let mut queue = VecDeque::new();
    for &id in entries {
        if !reached[id] {
            reached[id] = true;
            queue.push_back(id);
        }
    }
    while let Some(id) = queue.pop_front() {
        for e in &graph.edges[id] {
            if !reached[e.callee] {
                reached[e.callee] = true;
                parent[e.callee] = Some((id, e.line));
                queue.push_back(e.callee);
            }
        }
    }
    (reached, parent)
}

/// Flags every direct site carrying `bits` in any function reachable
/// from `entries`, unless annotated under `rule`.
#[allow(clippy::too_many_arguments)]
fn reachability_rule(
    graph: &CallGraph<'_>,
    eff: &Effects,
    allowed: &Allowed,
    entries: &[usize],
    bits: u8,
    rule: &'static str,
    verb: &str,
    findings: &mut Vec<Finding>,
) {
    let (reached, parent) = bfs(graph, entries);
    for (id, &is_reached) in reached.iter().enumerate() {
        if !is_reached {
            continue;
        }
        let file = graph.file(id);
        let allowed_lines = allowed
            .get(&file.path)
            .and_then(|rules| rules.get(rule))
            .cloned()
            .unwrap_or_default();
        for (line, site_bits, what) in &eff.direct_sites[id] {
            if site_bits & bits == 0 || allowed_lines.contains(line) {
                continue;
            }
            findings.push(Finding {
                path: file.path.clone(),
                line: *line,
                rule,
                message: format!("{what} — {verb}; {}", chain_text(graph, &parent, id)),
            });
        }
    }
}

/// Runs the three effect rules; `allowed` is the annotation map.
pub fn check(graph: &CallGraph<'_>, allowed: &Allowed) -> Vec<Finding> {
    let eff = infer(graph);
    let mut findings = Vec::new();

    // Rule 1: nothing blocking on the router's nonblocking event loop.
    let loop_entries: Vec<usize> = graph
        .find_qual("event_loop")
        .into_iter()
        .filter(|&id| graph.file(id).crate_name == "oa_router")
        .collect();
    reachability_rule(
        graph,
        &eff,
        allowed,
        &loop_entries,
        BLOCKS,
        "nonblocking_event_loop",
        "stalls the nonblocking event loop",
        &mut findings,
    );

    // Rule 2: no allocation in the LANES batch kernels.
    let mut kernel_entries: Vec<usize> = Vec::new();
    for qual in ["SymbolicPlan::factor", "SymbolicPlan::solve_gated"] {
        kernel_entries.extend(
            graph
                .find_qual(qual)
                .into_iter()
                .filter(|&id| graph.file(id).crate_name == "oa_linalg"),
        );
    }
    reachability_rule(
        graph,
        &eff,
        allowed,
        &kernel_entries,
        ALLOCATES,
        "alloc_free_kernel",
        "allocates in the LANES hot path",
        &mut findings,
    );

    // Rule 3: nothing blocking while a lock guard is live.
    check_lock_across_blocking(graph, &eff, allowed, &mut findings);

    findings
}

/// One lock being held during the `lock_across_blocking` walk.
struct HeldGuard {
    class: String,
    guard_var: Option<String>,
    stmt_scoped: bool,
    block_level: usize,
}

fn check_lock_across_blocking(
    graph: &CallGraph<'_>,
    eff: &Effects,
    allowed: &Allowed,
    findings: &mut Vec<Finding>,
) {
    for id in 0..graph.nodes.len() {
        let def = graph.def(id);
        let Some(body) = &def.body else { continue };
        let file = graph.file(id);
        let allowed_lines = allowed
            .get(&file.path)
            .and_then(|rules| rules.get("lock_across_blocking"))
            .cloned()
            .unwrap_or_default();
        let mut edges_by_line: BTreeMap<u32, Vec<usize>> = BTreeMap::new();
        for e in &graph.edges[id] {
            edges_by_line.entry(e.line).or_default().push(e.callee);
        }
        let mut ctx = BlockingCtx {
            graph,
            eff,
            env: graph.type_env(id),
            fn_qual: def.qual.clone(),
            file_path: file.path.clone(),
            resolved: resolved_call_names(graph, id),
            edges_by_line,
            allowed_lines,
            reported: BTreeSet::new(),
            findings,
        };
        let mut held: Vec<HeldGuard> = Vec::new();
        walk_blocking(&mut ctx, body, &mut held, 0);
    }
}

struct BlockingCtx<'g, 'w, 'f> {
    graph: &'g CallGraph<'w>,
    eff: &'g Effects,
    env: TypeEnv,
    fn_qual: String,
    file_path: String,
    resolved: BTreeSet<(u32, String)>,
    edges_by_line: BTreeMap<u32, Vec<usize>>,
    allowed_lines: Vec<u32>,
    reported: BTreeSet<(u32, String)>,
    findings: &'f mut Vec<Finding>,
}

fn held_text(held: &[HeldGuard]) -> String {
    let classes: Vec<&str> = held.iter().map(|h| h.class.as_str()).collect();
    classes.join(", ")
}

fn walk_blocking(
    ctx: &mut BlockingCtx<'_, '_, '_>,
    block: &crate::ast::Block,
    held: &mut Vec<HeldGuard>,
    level: usize,
) {
    for stmt in &block.stmts {
        let mut first_acquisition = true;
        for part in &stmt.parts {
            match part {
                crate::ast::StmtPart::Block(b) => walk_blocking(ctx, b, held, level + 1),
                crate::ast::StmtPart::Event(Event::DropVar { name, .. }) => {
                    held.retain(|h| h.guard_var.as_deref() != Some(name));
                }
                crate::ast::StmtPart::Event(
                    Event::Index { .. } | Event::Guard { .. } | Event::Str { .. },
                ) => {}
                crate::ast::StmtPart::Event(ev @ Event::Call(call)) => {
                    if let CallTarget::Method { name, recv } = &call.target {
                        if let Some(class) =
                            acquisition_class(ctx.graph, &ctx.env, &ctx.fn_qual, name, recv)
                        {
                            let is_guard = stmt.guard_bind.is_some() && first_acquisition;
                            first_acquisition = false;
                            held.push(HeldGuard {
                                class,
                                guard_var: if is_guard {
                                    stmt.guard_bind.clone()
                                } else {
                                    None
                                },
                                stmt_scoped: !is_guard,
                                block_level: level,
                            });
                            continue;
                        }
                    }
                    if held.is_empty() {
                        continue;
                    }
                    // Direct blocking operation while a guard is live.
                    if let Some((line, bits, what)) =
                        event_effects(ctx.graph, &ctx.env, &ctx.fn_qual, &ctx.resolved, ev)
                    {
                        if bits & BLOCKS != 0 {
                            report_blocking(ctx, line, what, held, None);
                        }
                    }
                    // A call into a function whose effects carry Blocks.
                    if let Some(callees) = ctx.edges_by_line.get(&call.line).cloned() {
                        for callee in callees {
                            if ctx.eff.sets[callee] & BLOCKS != 0 {
                                let what = format!("call to {}", ctx.graph.def(callee).qual);
                                report_blocking(ctx, call.line, what, held, Some(callee));
                            }
                        }
                    }
                }
            }
        }
        held.retain(|h| !(h.stmt_scoped && h.block_level == level));
    }
    held.retain(|h| h.block_level != level);
}

fn report_blocking(
    ctx: &mut BlockingCtx<'_, '_, '_>,
    line: u32,
    what: String,
    held: &[HeldGuard],
    callee: Option<usize>,
) {
    if ctx.allowed_lines.contains(&line) || !ctx.reported.insert((line, what.clone())) {
        return;
    }
    let witness = callee
        .map(|c| ctx.eff.witness_text(ctx.graph, c, BLOCKS))
        .unwrap_or_default();
    ctx.findings.push(Finding {
        path: ctx.file_path.clone(),
        line,
        rule: "lock_across_blocking",
        message: format!(
            "{what} may block while holding lock(s) {{{}}} in {}{witness}",
            held_text(held),
            ctx.fn_qual
        ),
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::callgraph::Workspace;

    fn run(files: &[(&str, &str)]) -> Vec<Finding> {
        let inputs: Vec<(String, String)> = files
            .iter()
            .map(|(p, s)| ((*p).to_owned(), (*s).to_owned()))
            .collect();
        let ws = Workspace::parse(&inputs);
        let graph = CallGraph::build(&ws);
        let mut allowed = Allowed::new();
        for (path, src) in &inputs {
            let (rules, _) = crate::lint::annotations_of(path, src);
            allowed.insert(path.clone(), rules);
        }
        check(&graph, &allowed)
    }

    #[test]
    fn blocking_call_reachable_from_event_loop_is_flagged_with_chain() {
        let f = run(&[(
            "crates/router/src/router.rs",
            r#"
            pub fn event_loop() { helper(); }
            fn helper() { std::thread::sleep(d); }
            "#,
        )]);
        let blocking: Vec<&Finding> = f
            .iter()
            .filter(|f| f.rule == "nonblocking_event_loop")
            .collect();
        assert_eq!(blocking.len(), 1, "{f:?}");
        assert!(
            blocking[0].message.contains(
                "thread::sleep parks the thread — stalls the nonblocking event loop; \
                 reachable from event_loop: event_loop -> helper (at router.rs:2)"
            ),
            "{}",
            blocking[0].message
        );
    }

    #[test]
    fn annotated_blocking_site_is_whitelisted() {
        let f = run(&[(
            "crates/router/src/router.rs",
            r#"
            pub fn event_loop() {
                // lint: allow(nonblocking_event_loop, bounded idle pacing)
                std::thread::sleep(d);
            }
            "#,
        )]);
        assert!(
            f.iter().all(|f| f.rule != "nonblocking_event_loop"),
            "{f:?}"
        );
    }

    #[test]
    fn allocation_in_kernel_is_flagged_transitively() {
        let f = run(&[(
            "crates/linalg/src/sparse.rs",
            r#"
            pub struct SymbolicPlan;
            impl SymbolicPlan {
                pub fn factor(&self) { inner(); }
            }
            fn inner(out: &mut Vec<f64>) { out.push(1.0); }
            "#,
        )]);
        let alloc: Vec<&Finding> = f.iter().filter(|f| f.rule == "alloc_free_kernel").collect();
        assert_eq!(alloc.len(), 1, "{f:?}");
        assert!(alloc[0]
            .message
            .contains("reachable from SymbolicPlan::factor"));
    }

    #[test]
    fn blocking_while_guard_held_is_flagged() {
        let f = run(&[(
            "crates/serve/src/service.rs",
            r#"
            pub struct S { m: Mutex<u32> }
            impl S {
                fn f(&self) {
                    let g = self.m.lock().unwrap();
                    std::thread::sleep(d);
                }
            }
            "#,
        )]);
        let lock: Vec<&Finding> = f
            .iter()
            .filter(|f| f.rule == "lock_across_blocking")
            .collect();
        assert_eq!(lock.len(), 1, "{f:?}");
        assert!(lock[0].message.contains("S.m"), "{}", lock[0].message);
    }

    #[test]
    fn dropping_the_guard_before_blocking_is_clean() {
        let f = run(&[(
            "crates/serve/src/service.rs",
            r#"
            pub struct S { m: Mutex<u32> }
            impl S {
                fn f(&self) {
                    let g = self.m.lock().unwrap();
                    drop(g);
                    std::thread::sleep(d);
                }
            }
            "#,
        )]);
        assert!(f.iter().all(|f| f.rule != "lock_across_blocking"), "{f:?}");
    }
}
