//! Static analysis for the INTO-OA workspace.
//!
//! Two independent layers:
//!
//! * **Domain layer** ([`structural`]) — a pre-numeric verifier for
//!   elaborated netlists. It proves, from the sparsity pattern alone,
//!   that the MNA system a netlist induces is structurally non-singular
//!   (every node grounded through conducting elements, no empty KCL
//!   rows or voltage columns, and a perfect row–column matching of the
//!   pattern — Hall's condition). Degenerate candidates are rejected
//!   before an LU factorization or an optimizer evaluation slot is
//!   spent on them.
//! * **Source layer** ([`lexer`] + [`lint`]) — a std-only token-level
//!   Rust lexer driving the `oa_lint` binary, which enforces the
//!   serving-determinism and panic-freedom invariants of DESIGN.md §8
//!   (no wall-clock in response paths, no unordered collections in
//!   serialization-adjacent code, exact-round-trip float formatting,
//!   annotated panics only, `#![forbid(unsafe_code)]` everywhere).
//!
//! The `oa_sweep` binary applies the structural verifier exhaustively
//! to all 30,625 topologies of the design space and exits non-zero if
//! any fails — the domain layer's CI gate.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod error;
pub mod lexer;
pub mod lint;
pub mod structural;

pub use error::StructuralError;
pub use lint::{lint_source, Finding};
pub use structural::{
    is_structurally_valid, structural_rank, sweep_design_space, verify_netlist, verify_structure,
    verify_topology, SweepReport,
};
