//! Static analysis for the INTO-OA workspace.
//!
//! Two independent layers:
//!
//! * **Domain layer** ([`structural`]) — a pre-numeric verifier for
//!   elaborated netlists. It proves, from the sparsity pattern alone,
//!   that the MNA system a netlist induces is structurally non-singular
//!   (every node grounded through conducting elements, no empty KCL
//!   rows or voltage columns, and a perfect row–column matching of the
//!   pattern — Hall's condition). Degenerate candidates are rejected
//!   before an LU factorization or an optimizer evaluation slot is
//!   spent on them.
//! * **Source layer** ([`lexer`] + [`lint`] + the interprocedural
//!   engine) — a std-only token-level Rust lexer feeding two analysis
//!   engines behind the `oa_lint` binary. The *token engine* ([`lint`])
//!   enforces local invariants of DESIGN.md §8 (no wall-clock in
//!   response paths, exact-round-trip float formatting, `#![forbid(unsafe_code)]`
//!   everywhere). The *ast engine* ([`parser`] → [`ast`] →
//!   [`callgraph`] → [`reachability`]/[`locks`]/[`taint`], orchestrated
//!   by [`engine`]) upgrades the panic and unordered-collection rules
//!   to whole-program analyses: panic *reachability* from service entry
//!   points with printed call chains, lock-order cycle detection over
//!   an interprocedural lock-acquisition graph, and HashMap-iteration
//!   determinism taint from sources to serialization sinks. DESIGN.md
//!   §10 documents the architecture and the soundness envelope.
//!
//! The `oa_sweep` binary applies the structural verifier exhaustively
//! to all 30,625 topologies of the design space and exits non-zero if
//! any fails — the domain layer's CI gate.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ast;
pub mod callgraph;
pub mod effects;
pub mod engine;
pub mod error;
pub mod lexer;
pub mod lint;
pub mod locks;
pub mod parser;
pub mod protocol;
pub mod ranges;
pub mod reachability;
pub mod sarif;
pub mod structural;
pub mod taint;
pub mod wire;

pub use error::StructuralError;
pub use lint::{lint_source, Finding};
pub use structural::{
    is_structurally_valid, structural_rank, sweep_design_space, verify_netlist, verify_structure,
    verify_topology, SweepReport,
};
