//! The workspace-wide call graph the interprocedural analyses run on.
//!
//! [`Workspace::parse`] parses every file; [`CallGraph::build`] then
//! resolves each call site to workspace function definitions:
//!
//! * **free calls** — `helper(..)` resolves same-file first, then
//!   same-crate, then workspace-unique; `Type::assoc(..)` and
//!   `module::f(..)` resolve through the qualified-name index, with
//!   `use` aliases rewritten to their target names;
//! * **method calls** — `recv.name(..)` resolves the receiver's type
//!   through the function's [`TypeEnv`] (params, ascribed and inferred
//!   locals, lock-guard inner types, `self`) and struct field types,
//!   peeling `Arc`/`Rc`/`Box`; an unresolvable receiver falls back to
//!   the workspace-unique method of that name, if any.
//!
//! Calls into `std` (or anything else with no workspace definition)
//! resolve to nothing and produce no edge. Test functions are not
//! nodes. The soundness consequences of this design (closures attach
//! to their enclosing function, `dyn` dispatch is unresolved, macro
//! bodies are opaque) are documented in DESIGN.md §10.

use crate::ast::{deref_head, mutex_inner, CallTarget, Event, FnDef, SourceFile, Stmt};
use crate::parser::{crate_name_of, parse_file};
use std::collections::{BTreeMap, BTreeSet};

/// All parsed files of the workspace.
#[derive(Debug, Default)]
pub struct Workspace {
    /// Parsed files, sorted by path.
    pub files: Vec<SourceFile>,
}

impl Workspace {
    /// Parses `(path, source)` pairs. Paths are workspace-relative with
    /// forward slashes; input order does not matter (files are sorted
    /// by path so every downstream artifact is deterministic).
    pub fn parse(inputs: &[(String, String)]) -> Workspace {
        let mut sorted: Vec<&(String, String)> = inputs.iter().collect();
        sorted.sort_by(|a, b| a.0.cmp(&b.0));
        Workspace {
            files: sorted
                .into_iter()
                .map(|(path, src)| parse_file(path, &crate_name_of(path), src))
                .collect(),
        }
    }
}

/// A call edge: the callee's node id and the call-site line.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct Edge {
    /// Callee node id.
    pub callee: usize,
    /// 1-based line of the call site (in the caller's file).
    pub line: u32,
}

/// The resolved call graph. Node ids index [`CallGraph::nodes`]; test
/// functions are excluded entirely.
#[derive(Debug)]
pub struct CallGraph<'w> {
    /// The parsed workspace.
    pub ws: &'w Workspace,
    /// `(file index, fn index)` per node.
    pub nodes: Vec<(usize, usize)>,
    /// Outgoing edges per node, deduplicated, in body order.
    pub edges: Vec<Vec<Edge>>,
    /// Struct name → field name → declared type text, workspace-wide.
    pub fields: BTreeMap<String, BTreeMap<String, String>>,
    by_qual: BTreeMap<String, Vec<usize>>,
    methods_by_name: BTreeMap<String, Vec<usize>>,
    free_by_name: BTreeMap<String, Vec<usize>>,
}

/// A function's name→type-text environment: `self`, parameters, typed
/// locals, and lock-guard bindings (typed as the mutex's inner type).
#[derive(Debug, Default, Clone)]
pub struct TypeEnv {
    /// Variable name → type text (token-joined).
    pub vars: BTreeMap<String, String>,
}

impl<'w> CallGraph<'w> {
    /// The `FnDef` of a node.
    pub fn def(&self, id: usize) -> &'w FnDef {
        let (f, i) = self.nodes[id];
        &self.ws.files[f].fns[i]
    }

    /// The `SourceFile` containing a node.
    pub fn file(&self, id: usize) -> &'w SourceFile {
        &self.ws.files[self.nodes[id].0]
    }

    /// Builds the graph: indexes definitions, then resolves every call
    /// site of every non-test function.
    pub fn build(ws: &'w Workspace) -> CallGraph<'w> {
        let mut graph = CallGraph {
            ws,
            nodes: Vec::new(),
            edges: Vec::new(),
            fields: BTreeMap::new(),
            by_qual: BTreeMap::new(),
            methods_by_name: BTreeMap::new(),
            free_by_name: BTreeMap::new(),
        };
        for (fi, file) in ws.files.iter().enumerate() {
            for s in &file.structs {
                let entry = graph.fields.entry(s.name.clone()).or_default();
                for (fname, fty) in &s.fields {
                    entry.entry(fname.clone()).or_insert_with(|| fty.clone());
                }
            }
            for (di, def) in file.fns.iter().enumerate() {
                if def.is_test {
                    continue;
                }
                let id = graph.nodes.len();
                graph.nodes.push((fi, di));
                graph.by_qual.entry(def.qual.clone()).or_default().push(id);
                if def.self_ty.is_some() {
                    graph
                        .methods_by_name
                        .entry(def.name.clone())
                        .or_default()
                        .push(id);
                } else {
                    graph
                        .free_by_name
                        .entry(def.name.clone())
                        .or_default()
                        .push(id);
                }
            }
        }
        for id in 0..graph.nodes.len() {
            let out = graph.resolve_fn(id);
            graph.edges.push(out);
        }
        graph
    }

    /// Builds the type environment of a node: `self`, params, locals,
    /// and lock guards (in body order, later entries shadowing).
    pub fn type_env(&self, id: usize) -> TypeEnv {
        let def = self.def(id);
        let mut env = TypeEnv::default();
        if let Some(ty) = &def.self_ty {
            env.vars.insert("self".to_owned(), ty.clone());
        }
        for p in &def.params {
            env.vars.insert(p.name.clone(), p.ty.clone());
        }
        for (name, ty) in &def.locals {
            env.vars.insert(name.clone(), ty.clone());
        }
        // Lock guards: `let g = recv.lock()…` types `g` as the inner
        // type of `recv`'s Mutex/RwLock. Guards resolve in body order
        // so a guard can name another guard's field.
        if let Some(body) = &def.body {
            body.walk(&mut |stmt: &Stmt, ev: &Event| {
                let Some(guard) = &stmt.guard_bind else {
                    return;
                };
                if let Event::Call(call) = ev {
                    if let CallTarget::Method { name, recv } = &call.target {
                        if matches!(name.as_str(), "lock" | "read" | "write") {
                            if let Some(ty) = self.resolve_chain(&env, recv) {
                                if let Some(inner) = mutex_inner(&ty) {
                                    env.vars.insert(guard.clone(), inner);
                                }
                            }
                        }
                    }
                }
            });
        }
        env
    }

    /// Resolves a receiver chain `a.b.c` to its type text: `a` through
    /// the environment, then each `.seg` through struct fields (peeling
    /// smart pointers at every step).
    pub fn resolve_chain(&self, env: &TypeEnv, recv: &str) -> Option<String> {
        let mut parts = recv.split('.');
        let mut ty = env.vars.get(parts.next()?)?.clone();
        for seg in parts {
            let owner = deref_head(&ty);
            ty = self.fields.get(&owner)?.get(seg)?.clone();
        }
        Some(ty)
    }

    /// Resolves a receiver chain to the struct that owns its *final*
    /// field, for lock identity: `self.store` on `Service` →
    /// `("Service", "store")`. Chains of length 1 return `None`.
    pub fn resolve_field_owner(&self, env: &TypeEnv, recv: &str) -> Option<(String, String)> {
        let parts: Vec<&str> = recv.split('.').collect();
        if parts.len() < 2 {
            return None;
        }
        let prefix = parts[..parts.len() - 1].join(".");
        let owner_ty = self.resolve_chain(env, &prefix)?;
        let owner = deref_head(&owner_ty);
        let field = parts[parts.len() - 1];
        self.fields.get(&owner)?.get(field)?;
        Some((owner, field.to_owned()))
    }

    fn resolve_fn(&self, id: usize) -> Vec<Edge> {
        let def = self.def(id);
        let file = self.file(id);
        let env = self.type_env(id);
        let mut seen = BTreeSet::new();
        let mut out = Vec::new();
        let Some(body) = &def.body else {
            return out;
        };
        body.walk(&mut |_stmt: &Stmt, ev: &Event| {
            let Event::Call(call) = ev else { return };
            for callee in self.resolve_target(file, id, &env, &call.target) {
                if callee != id && seen.insert((callee, call.line)) {
                    out.push(Edge {
                        callee,
                        line: call.line,
                    });
                }
            }
        });
        out
    }

    /// Resolves one call target to callee node ids (usually 0 or 1).
    fn resolve_target(
        &self,
        file: &SourceFile,
        caller: usize,
        env: &TypeEnv,
        target: &CallTarget,
    ) -> Vec<usize> {
        match target {
            CallTarget::Macro { .. } => Vec::new(),
            CallTarget::Method { name, recv } => {
                if let Some(ty) = self.resolve_chain(env, recv) {
                    let head = deref_head(&ty);
                    if let Some(ids) = self.by_qual.get(&format!("{head}::{name}")) {
                        return ids.clone();
                    }
                    // Typed receiver of a workspace type, but the
                    // method is not the workspace's (std or derived):
                    // do not guess.
                    if self.fields.contains_key(&head) {
                        return Vec::new();
                    }
                }
                // Untyped receiver: a workspace-unique method name is
                // an unambiguous target — but only for a plain
                // identifier-chain receiver. Compound receivers
                // (iterator adaptors, builder chains: `xs.iter()
                // .enumerate()`) are overwhelmingly std methods, and
                // claiming the workspace-unique name manufactured
                // edges like `factor_impl -> Topology::enumerate`.
                if recv.is_empty() {
                    return Vec::new();
                }
                match self.methods_by_name.get(name) {
                    Some(ids) if ids.len() == 1 => ids.clone(),
                    _ => Vec::new(),
                }
            }
            CallTarget::Free { path } => self.resolve_free(file, caller, path),
        }
    }

    fn resolve_free(&self, file: &SourceFile, caller: usize, path: &[String]) -> Vec<usize> {
        let Some(name) = path.last() else {
            return Vec::new();
        };
        if path.len() >= 2 {
            // Qualifier: a type (`Store::open`) or module (`json::enc`),
            // possibly through a `use` alias.
            let mut qual = path[path.len() - 2].clone();
            if let Some(import) = file.uses.iter().find(|u| u.alias == qual) {
                if let Some(real) = import.path.last() {
                    qual = real.clone();
                }
            }
            if let Some(ids) = self.by_qual.get(&format!("{qual}::{name}")) {
                return ids.clone();
            }
            // Module-qualified free fn: falls through to name search.
        }
        if let Some(ids) = self.free_by_name.get(name) {
            let caller_file = self.nodes[caller].0;
            let same_file: Vec<usize> = ids
                .iter()
                .copied()
                .filter(|&c| self.nodes[c].0 == caller_file)
                .collect();
            if !same_file.is_empty() {
                return same_file;
            }
            let same_crate: Vec<usize> = ids
                .iter()
                .copied()
                .filter(|&c| self.file(c).crate_name == file.crate_name)
                .collect();
            if !same_crate.is_empty() {
                return same_crate;
            }
            // Cross-crate: accept when imported or workspace-unique.
            let imported = file.uses.iter().any(|u| &u.alias == name);
            if imported || ids.len() == 1 {
                return ids.clone();
            }
        }
        // UFCS of an inherent method: `Self::method(x)` rewrites `Self`
        // to the caller's own type; any other qualifier already had its
        // chance at the exact `by_qual` lookup above. Falling back to a
        // workspace-unique method name for *foreign* qualifiers
        // manufactured edges like `TcpStream::connect` →
        // `Client::connect`.
        if path.len() >= 2 && path[path.len() - 2] == "Self" {
            let caller_qual = &self.def(caller).qual;
            if let Some((owner, _)) = caller_qual.rsplit_once("::") {
                if let Some(ids) = self.by_qual.get(&format!("{owner}::{name}")) {
                    return ids.clone();
                }
            }
            if let Some(ids) = self.methods_by_name.get(name) {
                if ids.len() == 1 {
                    return ids.clone();
                }
            }
        }
        Vec::new()
    }

    /// The node ids whose qualified name equals `qual`.
    pub fn find_qual(&self, qual: &str) -> Vec<usize> {
        self.by_qual.get(qual).cloned().unwrap_or_default()
    }

    /// Deterministic TSV dump: one edge per line —
    /// `caller_path\tcaller_qual\tline\tcallee_path\tcallee_qual`.
    /// Nodes without edges still appear, with `-` callee columns, so
    /// the snapshot pins the full node set.
    ///
    /// Rows sort by `(caller path, caller qual, callee path, callee
    /// qual, numeric line)` — the line number last and compared as a
    /// number, not lexically by the rendered row. Pure code motion (an
    /// edge's call site shifting down a file) keeps a caller's rows
    /// together instead of reshuffling them, so snapshot regenerations
    /// diff append-mostly.
    pub fn to_tsv(&self) -> String {
        let mut rows: Vec<(String, String, String, String, u32)> = Vec::new();
        for (id, edges) in self.edges.iter().enumerate() {
            let path = self.file(id).path.clone();
            let qual = self.def(id).qual.clone();
            if edges.is_empty() {
                rows.push((
                    path.clone(),
                    qual.clone(),
                    "-".to_owned(),
                    "-".to_owned(),
                    0,
                ));
            }
            for e in edges {
                rows.push((
                    path.clone(),
                    qual.clone(),
                    self.file(e.callee).path.clone(),
                    self.def(e.callee).qual.clone(),
                    e.line,
                ));
            }
        }
        rows.sort();
        rows.dedup();
        let mut out = String::new();
        for (path, qual, callee_path, callee_qual, line) in rows {
            let line_text = if callee_path == "-" {
                "-".to_owned()
            } else {
                line.to_string()
            };
            out.push_str(&format!(
                "{path}\t{qual}\t{line_text}\t{callee_path}\t{callee_qual}\n"
            ));
        }
        out
    }

    /// Deterministic DOT dump (sorted, crate-qualified labels) for
    /// visual inspection with graphviz.
    pub fn to_dot(&self) -> String {
        let mut edges = BTreeSet::new();
        for (id, out) in self.edges.iter().enumerate() {
            for e in out {
                edges.insert((
                    format!("{}::{}", self.file(id).crate_name, self.def(id).qual),
                    format!(
                        "{}::{}",
                        self.file(e.callee).crate_name,
                        self.def(e.callee).qual
                    ),
                ));
            }
        }
        let mut s = String::from("digraph callgraph {\n  rankdir=LR;\n  node [shape=box];\n");
        for (a, b) in edges {
            s.push_str(&format!("  \"{a}\" -> \"{b}\";\n"));
        }
        s.push_str("}\n");
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ws(files: &[(&str, &str)]) -> Workspace {
        let inputs: Vec<(String, String)> = files
            .iter()
            .map(|(p, s)| ((*p).to_owned(), (*s).to_owned()))
            .collect();
        Workspace::parse(&inputs)
    }

    fn edge_quals(g: &CallGraph<'_>, caller: &str) -> Vec<String> {
        let id = g.find_qual(caller)[0];
        g.edges[id]
            .iter()
            .map(|e| g.def(e.callee).qual.clone())
            .collect()
    }

    #[test]
    fn free_calls_resolve_same_file_then_unique() {
        let w = ws(&[
            (
                "crates/serve/src/a.rs",
                "fn caller() { helper(); remote(); }\nfn helper() {}",
            ),
            ("crates/store/src/b.rs", "pub fn remote() {}"),
        ]);
        let g = CallGraph::build(&w);
        assert_eq!(edge_quals(&g, "caller"), vec!["helper", "remote"]);
    }

    #[test]
    fn assoc_calls_resolve_through_use_aliases() {
        let w = ws(&[
            (
                "crates/serve/src/a.rs",
                "use crate::store::Store as Db;\nfn open() { Db::new(); }",
            ),
            (
                "crates/serve/src/store.rs",
                "pub struct Store;\nimpl Store { pub fn new() -> Store { Store } }",
            ),
        ]);
        let g = CallGraph::build(&w);
        assert_eq!(edge_quals(&g, "open"), vec!["Store::new"]);
    }

    #[test]
    fn method_calls_resolve_through_field_types_and_guards() {
        let w = ws(&[(
            "crates/serve/src/a.rs",
            r#"
            struct Service { store: Mutex<Store> }
            struct Store { n: u64 }
            impl Store { fn put(&mut self) {} }
            impl Service {
                fn handle(&self) {
                    let store = self.store.lock().unwrap_or_else(|p| p.into_inner());
                    store.put();
                }
            }
            "#,
        )]);
        let g = CallGraph::build(&w);
        assert_eq!(edge_quals(&g, "Service::handle"), vec!["Store::put"]);
    }

    #[test]
    fn unique_method_name_resolves_untyped_receivers() {
        let w = ws(&[(
            "crates/serve/src/a.rs",
            "struct Wire;\nimpl Wire { fn encode_frame(&self) {} }\nfn f(w: &W) { w.encode_frame(); }",
        )]);
        let g = CallGraph::build(&w);
        assert_eq!(edge_quals(&g, "f"), vec!["Wire::encode_frame"]);
    }

    #[test]
    fn test_fns_are_not_nodes() {
        let w = ws(&[(
            "crates/serve/src/a.rs",
            "#[cfg(test)]\nmod tests { fn t() {} }\nfn live() {}",
        )]);
        let g = CallGraph::build(&w);
        assert_eq!(g.nodes.len(), 1);
        assert_eq!(g.def(0).qual, "live");
    }

    #[test]
    fn tsv_is_sorted_and_stable() {
        let w = ws(&[("crates/serve/src/a.rs", "fn b() { a(); }\nfn a() {}")]);
        let g = CallGraph::build(&w);
        assert_eq!(
            g.to_tsv(),
            "crates/serve/src/a.rs\ta\t-\t-\t-\n\
             crates/serve/src/a.rs\tb\t1\tcrates/serve/src/a.rs\ta\n"
        );
        assert!(g.to_dot().contains("\"oa_serve::b\" -> \"oa_serve::a\""));
    }

    #[test]
    fn tsv_sorts_by_callee_then_numeric_line() {
        // Twelve call sites so two-digit lines appear: numeric order
        // keeps line 7 before line 10 (lexical row sorting would not),
        // and the single z edge (line 6) sorts after every y edge —
        // callee-major, line number last.
        let mut src = String::from("fn z() {}\nfn y() {}\nfn c() {\n");
        for line in 4..=12 {
            src.push_str(if line == 6 { "z();\n" } else { "y();\n" });
        }
        src.push_str("}\n");
        let w = ws(&[("crates/serve/src/a.rs", src.as_str())]);
        let g = CallGraph::build(&w);
        let tsv = g.to_tsv();
        let c_rows: Vec<(String, String)> = tsv
            .lines()
            .filter(|l| l.starts_with("crates/serve/src/a.rs\tc\t"))
            .map(|row| {
                let cols: Vec<&str> = row.split('\t').collect();
                (cols[2].to_owned(), cols[4].to_owned())
            })
            .collect();
        let expect: Vec<(String, String)> = [4, 5, 7, 8, 9, 10, 11, 12]
            .iter()
            .map(|n| (n.to_string(), "y".to_owned()))
            .chain(std::iter::once(("6".to_owned(), "z".to_owned())))
            .collect();
        assert_eq!(c_rows, expect, "{tsv}");
    }

    #[test]
    fn std_calls_resolve_to_nothing() {
        let w = ws(&[(
            "crates/serve/src/a.rs",
            "fn f(v: Vec<u8>) { v.push(1); String::from(\"x\"); }",
        )]);
        let g = CallGraph::build(&w);
        assert!(g.edges[g.find_qual("f")[0]].is_empty());
    }
}
