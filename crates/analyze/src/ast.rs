//! The item-level AST the interprocedural engine analyzes.
//!
//! The [`parser`](crate::parser) produces one [`SourceFile`] per `.rs`
//! file: its `use` imports, struct definitions (field names and type
//! text — the lock and taint analyses key on declared types), and every
//! function with a *body event tree*. Bodies are not full expression
//! trees: each statement records what the whole-program analyses need —
//! call sites, indexing sites, lock-method calls, the identifiers it
//! binds and reads — plus nested blocks, which carry lock-guard scope.
//!
//! Everything here is deliberately plain data with no interner or
//! arena: the workspace is ~100 files and the engine runs in
//! milliseconds, so clarity wins over allocation counts.

/// One parsed `.rs` file.
#[derive(Debug, Clone, Default)]
pub struct SourceFile {
    /// Workspace-relative path with forward slashes.
    pub path: String,
    /// The lib name of the owning crate (`oa_serve`, `into_oa`, …).
    pub crate_name: String,
    /// Flattened `use` imports (one per leaf of a use tree).
    pub uses: Vec<UseImport>,
    /// Struct definitions with field types (lock/taint type evidence).
    pub structs: Vec<StructDef>,
    /// Every `fn`, including impl/trait methods and nested-module fns.
    pub fns: Vec<FnDef>,
    /// `const NAME: &str = "…";` items — the definition sites the
    /// wire-schema extraction resolves identifier reads through.
    pub const_strs: Vec<ConstStr>,
}

/// A string-typed `const`/`static` item with a literal initializer.
#[derive(Debug, Clone)]
pub struct ConstStr {
    /// The constant's name.
    pub name: String,
    /// The literal's decoded (unescaped) value.
    pub value: String,
    /// 1-based source line.
    pub line: u32,
}

/// One leaf of a `use` tree: `use a::b::{c, d as e};` yields two
/// imports with aliases `c` and `e`.
#[derive(Debug, Clone)]
pub struct UseImport {
    /// The name the import binds locally.
    pub alias: String,
    /// Full path segments (`["a", "b", "c"]`).
    pub path: Vec<String>,
    /// 1-based source line.
    pub line: u32,
}

/// A struct definition: field names with their declared type text.
#[derive(Debug, Clone)]
pub struct StructDef {
    /// Struct name.
    pub name: String,
    /// `(field, type-text)` pairs; type text is the raw token join
    /// (e.g. `Mutex < Store >`), matched with [`type_head`]/
    /// [`mutex_inner`] rather than re-parsed.
    pub fields: Vec<(String, String)>,
    /// 1-based source line.
    pub line: u32,
}

/// One function (free, impl method, or trait default method).
#[derive(Debug, Clone)]
pub struct FnDef {
    /// Bare name.
    pub name: String,
    /// Qualified name: `Type::name` for methods, `name` for free fns.
    pub qual: String,
    /// The impl/trait type this is a method of, if any.
    pub self_ty: Option<String>,
    /// Parameters (pattern idents joined) with declared type text.
    pub params: Vec<Param>,
    /// Locals with type evidence: `let x: T`, `let x = T::new(..)`,
    /// and lock guards (`let g = field.lock()…` records the mutex's
    /// inner type). Later bindings shadow earlier ones at lookup.
    pub locals: Vec<(String, String)>,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// Inside `#[cfg(test)]` / `#[test]` — excluded from all analyses.
    pub is_test: bool,
    /// Body block; `None` for trait methods without a default body.
    pub body: Option<Block>,
}

/// A function parameter.
#[derive(Debug, Clone)]
pub struct Param {
    /// Pattern identifier(s); tuple patterns join with `.`-free names.
    pub name: String,
    /// Declared type text (raw token join).
    pub ty: String,
}

/// A `{ … }` block: the unit of lock-guard scope.
#[derive(Debug, Clone, Default)]
pub struct Block {
    /// Statements in source order.
    pub stmts: Vec<Stmt>,
}

/// One statement (split at `;`/`,` at depth zero inside a block).
#[derive(Debug, Clone, Default)]
pub struct Stmt {
    /// 1-based line of the first token.
    pub line: u32,
    /// Identifiers bound by a `let`/`for` pattern in this statement.
    pub binds: Vec<String>,
    /// If this statement is `let g = <recv>.lock()…;` (optionally
    /// chained through `unwrap`/`expect`/`unwrap_or_else`), the guard
    /// name — the guard then lives to the end of the enclosing block
    /// instead of the end of the statement.
    pub guard_bind: Option<String>,
    /// Every identifier token read in the statement (coarse: includes
    /// call names; the taint analysis only tests membership of known
    /// local/param names).
    pub reads: Vec<String>,
    /// Ordered events and nested blocks.
    pub parts: Vec<StmtPart>,
    /// Contains `return`, or is the trailing expression of the fn body.
    pub is_return: bool,
    /// Contains `break` or `continue` — exits the enclosing block
    /// early even though it does not return from the function.
    pub is_exit: bool,
    /// Identifiers assigned at statement start (`x = …`, `x += …`) —
    /// the value-range analysis kills guards on reassignment.
    pub assigns: Vec<String>,
    /// `let x = base.len() / k` style upper-bound evidence for the
    /// single variable this statement binds.
    pub len_fact: Option<LenFact>,
}

/// Ordered content of a statement.
#[derive(Debug, Clone)]
pub enum StmtPart {
    /// An analysis-relevant event.
    Event(Event),
    /// A nested `{ … }` block (control flow, closure body, or — as a
    /// harmless over-approximation — a struct literal).
    Block(Block),
}

/// One analysis-relevant event inside a statement.
#[derive(Debug, Clone)]
pub enum Event {
    /// A call site.
    Call(CallSite),
    /// A slice/array index expression (`x[i]`) — a potential panic.
    Index {
        /// 1-based source line.
        line: u32,
        /// Receiver chain text when it is a simple `ident(.ident)*`
        /// chain, with one trailing length-preserving call
        /// (`.as_bytes()`, `.as_slice()`, …) stripped; `""` when the
        /// walk-back gave up on a compound expression.
        base: String,
        /// Index expression text when short and bracket-free; `""`
        /// when compound. Tokens join with spaces except around `.`:
        /// `xs[i]` → `"i"`, `xs[..n]` → `"..n"`, `h[0..4]` → `"0..4"`.
        index: String,
    },
    /// A bounds-establishing comparison recognized in an `if`/`while`
    /// condition or a `for … in a..b.len()` header. Consumed by the
    /// value-range analysis; all other analyses ignore it.
    Guard {
        /// 1-based source line.
        line: u32,
        /// The recognized comparison.
        cond: GuardCond,
    },
    /// `drop(name)` — ends a lock guard's life early.
    DropVar {
        /// The dropped identifier.
        name: String,
        /// 1-based source line.
        line: u32,
    },
    /// A string literal in expression position, with its decoded
    /// (unescaped) value. Consumed by the wire-schema extraction;
    /// every other analysis ignores it.
    Str {
        /// 1-based source line.
        line: u32,
        /// The literal's decoded value.
        text: String,
    },
}

/// A recognized bounds comparison (see [`Event::Guard`]). `var` and
/// `base` are receiver-chain texts (`i`, `self.bytes`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GuardCond {
    /// `var < base.len()` (or `base.len() > var`).
    LtLen {
        /// The index variable.
        var: String,
        /// The indexed collection.
        base: String,
    },
    /// `var >= base.len()` (or `base.len() <= var`) — discharges
    /// following statements when the guarded block exits.
    GeLen {
        /// The index variable.
        var: String,
        /// The indexed collection.
        base: String,
    },
    /// `!base.is_empty()` or `base.len() > 0` / `base.len() != 0`.
    NotEmpty {
        /// The indexed collection.
        base: String,
    },
    /// `base.is_empty()` or `base.len() == 0` — discharges following
    /// statements when the guarded block exits.
    Empty {
        /// The indexed collection.
        base: String,
    },
}

/// Upper-bound evidence carried by a `let` statement (see
/// [`Stmt::len_fact`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LenFact {
    /// The bound variable is at most `base.len()`: the initializer is
    /// `base.len()` or `base.len() / k` with a nonzero literal `k`.
    AtMostLen {
        /// The measured collection.
        base: String,
    },
}

/// A call site: free path call, method call, or macro invocation.
#[derive(Debug, Clone)]
pub struct CallSite {
    /// 1-based source line.
    pub line: u32,
    /// What is being called.
    pub target: CallTarget,
}

/// The syntactic shape of a call.
#[derive(Debug, Clone)]
pub enum CallTarget {
    /// `a::b::f(…)` — path segments as written.
    Free {
        /// Path segments (`["a", "b", "f"]`; a bare call has one).
        path: Vec<String>,
    },
    /// `recv.name(…)`.
    Method {
        /// Method name.
        name: String,
        /// Receiver text when it is a simple `ident(.ident)*` chain
        /// (e.g. `self.store`), or `""` when the receiver is a compound
        /// expression the walk-back gave up on.
        recv: String,
    },
    /// `name!(…)` / `name![…]` / `name!{…}`.
    Macro {
        /// Macro name (no `!`).
        name: String,
    },
}

/// First path segment of a type text: `&mut Mutex < Store >` → `Mutex`;
/// strips leading `&`, `mut`, `dyn`, and `'lifetime` tokens.
pub fn type_head(ty: &str) -> &str {
    ty.split_whitespace()
        .find(|w| !matches!(*w, "&" | "mut" | "dyn" | "impl") && !w.starts_with('\'') && *w != "(")
        .unwrap_or("")
}

/// The argument of the *first* `<…>` group in a type text: `Arc < Mutex
/// < u32 > >` → `Mutex < u32 >`. `None` when the type has no generics.
pub fn generic_inner(ty: &str) -> Option<String> {
    let words: Vec<&str> = ty.split_whitespace().collect();
    let open = words.iter().position(|w| *w == "<")?;
    let mut depth = 0usize;
    let mut inner = Vec::new();
    for w in &words[open..] {
        match *w {
            "<" => {
                depth += 1;
                if depth == 1 {
                    continue;
                }
            }
            ">" => {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            _ => {}
        }
        inner.push(*w);
    }
    Some(inner.join(" "))
}

/// The `T` of `Mutex<T>` / `RwLock<T>` type text (token-joined form),
/// if the type is a lock wrapper. Used to type lock guards.
pub fn mutex_inner(ty: &str) -> Option<String> {
    let head = type_head(ty);
    if head != "Mutex" && head != "RwLock" {
        return None;
    }
    generic_inner(ty)
}

/// The head type after peeling smart-pointer wrappers: `& Arc < Mutex <
/// Store > >` → `Mutex`. Follows `Arc`/`Rc`/`Box` one generic level at
/// a time (method calls auto-deref through them).
pub fn deref_head(ty: &str) -> String {
    let mut cur = ty.to_owned();
    for _ in 0..4 {
        let head = type_head(&cur).to_owned();
        if !matches!(head.as_str(), "Arc" | "Rc" | "Box") {
            return head;
        }
        match generic_inner(&cur) {
            Some(inner) => cur = inner,
            None => return head,
        }
    }
    type_head(&cur).to_owned()
}

impl Block {
    /// Visits every statement in this block and its nested blocks, in
    /// source order, passing each statement's analysis events.
    pub fn walk(&self, f: &mut impl FnMut(&Stmt, &Event)) {
        for stmt in &self.stmts {
            for part in &stmt.parts {
                match part {
                    StmtPart::Event(ev) => f(stmt, ev),
                    StmtPart::Block(b) => b.walk(f),
                }
            }
        }
    }
}

/// Whether a type text names an unordered standard collection.
pub fn is_unordered_collection(ty: &str) -> bool {
    matches!(type_head(ty), "HashMap" | "HashSet")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn type_head_strips_modifiers() {
        assert_eq!(type_head("& mut Mutex < Store >"), "Mutex");
        assert_eq!(type_head("& 'a str"), "str");
        assert_eq!(type_head("dyn Fn ( )"), "Fn");
        assert_eq!(type_head("HashMap < String , u32 >"), "HashMap");
    }

    #[test]
    fn mutex_inner_extracts_the_guarded_type() {
        assert_eq!(mutex_inner("Mutex < Store >").as_deref(), Some("Store"));
        assert_eq!(
            mutex_inner("& Mutex < Receiver < Job > >").as_deref(),
            Some("Receiver < Job >")
        );
        assert_eq!(mutex_inner("RwLock < u32 >").as_deref(), Some("u32"));
        assert_eq!(mutex_inner("Arc < Mutex < u32 > >"), None);
        assert_eq!(mutex_inner("BTreeMap < K , V >"), None);
    }

    #[test]
    fn deref_head_peels_smart_pointers() {
        assert_eq!(deref_head("Arc < Mutex < Store > >"), "Mutex");
        assert_eq!(deref_head("& Arc < Service >"), "Service");
        assert_eq!(deref_head("Box < dyn Fn ( ) >"), "Fn");
        assert_eq!(deref_head("Store"), "Store");
    }

    #[test]
    fn unordered_collections_are_recognized() {
        assert!(is_unordered_collection("HashMap < String , u32 >"));
        assert!(is_unordered_collection("& HashSet < Topology >"));
        assert!(!is_unordered_collection("BTreeMap < K , V >"));
    }
}
