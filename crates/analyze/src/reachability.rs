//! Panic reachability: the whole-program upgrade of the token-level
//! `panic` rule.
//!
//! The token rule flagged every `unwrap`/`expect`/indexing site in a
//! fixed file list. This analysis instead asks the question that
//! actually matters for the serving contract: *can a client request, a
//! pool job, or a store recovery transitively reach this panic site?*
//! It BFS-walks the call graph from the [`ENTRY_POINTS`], collects
//! panic sites in functions of the [`HARDENED_CRATES`], and reports
//! each un-annotated site together with the full call chain from the
//! entry point — the chain is the diagnostic's payload; "this can
//! panic" is only useful if you can see *how* it is reached.
//!
//! Functions in non-hardened crates (the numeric domain layer:
//! linalg, sim, core, …) are still *traversed* — a handler calling
//! into `oa-linalg` keeps walking through it — but their own indexing
//! sites are not collected: the domain layer's panic policy is "panics
//! are bugs caught by the sweep tests", not "panics are annotated".
//! DESIGN.md §10 records this boundary.

use crate::ast::{CallTarget, Event, Stmt};
use crate::callgraph::CallGraph;
use crate::lint::Finding;
use std::collections::{BTreeMap, BTreeSet};

/// Qualified names of the functions client work enters through.
pub const ENTRY_POINTS: &[&str] = &[
    "Service::handle_line",
    "connection_loop",
    "worker_loop",
    "Store::open_with_faults",
    "event_loop",
];

/// Lib names of the crates whose panic sites must be annotated when
/// reachable. `oa_bo`, `oa_gp` and `oa_graph` joined when the session
/// ops put the BO propose/observe loop and the WL-GP fit on the
/// `Service::handle_line` request path (DESIGN.md §13).
pub const HARDENED_CRATES: &[&str] = &[
    "oa_serve",
    "oa_par",
    "oa_store",
    "oa_fault",
    "oa_router",
    "oa_bo",
    "oa_gp",
    "oa_graph",
];

/// Macros that unconditionally (or assertion-conditionally) panic.
const PANIC_MACROS: &[&str] = &[
    "panic",
    "unreachable",
    "todo",
    "unimplemented",
    "assert",
    "assert_eq",
    "assert_ne",
];

/// Per-file allowed lines per rule, as collected by
/// [`crate::lint::annotations_of`].
pub type Allowed = BTreeMap<String, BTreeMap<&'static str, Vec<u32>>>;

/// Runs the analysis. `allowed` maps file path → rule → annotated
/// lines; `discharged` holds `(path, line)` indexing sites the
/// value-range analysis proved in-bounds (see [`crate::ranges`]) —
/// those report nothing and need no annotation.
pub fn check(
    graph: &CallGraph<'_>,
    allowed: &Allowed,
    discharged: &BTreeSet<(String, u32)>,
) -> Vec<Finding> {
    let mut parent: Vec<Option<(usize, u32)>> = vec![None; graph.nodes.len()];
    let mut reached: Vec<bool> = vec![false; graph.nodes.len()];
    let mut queue = std::collections::VecDeque::new();
    for entry in ENTRY_POINTS {
        for id in graph.find_qual(entry) {
            if !reached[id] {
                reached[id] = true;
                queue.push_back(id);
            }
        }
    }
    while let Some(id) = queue.pop_front() {
        for e in &graph.edges[id] {
            if !reached[e.callee] {
                reached[e.callee] = true;
                parent[e.callee] = Some((id, e.line));
                queue.push_back(e.callee);
            }
        }
    }

    let mut findings = Vec::new();
    for (id, &is_reached) in reached.iter().enumerate() {
        if !is_reached {
            continue;
        }
        let file = graph.file(id);
        if !HARDENED_CRATES.contains(&file.crate_name.as_str()) {
            continue;
        }
        let def = graph.def(id);
        let Some(body) = &def.body else { continue };
        let allowed_lines = allowed
            .get(&file.path)
            .and_then(|rules| rules.get("panic"))
            .cloned()
            .unwrap_or_default();
        body.walk(&mut |_stmt: &Stmt, ev: &Event| {
            let (line, what) = match ev {
                Event::Call(call) => match &call.target {
                    CallTarget::Macro { name } if PANIC_MACROS.contains(&name.as_str()) => {
                        (call.line, format!("{name}! panics"))
                    }
                    CallTarget::Method { name, .. }
                        if matches!(name.as_str(), "unwrap" | "expect") =>
                    {
                        (call.line, format!(".{name}() can panic"))
                    }
                    _ => return,
                },
                Event::Index { line, .. } => {
                    if discharged.contains(&(file.path.clone(), *line)) {
                        return; // proven in-bounds by the range analysis
                    }
                    (*line, "slice/array indexing can panic".to_owned())
                }
                Event::DropVar { .. } | Event::Guard { .. } | Event::Str { .. } => return,
            };
            if allowed_lines.contains(&line) {
                return;
            }
            findings.push(Finding {
                path: file.path.clone(),
                line,
                rule: "panic",
                message: format!("{what}; {}", chain_text(graph, &parent, id)),
            });
        });
    }
    findings.sort_by(|a, b| (&a.path, a.line).cmp(&(&b.path, b.line)));
    findings
}

/// Formats the entry→site call chain from the BFS parent pointers:
/// `reachable from Service::handle_line: Service::handle_line ->
/// Store::put (service.rs:88) -> parse_record (log.rs:102)`. Shared
/// with the effect rules, which BFS from their own entry points.
pub(crate) fn chain_text(
    graph: &CallGraph<'_>,
    parent: &[Option<(usize, u32)>],
    id: usize,
) -> String {
    // hops[i] = (node, line of the call in node's body that reaches
    // hops[i+1]); the last hop carries no outgoing line.
    let mut hops: Vec<(usize, Option<u32>)> = Vec::new();
    let mut cur = id;
    let mut via: Option<u32> = None;
    loop {
        hops.push((cur, via));
        match parent[cur] {
            Some((p, line)) if hops.len() <= 64 => {
                via = Some(line);
                cur = p;
            }
            _ => break,
        }
    }
    hops.reverse();
    let entry = graph.def(hops[0].0).qual.clone();
    let mut text = format!("reachable from {entry}: {entry}");
    for i in 1..hops.len() {
        let (caller, call_line) = hops[i - 1];
        let base = graph.file(caller).path.rsplit('/').next().unwrap_or("");
        text.push_str(&format!(
            " -> {} (at {base}:{})",
            graph.def(hops[i].0).qual,
            call_line.unwrap_or(0)
        ));
    }
    text
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::callgraph::Workspace;

    fn run(files: &[(&str, &str)]) -> Vec<Finding> {
        let inputs: Vec<(String, String)> = files
            .iter()
            .map(|(p, s)| ((*p).to_owned(), (*s).to_owned()))
            .collect();
        let ws = Workspace::parse(&inputs);
        let graph = CallGraph::build(&ws);
        let mut allowed = Allowed::new();
        for (path, src) in &inputs {
            let (rules, _) = crate::lint::annotations_of(path, src);
            allowed.insert(path.clone(), rules);
        }
        check(&graph, &allowed, &BTreeSet::new())
    }

    #[test]
    fn panic_reachable_from_handler_is_reported_with_chain() {
        let f = run(&[(
            "crates/serve/src/service.rs",
            r#"
            pub struct Service;
            impl Service {
                pub fn handle_line(&self) { step_one(); }
            }
            fn step_one() { step_two(); }
            fn step_two(v: &[u8]) -> u8 { v[17] }
            "#,
        )]);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, "panic");
        assert!(f[0].message.contains("indexing"), "{}", f[0].message);
        assert!(
            f[0].message
                .contains("Service::handle_line -> step_one (at service.rs:4) -> step_two"),
            "{}",
            f[0].message
        );
    }

    #[test]
    fn unreachable_panic_sites_are_silent() {
        let f = run(&[(
            "crates/serve/src/service.rs",
            "fn offline_tool(v: &[u8]) -> u8 { v[0] }",
        )]);
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn annotated_sites_are_silent() {
        let f = run(&[(
            "crates/serve/src/service.rs",
            r#"
            pub struct Service;
            impl Service {
                pub fn handle_line(&self, v: &[u8]) -> u8 {
                    // lint: allow(panic, length checked by framing layer)
                    v[0]
                }
            }
            "#,
        )]);
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn domain_crates_are_traversed_but_not_collected() {
        let f = run(&[
            (
                "crates/serve/src/service.rs",
                "pub struct Service;\nimpl Service { pub fn handle_line(&self) { solve(); } }",
            ),
            (
                "crates/linalg/src/lu.rs",
                "pub fn solve(a: &[f64]) -> f64 { a[0] }",
            ),
        ]);
        assert!(
            f.is_empty(),
            "domain-layer indexing is not collected: {f:?}"
        );
    }

    #[test]
    fn panic_macro_and_unwrap_in_pool_are_reported() {
        let f = run(&[(
            "crates/par/src/pool.rs",
            r#"
            pub fn worker_loop(rx: Receiver<Job>) {
                let job = rx.recv().unwrap();
                if job.poison { panic!("poisoned"); }
            }
            "#,
        )]);
        let rules: Vec<&str> = f.iter().map(|x| x.rule).collect();
        assert_eq!(rules, vec!["panic", "panic"]);
        assert!(f[0].message.contains(".unwrap() can panic"));
        assert!(f[1].message.contains("panic! panics"));
    }
}
