// Fixture: two handlers acquire the same two field locks in opposite
// orders — the classic AB/BA deadlock. The lock-order analysis must
// report the cycle naming both lock classes.
pub struct Service {
    stats: Mutex<Stats>,
    store: Mutex<Store>,
}

impl Service {
    pub fn handle_line(&self, line: &str) -> String {
        if line.starts_with('s') {
            self.put_path()
        } else {
            self.stat_path()
        }
    }

    fn put_path(&self) -> String {
        let st = self.stats.lock().unwrap_or_else(|e| e.into_inner());
        let db = self.store.lock().unwrap_or_else(|e| e.into_inner());
        format_reply(&st, &db)
    }

    fn stat_path(&self) -> String {
        let db = self.store.lock().unwrap_or_else(|e| e.into_inner());
        let st = self.stats.lock().unwrap_or_else(|e| e.into_inner());
        format_reply(&st, &db)
    }
}
