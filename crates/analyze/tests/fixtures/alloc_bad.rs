// Fixture: a LANES factor kernel that allocates one call deep. The
// alloc_free_kernel rule must flag the allocation site with the
// entry -> site chain, and skip the allocating helper nothing in the
// kernel reaches.
pub struct SymbolicPlan {
    perm: Vec<usize>,
}

impl SymbolicPlan {
    pub fn factor(&self, vals: &mut Vec<f64>) {
        scale_rows(&self.perm, vals);
    }
}

fn scale_rows(perm: &[usize], vals: &mut Vec<f64>) {
    // Heap growth inside the hot path: must be reported.
    vals.push(0.0);
}

fn offline_report(rows: usize) -> String {
    // Allocates, but nothing in the kernel reaches it: must NOT be
    // reported.
    format!("plan with {rows} rows")
}
