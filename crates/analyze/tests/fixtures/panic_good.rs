// Fixture twin of panic_bad.rs: the same call shape with every panic
// site either annotated (with the mandatory reason) or rewritten to a
// non-panicking form. The analysis must stay silent.
pub struct Service {
    store: Store,
}

impl Service {
    pub fn handle_line(&self, line: &str) -> String {
        let parsed = decode_frame(line.as_bytes());
        render(parsed)
    }
}

fn decode_frame(bytes: &[u8]) -> u32 {
    let header = read_header(bytes);
    header + 1
}

fn read_header(bytes: &[u8]) -> u32 {
    // lint: allow(panic, framing layer guarantees at least two bytes)
    let hi = bytes[0];
    let lo = bytes.get(1).copied().unwrap_or(0);
    u32::from(hi) << 8 | u32::from(lo)
}

fn render(value: u32) -> String {
    if value == 0 {
        return String::from("empty");
    }
    value.to_string()
}
