// Fixture twin of alloc_bad.rs: both kernel entry points write only
// into caller-provided slices — in-place scaling, no heap growth — so
// alloc_free_kernel must stay silent. The allocating reporter exists
// but is unreachable from the kernels.
pub struct SymbolicPlan {
    perm: Vec<usize>,
}

impl SymbolicPlan {
    pub fn factor(&self, vals: &mut [f64], out: &mut [f64]) {
        scale_rows(vals, out);
    }

    pub fn solve_gated(&self, x: &mut [f64]) {
        for i in 0..x.len() {
            x[i] = x[i] * 2.0;
        }
    }
}

fn scale_rows(vals: &[f64], out: &mut [f64]) {
    for i in 0..vals.len() {
        out[i] = vals[i];
    }
}

fn offline_report(rows: usize) -> String {
    // Allocates, but unreachable from the kernels: must NOT be reported.
    format!("plan with {rows} rows")
}
