// Fixture: a request handler reaching one unguarded indexing site and
// one guarded twin in the same function. The panic-reachability rule
// must report the unguarded site with the entry -> site chain; the
// value-range analysis must discharge the guarded one so only a single
// finding remains.
pub struct Service {
    store: Store,
}

impl Service {
    pub fn handle_line(&self, line: &str) -> String {
        let bytes = line.as_bytes();
        checksum(bytes).to_string()
    }
}

fn checksum(bytes: &[u8]) -> u8 {
    // Unguarded indexing, reachable: must be reported.
    let mut sum = bytes[0];
    let k = cut_point(bytes);
    if k < bytes.len() {
        // Guarded twin: discharged by the range analysis, NOT reported.
        sum = sum.wrapping_add(bytes[k]);
    }
    sum
}

fn cut_point(bytes: &[u8]) -> usize {
    bytes.len() / 2
}
