// Fixture twin of blocking_bad.rs: the loop body is pure sweep-poller
// discipline — single-shot nonblocking reads/writes/accepts (PerformsIo,
// not Blocks) and bounded local work — so the nonblocking_event_loop
// rule must stay silent. The blocking helper exists but is unreachable.
pub struct Shard {
    stream: TcpStream,
    wbuf: Vec<u8>,
}

pub fn event_loop(shards: &mut Vec<Shard>, acceptor: &TcpListener) {
    loop {
        let mut chunk = [0u8; 4096];
        for shard in shards.iter_mut() {
            // Single-shot io on a nonblocking socket: io, not blocking.
            let got = shard.stream.read(&mut chunk);
            let sent = shard.stream.write(shard.wbuf.as_slice());
            note_progress(got, sent);
        }
        let incoming = acceptor.accept();
        note_accept(incoming);
    }
}

fn note_progress(got: Result<usize, Error>, sent: Result<usize, Error>) {
    let _ = got;
    let _ = sent;
}

fn note_accept(incoming: Result<(TcpStream, SocketAddr), Error>) {
    let _ = incoming;
}

fn offline_reconnect() {
    // Blocking, but unreachable from the loop: must NOT be reported.
    std::thread::sleep(Duration::from_millis(500));
}
