// Fixture twin of range_bad.rs: every indexing site on the request
// path is dominated by a recognized guard form, so the value-range
// analysis discharges them all and the panic rule stays silent —
// with zero `// lint: allow` annotations.
pub struct Service {
    store: Store,
}

impl Service {
    pub fn handle_line(&self, line: &str) -> String {
        let bytes = line.as_bytes();
        if bytes.is_empty() {
            return String::new();
        }
        // `is_empty` early-exit inversion proves bytes[0].
        let tag = bytes[0];
        // `half <= bytes.len()` upper-bound fact proves the prefix slice.
        let half = bytes.len() / 2;
        let head = &bytes[..half];
        let k = cut_point(head);
        // `k < head.len()` guard proves head[k].
        let cut = if k < head.len() { head[k] } else { tag };
        render(tag, cut)
    }
}

fn cut_point(head: &[u8]) -> usize {
    head.len() / 2
}

fn render(tag: u8, cut: u8) -> String {
    format!("{tag}:{cut}")
}
