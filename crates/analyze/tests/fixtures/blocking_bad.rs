// Fixture: a router event loop that reaches blocking operations —
// one directly in the loop body, one two calls deep. The effect
// inference must flag both with the full entry -> site chain, and
// skip the helper nothing reaches.
pub struct Shard {
    backlog: Vec<String>,
}

pub fn event_loop(shards: &mut Vec<Shard>, rx: Receiver<String>) {
    loop {
        // Direct blocking dequeue in the loop itself: must be reported.
        let frame = rx.recv();
        dispatch(shards, frame);
    }
}

fn dispatch(shards: &mut Vec<Shard>, frame: Result<String, RecvError>) {
    settle(shards);
}

fn settle(shards: &mut Vec<Shard>) {
    // Blocking sleep two calls deep: must be reported with the chain.
    std::thread::sleep(Duration::from_millis(50));
}

fn offline_reconnect() {
    // Same blocking shape, but nothing reaches it: must NOT be reported.
    std::thread::sleep(Duration::from_millis(500));
}
