// Fixture: a request handler that transitively reaches un-annotated
// panic sites three calls deep. The panic-reachability analysis must
// fire on every site and print the full entry -> site chain.
pub struct Service {
    store: Store,
}

impl Service {
    pub fn handle_line(&self, line: &str) -> String {
        let parsed = decode_frame(line.as_bytes());
        render(parsed)
    }
}

fn decode_frame(bytes: &[u8]) -> u32 {
    let header = read_header(bytes);
    header + 1
}

fn read_header(bytes: &[u8]) -> u32 {
    // Un-annotated indexing, reachable: must be reported.
    let hi = bytes[0];
    // Un-annotated unwrap, reachable: must be reported.
    let lo = bytes.get(1).copied().unwrap();
    u32::from(hi) << 8 | u32::from(lo)
}

fn render(value: u32) -> String {
    if value == 0 {
        // Un-annotated panic macro, reachable: must be reported.
        panic!("zero frame");
    }
    value.to_string()
}

fn offline_debug_dump(bytes: &[u8]) -> u8 {
    // Same shape as read_header, but nothing reaches this function:
    // must NOT be reported.
    bytes[7]
}
