// Fixture twin of taint_bad.rs: the key list is sorted *before* any
// value derived from it reaches a serialization sink, which sanitizes
// the order dependence. The analysis must stay silent.
fn op_stats(counters: &HashMap<String, u64>) -> String {
    let rows = collect_rows(counters);
    let mut out = String::new();
    for row in &rows {
        out.push_str(row);
    }
    out
}

fn collect_rows(counters: &HashMap<String, u64>) -> Vec<String> {
    let mut names: Vec<&String> = counters.keys().collect();
    names.sort();
    let mut rows = Vec::new();
    for name in &names {
        rows.push(format!("{name}\n"));
    }
    rows
}
