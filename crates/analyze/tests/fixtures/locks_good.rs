// Fixture twin of locks_bad.rs: both handlers acquire stats before
// store — a single consistent order, so the lock graph is acyclic and
// the analysis must stay silent.
pub struct Service {
    stats: Mutex<Stats>,
    store: Mutex<Store>,
}

impl Service {
    pub fn handle_line(&self, line: &str) -> String {
        if line.starts_with('s') {
            self.put_path()
        } else {
            self.stat_path()
        }
    }

    fn put_path(&self) -> String {
        let st = self.stats.lock().unwrap_or_else(|e| e.into_inner());
        let db = self.store.lock().unwrap_or_else(|e| e.into_inner());
        format_reply(&st, &db)
    }

    fn stat_path(&self) -> String {
        let st = self.stats.lock().unwrap_or_else(|e| e.into_inner());
        let db = self.store.lock().unwrap_or_else(|e| e.into_inner());
        format_reply(&st, &db)
    }
}
