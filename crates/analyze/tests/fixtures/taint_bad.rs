// Fixture: HashMap iteration order flows into response bytes through a
// local helper. The determinism-taint analysis must report the flow
// with the source line in the message.
fn op_stats(counters: &HashMap<String, u64>) -> String {
    let rows = collect_rows(counters);
    let mut out = String::new();
    for row in &rows {
        out.push_str(row);
    }
    out
}

fn collect_rows(counters: &HashMap<String, u64>) -> Vec<String> {
    let mut rows = Vec::new();
    for name in counters.keys() {
        rows.push(format!("{name}\n"));
    }
    rows
}
