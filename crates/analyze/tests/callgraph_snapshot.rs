//! Pins the workspace call graph: the TSV dump of every function and
//! resolved call edge is committed at `tests/snapshots/callgraph.tsv`
//! and must match what `CallGraph::build` produces from the sources on
//! disk. Drift means a resolver behavior change (or a real code
//! change) — either way it must be reviewed, not silent. Regenerate
//! with:
//!
//! ```text
//! OA_REGEN_SNAPSHOT=1 cargo test -p oa-analyze --test callgraph_snapshot
//! ```
//!
//! or `oa_lint callgraph > crates/analyze/tests/snapshots/callgraph.tsv`.

use oa_analyze::callgraph::{CallGraph, Workspace};
use std::path::{Path, PathBuf};

const SNAPSHOT: &str = "tests/snapshots/callgraph.tsv";

#[test]
fn workspace_callgraph_matches_snapshot() {
    let root = workspace_root();
    // Same file set as `oa_lint`: crates/*/src/** only.
    let mut files = Vec::new();
    let mut crate_dirs: Vec<PathBuf> = std::fs::read_dir(root.join("crates"))
        .unwrap()
        .flatten()
        .map(|e| e.path())
        .filter(|p| p.is_dir())
        .collect();
    crate_dirs.sort();
    for krate in crate_dirs {
        collect_rs(&krate.join("src"), &mut files);
    }
    files.sort();
    let inputs: Vec<(String, String)> = files
        .iter()
        .map(|p| (relative_to(p, &root), std::fs::read_to_string(p).unwrap()))
        .collect();
    let ws = Workspace::parse(&inputs);
    let graph = CallGraph::build(&ws);
    let tsv = graph.to_tsv();

    let snap_path = Path::new(env!("CARGO_MANIFEST_DIR")).join(SNAPSHOT);
    if std::env::var_os("OA_REGEN_SNAPSHOT").is_some() {
        std::fs::write(&snap_path, &tsv).unwrap();
        return;
    }
    let snapshot = std::fs::read_to_string(&snap_path).unwrap_or_default();
    if snapshot != tsv {
        let diff: Vec<String> = diff_lines(&snapshot, &tsv);
        panic!(
            "call graph drifted from snapshot ({} line(s) differ); \
             review and regenerate with OA_REGEN_SNAPSHOT=1\n{}",
            diff.len(),
            diff.join("\n")
        );
    }
}

/// First 20 differing lines, unified-diff flavored, so the failure
/// message shows *what* moved without dumping 2000 lines.
fn diff_lines(old: &str, new: &str) -> Vec<String> {
    let old_set: std::collections::BTreeSet<&str> = old.lines().collect();
    let new_set: std::collections::BTreeSet<&str> = new.lines().collect();
    let mut out = Vec::new();
    for l in new_set.difference(&old_set).take(10) {
        out.push(format!("+ {l}"));
    }
    for l in old_set.difference(&new_set).take(10) {
        out.push(format!("- {l}"));
    }
    out
}

fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .unwrap()
        .parent()
        .unwrap()
        .to_path_buf()
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        if path.is_dir() {
            collect_rs(&path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}

fn relative_to(path: &Path, root: &Path) -> String {
    let rel = path.strip_prefix(root).unwrap_or(path);
    rel.components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}
