//! Regression tests for lexer corner cases that once mis-tokenized (or
//! plausibly could): raw strings with hash fences, deeply nested block
//! comments, char-literal escapes, and lifetime/char disambiguation.
//! Ends with a whole-workspace coverage sweep: every first-party file
//! must lex with sane line numbers — the lexer is the foundation both
//! engines stand on, so "lexes everything we actually ship" is a tested
//! property, not an assumption.

use oa_analyze::lexer::{lex, TokenKind};
use std::path::{Path, PathBuf};

fn kinds(src: &str) -> Vec<TokenKind> {
    lex(src).iter().map(|t| t.kind).collect()
}

#[test]
fn raw_string_with_two_hash_fences() {
    let toks = lex(r####"let s = r##"quote " and fence "# inside"## ; after"####);
    let strs: Vec<_> = toks.iter().filter(|t| t.kind == TokenKind::Str).collect();
    assert_eq!(strs.len(), 1);
    assert!(strs[0].text.contains(r##""# inside"##));
    assert!(toks.iter().any(|t| t.is_ident("after")));
}

#[test]
fn raw_string_hash_mismatch_does_not_end_early() {
    // `"#` inside an `r##` string is content, not a terminator.
    let toks = lex(r####"r##"a"#b"## x"####);
    assert_eq!(toks[0].kind, TokenKind::Str);
    assert!(toks[0].text.contains(r##"a"#b"##));
    assert!(toks[1].is_ident("x"));
}

#[test]
fn block_comments_nest_three_deep() {
    let toks = lex("/* 1 /* 2 /* 3 */ 2 */ 1 */ code");
    assert_eq!(toks.len(), 2);
    assert_eq!(toks[0].kind, TokenKind::BlockComment);
    assert!(toks[1].is_ident("code"));
}

#[test]
fn char_escapes_do_not_confuse_the_quote_scan() {
    // Escaped quote, escaped backslash, unicode escape: each is one
    // Char token and the following ident is still found.
    for src in [r"'\'' x", r"'\\' x", r"'\u{1F600}' x", r"b'\'' x"] {
        let toks = lex(src);
        assert_eq!(toks[0].kind, TokenKind::Char, "{src}");
        assert!(toks[1].is_ident("x"), "{src}: {toks:?}");
    }
}

#[test]
fn lifetimes_are_not_char_literals() {
    let toks = lex("fn f<'a>(x: &'a str) -> &'static str");
    let lifetimes: Vec<_> = toks
        .iter()
        .filter(|t| t.kind == TokenKind::Lifetime)
        .map(|t| t.text)
        .collect();
    assert_eq!(lifetimes, vec!["'a", "'a", "'static"]);
    assert!(!kinds("fn f<'a>()").contains(&TokenKind::Char));
}

#[test]
fn labeled_loops_lex_as_lifetimes() {
    let toks = lex("'outer: loop { break 'outer; }");
    assert_eq!(toks[0].kind, TokenKind::Lifetime);
    assert_eq!(toks[0].text, "'outer");
}

#[test]
fn raw_identifiers_are_single_idents() {
    let toks = lex("let r#type = r#match;");
    assert!(toks.iter().any(|t| t.is_ident("r#type")));
    assert!(toks.iter().any(|t| t.is_ident("r#match")));
}

#[test]
fn unterminated_literals_lex_to_eof_without_panicking() {
    for src in ["\"never closed", "r#\"never closed", "'", "/* never closed"] {
        let toks = lex(src);
        assert!(!toks.is_empty(), "{src:?} must still produce a token");
    }
}

#[test]
fn line_numbers_survive_multiline_literals() {
    let src = "a\n\"two\nline string\"\nb";
    let toks = lex(src);
    let b = toks.iter().find(|t| t.is_ident("b")).unwrap();
    assert_eq!(b.line, 4, "newlines inside strings advance the counter");
}

/// Every `.rs` file in the workspace lexes with non-empty token texts
/// and non-decreasing line numbers bounded by the file's line count.
#[test]
fn whole_workspace_lexes_cleanly() {
    let root = workspace_root();
    let mut files = Vec::new();
    collect_rs(&root.join("crates"), &mut files);
    assert!(
        files.len() >= 50,
        "expected a real workspace, found {}",
        files.len()
    );
    for path in files {
        let src = std::fs::read_to_string(&path).unwrap();
        let line_count = src.lines().count() as u32 + 1;
        let mut prev = 1u32;
        for t in lex(&src) {
            assert!(!t.text.is_empty(), "{}: empty token text", path.display());
            assert!(
                t.line >= prev && t.line <= line_count,
                "{}: token line {} out of order (prev {prev}, max {line_count})",
                path.display(),
                t.line
            );
            prev = t.line;
        }
    }
}

fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .unwrap()
        .parent()
        .unwrap()
        .to_path_buf()
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        if path.is_dir() {
            let name = path.file_name().unwrap_or_default();
            if name != "target" && name != "vendor" {
                collect_rs(&path, out);
            }
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}
