//! Fixture corpus for the interprocedural engine: each analysis has a
//! `*_bad.rs` fixture it must fire on (with the expected diagnostic
//! shape — the call chain or flow is part of the contract, not just
//! the fact of a finding) and a `*_good.rs` twin it must stay silent
//! on. The twins are the regression net against over-approximation:
//! an engine change that starts flagging the good twins is rejecting
//! correct code.

use oa_analyze::engine::{run, Engine, Report};
use oa_analyze::lint::Finding;

/// Runs the ast engine on one fixture under a virtual file name, so
/// entry points and rule scopes engage exactly as they do for the
/// real workspace.
fn report_at(path: &str, fixture: &str) -> Report {
    let inputs = vec![(path.to_owned(), fixture.to_owned())];
    run(Engine::Ast, &inputs)
}

/// [`report_at`], keeping only the findings for `rule`.
fn findings_at(rule: &str, path: &str, fixture: &str) -> Vec<Finding> {
    report_at(path, fixture)
        .findings
        .into_iter()
        .filter(|f| f.rule == rule)
        .collect()
}

/// The original request-path helper: fixtures that model `oa-serve`
/// handlers load under the service file name.
fn findings(rule: &str, fixture: &str) -> Vec<Finding> {
    findings_at(rule, "crates/serve/src/service.rs", fixture)
}

const PANIC_BAD: &str = include_str!("fixtures/panic_bad.rs");
const PANIC_GOOD: &str = include_str!("fixtures/panic_good.rs");
const LOCKS_BAD: &str = include_str!("fixtures/locks_bad.rs");
const LOCKS_GOOD: &str = include_str!("fixtures/locks_good.rs");
const TAINT_BAD: &str = include_str!("fixtures/taint_bad.rs");
const TAINT_GOOD: &str = include_str!("fixtures/taint_good.rs");
const BLOCKING_BAD: &str = include_str!("fixtures/blocking_bad.rs");
const BLOCKING_GOOD: &str = include_str!("fixtures/blocking_good.rs");
const ALLOC_BAD: &str = include_str!("fixtures/alloc_bad.rs");
const ALLOC_GOOD: &str = include_str!("fixtures/alloc_good.rs");
const RANGE_BAD: &str = include_str!("fixtures/range_bad.rs");
const RANGE_GOOD: &str = include_str!("fixtures/range_good.rs");

#[test]
fn panic_fixture_fires_on_all_three_reachable_sites() {
    let f = findings("panic", PANIC_BAD);
    assert_eq!(f.len(), 3, "{f:#?}");
    assert!(f.iter().any(|x| x.message.contains("indexing")));
    assert!(f.iter().any(|x| x.message.contains(".unwrap() can panic")));
    assert!(f.iter().any(|x| x.message.contains("panic! panics")));
}

#[test]
fn panic_fixture_chains_run_entry_to_site() {
    let f = findings("panic", PANIC_BAD);
    let indexing = f.iter().find(|x| x.message.contains("indexing")).unwrap();
    assert!(
        indexing
            .message
            .contains("Service::handle_line -> decode_frame (at service.rs:10) -> read_header"),
        "{}",
        indexing.message
    );
}

#[test]
fn panic_fixture_skips_the_unreachable_function() {
    // offline_debug_dump indexes too, but nothing reaches it.
    let f = findings("panic", PANIC_BAD);
    assert!(
        f.iter().all(|x| x.line < 35),
        "unreachable site reported: {f:#?}"
    );
}

#[test]
fn panic_good_twin_is_silent() {
    let f = findings("panic", PANIC_GOOD);
    assert!(f.is_empty(), "{f:#?}");
}

#[test]
fn lock_fixture_fires_on_the_ab_ba_cycle() {
    let f = findings("lock_order", LOCKS_BAD);
    assert_eq!(f.len(), 1, "{f:#?}");
    assert!(
        f[0].message.contains("Service.stats") && f[0].message.contains("Service.store"),
        "{}",
        f[0].message
    );
}

#[test]
fn lock_good_twin_is_silent() {
    let f = findings("lock_order", LOCKS_GOOD);
    assert!(f.is_empty(), "{f:#?}");
}

#[test]
fn taint_fixture_fires_with_the_source_line() {
    let f = findings("determinism", TAINT_BAD);
    assert!(!f.is_empty(), "expected a determinism flow");
    assert!(f[0].message.contains("iteration order"), "{}", f[0].message);
    // The source is the `counters.keys()` loop in collect_rows.
    assert!(f[0].message.contains("service.rs:15"), "{}", f[0].message);
}

#[test]
fn taint_good_twin_is_silent() {
    let f = findings("determinism", TAINT_GOOD);
    assert!(f.is_empty(), "{f:#?}");
}

#[test]
fn blocking_fixture_fires_on_both_blocking_sites_with_chains() {
    let f = findings_at(
        "nonblocking_event_loop",
        "crates/router/src/router.rs",
        BLOCKING_BAD,
    );
    assert_eq!(f.len(), 2, "{f:#?}");
    let recv = f
        .iter()
        .find(|x| x.message.contains(".recv() parks"))
        .unwrap();
    assert_eq!(recv.line, 12, "{recv:#?}");
    assert!(
        recv.message
            .contains("stalls the nonblocking event loop; reachable from event_loop: event_loop"),
        "{}",
        recv.message
    );
    let sleep = f
        .iter()
        .find(|x| x.message.contains("thread::sleep parks the thread"))
        .unwrap();
    assert_eq!(sleep.line, 23, "{sleep:#?}");
    assert!(
        sleep
            .message
            .contains("event_loop -> dispatch (at router.rs:13) -> settle (at router.rs:18)"),
        "{}",
        sleep.message
    );
    // offline_reconnect sleeps too (line 28), but nothing reaches it.
    assert!(f.iter().all(|x| x.line != 28), "{f:#?}");
}

#[test]
fn blocking_good_twin_is_silent() {
    let f = findings_at(
        "nonblocking_event_loop",
        "crates/router/src/router.rs",
        BLOCKING_GOOD,
    );
    assert!(f.is_empty(), "{f:#?}");
}

#[test]
fn alloc_fixture_fires_with_the_kernel_chain() {
    let f = findings_at(
        "alloc_free_kernel",
        "crates/linalg/src/sparse.rs",
        ALLOC_BAD,
    );
    assert_eq!(f.len(), 1, "{f:#?}");
    assert_eq!(f[0].line, 17, "{f:#?}");
    assert!(
        f[0].message.contains(
            ".push() allocates — allocates in the LANES hot path; reachable from \
             SymbolicPlan::factor: SymbolicPlan::factor -> scale_rows (at sparse.rs:11)"
        ),
        "{}",
        f[0].message
    );
}

#[test]
fn alloc_good_twin_is_silent() {
    let f = findings_at(
        "alloc_free_kernel",
        "crates/linalg/src/sparse.rs",
        ALLOC_GOOD,
    );
    assert!(f.is_empty(), "{f:#?}");
}

#[test]
fn range_fixture_reports_only_the_unguarded_site() {
    let r = report_at("crates/serve/src/service.rs", RANGE_BAD);
    let panics: Vec<&Finding> = r.findings.iter().filter(|f| f.rule == "panic").collect();
    assert_eq!(panics.len(), 1, "{panics:#?}");
    assert_eq!(panics[0].line, 19, "{panics:#?}");
    assert!(
        panics[0].message.contains(
            "slice/array indexing can panic; reachable from Service::handle_line: \
             Service::handle_line -> checksum (at service.rs:13)"
        ),
        "{}",
        panics[0].message
    );
    // The guarded twin on line 23 is discharged, not reported.
    let d = r.discharged.iter().find(|d| d.line == 23).unwrap();
    assert!(
        d.evidence.contains("`k < bytes.len()` guard"),
        "{}",
        d.evidence
    );
}

#[test]
fn range_good_twin_is_silent_with_every_site_discharged() {
    let r = report_at("crates/serve/src/service.rs", RANGE_GOOD);
    assert!(
        r.findings.iter().all(|f| f.rule != "panic"),
        "{:#?}",
        r.findings
    );
    let lines: Vec<u32> = r.discharged.iter().map(|d| d.line).collect();
    assert_eq!(lines, vec![16, 19, 22], "{:#?}", r.discharged);
    let evidence: Vec<&str> = r.discharged.iter().map(|d| d.evidence.as_str()).collect();
    assert!(evidence[0].contains("early-exit guard"), "{evidence:#?}");
    assert!(evidence[1].contains("upper bound"), "{evidence:#?}");
    assert!(
        evidence[2].contains("`k < head.len()` guard"),
        "{evidence:#?}"
    );
}
