//! Fixture corpus for the interprocedural engine: each analysis has a
//! `*_bad.rs` fixture it must fire on (with the expected diagnostic
//! shape — the call chain or flow is part of the contract, not just
//! the fact of a finding) and a `*_good.rs` twin it must stay silent
//! on. The twins are the regression net against over-approximation:
//! an engine change that starts flagging the good twins is rejecting
//! correct code.

use oa_analyze::engine::{run, Engine};
use oa_analyze::lint::Finding;

/// Loads a fixture under a virtual request-path file name so entry
/// points and rule scopes engage exactly as they do for the real
/// workspace, and returns only the findings for `rule`.
fn findings(rule: &str, fixture: &str) -> Vec<Finding> {
    let inputs = vec![("crates/serve/src/service.rs".to_owned(), fixture.to_owned())];
    run(Engine::Ast, &inputs)
        .findings
        .into_iter()
        .filter(|f| f.rule == rule)
        .collect()
}

const PANIC_BAD: &str = include_str!("fixtures/panic_bad.rs");
const PANIC_GOOD: &str = include_str!("fixtures/panic_good.rs");
const LOCKS_BAD: &str = include_str!("fixtures/locks_bad.rs");
const LOCKS_GOOD: &str = include_str!("fixtures/locks_good.rs");
const TAINT_BAD: &str = include_str!("fixtures/taint_bad.rs");
const TAINT_GOOD: &str = include_str!("fixtures/taint_good.rs");

#[test]
fn panic_fixture_fires_on_all_three_reachable_sites() {
    let f = findings("panic", PANIC_BAD);
    assert_eq!(f.len(), 3, "{f:#?}");
    assert!(f.iter().any(|x| x.message.contains("indexing")));
    assert!(f.iter().any(|x| x.message.contains(".unwrap() can panic")));
    assert!(f.iter().any(|x| x.message.contains("panic! panics")));
}

#[test]
fn panic_fixture_chains_run_entry_to_site() {
    let f = findings("panic", PANIC_BAD);
    let indexing = f.iter().find(|x| x.message.contains("indexing")).unwrap();
    assert!(
        indexing
            .message
            .contains("Service::handle_line -> decode_frame (at service.rs:10) -> read_header"),
        "{}",
        indexing.message
    );
}

#[test]
fn panic_fixture_skips_the_unreachable_function() {
    // offline_debug_dump indexes too, but nothing reaches it.
    let f = findings("panic", PANIC_BAD);
    assert!(
        f.iter().all(|x| x.line < 35),
        "unreachable site reported: {f:#?}"
    );
}

#[test]
fn panic_good_twin_is_silent() {
    let f = findings("panic", PANIC_GOOD);
    assert!(f.is_empty(), "{f:#?}");
}

#[test]
fn lock_fixture_fires_on_the_ab_ba_cycle() {
    let f = findings("lock_order", LOCKS_BAD);
    assert_eq!(f.len(), 1, "{f:#?}");
    assert!(
        f[0].message.contains("Service.stats") && f[0].message.contains("Service.store"),
        "{}",
        f[0].message
    );
}

#[test]
fn lock_good_twin_is_silent() {
    let f = findings("lock_order", LOCKS_GOOD);
    assert!(f.is_empty(), "{f:#?}");
}

#[test]
fn taint_fixture_fires_with_the_source_line() {
    let f = findings("determinism", TAINT_BAD);
    assert!(!f.is_empty(), "expected a determinism flow");
    assert!(f[0].message.contains("iteration order"), "{}", f[0].message);
    // The source is the `counters.keys()` loop in collect_rows.
    assert!(f[0].message.contains("service.rs:15"), "{}", f[0].message);
}

#[test]
fn taint_good_twin_is_silent() {
    let f = findings("determinism", TAINT_GOOD);
    assert!(f.is_empty(), "{f:#?}");
}
