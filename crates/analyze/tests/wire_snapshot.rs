//! Pins the wire-schema catalogue and checks the workspace against the
//! declared protocol — the extraction side of the wire-conformance
//! gate.
//!
//! * The TSV dump of every extracted wire fact is committed at
//!   `tests/snapshots/wire.tsv` and must match what the sources on
//!   disk produce: any change to the wire surface (a new op, a renamed
//!   kind, a moved emitter) shows up in review as a snapshot diff.
//!   Regenerate with:
//!
//!   ```text
//!   OA_REGEN_SNAPSHOT=1 cargo test -p oa-analyze --test wire_snapshot
//!   ```
//!
//!   or `oa_lint wire > crates/analyze/tests/snapshots/wire.tsv`.
//!
//! * The real workspace must be *clean* against the real
//!   `crates/serve/protocol.spec` — every emitted frame declared,
//!   every declaration alive, every op routed under its declared
//!   class.
//!
//! * Seeded regressions prove the rules actually catch the bug they
//!   exist for: a new op wired into the serve dispatch without a spec
//!   entry fires `wire_undeclared`, and a session op dropped from the
//!   router's table fires `wire_router_coverage` (the session-fork
//!   hazard).

use oa_analyze::callgraph::Workspace;
use oa_analyze::protocol::ProtocolSpec;
use oa_analyze::wire;
use std::path::{Path, PathBuf};

const SNAPSHOT: &str = "tests/snapshots/wire.tsv";
const SPEC: &str = "crates/serve/protocol.spec";

#[test]
fn workspace_wire_catalogue_matches_snapshot() {
    let tsv = wire::render_tsv(&wire::extract(&Workspace::parse(&workspace_inputs())));
    let snap_path = Path::new(env!("CARGO_MANIFEST_DIR")).join(SNAPSHOT);
    if std::env::var_os("OA_REGEN_SNAPSHOT").is_some() {
        std::fs::write(&snap_path, &tsv).unwrap();
        return;
    }
    let snapshot = std::fs::read_to_string(&snap_path).unwrap_or_default();
    if snapshot != tsv {
        let old: std::collections::BTreeSet<&str> = snapshot.lines().collect();
        let new: std::collections::BTreeSet<&str> = tsv.lines().collect();
        let mut diff: Vec<String> = new
            .difference(&old)
            .take(10)
            .map(|l| format!("+ {l}"))
            .collect();
        diff.extend(old.difference(&new).take(10).map(|l| format!("- {l}")));
        panic!(
            "wire catalogue drifted from snapshot; review and regenerate \
             with OA_REGEN_SNAPSHOT=1\n{}",
            diff.join("\n")
        );
    }
}

#[test]
fn workspace_conforms_to_the_declared_protocol() {
    let ws = Workspace::parse(&workspace_inputs());
    let spec = load_spec();
    let findings = wire::check(&ws, &spec, SPEC);
    assert!(
        findings.is_empty(),
        "workspace drifted from protocol.spec:\n{}",
        findings
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join("\n")
    );
}

#[test]
fn new_op_without_spec_entry_is_caught() {
    // Seed the regression this PR exists to prevent: wire a new op
    // into the serve dispatch, declare nothing.
    let mut inputs = workspace_inputs();
    let service = inputs
        .iter_mut()
        .find(|(p, _)| p == "crates/serve/src/service.rs")
        .unwrap();
    let seeded = service.1.replace("Some(\"stats\")", "Some(\"teleport\")");
    assert_ne!(seeded, service.1, "seed site must exist");
    service.1 = seeded;

    let findings = wire::check(&Workspace::parse(&inputs), &load_spec(), SPEC);
    assert!(
        findings.iter().any(|f| f.rule == "wire_undeclared"
            && f.message.contains("'teleport'")
            && f.path == "crates/serve/src/service.rs"),
        "{findings:?}"
    );
}

#[test]
fn session_op_dropped_from_router_table_is_caught() {
    // The session-fork hazard: `step` no longer pinned to the owning
    // shard. The rule must flag the spec line of the orphaned op.
    let mut inputs = workspace_inputs();
    let router = inputs
        .iter_mut()
        .find(|(p, _)| p == "crates/router/src/router.rs")
        .unwrap();
    let seeded = router
        .1
        .replace("\"open_session\" | \"step\" |", "\"open_session\" |");
    assert_ne!(seeded, router.1, "seed site must exist");
    router.1 = seeded;

    let spec = load_spec();
    let findings = wire::check(&Workspace::parse(&inputs), &spec, SPEC);
    let step_line = spec.op("step").unwrap().line;
    assert!(
        findings.iter().any(|f| f.rule == "wire_router_coverage"
            && f.message.contains("'step'")
            && f.path == SPEC
            && f.line == step_line),
        "{findings:?}"
    );
}

fn load_spec() -> ProtocolSpec {
    let text = std::fs::read_to_string(workspace_root().join(SPEC)).unwrap();
    ProtocolSpec::parse(&text).unwrap()
}

/// Same file set as `oa_lint`: `crates/*/src/**` only.
fn workspace_inputs() -> Vec<(String, String)> {
    let root = workspace_root();
    let mut files = Vec::new();
    let mut crate_dirs: Vec<PathBuf> = std::fs::read_dir(root.join("crates"))
        .unwrap()
        .flatten()
        .map(|e| e.path())
        .filter(|p| p.is_dir())
        .collect();
    crate_dirs.sort();
    for krate in crate_dirs {
        collect_rs(&krate.join("src"), &mut files);
    }
    files.sort();
    files
        .iter()
        .map(|p| (relative_to(p, &root), std::fs::read_to_string(p).unwrap()))
        .collect()
}

fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .unwrap()
        .parent()
        .unwrap()
        .to_path_buf()
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        if path.is_dir() {
            collect_rs(&path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}

fn relative_to(path: &Path, root: &Path) -> String {
    let rel = path.strip_prefix(root).unwrap_or(path);
    rel.components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}
