//! VGAE-BO: Bayesian optimization in a continuous latent space learned by
//! a graph autoencoder (\[16\]).
//!
//! **Substitution note** (DESIGN.md §2): the original uses a variational
//! graph autoencoder. Training a GNN is out of scope for this offline
//! reproduction, so the latent space here is a *linear* autoencoder — a
//! truncated eigendecomposition (PCA) of the one-hot topology embedding —
//! with nearest-legal-topology decoding. This preserves the property the
//! paper analyzes: the discrete design space is forced into a continuous
//! latent space whose decoder is piecewise constant, so the acquisition
//! landscape is discontinuous and BO explores it inefficiently compared
//! with INTO-OA's direct graph-space surrogate.

use std::collections::HashSet;

use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use oa_bo::{weighted_ei, TopoObservation, TopoRecord};
use oa_circuit::Topology;
use oa_gp::GpRegressor;
use oa_linalg::{symmetric_top_eigenpairs, Matrix};

use crate::common::BaselineRun;
use crate::encoding::{embed, embedding_dim};

/// Configuration of the VGAE-BO baseline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VgaeBoConfig {
    /// Random initial evaluations (paper setup: 10).
    pub n_init: usize,
    /// BO iterations (paper setup: 50).
    pub n_iter: usize,
    /// Latent dimensionality of the autoencoder.
    pub latent_dim: usize,
    /// Unlabelled topologies sampled to train the autoencoder (the VGAE's
    /// "separate training stage").
    pub train_samples: usize,
    /// Acquisition candidates per iteration (paper setup: 200).
    pub acq_candidates: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for VgaeBoConfig {
    fn default() -> Self {
        VgaeBoConfig {
            n_init: 10,
            n_iter: 50,
            latent_dim: 8,
            train_samples: 1000,
            acq_candidates: 200,
            seed: 0,
        }
    }
}

/// The trained linear latent space: encoder/decoder pair.
#[derive(Debug, Clone)]
pub struct LatentSpace {
    mean: Vec<f64>,
    /// Row `k` is the `k`-th principal direction (length 49).
    basis: Vec<Vec<f64>>,
    lo: Vec<f64>,
    hi: Vec<f64>,
}

impl LatentSpace {
    /// Trains the autoencoder on `samples` random topologies.
    ///
    /// # Examples
    ///
    /// ```
    /// use oa_baselines::LatentSpace;
    /// use oa_circuit::Topology;
    ///
    /// let space = LatentSpace::train(4, 200, 0);
    /// let z = space.encode(&Topology::bare_cascade());
    /// assert_eq!(z.len(), 4);
    /// ```
    pub fn train(latent_dim: usize, samples: usize, seed: u64) -> Self {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let d = embedding_dim();
        let n = samples.max(latent_dim * 4);
        let xs: Vec<Vec<f64>> = (0..n).map(|_| embed(&Topology::random(&mut rng))).collect();

        let mut mean = vec![0.0; d];
        for x in &xs {
            for (m, v) in mean.iter_mut().zip(x) {
                *m += v / n as f64;
            }
        }
        let mut cov = Matrix::zeros(d, d);
        for x in &xs {
            for i in 0..d {
                let di = x[i] - mean[i];
                if di == 0.0 {
                    continue;
                }
                for j in 0..d {
                    cov[(i, j)] += di * (x[j] - mean[j]) / n as f64;
                }
            }
        }
        let pairs = symmetric_top_eigenpairs(&cov, latent_dim, 300);
        let basis: Vec<Vec<f64>> = pairs.into_iter().map(|p| p.vector).collect();

        // Latent normalization bounds from the training projections.
        let mut lo = vec![f64::INFINITY; latent_dim];
        let mut hi = vec![f64::NEG_INFINITY; latent_dim];
        for x in &xs {
            for (k, b) in basis.iter().enumerate() {
                let z: f64 = b
                    .iter()
                    .zip(x)
                    .zip(&mean)
                    .map(|((bi, xi), mi)| bi * (xi - mi))
                    .sum();
                lo[k] = lo[k].min(z);
                hi[k] = hi[k].max(z);
            }
        }
        for k in 0..latent_dim {
            if hi[k] - lo[k] < 1e-9 {
                hi[k] = lo[k] + 1.0;
            }
        }
        LatentSpace {
            mean,
            basis,
            lo,
            hi,
        }
    }

    /// Latent dimensionality.
    pub fn dim(&self) -> usize {
        self.basis.len()
    }

    /// Encodes a topology into the normalized latent cube.
    pub fn encode(&self, topology: &Topology) -> Vec<f64> {
        let x = embed(topology);
        self.basis
            .iter()
            .enumerate()
            .map(|(k, b)| {
                let z: f64 = b
                    .iter()
                    .zip(&x)
                    .zip(&self.mean)
                    .map(|((bi, xi), mi)| bi * (xi - mi))
                    .sum();
                (z - self.lo[k]) / (self.hi[k] - self.lo[k])
            })
            .collect()
    }

    /// Decodes a normalized latent point to the nearest legal topology.
    ///
    /// # Panics
    ///
    /// Panics if `z.len() != self.dim()`.
    pub fn decode(&self, z: &[f64]) -> Topology {
        assert_eq!(z.len(), self.dim(), "latent dimension mismatch");
        let d = embedding_dim();
        let mut x = self.mean.clone();
        for (k, b) in self.basis.iter().enumerate() {
            let raw = self.lo[k] + z[k] * (self.hi[k] - self.lo[k]);
            for i in 0..d {
                x[i] += raw * b[i];
            }
        }
        crate::encoding::decode_nearest(&x)
    }
}

/// Runs the VGAE-BO baseline against an evaluation oracle.
///
/// # Examples
///
/// ```
/// use oa_baselines::{vgae_bo, VgaeBoConfig};
/// use oa_bo::TopoObservation;
///
/// let cfg = VgaeBoConfig { n_init: 4, n_iter: 4, train_samples: 200, ..VgaeBoConfig::default() };
/// let run = vgae_bo(&cfg, |t| Some(TopoObservation {
///     objective: t.connected_count() as f64,
///     constraints: vec![],
///     metrics: vec![],
/// }));
/// assert_eq!(run.history.len(), 8);
/// ```
pub fn vgae_bo<F>(config: &VgaeBoConfig, mut oracle: F) -> BaselineRun
where
    F: FnMut(&Topology) -> Option<TopoObservation>,
{
    let mut rng = ChaCha8Rng::seed_from_u64(config.seed);
    let space = LatentSpace::train(
        config.latent_dim,
        config.train_samples,
        config.seed ^ 0xABCD,
    );

    let mut visited: HashSet<Topology> = HashSet::new();
    let mut history: Vec<TopoRecord> = Vec::new();
    let mut zs: Vec<Vec<f64>> = Vec::new();

    let evaluate = |t: Topology,
                    visited: &mut HashSet<Topology>,
                    history: &mut Vec<TopoRecord>,
                    zs: &mut Vec<Vec<f64>>,
                    oracle: &mut F| {
        visited.insert(t);
        if let Some(obs) = oracle(&t) {
            zs.push(space.encode(&t));
            history.push(TopoRecord {
                topology: t,
                observation: obs,
            });
        }
    };

    let mut attempts = 0;
    while history.len() < config.n_init && attempts < config.n_init * 50 {
        attempts += 1;
        let t = Topology::random(&mut rng);
        if visited.contains(&t) {
            continue;
        }
        evaluate(t, &mut visited, &mut history, &mut zs, &mut oracle);
    }

    for _ in 0..config.n_iter {
        let next = propose(config, &space, &history, &zs, &visited, &mut rng);
        let Some(t) = next else { continue };
        evaluate(t, &mut visited, &mut history, &mut zs, &mut oracle);
    }

    BaselineRun::from_history(history)
}

fn propose(
    config: &VgaeBoConfig,
    space: &LatentSpace,
    history: &[TopoRecord],
    zs: &[Vec<f64>],
    visited: &HashSet<Topology>,
    rng: &mut ChaCha8Rng,
) -> Option<Topology> {
    let random_unvisited = |rng: &mut ChaCha8Rng| {
        for _ in 0..100 {
            let t = Topology::random(rng);
            if !visited.contains(&t) {
                return Some(t);
            }
        }
        None
    };
    if history.len() < 3 {
        return random_unvisited(rng);
    }

    let n_cons = history[0].observation.constraints.len();
    let obj_gp = GpRegressor::fit(
        zs.to_vec(),
        history.iter().map(|r| r.observation.objective).collect(),
    );
    let Ok(obj_gp) = obj_gp else {
        return random_unvisited(rng);
    };
    let mut con_gps = Vec::with_capacity(n_cons);
    for i in 0..n_cons {
        match GpRegressor::fit(
            zs.to_vec(),
            history
                .iter()
                .map(|r| r.observation.constraints[i])
                .collect(),
        ) {
            Ok(g) => con_gps.push(g),
            Err(_) => return random_unvisited(rng),
        }
    }

    let best_feasible = history
        .iter()
        .filter(|r| r.observation.is_feasible())
        .map(|r| r.observation.objective)
        .fold(None, |acc: Option<f64>, v| {
            Some(acc.map_or(v, |a| a.max(v)))
        });
    let incumbent_z = history
        .iter()
        .zip(zs)
        .reduce(|a, b| {
            if crate::common::rank_better(&b.0.observation, &a.0.observation) {
                b
            } else {
                a
            }
        })
        .map(|(_, z)| z.clone())
        .expect("history non-empty");

    let mut best: Option<(f64, Topology)> = None;
    for k in 0..config.acq_candidates.max(1) {
        // Candidate latent point: in-manifold (encode a random topology) or
        // a perturbation of the incumbent.
        let z: Vec<f64> = if k % 2 == 0 {
            space.encode(&Topology::random(rng))
        } else {
            incumbent_z
                .iter()
                .map(|&v| {
                    let u1: f64 = rng.gen::<f64>().max(1e-12);
                    let u2: f64 = rng.gen();
                    let normal = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
                    (v + 0.15 * normal).clamp(-0.2, 1.2)
                })
                .collect()
        };
        let t = space.decode(&z);
        if visited.contains(&t) {
            continue;
        }
        let Ok(obj) = obj_gp.predict(&z) else {
            continue;
        };
        let mut cons = Vec::with_capacity(con_gps.len());
        let mut ok = true;
        for g in &con_gps {
            match g.predict(&z) {
                Ok(p) => cons.push(p),
                Err(_) => {
                    ok = false;
                    break;
                }
            }
        }
        if !ok {
            continue;
        }
        let acq = weighted_ei(obj, &cons, best_feasible);
        if best.as_ref().is_none_or(|(b, _)| acq > *b) {
            best = Some((acq, t));
        }
    }
    best.map(|(_, t)| t).or_else(|| random_unvisited(rng))
}

#[cfg(test)]
mod tests {
    use super::*;
    use oa_circuit::{PassiveKind, SubcircuitType, VariableEdge};

    fn oracle(t: &Topology) -> Option<TopoObservation> {
        let mut score = t.connected_count() as f64;
        if matches!(
            t.type_on(VariableEdge::V1Vout),
            SubcircuitType::Passive(PassiveKind::C | PassiveKind::SeriesRc)
        ) {
            score += 5.0;
        }
        Some(TopoObservation {
            objective: score,
            constraints: vec![-1.0],
            metrics: vec![],
        })
    }

    #[test]
    fn latent_roundtrip_reconstructs_most_topologies() {
        // A linear autoencoder cannot be lossless (49 → 8), but it should
        // reconstruct a reasonable share of random topologies — that is
        // what makes it a usable (if imperfect) decoder.
        let space = LatentSpace::train(8, 800, 1);
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let mut exact = 0;
        let mut matched_edges = 0;
        let total = 100;
        for _ in 0..total {
            let t = Topology::random(&mut rng);
            let d = space.decode(&space.encode(&t));
            if d == t {
                exact += 1;
            }
            matched_edges += oa_circuit::VariableEdge::ALL
                .iter()
                .filter(|&&e| d.type_on(e) == t.type_on(e))
                .count();
        }
        // Chance level is ~0.73 matched edges per topology; the trained
        // decoder should do much better while staying lossy overall.
        let mean_edges = matched_edges as f64 / total as f64;
        assert!(
            mean_edges >= 1.8,
            "decoder barely beats chance: {mean_edges}"
        );
        assert!(exact < total, "a lossless 8-dim decoder is suspicious");
    }

    #[test]
    fn budget_matches_configuration() {
        let cfg = VgaeBoConfig {
            n_init: 6,
            n_iter: 10,
            train_samples: 300,
            ..VgaeBoConfig::default()
        };
        let run = vgae_bo(&cfg, oracle);
        assert_eq!(run.history.len(), 16);
    }

    #[test]
    fn never_reevaluates_topologies() {
        let cfg = VgaeBoConfig {
            n_init: 8,
            n_iter: 20,
            train_samples: 300,
            seed: 5,
            ..VgaeBoConfig::default()
        };
        let run = vgae_bo(&cfg, oracle);
        let set: HashSet<Topology> = run.history.iter().map(|r| r.topology).collect();
        assert_eq!(set.len(), run.history.len());
    }

    #[test]
    fn deterministic_under_seed() {
        let cfg = VgaeBoConfig {
            n_init: 5,
            n_iter: 6,
            train_samples: 200,
            seed: 11,
            ..VgaeBoConfig::default()
        };
        let a = vgae_bo(&cfg, oracle);
        let b = vgae_bo(&cfg, oracle);
        let ta: Vec<_> = a.history.iter().map(|r| r.topology).collect();
        let tb: Vec<_> = b.history.iter().map(|r| r.topology).collect();
        assert_eq!(ta, tb);
    }

    #[test]
    fn improves_on_learnable_landscape() {
        let cfg = VgaeBoConfig {
            n_init: 10,
            n_iter: 30,
            train_samples: 500,
            seed: 3,
            ..VgaeBoConfig::default()
        };
        let run = vgae_bo(&cfg, oracle);
        let best = run.best_record().unwrap().observation.objective;
        assert!(best >= 6.0, "vgae-bo best {best}");
    }
}
