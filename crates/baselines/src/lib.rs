//! Baseline topology optimizers for the INTO-OA comparison (Section IV-A).
//!
//! * [`fe_ga`] — FE-GA: a genetic algorithm over the feature-embedded
//!   topology genotype of \[14\].
//! * [`vgae_bo`] — VGAE-BO: Bayesian optimization in a continuous latent
//!   space learned by a (linear, see DESIGN.md §2) graph autoencoder, after
//!   \[16\].
//!
//! Both baselines consume the same evaluation-oracle interface as
//! [`oa_bo::topology_bo`], so the experiment harness drives all methods
//! with identical simulation budgets.
//!
//! # Examples
//!
//! ```
//! use oa_baselines::{fe_ga, FeGaConfig};
//! use oa_bo::TopoObservation;
//!
//! let cfg = FeGaConfig { population: 4, n_iter: 4, ..FeGaConfig::default() };
//! let run = fe_ga(&cfg, |t| Some(TopoObservation {
//!     objective: t.connected_count() as f64,
//!     constraints: vec![],
//!     metrics: vec![],
//! }));
//! assert!(run.best_record().is_some());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod common;
mod encoding;
mod fe_ga;
mod vgae_bo;

pub use common::BaselineRun;
pub use encoding::{blocks, decode_nearest, embed, embedding_dim};
pub use fe_ga::{fe_ga, FeGaConfig};
pub use vgae_bo::{vgae_bo, LatentSpace, VgaeBoConfig};
