//! FE-GA: a genetic algorithm over feature-embedded topology genotypes —
//! the comparison method built on \[14\]'s feature embedding.
//!
//! A steady-state GA: tournament selection under feasible-first ranking,
//! uniform crossover over the five embedded genes, per-gene mutation, and
//! worst-replacement. One offspring is evaluated per iteration so the
//! simulation budget matches the BO methods (10 initial + 50 iterations).

use std::collections::HashSet;

use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use oa_bo::{TopoObservation, TopoRecord};
use oa_circuit::Topology;

use crate::common::{rank_better, BaselineRun};

/// Configuration of the FE-GA baseline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FeGaConfig {
    /// Population size (also the number of random initial evaluations;
    /// paper setup: 10).
    pub population: usize,
    /// Offspring evaluations after initialization (paper setup: 50).
    pub n_iter: usize,
    /// Tournament size for parent selection.
    pub tournament: usize,
    /// Probability that a gene is taken from the second parent during
    /// uniform crossover.
    pub crossover_prob: f64,
    /// Per-gene mutation probability.
    pub mutation_prob: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for FeGaConfig {
    fn default() -> Self {
        FeGaConfig {
            population: 10,
            n_iter: 50,
            tournament: 3,
            crossover_prob: 0.5,
            mutation_prob: 0.2,
            seed: 0,
        }
    }
}

/// Runs the FE-GA baseline against an evaluation oracle.
///
/// The oracle contract matches [`oa_bo::topology_bo`]: `None` marks a
/// failed evaluation (the candidate is discarded).
///
/// # Examples
///
/// ```
/// use oa_baselines::{fe_ga, FeGaConfig};
/// use oa_bo::TopoObservation;
///
/// let cfg = FeGaConfig { population: 5, n_iter: 5, ..FeGaConfig::default() };
/// let run = fe_ga(&cfg, |t| Some(TopoObservation {
///     objective: t.connected_count() as f64,
///     constraints: vec![],
///     metrics: vec![],
/// }));
/// assert_eq!(run.history.len(), 10);
/// ```
pub fn fe_ga<F>(config: &FeGaConfig, mut oracle: F) -> BaselineRun
where
    F: FnMut(&Topology) -> Option<TopoObservation>,
{
    let mut rng = ChaCha8Rng::seed_from_u64(config.seed);
    let mut visited: HashSet<Topology> = HashSet::new();
    let mut history: Vec<TopoRecord> = Vec::new();
    // Population holds indices into `history`.
    let mut population: Vec<usize> = Vec::new();

    // Initialization: `population` random unique topologies.
    let mut attempts = 0;
    while population.len() < config.population.max(2) && attempts < config.population * 50 {
        attempts += 1;
        let t = Topology::random(&mut rng);
        if !visited.insert(t) {
            continue;
        }
        if let Some(obs) = oracle(&t) {
            history.push(TopoRecord {
                topology: t,
                observation: obs,
            });
            population.push(history.len() - 1);
        }
    }

    for _ in 0..config.n_iter {
        if population.len() < 2 {
            break;
        }
        let offspring = propose_offspring(config, &history, &population, &visited, &mut rng);
        let Some(t) = offspring else { continue };
        visited.insert(t);
        let Some(obs) = oracle(&t) else { continue };
        history.push(TopoRecord {
            topology: t,
            observation: obs,
        });
        let new_idx = history.len() - 1;

        // Replace the worst population member if the offspring beats it.
        let worst_slot = (0..population.len())
            .reduce(|a, b| {
                if rank_better(
                    &history[population[a]].observation,
                    &history[population[b]].observation,
                ) {
                    b
                } else {
                    a
                }
            })
            .expect("population non-empty");
        if rank_better(
            &history[new_idx].observation,
            &history[population[worst_slot]].observation,
        ) {
            population[worst_slot] = new_idx;
        }
    }

    BaselineRun::from_history(history)
}

fn tournament_select(
    config: &FeGaConfig,
    history: &[TopoRecord],
    population: &[usize],
    rng: &mut ChaCha8Rng,
) -> usize {
    let mut best = population[rng.gen_range(0..population.len())];
    for _ in 1..config.tournament.max(1) {
        let challenger = population[rng.gen_range(0..population.len())];
        if rank_better(&history[challenger].observation, &history[best].observation) {
            best = challenger;
        }
    }
    best
}

/// Uniform crossover over the 5 embedded genes plus per-gene mutation;
/// retries a few times to escape already-visited genotypes.
fn propose_offspring(
    config: &FeGaConfig,
    history: &[TopoRecord],
    population: &[usize],
    visited: &HashSet<Topology>,
    rng: &mut ChaCha8Rng,
) -> Option<Topology> {
    for _ in 0..20 {
        let pa = history[tournament_select(config, history, population, rng)].topology;
        let pb = history[tournament_select(config, history, population, rng)].topology;
        let mut child = pa;
        for edge in oa_circuit::VariableEdge::ALL {
            if rng.gen::<f64>() < config.crossover_prob {
                child = child
                    .with_type(edge, pb.type_on(edge))
                    .expect("parent genes are legal");
            }
            if rng.gen::<f64>() < config.mutation_prob {
                child = child.mutate_edge(edge, rng);
            }
        }
        if !visited.contains(&child) {
            return Some(child);
        }
    }
    // Fully explored neighborhood: fall back to a fresh random topology.
    for _ in 0..50 {
        let t = Topology::random(rng);
        if !visited.contains(&t) {
            return Some(t);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use oa_circuit::{PassiveKind, SubcircuitType, VariableEdge};

    fn oracle(t: &Topology) -> Option<TopoObservation> {
        let mut score = t.connected_count() as f64;
        if matches!(
            t.type_on(VariableEdge::V1Vout),
            SubcircuitType::Passive(PassiveKind::C | PassiveKind::SeriesRc)
        ) {
            score += 5.0;
        }
        Some(TopoObservation {
            objective: score,
            constraints: vec![-1.0],
            metrics: vec![],
        })
    }

    #[test]
    fn budget_matches_population_plus_iterations() {
        let cfg = FeGaConfig {
            population: 8,
            n_iter: 20,
            ..FeGaConfig::default()
        };
        let run = fe_ga(&cfg, oracle);
        assert_eq!(run.history.len(), 28);
    }

    #[test]
    fn improves_over_generations() {
        let cfg = FeGaConfig {
            population: 10,
            n_iter: 40,
            seed: 3,
            ..FeGaConfig::default()
        };
        let run = fe_ga(&cfg, oracle);
        let init_best = run.history[..10]
            .iter()
            .map(|r| r.observation.objective)
            .fold(f64::NEG_INFINITY, f64::max);
        let final_best = run.best_record().map(|r| r.observation.objective).unwrap();
        assert!(final_best >= init_best);
        assert!(final_best >= 8.0, "GA did not improve: {final_best}");
    }

    #[test]
    fn never_reevaluates_topologies() {
        let cfg = FeGaConfig {
            population: 10,
            n_iter: 30,
            seed: 9,
            ..FeGaConfig::default()
        };
        let run = fe_ga(&cfg, oracle);
        let set: HashSet<Topology> = run.history.iter().map(|r| r.topology).collect();
        assert_eq!(set.len(), run.history.len());
    }

    #[test]
    fn deterministic_under_seed() {
        let cfg = FeGaConfig {
            population: 6,
            n_iter: 10,
            seed: 77,
            ..FeGaConfig::default()
        };
        let a = fe_ga(&cfg, oracle);
        let b = fe_ga(&cfg, oracle);
        let ta: Vec<_> = a.history.iter().map(|r| r.topology).collect();
        let tb: Vec<_> = b.history.iter().map(|r| r.topology).collect();
        assert_eq!(ta, tb);
    }

    #[test]
    fn survives_failing_oracle() {
        let cfg = FeGaConfig {
            population: 6,
            n_iter: 10,
            seed: 5,
            ..FeGaConfig::default()
        };
        let run = fe_ga(&cfg, |t| if t.index() % 2 == 0 { None } else { oracle(t) });
        assert!(run.history.iter().all(|r| r.topology.index() % 2 == 1));
    }
}
