//! One-hot feature embedding of topologies (\[14\]'s "feature embedding").
//!
//! Each of the five variable edges contributes a one-hot block over its
//! legal type set (7 + 7 + 25 + 5 + 5 = 49 dimensions). Both baselines use
//! this embedding: FE-GA crosses over and mutates in the embedded genotype,
//! and the VGAE substitute trains its linear autoencoder on these vectors.

use oa_circuit::{SubcircuitType, Topology, VariableEdge};

/// Total dimension of the one-hot embedding.
pub fn embedding_dim() -> usize {
    VariableEdge::ALL
        .iter()
        .map(|e| e.allowed_types().len())
        .sum()
}

/// Per-edge `(offset, size)` of the one-hot blocks.
pub fn blocks() -> Vec<(usize, usize)> {
    let mut out = Vec::with_capacity(5);
    let mut offset = 0;
    for e in VariableEdge::ALL {
        let size = e.allowed_types().len();
        out.push((offset, size));
        offset += size;
    }
    out
}

/// Embeds a topology as a 49-dimensional one-hot vector.
///
/// # Examples
///
/// ```
/// use oa_baselines::{embed, embedding_dim};
/// use oa_circuit::Topology;
///
/// let x = embed(&Topology::bare_cascade());
/// assert_eq!(x.len(), embedding_dim());
/// assert_eq!(x.iter().sum::<f64>(), 5.0); // one hot bit per edge
/// ```
pub fn embed(topology: &Topology) -> Vec<f64> {
    let mut x = vec![0.0; embedding_dim()];
    let mut offset = 0;
    for e in VariableEdge::ALL {
        let allowed = e.allowed_types();
        let pos = allowed
            .iter()
            .position(|&t| t == topology.type_on(e))
            .expect("topology types are legal");
        x[offset + pos] = 1.0;
        offset += allowed.len();
    }
    x
}

/// Decodes an arbitrary real vector back to the nearest legal topology:
/// per edge, the type whose one-hot slot has the largest value.
///
/// This is the projection step of the VGAE substitute's decoder; it is
/// piecewise constant, which is exactly the discontinuity the paper blames
/// for VGAE-BO's inefficiency.
///
/// # Panics
///
/// Panics if `x.len() != embedding_dim()`.
pub fn decode_nearest(x: &[f64]) -> Topology {
    assert_eq!(x.len(), embedding_dim(), "embedding dimension mismatch");
    let mut types: [SubcircuitType; 5] = [SubcircuitType::NoConn; 5];
    let mut offset = 0;
    for e in VariableEdge::ALL {
        let allowed = e.allowed_types();
        let block = &x[offset..offset + allowed.len()];
        let argmax = block
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite embedding"))
            .map(|(i, _)| i)
            .expect("non-empty block");
        types[e.index()] = allowed[argmax];
        offset += allowed.len();
    }
    Topology::new(types).expect("types drawn from allowed sets")
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn embedding_dim_is_49() {
        assert_eq!(embedding_dim(), 49);
        let b = blocks();
        assert_eq!(b.len(), 5);
        assert_eq!(b[4].0 + b[4].1, 49);
    }

    #[test]
    fn embed_decode_roundtrip() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        for _ in 0..200 {
            let t = oa_circuit::Topology::random(&mut rng);
            assert_eq!(decode_nearest(&embed(&t)), t);
        }
    }

    #[test]
    fn decode_is_robust_to_noise_smaller_than_margin() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let t = oa_circuit::Topology::random(&mut rng);
        let mut x = embed(&t);
        for (i, v) in x.iter_mut().enumerate() {
            *v += 0.3 * (((i * 31) % 7) as f64 / 7.0 - 0.5);
        }
        assert_eq!(decode_nearest(&x), t);
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn decode_rejects_wrong_length() {
        let _ = decode_nearest(&[0.0; 10]);
    }
}
