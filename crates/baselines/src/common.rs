//! Shared result type for baseline optimizers.

use oa_bo::{TopoObservation, TopoRecord};

/// The history of a baseline optimization run, aligned with the record
/// shape of `oa_bo::topology_bo` so that the experiment harness treats all
/// methods identically.
#[derive(Debug, Clone, PartialEq)]
pub struct BaselineRun {
    /// Every successfully evaluated topology, in evaluation order.
    pub history: Vec<TopoRecord>,
    /// Index of the best record under feasible-first ranking.
    pub best: Option<usize>,
}

impl BaselineRun {
    /// Builds a run from a history, computing the best index.
    pub fn from_history(history: Vec<TopoRecord>) -> Self {
        let best = (0..history.len()).reduce(|a, b| {
            if rank_better(&history[b].observation, &history[a].observation) {
                b
            } else {
                a
            }
        });
        BaselineRun { history, best }
    }

    /// The best record, if any.
    pub fn best_record(&self) -> Option<&TopoRecord> {
        self.best.map(|i| &self.history[i])
    }

    /// Running best objective among feasible records (Fig. 5 curve).
    pub fn feasible_best_curve(&self) -> Vec<Option<f64>> {
        let mut best = None;
        self.history
            .iter()
            .map(|r| {
                if r.observation.is_feasible() {
                    best = Some(best.map_or(r.observation.objective, |b: f64| {
                        b.max(r.observation.objective)
                    }));
                }
                best
            })
            .collect()
    }
}

pub(crate) fn rank_better(a: &TopoObservation, b: &TopoObservation) -> bool {
    match (a.is_feasible(), b.is_feasible()) {
        (true, false) => true,
        (false, true) => false,
        (true, true) => a.objective > b.objective,
        (false, false) => a.violation() < b.violation(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oa_circuit::Topology;

    fn rec(objective: f64, feasible: bool) -> TopoRecord {
        TopoRecord {
            topology: Topology::bare_cascade(),
            observation: TopoObservation {
                objective,
                constraints: vec![if feasible { -1.0 } else { 1.0 }],
                metrics: vec![],
            },
        }
    }

    #[test]
    fn best_prefers_feasible_over_higher_infeasible() {
        let run = BaselineRun::from_history(vec![rec(100.0, false), rec(1.0, true)]);
        assert_eq!(run.best, Some(1));
    }

    #[test]
    fn curve_tracks_running_feasible_best() {
        let run = BaselineRun::from_history(vec![
            rec(5.0, false),
            rec(2.0, true),
            rec(1.0, true),
            rec(7.0, true),
        ]);
        assert_eq!(
            run.feasible_best_curve(),
            vec![None, Some(2.0), Some(2.0), Some(7.0)]
        );
    }

    #[test]
    fn empty_history_has_no_best() {
        let run = BaselineRun::from_history(vec![]);
        assert!(run.best_record().is_none());
    }
}
