//! Diagnostic example: how much predictive signal does the WL-GP have on
//! the *real* sized-topology landscape, and how noisy is a topology's
//! evaluated value across sizing seeds? Used to calibrate the synthetic
//! process (DESIGN.md §2); kept as a worked example of driving the
//! surrogate stack directly.

use into_oa::{Evaluator, Spec};
use oa_bo::BoConfig;
use oa_circuit::Topology;
use oa_gp::WlGp;
use oa_graph::{CircuitGraph, WlFeaturizer};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn main() {
    let spec = Spec::s1();
    let eval = Evaluator::new(spec);
    let sizing = BoConfig {
        n_init: 8,
        n_iter: 16,
        n_candidates: 100,
        seed: 0,
    };
    let mut rng = ChaCha8Rng::seed_from_u64(3);
    let mut data: Vec<(Topology, f64, bool)> = Vec::new();
    while data.len() < 60 {
        let t = Topology::random(&mut rng);
        if data.iter().any(|(x, _, _)| *x == t) {
            continue;
        }
        let (d, _) = eval.size(&t, &sizing);
        if let Some(d) = d {
            data.push((t, d.fom, d.feasible));
        }
    }
    let feasible = data.iter().filter(|(_, _, f)| *f).count();
    println!("feasible {}/{}", feasible, data.len());
    let foms: Vec<f64> = data.iter().map(|(_, f, _)| *f).collect();
    let mut sorted = foms.clone();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
    println!(
        "FoM quantiles: min {:.2} q25 {:.2} med {:.2} q75 {:.2} max {:.2}",
        sorted[0], sorted[15], sorted[30], sorted[45], sorted[59]
    );

    for (levels, interleave) in [
        (0usize, false),
        (2, false),
        (4, false),
        (0, true),
        (2, true),
        (4, true),
    ] {
        let mut wl = WlFeaturizer::new();
        let feats: Vec<_> = data
            .iter()
            .map(|(t, _, _)| wl.featurize(&CircuitGraph::from_topology(t), levels))
            .collect();
        let train_idx: Vec<usize> = if interleave {
            (0..60).filter(|i| i % 3 != 0).collect()
        } else {
            (0..40).collect()
        };
        let test_idx: Vec<usize> = if interleave {
            (0..60).filter(|i| i % 3 == 0).collect()
        } else {
            (40..60).collect()
        };
        let ytr: Vec<f64> = train_idx
            .iter()
            .map(|&i| data[i].1.max(1.0).log10())
            .collect();
        let ftr: Vec<_> = train_idx.iter().map(|&i| feats[i].clone()).collect();
        let gp = WlGp::fit(ftr, ytr).unwrap();
        let mut pairs: Vec<(f64, f64)> = Vec::new();
        for &i in &test_idx {
            let (m, _) = gp.predict(&feats[i]).unwrap();
            pairs.push((m, data[i].1.max(1.0).log10()));
        }
        let n = pairs.len() as f64;
        let mx = pairs.iter().map(|p| p.0).sum::<f64>() / n;
        let my = pairs.iter().map(|p| p.1).sum::<f64>() / n;
        let cov = pairs.iter().map(|p| (p.0 - mx) * (p.1 - my)).sum::<f64>() / n;
        let sx = (pairs.iter().map(|p| (p.0 - mx).powi(2)).sum::<f64>() / n).sqrt();
        let sy = (pairs.iter().map(|p| (p.1 - my).powi(2)).sum::<f64>() / n).sqrt();
        println!(
            "levels {levels} interleave {interleave}: holdout corr = {:.3}, h = {}, noise = {:.1e}",
            cov / (sx * sy),
            gp.hyperparams().h,
            gp.hyperparams().noise_var
        );
    }
    // raw structural signal: connected_count vs log FoM
    {
        let pairs: Vec<(f64, f64)> = data
            .iter()
            .map(|(t, f, _)| (t.connected_count() as f64, f.max(1.0).log10()))
            .collect();
        let n = pairs.len() as f64;
        let mx = pairs.iter().map(|p| p.0).sum::<f64>() / n;
        let my = pairs.iter().map(|p| p.1).sum::<f64>() / n;
        let cov = pairs.iter().map(|p| (p.0 - mx) * (p.1 - my)).sum::<f64>() / n;
        let sx = (pairs.iter().map(|p| (p.0 - mx).powi(2)).sum::<f64>() / n).sqrt();
        let sy = (pairs.iter().map(|p| (p.1 - my).powi(2)).sum::<f64>() / n).sqrt();
        println!("corr(connected_count, log fom) = {:.3}", cov / (sx * sy));
    }
    // in-sample fit quality at h<=0
    {
        let mut wl = WlFeaturizer::new();
        let feats: Vec<_> = data
            .iter()
            .map(|(t, _, _)| wl.featurize(&CircuitGraph::from_topology(t), 0))
            .collect();
        let ytr: Vec<f64> = data[..40]
            .iter()
            .map(|(_, f, _)| f.max(1.0).log10())
            .collect();
        let gp = WlGp::fit(feats[..40].to_vec(), ytr.clone()).unwrap();
        let mut pairs: Vec<(f64, f64)> = Vec::new();
        for i in 0..40 {
            let (m, _) = gp.predict(&feats[i]).unwrap();
            pairs.push((m, ytr[i]));
        }
        let n = pairs.len() as f64;
        let mx = pairs.iter().map(|p| p.0).sum::<f64>() / n;
        let my = pairs.iter().map(|p| p.1).sum::<f64>() / n;
        let cov = pairs.iter().map(|p| (p.0 - mx) * (p.1 - my)).sum::<f64>() / n;
        let sx = (pairs.iter().map(|p| (p.0 - mx).powi(2)).sum::<f64>() / n).sqrt();
        let sy = (pairs.iter().map(|p| (p.1 - my).powi(2)).sum::<f64>() / n).sqrt();
        println!("in-sample corr (h=0) = {:.3}", cov / (sx * sy));
        // per-type weight sanity: gradient for NC-free count proxy
        for ty in ["C", "RCs", "+gm>", "-gm>"] {
            if let Some(id) = wl.initial_label_id(ty) {
                println!("  grad[{ty}] = {:+.4}", gp.feature_gradient(id));
            }
        }
    }
    // sizing-noise: re-size the same topology with different seeds
    let t0 = data[0].0;
    let mut vals = Vec::new();
    for s in 0..6 {
        let (d, _) = eval.size(
            &t0,
            &BoConfig {
                seed: s * 1000 + 7,
                ..sizing
            },
        );
        vals.push(d.map(|d| d.fom).unwrap_or(0.0));
    }
    println!(
        "same-topology FoM across sizing seeds: {:?}",
        vals.iter().map(|v| format!("{v:.1}")).collect::<Vec<_>>()
    );
}
