//! Diagnostic example: how hard is each Table I spec for *random*
//! topologies under the synthetic process? (The paper's baselines fail
//! runs on the harder specs; this prints the raw feasibility rates that
//! make a spec hard.)

use into_oa::{Evaluator, Spec};
use oa_bo::BoConfig;
use oa_circuit::Topology;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn main() {
    let sizing = BoConfig {
        n_init: 10,
        n_iter: 30,
        n_candidates: 150,
        seed: 0,
    };
    for spec in Spec::all() {
        let eval = Evaluator::new(spec);
        let mut rng = ChaCha8Rng::seed_from_u64(11);
        let mut feas = 0;
        let mut best: f64 = 0.0;
        let mut foms = vec![];
        for _ in 0..40 {
            let t = Topology::random(&mut rng);
            if let (Some(d), _) = eval.size(&t, &sizing) {
                if d.feasible {
                    feas += 1;
                    best = best.max(d.fom);
                    foms.push(d.fom);
                }
            }
        }
        foms.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let med = foms.get(foms.len() / 2).copied().unwrap_or(0.0);
        println!(
            "{}: feasible {}/40, median feasible FoM {:.1}, best {:.1}",
            spec.name, feas, med, best
        );
    }
}
