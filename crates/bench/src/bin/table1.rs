//! Reproduces **Table I**: the design-specification sets.

use into_oa::Spec;

fn main() {
    oa_bench::check_args("table1", "Table I: the design-specification sets");
    println!("TABLE I: The Design Specification Sets");
    println!(
        "{:<6} {:>9} {:>9} {:>6} {:>10} {:>8}",
        "Specs", "Gain(dB)", "GBW(MHz)", "PM(deg)", "Power(uW)", "CL(pF)"
    );
    for s in Spec::all() {
        println!(
            "{:<6} {:>9} {:>9} {:>6} {:>10} {:>8}",
            s.name,
            format!(">{}", s.min_gain_db),
            format!(">{}", s.min_gbw_hz / 1e6),
            format!(">{}", s.min_pm_deg),
            format!("<{}", s.max_power_w / 1e-6),
            s.cl_farads / 1e-12
        );
    }
    println!();
    println!("Supply voltage: 1.8 V;  FoM = GBW[MHz]*CL[pF]/Power[mW]  (Eq. 6)");
}
