//! Reproduces **Table III**: behavior-level performance of the best
//! op-amp found by each method on each spec (Gain / GBW / PM / Power /
//! FoM). Uses the cached runs produced for Table II / Fig. 5.

use into_oa::Spec;
use oa_bench::{run_matrix, BestDesign, Method, Profile, RunSummary};

fn best_across_runs(runs: &[RunSummary]) -> Option<BestDesign> {
    let mut best: Option<BestDesign> = None;
    for run in runs {
        if let Some(b) = run.best.clone() {
            let replace = match &best {
                None => true,
                Some(cur) => match (b.feasible, cur.feasible) {
                    (true, false) => true,
                    (false, true) => false,
                    _ => b.fom > cur.fom,
                },
            };
            if replace {
                best = Some(b);
            }
        }
    }
    best
}

fn main() {
    oa_bench::check_args(
        "table3",
        "Table III: best behavior-level performance per spec",
    );
    let profile = Profile::from_env();
    println!(
        "TABLE III reproduction — profile '{}' (best of {} runs, {} jobs)",
        profile.name,
        profile.runs,
        oa_par::jobs()
    );
    println!(
        "{:<6} {:<10} {:>9} {:>9} {:>7} {:>10} {:>12}  feasible",
        "Specs", "Method", "Gain(dB)", "GBW(MHz)", "PM(deg)", "Power(uW)", "FoM"
    );
    // The paper's Table III compares the three headline methods.
    let methods = [Method::FeGa, Method::VgaeBo, Method::IntoOa];
    for spec in Spec::all() {
        let all_runs = run_matrix(&spec, &methods, profile.runs, &profile);
        for method in methods {
            match all_runs
                .get(&method)
                .and_then(|runs| best_across_runs(runs))
            {
                Some(b) => println!(
                    "{:<6} {:<10} {:>9.2} {:>9.3} {:>7.2} {:>10.2} {:>12.2}  {}",
                    spec.name,
                    method.label(),
                    b.perf.gain_db,
                    b.perf.gbw_hz / 1e6,
                    b.perf.pm_deg,
                    b.perf.power_w / 1e-6,
                    b.fom,
                    b.feasible
                ),
                None => println!("{:<6} {:<10} (no design found)", spec.name, method.label()),
            }
        }
        println!();
    }
}
