//! Reproduces **Table II**: behavior-level op-amp optimization results —
//! success rate, mean final FoM of successful runs, mean simulations to
//! reach the per-spec reference FoM, and speedup relative to the slowest
//! method. Budget scale: `OA_PROFILE=paper|quick|smoke`.

use std::collections::BTreeMap;

use into_oa::Spec;
use oa_bench::{fmt_opt, reference_fom, run_matrix, table2_stats, Method, Profile, RunSummary};

fn main() {
    oa_bench::check_args("table2", "Table II: success rate, final FoM, #sim, speedup");
    let profile = Profile::from_env();
    println!(
        "TABLE II reproduction — profile '{}' ({} runs per cell, {} jobs)",
        profile.name,
        profile.runs,
        oa_par::jobs()
    );
    println!(
        "{:<6} {:<10} {:>9} {:>12} {:>8} {:>9}",
        "Specs", "Method", "Suc.Rate", "Final FoM", "# Sim.", "Speedup"
    );

    for spec in Spec::all() {
        let all_runs: BTreeMap<Method, Vec<RunSummary>> =
            run_matrix(&spec, &Method::ALL, profile.runs, &profile);
        let stats = table2_stats(&all_runs);
        let reference = reference_fom(&all_runs);
        for method in Method::ALL {
            let c = &stats[&method];
            println!(
                "{:<6} {:<10} {:>6}/{:<2} {} {} {}",
                spec.name,
                method.label(),
                c.success.0,
                c.success.1,
                fmt_opt(c.final_fom, 12, 2),
                fmt_opt(c.sims_to_ref, 8, 0),
                match c.speedup {
                    Some(s) => format!("{s:>8.2}x"),
                    None => format!("{:>9}", "-"),
                }
            );
        }
        if let Some(r) = reference {
            println!("       (reference FoM for '# Sim.': {r:.2})");
        }
        println!();
    }
}
