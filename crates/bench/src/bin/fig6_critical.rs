//! Reproduces **§IV-B / Fig. 6**: identification of critical structures.
//!
//! Runs INTO-OA on one spec, trains the per-metric WL-GP models on the run
//! history, reports the gradient of GBW and PM with respect to every
//! connected subcircuit structure of the best topology, and validates the
//! gradients with remove-and-resimulate sensitivity analysis, exactly as
//! the paper does for the `-gmRs` (vin–v2) and `RCs` (v1–vout)
//! subcircuits.

use into_oa::{optimize, removal_sensitivity, Evaluator, IntoOaConfig, MetricModels, Spec};
use oa_bench::Profile;

fn main() {
    oa_bench::check_args(
        "fig6_critical",
        "Sec. IV-B: WL-GP gradients vs. sensitivity analysis",
    );
    let profile = Profile::from_env();
    let spec = Spec::s4(); // the paper's example circuit comes from S-4
    println!(
        "Critical-structure identification (Fig. 6 / §IV-B) — spec {} profile '{}'",
        spec.name, profile.name
    );

    let config = IntoOaConfig {
        topo: profile.topo(2024),
        sizing: profile.sizing(2024),
        ..IntoOaConfig::default()
    };
    let run = optimize(&spec, &config);
    let Some(best) = run.best_design().cloned() else {
        println!("no design found — increase the profile budget");
        return;
    };
    println!(
        "\nbest topology: {}\n  gain {:.2} dB, GBW {:.3} MHz, PM {:.2} deg, power {:.2} uW, FoM {:.2}",
        best.topology,
        best.performance.gain_db,
        best.performance.gbw_hz / 1e6,
        best.performance.pm_deg,
        best.performance.power_w / 1e-6,
        best.fom
    );

    let models = match MetricModels::fit(&run, 4) {
        Ok(m) => m,
        Err(e) => {
            println!("failed to train WL-GP metric models: {e}");
            return;
        }
    };

    println!("\nWL-GP gradients (Eq. 5) per connected subcircuit structure:");
    println!(
        "{:<10} {:<10} {:>12} {:>12} {:>12} {:>12}",
        "edge", "type", "d(gain_db)", "d(log10GBW)", "d(pm_deg)", "d(log10P)"
    );
    let report = models.structure_report(&best.topology);
    for impact in &report {
        let g: Vec<f64> = impact.gradients.iter().map(|(_, v)| *v).collect();
        println!(
            "{:<10} {:<10} {:>12.4} {:>12.4} {:>12.4} {:>12.4}",
            impact.edge.to_string(),
            impact.ty.to_string(),
            g[0],
            g[1],
            g[2],
            g[3]
        );
    }

    println!("\nValidation: remove-and-resimulate sensitivity (paper §IV-B):");
    println!(
        "{:<10} {:<10} {:>14} {:>12}  consistency with gradient sign",
        "edge", "type", "ΔGBW(MHz)", "ΔPM(deg)"
    );
    let evaluator = Evaluator::new(spec);
    for impact in &report {
        let sens = match removal_sensitivity(&evaluator, &best.topology, &best.values, impact.edge)
        {
            Ok(s) => s,
            Err(e) => {
                println!("{:<10} removal failed: {e}", impact.edge.to_string());
                continue;
            }
        };
        // Gradient of log10 GBW wrt the structure count: positive gradient
        // means the structure helps GBW, so removing it should reduce GBW
        // (ΔGBW < 0). Same logic for PM.
        let g_gbw = impact.gradients[1].1;
        let g_pm = impact.gradients[2].1;
        let gbw_consistent = (g_gbw > 0.0) == (sens.delta_gbw_hz() < 0.0);
        let pm_consistent = (g_pm > 0.0) == (sens.delta_pm_deg() < 0.0);
        println!(
            "{:<10} {:<10} {:>14.4} {:>12.2}  GBW: {}  PM: {}",
            impact.edge.to_string(),
            impact.ty.to_string(),
            sens.delta_gbw_hz() / 1e6,
            sens.delta_pm_deg(),
            if gbw_consistent {
                "consistent"
            } else {
                "mixed"
            },
            if pm_consistent { "consistent" } else { "mixed" },
        );
    }

    println!("\nStructure descriptions (h = 1 neighborhoods):");
    for impact in &report {
        if let Some(desc) = models.describe_structure(&best.topology, impact.edge) {
            println!("  {}: {}", impact.edge, desc);
        }
    }
}
