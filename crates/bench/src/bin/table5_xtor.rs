//! Reproduces **Table V**: transistor-level validation of the optimized
//! op-amps via the gm/Id mapping.
//!
//! For each spec, the best INTO-OA design (from the cached Table II runs)
//! is mapped to transistor level and re-measured; the FoM is expected to
//! drop relative to the behavior level (parasitics and bias overheads) but
//! the designs should stay functional — the shape Table V reports.

use into_oa::Spec;
use oa_bench::{run_cached, Method, Profile};
use oa_circuit::ParamSpace;
use oa_sim::AcOptions;
use oa_xtor::{transistor_performance, XtorOptions};

fn main() {
    oa_bench::check_args("table5_xtor", "Table V: transistor-level validation");
    let profile = Profile::from_env();
    println!(
        "TABLE V reproduction (transistor-level via gm/Id mapping) — profile '{}'",
        profile.name
    );
    println!(
        "{:<6} {:<10} {:>9} {:>9} {:>7} {:>10} {:>12} {:>14}",
        "Specs", "Method", "Gain(dB)", "GBW(MHz)", "PM(deg)", "Power(uW)", "FoM", "behav. FoM"
    );

    let methods = [Method::FeGa, Method::VgaeBo, Method::IntoOa];
    for spec in Spec::all() {
        for method in methods {
            // Best design across the cached runs.
            let mut best: Option<oa_bench::BestDesign> = None;
            for seed in 0..profile.runs {
                let run = run_cached(&spec, method, seed as u64, &profile);
                if let Some(b) = run.best {
                    let replace = match &best {
                        None => true,
                        Some(cur) => match (b.feasible, cur.feasible) {
                            (true, false) => true,
                            (false, true) => false,
                            _ => b.fom > cur.fom,
                        },
                    };
                    if replace {
                        best = Some(b);
                    }
                }
            }
            let Some(b) = best else {
                println!("{:<6} {:<10} (no design)", spec.name, method.label());
                continue;
            };
            let space = ParamSpace::for_topology(&b.topology);
            let Ok(values) = space.decode(&b.x) else {
                println!(
                    "{:<6} {:<10} (cached sizing corrupt)",
                    spec.name,
                    method.label()
                );
                continue;
            };
            match transistor_performance(
                &b.topology,
                &values,
                &XtorOptions::default(),
                spec.cl_farads,
                &AcOptions::default(),
            ) {
                Ok((perf, mapping)) => {
                    println!(
                        "{:<6} {:<10} {:>9.2} {:>9.3} {:>7.2} {:>10.2} {:>12.1} {:>14.1}  ({} devices)",
                        spec.name,
                        method.label(),
                        perf.gain_db,
                        perf.gbw_hz / 1e6,
                        perf.pm_deg,
                        perf.power_w / 1e-6,
                        perf.fom(spec.cl_farads),
                        b.fom,
                        mapping.devices.len()
                    );
                }
                Err(e) => {
                    println!(
                        "{:<6} {:<10} transistor mapping failed: {e}",
                        spec.name,
                        method.label()
                    );
                }
            }
        }
        println!();
    }
    println!("(paper reference: FoM decreases at transistor level for most designs,");
    println!(" all op-amps remain functional, INTO-OA keeps the highest FoM)");
}
