//! Reproduces **Fig. 5**: behavior-level optimization curves (best feasible
//! FoM vs. number of simulations), averaged over the profile's runs, for
//! all five specs × five methods.
//!
//! Emits one CSV per spec under `results/fig5_<spec>.csv` and prints a
//! compact ASCII rendition. Budget scale: `OA_PROFILE=paper|quick|smoke`.

use std::collections::BTreeMap;
use std::fs;

use into_oa::Spec;
use oa_bench::{mean_curve, results_dir, run_matrix, sim_grid, Method, Profile, RunSummary};

fn main() {
    oa_bench::check_args("fig5", "Fig. 5: behavior-level optimization curves");
    let profile = Profile::from_env();
    println!(
        "Fig. 5 reproduction — profile '{}' ({} runs, {} topologies/run, {} sims/topology, {} jobs)",
        profile.name,
        profile.runs,
        profile.topologies_per_run(),
        profile.sims_per_topology(),
        oa_par::jobs()
    );

    for spec in Spec::all() {
        println!("\n=== {spec} ===");
        let all_runs: BTreeMap<Method, Vec<RunSummary>> =
            run_matrix(&spec, &Method::ALL, profile.runs, &profile);

        // Common simulation grid across methods.
        let flattened: Vec<RunSummary> = all_runs.values().flatten().cloned().collect();
        let grid = sim_grid(&flattened, 25);

        // CSV: sims, then one mean-curve column per method.
        let mut csv = String::from("sims");
        for method in Method::ALL {
            csv.push_str(&format!(",{}", method.label()));
        }
        csv.push('\n');
        let curves: BTreeMap<Method, Vec<Option<f64>>> = all_runs
            .iter()
            .map(|(&m, runs)| (m, mean_curve(runs, &grid)))
            .collect();
        for (i, &g) in grid.iter().enumerate() {
            csv.push_str(&g.to_string());
            for method in Method::ALL {
                match curves[&method][i] {
                    Some(v) => csv.push_str(&format!(",{v:.4}")),
                    None => csv.push(','),
                }
            }
            csv.push('\n');
        }
        let dir = results_dir();
        let _ = fs::create_dir_all(&dir);
        let path = dir.join(format!("fig5_{}.csv", spec.name));
        if let Err(e) = fs::write(&path, &csv) {
            eprintln!("warning: failed to write {}: {e}", path.display());
        } else {
            println!("wrote {}", path.display());
        }

        // ASCII summary: final mean FoM per method plus sparkline-ish rows.
        println!(
            "{:<10} {:>12}   curve (mean best feasible FoM over sims)",
            "method", "final FoM"
        );
        for method in Method::ALL {
            let c = &curves[&method];
            let last = c.iter().rev().flatten().next().copied();
            let line: String = c
                .iter()
                .map(|v| match v {
                    None => ' ',
                    Some(x) => {
                        let max = c.iter().flatten().fold(1e-12_f64, |a, &b| a.max(b));
                        let lvl = (x / max * 8.0).ceil().clamp(1.0, 8.0) as usize;
                        [' ', '.', ':', '-', '=', '+', '*', '#', '@'][lvl]
                    }
                })
                .collect();
            println!(
                "{:<10} {:>12}   |{line}|",
                method.label(),
                oa_bench::fmt_opt(last, 12, 1)
            );
        }
    }
}
