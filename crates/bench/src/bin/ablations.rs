//! Ablation study of INTO-OA's design choices (the hooks called out in
//! DESIGN.md §4):
//!
//! * **WL depth** — extraction depth 0 (bag of subcircuit types) vs. 2 vs.
//!   4 (the default; the GP still selects `h` by marginal likelihood
//!   below the cap). The paper argues deeper WL features capture
//!   circuit-level structure; depth 0 ablates that away.
//! * **Candidate pool size** — 25 / 100 / 200 candidates per iteration.
//! * **Elite count** — how many best topologies seed the mutations.
//!
//! Each configuration runs INTO-OA on S-1 over the profile's seeds and
//! reports success rate and mean final FoM.

use into_oa::{optimize, IntoOaConfig, Spec};
use oa_bench::Profile;
use oa_bo::TopoBoConfig;

struct Ablation {
    name: &'static str,
    wl_levels: usize,
    pool_size: usize,
    elite_count: usize,
}

fn main() {
    oa_bench::check_args("ablations", "ablation studies over the INTO-OA pipeline");
    let profile = Profile::from_env();
    let spec = Spec::s1();
    println!(
        "INTO-OA ablations on {} — profile '{}' ({} runs per row)",
        spec.name, profile.name, profile.runs
    );

    let base = profile.topo(0);
    let ablations = [
        Ablation {
            name: "default (h<=4, pool, elite 5)",
            wl_levels: 4,
            pool_size: base.pool_size,
            elite_count: 5,
        },
        Ablation {
            name: "WL depth 0 (bag of types)",
            wl_levels: 0,
            pool_size: base.pool_size,
            elite_count: 5,
        },
        Ablation {
            name: "WL depth 2",
            wl_levels: 2,
            pool_size: base.pool_size,
            elite_count: 5,
        },
        Ablation {
            name: "small pool (25)",
            wl_levels: 4,
            pool_size: 25,
            elite_count: 5,
        },
        Ablation {
            name: "single elite",
            wl_levels: 4,
            pool_size: base.pool_size,
            elite_count: 1,
        },
        Ablation {
            name: "broad elites (15)",
            wl_levels: 4,
            pool_size: base.pool_size,
            elite_count: 15,
        },
    ];

    println!(
        "{:<32} {:>9} {:>14} {:>10}",
        "configuration", "success", "mean FoM", "mean sims"
    );
    for ab in &ablations {
        let mut succ = 0usize;
        let mut fom_sum = 0.0;
        let mut fom_n = 0usize;
        let mut sims_sum = 0usize;
        for seed in 0..profile.runs {
            let config = IntoOaConfig {
                topo: TopoBoConfig {
                    wl_levels: ab.wl_levels,
                    pool_size: ab.pool_size,
                    elite_count: ab.elite_count,
                    seed: seed as u64,
                    ..profile.topo(seed as u64)
                },
                sizing: profile.sizing(seed as u64),
                ..IntoOaConfig::default()
            };
            let run = optimize(&spec, &config);
            if run.succeeded() {
                succ += 1;
            }
            if let Some(best) = run.best_design().filter(|d| d.feasible) {
                fom_sum += best.fom;
                fom_n += 1;
            }
            sims_sum += run.total_sims;
        }
        let mean_fom = if fom_n > 0 {
            format!("{:>14.2}", fom_sum / fom_n as f64)
        } else {
            format!("{:>14}", "-")
        };
        println!(
            "{:<32} {:>6}/{:<2} {} {:>10}",
            ab.name,
            succ,
            profile.runs,
            mean_fom,
            sims_sum / profile.runs
        );
    }
}
