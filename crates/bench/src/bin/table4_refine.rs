//! Reproduces **Fig. 7 + Table IV**: gradient-guided refinement of the two
//! literature op-amps C1 \[19\] and C2 \[20\] toward S-5.
//!
//! The trusted designs are sized under a mildly relaxed S-5 (emulating the
//! published designs' original target) and then held to the full S-5,
//! which they narrowly fail on one metric — C1 on phase margin, C2 on
//! gain, as in the paper. WL-GP metric models trained on an S-5
//! optimization run guide the single-subcircuit replacement; only the
//! modified part is re-sized.

use into_oa::{
    literature, optimize, refine, Evaluator, IntoOaConfig, MetricModels, RefineConfig, Spec,
};
use oa_bench::Profile;
use oa_circuit::{DeviceValues, Topology};
use oa_sim::OpAmpPerformance;

fn row(name: &str, spec_name: &str, perf: &OpAmpPerformance, fom: f64, feasible: bool) {
    println!(
        "{:<4} {:>9.2} {:>9.3} {:>7.2} {:>10.2} {:>12.1}  {} {}",
        name,
        perf.gain_db,
        perf.gbw_hz / 1e6,
        perf.pm_deg,
        perf.power_w / 1e-6,
        fom,
        if feasible { "meets" } else { "violates" },
        spec_name,
    );
}

/// Sizes a trusted topology under a *relaxed* version of S-5 (one
/// constraint loosened), emulating a published design that drives the
/// heavy load competently but narrowly misses the new spec on one metric —
/// the paper's C1 misses PM (46.9° < 55°), C2 misses gain (82 dB < 85 dB).
fn trusted_sizing(
    topology: &Topology,
    relaxed: &Spec,
    full: &Spec,
    profile: &Profile,
    seed: u64,
) -> Option<DeviceValues> {
    let evaluator = Evaluator::new(*relaxed);
    let checker = Evaluator::new(*full);
    let mut fallback: Option<(f64, DeviceValues)> = None;
    // Scan a few sizing seeds for a trusted design that narrowly misses
    // the full spec (small positive violation) — the paper's scenario.
    for k in 0..16 {
        let (design, _) = evaluator.size(topology, &profile.sizing(seed + k));
        let Some(d) = design else { continue };
        let Ok(perf) = checker.simulate(&d.topology, &d.values) else {
            continue;
        };
        let cons = full.constraints(&perf);
        let violation: f64 = cons.iter().map(|c| c.max(0.0)).sum();
        let violated = cons.iter().filter(|&&c| c > 0.0).count();
        // "Narrowly" = one violated constraint, within ~10° of PM / 3 dB of
        // gain / a third of a decade of GBW — the band where a
        // one-subcircuit touch-up is a reasonable ask (the paper's C1
        // missed PM by 8.1°). Among acceptable candidates prefer the one
        // with the most slack on its *met* constraints: the touch-up will
        // trade some of that slack for the missing margin.
        let acceptable = violated == 1 && violation < 0.35;
        let score = if acceptable {
            // Most negative (largest) slack first.
            -cons
                .iter()
                .filter(|&&c| c <= 0.0)
                .map(|&c| -c)
                .fold(0.0_f64, |a, b| a + b.min(0.5))
        } else {
            // Fall back to the least-violating design, ranked far behind
            // every acceptable candidate.
            1.0 + violation
        };
        let better = match &fallback {
            None => true,
            Some((best, _)) => score < *best,
        };
        if better && violation > 0.0 {
            fallback = Some((score, d.values));
        }
    }
    fallback.map(|(_, v)| v)
}

fn main() {
    oa_bench::check_args("table4_refine", "Fig. 7 + Table IV: topology refinement");
    let profile = Profile::from_env();
    let spec = Spec::s5();
    println!(
        "TABLE IV reproduction (topology refinement toward {}) — profile '{}'",
        spec.name, profile.name
    );

    // Metric models come from an S-5 optimization run, "trained during
    // optimization" as in the paper.
    println!("\ntraining WL-GP metric models on an S-5 optimization run…");
    let run = optimize(
        &spec,
        &IntoOaConfig {
            topo: profile.topo(555),
            sizing: profile.sizing(555),
            ..IntoOaConfig::default()
        },
    );
    let models = match MetricModels::fit(&run, 4) {
        Ok(m) => m,
        Err(e) => {
            println!("failed to train metric models: {e}");
            return;
        }
    };

    println!(
        "\n{:<4} {:>9} {:>9} {:>7} {:>10} {:>12}",
        "Ckt", "Gain(dB)", "GBW(MHz)", "PM(deg)", "Power(uW)", "FoM"
    );

    // Like the paper's originals, each trusted design narrowly misses the
    // target on one FoM-coupled metric (the sizing presses against the
    // relaxed bound): C1 and C2 both land just under the 55° phase-margin
    // line (the paper's C1 case; its C2 misses gain instead — gain is
    // topology-fixed in our behavioral model, so the PM shortfall is the
    // faithful analogue).
    let c1_design_spec = Spec {
        min_pm_deg: 47.0, // the PM shortfall the refinement must close
        ..spec
    };
    let c2_design_spec = Spec {
        min_pm_deg: 47.0,
        ..spec
    };
    for (name, refined_name, topology, target, relaxed, seed) in [
        ("C1", "R1", literature::c1(), spec, c1_design_spec, 71u64),
        ("C2", "R2", literature::c2(), spec, c2_design_spec, 72u64),
    ] {
        let evaluator = Evaluator::new(target);
        let Some(values) = trusted_sizing(&topology, &relaxed, &target, &profile, seed) else {
            println!("{name}: trusted sizing failed");
            continue;
        };
        let original = match evaluator.simulate(&topology, &values) {
            Ok(p) => p,
            Err(e) => {
                println!("{name}: simulation failed: {e}");
                continue;
            }
        };
        row(
            name,
            target.name,
            &original,
            target.fom(&original),
            target.is_met_by(&original),
        );

        let outcome = match refine(
            &evaluator,
            &topology,
            &values,
            &models,
            &RefineConfig {
                max_attempts: 15,
                resize: oa_bo::BoConfig {
                    n_init: 8,
                    n_iter: 16,
                    n_candidates: 80,
                    seed: 0,
                },
            },
        ) {
            Ok(o) => o,
            Err(e) => {
                println!("{name}: refinement failed: {e}");
                continue;
            }
        };
        match &outcome.refined {
            Some(d) if outcome.attempts.is_empty() => {
                row(refined_name, target.name, &d.performance, d.fom, d.feasible);
                println!("     already meets {}; no modification needed", target.name);
            }
            Some(d) => {
                row(refined_name, target.name, &d.performance, d.fom, d.feasible);
                println!(
                    "     replaced {} on {} with {} ({} sims, {} attempt(s); rest of the design untouched)",
                    outcome.old_ty,
                    outcome.edge,
                    d.topology.type_on(outcome.edge),
                    outcome.total_sims,
                    outcome.attempts.len().max(1)
                );
            }
            None => {
                println!(
                    "     refinement of {} on {} did not reach {} within {} sims ({} attempts)",
                    outcome.old_ty,
                    outcome.edge,
                    target.name,
                    outcome.total_sims,
                    outcome.attempts.len()
                );
                let least_violating = outcome
                    .attempts
                    .iter()
                    .filter_map(|a| a.design.as_ref())
                    .min_by(|a, b| {
                        let va: f64 = target
                            .constraints(&a.performance)
                            .iter()
                            .map(|c| c.max(0.0))
                            .sum();
                        let vb: f64 = target
                            .constraints(&b.performance)
                            .iter()
                            .map(|c| c.max(0.0))
                            .sum();
                        va.partial_cmp(&vb).expect("finite violations")
                    });
                if let Some(best) = least_violating {
                    row(
                        refined_name,
                        target.name,
                        &best.performance,
                        best.fom,
                        best.feasible,
                    );
                }
            }
        }
        println!();
    }
    println!("(paper reference: refinement succeeds for both circuits within 40 simulations)");
}
