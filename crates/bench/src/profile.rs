//! Experiment-scale profiles.
//!
//! The paper's setup (10 runs × 10 init + 50 BO iterations × 40-simulation
//! sizing, candidate pool 200) is reproduced by the `paper` profile. The
//! default `quick` profile shrinks every budget so the whole table
//! regenerates in minutes on one core; `smoke` is for CI-style sanity
//! runs. Select with the `OA_PROFILE` environment variable.

use oa_baselines::{FeGaConfig, VgaeBoConfig};
use oa_bo::{BoConfig, TopoBoConfig};

/// Budget profile for experiment reproduction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Profile {
    /// Profile name (`paper`, `quick`, `smoke`).
    pub name: &'static str,
    /// Repetitions per (spec, method) cell.
    pub runs: usize,
    /// Initial random topologies.
    pub n_init: usize,
    /// Outer-loop iterations.
    pub n_iter: usize,
    /// Candidate pool size.
    pub pool: usize,
    /// Sizing initial points.
    pub sizing_init: usize,
    /// Sizing BO iterations.
    pub sizing_iter: usize,
}

impl Profile {
    /// The paper's full experimental setup.
    pub const PAPER: Profile = Profile {
        name: "paper",
        runs: 10,
        n_init: 10,
        n_iter: 50,
        pool: 200,
        sizing_init: 10,
        sizing_iter: 30,
    };

    /// Reduced budgets for fast regeneration (default).
    pub const QUICK: Profile = Profile {
        name: "quick",
        runs: 5,
        n_init: 8,
        n_iter: 22,
        pool: 100,
        sizing_init: 10,
        sizing_iter: 30,
    };

    /// Minimal sanity-check budgets.
    pub const SMOKE: Profile = Profile {
        name: "smoke",
        runs: 2,
        n_init: 4,
        n_iter: 6,
        pool: 30,
        sizing_init: 4,
        sizing_iter: 4,
    };

    /// Reads `OA_PROFILE` (`paper` / `quick` / `smoke`); defaults to
    /// `quick`; unknown values also fall back to `quick`.
    pub fn from_env() -> Profile {
        match std::env::var("OA_PROFILE").as_deref() {
            Ok("paper") => Profile::PAPER,
            Ok("smoke") => Profile::SMOKE,
            _ => Profile::QUICK,
        }
    }

    /// Simulations spent sizing one topology.
    pub fn sims_per_topology(&self) -> usize {
        self.sizing_init + self.sizing_iter
    }

    /// Total topologies evaluated per run.
    pub fn topologies_per_run(&self) -> usize {
        self.n_init + self.n_iter
    }

    /// Sizing BO configuration.
    pub fn sizing(&self, seed: u64) -> BoConfig {
        BoConfig {
            n_init: self.sizing_init,
            n_iter: self.sizing_iter,
            n_candidates: 100,
            seed,
        }
    }

    /// Outer-loop configuration for the INTO-OA family.
    pub fn topo(&self, seed: u64) -> TopoBoConfig {
        TopoBoConfig {
            n_init: self.n_init,
            n_iter: self.n_iter,
            pool_size: self.pool,
            seed,
            ..TopoBoConfig::default()
        }
    }

    /// FE-GA configuration at matched budget.
    pub fn fe_ga(&self, seed: u64) -> FeGaConfig {
        FeGaConfig {
            population: self.n_init,
            n_iter: self.n_iter,
            seed,
            ..FeGaConfig::default()
        }
    }

    /// VGAE-BO configuration at matched budget.
    pub fn vgae(&self, seed: u64) -> VgaeBoConfig {
        VgaeBoConfig {
            n_init: self.n_init,
            n_iter: self.n_iter,
            acq_candidates: self.pool,
            seed,
            ..VgaeBoConfig::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_profile_matches_section_iv() {
        let p = Profile::PAPER;
        assert_eq!(p.runs, 10);
        assert_eq!(p.topologies_per_run(), 60);
        assert_eq!(p.sims_per_topology(), 40);
        assert_eq!(p.pool, 200);
    }

    #[test]
    fn derived_configs_share_budgets() {
        let p = Profile::QUICK;
        assert_eq!(p.topo(1).n_init, p.fe_ga(1).population);
        assert_eq!(p.topo(1).n_iter, p.vgae(1).n_iter);
    }
}
