//! On-disk cache of run summaries, so the table/figure binaries can share
//! one set of experiment runs instead of re-simulating.
//!
//! Each run renders to a plain tab-separated text record (human-readable,
//! dependency-free); the records live in one crash-safe [`oa_store`]
//! append-only log at `results/cache/runs.store`, keyed by
//! `run/{profile}/{spec}/{method}/{seed}`. The log gives the cache the
//! same guarantees as the serving layer: an append is fsynced before the
//! run is reported cached, and a crash mid-append costs at most that one
//! record on reopen.

use std::collections::BTreeMap;
use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::{Mutex, OnceLock};

use into_oa::Spec;
use oa_circuit::Topology;
use oa_store::Store;

use crate::profile::Profile;
use crate::runner::{BestDesign, Method, RunPoint, RunSummary};

/// Directory all experiment artifacts live under.
pub fn results_dir() -> PathBuf {
    PathBuf::from(std::env::var("OA_RESULTS_DIR").unwrap_or_else(|_| "results".to_owned()))
}

fn store_path() -> PathBuf {
    results_dir().join("cache").join("runs.store")
}

/// One open [`Store`] handle per log path, shared process-wide: the run
/// matrix executes cells concurrently and the log format assumes a single
/// writer, so every save/load for a given path funnels through the same
/// handle. Keyed by path (not a singleton) because tests repoint
/// `OA_RESULTS_DIR` at scratch directories.
fn with_store<R>(f: impl FnOnce(&mut Store) -> R) -> Option<R> {
    static STORES: OnceLock<Mutex<HashMap<PathBuf, Store>>> = OnceLock::new();
    let path = store_path();
    let mut stores = STORES
        .get_or_init(|| Mutex::new(HashMap::new()))
        .lock()
        .unwrap_or_else(|p| p.into_inner());
    if !stores.contains_key(&path) {
        match Store::open(&path) {
            Ok(store) => {
                stores.insert(path.clone(), store);
            }
            Err(e) => {
                eprintln!("warning: cannot open run cache {}: {e}", path.display());
                return None;
            }
        }
    }
    Some(f(stores.get_mut(&path).expect("just inserted")))
}

fn cache_key(spec_name: &str, method: Method, seed: u64, profile: &Profile) -> Vec<u8> {
    format!(
        "run/{}/{}/{}/{}",
        profile.name,
        spec_name,
        method.label(),
        seed
    )
    .into_bytes()
}

/// Saves a run summary; errors are reported to stderr but not fatal (the
/// cache is an optimization, not a requirement).
pub fn save(summary: &RunSummary, profile: &Profile, spec: &Spec) {
    let key = cache_key(spec.name, summary.method, summary.seed, profile);
    let value = render(summary).into_bytes();
    let outcome = with_store(|store| store.put(&key, &value));
    if let Some(Err(e)) = outcome {
        eprintln!("warning: failed to write run cache: {e}");
    }
}

/// Renders a run summary into the TSV cache format. Floats are written
/// with 17 significant-plus digits (`{:.17e}`), which round-trips every
/// finite `f64` exactly, so `parse_text(render(s)) == s`.
fn render(summary: &RunSummary) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "meta\t{}\t{}\t{}\t{}\n",
        summary.spec_name,
        summary.method.label(),
        summary.seed,
        summary.total_sims
    ));
    if let Some(b) = &summary.best {
        let xs: Vec<String> = b.x.iter().map(|v| format!("{v:.17e}")).collect();
        out.push_str(&format!(
            "best\t{}\t{:.17e}\t{:.17e}\t{:.17e}\t{:.17e}\t{:.17e}\t{}\t{}\n",
            b.topology.index(),
            b.perf.gain_db,
            b.perf.gbw_hz,
            b.perf.pm_deg,
            b.perf.power_w,
            b.fom,
            b.feasible,
            xs.join(",")
        ));
    }
    for p in &summary.points {
        out.push_str(&format!(
            "point\t{}\t{:.17e}\t{}\n",
            p.cum_sims, p.fom, p.feasible
        ));
    }
    // Completion sentinel: defense in depth under the store's checksums —
    // a value cut off at any point, even on a clean line boundary where
    // every surviving line still parses, must miss rather than resurrect
    // a partial run.
    out.push_str("end\n");
    out
}

/// Loads a cached run summary if present and parseable.
pub fn load(spec: &Spec, method: Method, seed: u64, profile: &Profile) -> Option<RunSummary> {
    let key = cache_key(spec.name, method, seed, profile);
    let bytes = with_store(|store| store.get(&key))??;
    parse_text(std::str::from_utf8(&bytes).ok()?, method)
}

/// Strict boolean field: anything but the two literals is corruption.
fn parse_bool(field: &str) -> Option<bool> {
    match field {
        "true" => Some(true),
        "false" => Some(false),
        _ => None,
    }
}

/// Parses the TSV cache format; `None` on anything malformed (missing or
/// truncated `meta` line, unparsable numbers or booleans in recognized
/// records, or a file truncated before the `end` sentinel).
fn parse_text(text: &str, method: Method) -> Option<RunSummary> {
    let mut spec_name = String::new();
    let mut seed = 0u64;
    let mut total_sims = 0usize;
    let mut best = None;
    let mut points = Vec::new();
    let mut complete = false;
    for line in text.lines() {
        let fields: Vec<&str> = line.split('\t').collect();
        match fields.first().copied() {
            Some("end") => complete = true,
            Some("meta") if fields.len() == 5 => {
                spec_name = fields[1].to_owned();
                seed = fields[3].parse().ok()?;
                total_sims = fields[4].parse().ok()?;
            }
            Some("best") if fields.len() == 9 => {
                let topology = Topology::from_index(fields[1].parse().ok()?).ok()?;
                let x: Vec<f64> = if fields[8].is_empty() {
                    Vec::new()
                } else {
                    fields[8]
                        .split(',')
                        .map(str::parse)
                        .collect::<Result<_, _>>()
                        .ok()?
                };
                best = Some(BestDesign {
                    topology,
                    x,
                    perf: oa_sim::OpAmpPerformance {
                        gain_db: fields[2].parse().ok()?,
                        gbw_hz: fields[3].parse().ok()?,
                        pm_deg: fields[4].parse().ok()?,
                        power_w: fields[5].parse().ok()?,
                    },
                    fom: fields[6].parse().ok()?,
                    feasible: parse_bool(fields[7])?,
                });
            }
            Some("point") if fields.len() == 4 => {
                points.push(RunPoint {
                    cum_sims: fields[1].parse().ok()?,
                    fom: fields[2].parse().ok()?,
                    feasible: parse_bool(fields[3])?,
                });
            }
            _ => {}
        }
    }
    if spec_name.is_empty() || !complete {
        return None;
    }
    Some(RunSummary {
        spec_name,
        method,
        seed,
        points,
        best,
        total_sims,
    })
}

/// Loads the run from cache or executes it and caches the result.
pub fn run_cached(spec: &Spec, method: Method, seed: u64, profile: &Profile) -> RunSummary {
    if let Some(cached) = load(spec, method, seed, profile) {
        return cached;
    }
    let summary = crate::runner::run_method(spec, method, seed, profile);
    save(&summary, profile, spec);
    summary
}

/// Executes one spec's (method, seed) experiment matrix on the
/// [`oa_par`] worker pool, with an arbitrary per-cell runner.
///
/// Cells are independent (each owns its seed), and `oa_par::par_map`
/// returns results in input order, so the output is identical to the
/// serial double loop for any `jobs` count. Results are keyed by method
/// with seeds ascending.
pub fn run_matrix_with<F>(
    spec: &Spec,
    methods: &[Method],
    runs: usize,
    profile: &Profile,
    jobs: usize,
    cell: F,
) -> BTreeMap<Method, Vec<RunSummary>>
where
    F: Fn(&Spec, Method, u64, &Profile) -> RunSummary + Sync,
{
    let cells: Vec<(Method, u64)> = methods
        .iter()
        .flat_map(|&m| (0..runs as u64).map(move |s| (m, s)))
        .collect();
    let summaries = oa_par::par_map(cells, jobs, |&(method, seed)| {
        cell(spec, method, seed, profile)
    });
    let mut out: BTreeMap<Method, Vec<RunSummary>> = BTreeMap::new();
    for s in summaries {
        out.entry(s.method).or_default().push(s);
    }
    out
}

/// Executes one spec's (method, seed) matrix concurrently through the
/// on-disk cache — the parallel equivalent of the serial
/// `run_cached`-per-cell loop the table/figure binaries used to run.
/// Degree comes from `OA_JOBS` (default: available parallelism).
///
/// Cache *reads* happen inside the fan-out, but *writes* are deferred
/// and applied in input order afterwards: the store is an append-only
/// log, and saving from inside the workers would make its byte layout
/// follow completion order — breaking the `OA_JOBS`-independence of the
/// result tree (`diff -r` equality) that the perf architecture
/// guarantees. The cost is that a crash mid-matrix re-runs the whole
/// matrix instead of resuming from partial cells.
pub fn run_matrix(
    spec: &Spec,
    methods: &[Method],
    runs: usize,
    profile: &Profile,
) -> BTreeMap<Method, Vec<RunSummary>> {
    let cells: Vec<(Method, u64)> = methods
        .iter()
        .flat_map(|&m| (0..runs as u64).map(move |s| (m, s)))
        .collect();
    let summaries = oa_par::par_map(cells, oa_par::jobs(), |&(method, seed)| {
        match load(spec, method, seed, profile) {
            Some(cached) => (cached, true),
            None => (
                crate::runner::run_method(spec, method, seed, profile),
                false,
            ),
        }
    });
    let mut out: BTreeMap<Method, Vec<RunSummary>> = BTreeMap::new();
    for (summary, was_cached) in summaries {
        if !was_cached {
            save(&summary, profile, spec);
        }
        out.entry(summary.method).or_default().push(summary);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::run_method;

    /// A summary exercising every field, with floats chosen to expose any
    /// lossy formatting (non-terminating binary fractions, subnormal-ish
    /// magnitudes, negatives).
    fn gnarly_summary() -> RunSummary {
        RunSummary {
            spec_name: "S-1".to_owned(),
            method: Method::VgaeBo,
            seed: 123_456_789,
            points: vec![
                RunPoint {
                    cum_sims: 8,
                    fom: 0.1 + 0.2,
                    feasible: false,
                },
                RunPoint {
                    cum_sims: 16,
                    fom: 99.25_f64.next_up(),
                    feasible: true,
                },
            ],
            best: Some(BestDesign {
                topology: Topology::from_index(4321).unwrap(),
                x: vec![
                    1.0 / 3.0,
                    0.7_f64.next_down(),
                    1e-17,
                    0.999_999_999_999_999_9,
                ],
                perf: oa_sim::OpAmpPerformance {
                    gain_db: 91.234_567_890_123_45,
                    gbw_hz: 1.5e6 + 0.375,
                    pm_deg: -61.07,
                    power_w: 1.2e-4 / 3.0,
                },
                fom: 99.25,
                feasible: true,
            }),
            total_sims: 16,
        }
    }

    #[test]
    fn render_parse_roundtrip_is_exact() {
        let summary = gnarly_summary();
        let parsed = parse_text(&render(&summary), summary.method).expect("parses");
        // Full structural equality — in particular `best.x` must
        // round-trip bit-exactly so rehydration reproduces the design.
        assert_eq!(parsed, summary);
        let (a, b) = (parsed.best.unwrap(), summary.best.unwrap());
        for (pa, pb) in a.x.iter().zip(&b.x) {
            assert_eq!(pa.to_bits(), pb.to_bits());
        }
    }

    #[test]
    fn roundtrip_without_best_design() {
        let summary = RunSummary {
            best: None,
            ..gnarly_summary()
        };
        assert_eq!(parse_text(&render(&summary), summary.method), Some(summary));
    }

    #[test]
    fn corrupted_tsv_loads_as_none() {
        for garbage in [
            "",
            "not a cache file at all",
            "meta\tS-1\tINTO-OA\tseven\t16\npoint\t8\t1.0e0\tfalse\n",
            "point\t8\t1.0e0\tfalse\n", // no meta line at all
        ] {
            assert_eq!(parse_text(garbage, Method::IntoOa), None, "{garbage:?}");
        }
    }

    #[test]
    fn truncated_tsv_loads_as_none() {
        let full = render(&gnarly_summary());
        // Cut mid-way through the meta line: the header no longer parses,
        // so the cache misses cleanly instead of resurrecting a bogus run.
        let truncated = &full[..10];
        assert_eq!(parse_text(truncated, Method::VgaeBo), None);
        // Cut on a clean line boundary after the meta line: every
        // surviving record parses, but the `end` sentinel is gone — the
        // file must not resurrect as an empty-but-valid run.
        let meta_only = format!("{}\n", full.lines().next().unwrap());
        assert_eq!(parse_text(&meta_only, Method::VgaeBo), None);
        // A point line with a mangled float is also a clean miss.
        let mangled = full.replace("true", "tr");
        assert_eq!(parse_text(&mangled, Method::VgaeBo), None);
    }

    #[test]
    fn parallel_matrix_matches_serial() {
        // The (method, seed) matrix must be bit-identical whether it runs
        // on one worker or four. Budgets are smoke-scale to keep the test
        // fast; determinism is independent of budget, and the matrix shape
        // (every method × every seed) is what is being exercised.
        let profile = Profile::SMOKE;
        let spec = Spec::s1();
        let serial = run_matrix_with(&spec, &Method::ALL, profile.runs, &profile, 1, run_method);
        let parallel = run_matrix_with(&spec, &Method::ALL, profile.runs, &profile, 4, run_method);
        assert_eq!(serial, parallel);
    }

    #[test]
    fn save_load_roundtrip() {
        let dir = std::env::temp_dir().join(format!("oa_cache_test_{}", std::process::id()));
        std::env::set_var("OA_RESULTS_DIR", &dir);
        let profile = Profile::SMOKE;
        let spec = Spec::s1();
        let summary = RunSummary {
            spec_name: "S-1".to_owned(),
            method: Method::IntoOa,
            seed: 7,
            points: vec![
                RunPoint {
                    cum_sims: 8,
                    fom: 12.5,
                    feasible: false,
                },
                RunPoint {
                    cum_sims: 16,
                    fom: 99.25,
                    feasible: true,
                },
            ],
            best: Some(BestDesign {
                topology: Topology::from_index(1234).unwrap(),
                x: vec![0.25, 0.5, 0.75],
                perf: oa_sim::OpAmpPerformance {
                    gain_db: 91.0,
                    gbw_hz: 1.5e6,
                    pm_deg: 61.0,
                    power_w: 120e-6,
                },
                fom: 99.25,
                feasible: true,
            }),
            total_sims: 16,
        };
        save(&summary, &profile, &spec);
        let loaded = load(&spec, Method::IntoOa, 7, &profile).expect("cache hit");
        assert_eq!(loaded.spec_name, summary.spec_name);
        assert_eq!(loaded.total_sims, 16);
        assert_eq!(loaded.points.len(), 2);
        let b = loaded.best.as_ref().unwrap();
        assert_eq!(b.topology.index(), 1234);
        assert_eq!(b.x.len(), 3);
        assert!(b.feasible);
        assert!((b.fom - 99.25).abs() < 1e-9);
        // Missing entries miss cleanly (same env scope to avoid races
        // between parallel tests on the process-global variable).
        assert!(load(&Spec::s2(), Method::FeGa, 999, &Profile::SMOKE).is_none());

        std::env::remove_var("OA_RESULTS_DIR");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
