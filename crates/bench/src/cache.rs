//! On-disk cache of run summaries, so the table/figure binaries can share
//! one set of experiment runs instead of re-simulating.
//!
//! The format is a plain tab-separated text file under
//! `results/cache/` — human-inspectable and free of external
//! serialization dependencies.

use std::fs;
use std::path::{Path, PathBuf};

use into_oa::Spec;
use oa_circuit::Topology;

use crate::profile::Profile;
use crate::runner::{BestDesign, Method, RunPoint, RunSummary};

/// Directory all experiment artifacts live under.
pub fn results_dir() -> PathBuf {
    PathBuf::from(std::env::var("OA_RESULTS_DIR").unwrap_or_else(|_| "results".to_owned()))
}

fn cache_path(spec: &Spec, method: Method, seed: u64, profile: &Profile) -> PathBuf {
    results_dir().join("cache").join(format!(
        "{}_{}_{}_{}.tsv",
        profile.name,
        spec.name,
        method.label().replace('-', "_"),
        seed
    ))
}

/// Saves a run summary; errors are reported to stderr but not fatal (the
/// cache is an optimization, not a requirement).
pub fn save(summary: &RunSummary, profile: &Profile, spec: &Spec) {
    let path = cache_path(spec, summary.method, summary.seed, profile);
    if let Some(dir) = path.parent() {
        let _ = fs::create_dir_all(dir);
    }
    let mut out = String::new();
    out.push_str(&format!(
        "meta\t{}\t{}\t{}\t{}\n",
        summary.spec_name,
        summary.method.label(),
        summary.seed,
        summary.total_sims
    ));
    if let Some(b) = &summary.best {
        let xs: Vec<String> = b.x.iter().map(|v| format!("{v:.12e}")).collect();
        out.push_str(&format!(
            "best\t{}\t{:.10e}\t{:.10e}\t{:.10e}\t{:.10e}\t{:.10e}\t{}\t{}\n",
            b.topology.index(),
            b.perf.gain_db,
            b.perf.gbw_hz,
            b.perf.pm_deg,
            b.perf.power_w,
            b.fom,
            b.feasible,
            xs.join(",")
        ));
    }
    for p in &summary.points {
        out.push_str(&format!(
            "point\t{}\t{:.10e}\t{}\n",
            p.cum_sims, p.fom, p.feasible
        ));
    }
    if let Err(e) = fs::write(&path, out) {
        eprintln!("warning: failed to write cache {}: {e}", path.display());
    }
}

/// Loads a cached run summary if present and parseable.
pub fn load(spec: &Spec, method: Method, seed: u64, profile: &Profile) -> Option<RunSummary> {
    let path = cache_path(spec, method, seed, profile);
    parse(&path, method)
}

fn parse(path: &Path, method: Method) -> Option<RunSummary> {
    let text = fs::read_to_string(path).ok()?;
    let mut spec_name = String::new();
    let mut seed = 0u64;
    let mut total_sims = 0usize;
    let mut best = None;
    let mut points = Vec::new();
    for line in text.lines() {
        let fields: Vec<&str> = line.split('\t').collect();
        match fields.first().copied() {
            Some("meta") if fields.len() == 5 => {
                spec_name = fields[1].to_owned();
                seed = fields[3].parse().ok()?;
                total_sims = fields[4].parse().ok()?;
            }
            Some("best") if fields.len() == 9 => {
                let topology = Topology::from_index(fields[1].parse().ok()?).ok()?;
                let x: Vec<f64> = if fields[8].is_empty() {
                    Vec::new()
                } else {
                    fields[8]
                        .split(',')
                        .map(str::parse)
                        .collect::<Result<_, _>>()
                        .ok()?
                };
                best = Some(BestDesign {
                    topology,
                    x,
                    perf: oa_sim::OpAmpPerformance {
                        gain_db: fields[2].parse().ok()?,
                        gbw_hz: fields[3].parse().ok()?,
                        pm_deg: fields[4].parse().ok()?,
                        power_w: fields[5].parse().ok()?,
                    },
                    fom: fields[6].parse().ok()?,
                    feasible: fields[7] == "true",
                });
            }
            Some("point") if fields.len() == 4 => {
                points.push(RunPoint {
                    cum_sims: fields[1].parse().ok()?,
                    fom: fields[2].parse().ok()?,
                    feasible: fields[3] == "true",
                });
            }
            _ => {}
        }
    }
    if spec_name.is_empty() {
        return None;
    }
    Some(RunSummary {
        spec_name,
        method,
        seed,
        points,
        best,
        total_sims,
    })
}

/// Loads the run from cache or executes it and caches the result.
pub fn run_cached(spec: &Spec, method: Method, seed: u64, profile: &Profile) -> RunSummary {
    if let Some(cached) = load(spec, method, seed, profile) {
        return cached;
    }
    let summary = crate::runner::run_method(spec, method, seed, profile);
    save(&summary, profile, spec);
    summary
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn save_load_roundtrip() {
        let dir = std::env::temp_dir().join(format!("oa_cache_test_{}", std::process::id()));
        std::env::set_var("OA_RESULTS_DIR", &dir);
        let profile = Profile::SMOKE;
        let spec = Spec::s1();
        let summary = RunSummary {
            spec_name: "S-1".to_owned(),
            method: Method::IntoOa,
            seed: 7,
            points: vec![
                RunPoint {
                    cum_sims: 8,
                    fom: 12.5,
                    feasible: false,
                },
                RunPoint {
                    cum_sims: 16,
                    fom: 99.25,
                    feasible: true,
                },
            ],
            best: Some(BestDesign {
                topology: Topology::from_index(1234).unwrap(),
                x: vec![0.25, 0.5, 0.75],
                perf: oa_sim::OpAmpPerformance {
                    gain_db: 91.0,
                    gbw_hz: 1.5e6,
                    pm_deg: 61.0,
                    power_w: 120e-6,
                },
                fom: 99.25,
                feasible: true,
            }),
            total_sims: 16,
        };
        save(&summary, &profile, &spec);
        let loaded = load(&spec, Method::IntoOa, 7, &profile).expect("cache hit");
        assert_eq!(loaded.spec_name, summary.spec_name);
        assert_eq!(loaded.total_sims, 16);
        assert_eq!(loaded.points.len(), 2);
        let b = loaded.best.as_ref().unwrap();
        assert_eq!(b.topology.index(), 1234);
        assert_eq!(b.x.len(), 3);
        assert!(b.feasible);
        assert!((b.fom - 99.25).abs() < 1e-9);
        // Missing entries miss cleanly (same env scope to avoid races
        // between parallel tests on the process-global variable).
        assert!(load(&Spec::s2(), Method::FeGa, 999, &Profile::SMOKE).is_none());

        std::env::remove_var("OA_RESULTS_DIR");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
