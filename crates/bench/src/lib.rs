//! Benchmark and experiment-reproduction harness for the INTO-OA
//! reproduction.
//!
//! The binaries in `src/bin/` regenerate every table and figure of the
//! paper's evaluation section (see DESIGN.md §3 for the full index):
//!
//! | target | reproduces |
//! |---|---|
//! | `table1` | Table I — design-specification sets |
//! | `fig5` | Fig. 5 — optimization curves (CSV per spec) |
//! | `table2` | Table II — success rate / final FoM / #sim / speedup |
//! | `table3` | Table III — best behavior-level performance |
//! | `fig6_critical` | §IV-B — WL-GP gradients vs. sensitivity analysis |
//! | `table4_refine` | Fig. 7 + Table IV — topology refinement |
//! | `table5_xtor` | Table V — transistor-level validation |
//!
//! Budgets are scaled by [`Profile`] (`OA_PROFILE=paper|quick|smoke`), and
//! runs are cached under `results/cache/` so the binaries share work.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod args;
mod cache;
mod profile;
mod report;
mod runner;

pub use args::check_args;
pub use cache::{load, results_dir, run_cached, run_matrix, run_matrix_with, save};
pub use profile::Profile;
pub use report::{fmt_opt, mean_curve, reference_fom, sim_grid, table2_stats, CellStats};
pub use runner::{rehydrate, run_method, BestDesign, Method, RunPoint, RunSummary};
