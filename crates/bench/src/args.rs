//! Shared command-line handling for the table/figure binaries.
//!
//! None of the reproduction binaries take positional arguments or flags —
//! all knobs are environment variables — but every binary should still
//! answer `--help` and reject typos instead of silently ignoring them.

use std::process::exit;

/// Handles `--help`/`-h` (usage on stdout, exit 0) and rejects any other
/// argument (usage on stderr, exit 2). Call first thing in `main` with
/// the binary name and a one-line summary.
pub fn check_args(bin: &str, about: &str) {
    let usage = format!(
        "{bin} — {about}

USAGE:
    {bin}

All configuration is via environment variables:
    OA_PROFILE       Budget scale: paper | quick | smoke (default quick)
    OA_JOBS          Worker threads (default: detected cores)
    OA_RESULTS_DIR   Artifact/cache directory (default: results)

OPTIONS:
    -h, --help       Print this help
"
    );
    if let Some(arg) = std::env::args().nth(1) {
        if arg == "--help" || arg == "-h" {
            print!("{usage}");
            exit(0);
        }
        eprintln!("error: unexpected argument '{arg}'\n\n{usage}");
        exit(2);
    }
}
