//! Aggregation of run summaries into the paper's table rows.

use std::collections::BTreeMap;

use crate::runner::{Method, RunSummary};

/// Aggregated statistics for one `(spec, method)` cell of Table II.
#[derive(Debug, Clone, PartialEq)]
pub struct CellStats {
    /// `(successful runs, total runs)` — the "Suc. Rate" column.
    pub success: (usize, usize),
    /// Mean final FoM over successful runs — the "Final FoM" column.
    pub final_fom: Option<f64>,
    /// Mean simulations to reach the reference FoM, over runs that reached
    /// it — the "# Sim." column.
    pub sims_to_ref: Option<f64>,
    /// Speedup relative to the slowest method — the "Sim. Speedup" column.
    pub speedup: Option<f64>,
}

/// Computes Table II statistics for one spec from all methods' runs.
///
/// The reference FoM (the paper's dashed line in Fig. 5) is the smallest
/// mean final FoM among methods with at least one successful run, so every
/// method has a fair chance of reaching it.
pub fn table2_stats(runs: &BTreeMap<Method, Vec<RunSummary>>) -> BTreeMap<Method, CellStats> {
    let reference = reference_fom(runs);
    let mut cells: BTreeMap<Method, CellStats> = BTreeMap::new();
    for (&method, rs) in runs {
        let total = rs.len();
        let succ = rs.iter().filter(|r| r.success()).count();
        let final_fom = mean(rs.iter().filter_map(RunSummary::final_fom));
        let sims_to_ref = reference.and_then(|target| {
            mean(
                rs.iter()
                    .filter_map(|r| r.sims_to_reach(target).map(|s| s as f64)),
            )
        });
        cells.insert(
            method,
            CellStats {
                success: (succ, total),
                final_fom,
                sims_to_ref,
                speedup: None,
            },
        );
    }
    // Speedup vs. the slowest method that reached the reference.
    let slowest = cells
        .values()
        .filter_map(|c| c.sims_to_ref)
        .fold(None, |acc: Option<f64>, v| {
            Some(acc.map_or(v, |a| a.max(v)))
        });
    if let Some(slowest) = slowest {
        for c in cells.values_mut() {
            c.speedup = c.sims_to_ref.map(|s| slowest / s);
        }
    }
    cells
}

/// The reference FoM target for a spec (see [`table2_stats`]).
pub fn reference_fom(runs: &BTreeMap<Method, Vec<RunSummary>>) -> Option<f64> {
    runs.values()
        .filter_map(|rs| mean(rs.iter().filter_map(RunSummary::final_fom)))
        .fold(None, |acc: Option<f64>, v| {
            Some(acc.map_or(v, |a| a.min(v)))
        })
}

/// Mean best-so-far feasible FoM across runs, sampled on a cumulative-
/// simulation grid. Runs that have not yet found a feasible design at a
/// grid point contribute nothing to the mean at that point.
pub fn mean_curve(runs: &[RunSummary], grid: &[usize]) -> Vec<Option<f64>> {
    let per_run: Vec<Vec<Option<f64>>> = runs.iter().map(|r| r.curve_on_grid(grid)).collect();
    (0..grid.len())
        .map(|i| mean(per_run.iter().filter_map(|c| c[i])))
        .collect()
}

/// A common simulation grid covering every run.
pub fn sim_grid(runs: &[RunSummary], points: usize) -> Vec<usize> {
    let max = runs.iter().map(|r| r.total_sims).max().unwrap_or(1);
    (1..=points.max(1))
        .map(|i| i * max / points.max(1))
        .collect()
}

fn mean<I: IntoIterator<Item = f64>>(values: I) -> Option<f64> {
    let mut sum = 0.0;
    let mut n = 0usize;
    for v in values {
        sum += v;
        n += 1;
    }
    if n == 0 {
        None
    } else {
        Some(sum / n as f64)
    }
}

/// Formats an optional statistic for table printing.
pub fn fmt_opt(v: Option<f64>, width: usize, precision: usize) -> String {
    match v {
        Some(x) => format!("{x:>width$.precision$}"),
        None => format!("{:>width$}", "-"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::RunPoint;

    fn run(method: Method, seed: u64, points: Vec<(usize, f64, bool)>) -> RunSummary {
        RunSummary {
            spec_name: "S-1".to_owned(),
            method,
            seed,
            total_sims: points.last().map(|p| p.0).unwrap_or(0),
            points: points
                .into_iter()
                .map(|(cum_sims, fom, feasible)| RunPoint {
                    cum_sims,
                    fom,
                    feasible,
                })
                .collect(),
            best: None,
        }
    }

    fn sample_runs() -> BTreeMap<Method, Vec<RunSummary>> {
        let mut m = BTreeMap::new();
        // Fast method: reaches FoM 100 by 40 sims in both runs.
        m.insert(
            Method::IntoOa,
            vec![
                run(Method::IntoOa, 0, vec![(20, 60.0, true), (40, 120.0, true)]),
                run(
                    Method::IntoOa,
                    1,
                    vec![(20, 110.0, true), (40, 130.0, true)],
                ),
            ],
        );
        // Slow method: reaches only 100 at 200 sims; one failed run.
        m.insert(
            Method::FeGa,
            vec![
                run(Method::FeGa, 0, vec![(100, 40.0, true), (200, 100.0, true)]),
                run(
                    Method::FeGa,
                    1,
                    vec![(100, 10.0, false), (200, 20.0, false)],
                ),
            ],
        );
        m
    }

    #[test]
    fn success_rate_counts_feasible_runs() {
        let stats = table2_stats(&sample_runs());
        assert_eq!(stats[&Method::IntoOa].success, (2, 2));
        assert_eq!(stats[&Method::FeGa].success, (1, 2));
    }

    #[test]
    fn reference_is_weakest_methods_mean() {
        // INTO-OA mean final = 125; FE-GA mean final (successful only) = 100.
        let reference = reference_fom(&sample_runs()).unwrap();
        assert!((reference - 100.0).abs() < 1e-9);
    }

    #[test]
    fn speedup_is_relative_to_slowest() {
        let stats = table2_stats(&sample_runs());
        // FE-GA reaches 100 at 200 sims → speedup 1.0.
        assert!((stats[&Method::FeGa].speedup.unwrap() - 1.0).abs() < 1e-9);
        // INTO-OA reaches 100 at 40 (run 0: fom 120 ≥ 100 at 40; run 1: 110
        // at 20) → mean 30 → speedup 200/30.
        let s = stats[&Method::IntoOa].speedup.unwrap();
        assert!((s - 200.0 / 30.0).abs() < 1e-9, "speedup {s}");
    }

    #[test]
    fn mean_curve_averages_available_runs() {
        let runs = sample_runs()[&Method::FeGa].clone();
        let grid = vec![100, 200];
        let curve = mean_curve(&runs, &grid);
        // At 100 sims only run 0 is feasible (40); at 200 still only run 0
        // (100).
        assert_eq!(curve, vec![Some(40.0), Some(100.0)]);
    }

    #[test]
    fn sim_grid_spans_longest_run() {
        let runs = sample_runs()[&Method::FeGa].clone();
        let grid = sim_grid(&runs, 4);
        assert_eq!(grid, vec![50, 100, 150, 200]);
    }

    #[test]
    fn fmt_opt_handles_missing() {
        assert_eq!(fmt_opt(None, 6, 1), "     -");
        assert_eq!(fmt_opt(Some(3.25), 6, 1), "   3.2");
    }
}
