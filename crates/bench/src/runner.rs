//! Unified experiment runner: every method (INTO-OA family and baselines)
//! drives the same evaluation oracle, so comparisons are budget-matched.

use into_oa::{optimize, CandidateStrategy, Evaluator, IntoOaConfig, Spec};
use oa_baselines::{fe_ga, vgae_bo};
use oa_bo::TopoObservation;
use oa_circuit::{ParamSpace, Topology};
use oa_sim::OpAmpPerformance;

use crate::profile::Profile;

/// One of the five compared methods.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Method {
    /// Genetic algorithm with feature embedding \[14\].
    FeGa,
    /// BO with a (linear) graph-autoencoder latent space \[16\].
    VgaeBo,
    /// INTO-OA with random-only candidates (ablation).
    IntoOaR,
    /// INTO-OA with mutation-only candidates (ablation).
    IntoOaM,
    /// Full INTO-OA (half mutation, half random).
    IntoOa,
}

impl Method {
    /// All methods in the paper's table order.
    pub const ALL: [Method; 5] = [
        Method::FeGa,
        Method::VgaeBo,
        Method::IntoOaR,
        Method::IntoOaM,
        Method::IntoOa,
    ];

    /// Display label matching the paper's tables.
    pub fn label(self) -> &'static str {
        match self {
            Method::FeGa => "FE-GA",
            Method::VgaeBo => "VGAE-BO",
            Method::IntoOaR => "INTO-OA-r",
            Method::IntoOaM => "INTO-OA-m",
            Method::IntoOa => "INTO-OA",
        }
    }
}

/// One evaluated topology in a unified run record.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RunPoint {
    /// Cumulative simulations after this topology's sizing.
    pub cum_sims: usize,
    /// The topology's best FoM.
    pub fom: f64,
    /// Whether the sized design met the spec.
    pub feasible: bool,
}

/// The best design of a run, with enough information to re-elaborate it
/// (for Table III metrics and the Table V transistor mapping).
#[derive(Debug, Clone, PartialEq)]
pub struct BestDesign {
    /// The topology.
    pub topology: Topology,
    /// Normalized sizing vector (decode with the topology's
    /// [`ParamSpace`]).
    pub x: Vec<f64>,
    /// Measured behavior-level performance.
    pub perf: OpAmpPerformance,
    /// FoM under the spec's load.
    pub fom: f64,
    /// Whether the design met the spec.
    pub feasible: bool,
}

/// Unified record of one optimization run.
#[derive(Debug, Clone, PartialEq)]
pub struct RunSummary {
    /// Spec name (e.g. `"S-1"`).
    pub spec_name: String,
    /// The method that produced the run.
    pub method: Method,
    /// Run seed.
    pub seed: u64,
    /// Per-topology progress points.
    pub points: Vec<RunPoint>,
    /// Best design (feasible-first ranking).
    pub best: Option<BestDesign>,
    /// Total simulations, including failed sizing attempts.
    pub total_sims: usize,
}

impl RunSummary {
    /// Returns `true` if any design met the spec.
    pub fn success(&self) -> bool {
        self.points.iter().any(|p| p.feasible)
    }

    /// Best feasible FoM at the end of the run.
    pub fn final_fom(&self) -> Option<f64> {
        self.points
            .iter()
            .filter(|p| p.feasible)
            .map(|p| p.fom)
            .fold(None, |acc: Option<f64>, v| {
                Some(acc.map_or(v, |a| a.max(v)))
            })
    }

    /// Simulations needed to first reach a feasible FoM ≥ `target`.
    pub fn sims_to_reach(&self, target: f64) -> Option<usize> {
        self.points
            .iter()
            .find(|p| p.feasible && p.fom >= target)
            .map(|p| p.cum_sims)
    }

    /// Best-so-far feasible FoM as a step function over cumulative
    /// simulations, sampled at `grid`.
    pub fn curve_on_grid(&self, grid: &[usize]) -> Vec<Option<f64>> {
        grid.iter()
            .map(|&g| {
                self.points
                    .iter()
                    .take_while(|p| p.cum_sims <= g)
                    .filter(|p| p.feasible)
                    .map(|p| p.fom)
                    .fold(None, |acc: Option<f64>, v| {
                        Some(acc.map_or(v, |a| a.max(v)))
                    })
            })
            .collect()
    }
}

/// Runs one method on one spec with one seed at the given profile scale.
pub fn run_method(spec: &Spec, method: Method, seed: u64, profile: &Profile) -> RunSummary {
    match method {
        Method::IntoOa | Method::IntoOaR | Method::IntoOaM => {
            run_into_oa(spec, method, seed, profile)
        }
        Method::FeGa | Method::VgaeBo => run_baseline(spec, method, seed, profile),
    }
}

fn best_design_from(d: &into_oa::SizedDesign) -> BestDesign {
    let space = ParamSpace::for_topology(&d.topology);
    BestDesign {
        topology: d.topology,
        x: space.encode(&d.values),
        perf: d.performance,
        fom: d.fom,
        feasible: d.feasible,
    }
}

fn run_into_oa(spec: &Spec, method: Method, seed: u64, profile: &Profile) -> RunSummary {
    let strategy = match method {
        Method::IntoOa => CandidateStrategy::Mixed,
        Method::IntoOaR => CandidateStrategy::RandomOnly,
        Method::IntoOaM => CandidateStrategy::MutationOnly,
        _ => unreachable!("baselines handled separately"),
    };
    let config = IntoOaConfig {
        topo: profile.topo(seed),
        sizing: profile.sizing(seed),
        strategy,
        ..IntoOaConfig::default()
    };
    let run = optimize(spec, &config);
    let points = run
        .records
        .iter()
        .map(|r| RunPoint {
            cum_sims: r.cum_sims,
            fom: r.design.fom,
            feasible: r.design.feasible,
        })
        .collect();
    RunSummary {
        spec_name: spec.name.to_owned(),
        method,
        seed,
        points,
        best: run.best_design().map(best_design_from),
        total_sims: run.total_sims,
    }
}

fn run_baseline(spec: &Spec, method: Method, seed: u64, profile: &Profile) -> RunSummary {
    let evaluator = Evaluator::new(*spec);
    let sizing = profile.sizing(seed);
    let mut cum_sims = 0usize;
    let mut points: Vec<RunPoint> = Vec::new();
    let mut designs: Vec<into_oa::SizedDesign> = Vec::new();

    let mut oracle = |t: &Topology| -> Option<TopoObservation> {
        let (design, sims) = evaluator.size(t, &sizing);
        cum_sims += sims;
        let design = design?;
        points.push(RunPoint {
            cum_sims,
            fom: design.fom,
            feasible: design.feasible,
        });
        let obs = TopoObservation {
            objective: design.fom.max(1.0).log10(),
            constraints: spec.constraints(&design.performance),
            metrics: vec![],
        };
        designs.push(design);
        Some(obs)
    };

    let baseline_run = match method {
        Method::FeGa => fe_ga(&profile.fe_ga(seed), &mut oracle),
        Method::VgaeBo => vgae_bo(&profile.vgae(seed), &mut oracle),
        _ => unreachable!("INTO-OA family handled separately"),
    };

    let best = baseline_run
        .best
        .and_then(|i| designs.get(i))
        .map(best_design_from);
    RunSummary {
        spec_name: spec.name.to_owned(),
        method,
        seed,
        points,
        best,
        total_sims: cum_sims,
    }
}

/// Re-measures a cached best design (used by Tables III and V).
pub fn rehydrate(spec: &Spec, best: &BestDesign) -> Option<into_oa::SizedDesign> {
    let evaluator = Evaluator::new(*spec);
    let space = ParamSpace::for_topology(&best.topology);
    let values = space.decode(&best.x).ok()?;
    let perf = evaluator.simulate(&best.topology, &values).ok()?;
    Some(evaluator.design_from(best.topology, values, perf))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_methods_run_at_smoke_scale() {
        let profile = Profile::SMOKE;
        for method in Method::ALL {
            let run = run_method(&Spec::s1(), method, 0, &profile);
            assert_eq!(run.method, method);
            assert!(
                !run.points.is_empty(),
                "{} produced no points",
                method.label()
            );
            assert!(run.total_sims > 0);
            // Points are ordered by cumulative simulations.
            for w in run.points.windows(2) {
                assert!(w[1].cum_sims > w[0].cum_sims);
            }
        }
    }

    #[test]
    fn rehydrated_design_matches_cached_performance() {
        let run = run_method(&Spec::s1(), Method::IntoOa, 1, &Profile::SMOKE);
        if let Some(best) = &run.best {
            let d = rehydrate(&Spec::s1(), best).expect("rehydrates");
            assert!((d.fom - best.fom).abs() / best.fom.max(1e-9) < 1e-6);
            assert_eq!(d.feasible, best.feasible);
        }
    }

    #[test]
    fn curve_on_grid_is_monotone() {
        let run = run_method(&Spec::s1(), Method::IntoOa, 2, &Profile::SMOKE);
        let grid: Vec<usize> = (0..10).map(|i| i * run.total_sims / 9).collect();
        let curve = run.curve_on_grid(&grid);
        let mut prev = f64::NEG_INFINITY;
        for v in curve.into_iter().flatten() {
            assert!(v >= prev);
            prev = v;
        }
    }

    #[test]
    fn labels_match_paper() {
        assert_eq!(Method::FeGa.label(), "FE-GA");
        assert_eq!(Method::VgaeBo.label(), "VGAE-BO");
        assert_eq!(Method::IntoOa.label(), "INTO-OA");
    }
}
