//! Benchmarks the three MNA solver tiers on one representative
//! elaborated three-stage netlist at the default AC grid density
//! (~241 log-spaced points over 12 decades):
//!
//! * naive — per-point netlist re-walk and dense assembly
//!   (`MnaSystem::transfer`);
//! * prepared — one `prepare()`, then per-point dense refactoring
//!   (`PreparedSweep::transfer_dense`);
//! * symbolic — cached symbolic factorization plan plus the SoA-batched
//!   sweep (`PreparedSweep::sweep`), the production `ac_sweep` path.
//!
//! The measured ratios back the `BENCH_ac_sweep.json` baseline at the
//! repository root.

use criterion::{criterion_group, criterion_main, Criterion};
use oa_circuit::{
    elaborate, GmComposite, GmDirection, GmPolarity, ParamSpace, PassiveKind, Process,
    SubcircuitType, Topology, VariableEdge,
};
use oa_sim::{MnaSystem, PlanCache};

const DECADES: usize = 12;
const POINTS_PER_DECADE: usize = 20;
const F_START: f64 = 1.0;

fn three_stage_netlist() -> oa_circuit::Netlist {
    // Three-stage cascade with every variable edge populated (Miller RC
    // compensation, feedforward gms, load passives) — the dense end of
    // what Algorithm 1 proposes, 21 elements over a dim-7 MNA system.
    let gm = |direction| SubcircuitType::Gm {
        polarity: GmPolarity::Plus,
        direction,
        composite: GmComposite::Bare,
    };
    let t = Topology::bare_cascade()
        .with_type(
            VariableEdge::V1Vout,
            SubcircuitType::Passive(PassiveKind::SeriesRc),
        )
        .and_then(|t| t.with_type(VariableEdge::VinV2, gm(GmDirection::Forward)))
        .and_then(|t| t.with_type(VariableEdge::VinVout, gm(GmDirection::Forward)))
        .and_then(|t| t.with_type(VariableEdge::V1Gnd, SubcircuitType::Passive(PassiveKind::C)))
        .and_then(|t| {
            t.with_type(
                VariableEdge::V2Gnd,
                SubcircuitType::Passive(PassiveKind::SeriesRc),
            )
        })
        .expect("legal");
    let space = ParamSpace::for_topology(&t);
    elaborate(&t, &space.nominal(), &Process::default(), 10e-12).expect("elaborates")
}

fn grid() -> Vec<f64> {
    let n = DECADES * POINTS_PER_DECADE + 1;
    (0..n)
        .map(|i| F_START * 10f64.powf(i as f64 / POINTS_PER_DECADE as f64))
        .collect()
}

fn bench_naive_sweep(c: &mut Criterion) {
    let netlist = three_stage_netlist();
    let freqs = grid();
    let sys = MnaSystem::new(&netlist, 1e-12);
    c.bench_function("ac_sweep_naive_241pts", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for &f in &freqs {
                acc += sys.transfer(f).expect("solves").abs();
            }
            std::hint::black_box(acc)
        })
    });
}

fn bench_prepared_sweep(c: &mut Criterion) {
    let netlist = three_stage_netlist();
    let freqs = grid();
    let sys = MnaSystem::new(&netlist, 1e-12);
    c.bench_function("ac_sweep_prepared_241pts", |b| {
        b.iter(|| {
            // Includes the one-off G/C stamping, exactly as `ac_sweep` pays it.
            let mut prepared = sys.prepare().expect("prepares");
            let mut acc = 0.0;
            for &f in &freqs {
                acc += prepared.transfer_dense(f).expect("solves").abs();
            }
            std::hint::black_box(acc)
        })
    });
}

fn bench_symbolic_sweep(c: &mut Criterion) {
    let netlist = three_stage_netlist();
    let freqs = grid();
    let sys = MnaSystem::new(&netlist, 1e-12);
    // Steady-state sizing-BO shape: the pattern was analyzed on some
    // earlier evaluation, so the per-iteration cost is one cache probe,
    // stamping, and the SoA-batched factor/solve over the grid.
    let cache = PlanCache::new();
    let _ = sys
        .prepare_with_cache(Some(&cache))
        .expect("warms the cache");
    c.bench_function("ac_sweep_symbolic_241pts", |b| {
        b.iter(|| {
            let mut prepared = sys.prepare_with_cache(Some(&cache)).expect("prepares");
            let response = prepared.sweep(&freqs).expect("solves");
            let acc: f64 = response.iter().map(|h| h.abs()).sum();
            std::hint::black_box(acc)
        })
    });
}

fn bench_prepared_point(c: &mut Criterion) {
    let netlist = three_stage_netlist();
    let sys = MnaSystem::new(&netlist, 1e-12);
    let mut prepared = sys.prepare().expect("prepares");
    c.bench_function("ac_transfer_prepared_single_freq", |b| {
        let mut k = 0u32;
        b.iter(|| {
            k = k.wrapping_add(1);
            let f = 1e3 * (1.0 + (k % 100) as f64);
            std::hint::black_box(prepared.transfer(f).expect("solves"))
        })
    });
}

criterion_group!(
    benches,
    bench_naive_sweep,
    bench_prepared_sweep,
    bench_symbolic_sweep,
    bench_prepared_point
);
criterion_main!(benches);
