//! Aggregate evaluation throughput — the capacity number of the whole
//! reproduction.
//!
//! One "eval" is everything a sizing-BO iteration or an `oa-serve`
//! request pays per design point: elaboration of a sized topology, the
//! full 241-point AC sweep, unity-crossing bisection, and metric
//! extraction (`evaluate_opamp`). Two rows:
//!
//! * `eval_full_cached` — the production path, sharing one symbolic
//!   [`PlanCache`] across iterations exactly as `into_oa::Evaluator`
//!   does. `evals/sec = 1e9 / (ns per iter)` is the number recorded in
//!   `BENCH_evals_per_sec.json`.
//! * `eval_full_uncached` — the same work with a cold plan every time,
//!   isolating what the cache is worth at this workload's scale.
//!
//! Sizing points rotate through a fixed wheel so device values vary
//! between iterations the way BO proposals do; the sparsity pattern (and
//! therefore the cached plan) stays put, which is exactly the reuse the
//! cache is built around.

use criterion::{criterion_group, criterion_main, Criterion};
use oa_circuit::{
    DeviceValues, GmComposite, GmDirection, GmPolarity, ParamSpace, PassiveKind, Process,
    SubcircuitType, Topology, VariableEdge,
};
use oa_sim::{evaluate_opamp_cached, AcOptions, PlanCache};

/// Load capacitance of the paper's S-1 spec.
const CL_FARADS: f64 = 10e-12;
/// Number of distinct sizing points rotated through per benchmark.
const WHEEL: usize = 16;

fn dense_three_stage() -> Topology {
    // Same dense three-stage cascade as the ac_sweep bench: all five
    // variable edges populated, 21 elements, dim-7 MNA.
    let gm = |direction| SubcircuitType::Gm {
        polarity: GmPolarity::Plus,
        direction,
        composite: GmComposite::Bare,
    };
    Topology::bare_cascade()
        .with_type(
            VariableEdge::V1Vout,
            SubcircuitType::Passive(PassiveKind::SeriesRc),
        )
        .and_then(|t| t.with_type(VariableEdge::VinV2, gm(GmDirection::Forward)))
        .and_then(|t| t.with_type(VariableEdge::VinVout, gm(GmDirection::Forward)))
        .and_then(|t| t.with_type(VariableEdge::V1Gnd, SubcircuitType::Passive(PassiveKind::C)))
        .and_then(|t| {
            t.with_type(
                VariableEdge::V2Gnd,
                SubcircuitType::Passive(PassiveKind::SeriesRc),
            )
        })
        .expect("legal")
}

/// A deterministic wheel of interior sizing points (no RNG: the k-th
/// point spreads each coordinate over the middle of the unit cube).
fn sizing_wheel(topology: &Topology) -> Vec<DeviceValues> {
    let space = ParamSpace::for_topology(topology);
    let dim = space.dim();
    (0..WHEEL)
        .map(|k| {
            let x: Vec<f64> = (0..dim)
                .map(|j| {
                    let spread = (k * dim + j) as f64 / (WHEEL * dim) as f64;
                    0.2 + 0.6 * spread
                })
                .collect();
            space.decode(&x).expect("interior points decode")
        })
        .collect()
}

fn bench_eval_full_cached(c: &mut Criterion) {
    let topology = dense_three_stage();
    let wheel = sizing_wheel(&topology);
    let process = Process::default();
    let opts = AcOptions::default();
    let cache = PlanCache::new();
    c.bench_function("eval_full_cached", |b| {
        let mut k = 0usize;
        b.iter(|| {
            k = k.wrapping_add(1);
            let values = &wheel[k % WHEEL];
            let perf =
                evaluate_opamp_cached(&topology, values, &process, CL_FARADS, &opts, Some(&cache))
                    .expect("evaluates");
            std::hint::black_box(perf.gbw_hz)
        })
    });
}

fn bench_eval_full_uncached(c: &mut Criterion) {
    let topology = dense_three_stage();
    let wheel = sizing_wheel(&topology);
    let process = Process::default();
    let opts = AcOptions::default();
    c.bench_function("eval_full_uncached", |b| {
        let mut k = 0usize;
        b.iter(|| {
            k = k.wrapping_add(1);
            let values = &wheel[k % WHEEL];
            let perf = evaluate_opamp_cached(&topology, values, &process, CL_FARADS, &opts, None)
                .expect("evaluates");
            std::hint::black_box(perf.gbw_hz)
        })
    });
}

criterion_group!(benches, bench_eval_full_cached, bench_eval_full_uncached);
criterion_main!(benches);
