//! Microbenchmarks of the candidate-generation primitives of Section
//! III-D: uniform sampling, mutation, and encoding round-trips — the
//! per-iteration cost of building Algorithm 1's candidate pool.

use criterion::{criterion_group, criterion_main, Criterion};
use oa_circuit::Topology;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn bench_random_sampling(c: &mut Criterion) {
    let mut rng = ChaCha8Rng::seed_from_u64(1);
    c.bench_function("topology_random_sample", |b| {
        b.iter(|| std::hint::black_box(Topology::random(&mut rng)))
    });
}

fn bench_mutation(c: &mut Criterion) {
    let mut rng = ChaCha8Rng::seed_from_u64(2);
    let base = Topology::random(&mut rng);
    c.bench_function("topology_mutate", |b| {
        b.iter(|| std::hint::black_box(base.mutate(&mut rng)))
    });
}

fn bench_index_roundtrip(c: &mut Criterion) {
    c.bench_function("topology_index_roundtrip", |b| {
        let mut i = 0usize;
        b.iter(|| {
            i = (i + 9973) % oa_circuit::DESIGN_SPACE_SIZE;
            let t = Topology::from_index(i).expect("in range");
            std::hint::black_box(t.index())
        })
    });
}

fn bench_pool_of_200(c: &mut Criterion) {
    let mut rng = ChaCha8Rng::seed_from_u64(3);
    let elites: Vec<Topology> = (0..5).map(|_| Topology::random(&mut rng)).collect();
    c.bench_function("candidate_pool_200_mixed", |b| {
        b.iter(|| {
            let mut pool = Vec::with_capacity(200);
            for k in 0..200 {
                if k % 2 == 0 {
                    pool.push(elites[k % elites.len()].mutate(&mut rng));
                } else {
                    pool.push(Topology::random(&mut rng));
                }
            }
            std::hint::black_box(pool.len())
        })
    });
}

criterion_group!(
    benches,
    bench_random_sampling,
    bench_mutation,
    bench_index_roundtrip,
    bench_pool_of_200
);
criterion_main!(benches);
