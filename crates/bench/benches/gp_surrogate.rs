//! Microbenchmarks of the WL-GP surrogate: training (hyperparameter grid +
//! Cholesky) and posterior prediction at the paper's data scale (up to 60
//! observed topologies per run).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use oa_circuit::Topology;
use oa_gp::WlGp;
use oa_graph::{CircuitGraph, WlFeatures, WlFeaturizer};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn dataset(n: usize) -> (Vec<WlFeatures>, Vec<f64>) {
    let mut rng = ChaCha8Rng::seed_from_u64(7);
    let mut wl = WlFeaturizer::new();
    let feats: Vec<WlFeatures> = (0..n)
        .map(|_| wl.featurize(&CircuitGraph::from_topology(&Topology::random(&mut rng)), 4))
        .collect();
    let y: Vec<f64> = (0..n).map(|i| (i as f64 * 0.37).sin() * 10.0).collect();
    (feats, y)
}

fn bench_fit(c: &mut Criterion) {
    let mut group = c.benchmark_group("wlgp_fit");
    group.sample_size(20);
    for n in [20usize, 40, 60] {
        let (feats, y) = dataset(n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| {
                let gp = WlGp::fit(feats.clone(), y.clone()).expect("fits");
                std::hint::black_box(gp.hyperparams().h)
            })
        });
    }
    group.finish();
}

fn bench_predict(c: &mut Criterion) {
    let (feats, y) = dataset(60);
    let gp = WlGp::fit(feats.clone(), y).expect("fits");
    c.bench_function("wlgp_predict_n60", |b| {
        let mut i = 0;
        b.iter(|| {
            let (m, v) = gp.predict(&feats[i % feats.len()]).expect("predicts");
            i += 1;
            std::hint::black_box(m + v)
        })
    });
}

fn bench_gradient(c: &mut Criterion) {
    let (feats, y) = dataset(60);
    let gp = WlGp::fit(feats, y).expect("fits");
    c.bench_function("wlgp_feature_gradient", |b| {
        let mut id = 0u32;
        b.iter(|| {
            id = (id + 1) % 64;
            std::hint::black_box(gp.feature_gradient(id))
        })
    });
}

criterion_group!(benches, bench_fit, bench_predict, bench_gradient);
criterion_main!(benches);
