//! Microbenchmarks of the WL kernel: graph construction, feature
//! extraction at several depths, and kernel evaluation — the per-candidate
//! cost inside Algorithm 1's acquisition loop.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use oa_circuit::Topology;
use oa_graph::{CircuitGraph, WlFeaturizer};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn bench_graph_construction(c: &mut Criterion) {
    let mut rng = ChaCha8Rng::seed_from_u64(1);
    let topologies: Vec<Topology> = (0..64).map(|_| Topology::random(&mut rng)).collect();
    c.bench_function("circuit_graph_from_topology", |b| {
        let mut i = 0;
        b.iter(|| {
            let g = CircuitGraph::from_topology(&topologies[i % topologies.len()]);
            i += 1;
            std::hint::black_box(g.node_count())
        })
    });
}

fn bench_featurize(c: &mut Criterion) {
    let mut rng = ChaCha8Rng::seed_from_u64(2);
    let graphs: Vec<CircuitGraph> = (0..64)
        .map(|_| CircuitGraph::from_topology(&Topology::random(&mut rng)))
        .collect();
    let mut group = c.benchmark_group("wl_featurize");
    for h in [0usize, 2, 4, 6] {
        group.bench_with_input(BenchmarkId::from_parameter(h), &h, |b, &h| {
            let mut wl = WlFeaturizer::new();
            let mut i = 0;
            b.iter(|| {
                let f = wl.featurize(&graphs[i % graphs.len()], h);
                i += 1;
                std::hint::black_box(f.max_h())
            })
        });
    }
    group.finish();
}

fn bench_featurize_memoized(c: &mut Criterion) {
    let mut rng = ChaCha8Rng::seed_from_u64(2);
    let topologies: Vec<Topology> = (0..64).map(|_| Topology::random(&mut rng)).collect();
    let mut group = c.benchmark_group("wl_featurize_topology");
    group.bench_with_input(BenchmarkId::new("uncached", 4), &4usize, |b, &h| {
        let mut wl = WlFeaturizer::new();
        let mut i = 0;
        b.iter(|| {
            let f = wl.featurize(
                &CircuitGraph::from_topology(&topologies[i % topologies.len()]),
                h,
            );
            i += 1;
            std::hint::black_box(f.max_h())
        })
    });
    // Warm the cache once; steady-state BO iterations revisit the same
    // topologies across pools, so the hot path is all hits.
    let mut wl = WlFeaturizer::new();
    for t in &topologies {
        wl.featurize_topology(t, 4);
    }
    group.bench_with_input(BenchmarkId::new("memoized", 4), &4usize, |b, &h| {
        let mut i = 0;
        b.iter(|| {
            let f = wl.featurize_topology(&topologies[i % topologies.len()], h);
            i += 1;
            std::hint::black_box(f.max_h())
        })
    });
    group.finish();
    let stats = wl.cache_stats();
    eprintln!(
        "wl cache: {} hits / {} misses (hit rate {:.4})",
        stats.hits,
        stats.misses,
        stats.hit_rate()
    );
}

fn bench_kernel_eval(c: &mut Criterion) {
    let mut rng = ChaCha8Rng::seed_from_u64(3);
    let mut wl = WlFeaturizer::new();
    let feats: Vec<_> = (0..64)
        .map(|_| wl.featurize(&CircuitGraph::from_topology(&Topology::random(&mut rng)), 4))
        .collect();
    c.bench_function("wl_kernel_h4_pairwise", |b| {
        let mut i = 0;
        b.iter(|| {
            let a = &feats[i % feats.len()];
            let bb = &feats[(i * 7 + 3) % feats.len()];
            i += 1;
            std::hint::black_box(a.kernel(bb, 4))
        })
    });
}

criterion_group!(
    benches,
    bench_graph_construction,
    bench_featurize,
    bench_featurize_memoized,
    bench_kernel_eval
);
criterion_main!(benches);
