//! End-to-end benchmark of the sizing inner loop: one topology evaluation
//! as performed inside every outer-loop iteration (constrained BO against
//! the AC simulator). This is the unit the paper counts as "#
//! simulations / 40".

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use into_oa::{Evaluator, Spec};
use oa_bo::BoConfig;
use oa_circuit::{PassiveKind, SubcircuitType, Topology, VariableEdge};

fn miller() -> Topology {
    Topology::bare_cascade()
        .with_type(
            VariableEdge::V1Vout,
            SubcircuitType::Passive(PassiveKind::C),
        )
        .expect("legal")
}

fn bench_sizing(c: &mut Criterion) {
    let evaluator = Evaluator::new(Spec::s1());
    let topology = miller();
    let mut group = c.benchmark_group("sizing_bo");
    group.sample_size(10);
    for (init, iters) in [(5usize, 5usize), (10, 30)] {
        let cfg = BoConfig {
            n_init: init,
            n_iter: iters,
            n_candidates: 100,
            seed: 1,
        };
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{init}+{iters}")),
            &cfg,
            |b, cfg| {
                b.iter(|| {
                    let (design, sims) = evaluator.size(&topology, cfg);
                    std::hint::black_box((design.map(|d| d.fom), sims))
                })
            },
        );
    }
    group.finish();
}

fn bench_single_simulation(c: &mut Criterion) {
    let evaluator = Evaluator::new(Spec::s1());
    let topology = miller();
    let space = oa_circuit::ParamSpace::for_topology(&topology);
    let values = space.nominal();
    c.bench_function("single_opamp_simulation", |b| {
        b.iter(|| std::hint::black_box(evaluator.simulate(&topology, &values).expect("simulates")))
    });
}

criterion_group!(benches, bench_sizing, bench_single_simulation);
criterion_main!(benches);
