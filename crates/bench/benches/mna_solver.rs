//! Microbenchmarks of the AC simulator: single-frequency MNA solves and
//! the full measurement pipeline (sweep + unity-crossing refinement) — one
//! "Hspice run" of the reproduction.

use criterion::{criterion_group, criterion_main, Criterion};
use oa_circuit::{
    elaborate, ParamSpace, PassiveKind, Process, SubcircuitType, Topology, VariableEdge,
};
use oa_sim::{measure, AcOptions, MnaSystem};

fn miller_netlist() -> oa_circuit::Netlist {
    let t = Topology::bare_cascade()
        .with_type(
            VariableEdge::V1Vout,
            SubcircuitType::Passive(PassiveKind::SeriesRc),
        )
        .expect("legal");
    let space = ParamSpace::for_topology(&t);
    elaborate(&t, &space.nominal(), &Process::default(), 10e-12).expect("elaborates")
}

fn bench_single_solve(c: &mut Criterion) {
    let netlist = miller_netlist();
    let sys = MnaSystem::new(&netlist, 1e-12);
    c.bench_function("mna_transfer_single_freq", |b| {
        let mut k = 0u32;
        b.iter(|| {
            k = k.wrapping_add(1);
            let f = 1e3 * (1.0 + (k % 100) as f64);
            std::hint::black_box(sys.transfer(f).expect("solves"))
        })
    });
}

fn bench_full_measurement(c: &mut Criterion) {
    let netlist = miller_netlist();
    let opts = AcOptions::default();
    c.bench_function("ac_measure_full_sweep", |b| {
        b.iter(|| std::hint::black_box(measure(&netlist, &opts).expect("measures")))
    });
}

fn bench_elaboration(c: &mut Criterion) {
    let t = Topology::bare_cascade()
        .with_type(
            VariableEdge::V1Vout,
            SubcircuitType::Passive(PassiveKind::SeriesRc),
        )
        .expect("legal");
    let space = ParamSpace::for_topology(&t);
    let values = space.nominal();
    let process = Process::default();
    c.bench_function("netlist_elaboration", |b| {
        b.iter(|| std::hint::black_box(elaborate(&t, &values, &process, 10e-12).expect("ok")))
    });
}

criterion_group!(
    benches,
    bench_single_solve,
    bench_full_measurement,
    bench_elaboration
);
criterion_main!(benches);
