//! A long-lived, bounded-queue worker pool.
//!
//! [`par_map`](crate::par_map) fans a known batch out and joins; a
//! *service* needs the dual shape: workers that outlive any one request,
//! fed through a bounded queue so a flood of requests exerts
//! backpressure on the submitter instead of growing memory without
//! bound. `oa-serve` pushes every decoded request through a [`Pool`];
//! the TCP reader blocks in [`Pool::submit`] when the queue is full,
//! which propagates backpressure all the way to the client socket.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::mpsc::{Receiver, SyncSender, TrySendError};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

type Job = Box<dyn FnOnce() + Send + 'static>;

/// A hook every worker runs immediately before each job, *inside* the
/// panic containment: a hook that panics aborts that one job (its
/// closure never runs) and the worker survives. The fault-injection
/// harness uses this to model a worker dying mid-request — the response
/// is simply never produced, exactly like a real panic between dequeue
/// and reply.
pub type JobHook = Arc<dyn Fn() + Send + Sync>;

/// Why a submission was not accepted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PoolError {
    /// The queue is full (only from [`Pool::try_submit`]).
    QueueFull,
    /// The pool is shutting down and accepts no more jobs.
    Closed,
}

impl std::fmt::Display for PoolError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PoolError::QueueFull => write!(f, "worker pool queue is full"),
            PoolError::Closed => write!(f, "worker pool is closed"),
        }
    }
}

impl std::error::Error for PoolError {}

/// A fixed set of worker threads draining a bounded job queue.
///
/// Jobs are `FnOnce() + Send` closures. A panicking job is contained:
/// the worker catches the unwind and moves on, so one poisoned request
/// cannot take a service worker down (the job itself is responsible for
/// reporting its failure — `oa-serve` replies with an error frame before
/// any code that can panic runs). Dropping the pool closes the queue and
/// joins every worker, running all already-queued jobs first.
///
/// # Examples
///
/// ```
/// use std::sync::atomic::{AtomicUsize, Ordering};
/// use std::sync::Arc;
///
/// let pool = oa_par::Pool::new(4, 16);
/// let counter = Arc::new(AtomicUsize::new(0));
/// for _ in 0..32 {
///     let counter = Arc::clone(&counter);
///     pool.submit(move || {
///         counter.fetch_add(1, Ordering::SeqCst);
///     })
///     .unwrap();
/// }
/// drop(pool); // joins workers; all queued jobs ran
/// assert_eq!(counter.load(Ordering::SeqCst), 32);
/// ```
#[derive(Debug)]
pub struct Pool {
    sender: Option<SyncSender<Job>>,
    workers: Vec<JoinHandle<()>>,
}

impl Pool {
    /// Creates a pool with `workers` threads (at least 1) and a queue
    /// holding up to `queue` pending jobs (at least 1).
    pub fn new(workers: usize, queue: usize) -> Pool {
        Self::with_hook(workers, queue, None)
    }

    /// Like [`Pool::new`], plus an optional [`JobHook`] run before every
    /// job inside the worker's panic containment.
    pub fn with_hook(workers: usize, queue: usize, hook: Option<JobHook>) -> Pool {
        let (sender, receiver) = std::sync::mpsc::sync_channel::<Job>(queue.max(1));
        let receiver = Arc::new(Mutex::new(receiver));
        let workers = (0..workers.max(1))
            .map(|i| {
                let receiver = Arc::clone(&receiver);
                let hook = hook.clone();
                std::thread::Builder::new()
                    .name(format!("oa-par-worker-{i}"))
                    .spawn(move || worker_loop(&receiver, hook.as_deref()))
                    // lint: allow(panic, thread spawn failure at pool construction is unrecoverable; fail fast before serving)
                    .expect("spawn pool worker")
            })
            .collect();
        Pool {
            sender: Some(sender),
            workers,
        }
    }

    /// Submits a job, blocking while the queue is full.
    ///
    /// # Errors
    ///
    /// [`PoolError::Closed`] if every worker has exited (only possible
    /// during teardown).
    pub fn submit<F: FnOnce() + Send + 'static>(&self, job: F) -> Result<(), PoolError> {
        self.sender
            .as_ref()
            .ok_or(PoolError::Closed)?
            .send(Box::new(job))
            .map_err(|_| PoolError::Closed)
    }

    /// Submits a job without blocking.
    ///
    /// # Errors
    ///
    /// [`PoolError::QueueFull`] when the queue is at capacity,
    /// [`PoolError::Closed`] during teardown.
    pub fn try_submit<F: FnOnce() + Send + 'static>(&self, job: F) -> Result<(), PoolError> {
        match self
            .sender
            .as_ref()
            .ok_or(PoolError::Closed)?
            .try_send(Box::new(job))
        {
            Ok(()) => Ok(()),
            Err(TrySendError::Full(_)) => Err(PoolError::QueueFull),
            Err(TrySendError::Disconnected(_)) => Err(PoolError::Closed),
        }
    }

    /// Number of worker threads.
    pub fn workers(&self) -> usize {
        self.workers.len()
    }
}

impl Drop for Pool {
    fn drop(&mut self) {
        // Closing the channel lets each worker's `recv` return `Err`
        // once the queue drains.
        self.sender = None;
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

fn worker_loop(receiver: &Mutex<Receiver<Job>>, hook: Option<&(dyn Fn() + Send + Sync)>) {
    loop {
        // Hold the lock only for the dequeue, never while running a job.
        let job = match receiver.lock() {
            // lint: allow(lock_across_blocking, the queue mutex IS the dequeue handoff; exactly one idle worker parks in recv while holding it)
            Ok(guard) => guard.recv(),
            // lint: allow(lock_across_blocking, same handoff on the poisoned-lock recovery path)
            Err(poisoned) => poisoned.into_inner().recv(),
        };
        match job {
            Ok(job) => {
                // Contain per-job panics (from the hook or the job); the
                // worker lives on. A panicking hook skips its job.
                let _ = catch_unwind(AssertUnwindSafe(|| {
                    if let Some(hook) = hook {
                        hook();
                    }
                    job();
                }));
            }
            Err(_) => break,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::time::Duration;

    #[test]
    fn all_submitted_jobs_run_before_drop_returns() {
        let pool = Pool::new(3, 4);
        let done = Arc::new(AtomicUsize::new(0));
        for _ in 0..50 {
            let done = Arc::clone(&done);
            pool.submit(move || {
                done.fetch_add(1, Ordering::SeqCst);
            })
            .unwrap();
        }
        drop(pool);
        assert_eq!(done.load(Ordering::SeqCst), 50);
    }

    #[test]
    fn panicking_job_does_not_kill_workers() {
        let pool = Pool::new(2, 8);
        let done = Arc::new(AtomicUsize::new(0));
        for i in 0..20 {
            let done = Arc::clone(&done);
            pool.submit(move || {
                if i % 3 == 0 {
                    panic!("job {i} poisoned");
                }
                done.fetch_add(1, Ordering::SeqCst);
            })
            .unwrap();
        }
        drop(pool);
        // 20 jobs, 7 panicked (0,3,6,9,12,15,18): the other 13 all ran.
        assert_eq!(done.load(Ordering::SeqCst), 13);
    }

    #[test]
    fn try_submit_reports_full_queue() {
        let pool = Pool::new(1, 1);
        let gate = Arc::new(AtomicUsize::new(0));
        // Occupy the single worker until we release it.
        let g = Arc::clone(&gate);
        pool.submit(move || {
            while g.load(Ordering::SeqCst) == 0 {
                std::thread::sleep(Duration::from_millis(1));
            }
        })
        .unwrap();
        // Fill the single queue slot, then the next try must report Full.
        let mut saw_full = false;
        for _ in 0..100 {
            match pool.try_submit(|| {}) {
                Ok(()) => {}
                Err(PoolError::QueueFull) => {
                    saw_full = true;
                    break;
                }
                Err(e) => panic!("unexpected {e}"),
            }
        }
        assert!(saw_full, "bounded queue never reported full");
        gate.store(1, Ordering::SeqCst);
        drop(pool);
    }

    #[test]
    fn hook_runs_before_every_job() {
        let ran = Arc::new(AtomicUsize::new(0));
        let hooked = Arc::new(AtomicUsize::new(0));
        let h = Arc::clone(&hooked);
        let pool = Pool::with_hook(
            2,
            8,
            Some(Arc::new(move || {
                h.fetch_add(1, Ordering::SeqCst);
            })),
        );
        for _ in 0..12 {
            let ran = Arc::clone(&ran);
            pool.submit(move || {
                ran.fetch_add(1, Ordering::SeqCst);
            })
            .unwrap();
        }
        drop(pool);
        assert_eq!(ran.load(Ordering::SeqCst), 12);
        assert_eq!(hooked.load(Ordering::SeqCst), 12);
    }

    #[test]
    fn panicking_hook_skips_the_job_but_not_the_worker() {
        let ran = Arc::new(AtomicUsize::new(0));
        let calls = Arc::new(AtomicUsize::new(0));
        let c = Arc::clone(&calls);
        // Every third hook invocation panics; that job must be skipped
        // while the rest run to completion on surviving workers.
        let pool = Pool::with_hook(
            1,
            16,
            Some(Arc::new(move || {
                if c.fetch_add(1, Ordering::SeqCst) % 3 == 2 {
                    panic!("injected worker panic");
                }
            })),
        );
        for _ in 0..9 {
            let ran = Arc::clone(&ran);
            pool.submit(move || {
                ran.fetch_add(1, Ordering::SeqCst);
            })
            .unwrap();
        }
        drop(pool);
        // 9 jobs, hook panicked on invocations 2,5,8: 6 jobs ran.
        assert_eq!(calls.load(Ordering::SeqCst), 9);
        assert_eq!(ran.load(Ordering::SeqCst), 6);
    }

    #[test]
    fn zero_sizes_are_clamped() {
        let pool = Pool::new(0, 0);
        assert_eq!(pool.workers(), 1);
        let done = Arc::new(AtomicUsize::new(0));
        let d = Arc::clone(&done);
        pool.submit(move || {
            d.fetch_add(1, Ordering::SeqCst);
        })
        .unwrap();
        drop(pool);
        assert_eq!(done.load(Ordering::SeqCst), 1);
    }
}
