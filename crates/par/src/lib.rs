//! Deterministic scoped worker pool built on `std::thread` only.
//!
//! The experiment matrices (fig5/table2/table3) and the BO candidate-pool
//! scoring are embarrassingly parallel: independent items, no shared
//! mutable state. This crate provides [`par_map`], which fans such work
//! out over a scoped pool and returns results **in input order**, so the
//! output is indistinguishable from a serial `map` — parallelism never
//! changes what the suite computes, only how fast.
//!
//! Degree of parallelism comes from [`jobs`]: the `OA_JOBS` environment
//! variable when set (clamped to at least 1), otherwise
//! [`std::thread::available_parallelism`]. `OA_JOBS=1` bypasses thread
//! spawning entirely and runs the closure inline on the caller's thread.
//!
//! Work distribution is a shared atomic cursor: each worker claims the
//! next unclaimed index, computes it, and stores the result into its own
//! `(index, value)` list. The lists are merged by index after the scope
//! joins. No locks, no `unsafe`, no ordering sensitivity.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod pool;

pub use pool::{JobHook, Pool, PoolError};

use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicUsize, Ordering};

/// The configured degree of parallelism.
///
/// Reads `OA_JOBS` (values `< 1` or unparsable fall back to the detected
/// core count; there is no way to ask for zero workers).
pub fn jobs() -> usize {
    match std::env::var("OA_JOBS") {
        Ok(raw) => match raw.trim().parse::<usize>() {
            Ok(n) if n >= 1 => n,
            _ => detected_parallelism(),
        },
        Err(_) => detected_parallelism(),
    }
}

fn detected_parallelism() -> usize {
    std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
}

/// Maps `f` over `items` with up to `jobs` worker threads, returning
/// results in input order.
///
/// `jobs <= 1` (or a single item) runs serially on the calling thread —
/// no threads are spawned, so single-job runs behave exactly like the
/// pre-parallel code path.
///
/// # Panics
///
/// If `f` panics on any item, **every** worker is still joined — the
/// remaining items keep being claimed and computed by the surviving
/// workers, the shared cursor never wedges — and then the *first*
/// panic payload (by worker index) is re-raised on the caller's thread.
/// No result slot is ever silently dropped: either the full, correctly
/// ordered `Vec<R>` comes back, or the call panics.
pub fn par_map<T, R, F>(items: Vec<T>, jobs: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    if jobs <= 1 || items.len() <= 1 {
        return items.iter().map(&f).collect();
    }
    let workers = jobs.min(items.len());
    let cursor = AtomicUsize::new(0);
    let items_ref = &items;
    let f_ref = &f;
    let mut collected: Vec<Vec<(usize, R)>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                let cursor = &cursor;
                scope.spawn(move || {
                    let mut local: Vec<(usize, R)> = Vec::new();
                    loop {
                        let idx = cursor.fetch_add(1, Ordering::Relaxed);
                        if idx >= items_ref.len() {
                            break;
                        }
                        local.push((idx, f_ref(&items_ref[idx])));
                    }
                    local
                })
            })
            .collect();
        // Join every worker before propagating anything: a panic in one
        // worker must not short-circuit the joins (the old code called
        // `resume_unwind` mid-iteration, leaving later workers to be
        // reaped by the scope's own unwind path instead of ours).
        let mut locals = Vec::with_capacity(workers);
        let mut first_panic = None;
        for handle in handles {
            match handle.join() {
                Ok(local) => locals.push(local),
                Err(payload) => {
                    first_panic.get_or_insert(payload);
                }
            }
        }
        if let Some(payload) = first_panic {
            std::panic::resume_unwind(payload);
        }
        locals
    });
    // Merge worker-local results back into input order.
    let mut slots: Vec<Option<R>> = (0..items.len()).map(|_| None).collect();
    for local in collected.drain(..) {
        for (idx, value) in local {
            debug_assert!(slots[idx].is_none(), "index {idx} produced twice");
            slots[idx] = Some(value);
        }
    }
    slots
        .into_iter()
        .map(|slot| slot.expect("every index claimed exactly once"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_are_in_input_order() {
        let items: Vec<u64> = (0..257).collect();
        let expected: Vec<u64> = items.iter().map(|x| x * x).collect();
        for jobs in [1, 2, 4, 7] {
            let got = par_map(items.clone(), jobs, |x| x * x);
            assert_eq!(got, expected, "jobs = {jobs}");
        }
    }

    #[test]
    fn empty_and_singleton_inputs() {
        let empty: Vec<u32> = Vec::new();
        assert!(par_map(empty, 4, |x| *x).is_empty());
        assert_eq!(par_map(vec![9u32], 4, |x| x + 1), vec![10]);
    }

    #[test]
    fn more_jobs_than_items() {
        let got = par_map(vec![1u8, 2, 3], 64, |x| x * 2);
        assert_eq!(got, vec![2, 4, 6]);
    }

    #[test]
    fn parallel_matches_serial_on_stateless_work() {
        let items: Vec<u64> = (0..100).collect();
        let serial = par_map(items.clone(), 1, |&seed| {
            // Cheap deterministic hash stands in for a real run.
            let mut h = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15);
            h ^= h >> 29;
            h
        });
        let parallel = par_map(items, 4, |&seed| {
            let mut h = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15);
            h ^= h >> 29;
            h
        });
        assert_eq!(serial, parallel);
    }

    #[test]
    #[should_panic(expected = "boom")]
    fn worker_panics_propagate() {
        let items: Vec<u32> = (0..8).collect();
        let _ = par_map(items, 2, |&x| {
            if x == 5 {
                panic!("boom");
            }
            x
        });
    }

    #[test]
    fn panicking_item_does_not_wedge_cursor_or_drop_other_items() {
        // Regression: a panicking worker used to short-circuit the join
        // loop. The contract is that every *other* item is still claimed
        // and computed (the cursor keeps advancing past the panicked
        // index) and the panic reaches the caller only after all workers
        // joined.
        let completed = AtomicUsize::new(0);
        let items: Vec<u32> = (0..64).collect();
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            par_map(items, 3, |&x| {
                if x == 11 {
                    panic!("wedge check");
                }
                completed.fetch_add(1, Ordering::SeqCst);
                x
            })
        }));
        let payload = result.expect_err("panic must propagate");
        let msg = payload.downcast_ref::<&str>().copied().unwrap_or_default();
        assert_eq!(msg, "wedge check");
        assert_eq!(
            completed.load(Ordering::SeqCst),
            63,
            "all non-panicking items must still be computed"
        );
    }

    #[test]
    fn first_panic_wins_when_several_workers_panic() {
        let items: Vec<u32> = (0..16).collect();
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            par_map(items, 4, |&x| {
                if x % 2 == 0 {
                    panic!("even {x}");
                }
                x
            })
        }));
        let payload = result.expect_err("panic must propagate");
        // Some worker's payload comes through intact (formatted panics
        // downcast to String).
        let msg = payload
            .downcast_ref::<String>()
            .cloned()
            .unwrap_or_default();
        assert!(msg.starts_with("even "), "unexpected payload {msg:?}");
    }

    #[test]
    fn jobs_is_at_least_one() {
        assert!(jobs() >= 1);
    }
}
