//! One-call evaluation of a sized behavior-level op-amp.

use oa_circuit::{elaborate, DeviceValues, Process, Topology};

use crate::ac::{measure_cached, AcOptions};
use crate::error::SimError;
use crate::plan::PlanCache;

/// The four measured op-amp metrics the paper's spec sets constrain.
///
/// When the circuit never reaches unity gain, `gbw_hz` is reported as `0`
/// and `pm_deg` as `-180` (the worst possible values), so downstream
/// optimizers see an unambiguous constraint violation rather than a missing
/// number.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OpAmpPerformance {
    /// Low-frequency open-loop gain in dB.
    pub gain_db: f64,
    /// Gain–bandwidth product (unity-gain frequency) in Hz.
    pub gbw_hz: f64,
    /// Phase margin in degrees.
    pub pm_deg: f64,
    /// Static power in watts.
    pub power_w: f64,
}

impl OpAmpPerformance {
    /// The paper's figure of merit (Eq. 6):
    /// `FoM = GBW[MHz]·C_L[pF] / Power[mW]`.
    ///
    /// # Examples
    ///
    /// ```
    /// use oa_sim::OpAmpPerformance;
    /// let p = OpAmpPerformance { gain_db: 90.0, gbw_hz: 2e6, pm_deg: 60.0, power_w: 100e-6 };
    /// // 2 MHz · 10 pF / 0.1 mW = 200.
    /// assert!((p.fom(10e-12) - 200.0).abs() < 1e-9);
    /// ```
    pub fn fom(&self, cl_farads: f64) -> f64 {
        let gbw_mhz = self.gbw_hz / 1e6;
        let cl_pf = cl_farads / 1e-12;
        let power_mw = self.power_w / 1e-3;
        if power_mw <= 0.0 {
            return 0.0;
        }
        gbw_mhz * cl_pf / power_mw
    }
}

/// Elaborates and measures one sized topology: the behavioral equivalent of
/// a SPICE `.AC` run plus the bias power estimate.
///
/// # Errors
///
/// Propagates elaboration errors as [`SimError::BadElement`] and solver
/// errors unchanged.
///
/// # Examples
///
/// ```
/// use oa_circuit::{ParamSpace, Process, Topology};
/// use oa_sim::{evaluate_opamp, AcOptions};
///
/// # fn main() -> Result<(), oa_sim::SimError> {
/// let t = Topology::bare_cascade();
/// let space = ParamSpace::for_topology(&t);
/// let perf = evaluate_opamp(&t, &space.nominal(), &Process::default(), 10e-12, &AcOptions::default())?;
/// assert!(perf.power_w > 0.0);
/// # Ok(())
/// # }
/// ```
pub fn evaluate_opamp(
    topology: &Topology,
    values: &DeviceValues,
    process: &Process,
    cl_farads: f64,
    opts: &AcOptions,
) -> Result<OpAmpPerformance, SimError> {
    evaluate_opamp_cached(topology, values, process, cl_farads, opts, None)
}

/// [`evaluate_opamp`] with an optional symbolic-factorization
/// [`PlanCache`]: every sizing of the same topology (and any topology
/// elaborating to the same reduced sparsity pattern) reuses one analyzed
/// elimination plan instead of re-deriving it, which is what a
/// sizing-BO loop or a serving worker wants. Results are identical with
/// or without a cache.
///
/// # Errors
///
/// Exactly those of [`evaluate_opamp`].
pub fn evaluate_opamp_cached(
    topology: &Topology,
    values: &DeviceValues,
    process: &Process,
    cl_farads: f64,
    opts: &AcOptions,
    cache: Option<&PlanCache>,
) -> Result<OpAmpPerformance, SimError> {
    let netlist =
        elaborate(topology, values, process, cl_farads).map_err(|e| SimError::BadElement {
            detail: e.to_string(),
        })?;
    let m = measure_cached(&netlist, opts, cache)?;
    let (gbw_hz, pm_deg) = match m.unity {
        Some(u) => (u.freq_hz, u.phase_margin_deg),
        None => (0.0, -180.0),
    };
    Ok(OpAmpPerformance {
        gain_db: m.dc_gain_db,
        gbw_hz,
        pm_deg,
        power_w: netlist.static_power(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use oa_circuit::{ParamSpace, PassiveKind, SubcircuitType, VariableEdge};

    fn eval(t: &Topology, x: &[f64]) -> OpAmpPerformance {
        let space = ParamSpace::for_topology(t);
        let v = space.decode(x).unwrap();
        evaluate_opamp(t, &v, &Process::default(), 10e-12, &AcOptions::default()).unwrap()
    }

    #[test]
    fn bare_cascade_has_high_gain() {
        let t = Topology::bare_cascade();
        let p = eval(&t, &[0.5, 0.5, 0.5]);
        // Three stages of intrinsic gain 80 → up to ~114 dB before loading.
        assert!(p.gain_db > 80.0, "gain {}", p.gain_db);
        assert!(p.gbw_hz > 0.0);
        assert!(p.power_w > 0.0);
    }

    #[test]
    fn miller_compensation_improves_phase_margin() {
        let bare = Topology::bare_cascade();
        let comp = bare
            .with_type(
                VariableEdge::V1Vout,
                SubcircuitType::Passive(PassiveKind::C),
            )
            .unwrap();
        let p_bare = eval(&bare, &[0.5, 0.5, 0.5]);
        // Large-ish compensation cap (coordinate 0.8 → ~ tens of pF).
        let p_comp = eval(&comp, &[0.5, 0.5, 0.5, 0.8]);
        assert!(
            p_comp.pm_deg > p_bare.pm_deg + 10.0,
            "bare pm {} comp pm {}",
            p_bare.pm_deg,
            p_comp.pm_deg
        );
    }

    #[test]
    fn compensation_lowers_bandwidth() {
        let bare = Topology::bare_cascade();
        let comp = bare
            .with_type(
                VariableEdge::V1Vout,
                SubcircuitType::Passive(PassiveKind::C),
            )
            .unwrap();
        let p_bare = eval(&bare, &[0.5, 0.5, 0.5]);
        let p_comp = eval(&comp, &[0.5, 0.5, 0.5, 0.8]);
        assert!(p_comp.gbw_hz < p_bare.gbw_hz);
    }

    #[test]
    fn larger_stage_gm_costs_more_power() {
        let t = Topology::bare_cascade();
        let small = eval(&t, &[0.3, 0.3, 0.3]);
        let large = eval(&t, &[0.8, 0.8, 0.8]);
        assert!(large.power_w > small.power_w);
    }

    #[test]
    fn heavier_load_slows_the_amplifier() {
        let t = Topology::bare_cascade()
            .with_type(
                VariableEdge::V1Vout,
                SubcircuitType::Passive(PassiveKind::C),
            )
            .unwrap();
        let space = ParamSpace::for_topology(&t);
        let v = space.decode(&[0.5, 0.5, 0.5, 0.7]).unwrap();
        let p10p =
            evaluate_opamp(&t, &v, &Process::default(), 10e-12, &AcOptions::default()).unwrap();
        let p10n =
            evaluate_opamp(&t, &v, &Process::default(), 10e-9, &AcOptions::default()).unwrap();
        assert!(p10n.gbw_hz < p10p.gbw_hz);
    }

    #[test]
    fn fom_matches_hand_computation() {
        let p = OpAmpPerformance {
            gain_db: 100.0,
            gbw_hz: 5e6,
            pm_deg: 60.0,
            power_w: 750e-6,
        };
        // 5 MHz · 10000 pF / 0.75 mW = 66 666.7
        let fom = p.fom(10e-9);
        assert!((fom - 66_666.666).abs() < 1.0, "fom {fom}");
    }

    #[test]
    fn fom_handles_zero_power() {
        let p = OpAmpPerformance {
            gain_db: 0.0,
            gbw_hz: 0.0,
            pm_deg: 0.0,
            power_w: 0.0,
        };
        assert_eq!(p.fom(10e-12), 0.0);
    }
}
