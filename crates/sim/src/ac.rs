//! AC sweeps and op-amp measurement extraction.
//!
//! [`ac_sweep`] runs a log-spaced frequency sweep and returns the complex
//! transfer function; [`measure`] post-processes it into the quantities the
//! paper's spec sets constrain: low-frequency gain, unity-gain frequency
//! (GBW) and phase margin, with the unity crossing refined by bisection and
//! the phase unwrapped along the sweep.

use oa_circuit::Netlist;
use oa_linalg::Complex;

use crate::error::SimError;
use crate::mna::{MnaSystem, PreparedSweep};
use crate::plan::PlanCache;

/// Options controlling an AC analysis.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AcOptions {
    /// First sweep frequency in hertz.
    pub f_start: f64,
    /// Last sweep frequency in hertz.
    pub f_stop: f64,
    /// Log-spaced points per decade.
    pub points_per_decade: usize,
    /// `GMIN` leak conductance in siemens.
    pub gmin: f64,
}

impl Default for AcOptions {
    fn default() -> Self {
        AcOptions {
            f_start: 1e-2,
            f_stop: 1e10,
            points_per_decade: 20,
            gmin: 1e-12,
        }
    }
}

/// The result of an AC sweep: matched vectors of frequency and complex
/// response.
#[derive(Debug, Clone, PartialEq)]
pub struct AcSweep {
    /// Sweep frequencies in hertz, strictly increasing.
    pub freqs: Vec<f64>,
    /// Transfer function `H(jω)` at each frequency.
    pub response: Vec<Complex>,
}

impl AcSweep {
    /// Magnitude in dB at sweep point `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn mag_db(&self, i: usize) -> f64 {
        20.0 * self.response[i].abs().log10()
    }

    /// Phase in degrees, unwrapped along the sweep so that successive points
    /// never jump by more than 180°.
    pub fn unwrapped_phase_deg(&self) -> Vec<f64> {
        let mut out = Vec::with_capacity(self.response.len());
        let mut prev = 0.0_f64;
        for (i, h) in self.response.iter().enumerate() {
            let mut phi = h.arg().to_degrees();
            if i > 0 {
                while phi - prev > 180.0 {
                    phi -= 360.0;
                }
                while phi - prev < -180.0 {
                    phi += 360.0;
                }
            }
            out.push(phi);
            prev = phi;
        }
        out
    }
}

/// Runs a log-spaced AC sweep on `netlist`.
///
/// # Errors
///
/// Returns [`SimError::BadFrequencyGrid`] for a degenerate grid and
/// propagates solver errors.
///
/// # Examples
///
/// ```
/// use oa_circuit::{NetlistBuilder, NodeId};
/// use oa_sim::{ac_sweep, AcOptions};
///
/// # fn main() -> Result<(), oa_sim::SimError> {
/// let mut b = NetlistBuilder::new();
/// let inp = b.add_node("in");
/// let out = b.add_node("out");
/// b.resistor(inp, out, 1e3);
/// b.capacitor(out, NodeId::GROUND, 1e-9);
/// let sweep = ac_sweep(&b.build(inp, out), &AcOptions::default())?;
/// assert!(sweep.response[0].abs() > 0.99); // low-frequency pass-band
/// # Ok(())
/// # }
/// ```
pub fn ac_sweep(netlist: &Netlist, opts: &AcOptions) -> Result<AcSweep, SimError> {
    ac_sweep_cached(netlist, opts, None)
}

/// [`ac_sweep`] with an optional symbolic-factorization [`PlanCache`].
///
/// With a cache, the fill-reducing pivot order and elimination program of
/// the netlist's sparsity pattern are looked up instead of re-analyzed —
/// the win that makes repeated sweeps of one topology (sizing loops,
/// serving traffic) cheap. Results are identical either way.
///
/// # Errors
///
/// Exactly those of [`ac_sweep`].
pub fn ac_sweep_cached(
    netlist: &Netlist,
    opts: &AcOptions,
    cache: Option<&PlanCache>,
) -> Result<AcSweep, SimError> {
    let mut prepared = MnaSystem::new(netlist, opts.gmin).prepare_with_cache(cache)?;
    sweep_prepared(&mut prepared, opts)
}

/// The sweep loop over an already-prepared system: stamping, validation,
/// and allocation happened once in [`MnaSystem::prepare`]; the grid is
/// then solved in structure-of-arrays batches through the prepared
/// system's symbolic-sparse plan (dense per-point solves where no plan
/// exists or the accuracy gate rejects a point).
fn sweep_prepared(prepared: &mut PreparedSweep, opts: &AcOptions) -> Result<AcSweep, SimError> {
    if !(opts.f_start > 0.0 && opts.f_stop > opts.f_start && opts.points_per_decade > 0) {
        return Err(SimError::BadFrequencyGrid);
    }
    let decades = (opts.f_stop / opts.f_start).log10();
    let n = (decades * opts.points_per_decade as f64).ceil() as usize + 1;
    let mut freqs = Vec::with_capacity(n);
    for k in 0..n {
        freqs.push(opts.f_start * 10f64.powf(decades * k as f64 / (n - 1) as f64));
    }
    let response = prepared.sweep(&freqs)?;
    Ok(AcSweep { freqs, response })
}

/// The refined unity-gain crossing of a transfer function.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct UnityCrossing {
    /// Unity-gain frequency in hertz (the paper's GBW).
    pub freq_hz: f64,
    /// Phase margin in degrees: the minimum distance of the unwrapped loop
    /// phase from the instability boundary (±180°) over the whole band
    /// where `|H| ≥ 1`, i.e. `min over {ω : |H(ω)| ≥ 1} of 180° − |φ(ω)|`.
    ///
    /// For the common phase-lagging amplifier whose phase decreases
    /// monotonically this reduces to the textbook `180° + φ(ω_ugf)`. The
    /// band-minimum form additionally rejects responses whose phase touches
    /// ±180° while the gain is still above unity (a Nyquist encirclement in
    /// unity feedback): such sign-flipping multi-path designs would look
    /// "stable" to a crossover-only phase margin. Negative values mean the
    /// phase crossed ±180° with gain above unity.
    pub phase_margin_deg: f64,
}

/// Measured open-loop quantities of an op-amp netlist.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Measurement {
    /// Low-frequency (DC) gain in dB.
    pub dc_gain_db: f64,
    /// Unity-gain crossing, or `None` when the low-frequency gain is below
    /// 0 dB (the "amplifier" never reaches unity gain).
    pub unity: Option<UnityCrossing>,
    /// Gain margin in dB: `−20·log10|H|` at the first frequency where the
    /// unwrapped phase crosses ±180°, or `None` if the phase never reaches
    /// ±180° within the sweep. Positive values mean the loop gain has
    /// dropped below unity by the phase crossover, as required for
    /// unity-feedback stability.
    pub gain_margin_db: Option<f64>,
}

/// Runs an AC sweep and extracts gain / GBW / phase margin.
///
/// # Errors
///
/// Propagates [`ac_sweep`] errors.
pub fn measure(netlist: &Netlist, opts: &AcOptions) -> Result<Measurement, SimError> {
    measure_cached(netlist, opts, None)
}

/// [`measure`] with an optional symbolic-factorization [`PlanCache`].
///
/// # Errors
///
/// Exactly those of [`measure`].
pub fn measure_cached(
    netlist: &Netlist,
    opts: &AcOptions,
    cache: Option<&PlanCache>,
) -> Result<Measurement, SimError> {
    // One prepared system serves both the grid sweep and the bisection
    // refinement of the unity crossing.
    let mut prepared = MnaSystem::new(netlist, opts.gmin).prepare_with_cache(cache)?;
    let sweep = sweep_prepared(&mut prepared, opts)?;
    Ok(extract(&mut prepared, &sweep))
}

fn extract(prepared: &mut PreparedSweep, sweep: &AcSweep) -> Measurement {
    let dc_gain_db = sweep.mag_db(0);
    let phases = sweep.unwrapped_phase_deg();

    // Gain margin: |H| at the first ±180° phase crossing (log-interpolated
    // between the bracketing grid points).
    let mut gain_margin_db = None;
    for i in 1..sweep.freqs.len() {
        let (p0, p1) = (phases[i - 1], phases[i]);
        if p0.abs() < 180.0 && p1.abs() >= 180.0 {
            let target = 180.0 * p1.signum();
            let t = ((target - p0) / (p1 - p0)).clamp(0.0, 1.0);
            let m = sweep.mag_db(i - 1) * (1.0 - t) + sweep.mag_db(i) * t;
            gain_margin_db = Some(-m);
            break;
        }
    }

    // First downward unity crossing.
    let mut crossing_idx = None;
    for i in 1..sweep.freqs.len() {
        if sweep.response[i - 1].abs() >= 1.0 && sweep.response[i].abs() < 1.0 {
            crossing_idx = Some(i);
            break;
        }
    }
    let Some(i) = crossing_idx else {
        return Measurement {
            dc_gain_db,
            unity: None,
            gain_margin_db,
        };
    };

    // Refine in log-frequency by bisection.
    let mut lo = sweep.freqs[i - 1].ln();
    let mut hi = sweep.freqs[i].ln();
    let mut h_at = sweep.response[i - 1];
    for _ in 0..50 {
        let mid = 0.5 * (lo + hi);
        match prepared.transfer(mid.exp()) {
            Ok(h) => {
                if h.abs() >= 1.0 {
                    lo = mid;
                    h_at = h;
                } else {
                    hi = mid;
                }
            }
            // A singular point inside the bracket: fall back to the grid
            // endpoint rather than aborting the measurement.
            Err(_) => break,
        }
    }
    let freq_hz = lo.exp();

    // Unwrap the refined-point phase relative to the last grid point below
    // the crossing.
    let mut phi = h_at.arg().to_degrees();
    let anchor = phases[i - 1];
    while phi - anchor > 180.0 {
        phi -= 360.0;
    }
    while phi - anchor < -180.0 {
        phi += 360.0;
    }
    // Band-minimum phase margin: the worst phase proximity to ±180° at any
    // grid point with |H| ≥ 1 (all points before the crossing), combined
    // with the refined value at the crossover itself.
    let pm_at_crossing = 180.0 - phi.abs();
    let pm_in_band = phases[..i]
        .iter()
        .map(|p| 180.0 - p.abs())
        .fold(f64::INFINITY, f64::min);
    Measurement {
        dc_gain_db,
        unity: Some(UnityCrossing {
            freq_hz,
            phase_margin_deg: pm_at_crossing.min(pm_in_band),
        }),
        gain_margin_db,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oa_circuit::{NetlistBuilder, NodeId};

    /// Single-pole amplifier: gain A0, pole at 1/(2πRC).
    fn single_pole_amp(a0: f64, r: f64, c: f64) -> Netlist {
        let mut b = NetlistBuilder::new();
        let inp = b.add_node("in");
        let out = b.add_node("out");
        b.inject_gm(inp, out, a0 / r);
        b.resistor(out, NodeId::GROUND, r);
        b.capacitor(out, NodeId::GROUND, c);
        b.build(inp, out)
    }

    #[test]
    fn single_pole_gbw_is_gm_over_c() {
        let a0 = 1000.0;
        let r = 1e6;
        let c = 1e-9;
        let m = measure(&single_pole_amp(a0, r, c), &AcOptions::default()).unwrap();
        assert!((m.dc_gain_db - 60.0).abs() < 0.1, "gain {}", m.dc_gain_db);
        let unity = m.unity.expect("must cross unity");
        // GBW = A0·fp = gm/(2πC) for a single pole.
        let expected = a0 / (2.0 * std::f64::consts::PI * r * c);
        assert!(
            (unity.freq_hz - expected).abs() / expected < 0.01,
            "gbw {} vs {}",
            unity.freq_hz,
            expected
        );
        // Single pole far below crossing → PM ≈ 90°.
        assert!(
            (unity.phase_margin_deg - 90.0).abs() < 2.0,
            "pm {}",
            unity.phase_margin_deg
        );
    }

    #[test]
    fn two_pole_amp_has_reduced_phase_margin() {
        // Two identical stages: poles coincide; PM at crossing well below 90.
        let mut b = NetlistBuilder::new();
        let inp = b.add_node("in");
        let mid = b.add_node("mid");
        let out = b.add_node("out");
        for (ci, co) in [(inp, mid), (mid, out)] {
            b.inject_gm(ci, co, -1e-4);
            b.resistor(co, NodeId::GROUND, 1e6);
            b.capacitor(co, NodeId::GROUND, 1e-9);
        }
        let m = measure(&b.build(inp, out), &AcOptions::default()).unwrap();
        let unity = m.unity.expect("crosses unity");
        assert!(
            unity.phase_margin_deg < 30.0,
            "pm {}",
            unity.phase_margin_deg
        );
        assert!(unity.phase_margin_deg > -90.0);
    }

    #[test]
    fn gain_margin_is_positive_for_stable_three_pole_amp() {
        // Three real poles push the phase through -180°; with per-stage
        // gain 1.5 the total gain (3.4) has rolled below 0 dB by the phase
        // crossover (|H| = 3.4/8 there), so the margin is positive.
        let mut b = NetlistBuilder::new();
        let inp = b.add_node("in");
        let n1 = b.add_node("n1");
        let n2 = b.add_node("n2");
        let out = b.add_node("out");
        // Alternating signs keep the DC response positive (phase 0), so
        // the three poles sweep the phase down through -180°.
        for ((ci, co), sign) in [(inp, n1), (n1, n2), (n2, out)]
            .into_iter()
            .zip([-1.0, 1.0, -1.0])
        {
            b.inject_gm(ci, co, sign * 1.5e-6); // per-stage gain 1.5 (total 3.4)
            b.resistor(co, NodeId::GROUND, 1e6);
            b.capacitor(co, NodeId::GROUND, 1e-9);
        }
        let m = measure(&b.build(inp, out), &AcOptions::default()).unwrap();
        let gm_db = m.gain_margin_db.expect("phase crosses 180");
        // Identical poles: phase hits -180° two octaves-ish past the pole,
        // well after the 27x gain has rolled off.
        assert!(gm_db > 0.0, "gain margin {gm_db}");
    }

    #[test]
    fn gain_margin_is_none_for_single_pole() {
        let m = measure(&single_pole_amp(100.0, 1e6, 1e-9), &AcOptions::default()).unwrap();
        assert!(m.gain_margin_db.is_none(), "{:?}", m.gain_margin_db);
    }

    #[test]
    fn attenuator_has_no_unity_crossing() {
        let mut b = NetlistBuilder::new();
        let inp = b.add_node("in");
        let out = b.add_node("out");
        b.resistor(inp, out, 9e3);
        b.resistor(out, NodeId::GROUND, 1e3);
        let m = measure(&b.build(inp, out), &AcOptions::default()).unwrap();
        assert!(m.unity.is_none());
        assert!((m.dc_gain_db + 20.0).abs() < 0.1);
    }

    #[test]
    fn sweep_grid_is_log_spaced_and_increasing() {
        let n = single_pole_amp(10.0, 1e5, 1e-9);
        let sweep = ac_sweep(&n, &AcOptions::default()).unwrap();
        assert!(sweep.freqs.windows(2).all(|w| w[1] > w[0]));
        let r1 = sweep.freqs[1] / sweep.freqs[0];
        let r2 = sweep.freqs[2] / sweep.freqs[1];
        assert!((r1 - r2).abs() / r1 < 1e-9);
    }

    #[test]
    fn degenerate_grid_is_rejected() {
        let n = single_pole_amp(10.0, 1e5, 1e-9);
        let bad = AcOptions {
            f_start: 1e3,
            f_stop: 1e2,
            ..AcOptions::default()
        };
        assert!(matches!(
            ac_sweep(&n, &bad),
            Err(SimError::BadFrequencyGrid)
        ));
    }

    #[test]
    fn sign_flipping_multipath_amp_is_rejected() {
        // A slow high-gain positive path in parallel with a fast inverting
        // path: the phase swings through +180° while |H| is still large.
        // A crossover-only phase margin would look healthy; the
        // band-minimum margin must flag the design as (near-)unstable.
        let mut b = NetlistBuilder::new();
        let inp = b.add_node("in");
        let mid = b.add_node("mid");
        let out = b.add_node("out");
        // Slow path: +10000 gain, pole at ~16 Hz.
        b.inject_gm(inp, mid, 1e-2);
        b.resistor(mid, NodeId::GROUND, 1e6);
        b.capacitor(mid, NodeId::GROUND, 1e-8);
        b.inject_gm(mid, out, 1e-3);
        // Fast inverting path: -100 gain, pole at ~1.6 MHz.
        b.inject_gm(inp, out, -1e-1);
        b.resistor(out, NodeId::GROUND, 1e3);
        b.capacitor(out, NodeId::GROUND, 1e-10);
        let m = measure(&b.build(inp, out), &AcOptions::default()).unwrap();
        let unity = m.unity.expect("crosses unity");
        assert!(
            unity.phase_margin_deg < 30.0,
            "sign-flipping design got pm {}",
            unity.phase_margin_deg
        );
    }

    #[test]
    fn unwrapped_phase_has_no_jumps() {
        // Three cascaded poles sweep the phase through -270°; the unwrapped
        // trace must be continuous.
        let mut b = NetlistBuilder::new();
        let inp = b.add_node("in");
        let n1 = b.add_node("n1");
        let n2 = b.add_node("n2");
        let out = b.add_node("out");
        for (ci, co) in [(inp, n1), (n1, n2), (n2, out)] {
            b.inject_gm(ci, co, -1e-4);
            b.resistor(co, NodeId::GROUND, 1e6);
            b.capacitor(co, NodeId::GROUND, 1e-10);
        }
        let sweep = ac_sweep(&b.build(inp, out), &AcOptions::default()).unwrap();
        let phases = sweep.unwrapped_phase_deg();
        for w in phases.windows(2) {
            assert!((w[1] - w[0]).abs() <= 180.0, "jump {} -> {}", w[0], w[1]);
        }
        // Inverting cascade of three: phase ends near -180-270 = -450 or
        // equivalent; just check it dropped by > 200 degrees overall.
        assert!(phases.last().unwrap() < &(phases[0] - 200.0));
    }
}
