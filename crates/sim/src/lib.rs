//! Small-signal AC circuit simulator — the SPICE substitute of the INTO-OA
//! reproduction.
//!
//! The paper evaluates behavior-level op-amps with Hspice `.AC` analyses.
//! Behavior-level circuits are linear (VCCS + R + C), so this crate
//! reproduces those analyses exactly with complex-valued Modified Nodal
//! Analysis (see DESIGN.md §2 for the substitution argument):
//!
//! * [`MnaSystem`] — stamps and solves the complex MNA system at one
//!   frequency, with a `GMIN` leak on every node like production SPICE.
//! * [`ac_sweep`] / [`measure`] — log-spaced sweeps and extraction of DC
//!   gain, unity-gain frequency (GBW) and phase margin with bisection
//!   refinement and phase unwrapping.
//! * [`evaluate_opamp`] — one-call elaboration + measurement + bias-power
//!   estimate for a sized [`oa_circuit::Topology`].
//! * [`step_response`] — `.TRAN`-equivalent time-domain analysis
//!   (trapezoidal integration) with overshoot/settling extraction.
//!
//! # Examples
//!
//! ```
//! use oa_circuit::{ParamSpace, Process, Topology};
//! use oa_sim::{evaluate_opamp, AcOptions};
//!
//! # fn main() -> Result<(), oa_sim::SimError> {
//! let topology = Topology::bare_cascade();
//! let space = ParamSpace::for_topology(&topology);
//! let perf = evaluate_opamp(
//!     &topology,
//!     &space.nominal(),
//!     &Process::default(),
//!     10e-12,
//!     &AcOptions::default(),
//! )?;
//! println!("gain = {:.1} dB, GBW = {:.2} MHz", perf.gain_db, perf.gbw_hz / 1e6);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod ac;
mod error;
mod mna;
mod opamp;
mod plan;
mod transient;

pub use ac::{
    ac_sweep, ac_sweep_cached, measure, measure_cached, AcOptions, AcSweep, Measurement,
    UnityCrossing,
};
pub use error::SimError;
pub use mna::{MnaSystem, PreparedSweep};
pub use opamp::{evaluate_opamp, evaluate_opamp_cached, OpAmpPerformance};
pub use plan::{PlanCache, PlanCacheStats};
pub use transient::{step_response, StepResponse, TranOptions};
