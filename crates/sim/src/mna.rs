//! Complex Modified Nodal Analysis.
//!
//! At each analysis frequency the netlist is stamped into a complex MNA
//! system: one KCL row per non-ground node plus one branch row for the ideal
//! AC test source driving the input node. A `GMIN` leak to ground on every
//! node (exactly as production SPICE engines do) keeps the matrix
//! non-singular when capacitor-only paths block DC.

use oa_circuit::{Element, Netlist, NodeId};
use oa_linalg::{CMatrix, CluFactor, Complex};

use crate::error::SimError;

/// Assembles and solves the MNA system of a netlist at one frequency.
///
/// The system unknowns are the non-ground node voltages followed by the
/// test-source branch current. Ground (node 0) is the reference and is
/// eliminated.
#[derive(Debug)]
pub struct MnaSystem<'a> {
    netlist: &'a Netlist,
    gmin: f64,
}

impl<'a> MnaSystem<'a> {
    /// Creates an MNA view of `netlist` with the given `GMIN` leak
    /// conductance (siemens) from every node to ground.
    pub fn new(netlist: &'a Netlist, gmin: f64) -> Self {
        MnaSystem { netlist, gmin }
    }

    /// Number of unknowns: non-ground node voltages + 1 branch current.
    pub fn dim(&self) -> usize {
        self.netlist.node_count() - 1 + 1
    }

    fn var(&self, n: NodeId) -> Option<usize> {
        if n.is_ground() {
            None
        } else {
            Some(n.0 - 1)
        }
    }

    /// Stamps the system matrix at angular frequency `omega` (rad/s).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::BadElement`] for non-finite or non-positive
    /// element values.
    pub fn assemble(&self, omega: f64) -> Result<CMatrix, SimError> {
        let dim = self.dim();
        let branch = dim - 1;
        let mut a = CMatrix::zeros(dim, dim);

        let stamp_admittance = |a: &mut CMatrix, p: Option<usize>, q: Option<usize>, y: Complex| {
            if let Some(i) = p {
                a[(i, i)] += y;
            }
            if let Some(j) = q {
                a[(j, j)] += y;
            }
            if let (Some(i), Some(j)) = (p, q) {
                a[(i, j)] -= y;
                a[(j, i)] -= y;
            }
        };

        for e in self.netlist.elements() {
            match *e {
                Element::Resistor { a: na, b: nb, ohms } => {
                    if !(ohms.is_finite() && ohms > 0.0) {
                        return Err(SimError::BadElement {
                            detail: format!("resistor with {ohms} ohms"),
                        });
                    }
                    let y = Complex::from_re(1.0 / ohms);
                    stamp_admittance(&mut a, self.var(na), self.var(nb), y);
                }
                Element::Capacitor { a: na, b: nb, farads } => {
                    if !(farads.is_finite() && farads >= 0.0) {
                        return Err(SimError::BadElement {
                            detail: format!("capacitor with {farads} farads"),
                        });
                    }
                    let y = Complex::new(0.0, omega * farads);
                    stamp_admittance(&mut a, self.var(na), self.var(nb), y);
                }
                Element::Vccs {
                    ctrl_p,
                    ctrl_n,
                    out_p,
                    out_n,
                    gm,
                    ft_hz,
                } => {
                    if !gm.is_finite() {
                        return Err(SimError::BadElement {
                            detail: format!("vccs with gm {gm}"),
                        });
                    }
                    if let Some(ft) = ft_hz {
                        if !(ft.is_finite() && ft > 0.0) {
                            return Err(SimError::BadElement {
                                detail: format!("vccs with bandwidth {ft} Hz"),
                            });
                        }
                    }
                    // Current gm·(v_cp − v_cn) leaves out_p and enters out_n,
                    // rolled off by the cell's single-pole bandwidth if set.
                    let g = match ft_hz {
                        Some(ft) => {
                            let f = omega / (2.0 * std::f64::consts::PI);
                            Complex::from_re(gm) / Complex::new(1.0, f / ft)
                        }
                        None => Complex::from_re(gm),
                    };
                    for (node, sign) in [(out_p, 1.0), (out_n, -1.0)] {
                        if let Some(row) = self.var(node) {
                            if let Some(cp) = self.var(ctrl_p) {
                                a[(row, cp)] += g.scale(sign);
                            }
                            if let Some(cn) = self.var(ctrl_n) {
                                a[(row, cn)] -= g.scale(sign);
                            }
                        }
                    }
                }
            }
        }

        // GMIN leak on every non-ground node.
        for i in 0..(self.netlist.node_count() - 1) {
            a[(i, i)] += Complex::from_re(self.gmin);
        }

        // Ideal test source: v(input) = 1, branch current flows into input.
        let inp = self
            .var(self.netlist.input())
            .expect("input node must not be ground");
        a[(inp, branch)] += Complex::ONE;
        a[(branch, inp)] += Complex::ONE;
        Ok(a)
    }

    /// Solves for the output-node voltage with a unit AC source at the
    /// input, i.e. the transfer function `H(jω)`.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::SolveFailed`] on a singular system and
    /// [`SimError::BadElement`] for bad element values.
    pub fn transfer(&self, freq_hz: f64) -> Result<Complex, SimError> {
        let omega = 2.0 * std::f64::consts::PI * freq_hz;
        let a = self.assemble(omega)?;
        let mut rhs = vec![Complex::ZERO; self.dim()];
        rhs[self.dim() - 1] = Complex::ONE; // v(input) = 1.
        let lu = CluFactor::new(&a).map_err(|source| SimError::SolveFailed { freq_hz, source })?;
        let x = lu
            .solve(&rhs)
            .map_err(|source| SimError::SolveFailed { freq_hz, source })?;
        let out = self
            .var(self.netlist.output())
            .expect("output node must not be ground");
        Ok(x[out])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oa_circuit::NetlistBuilder;

    /// RC low-pass: H = 1/(1 + jωRC).
    fn rc_lowpass(r: f64, c: f64) -> Netlist {
        let mut b = NetlistBuilder::new();
        let inp = b.add_node("in");
        let out = b.add_node("out");
        b.resistor(inp, out, r);
        b.capacitor(out, NodeId::GROUND, c);
        b.build(inp, out)
    }

    #[test]
    fn rc_lowpass_matches_analytic_response() {
        let r = 1e3;
        let c = 1e-9;
        let n = rc_lowpass(r, c);
        let sys = MnaSystem::new(&n, 1e-12);
        for freq in [1e2, 1e5, 1.0 / (2.0 * std::f64::consts::PI * r * c), 1e8] {
            let h = sys.transfer(freq).unwrap();
            let omega = 2.0 * std::f64::consts::PI * freq;
            let expected = Complex::ONE / Complex::new(1.0, omega * r * c);
            assert!(
                (h - expected).abs() < 1e-6,
                "freq {freq}: {h} vs {expected}"
            );
        }
    }

    #[test]
    fn rc_corner_is_minus_3db_and_minus_45_degrees() {
        let r = 10e3;
        let c = 100e-12;
        let n = rc_lowpass(r, c);
        let sys = MnaSystem::new(&n, 1e-15);
        let fc = 1.0 / (2.0 * std::f64::consts::PI * r * c);
        let h = sys.transfer(fc).unwrap();
        assert!((h.abs() - 1.0 / 2f64.sqrt()).abs() < 1e-6);
        assert!((h.arg().to_degrees() + 45.0).abs() < 1e-3);
    }

    #[test]
    fn inverting_gm_stage_has_negative_dc_gain() {
        let mut b = NetlistBuilder::new();
        let inp = b.add_node("in");
        let out = b.add_node("out");
        b.inject_gm(inp, out, -1e-3);
        b.resistor(out, NodeId::GROUND, 50e3);
        let n = b.build(inp, out);
        let sys = MnaSystem::new(&n, 1e-12);
        let h = sys.transfer(1.0).unwrap();
        // −gm·R = −50 up to the GMIN load on the output node.
        assert!((h.re + 50.0).abs() < 1e-4, "gain {h}");
        assert!(h.im.abs() < 1e-6);
    }

    #[test]
    fn voltage_divider_is_frequency_independent() {
        let mut b = NetlistBuilder::new();
        let inp = b.add_node("in");
        let out = b.add_node("out");
        b.resistor(inp, out, 1e3);
        b.resistor(out, NodeId::GROUND, 3e3);
        let n = b.build(inp, out);
        let sys = MnaSystem::new(&n, 1e-15);
        for f in [1.0, 1e4, 1e9] {
            let h = sys.transfer(f).unwrap();
            assert!((h.re - 0.75).abs() < 1e-6);
        }
    }

    #[test]
    fn gmin_rescues_capacitor_only_node() {
        // Series C-C divider: at DC the middle node floats without GMIN.
        let mut b = NetlistBuilder::new();
        let inp = b.add_node("in");
        let out = b.add_node("out");
        b.capacitor(inp, out, 1e-12);
        b.capacitor(out, NodeId::GROUND, 1e-12);
        let n = b.build(inp, out);
        let sys = MnaSystem::new(&n, 1e-12);
        // Equal capacitive divider at high frequency → 0.5.
        let h = sys.transfer(1e6).unwrap();
        assert!((h.abs() - 0.5).abs() < 1e-3, "{h}");
        // And GMIN keeps the near-DC solve alive.
        assert!(sys.transfer(1e-3).unwrap().is_finite());
    }

    #[test]
    fn banded_gm_rolls_off_at_its_pole() {
        let mut b = NetlistBuilder::new();
        let inp = b.add_node("in");
        let out = b.add_node("out");
        b.inject_gm_banded(inp, out, -1e-3, 1e6);
        b.resistor(out, NodeId::GROUND, 1e3);
        let n = b.build(inp, out);
        let sys = MnaSystem::new(&n, 1e-15);
        let dc = sys.transfer(1.0).unwrap().abs();
        let at_pole = sys.transfer(1e6).unwrap().abs();
        let decade_up = sys.transfer(1e7).unwrap().abs();
        assert!((dc - 1.0).abs() < 1e-6, "dc gain {dc}");
        assert!((at_pole - 1.0 / 2f64.sqrt()).abs() < 1e-6, "{at_pole}");
        assert!((decade_up - dc / 101f64.sqrt()).abs() < 1e-4, "{decade_up}");
    }

    #[test]
    fn bad_gm_bandwidth_is_rejected() {
        let mut b = NetlistBuilder::new();
        let inp = b.add_node("in");
        let out = b.add_node("out");
        b.inject_gm_banded(inp, out, 1e-3, 0.0);
        let n = b.build(inp, out);
        let sys = MnaSystem::new(&n, 1e-12);
        assert!(matches!(
            sys.transfer(1.0),
            Err(SimError::BadElement { .. })
        ));
    }

    #[test]
    fn bad_resistor_is_rejected() {
        let mut b = NetlistBuilder::new();
        let inp = b.add_node("in");
        let out = b.add_node("out");
        b.resistor(inp, out, 0.0);
        let n = b.build(inp, out);
        let sys = MnaSystem::new(&n, 1e-12);
        assert!(matches!(
            sys.transfer(1.0),
            Err(SimError::BadElement { .. })
        ));
    }

    #[test]
    fn vccs_four_terminal_stamp_is_differential() {
        // Differential control: i = gm·(v_a − v_b) into out.
        let mut b = NetlistBuilder::new();
        let inp = b.add_node("in");
        let mid = b.add_node("mid");
        let out = b.add_node("out");
        // mid = in/2 via divider.
        b.resistor(inp, mid, 1e3);
        b.resistor(mid, NodeId::GROUND, 1e3);
        // i = 1m·(v_in − v_mid) = 1m·in/2 into out; out load 1k → gain 0.5.
        b.vccs(inp, mid, NodeId::GROUND, out, 1e-3);
        b.resistor(out, NodeId::GROUND, 1e3);
        let n = b.build(inp, out);
        let sys = MnaSystem::new(&n, 1e-15);
        let h = sys.transfer(1.0).unwrap();
        assert!((h.re - 0.5).abs() < 1e-6, "{h}");
    }
}
